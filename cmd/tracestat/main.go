// Command tracestat analyzes simulator traces offline and runs the KPI
// regression bench. It is the CLI over internal/profile: feed it the
// Perfetto JSON that `smartdimm-sim -trace` wrote and it answers where
// the simulated time went and what bounded request latency — without
// re-running the simulation.
//
// Trace analysis (every view is byte-deterministic for a given trace):
//
//	tracestat -trace run.trace.json                 # profile tree + critical-path table
//	tracestat -trace run.trace.json -top 15         # flat hottest components
//	tracestat -trace run.trace.json -waterfall 5    # first 5 request waterfalls
//	tracestat -trace run.trace.json -pprof sim.pb.gz
//	go tool pprof -top sim.pb.gz                    # standard tooling on simulated time
//	tracestat -trace run.trace.json -series         # every counter sample as CSV (plot-ready)
//
// KPI regression bench (what `./ci.sh bench` runs):
//
//	tracestat -bench -baseline BENCH_baseline.json -out BENCH_results.json
//	tracestat -bench -update-baseline               # re-pin after an intended change
//
// The bench runs the pinned deterministic scenarios from
// internal/profile, writes the fresh KPIs to -out, and exits nonzero if
// any baseline KPI drifted beyond -tol.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

func main() {
	tracePath := flag.String("trace", "", "Perfetto trace JSON to analyze (from smartdimm-sim -trace)")
	tree := flag.Bool("tree", false, "print only the hierarchical profile tree")
	top := flag.Int("top", 0, "print the N hottest components by self time (0 = off)")
	critpath := flag.Bool("critpath", false, "print only the critical-path stage table")
	waterfall := flag.Int("waterfall", 0, "print per-request waterfalls for the first N requests")
	pprofPath := flag.String("pprof", "", "write the profile as gzipped pprof protobuf to this file")
	fromPs := flag.Int64("from-ps", 0, "critical path: ignore requests starting before this simulated time")
	toPs := flag.Int64("to-ps", 0, "critical path: ignore requests ending after this simulated time")
	shards := flag.Bool("shards", false, "critical path: merged multi-shard trace (per-shard attribution, shared fe/rt planes)")
	series := flag.Bool("series", false, "dump every counter sample in the trace as CSV (at_ps,track,name,value) — includes the scraped obs series of incident trace slices")

	bench := flag.Bool("bench", false, "run the pinned KPI regression scenarios instead of analyzing a trace")
	baseline := flag.String("baseline", "BENCH_baseline.json", "bench: committed baseline to compare against")
	out := flag.String("out", "BENCH_results.json", "bench: write fresh KPI results here")
	tol := flag.Float64("tol", 0.05, "bench: relative KPI drift tolerance")
	updateBaseline := flag.Bool("update-baseline", false, "bench: rewrite the baseline from this run instead of gating")
	flag.Parse()

	switch {
	case *bench:
		if err := runBench(*baseline, *out, *tol, *updateBaseline); err != nil {
			fatal(err)
		}
	case *tracePath != "":
		if err := runTrace(*tracePath, *tree, *top, *critpath, *waterfall, *pprofPath, *fromPs, *toPs, *shards, *series); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runTrace loads one trace and renders the requested views. With no
// view flags, the profile tree and the critical-path table both print —
// the "what happened in this run" default.
func runTrace(path string, tree bool, top int, critpath bool, waterfall int, pprofPath string, fromPs, toPs int64, shards, series bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	tracks, events, err := profile.ReadPerfetto(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	wantAll := !tree && top == 0 && !critpath && waterfall == 0 && pprofPath == "" && !series
	if series {
		if err := writeSeriesCSV(os.Stdout, tracks, events, fromPs, toPs); err != nil {
			return err
		}
	}
	w := os.Stdout
	if tree || wantAll {
		p := profile.FromEvents(tracks, events)
		if err := p.WriteTree(w); err != nil {
			return err
		}
	}
	if top > 0 {
		p := profile.FromEvents(tracks, events)
		if err := p.WriteTop(w, top); err != nil {
			return err
		}
	}
	if critpath || waterfall > 0 || wantAll {
		cp := profile.Analyze(tracks, events, profile.Options{FromPs: fromPs, ToPs: toPs, ShardAware: shards})
		if critpath || wantAll {
			if wantAll {
				fmt.Fprintln(w)
			}
			if err := cp.WriteTable(w); err != nil {
				return err
			}
		}
		if waterfall > 0 {
			if err := cp.WriteWaterfall(w, waterfall); err != nil {
				return err
			}
		}
	}
	if pprofPath != "" {
		p := profile.FromEvents(tracks, events)
		f, err := os.Create(pprofPath)
		if err != nil {
			return err
		}
		if err := p.WritePprof(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "pprof profile: %s (go tool pprof -top %s)\n", pprofPath, pprofPath)
	}
	return nil
}

// writeSeriesCSV dumps the trace's counter samples — the scraped obs
// series a `-scrape-us` run embeds, plus any model counters — in event
// order as plot-ready CSV. -from-ps/-to-ps clip the dump.
func writeSeriesCSV(w io.Writer, tracks []string, events []telemetry.Event, fromPs, toPs int64) error {
	if _, err := fmt.Fprintln(w, "at_ps,track,name,value"); err != nil {
		return err
	}
	for _, ev := range events {
		if ev.Kind != telemetry.KindCounter {
			continue
		}
		if ev.AtPs < fromPs || (toPs > 0 && ev.AtPs > toPs) {
			continue
		}
		track := ""
		if int(ev.Track) < len(tracks) {
			track = tracks[ev.Track]
		}
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%g\n", ev.AtPs, track, ev.Name, ev.Value); err != nil {
			return err
		}
	}
	return nil
}

// runBench executes the pinned scenarios, writes the results, and gates
// against the baseline (or re-pins it with -update-baseline). The wall
// clock is injected here — internal/profile stays wall-clock-free — so
// results carry wall_seconds and sim_req_per_wall_s per scenario; those
// volatile keys are stripped before a baseline re-pin.
func runBench(baselinePath, outPath string, tol float64, updateBaseline bool) error {
	clock := func() int64 { return time.Now().UnixNano() } // wallclock:ok — bench wall-clock KPI, injected so internal/profile stays clock-free
	rep, err := profile.RunBenchClocked(profile.DefaultBenchScenarios(), clock)
	if err != nil {
		return err
	}
	data, err := profile.MarshalBench(rep)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: wrote %s (%d scenarios)\n", outPath, len(rep.Scenarios))
	}
	for _, r := range rep.Scenarios {
		if wall, ok := r.KPIs["wall_seconds"]; ok {
			req := r.KPIs["requests"]
			if _, ok := r.KPIs["ops"]; ok { // cluster scenarios count client ops
				req = r.KPIs["ops"]
			}
			fmt.Printf("bench: %-16s %8.0f req  %6.2f wall-s  %8.0f sim-req/wall-s\n",
				r.Name, req, wall, r.KPIs["sim_req_per_wall_s"])
		}
	}
	if updateBaseline {
		data, err := profile.MarshalBench(profile.StripVolatile(rep))
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench: baseline %s re-pinned\n", baselinePath)
		return nil
	}
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline (run with -update-baseline to create): %w", err)
	}
	base, err := profile.UnmarshalBench(baseData)
	if err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	drifts := profile.CompareBench(base, rep, tol)
	if len(drifts) > 0 {
		for _, d := range drifts {
			fmt.Fprintf(os.Stderr, "bench: DRIFT %s\n", d)
		}
		return fmt.Errorf("%d KPI(s) drifted beyond %.1f%% tolerance", len(drifts), tol*100)
	}
	fmt.Printf("bench: %d scenarios within %.1f%% of baseline\n", len(rep.Scenarios), tol*100)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracestat:", err)
	os.Exit(1)
}
