// Command tracegen dumps the Fig. 9 CAS trace — four cores running
// concurrent CompCpy offloads — as "time_ps kind phys_addr core" rows
// suitable for gnuplot:
//
//	tracegen > trace.dat
//	gnuplot -e "plot 'trace.dat' using 1:3 with dots"
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.Fig9()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := res.Trace.Dump(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d rdCAS, %d wrCAS, %d self-recycles, spread %dMB\n",
		res.Trace.Reads(), res.Trace.Writes(), res.SelfRecycles, res.SpreadBytes>>20)
}
