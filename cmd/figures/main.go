// Command figures regenerates every table and figure of the paper's
// evaluation from the simulation models and prints the series the paper
// plots, alongside the paper's reported values where applicable.
//
// Usage:
//
//	figures               # all experiments at quick scale
//	figures -fig 11       # one figure
//	figures -fig 2b       # bursty-loss variant of Fig. 2 (not in "all")
//	figures -fig scale    # fleet scaling, 1-8 SmartDIMM ranks (not in "all")
//	figures -fig shard    # sharded-engine wall-clock scaling (not in "all")
//	figures -fig failover # cluster availability across a node kill (not in "all")
//	figures -fig rdma     # zero-copy peer-DMA vs host-mediated data path (not in "all")
//	figures -fig autoscale # SLO autoscaler vs flash crowd + rank fault (not in "all")
//	figures -fig incident # alerting + flight-recorder incident narrative (not in "all")
//	figures -table 1      # Table I
//	figures -power        # §VII-D power/area model
//	figures -scale paper  # testbed-scale workloads (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (2,2b,3,9,10,11,12,13,scale,shard,failover,breakdown,critpath,rdma,autoscale,incident); empty = all (non-paper figures excluded)")
	table := flag.Int("table", 0, "table number to regenerate (1); 0 = all")
	pow := flag.Bool("power", false, "print the §VII-D power/area model")
	scale := flag.String("scale", "quick", "workload scale: quick or paper")
	par := flag.Int("parallel", 0, "concurrent simulations per sweep (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	// Parameter points of a sweep are independent simulations; fanning
	// them across cores changes wall-clock time only — the printed series
	// are byte-identical to a serial run.
	var pool *runner.Pool
	if *par != 1 {
		pool = runner.New(*par)
	}

	sc := experiments.QuickScale()
	if *scale == "paper" {
		sc = experiments.PaperScale()
	}

	all := *fig == "" && *table == 0 && !*pow
	run := func(n int) bool { return all || *fig == strconv.Itoa(n) }

	if run(2) {
		fig2(pool)
	}
	// Fig. 2b and the fleet scaling experiment are extensions beyond the
	// paper's figure set; they run only when asked for, keeping the
	// default output identical to the paper's figures.
	if *fig == "2b" {
		fig2b(pool)
	}
	if *fig == "scale" {
		figScale(pool)
	}
	if *fig == "shard" {
		figShard()
	}
	if *fig == "failover" {
		figFailover()
	}
	if *fig == "breakdown" {
		figBreakdown(pool, sc)
	}
	if *fig == "critpath" {
		figCritPath(pool, sc)
	}
	if *fig == "rdma" {
		figRDMA(pool, sc)
	}
	if *fig == "autoscale" {
		figAutoscale()
	}
	if *fig == "incident" {
		figIncident()
	}
	if run(3) {
		fig3(pool, sc)
	}
	if run(9) {
		fig9()
	}
	if run(10) {
		fig10(pool, sc)
	}
	if run(11) {
		fig11(pool, sc)
	}
	if run(12) {
		fig12(pool, sc)
	}
	if run(13) {
		fig13()
	}
	if all || *table == 1 {
		table1(pool, sc)
	}
	if all || *pow {
		powerModel()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// figFailover replays the cluster failover schedule — node 0 (the
// initial primary of every replication group) killed mid-run, backups
// promoting, the victim rejoining — and prints the bucketed
// availability/goodput timeline plus the linearizability verdict
// (robustness extension; not a paper figure).
func figFailover() {
	fmt.Println("=== Cluster failover: availability/goodput across a node kill + promotion ===")
	fmt.Println("model: 3-node primary-backup cluster, quorum-ack writes; node 0 killed at 6ms,")
	fmt.Println("       rejoins at 14ms; every bucket counts client-acked operations")
	res, err := experiments.Failover(21)
	if err != nil {
		fail(err)
	}
	if err := res.WriteFailoverTimeline(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println()
}

// figAutoscale replays the flash-crowd + rank-fault workload scenario
// under the SLO autoscaler and prints the per-tick p99/active-rank
// timeline with every controller decision marked (production-workload
// extension; not a paper figure).
func figAutoscale() {
	fmt.Println("=== SLO autoscaler: KV-cache fleet vs flash crowd + rank fault ===")
	fmt.Println("model: 4-rank fleet starting at 2 active, open-loop KV trace (900k rps base,")
	fmt.Println("       2.5x crowd 3-6ms), rank 1 killed at 4.2ms; the controller admits parked")
	fmt.Println("       ranks on sustained p99 breach (SLO 100us) and drains them back after")
	res, err := experiments.Autoscale(11)
	if err != nil {
		fail(err)
	}
	if err := res.WriteAutoscaleTimeline(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println()
}

// figIncident replays the hardened flash-crowd + rank-fault scenario
// with the alerting plane and flight recorder armed and prints the
// incident narrative: the tick timeline with alert transitions marked,
// the deterministic alert log, and each frozen bundle's correlated
// timeline (observability extension; not a paper figure).
func figIncident() {
	fmt.Println("=== Incident narrative: burn-rate page, breaker alert, flight-recorder bundles ===")
	fmt.Println("model: the -fig autoscale scenario with the crowd at 3.0x (past the two initial")
	fmt.Println("       ranks' collapse point) and a 100us scraper running the default alert rules;")
	fmt.Println("       each firing freezes a 2ms-lookback bundle: correlated timeline + trace slice")
	res, err := experiments.Incident(7)
	if err != nil {
		fail(err)
	}
	if err := res.WriteIncidentReport(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println()
}

func fig2(pool *runner.Pool) {
	fmt.Println("=== Fig. 2: encrypted-connection bandwidth under packet drops ===")
	fmt.Println("paper: SmartNIC matches CPU at 0% drops, then collapses as drops rise")
	fmt.Printf("%-10s %-10s %-12s %s\n", "drop(%)", "config", "Gbps", "resyncs")
	for _, p := range experiments.Fig2(pool, []float64{0, 0.01, 0.05, 0.1, 0.5, 1.0}) {
		fmt.Printf("%-10.2f %-10s %-12.2f %d\n", p.DropPct, p.Placement, p.Gbps, p.Resyncs)
	}
	fmt.Println()
}

func fig2b(pool *runner.Pool) {
	fmt.Println("=== Fig. 2b: encrypted-connection goodput under bursty loss + link flaps ===")
	fmt.Println("model: Gilbert-Elliott bursts (p_bad->good=0.2, loss_bad=0.8), 200us outage per 50ms,")
	fmt.Println("       0.1% reorder; each burst re-desynchronizes the SmartNIC inline engine")
	fmt.Printf("%-12s %-10s %-10s %-12s %-10s %-10s %s\n",
		"p(g->b)%", "config", "Gbps", "burstdrops", "flapdrops", "resyncs", "sw-fallbacks")
	for _, p := range experiments.Fig2b(pool, []float64{0, 0.05, 0.1, 0.2, 0.5}) {
		fmt.Printf("%-12.2f %-10s %-10.2f %-12d %-10d %-10d %d\n",
			p.PGoodBadPct, p.Placement, p.Gbps, p.BurstDrops, p.FlapDrops,
			p.Resyncs, p.FallbackEncrypts)
	}
	fmt.Println()
}

func figScale(pool *runner.Pool) {
	fmt.Println("=== Fleet scaling: compressed-HTTP RPS and p99 vs SmartDIMM device count ===")
	fmt.Println("model: 1-8 ranks behind one fleet backend; uniform and Zipf-skewed closed-loop load;")
	fmt.Println("       round-robin vs least-loaded at every count, affinity/sticky at the largest")
	pts, err := experiments.FigScale(pool, experiments.FleetScale(), []int{1, 2, 4, 8}, 16384)
	if err != nil {
		fail(err)
	}
	fmt.Print(experiments.RenderScale(pts))
	fmt.Println()
}

// figShard measures the sharded PDES engine's single-run wall-clock
// scaling: the same simulated cluster at 1-8 shards, executed first on
// the serial reference schedule (exec-workers 1) and then with parallel
// epochs (exec-workers 0 = GOMAXPROCS). Simulated results are
// byte-identical between the two columns — only wall time moves, and it
// can only move if the host actually has cores to run epochs on.
func figShard() {
	ncpu := runtime.NumCPU()
	fmt.Println("=== Sharded engine: single-run wall-clock scaling ===")
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d", runtime.GOMAXPROCS(0), ncpu)
	if ncpu < 4 {
		fmt.Print("  (fewer than 4 cores: parallel epochs cannot beat the serial schedule here;")
		fmt.Print("\n       the speedup column measures synchronization overhead, not scaling)")
	}
	fmt.Println()
	fmt.Printf("%-8s %-10s %-12s %-12s %-14s %-14s %s\n",
		"shards", "requests", "sim RPS", "serial-s", "parallel-s", "req/wall-s", "speedup")
	for _, shards := range []int{1, 2, 4, 8} {
		var walls [2]float64
		var requests uint64
		var rps float64
		for i, execWorkers := range []int{1, 0} {
			cl, err := fleet.NewSharded(fleet.ShardedConfig{
				Shards: shards, Policy: fleet.RoundRobin,
				MsgSize: 4096, Connections: 64 * shards,
				FileKind: corpus.Text, Mode: server.HTTPSMode, Seed: 1,
				ExecWorkers: execWorkers,
			})
			if err != nil {
				fail(err)
			}
			start := time.Now() // wallclock:ok — measures host wall-clock scaling, not simulated time
			m, err := cl.Run(sim.Ms, 4*sim.Ms)
			if err != nil {
				fail(err)
			}
			walls[i] = time.Since(start).Seconds()
			if i == 0 {
				requests, rps = m.Agg.Requests, m.Agg.RPS
			} else if m.Agg.Requests != requests {
				fail(fmt.Errorf("shards=%d: parallel run diverged from serial (%d vs %d requests)",
					shards, m.Agg.Requests, requests))
			}
		}
		fmt.Printf("%-8d %-10d %-12.0f %-12.2f %-14.2f %-14.0f %.2fx\n",
			shards, requests, rps, walls[0], walls[1],
			float64(requests)/walls[1], walls[0]/walls[1])
	}
	fmt.Println()
}

func figBreakdown(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Per-stage latency breakdown: Nginx TLS, 16KB messages ===")
	fmt.Println("model: summed worker occupancy per pipeline stage over the measured window;")
	fmt.Println("       wire = shared NIC link serialization. SmartDIMM drops the copy stage")
	fmt.Println("       (inline page cache) and shrinks ULP to doorbell+descriptor costs")
	rows, err := experiments.FigBreakdown(pool, sc, server.HTTPSMode, 16384)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-12s", "config")
	for _, n := range server.StageNames {
		fmt.Printf(" %9s%%", n)
	}
	fmt.Printf(" %12s\n", "mean-lat(us)")
	for _, r := range rows {
		fmt.Printf("%-12s", r.Placement)
		for _, s := range r.SharePct {
			fmt.Printf(" %10.1f", s)
		}
		fmt.Printf(" %12.1f\n", float64(r.Metrics.MeanLatPs)/float64(sim.Us))
	}
	fmt.Println()
}

func figCritPath(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Critical-path stage shares: Nginx TLS, 16KB messages (trace-derived) ===")
	fmt.Println("model: per-request blocking attribution from the Perfetto event stream —")
	fmt.Println("       the trace-side counterpart of -fig breakdown. SmartDIMM's copy share")
	fmt.Println("       is 0: inline page cache, no copy spans exist to block on")
	rows, err := experiments.CritPathBreakdown(pool, sc, server.HTTPSMode, 16384)
	if err != nil {
		fail(err)
	}
	if err := experiments.WriteCritPathTable(os.Stdout, rows); err != nil {
		fail(err)
	}
	fmt.Println()
}

func figRDMA(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Zero-copy data path: host-mediated vs peer-DMA ingress, 16KB TLS records ===")
	fmt.Println("model: host paths refill page-cache misses by storage DMA bounced through host")
	fmt.Println("       DRAM (DDIO ways); peer-dimm refills by one-sided RDMA WRITE straight into")
	fmt.Println("       the registered rank buffer — copy and bounce stages vanish from the")
	fmt.Println("       critical path, refills stop streaming through the LLC, and the +mcf")
	fmt.Println("       columns show the isolation win under cache pressure. wqe/doorbell is")
	fmt.Println("       the submission-queue coalescing factor.")
	pts, err := experiments.FigRDMA(pool, sc)
	if err != nil {
		fail(err)
	}
	if err := experiments.WriteRDMATable(os.Stdout, pts); err != nil {
		fail(err)
	}
	fmt.Println()
}

func fig3(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Fig. 3: HTTPS memory bandwidth normalized to HTTP ===")
	fmt.Println("paper: ratio grows with connections, up to ~2.5x")
	connCounts := []int{16, 64, 256}
	if sc.Connections > 256 {
		connCounts = append(connCounts, sc.Connections)
	}
	pts, err := experiments.Fig3(pool, sc, connCounts, 4096)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-12s %-14s %-14s %s\n", "connections", "HTTP GB/s", "HTTPS GB/s", "HTTPS/HTTP")
	for _, p := range pts {
		fmt.Printf("%-12d %-14.3f %-14.3f %.2fx\n", p.Connections, p.HTTPMemGBps, p.HTTPSMemGBps, p.NormalizedRatio)
	}
	fmt.Println()
}

func fig9() {
	fmt.Println("=== Fig. 9: rd/wrCAS trace, 4 cores running CompCpy ===")
	fmt.Println("paper: monotonically increasing source reads, self-recycle writes, 32MB spacing")
	res, err := experiments.Fig9()
	if err != nil {
		fail(err)
	}
	fmt.Printf("rdCAS: %d  wrCAS: %d  self-recycles: %d  address spread: %dMB\n",
		res.Trace.Reads(), res.Trace.Writes(), res.SelfRecycles, res.SpreadBytes>>20)
	for c := 0; c < 4; c++ {
		fmt.Printf("core %d mean monotonic rdCAS run: %.1f cachelines\n", c, res.MeanRunLen[c])
	}
	fmt.Println("(use cmd/tracegen to dump the raw scatter for plotting)")
	fmt.Println()
}

func fig10(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Fig. 10: scratchpad occupancy vs LLC provisioning ===")
	fmt.Println("paper: equilibrium occupancy scales with LLC size (50MB LLC -> <2MB, 10MB -> <500KB)")
	series, err := experiments.Fig10(pool, []int{sc.LLCBytes / 8, sc.LLCBytes / 2, sc.LLCBytes}, sc)
	if err != nil {
		fail(err)
	}
	for _, s := range series {
		fmt.Printf("LLC %6dKB: equilibrium occupancy %8.1fKB  force-recycles %d\n",
			s.LLCBytes>>10, s.EquilibriumKB, s.ForceRecycles)
		for _, p := range s.Series.Downsample(8) {
			fmt.Printf("    t=%6.2fms  occupancy=%7.1fKB\n", float64(p.AtPs)/float64(sim.Ms), p.Value/1024)
		}
	}
	fmt.Println()
}

func printPerf(pts []experiments.PerfPoint) {
	fmt.Printf("%-12s %-8s %-10s %-10s %-10s %-12s %s\n",
		"config", "msg", "RPS", "RPS-norm", "CPU-norm", "membw-norm", "abs RPS")
	for _, p := range pts {
		fmt.Printf("%-12s %-8d %-10.0f %-10.2f %-10.2f %-12.2f %.0f\n",
			p.Placement, p.MsgSize, p.Metrics.RPS, p.RPSNorm, p.CPUNorm, p.MemNorm, p.Metrics.RPS)
	}
	fmt.Println()
}

func fig11(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Fig. 11: Nginx TLS offload across placements (normalized to CPU) ===")
	fmt.Println("paper: SmartDIMM +21.0% RPS @4KB / +35.8% @16KB, -21.8% CPU, -49.1% membw;")
	fmt.Println("       SmartNIC/QAT no gain at 4KB; SmartNIC gains at 16KB")
	pts, err := experiments.RunPlacements(pool, sc, server.HTTPSMode, []int{4096, 16384}, corpus.Text)
	if err != nil {
		fail(err)
	}
	printPerf(pts)
}

func fig12(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Fig. 12: Nginx compression offload across placements (normalized to CPU) ===")
	fmt.Println("paper: SmartDIMM 5.09x RPS @4KB / 10.28x @16KB, -81.5% CPU, -88.9% membw; QAT <= 1x")
	pts, err := experiments.RunPlacements(pool, sc, server.CompressedHTTP, []int{4096, 16384}, corpus.HTML)
	if err != nil {
		fail(err)
	}
	printPerf(pts)
}

func fig13() {
	fmt.Println("=== Fig. 13: ULP processing design space (0-3, higher is better) ===")
	fmt.Printf("%-24s %-8s %-8s %-10s %-9s %-6s %s\n",
		"placement", "lowLLC", "highLLC", "transport", "ULPdiv", "loss", "L4flex")
	for _, r := range experiments.Fig13() {
		fmt.Printf("%-24s %-8d %-8d %-10d %-9d %-6d %d\n",
			r.Placement, r.LowLLCContention, r.HighLLCContention,
			r.TransportCompat, r.ULPDiversity, r.LossResistance, r.TransportFlexibility)
	}
	fmt.Println()
}

func table1(pool *runner.Pool, sc experiments.Scale) {
	fmt.Println("=== Table I: co-run slowdowns (Nginx+TLS with 10x mcf) ===")
	fmt.Println("paper: Nginx 15.8/7.3/28.7/9.5%, mcf 15.5/8.7/37.9/10.3% (CPU/SmartNIC/QAT/SmartDIMM)")
	rows, err := experiments.Table1(pool, sc)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-12s %-16s %-16s %s\n", "config", "nginx slowdown", "mcf slowdown", "co-run RPS")
	for _, r := range rows {
		fmt.Printf("%-12s %-16.1f %-16.1f %.0f\n",
			r.Placement, r.NginxSlowdown*100, r.McfSlowdown*100, r.CoRunRPS)
	}
	fmt.Println()
}

func powerModel() {
	fmt.Println("=== §VII-D: area and power ===")
	m := power.PaperModel()
	fmt.Printf("dynamic power at full DDR utilization: %.2fW (paper: 4.78W)\n", m.DynamicAtFullWatts())
	fmt.Printf("added power at 30%% utilization:        %.2fW (paper: ~0.92W average)\n", m.AddedPowerAt(0.30))
	fmt.Printf("TLS offload FPGA resources:            %.1f%% (paper: ~21.8%%)\n", m.TLSOffloadFPGAPercent())
	fmt.Printf("%-36s %-12s %s\n", "block", "W @ full", "FPGA %")
	for _, b := range m.Blocks {
		fmt.Printf("%-36s %-12.2f %.1f\n", b.Name, b.DynamicWattsAtFull, b.FPGAPercent)
	}
	fmt.Println()
}
