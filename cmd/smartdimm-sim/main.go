// Command smartdimm-sim runs configurable full-system serving
// experiments and prints the measured metrics — the general-purpose CLI
// around the simulator for exploring configurations beyond the paper's.
//
// -msg and -conns accept comma-separated lists; the cartesian product of
// the values is swept, with independent runs fanned across -parallel
// workers (results always print in sweep order).
//
// Multi-device fleets: -devices N (default 1) installs N SmartDIMM
// ranks and shards connections across them through internal/fleet. The
// -placement flag accepts the fleet placement policies directly —
// rr (round-robin), leastload, affinity, sticky — and plain "smartdimm"
// with -devices above 1 defaults to the rr policy. Non-SmartDIMM
// placements reject -devices above 1.
//
// Parallel single-run: -shards N splits ONE simulation across N engine
// shards (each a disjoint sub-system of -devices ranks behind its own
// fleet) executed in parallel with conservative lookahead; -exec-workers
// caps the epoch parallelism (1 = serial reference). Reported metrics
// and -trace output are byte-identical for every -exec-workers value.
//
// Examples:
//
//	smartdimm-sim -placement smartdimm -ulp tls -msg 16384 -conns 512
//	smartdimm-sim -placement cpu -ulp compression -msg 4096 -corpus html
//	smartdimm-sim -placement adaptive -llc 4194304 -measure-ms 50
//	smartdimm-sim -placement smartdimm -msg 1024,4096,16384 -conns 64,256
//	smartdimm-sim -placement leastload -devices 4 -ulp compression -conns 128
//	smartdimm-sim -placement rr -devices 4 -datapath peer -msg 16384
//	smartdimm-sim -workload kv -devices 4 -rps 1800000 -conns 64
//	smartdimm-sim -workload embed -devices 4 -rps 500000 -slo-us 100
//	smartdimm-sim -workload kv -devices 4 -rps 2500000 -slo-us 100 -scrape-us 100 -alerts -incident-dir out/
//
// Workload suite: -workload kv|embed replaces the closed-loop generator
// with the trace-replay workload suite (internal/workload) — an
// open-loop arrival trace at -rps drives the KV-cache GET/SET mix or
// the embedding-gather mix over a -devices-rank fleet; -msg is ignored
// (the source's payload mix governs). -slo-us additionally runs the SLO
// autoscaler over the fleet and reports its action log.
//
// Observability (workload runs only): -scrape-us sets the simulated-time
// scrape interval of the metrics plane; -alerts evaluates the default
// alert rules (a multi-window burn-rate page on the -slo-us objective,
// a breaker-trip threshold) and prints the deterministic alert log;
// -incident-dir arms the flight recorder — every alert firing freezes a
// bundle written as incident-<i>-<rule>/report.txt (correlated timeline
// + series summary) and trace.json (the Perfetto slice of the lookback
// window around the firing).
//
// Data path: -datapath host (default) refills page-cache misses by
// storage DMA bounced through host DRAM; -datapath peer installs the
// RDMA NIC model and refills by one-sided writes straight into the
// registered SmartDIMM buffers (requires the smartdimm placement or a
// fleet policy).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/profile"
	"repro/internal/rdma"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/wrkgen"
)

// cliConfig carries the flag values shared by every run of the sweep.
type cliConfig struct {
	placement   string
	datapath    string
	ulpName     string
	workers     int
	devices     int
	shards      int
	execWorkers int
	llc         int
	ways        int
	kind        corpus.Kind
	warmupMs    int
	measureMs   int
	seed        int64
	tracePath   string
	metrics     bool
	profile     bool
	workload    string
	rps         float64
	sloUs       float64
	scrapeUs    int64
	alerts      bool
	incidentDir string
}

func main() {
	placement := flag.String("placement", "smartdimm",
		"cpu | smartnic | qat | smartdimm | adaptive, or a fleet policy rr | leastload | affinity | sticky (default policy with -devices > 1: rr)")
	devices := flag.Int("devices", 1, "SmartDIMM ranks; above 1, connections shard across a fleet (see -placement)")
	datapath := flag.String("datapath", "host", "record ingress: host (storage DMA via host DRAM) | peer (zero-copy RDMA into device buffers; needs smartdimm or a fleet placement)")
	shards := flag.Int("shards", 0, "run ONE simulation split across N parallel engine shards (sub-systems with -devices ranks each); 0 = the serial engine")
	execWorkers := flag.Int("exec-workers", 0, "with -shards: epoch execution parallelism (0 = GOMAXPROCS, 1 = serial reference schedule; results are byte-identical either way)")
	ulpName := flag.String("ulp", "tls", "tls | compression | none (plain HTTP)")
	msgList := flag.String("msg", "4096", "message (response body) sizes in bytes, comma-separated")
	connList := flag.String("conns", "256", "persistent connection counts, comma-separated")
	workers := flag.Int("workers", 10, "server worker threads")
	llc := flag.Int("llc", 2<<20, "LLC size in bytes")
	ways := flag.Int("ways", 8, "LLC associativity")
	kindName := flag.String("corpus", "text", "file corpus: zeros|html|text|json|random")
	warmupMs := flag.Int("warmup-ms", 2, "warmup window")
	measureMs := flag.Int("measure-ms", 20, "measurement window")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("parallel", 0, "concurrent sweep runs (0 = GOMAXPROCS, 1 = serial)")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file (single-point sweeps only)")
	metrics := flag.Bool("metrics", false, "append the full metrics registry (name value lines) to the report")
	prof := flag.Bool("profile", false, "append the simulated-time profile tree and critical-path table to the report (traces the run internally)")
	workloadName := flag.String("workload", "", "trace-replay workload suite: kv (cache GET/SET mix) | embed (embedding gathers); empty = closed-loop generator")
	rps := flag.Float64("rps", 1e6, "with -workload: open-loop offered rate (requests/s)")
	sloUs := flag.Float64("slo-us", 0, "with -workload: run the SLO autoscaler with this p99 latency objective (us); 0 = no autoscaler")
	scrapeUs := flag.Int64("scrape-us", 0, "with -workload: observability scrape interval (us); 0 = one scrape per control tick")
	alerts := flag.Bool("alerts", false, "with -workload: evaluate the default alert rules (burn-rate page on the -slo-us objective, breaker-trip) and print the alert log")
	incidentDir := flag.String("incident-dir", "", "with -workload: arm the flight recorder and write each incident bundle (report.txt + trace.json) under this directory")
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		fatal(err)
	}
	msgs, err := parseIntList("msg", *msgList)
	if err != nil {
		fatal(err)
	}
	conns, err := parseIntList("conns", *connList)
	if err != nil {
		fatal(err)
	}

	if *devices < 1 {
		fatal(fmt.Errorf("-devices %d: need at least one rank", *devices))
	}
	cfg := cliConfig{
		placement: strings.ToLower(*placement), datapath: strings.ToLower(*datapath),
		ulpName: strings.ToLower(*ulpName),
		workers: *workers, devices: *devices, shards: *shards, execWorkers: *execWorkers,
		llc: *llc, ways: *ways, kind: kind,
		warmupMs: *warmupMs, measureMs: *measureMs, seed: *seed,
		tracePath: *tracePath, metrics: *metrics, profile: *prof,
		workload: strings.ToLower(*workloadName), rps: *rps, sloUs: *sloUs,
		scrapeUs: *scrapeUs, alerts: *alerts, incidentDir: *incidentDir,
	}

	type point struct{ msg, conns int }
	var sweep []point
	for _, m := range msgs {
		for _, c := range conns {
			sweep = append(sweep, point{msg: m, conns: c})
		}
	}
	if cfg.tracePath != "" && len(sweep) > 1 {
		fatal(fmt.Errorf("-trace: sweep has %d points; tracing needs a single msg/conns point", len(sweep)))
	}
	if cfg.incidentDir != "" && len(sweep) > 1 {
		fatal(fmt.Errorf("-incident-dir: sweep has %d points; incident capture needs a single msg/conns point", len(sweep)))
	}
	var pool *runner.Pool
	if *par != 1 && len(sweep) > 1 {
		pool = runner.New(*par)
	}
	// Each run formats its own report; blocks print in sweep order no
	// matter which worker finishes first.
	blocks, err := runner.Map(context.Background(), pool, sweep,
		func(_ context.Context, pt point, _ int) (string, error) {
			return runOne(cfg, pt.msg, pt.conns)
		})
	if err != nil {
		fatal(err)
	}
	for i, b := range blocks {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(b)
	}
}

// runOne builds a fresh system, runs one closed-loop measurement, and
// returns the formatted report.
func runOne(cfg cliConfig, msg, conns int) (string, error) {
	if cfg.workload != "" {
		if cfg.shards > 0 || cfg.datapath == "peer" || cfg.tracePath != "" || cfg.profile {
			return "", fmt.Errorf("-workload: not combinable with -shards, -datapath peer, -trace, or -profile")
		}
		return runWorkload(cfg, conns)
	}
	if cfg.scrapeUs > 0 || cfg.alerts || cfg.incidentDir != "" {
		return "", fmt.Errorf("-scrape-us/-alerts/-incident-dir: observability plane runs need -workload")
	}
	if cfg.shards > 0 {
		if cfg.datapath == "peer" {
			return "", fmt.Errorf("-datapath peer: not supported with -shards")
		}
		return runSharded(cfg, msg, conns)
	}
	peer := cfg.datapath == "peer"
	if !peer && cfg.datapath != "host" {
		return "", fmt.Errorf("-datapath %q: use host or peer", cfg.datapath)
	}
	// A fleet policy name as the placement, or -devices above 1 with the
	// plain smartdimm placement (defaulting to round-robin), selects the
	// multi-device fleet backend.
	pol, polErr := fleet.ParsePolicy(cfg.placement)
	isFleet := polErr == nil
	if cfg.devices > 1 && !isFleet {
		if cfg.placement != "smartdimm" {
			return "", fmt.Errorf("-devices %d: placement %q is single-device; use smartdimm or a fleet policy (rr, leastload, affinity, sticky)",
				cfg.devices, cfg.placement)
		}
		isFleet, pol = true, fleet.RoundRobin
	}

	withDIMM := cfg.placement == "smartdimm" || cfg.placement == "adaptive" || isFleet
	if peer && !(cfg.placement == "smartdimm" || isFleet) {
		return "", fmt.Errorf("-datapath peer: placement %q has no device buffers; use smartdimm or a fleet policy", cfg.placement)
	}
	ranks := 0
	if isFleet {
		ranks = cfg.devices
	}
	dp := sim.DataPathHost
	if peer {
		dp = sim.DataPathPeer
	}
	var tracer *telemetry.Tracer
	traceCAS := 0
	if cfg.tracePath != "" || cfg.profile {
		// -profile analyzes the same event stream a -trace run records,
		// so both flags thread a tracer through the system.
		tracer = telemetry.New()
		// A traced run also records the channel-0 CAS stream so the
		// Perfetto counter track has data.
		traceCAS = 1 << 16
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: cfg.llc, LLCWays: cfg.ways,
		Geometry:       dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128},
		WithSmartDIMM:  withDIMM,
		SmartDIMMRanks: ranks,
		DataPath:       dp,
		Tracer:         tracer,
		TraceCAS:       traceCAS,
	})
	if err != nil {
		return "", err
	}
	var nic *rdma.NIC
	if peer {
		if nic, err = rdma.New(rdma.Config{Sys: sys, Tracer: tracer}); err != nil {
			return "", err
		}
	}

	var backend offload.Backend
	var fl *fleet.Fleet
	switch {
	case isFleet:
		fl, err = fleet.New(fleet.Config{Sys: sys, Policy: pol, RNIC: nic})
		if err != nil {
			return "", err
		}
		backend = fl
	case cfg.placement == "cpu":
		backend = &offload.CPU{Sys: sys}
	case cfg.placement == "smartnic":
		backend = &offload.SmartNIC{Sys: sys}
	case cfg.placement == "qat":
		backend = &offload.QAT{Sys: sys}
	case cfg.placement == "smartdimm":
		backend = &offload.SmartDIMM{Sys: sys}
	case cfg.placement == "adaptive":
		backend = &offload.Adaptive{Sys: sys,
			CPUBackend: &offload.CPU{Sys: sys}, DIMM: &offload.SmartDIMM{Sys: sys}}
	default:
		return "", fmt.Errorf("unknown placement %q", cfg.placement)
	}

	mode := server.HTTPSMode
	switch cfg.ulpName {
	case "tls":
	case "compression":
		mode = server.CompressedHTTP
	case "none":
		mode = server.PlainHTTP
		backend = nil
	default:
		return "", fmt.Errorf("unknown ulp %q", cfg.ulpName)
	}
	if peer && backend != nil {
		if backend, err = offload.NewRDMA(backend, nic); err != nil {
			return "", err
		}
	}

	scfg := server.Config{
		Sys: sys, Backend: backend, Mode: mode, Workers: cfg.workers,
		MsgSize: msg, Connections: conns, FileKind: cfg.kind, Seed: cfg.seed,
	}
	warmup, measure := int64(cfg.warmupMs)*sim.Ms, int64(cfg.measureMs)*sim.Ms
	var m server.Metrics
	if isFleet {
		// The fleet's queue-occupancy model shares the system's simulated
		// clock, so fleet runs must drive the system engine directly
		// (RunClosedLoop builds a private engine the fleet can't see).
		srv, err := server.New(sys.Engine, scfg)
		if err != nil {
			return "", err
		}
		gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
			Connections: conns,
			ThinkPs:     int64(sys.Params.RTTUs * float64(sim.Us)),
		})
		gen.Start()
		sys.Engine.RunUntil(warmup)
		srv.BeginMeasurement()
		gen.BeginMeasurement()
		sys.Engine.RunUntil(warmup + measure)
		m = srv.Collect()
	} else {
		m, err = server.RunClosedLoop(scfg, warmup, measure)
		if err != nil {
			return "", err
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "placement:   %s\n", cfg.placement)
	fmt.Fprintf(&b, "datapath:    %s\n", cfg.datapath)
	fmt.Fprintf(&b, "mode:        %s, %dB messages, %d connections, %d workers\n", mode, msg, conns, cfg.workers)
	fmt.Fprintf(&b, "requests:    %d in %.2fms\n", m.Requests, float64(m.ElapsedPs)/float64(sim.Ms))
	fmt.Fprintf(&b, "RPS:         %.0f\n", m.RPS)
	fmt.Fprintf(&b, "CPU util:    %.1f%%\n", m.CPUUtil*100)
	fmt.Fprintf(&b, "memory BW:   %.3f GB/s (%d bytes)\n", m.MemBWGBps, m.MemBytes)
	fmt.Fprintf(&b, "TX:          %d bytes (%.2fx body)\n", m.TXBytes, float64(m.TXBytes)/float64(m.Requests*uint64(msg)))
	fmt.Fprintf(&b, "mean latency: %.1f us\n", float64(m.MeanLatPs)/float64(sim.Us))
	if fl != nil {
		t := fl.Totals()
		fmt.Fprintf(&b, "fleet:       %d devices (%s), %d active; %d batches / %d descriptors\n",
			t.Devices, pol, t.Active, t.Batches, t.Descriptors)
		fmt.Fprintf(&b, "placement:   %d migrations (%d sheds), %d trips / %d readmits, %d soft ops, fallback rate %.4f\n",
			t.Migrations, t.Sheds, t.Trips, t.Readmits, t.SoftOps, t.Degraded.FallbackRate())
	}
	if withDIMM && sys.Dev != nil {
		st := sys.Dev.Stats()
		fmt.Fprintf(&b, "smartdimm:   %d registrations, %d DSA lines, %d self-recycles, %d S7, %d S10, %d ALERT_N\n",
			st.Registrations, st.DSALinesFed, st.SelfRecycles, st.IgnoredWrites, st.ScratchpadReads, st.Alerts)
		fmt.Fprintf(&b, "driver:      %d CompCpy, %d force-recycles\n",
			sys.Driver.Stats().CompCpyCalls, sys.Driver.Stats().ForceRecycleCalls)
		if ad, ok := backend.(*offload.Adaptive); ok {
			fmt.Fprintf(&b, "adaptive:    %d offloaded, %d on CPU (last miss rate %.3f)\n",
				ad.OffloadedN, ad.OnCPUN, ad.LastMissRate)
		}
	}
	if nic != nil {
		st := nic.Stats()
		fmt.Fprintf(&b, "rdma:        %d MRs (%d live), %d WQEs (%d ok / %d failed), %d doorbells (%.2f wqe/ring, %d lost), %d RNR naks, %d stale retargets\n",
			st.MRs, st.LiveMRs, st.Posted, st.Completed, st.Failed,
			st.Doorbells, st.DoorbellsCoalesce, st.DoorbellsLost, st.RNRNaks, st.StaleRkeyRetries)
		fmt.Fprintf(&b, "             %d peer bytes on the wire (%.2fus serialized), %d preloaded\n",
			st.PeerBytes, float64(st.WirePs)/float64(sim.Us), st.Preloaded)
	}
	if cfg.metrics {
		reg := telemetry.NewRegistry()
		reg.Register("server", m)
		sys.RegisterMetrics(reg)
		if fl != nil {
			reg.Register("fleet", fl.Totals())
		}
		fmt.Fprintf(&b, "--- metrics ---\n")
		if err := reg.WriteText(&b); err != nil {
			return "", err
		}
	}
	if tracer != nil && sys.Trace != nil {
		sys.Trace.ExportTo(tracer)
	}
	if cfg.profile {
		p := profile.FromTracer(tracer)
		fmt.Fprintf(&b, "--- profile ---\n")
		if err := p.WriteTree(&b); err != nil {
			return "", err
		}
		cp := profile.AnalyzeTracer(tracer, profile.Options{FromPs: warmup})
		fmt.Fprintf(&b, "--- critical path ---\n")
		if err := cp.WriteTable(&b); err != nil {
			return "", err
		}
	}
	if cfg.tracePath != "" {
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return "", err
		}
		if err := tracer.WritePerfetto(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "trace:       %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n",
			cfg.tracePath, tracer.Len())
	}
	return b.String(), nil
}

// runWorkload drives the trace-replay workload suite: an open-loop
// arrival trace at cfg.rps over a cfg.devices-rank fleet, optionally
// supervised by the SLO autoscaler (-slo-us).
func runWorkload(cfg cliConfig, conns int) (string, error) {
	pol, polErr := fleet.ParsePolicy(cfg.placement)
	if polErr != nil {
		if cfg.placement != "smartdimm" {
			return "", fmt.Errorf("-workload: placement %q is single-device; use smartdimm or a fleet policy (rr, leastload, affinity, sticky)", cfg.placement)
		}
		pol = fleet.RoundRobin
	}
	warmup, measure := int64(cfg.warmupMs)*sim.Ms, int64(cfg.measureMs)*sim.Ms
	rc := workload.RunConfig{
		Kind: cfg.workload, Ranks: cfg.devices, Policy: pol,
		Conns: conns, Workers: cfg.workers, Seed: cfg.seed,
		HorizonPs: warmup + measure, WarmupPs: warmup,
		KV:       workload.KVConfig{ZipfS: 0.99},
		Arrivals: wrkgen.ArrivalConfig{Streams: 4, BaseRPS: cfg.rps},
	}
	if cfg.sloUs > 0 {
		rc.Scale = &autoscale.Config{SLOPs: cfg.sloUs * float64(sim.Us)}
	}
	if cfg.scrapeUs > 0 {
		rc.ScrapePs = cfg.scrapeUs * sim.Us
	}
	if cfg.alerts || cfg.incidentDir != "" {
		// The burn-rate page targets the autoscaler's objective when one
		// is set, the 100us default otherwise.
		slo := cfg.sloUs
		if slo <= 0 {
			slo = 100
		}
		rc.Rules = workload.DefaultAlertRules(slo * float64(sim.Us))
	}
	rc.Record = cfg.incidentDir != ""
	rep, err := workload.Run(rc)
	if err != nil {
		return "", err
	}
	m := rep.Metrics
	var b strings.Builder
	fmt.Fprintf(&b, "workload:    %s, %.0f rps offered (open loop), %d connections, %d workers\n",
		rep.Kind, cfg.rps, conns, cfg.workers)
	fmt.Fprintf(&b, "fleet:       %d devices (%s), %d active at end\n", cfg.devices, pol, rep.FinalActive)
	fmt.Fprintf(&b, "issued:      %d (%d completed, peak in-flight %d)\n", rep.Issued, rep.Completed, rep.PeakInFlight)
	fmt.Fprintf(&b, "requests:    %d in %.2fms\n", m.Requests, float64(m.ElapsedPs)/float64(sim.Ms))
	fmt.Fprintf(&b, "RPS:         %.0f\n", m.RPS)
	fmt.Fprintf(&b, "CPU util:    %.1f%%\n", m.CPUUtil*100)
	fmt.Fprintf(&b, "memory BW:   %.3f GB/s (%d bytes)\n", m.MemBWGBps, m.MemBytes)
	fmt.Fprintf(&b, "latency:     p50 %.1f us, p99 %.1f us (end to end)\n",
		rep.P50Ps/float64(sim.Us), rep.P99Ps/float64(sim.Us))
	switch rep.Kind {
	case "kv":
		fmt.Fprintf(&b, "mix:         %d gets / %d sets\n", rep.Gets, rep.Sets)
	case "embed":
		fmt.Fprintf(&b, "mix:         %d gathers\n", rep.Gathers)
	}
	if rc.Scale != nil {
		fmt.Fprintf(&b, "autoscaler:  SLO %.0fus held %.0f%% of ticks; %d admits, %d drains\n",
			cfg.sloUs, rep.SLOHeldFrac*100, rep.Fleet.AdminAdmits, rep.Fleet.AdminDrains)
		if rep.Actions != "" {
			fmt.Fprintf(&b, "--- actions ---\n%s", rep.Actions)
		}
	}
	if len(rc.Rules) > 0 {
		fmt.Fprintf(&b, "alerts:      %d transitions, %d incidents (%d dropped)\n",
			len(rep.Alerts), len(rep.Incidents), rep.IncidentsDropped)
		if rep.AlertLog != "" {
			fmt.Fprintf(&b, "--- alerts ---\n%s", rep.AlertLog)
		}
	}
	if cfg.incidentDir != "" {
		if err := writeIncidents(cfg.incidentDir, rep, &b); err != nil {
			return "", err
		}
	}
	if cfg.metrics {
		reg := telemetry.NewRegistry()
		reg.Register("server", m)
		reg.Register("run", rep)
		fmt.Fprintf(&b, "--- metrics ---\n")
		if err := reg.WriteText(&b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// writeIncidents dumps each captured flight-recorder bundle under dir:
// incident-<i>-<rule>/report.txt holds the correlated text report,
// trace.json the ps-windowed Perfetto slice around the firing.
func writeIncidents(dir string, rep workload.Report, b *strings.Builder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, in := range rep.Incidents {
		sub := filepath.Join(dir, fmt.Sprintf("incident-%d-%s", i, in.Rule))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(sub, "report.txt"), []byte(in.Report), 0o644); err != nil {
			return err
		}
		events := 0
		if in.Trace != nil {
			f, err := os.Create(filepath.Join(sub, "trace.json"))
			if err != nil {
				return err
			}
			if err := in.Trace.WritePerfetto(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			events = in.Trace.Len()
		}
		fmt.Fprintf(b, "incident:    %s (rule %s at %.2fms, %d trace events)\n",
			sub, in.Rule, float64(in.AtPs)/float64(sim.Ms), events)
	}
	if rep.IncidentsDropped > 0 {
		fmt.Fprintf(b, "incident:    %d firings past the bundle cap were dropped\n", rep.IncidentsDropped)
	}
	return nil
}

// runSharded runs one simulation split across cfg.shards parallel
// engine shards (fleet.Sharded): each shard is a disjoint sub-system
// with cfg.devices ranks behind a per-shard fleet backend, the
// front-end shard dispatches connections across them, and epochs
// execute on cfg.execWorkers goroutines. Reported metrics (and -trace /
// -metrics artifacts) are byte-identical at any -exec-workers setting.
func runSharded(cfg cliConfig, msg, conns int) (string, error) {
	pol, polErr := fleet.ParsePolicy(cfg.placement)
	if polErr != nil {
		if cfg.placement != "smartdimm" {
			return "", fmt.Errorf("-shards: placement %q is single-system; use smartdimm or a fleet policy (rr, leastload, affinity, sticky)", cfg.placement)
		}
		pol = fleet.RoundRobin
	}
	mode := server.HTTPSMode
	switch cfg.ulpName {
	case "tls":
	case "compression":
		mode = server.CompressedHTTP
	default:
		return "", fmt.Errorf("-shards: ulp %q unsupported; sharded runs serve tls or compression", cfg.ulpName)
	}
	trace := cfg.tracePath != "" || cfg.profile
	cl, err := fleet.NewSharded(fleet.ShardedConfig{
		Shards: cfg.shards, RanksPerShard: cfg.devices, Policy: pol,
		Workers: cfg.workers, MsgSize: msg, Connections: conns,
		FileKind: cfg.kind, Mode: mode, Seed: cfg.seed,
		ExecWorkers: cfg.execWorkers,
		LLCBytes:    cfg.llc, LLCWays: cfg.ways,
		Trace: trace,
	})
	if err != nil {
		return "", err
	}
	warmup, measure := int64(cfg.warmupMs)*sim.Ms, int64(cfg.measureMs)*sim.Ms
	sm, err := cl.Run(warmup, measure)
	if err != nil {
		return "", err
	}
	m := sm.Agg

	var b strings.Builder
	fmt.Fprintf(&b, "placement:   %s, %d shards x %d ranks (exec workers: %d)\n",
		pol, cfg.shards, cfg.devices, cl.Engine().Workers)
	fmt.Fprintf(&b, "mode:        %s, %dB messages, %d connections, %d workers/shard\n", mode, msg, conns, cfg.workers)
	fmt.Fprintf(&b, "requests:    %d in %.2fms\n", m.Requests, float64(m.ElapsedPs)/float64(sim.Ms))
	fmt.Fprintf(&b, "RPS:         %.0f\n", m.RPS)
	fmt.Fprintf(&b, "CPU util:    %.1f%%\n", m.CPUUtil*100)
	fmt.Fprintf(&b, "memory BW:   %.3f GB/s (%d bytes)\n", m.MemBWGBps, m.MemBytes)
	fmt.Fprintf(&b, "TX:          %d bytes (%.2fx body)\n", m.TXBytes, float64(m.TXBytes)/float64(m.Requests*uint64(msg)))
	fmt.Fprintf(&b, "mean latency: %.1f us\n", float64(m.MeanLatPs)/float64(sim.Us))
	fmt.Fprintf(&b, "engine:      lookahead %.2fus, %d epochs, %d cross-shard msgs, %d events\n",
		float64(cl.Engine().Lookahead())/float64(sim.Us), sm.Epochs, sm.SentMsgs, sm.Processed)
	for s, ps := range sm.PerShard {
		fmt.Fprintf(&b, "  shard %d:   %d requests, RPS %.0f, mean latency %.1f us\n",
			s, ps.Requests, ps.RPS, float64(ps.MeanLatPs)/float64(sim.Us))
	}
	if cfg.metrics {
		reg := telemetry.NewRegistry()
		reg.Register("server", m)
		cl.RegisterMetrics(reg)
		fmt.Fprintf(&b, "--- metrics ---\n")
		if err := reg.WriteText(&b); err != nil {
			return "", err
		}
	}
	if cfg.profile {
		merged := cl.MergedTrace()
		p := profile.FromTracer(merged)
		fmt.Fprintf(&b, "--- profile ---\n")
		if err := p.WriteTree(&b); err != nil {
			return "", err
		}
	}
	if cfg.tracePath != "" {
		merged := cl.MergedTrace()
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return "", err
		}
		if err := merged.WritePerfetto(f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "trace:       %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n",
			cfg.tracePath, merged.Len())
	}
	return b.String(), nil
}

func parseIntList(name, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-%s: %q is not a positive integer", name, f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKind(name string) (corpus.Kind, error) {
	for _, k := range corpus.AllKinds() {
		if k.String() == strings.ToLower(name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown corpus %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartdimm-sim:", err)
	os.Exit(1)
}
