// Command smartdimm-sim runs one configurable full-system serving
// experiment and prints the measured metrics — the general-purpose CLI
// around the simulator for exploring configurations beyond the paper's.
//
// Examples:
//
//	smartdimm-sim -placement smartdimm -ulp tls -msg 16384 -conns 512
//	smartdimm-sim -placement cpu -ulp compression -msg 4096 -corpus html
//	smartdimm-sim -placement adaptive -llc 4194304 -measure-ms 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/offload"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	placement := flag.String("placement", "smartdimm", "cpu | smartnic | qat | smartdimm | adaptive")
	ulpName := flag.String("ulp", "tls", "tls | compression | none (plain HTTP)")
	msg := flag.Int("msg", 4096, "message (response body) size in bytes")
	conns := flag.Int("conns", 256, "persistent connections")
	workers := flag.Int("workers", 10, "server worker threads")
	llc := flag.Int("llc", 2<<20, "LLC size in bytes")
	ways := flag.Int("ways", 8, "LLC associativity")
	kindName := flag.String("corpus", "text", "file corpus: zeros|html|text|json|random")
	warmupMs := flag.Int("warmup-ms", 2, "warmup window")
	measureMs := flag.Int("measure-ms", 20, "measurement window")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		fatal(err)
	}

	withDIMM := *placement == "smartdimm" || *placement == "adaptive"
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: *llc, LLCWays: *ways,
		Geometry:      dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128},
		WithSmartDIMM: withDIMM,
	})
	if err != nil {
		fatal(err)
	}

	var backend offload.Backend
	switch strings.ToLower(*placement) {
	case "cpu":
		backend = &offload.CPU{Sys: sys}
	case "smartnic":
		backend = &offload.SmartNIC{Sys: sys}
	case "qat":
		backend = &offload.QAT{Sys: sys}
	case "smartdimm":
		backend = &offload.SmartDIMM{Sys: sys}
	case "adaptive":
		backend = &offload.Adaptive{Sys: sys,
			CPUBackend: &offload.CPU{Sys: sys}, DIMM: &offload.SmartDIMM{Sys: sys}}
	default:
		fatal(fmt.Errorf("unknown placement %q", *placement))
	}

	mode := server.HTTPSMode
	switch strings.ToLower(*ulpName) {
	case "tls":
	case "compression":
		mode = server.CompressedHTTP
	case "none":
		mode = server.PlainHTTP
		backend = nil
	default:
		fatal(fmt.Errorf("unknown ulp %q", *ulpName))
	}

	m, err := server.RunClosedLoop(server.Config{
		Sys: sys, Backend: backend, Mode: mode, Workers: *workers,
		MsgSize: *msg, Connections: *conns, FileKind: kind, Seed: *seed,
	}, int64(*warmupMs)*sim.Ms, int64(*measureMs)*sim.Ms)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("placement:   %s\n", *placement)
	fmt.Printf("mode:        %s, %dB messages, %d connections, %d workers\n", mode, *msg, *conns, *workers)
	fmt.Printf("requests:    %d in %.2fms\n", m.Requests, float64(m.ElapsedPs)/float64(sim.Ms))
	fmt.Printf("RPS:         %.0f\n", m.RPS)
	fmt.Printf("CPU util:    %.1f%%\n", m.CPUUtil*100)
	fmt.Printf("memory BW:   %.3f GB/s (%d bytes)\n", m.MemBWGBps, m.MemBytes)
	fmt.Printf("TX:          %d bytes (%.2fx body)\n", m.TXBytes, float64(m.TXBytes)/float64(m.Requests*uint64(*msg)))
	fmt.Printf("mean latency: %.1f us\n", float64(m.MeanLatPs)/float64(sim.Us))
	if withDIMM && sys.Dev != nil {
		st := sys.Dev.Stats()
		fmt.Printf("smartdimm:   %d registrations, %d DSA lines, %d self-recycles, %d S7, %d S10, %d ALERT_N\n",
			st.Registrations, st.DSALinesFed, st.SelfRecycles, st.IgnoredWrites, st.ScratchpadReads, st.Alerts)
		fmt.Printf("driver:      %d CompCpy, %d force-recycles\n",
			sys.Driver.Stats().CompCpyCalls, sys.Driver.Stats().ForceRecycleCalls)
		if ad, ok := backend.(*offload.Adaptive); ok {
			fmt.Printf("adaptive:    %d offloaded, %d on CPU (last miss rate %.3f)\n",
				ad.OffloadedN, ad.OnCPUN, ad.LastMissRate)
		}
	}
}

func parseKind(name string) (corpus.Kind, error) {
	for _, k := range corpus.AllKinds() {
		if k.String() == strings.ToLower(name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown corpus %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartdimm-sim:", err)
	os.Exit(1)
}
