// Package repro is a from-scratch reproduction of "SmartDIMM: In-Memory
// Acceleration of Upper Layer Protocols" (HPCA 2024): a near-memory
// processing architecture that places domain-specific accelerators on
// the buffer device of a DDR4 DIMM and offloads upper-layer network
// protocols — TLS (de/en)cryption and Deflate (de)compression — through
// the CompCpy API, a memory copy that transforms data in flight.
//
// The repository root holds the benchmark harness (bench_test.go, one
// benchmark per table and figure of the paper's evaluation); the
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and runnable examples under examples/.
package repro
