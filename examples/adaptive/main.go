// Adaptive: demonstrate the §V-C policy — the modified OpenSSL engine
// probes the LLC miss rate and offloads TLS to SmartDIMM only under
// contention, processing on the CPU otherwise.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/offload"
	"repro/internal/sim"
)

func main() {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
		WithSmartDIMM: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ad := &offload.Adaptive{
		Sys:           sys,
		CPUBackend:    &offload.CPU{Sys: sys, Functional: true},
		DIMM:          &offload.SmartDIMM{Sys: sys},
		ProbeInterval: 8,
	}
	conn, err := ad.NewConn(offload.TLS, 1, 4096)
	if err != nil {
		log.Fatal(err)
	}
	payload := corpus.Generate(corpus.Text, 4096, 1)

	// An antagonist working set we can switch on and off.
	antagonist, err := sys.AllocPlain(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	sys.WriteBytes(1, antagonist, make([]byte, 1<<20))

	phases := []struct {
		name      string
		contended bool
	}{
		{"phase 1: quiet cache", false},
		{"phase 2: antagonist streaming through the LLC", true},
		{"phase 3: quiet again", false},
	}
	for _, ph := range phases {
		// Warm the connection's buffers on the CPU path so the phase is
		// judged on steady-state traffic, then reset the probe window and
		// run a measured batch.
		for i := 0; i < 6; i++ {
			offload.StagePayloadCPU(sys, 0, conn, payload)
			if _, err := ad.CPUBackend.Process(offload.TLS, 0, conn, len(payload)); err != nil {
				log.Fatal(err)
			}
			if ph.contended {
				sys.ReadBytes(1, antagonist, 256<<10)
			}
		}
		startOff, startCPU := ad.OffloadedN, ad.OnCPUN
		sys.LLCMissRateSample()
		for i := 0; i < 32; i++ {
			if _, err := offload.StagePayloadCPU(sys, 0, conn, payload); err != nil {
				log.Fatal(err)
			}
			if _, err := ad.Process(offload.TLS, 0, conn, len(payload)); err != nil {
				log.Fatal(err)
			}
			if ph.contended {
				sys.ReadBytes(1, antagonist, 256<<10)
			}
		}
		fmt.Printf("%-48s miss-rate=%.3f  offloaded=%2d  on-cpu=%2d\n",
			ph.name, ad.LastMissRate,
			ad.OffloadedN-startOff, ad.OnCPUN-startCPU)
	}
	fmt.Println("\nThe engine switches per message (4KB pages): SmartDIMM when the LLC is")
	fmt.Println("contended, AES-NI on the CPU when it is not — offloading only when DRAM")
	fmt.Println("is already on the data path (Observation 3).")
}
