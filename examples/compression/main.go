// Compression: offload Deflate compression of different corpora to the
// SmartDIMM DSA, compare its best-effort hardware pipeline against the
// software encoder, and verify every page round-trips.
//
//	go run ./examples/compression
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/deflate"
	"repro/internal/sim"
	"repro/internal/ulp"
)

func main() {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 512 << 10, LLCWays: 8,
		WithSmartDIMM: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	drv := sys.Driver

	fmt.Printf("%-8s %-14s %-14s %-14s %s\n",
		"corpus", "DSA ratio", "software", "DSA conflicts", "round trip")
	for _, kind := range corpus.AllKinds() {
		data := corpus.Generate(kind, core.MaxCompressInput, 42)

		// Offload one page compression through CompCpy (ordered mode:
		// the Deflate DSA consumes the stream sequentially, §V-B).
		sbuf, err := drv.AllocPages(1)
		if err != nil {
			log.Fatal(err)
		}
		dbuf, err := drv.AllocPages(1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := drv.WriteBuffer(0, sbuf, data); err != nil {
			log.Fatal(err)
		}
		ctx := &core.OffloadContext{Op: core.OpCompress, Length: len(data)}
		if _, err := drv.CompCpy(0, dbuf, sbuf, core.PageSize, ctx, true); err != nil {
			log.Fatal(err)
		}
		page, _, err := drv.Use(0, dbuf, core.PageSize)
		if err != nil {
			log.Fatal(err)
		}
		clen, err := core.CompressedPayloadLen(page)
		if err != nil {
			log.Fatal(err)
		}
		back, err := core.DecodeCompressedPage(page)
		if err != nil {
			log.Fatal(err)
		}
		ok := bytes.Equal(back, data)

		// Software encoder for comparison (what the CPU baseline runs).
		sw := deflate.Compress(data)

		// A standalone DSA instance to read out the conflict statistics.
		enc := deflate.NewHWEncoder(deflate.PaperHWConfig())
		enc.Compress(data)
		st := enc.Stats()

		fmt.Printf("%-8s %-14.2f %-14.2f %-14d %v\n",
			kind,
			float64(len(data))/float64(4+clen),
			float64(len(data))/float64(len(sw)),
			st.BankConflicts, ok)
		drv.FreePages(sbuf, 1)
		drv.FreePages(dbuf, 1)
	}

	// A multi-page HTTP body through the ULP framing helpers.
	body := corpus.Generate(corpus.HTML, 3*core.MaxCompressInput, 7)
	wire := ulp.CompressBody(body, deflate.NewHWEncoder(deflate.PaperHWConfig()))
	back, err := ulp.DecompressBody(wire)
	if err != nil || !bytes.Equal(back, body) {
		log.Fatal("multi-page body round trip failed")
	}
	fmt.Printf("\nHTTP body: %d bytes -> %d on the wire (%.2fx) across %d pages, decoded OK\n",
		len(body), len(wire), float64(len(body))/float64(len(wire)),
		(len(body)+core.MaxCompressInput-1)/core.MaxCompressInput)
	fmt.Println("\nThe DSA trades a little compression ratio (4KB window, best-effort bank")
	fmt.Println("access) for deterministic single-pass latency at DDR line rate (§V-B).")
}
