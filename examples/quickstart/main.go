// Quickstart: offload one TLS record encryption to SmartDIMM through
// the CompCpy API and verify the result against a software AES-GCM
// implementation.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// Assemble a host with a SmartDIMM on channel 0: LLC + memory
	// controller + buffer device (arbiter, translation table,
	// scratchpad, TLS/Deflate DSAs) + DRAM chips.
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params:        sim.DefaultParams(),
		LLCBytes:      1 << 20,
		LLCWays:       8,
		WithSmartDIMM: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	drv := sys.Driver

	// The message to protect, and the TLS session material.
	plaintext := []byte("SmartDIMM transforms data as it traverses the DDR channel — " +
		"this record is encrypted by the DSA on the DIMM's buffer device.")
	key := []byte("0123456789abcdef")
	iv := []byte("unique-nonce")[:12]

	// The CPU side computes the hash subkey H and encrypted IV (one
	// AES-NI instruction each, §V-A) and hands them to the DSA.
	g, err := aesgcm.NewGCM(key)
	if err != nil {
		log.Fatal(err)
	}
	eiv, err := g.EIV(iv)
	if err != nil {
		log.Fatal(err)
	}

	// Allocate page-aligned offload buffers on the SmartDIMM and stage
	// the plaintext (the record trailer holds the 16-byte tag).
	recordLen := len(plaintext) + core.TagSize
	sbuf, err := drv.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}
	dbuf, err := drv.AllocPages(1)
	if err != nil {
		log.Fatal(err)
	}
	src := make([]byte, core.PageSize)
	copy(src, plaintext)
	if _, err := drv.WriteBuffer(0, sbuf, src); err != nil {
		log.Fatal(err)
	}

	// CompCpy: copy sbuf -> dbuf while the TLS DSA encrypts in flight.
	ctx := &core.OffloadContext{
		Op: core.OpTLSEncrypt,
		TLS: &core.TLSContext{
			Direction: aesgcm.Encrypt, Key: key, IV: iv,
			H: g.H(), EIV: eiv, PayloadLen: len(plaintext),
		},
		Length: len(plaintext),
	}
	elapsed, err := drv.CompCpy(0, dbuf, sbuf, recordLen, ctx, false)
	if err != nil {
		log.Fatal(err)
	}

	// USE (Algorithm 2): flush the destination and read the record.
	record, _, err := drv.Use(0, dbuf, recordLen)
	if err != nil {
		log.Fatal(err)
	}
	ciphertext, tag := record[:len(plaintext)], record[len(plaintext):]

	// Verify against the software reference.
	want, err := g.Seal(nil, iv, plaintext, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(record, want) {
		log.Fatal("SmartDIMM output does not match software AES-GCM")
	}

	st := sys.Dev.Stats()
	fmt.Printf("plaintext   (%3d B): %q...\n", len(plaintext), plaintext[:40])
	fmt.Printf("ciphertext  (%3d B): %x...\n", len(ciphertext), ciphertext[:16])
	fmt.Printf("auth tag    (%3d B): %x\n", len(tag), tag)
	fmt.Printf("matches software AES-GCM: true\n\n")
	fmt.Printf("modelled CompCpy time:   %.2f us\n", float64(elapsed)/float64(sim.Us))
	fmt.Printf("DSA cachelines fed:      %d\n", st.DSALinesFed)
	fmt.Printf("self-recycled lines:     %d\n", st.SelfRecycles)
	fmt.Printf("scratchpad reads (S10):  %d\n", st.ScratchpadReads)
	fmt.Printf("scratchpad pages free:   %d / 2048\n", sys.Dev.ScratchpadFreePages())
}
