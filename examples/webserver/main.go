// Webserver: run the Nginx-like server model over every accelerator
// placement and compare requests per second, CPU utilization, and
// memory bandwidth — the Fig. 11 experiment as a runnable program.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/offload"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	const (
		msgSize     = 4096
		connections = 256
		workers     = 4
		llcBytes    = 512 << 10
	)
	fmt.Printf("HTTPS serving, %dB responses, %d connections, %d workers, %dKB LLC\n\n",
		msgSize, connections, workers, llcBytes>>10)
	fmt.Printf("%-12s %-10s %-10s %-12s %s\n", "placement", "RPS", "CPU util", "mem GB/s", "mean latency")

	type setup struct {
		name string
		dimm bool
		mk   func(*sim.System) offload.Backend
	}
	for _, s := range []setup{
		{"CPU", false, func(sys *sim.System) offload.Backend { return &offload.CPU{Sys: sys, Functional: true} }},
		{"SmartNIC", false, func(sys *sim.System) offload.Backend { return &offload.SmartNIC{Sys: sys} }},
		{"QuickAssist", false, func(sys *sim.System) offload.Backend { return &offload.QAT{Sys: sys, Functional: true} }},
		{"SmartDIMM", true, func(sys *sim.System) offload.Backend { return &offload.SmartDIMM{Sys: sys} }},
	} {
		sys, err := sim.NewSystem(sim.SystemConfig{
			Params: sim.DefaultParams(), LLCBytes: llcBytes, LLCWays: 8,
			Geometry:      dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128},
			WithSmartDIMM: s.dimm,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := server.RunClosedLoop(server.Config{
			Sys: sys, Backend: s.mk(sys), Mode: server.HTTPSMode,
			Workers: workers, MsgSize: msgSize, Connections: connections,
			FileKind: corpus.Text, Seed: 1,
		}, 2*sim.Ms, 10*sim.Ms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10.0f %-10.1f%% %-12.3f %.0f us\n",
			s.name, m.RPS, m.CPUUtil*100, m.MemBWGBps, float64(m.MeanLatPs)/float64(sim.Us))
	}
	fmt.Println("\nUnder LLC contention SmartDIMM serves more requests with less CPU and")
	fmt.Println("memory bandwidth: encryption happens in the DIMM buffer device while the")
	fmt.Println("unmodified TCP/IP stack runs on the CPU (paper Fig. 11).")
}
