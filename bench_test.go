package repro

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation (DESIGN.md §3), plus the ablation benches of
// DESIGN.md §5 and the micro-claim checks of §IV. Benchmarks report the
// figure's headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. EXPERIMENTS.md records one such run
// against the paper's numbers.

import (
	"fmt"
	"testing"

	"repro/internal/aesgcm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cuckoo"
	"repro/internal/deflate"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/memctrl"
	"repro/internal/memsys"
	"repro/internal/offload"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// benchPool fans a sweep benchmark's independent simulations across all
// cores; the measured output series are byte-identical to a serial run
// (and on a single-core machine the pool degenerates to serial).
func benchPool() *runner.Pool { return runner.New(0) }

// --- Figures and tables ------------------------------------------------------

func BenchmarkFig02_DropSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig2(benchPool(), []float64{0, 0.1, 0.5})
		byKey := map[string]float64{}
		for _, p := range pts {
			byKey[p.Placement] = p.Gbps // last drop rate wins
			if p.DropPct == 0 {
				byKey[p.Placement+"@0"] = p.Gbps
			}
		}
		b.ReportMetric(byKey["CPU@0"], "cpu-gbps@0drop")
		b.ReportMetric(byKey["SmartNIC@0"], "nic-gbps@0drop")
		b.ReportMetric(byKey["CPU"], "cpu-gbps@0.5drop")
		b.ReportMetric(byKey["SmartNIC"], "nic-gbps@0.5drop")
	}
}

func BenchmarkFig03_HTTPSvsHTTPMemBW(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3(benchPool(), sc, []int{16, sc.Connections}, 4096)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[0].NormalizedRatio, "https/http-membw@16conns")
		b.ReportMetric(pts[1].NormalizedRatio, "https/http-membw@max-conns")
	}
}

func BenchmarkFig09_CASTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Trace.Reads()), "rdCAS")
		b.ReportMetric(float64(res.Trace.Writes()), "wrCAS")
		b.ReportMetric(float64(res.SelfRecycles), "self-recycles")
		b.ReportMetric(res.MeanRunLen[0], "mean-monotonic-run")
	}
}

func BenchmarkFig10_ScratchpadEquilibrium(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10(benchPool(), []int{sc.LLCBytes / 4, sc.LLCBytes}, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].EquilibriumKB, "equilibriumKB@smallLLC")
		b.ReportMetric(series[1].EquilibriumKB, "equilibriumKB@bigLLC")
		b.ReportMetric(float64(series[1].ForceRecycles), "force-recycles")
	}
}

func reportPerf(b *testing.B, pts []experiments.PerfPoint, msg int) {
	for _, p := range pts {
		if p.MsgSize != msg || p.Placement == experiments.PlaceCPU {
			continue
		}
		name := p.Placement.String()
		b.ReportMetric(p.RPSNorm, name+"-rps-norm")
		b.ReportMetric(p.CPUNorm, name+"-cpu-norm")
		b.ReportMetric(p.MemNorm, name+"-membw-norm")
	}
}

func BenchmarkFig11_TLSOffload4KB(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunPlacements(benchPool(), sc, server.HTTPSMode, []int{4096}, corpus.Text)
		if err != nil {
			b.Fatal(err)
		}
		reportPerf(b, pts, 4096)
	}
}

func BenchmarkFig11_TLSOffload16KB(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunPlacements(benchPool(), sc, server.HTTPSMode, []int{16384}, corpus.Text)
		if err != nil {
			b.Fatal(err)
		}
		reportPerf(b, pts, 16384)
	}
}

func BenchmarkFig12_CompressionOffload4KB(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunPlacements(benchPool(), sc, server.CompressedHTTP, []int{4096}, corpus.HTML)
		if err != nil {
			b.Fatal(err)
		}
		reportPerf(b, pts, 4096)
	}
}

func BenchmarkFig12_CompressionOffload16KB(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunPlacements(benchPool(), sc, server.CompressedHTTP, []int{16384}, corpus.HTML)
		if err != nil {
			b.Fatal(err)
		}
		reportPerf(b, pts, 16384)
	}
}

// BenchmarkFigScale_FleetScaling reports the multi-device fleet headline
// numbers (DESIGN.md §11): aggregate RPS as the rank count grows under
// uniform load, and the rr-vs-leastload p99 gap under Zipf skew.
func BenchmarkFigScale_FleetScaling(b *testing.B) {
	sc := experiments.Scale{
		Connections: 48, Workers: 24,
		WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms,
		LLCBytes: 256 << 10, LLCWays: 8,
	}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.FigScale(benchPool(), sc, []int{1, 4}, 4096)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]experiments.ScalePoint{}
		for _, p := range pts {
			byKey[fmt.Sprintf("%s/%s/%d", p.Load, p.Policy, p.Devices)] = p
		}
		b.ReportMetric(byKey["uniform/rr/1"].RPS, "uniform-rr-rps@1dev")
		b.ReportMetric(byKey["uniform/rr/4"].RPS, "uniform-rr-rps@4dev")
		if base := byKey["uniform/rr/1"].RPS; base > 0 {
			b.ReportMetric(byKey["uniform/rr/4"].RPS/base, "uniform-rr-speedup@4dev")
		}
		b.ReportMetric(byKey["zipf/rr/4"].P99Us, "zipf-rr-p99us@4dev")
		b.ReportMetric(byKey["zipf/leastload/4"].P99Us, "zipf-leastload-p99us@4dev")
	}
}

func BenchmarkTable1_CoRun(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchPool(), sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.NginxSlowdown*100, r.Placement.String()+"-nginx-slowdown-pct")
			b.ReportMetric(r.McfSlowdown*100, r.Placement.String()+"-mcf-slowdown-pct")
		}
	}
}

func BenchmarkPowerModel(b *testing.B) {
	m := power.PaperModel()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(m.DynamicAtFullWatts(), "dynamic-watts@full")
		b.ReportMetric(m.AddedPowerAt(0.30), "added-watts@30pct")
		b.ReportMetric(m.TLSOffloadFPGAPercent(), "tls-fpga-pct")
	}
}

// --- §IV micro-claims ---------------------------------------------------------

// BenchmarkFlushResidency validates the §IV-A claim: flushing 4KB is
// ~50% faster when the data is already in DRAM.
func BenchmarkFlushResidency(b *testing.B) {
	llc := cache.MustNew(cache.Config{SizeBytes: 1 << 20, Ways: 8})
	d, err := dram.NewPlainDIMM(dram.SmallGeometry())
	if err != nil {
		b.Fatal(err)
	}
	h, err := memsys.New(llc, memsys.Channel{Ctl: memctrl.New(memctrl.DefaultConfig(), d), Mod: d})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	var dirtyPs, cleanPs int64
	for i := 0; i < b.N; i++ {
		base := uint64(i%64) * 4096
		for off := uint64(0); off < 4096; off += 64 {
			h.Write64(0, base+off, buf)
		}
		lat, _ := h.Flush(base, 4096)
		dirtyPs += lat
		lat, _ = h.Flush(base, 4096) // now resident only in DRAM
		cleanPs += lat
	}
	b.ReportMetric(float64(dirtyPs)/float64(b.N)/1000, "dirty-flush-ns")
	b.ReportMetric(float64(cleanPs)/float64(b.N)/1000, "resident-flush-ns")
	b.ReportMetric(float64(cleanPs)/float64(dirtyPs), "resident/dirty-ratio")
}

// BenchmarkReadWriteSlack validates the §IV-D claim: the gap between the
// first source rdCAS and the first destination wrCAS exceeds the DSA
// latency by a wide margin (the paper measures > 1us on Broadwell).
func BenchmarkReadWriteSlack(b *testing.B) {
	var slackSum int64
	for i := 0; i < b.N; i++ {
		d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
		ctl := memctrl.New(memctrl.DefaultConfig(), d)
		tr := &stats.CASTrace{}
		ctl.Trace = tr
		buf := make([]byte, 64)
		for j := 0; j < 64; j++ {
			ctl.Read(uint64(j)*64, 0, buf)
			ctl.Write(1<<20+uint64(j)*64, 0, buf)
		}
		ctl.DrainWrites()
		var firstRd, firstWr int64 = -1, -1
		for _, ev := range tr.Events {
			if ev.Kind == stats.RdCAS && firstRd == -1 {
				firstRd = ev.AtPs
			}
			if ev.Kind == stats.WrCAS && firstWr == -1 {
				firstWr = ev.AtPs
			}
		}
		slackSum += firstWr - firstRd
	}
	b.ReportMetric(float64(slackSum)/float64(b.N)/1000, "rd-to-wr-slack-ns")
}

// BenchmarkForceRecycleRate validates §VII-A: with the paper's 2048-page
// Scratchpad, Force-Recycle calls are effectively zero; the sweep shows
// the rate rising as the Scratchpad shrinks.
func BenchmarkForceRecycleRate(b *testing.B) {
	for _, pages := range []int{8, 64, 2048} {
		b.Run(benchName("scratchpad", pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PaperDeviceConfig(dram.SmallGeometry())
				cfg.ScratchpadPages = pages
				cfg.ConfigPages = pages
				sys, err := sim.NewSystem(sim.SystemConfig{
					Params: sim.DefaultParams(), LLCBytes: 4 << 20, LLCWays: 8,
					WithSmartDIMM: true, DeviceConfig: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				bk := &offload.SmartDIMM{Sys: sys}
				payload := corpus.Generate(corpus.Text, 4096, 1)
				for r := 0; r < 32; r++ {
					conn, err := bk.NewConn(offload.TLS, r, 4096)
					if err != nil {
						b.Fatal(err)
					}
					offload.StagePayloadDMA(sys, conn, payload)
					if _, err := bk.Process(offload.TLS, 0, conn, 4096); err != nil {
						b.Fatal(err)
					}
				}
				st := sys.Driver.Stats()
				b.ReportMetric(float64(st.ForceRecycleCalls)/float64(st.CompCpyCalls), "force-recycles-per-compcpy")
			}
		})
	}
}

// --- DESIGN.md §5 ablations ----------------------------------------------------

// BenchmarkCuckooOccupancy sweeps translation-table occupancy: at the
// paper's <33% the displacement rate is near zero; pushing occupancy up
// degrades insertion.
func BenchmarkCuckooOccupancy(b *testing.B) {
	for _, fill := range []int{2048, 4096, 8192} { // 17%, 33%, 67% of 12288
		b.Run(benchName("entries", fill), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := cuckoo.NewPaperConfig[uint64]()
				for k := 0; k < fill; k++ {
					key := uint64(k)*2654435761 + uint64(i)
					if err := t.Insert(key, uint64(k)); err != nil {
						b.ReportMetric(1, "insert-failures")
					}
				}
				st := t.Stats()
				b.ReportMetric(float64(st.Displacements)/float64(st.Inserts), "displacements-per-insert")
				b.ReportMetric(float64(st.FirstTryInserts)/float64(st.Inserts), "first-try-rate")
			}
		})
	}
}

// BenchmarkDeflateWindowAblation sweeps the DSA's parallelization window
// and bank count (§V-B): wider windows and more ports improve ratio at
// hardware cost.
func BenchmarkDeflateWindowAblation(b *testing.B) {
	in := corpus.Generate(corpus.HTML, 16384, 3)
	configs := []struct {
		name   string
		window int
		ports  int
	}{
		{"w4-p2", 4, 2}, {"w8-p8", 8, 8}, {"w16-p8", 16, 8},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			enc := deflate.NewHWEncoder(deflate.HWConfig{
				ParallelWindow: c.window, Banks: 8, PortsPerBank: c.ports,
				WindowSize: 4096, TableEntries: 4096,
			})
			b.SetBytes(int64(len(in)))
			var out []byte
			for i := 0; i < b.N; i++ {
				out = enc.Compress(in)
			}
			b.ReportMetric(float64(len(in))/float64(len(out)), "compression-ratio")
			st := enc.Stats()
			b.ReportMetric(float64(st.BankConflicts)/float64(st.CandidateProbes+1), "bank-conflict-rate")
		})
	}
}

// BenchmarkAblationOrderedCopy compares CompCpy's ordered mode (membar
// per 64B, required by sequential DSAs) against unordered copies.
func BenchmarkAblationOrderedCopy(b *testing.B) {
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := sim.NewSystem(sim.SystemConfig{
				Params: sim.DefaultParams(), LLCBytes: 1 << 20, LLCWays: 8,
				WithSmartDIMM: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			key := []byte("0123456789abcdef")
			iv := []byte("abcdefghijkl")
			g, _ := aesgcm.NewGCM(key)
			eiv, _ := g.EIV(iv)
			payload := corpus.Generate(corpus.Text, 4096-core.TagSize, 1)
			var total int64
			for i := 0; i < b.N; i++ {
				sbuf, err := sys.Driver.AllocPages(1)
				if err != nil {
					b.Fatal(err)
				}
				dbuf, _ := sys.Driver.AllocPages(1)
				src := make([]byte, core.PageSize)
				copy(src, payload)
				sys.Driver.WriteBuffer(0, sbuf, src)
				ctx := &core.OffloadContext{
					Op: core.OpTLSEncrypt,
					TLS: &core.TLSContext{Direction: aesgcm.Encrypt, Key: key, IV: iv,
						H: g.H(), EIV: eiv, PayloadLen: len(payload)},
					Length: len(payload),
				}
				lat, err := sys.Driver.CompCpy(0, dbuf, sbuf, core.PageSize, ctx, ordered)
				if err != nil {
					b.Fatal(err)
				}
				total += lat
				sys.Driver.Use(0, dbuf, core.PageSize)
				sys.Driver.FreePages(sbuf, 1)
				sys.Driver.FreePages(dbuf, 1)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1000, "compcpy-model-ns")
		})
	}
}

// BenchmarkAblationAdaptiveThreshold sweeps the LLC miss-rate threshold
// of the adaptive policy (§V-C).
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	for _, thr := range []float64{0.01, 0.10, 0.50} {
		b.Run(benchName("thr-pct", int(thr*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := sim.DefaultParams()
				p.AdaptiveMissRateThreshold = thr
				sys, err := sim.NewSystem(sim.SystemConfig{
					Params: p, LLCBytes: 256 << 10, LLCWays: 8, WithSmartDIMM: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				ad := &offload.Adaptive{Sys: sys,
					CPUBackend: &offload.CPU{Sys: sys}, DIMM: &offload.SmartDIMM{Sys: sys},
					ProbeInterval: 8}
				conn, err := ad.NewConn(offload.TLS, 1, 4096)
				if err != nil {
					b.Fatal(err)
				}
				payload := corpus.Generate(corpus.Text, 4096, 1)
				big, _ := sys.AllocPlain(1 << 20)
				for r := 0; r < 32; r++ {
					offload.StagePayloadCPU(sys, 0, conn, payload)
					if _, err := ad.Process(offload.TLS, 0, conn, len(payload)); err != nil {
						b.Fatal(err)
					}
					sys.ReadBytes(1, big, 128<<10) // background contention
				}
				b.ReportMetric(float64(ad.OffloadedN)/float64(ad.OffloadedN+ad.OnCPUN), "offload-fraction")
			}
		})
	}
}

// BenchmarkAblationGHASHStride compares the paper's stride-4 H-power
// precomputation against a serial chain for out-of-order GHASH.
func BenchmarkAblationGHASHStride(b *testing.B) {
	h := make([]byte, 16)
	h[3] = 0x5A
	const n = 1024 // powers for a 16KB record
	b.Run("stride4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aesgcm.NewHPowers(h, n)
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Serial dependency chain: H^i = H^(i-1) * H.
			he := aesgcm.LoadEl(h)
			cur := he
			for k := 1; k < n; k++ {
				cur = cur.Mul(he)
			}
			_ = cur
		}
	})
}

// BenchmarkAblationNoSelfRecycle disables the self-recycling opportunity
// by giving the LLC enough capacity that no writebacks occur, forcing
// every Scratchpad page to wait for Force-Recycle — the cost the
// self-recycling design avoids.
func BenchmarkAblationNoSelfRecycle(b *testing.B) {
	run := func(b *testing.B, llcBytes int, pages int) (selfRecycles, forceRecycles float64) {
		cfg := core.PaperDeviceConfig(dram.SmallGeometry())
		cfg.ScratchpadPages = pages
		cfg.ConfigPages = pages
		sys, err := sim.NewSystem(sim.SystemConfig{
			Params: sim.DefaultParams(), LLCBytes: llcBytes, LLCWays: 8,
			WithSmartDIMM: true, DeviceConfig: &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		bk := &offload.SmartDIMM{Sys: sys}
		payload := corpus.Generate(corpus.Text, 4096, 1)
		for r := 0; r < 24; r++ {
			conn, err := bk.NewConn(offload.TLS, r, 4096)
			if err != nil {
				b.Fatal(err)
			}
			offload.StagePayloadDMA(sys, conn, payload)
			if _, err := bk.Process(offload.TLS, 0, conn, 4096); err != nil {
				b.Fatal(err)
			}
		}
		return float64(sys.Dev.Stats().SelfRecycles), float64(sys.Driver.Stats().ForceRecycleCalls)
	}
	b.Run("contended-llc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sr, fr := run(b, 128<<10, 8)
			b.ReportMetric(sr, "self-recycles")
			b.ReportMetric(fr, "force-recycles")
		}
	})
	b.Run("oversized-llc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sr, fr := run(b, 16<<20, 8)
			b.ReportMetric(sr, "self-recycles")
			b.ReportMetric(fr, "force-recycles")
		}
	})
}

// BenchmarkCompCpyThroughput measures raw CompCpy offload throughput for
// the two DSAs.
func BenchmarkCompCpyThroughput(b *testing.B) {
	b.Run("tls-4KB", func(b *testing.B) {
		sys, _ := sim.NewSystem(sim.SystemConfig{
			Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8, WithSmartDIMM: true,
		})
		bk := &offload.SmartDIMM{Sys: sys}
		conn, err := bk.NewConn(offload.TLS, 1, 4096)
		if err != nil {
			b.Fatal(err)
		}
		payload := corpus.Generate(corpus.Text, 4096, 1)
		offload.StagePayloadDMA(sys, conn, payload)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bk.Process(offload.TLS, 0, conn, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compress-4KB", func(b *testing.B) {
		sys, _ := sim.NewSystem(sim.SystemConfig{
			Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8, WithSmartDIMM: true,
		})
		bk := &offload.SmartDIMM{Sys: sys}
		conn, err := bk.NewConn(offload.Compression, 1, core.MaxCompressInput)
		if err != nil {
			b.Fatal(err)
		}
		payload := corpus.Generate(corpus.HTML, core.MaxCompressInput, 1)
		offload.StagePayloadDMA(sys, conn, payload)
		b.SetBytes(int64(core.MaxCompressInput))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bk.Process(offload.Compression, 0, conn, core.MaxCompressInput); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTelemetryDisabled pins the zero-overhead-when-disabled
// contract: every instrumentation site degenerates to one nil compare
// on a disabled (nil) tracer — no allocations, low single-digit ns.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var tr *telemetry.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(0, "span", 1, 2)
		tr.Instant(0, "instant", 3)
		tr.Counter(0, "counter", 4, 5)
		tr.AsyncBegin(0, "req", 6, 7)
		tr.AsyncEnd(0, "req", 6, 8)
		tr.Track("track")
	})
	if allocs != 0 {
		b.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Span(0, "span", int64(i), 2)
	}
}

func benchName(prefix string, v int) string {
	digits := ""
	if v == 0 {
		digits = "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return prefix + "-" + digits
}
