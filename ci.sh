#!/bin/sh
# Tier-1+ gate for this repository. Run before every merge:
#
#   ./ci.sh
#
# Stages:
#   1. go vet       — static checks across the module
#   2. go build     — everything compiles, including cmds and examples
#   3. chaos smoke  — the bounded (-short) chaos soak first: randomized
#                     fault schedules against the cross-layer invariants,
#                     cheap enough to fail fast before the long stages
#   4. race tests   — the concurrency-bearing packages (the runner pool,
#                     the event kernel, the offload/nettcp layers the
#                     server model drives from pool workers, and the
#                     fleet dispatcher's determinism gate) under -race
#   5. go test      — the full suite with a shuffled test order: the
#                     serial-vs-parallel sweep determinism gate plus the
#                     full 200-schedule chaos soak, and -shuffle guards
#                     against inter-test state leaking into results
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./internal/chaos/"
go test -short ./internal/chaos/

echo "== go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/"
go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "ci.sh: all gates passed"
