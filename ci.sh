#!/bin/sh
# Tier-1+ gate for this repository. Run before every merge:
#
#   ./ci.sh
#
# Stages:
#   1. go vet       — static checks across the module
#   2. go build     — everything compiles, including cmds and examples
#   3. chaos smoke  — the bounded (-short) chaos soak first: randomized
#                     fault schedules against the cross-layer invariants,
#                     cheap enough to fail fast before the long stages
#   4. wall-clock gate — no simulator code may read the host clock:
#                     trace timestamps come from simulated picoseconds
#                     only, so any time.Now() inside internal/ breaks
#                     byte-reproducible traces and fails the build
#   5. race tests   — the concurrency-bearing packages (the runner pool,
#                     the event kernel, the offload/nettcp layers the
#                     server model drives from pool workers, the fleet
#                     dispatcher's determinism gate, and telemetry
#                     tracing under the parallel runner) under -race
#   6. golden trace — the Perfetto exporter against its committed golden
#                     file plus the full-stack byte-reproducibility gate
#   7. go test      — the full suite with a shuffled test order: the
#                     serial-vs-parallel sweep determinism gate plus the
#                     full 200-schedule chaos soak, and -shuffle guards
#                     against inter-test state leaking into results
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./internal/chaos/"
go test -short ./internal/chaos/

echo "== wall-clock gate (no time.Now() in internal/)"
if grep -rn "time\.Now()" internal/ --include="*.go"; then
	echo "ci.sh: time.Now() found in internal/ — simulator code must use simulated time" >&2
	exit 1
fi

echo "== go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/ ./internal/telemetry/"
go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/ ./internal/telemetry/

echo "== golden Perfetto trace"
go test -run 'TestPerfettoGolden|TestFullStackTraceReproducible' ./internal/telemetry/

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "ci.sh: all gates passed"
