#!/bin/sh
# Tier-1+ gate for this repository. Run before every merge:
#
#   ./ci.sh
#
# Stages:
#   1. go vet       — static checks across the module
#   2. go build     — everything compiles, including cmds and examples
#   3. race tests   — the concurrency-bearing packages (the runner pool
#                     and the event kernel it drives) under -race
#   4. go test      — the full suite, including the serial-vs-parallel
#                     sweep determinism gate in internal/experiments
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/runner/ ./internal/sim/"
go test -race ./internal/runner/ ./internal/sim/

echo "== go test ./..."
go test ./...

echo "ci.sh: all gates passed"
