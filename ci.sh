#!/bin/sh
# Tier-1+ gate for this repository. Run before every merge:
#
#   ./ci.sh
#
# Stages:
#   1. go vet       — static checks across the module
#   2. go build     — everything compiles, including cmds and examples
#   3. chaos smoke  — the bounded (-short) chaos soak first: randomized
#                     fault schedules against the cross-layer invariants,
#                     cheap enough to fail fast before the long stages
#   4. wall-clock gate — no simulator code may read the host clock:
#                     trace timestamps come from simulated picoseconds
#                     only, so any time.Now() inside internal/ breaks
#                     byte-reproducible traces and fails the build
#   5. race tests   — the concurrency-bearing packages (the runner pool,
#                     the event kernel, the offload/nettcp layers the
#                     server model drives from pool workers, the fleet
#                     dispatcher's determinism gate, and telemetry
#                     tracing under the parallel runner) under -race
#   6. golden trace — the Perfetto exporter against its committed golden
#                     file plus the full-stack byte-reproducibility gate
#   7. tracestat golden — the trace analyzers (profile tree, critical
#                     path) against their committed golden table, plus
#                     the serial/pooled/GOMAXPROCS=2 byte-identity gate
#                     and the `go tool pprof` acceptance check
#   8. shard gate   — the sharded PDES engine: the serial-reference vs
#                     parallel-epoch vs GOMAXPROCS=2 byte-identity gates
#                     (engine, full cluster, fault-injected soak) under
#                     -race, plus structural grep gates: goroutines in
#                     internal/sim only in the sharded executor, no
#                     package-level mutable state in the shard code
#   9. KPI bench    — the pinned deterministic scenarios from
#                     internal/profile, gated against BENCH_baseline.json
#                     (writes BENCH_results.json); re-pin an intended
#                     change with `go run ./cmd/tracestat -bench
#                     -update-baseline`
#  10. go test      — the full suite with a shuffled test order: the
#                     serial-vs-parallel sweep determinism gate plus the
#                     full 200-schedule chaos soak, and -shuffle guards
#                     against inter-test state leaking into results
#
#  11. cluster gate — the replicated tier: the bounded cluster chaos
#                     soak (kills, asymmetric partitions, drain/rejoin
#                     against the linearizability checker) under -race,
#                     the cluster byte-identical-trace and
#                     any-worker-count determinism gates, and the KPI
#                     bench gate (which includes the pinned
#                     cluster-3node scenario)
#
#  12. rdma gate   — the zero-copy peer-DMA data path: the RDMA NIC /
#                     offload / fleet MR-locality tests and the
#                     serial-vs-pooled-vs-GOMAXPROCS=2 byte-identity
#                     gate for the rdma figure under -race, the bounded
#                     RDMA chaos soak (doorbell loss, RNR, MR-unregister
#                     and mid-migration races), and the KPI bench gate
#                     (which includes the pinned rdma-4rank scenario)
#
#  13. workload gate — the production workload suite + SLO autoscaler:
#                     the zipf/KV/embed source unit tests, the arrival
#                     trace determinism gates, the autoscaler hysteresis
#                     tests, the fleet admin-drain/telemetry tests, and
#                     the bounded flash-crowd + rank-fault soak — all
#                     under -race — plus the KPI bench gate (which
#                     includes the pinned kv-4rank/embed-4rank
#                     scenarios)
#
#  14. obs gate   — the observability plane: the series store / alert
#                     engine / flight recorder unit tests under -race,
#                     and the incident soak — the hardened flash-crowd +
#                     rank-fault scenario with alerting and recording
#                     armed — whose run canonical AND every incident
#                     bundle must replay byte-identically serial vs
#                     pooled vs GOMAXPROCS=2
#
# `./ci.sh bench` runs only the KPI bench stage — the quick loop while
# tuning performance. `./ci.sh shard` runs only the shard gate.
# `./ci.sh cluster` runs only the cluster gate. `./ci.sh rdma` runs
# only the rdma gate. `./ci.sh workload` runs only the workload gate.
# `./ci.sh obs` runs only the obs gate.
set -eu
cd "$(dirname "$0")"

run_bench() {
	echo "== KPI bench gate (BENCH_baseline.json, results in BENCH_results.json)"
	go run ./cmd/tracestat -bench -baseline BENCH_baseline.json -out BENCH_results.json
}

run_shard() {
	echo "== shard determinism gate (serial vs parallel vs GOMAXPROCS=2, under -race)"
	go test -race -run 'Shard' ./internal/sim/ ./internal/fleet/ ./internal/chaos/

	# Parallel epoch execution must stay confined to the sharded executor:
	# shard-local model code is written single-threaded and relies on it.
	if grep -rn "go func" internal/sim/ --include="*.go" --exclude="*_test.go" --exclude="shard.go"; then
		echo "ci.sh: goroutine outside internal/sim/shard.go — only the epoch executor may spawn" >&2
		exit 1
	fi
	# The shard executor itself must hold no cross-run mutable state:
	# package-level vars would be shared across shards and break the
	# nothing-shared determinism argument.
	if grep -n "^var " internal/sim/shard.go; then
		echo "ci.sh: package-level var in internal/sim/shard.go — shard state must live in ShardedEngine" >&2
		exit 1
	fi
}

run_cluster_tests() {
	echo "== cluster gate: bounded chaos soak + determinism gates (under -race)"
	go test -race -short -run 'TestClusterSoak|TestClusterScheduleDerivation' ./internal/chaos/
	go test -race -run 'TestClusterDeterministicAcrossWorkers|TestClusterServesLinearizably' ./internal/cluster/
}

run_cluster() {
	run_cluster_tests
	run_bench
}

run_rdma_tests() {
	echo "== rdma gate: NIC model, MR-locality, figure determinism (under -race) + bounded soak"
	go test -race -run 'RDMA' ./internal/rdma/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/ ./internal/experiments/
	go test -race -short -run 'TestRDMASoak|TestRDMASameSeedSameTrace' ./internal/chaos/
}

run_rdma() {
	run_rdma_tests
	run_bench
}

run_workload_tests() {
	echo "== workload gate: sources, arrivals, autoscaler, fleet admin surface (under -race)"
	go test -race ./internal/workload/ ./internal/autoscale/ ./internal/wrkgen/
	go test -race -run 'TestFleetDrainAdmitHeld|TestFleetSetPolicyLive|TestFleetQDepthTelemetry|TestFleetMetricsConcurrentRegistration' ./internal/fleet/
	go test -race -short -run 'TestWorkloadSoak' ./internal/chaos/
}

run_workload() {
	run_workload_tests
	run_bench
}

run_obs_tests() {
	echo "== obs gate: series store, alert engine, flight recorder (under -race)"
	go test -race ./internal/obs/
	echo "== obs gate: incident soak + bundle byte-identity (serial vs pooled vs GOMAXPROCS=2)"
	go test -run 'TestIncidentSoak' ./internal/chaos/
}

if [ "${1:-}" = "bench" ]; then
	run_bench
	exit 0
fi
if [ "${1:-}" = "shard" ]; then
	run_shard
	exit 0
fi
if [ "${1:-}" = "cluster" ]; then
	run_cluster
	exit 0
fi
if [ "${1:-}" = "rdma" ]; then
	run_rdma
	exit 0
fi
if [ "${1:-}" = "workload" ]; then
	run_workload
	exit 0
fi
if [ "${1:-}" = "obs" ]; then
	run_obs_tests
	exit 0
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -short ./internal/chaos/"
go test -short ./internal/chaos/

echo "== wall-clock gate (no time.Now() in internal/ or cmd/)"
# internal/ is absolute: simulator code must use simulated picoseconds.
# cmd/ may measure host wall-clock only where annotated `wallclock:ok`
# (the shard-scaling figure, the bench's injected clock).
if grep -rn "time\.Now()" internal/ --include="*.go"; then
	echo "ci.sh: time.Now() found in internal/ — simulator code must use simulated time" >&2
	exit 1
fi
if grep -rn "time\.Now()" cmd/ --include="*.go" | grep -v "wallclock:ok"; then
	echo "ci.sh: unannotated time.Now() in cmd/ — annotate intentional host-clock reads with wallclock:ok" >&2
	exit 1
fi

echo "== go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/ ./internal/telemetry/"
go test -race ./internal/runner/ ./internal/sim/ ./internal/offload/ ./internal/nettcp/ ./internal/fleet/ ./internal/telemetry/

echo "== golden Perfetto trace"
go test -run 'TestPerfettoGolden|TestFullStackTraceReproducible' ./internal/telemetry/

echo "== tracestat golden output"
go test -run 'TestCritPathGolden|TestTracestatByteIdenticalAcrossSchedulers' ./internal/experiments/
go test -run 'TestGoToolPprofAcceptsExport' ./internal/profile/

run_shard

run_cluster_tests

run_rdma_tests

run_workload_tests

run_obs_tests

run_bench

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "ci.sh: all gates passed"
