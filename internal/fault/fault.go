// Package fault is a seeded, deterministic fault-injection framework.
//
// Every layer of the simulator that can misbehave (DRAM ALERT_N, memory
// controller CRC retries, DSA engines, translation-table inserts, offload
// backends, the network link) consults an *Injector at a named site:
//
//	if inj.Fire("memctrl.crc", nowPs) { ... take the fault path ... }
//
// A nil *Injector never fires and costs one nil check — the production
// configuration. When an Injector is armed, each site draws from its own
// RNG stream derived from (seed, site name), so whether site A fires is
// independent of how often site B is consulted; a schedule replayed with
// the same seed and the same per-site consultation sequence reproduces
// the identical fault trace, byte for byte.
//
// Plans compose the fault shapes the robustness literature cares about:
// one-shot (a single transient), periodic (a recurring glitch), windowed
// (an outage interval in simulated time), probabilistic (Bernoulli), and
// Gilbert-Elliott (correlated bursts). The Gilbert-Elliott chain is also
// exported standalone for packet-loss models that want to step it per
// packet rather than per consultation.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// Event records one consultation of a site that fired. Consultations
// that do not fire are counted but not stored, keeping long soaks cheap.
type Event struct {
	Site string
	Seq  int64 // 1-based consultation number at this site
	Now  int64 // caller-supplied timestamp (ps or cycles, site-defined)
	// Link identifies the directed link of a FireLink consultation
	// ("src>dst"); empty for plain Fire sites.
	Link string
}

// Plan decides whether a given consultation of a site fires. The rng is
// the site's private stream; seq is the 1-based consultation count and
// now the caller's clock. Implementations may keep state (GE does).
type Plan interface {
	fire(rng *rand.Rand, seq, now int64) bool
}

// OneShot fires exactly once, on the Nth consultation (1-based).
type OneShot struct{ N int64 }

func (p OneShot) fire(_ *rand.Rand, seq, _ int64) bool { return seq == p.N }

// Periodic fires every Every-th consultation, starting at Offset+1.
// Every <= 0 never fires.
type Periodic struct{ Every, Offset int64 }

func (p Periodic) fire(_ *rand.Rand, seq, _ int64) bool {
	if p.Every <= 0 || seq <= p.Offset {
		return false
	}
	return (seq-p.Offset)%p.Every == 0
}

// Window fires with probability Prob while FromPs <= now < ToPs.
type Window struct {
	FromPs, ToPs int64
	Prob         float64
}

func (p Window) fire(rng *rand.Rand, _, now int64) bool {
	if now < p.FromPs || now >= p.ToPs {
		return false
	}
	return rng.Float64() < p.Prob
}

// Bernoulli fires independently with probability Prob on every
// consultation.
type Bernoulli struct{ Prob float64 }

func (p Bernoulli) fire(rng *rand.Rand, _, _ int64) bool {
	return p.Prob > 0 && rng.Float64() < p.Prob
}

// Burst adapts a Gilbert-Elliott chain as a Plan: each consultation
// steps the chain once. Arm gives every Burst fresh chain state, so the
// same value can arm several sites.
type Burst struct{ GE GEConfig }

func (b Burst) fire(rng *rand.Rand, seq, now int64) bool {
	// Unreachable: Arm replaces Burst with a stateful burstState.
	return (&burstState{cfg: b.GE}).fire(rng, seq, now)
}

type burstState struct {
	cfg GEConfig
	bad bool
}

func (b *burstState) fire(rng *rand.Rand, _, _ int64) bool {
	return b.cfg.step(rng, &b.bad)
}

// linkPlan is implemented by plans that decide per directed link
// (src, dst) rather than per bare consultation — node-level network
// partitions. FireLink consults it; plans without it fall back to fire,
// ignoring direction.
type linkPlan interface {
	cuts(src, dst int, now int64) bool
}

// Partition is a windowed node-level network partition: while
// FromPs <= now < ToPs, traffic from any node in A to any node in B is
// cut (and B to A too, unless OneWay makes the partition asymmetric).
// Nodes appearing in neither set are unaffected. Arm it on the site the
// network layer consults through FireLink; as a plain Fire plan it
// reports only whether the window is active, direction-blind.
type Partition struct {
	FromPs, ToPs int64
	A, B         []int
	// OneWay cuts only the A->B direction, modelling asymmetric
	// partitions (a node that can send but not receive, or vice versa).
	OneWay bool
}

func (p Partition) active(now int64) bool { return now >= p.FromPs && now < p.ToPs }

func (p Partition) fire(_ *rand.Rand, _, now int64) bool { return p.active(now) }

func (p Partition) cuts(src, dst int, now int64) bool {
	if !p.active(now) {
		return false
	}
	if contains(p.A, src) && contains(p.B, dst) {
		return true
	}
	return !p.OneWay && contains(p.B, src) && contains(p.A, dst)
}

// Partitions composes several Partition windows into one plan: a link
// is cut while any member cuts it.
type Partitions []Partition

func (ps Partitions) fire(rng *rand.Rand, seq, now int64) bool {
	for _, p := range ps {
		if p.fire(rng, seq, now) {
			return true
		}
	}
	return false
}

func (ps Partitions) cuts(src, dst int, now int64) bool {
	for _, p := range ps {
		if p.cuts(src, dst, now) {
			return true
		}
	}
	return false
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// site is one named injection point with its plan, private RNG and
// consultation counter.
type site struct {
	plan Plan
	rng  *rand.Rand
	seq  int64
}

// Injector holds the armed plans for a run. The zero value is unusable;
// build with New. A nil *Injector is valid everywhere and never fires.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	sites map[string]*site
	trace []Event
	fired int64
	total int64

	// OnFire, when set, observes every fired event — the telemetry layer
	// hooks it to place fault firings on the trace timeline as instant
	// events without this package importing telemetry. It runs with the
	// injector's lock held: it must not call back into the Injector.
	// now is the caller's clock (ps or cycles, site-defined).
	OnFire func(site string, seq, now int64)
}

// New returns an Injector with no armed sites; seed determines every
// per-site RNG stream.
func New(seed int64) *Injector {
	return &Injector{seed: seed, sites: make(map[string]*site)}
}

// Seed returns the seed the Injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// siteSeed derives a per-site stream so the order in which different
// sites are consulted cannot perturb any one site's decisions.
func siteSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Arm installs (or replaces) the plan for a named site. Stateful plans
// (Burst) get fresh state.
func (in *Injector) Arm(name string, p Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if b, ok := p.(Burst); ok {
		p = &burstState{cfg: b.GE}
	}
	in.sites[name] = &site{
		plan: p,
		rng:  rand.New(rand.NewSource(siteSeed(in.seed, name))),
	}
}

// Disarm removes the plan for a named site; subsequent Fire calls on it
// never fire. A no-op for nil receivers and unarmed sites.
func (in *Injector) Disarm(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.sites, name)
}

// DisarmAll removes every armed plan — used to quiesce injection before
// a drain/cleanup phase whose reads must succeed.
func (in *Injector) DisarmAll() {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for name := range in.sites {
		delete(in.sites, name)
	}
}

// Fire reports whether the named site faults at this consultation.
// Nil receivers and unarmed sites never fire.
func (in *Injector) Fire(name string, now int64) bool {
	return in.fire(name, now, -1, -1)
}

// FireLink reports whether the named site cuts the directed link
// src -> dst at this consultation. Plans that understand direction
// (Partition, Partitions) decide per link; any other armed plan falls
// back to its ordinary consultation, direction-blind — so a Bernoulli
// loss plan on a link site behaves like uncorrelated per-message loss.
func (in *Injector) FireLink(name string, src, dst int, now int64) bool {
	return in.fire(name, now, src, dst)
}

func (in *Injector) fire(name string, now int64, src, dst int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s, ok := in.sites[name]
	if !ok {
		return false
	}
	s.seq++
	in.total++
	directed := src >= 0
	if lp, ok := s.plan.(linkPlan); ok && directed {
		if !lp.cuts(src, dst, now) {
			return false
		}
	} else if !s.plan.fire(s.rng, s.seq, now) {
		return false
	}
	in.fired++
	ev := Event{Site: name, Seq: s.seq, Now: now}
	if directed {
		ev.Link = fmt.Sprintf("%d>%d", src, dst)
	}
	in.trace = append(in.trace, ev)
	if in.OnFire != nil {
		in.OnFire(name, s.seq, now)
	}
	return true
}

// Counts returns (consultations, fires) across all sites.
func (in *Injector) Counts() (total, fired int64) {
	if in == nil {
		return 0, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total, in.fired
}

// Trace returns a copy of every fired event in consultation order.
func (in *Injector) Trace() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}

// TraceString renders the fired-event log in a canonical text form, the
// reproducibility artifact: two runs with the same seed and schedule
// must produce equal strings.
func (in *Injector) TraceString() string {
	var b strings.Builder
	for _, e := range in.Trace() {
		if e.Link != "" {
			fmt.Fprintf(&b, "%s seq=%d now=%d link=%s\n", e.Site, e.Seq, e.Now, e.Link)
		} else {
			fmt.Fprintf(&b, "%s seq=%d now=%d\n", e.Site, e.Seq, e.Now)
		}
	}
	return b.String()
}

// Sites returns the armed site names, sorted.
func (in *Injector) Sites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.sites))
	for name := range in.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- Gilbert-Elliott bursty-loss chain ------------------------------------

// GEConfig parameterizes a two-state Gilbert-Elliott loss model: the
// chain moves Good->Bad with probability PGoodBad per step and Bad->Good
// with PBadGood; each step loses with LossGood or LossBad depending on
// the current state. Mean burst length is 1/PBadGood steps.
type GEConfig struct {
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64
}

// Enabled reports whether the config describes any loss at all.
func (c GEConfig) Enabled() bool {
	return c.LossBad > 0 || c.LossGood > 0
}

// step advances the chain one event and reports loss. State transition
// is evaluated before the loss draw, so a freshly entered Bad state can
// lose the very event that triggered the transition.
func (c GEConfig) step(rng *rand.Rand, bad *bool) bool {
	if *bad {
		if rng.Float64() < c.PBadGood {
			*bad = false
		}
	} else if rng.Float64() < c.PGoodBad {
		*bad = true
	}
	loss := c.LossGood
	if *bad {
		loss = c.LossBad
	}
	return loss > 0 && rng.Float64() < loss
}

// GilbertElliott is a standalone seeded chain for per-packet stepping.
type GilbertElliott struct {
	cfg GEConfig
	bad bool
	rng *rand.Rand
}

// NewGilbertElliott builds a chain starting in the Good state.
func NewGilbertElliott(cfg GEConfig, seed int64) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Lose steps the chain one packet and reports whether it is lost.
func (g *GilbertElliott) Lose() bool { return g.cfg.step(g.rng, &g.bad) }

// Bad reports whether the chain is currently in the bursty state.
func (g *GilbertElliott) Bad() bool { return g.bad }
