package fault

import (
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Fire("anything", int64(i)) {
			t.Fatal("nil injector fired")
		}
	}
	if tr := in.Trace(); tr != nil {
		t.Fatalf("nil injector has trace %v", tr)
	}
}

func TestOneShotAndPeriodic(t *testing.T) {
	in := New(1)
	in.Arm("once", OneShot{N: 3})
	in.Arm("beat", Periodic{Every: 4})
	var onceFires, beatFires []int64
	for i := int64(1); i <= 12; i++ {
		if in.Fire("once", i) {
			onceFires = append(onceFires, i)
		}
		if in.Fire("beat", i) {
			beatFires = append(beatFires, i)
		}
	}
	if len(onceFires) != 1 || onceFires[0] != 3 {
		t.Fatalf("one-shot fired at %v, want [3]", onceFires)
	}
	if len(beatFires) != 3 || beatFires[0] != 4 || beatFires[1] != 8 || beatFires[2] != 12 {
		t.Fatalf("periodic fired at %v, want [4 8 12]", beatFires)
	}
}

func TestWindowConfinesFiring(t *testing.T) {
	in := New(7)
	in.Arm("w", Window{FromPs: 100, ToPs: 200, Prob: 1})
	for now := int64(0); now < 300; now += 10 {
		got := in.Fire("w", now)
		want := now >= 100 && now < 200
		if got != want {
			t.Fatalf("window fire at now=%d: got %v want %v", now, got, want)
		}
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	run := func() string {
		in := New(42)
		in.Arm("a", Bernoulli{Prob: 0.3})
		in.Arm("b", Burst{GE: GEConfig{PGoodBad: 0.1, PBadGood: 0.4, LossBad: 0.9}})
		for i := int64(0); i < 500; i++ {
			in.Fire("a", i)
			in.Fire("b", i)
		}
		return in.TraceString()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no events fired at all")
	}
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n---\n%s", a, b)
	}
}

// Per-site streams must be independent of cross-site interleaving: the
// decisions at site "a" may not change when a second site starts being
// consulted in between.
func TestSiteStreamsIndependent(t *testing.T) {
	solo := New(9)
	solo.Arm("a", Bernoulli{Prob: 0.5})
	var soloBits []bool
	for i := int64(0); i < 200; i++ {
		soloBits = append(soloBits, solo.Fire("a", i))
	}

	mixed := New(9)
	mixed.Arm("a", Bernoulli{Prob: 0.5})
	mixed.Arm("noise", Bernoulli{Prob: 0.5})
	for i := int64(0); i < 200; i++ {
		mixed.Fire("noise", i)
		if mixed.Fire("a", i) != soloBits[i] {
			t.Fatalf("site a decision %d changed under interleaving", i)
		}
		mixed.Fire("noise", i)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// A harsh bad state with slow recovery must produce clustered losses:
	// the number of loss->loss adjacencies should far exceed what the
	// same loss rate would give independently.
	ge := NewGilbertElliott(GEConfig{PGoodBad: 0.02, PBadGood: 0.2, LossGood: 0, LossBad: 1}, 3)
	const n = 20000
	losses, pairs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		l := ge.Lose()
		if l {
			losses++
			if prev {
				pairs++
			}
		}
		prev = l
	}
	if losses == 0 {
		t.Fatal("GE chain never lost")
	}
	rate := float64(losses) / n
	indep := rate * rate * n // expected adjacent pairs if independent
	if float64(pairs) < 4*indep {
		t.Fatalf("losses not bursty: %d pairs, independent expectation %.1f (rate %.3f)", pairs, indep, rate)
	}
}

func TestCountsAndSites(t *testing.T) {
	in := New(5)
	in.Arm("x", OneShot{N: 1})
	in.Arm("y", Periodic{Every: 2})
	in.Fire("x", 0)
	in.Fire("y", 0)
	in.Fire("y", 0)
	total, fired := in.Counts()
	if total != 3 || fired != 2 {
		t.Fatalf("counts = (%d,%d), want (3,2)", total, fired)
	}
	s := in.Sites()
	if len(s) != 2 || s[0] != "x" || s[1] != "y" {
		t.Fatalf("sites = %v", s)
	}
}
