package fault

import (
	"strings"
	"testing"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Fire("anything", int64(i)) {
			t.Fatal("nil injector fired")
		}
	}
	if tr := in.Trace(); tr != nil {
		t.Fatalf("nil injector has trace %v", tr)
	}
}

func TestOneShotAndPeriodic(t *testing.T) {
	in := New(1)
	in.Arm("once", OneShot{N: 3})
	in.Arm("beat", Periodic{Every: 4})
	var onceFires, beatFires []int64
	for i := int64(1); i <= 12; i++ {
		if in.Fire("once", i) {
			onceFires = append(onceFires, i)
		}
		if in.Fire("beat", i) {
			beatFires = append(beatFires, i)
		}
	}
	if len(onceFires) != 1 || onceFires[0] != 3 {
		t.Fatalf("one-shot fired at %v, want [3]", onceFires)
	}
	if len(beatFires) != 3 || beatFires[0] != 4 || beatFires[1] != 8 || beatFires[2] != 12 {
		t.Fatalf("periodic fired at %v, want [4 8 12]", beatFires)
	}
}

func TestWindowConfinesFiring(t *testing.T) {
	in := New(7)
	in.Arm("w", Window{FromPs: 100, ToPs: 200, Prob: 1})
	for now := int64(0); now < 300; now += 10 {
		got := in.Fire("w", now)
		want := now >= 100 && now < 200
		if got != want {
			t.Fatalf("window fire at now=%d: got %v want %v", now, got, want)
		}
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	run := func() string {
		in := New(42)
		in.Arm("a", Bernoulli{Prob: 0.3})
		in.Arm("b", Burst{GE: GEConfig{PGoodBad: 0.1, PBadGood: 0.4, LossBad: 0.9}})
		for i := int64(0); i < 500; i++ {
			in.Fire("a", i)
			in.Fire("b", i)
		}
		return in.TraceString()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no events fired at all")
	}
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n---\n%s", a, b)
	}
}

// Per-site streams must be independent of cross-site interleaving: the
// decisions at site "a" may not change when a second site starts being
// consulted in between.
func TestSiteStreamsIndependent(t *testing.T) {
	solo := New(9)
	solo.Arm("a", Bernoulli{Prob: 0.5})
	var soloBits []bool
	for i := int64(0); i < 200; i++ {
		soloBits = append(soloBits, solo.Fire("a", i))
	}

	mixed := New(9)
	mixed.Arm("a", Bernoulli{Prob: 0.5})
	mixed.Arm("noise", Bernoulli{Prob: 0.5})
	for i := int64(0); i < 200; i++ {
		mixed.Fire("noise", i)
		if mixed.Fire("a", i) != soloBits[i] {
			t.Fatalf("site a decision %d changed under interleaving", i)
		}
		mixed.Fire("noise", i)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// A harsh bad state with slow recovery must produce clustered losses:
	// the number of loss->loss adjacencies should far exceed what the
	// same loss rate would give independently.
	ge := NewGilbertElliott(GEConfig{PGoodBad: 0.02, PBadGood: 0.2, LossGood: 0, LossBad: 1}, 3)
	const n = 20000
	losses, pairs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		l := ge.Lose()
		if l {
			losses++
			if prev {
				pairs++
			}
		}
		prev = l
	}
	if losses == 0 {
		t.Fatal("GE chain never lost")
	}
	rate := float64(losses) / n
	indep := rate * rate * n // expected adjacent pairs if independent
	if float64(pairs) < 4*indep {
		t.Fatalf("losses not bursty: %d pairs, independent expectation %.1f (rate %.3f)", pairs, indep, rate)
	}
}

func TestCountsAndSites(t *testing.T) {
	in := New(5)
	in.Arm("x", OneShot{N: 1})
	in.Arm("y", Periodic{Every: 2})
	in.Fire("x", 0)
	in.Fire("y", 0)
	in.Fire("y", 0)
	total, fired := in.Counts()
	if total != 3 || fired != 2 {
		t.Fatalf("counts = (%d,%d), want (3,2)", total, fired)
	}
	s := in.Sites()
	if len(s) != 2 || s[0] != "x" || s[1] != "y" {
		t.Fatalf("sites = %v", s)
	}
}

// TestPartitionCutsDirections pins the Partition plan's link semantics:
// symmetric partitions cut both directions inside the window, OneWay
// cuts only A->B, and uninvolved endpoints are never cut.
func TestPartitionCutsDirections(t *testing.T) {
	in := New(11)
	in.Arm("cut", Partition{FromPs: 100, ToPs: 200, A: []int{0, 1}, B: []int{2}})
	cases := []struct {
		src, dst int
		now      int64
		want     bool
	}{
		{0, 2, 150, true},  // A->B inside window
		{2, 1, 150, true},  // B->A inside window (symmetric)
		{0, 1, 150, false}, // intra-A traffic unaffected
		{0, 3, 150, false}, // endpoint in neither set
		{0, 2, 50, false},  // before the window
		{0, 2, 200, false}, // window end is exclusive
	}
	for _, c := range cases {
		if got := in.FireLink("cut", c.src, c.dst, c.now); got != c.want {
			t.Fatalf("FireLink(%d>%d, now=%d) = %v, want %v", c.src, c.dst, c.now, got, c.want)
		}
	}

	one := New(12)
	one.Arm("cut", Partition{FromPs: 0, ToPs: 100, A: []int{0}, B: []int{1}, OneWay: true})
	if !one.FireLink("cut", 0, 1, 50) {
		t.Fatal("asymmetric partition must cut A->B")
	}
	if one.FireLink("cut", 1, 0, 50) {
		t.Fatal("asymmetric partition must not cut B->A")
	}
}

// TestPartitionsCompose checks that a Partitions plan cuts a link while
// any member window does, and that the same value can arm several
// injectors (both directions of a link decided from different senders)
// consistently.
func TestPartitionsCompose(t *testing.T) {
	plan := Partitions{
		{FromPs: 0, ToPs: 50, A: []int{0}, B: []int{1}},
		{FromPs: 100, ToPs: 150, A: []int{1}, B: []int{2}, OneWay: true},
	}
	a, b := New(1), New(2) // distinct seeds: decisions must not depend on RNG
	a.Arm("cut", plan)
	b.Arm("cut", plan)
	type q struct {
		src, dst int
		now      int64
		want     bool
	}
	for _, c := range []q{
		{0, 1, 25, true}, {1, 0, 25, true}, {1, 2, 25, false},
		{1, 2, 125, true}, {2, 1, 125, false}, {0, 1, 125, false},
		{0, 1, 75, false},
	} {
		ga := a.FireLink("cut", c.src, c.dst, c.now)
		gb := b.FireLink("cut", c.src, c.dst, c.now)
		if ga != c.want || gb != c.want {
			t.Fatalf("Partitions(%d>%d, now=%d): a=%v b=%v want %v", c.src, c.dst, c.now, ga, gb, c.want)
		}
	}
}

// TestPartitionTraceRecordsLinks pins seed-reproducibility and the
// directed-event trace form: same seed and consultation sequence, same
// canonical trace, with link=src>dst annotations on directed events.
func TestPartitionTraceRecordsLinks(t *testing.T) {
	run := func() string {
		in := New(33)
		in.Arm("cut", Partition{FromPs: 10, ToPs: 30, A: []int{0}, B: []int{1}})
		in.Arm("drop", Bernoulli{Prob: 0.5})
		for now := int64(0); now < 40; now += 5 {
			in.FireLink("cut", 0, 1, now)
			in.FireLink("drop", 1, 0, now)
		}
		return in.TraceString()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different link traces:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "link=0>1") {
		t.Fatalf("directed trace missing link annotation:\n%s", a)
	}
	// The direction-blind fallback must also record its link.
	if !strings.Contains(a, "link=1>0") {
		t.Fatalf("fallback consultation missing link annotation:\n%s", a)
	}
}

// TestFireLinkFallsBackUndirected: a directionless plan consulted via
// FireLink behaves exactly like Fire (same stream, same decisions).
func TestFireLinkFallsBackUndirected(t *testing.T) {
	direct, linked := New(5), New(5)
	direct.Arm("x", Bernoulli{Prob: 0.4})
	linked.Arm("x", Bernoulli{Prob: 0.4})
	for i := int64(0); i < 200; i++ {
		if direct.Fire("x", i) != linked.FireLink("x", 3, 4, i) {
			t.Fatalf("FireLink fallback diverged from Fire at consultation %d", i)
		}
	}
}
