// Package ulp implements the upper-layer-protocol framing the paper's
// two workloads speak: a TLS 1.3-style record layer over AES-GCM (§II,
// §V-A) and HTTP responses with deflate content encoding carried as a
// sequence of independently compressed 4KB pages (§V-B/C: SmartDIMM
// compresses exclusively at page granularity and writes each compressed
// page to the TCP socket separately).
//
// The record layer here is the software/reference implementation; the
// SmartDIMM path produces byte-identical records through the DSA, which
// the tests cross-check.
package ulp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/deflate"
)

// TLS record constants.
const (
	RecordHeaderLen    = 5
	ContentTypeAppData = 0x17
	recordVersion      = 0x0303 // TLS 1.2 on the wire, as TLS 1.3 mandates
	// MaxRecordPayload is the TLS plaintext limit per record.
	MaxRecordPayload = 16384
)

// Errors of the record layer.
var (
	ErrRecordTooLarge = errors.New("ulp: record payload exceeds TLS maximum")
	ErrShortRecord    = errors.New("ulp: truncated record")
	ErrBadVersion     = errors.New("ulp: unexpected record version")
)

// Header builds the 5-byte TLS record header for a ciphertext of n
// bytes (including the tag). It doubles as the AEAD associated data.
func Header(ctLen int) []byte {
	return []byte{ContentTypeAppData, recordVersion >> 8, recordVersion & 0xff,
		byte(ctLen >> 8), byte(ctLen)}
}

// Session is one direction of a TLS connection's record protection:
// key, static IV, and a record sequence number (TLS 1.3 nonce
// construction: seq XORed into the IV).
type Session struct {
	gcm *aesgcm.GCM
	iv  [12]byte
	seq uint64
}

// NewSession derives a session from key material.
func NewSession(key, iv []byte) (*Session, error) {
	if len(iv) != 12 {
		return nil, fmt.Errorf("ulp: IV must be 12 bytes, got %d", len(iv))
	}
	g, err := aesgcm.NewGCM(key)
	if err != nil {
		return nil, err
	}
	s := &Session{gcm: g}
	copy(s.iv[:], iv)
	return s, nil
}

// Seq returns the next record sequence number.
func (s *Session) Seq() uint64 { return s.seq }

// nonce builds the per-record nonce and advances the sequence.
func (s *Session) nonce() []byte {
	iv := make([]byte, 12)
	copy(iv, s.iv[:])
	q := s.seq
	s.seq++
	for i := 0; i < 8; i++ {
		iv[11-i] ^= byte(q >> (8 * i))
	}
	return iv
}

// EncryptRecord seals payload into a full TLS record
// (header || ciphertext || tag).
func (s *Session) EncryptRecord(payload []byte) ([]byte, error) {
	if len(payload) > MaxRecordPayload {
		return nil, ErrRecordTooLarge
	}
	hdr := Header(len(payload) + aesgcm.TagSize)
	sealed, err := s.gcm.Seal(nil, s.nonce(), payload, hdr)
	if err != nil {
		return nil, err
	}
	return append(hdr, sealed...), nil
}

// DecryptRecord opens one record produced by EncryptRecord, returning
// the payload and the total record length consumed from data.
func (s *Session) DecryptRecord(data []byte) (payload []byte, consumed int, err error) {
	if len(data) < RecordHeaderLen {
		return nil, 0, ErrShortRecord
	}
	if data[0] != ContentTypeAppData || binary.BigEndian.Uint16(data[1:3]) != recordVersion {
		return nil, 0, ErrBadVersion
	}
	ctLen := int(binary.BigEndian.Uint16(data[3:5]))
	if len(data) < RecordHeaderLen+ctLen {
		return nil, 0, ErrShortRecord
	}
	hdr := data[:RecordHeaderLen]
	body := data[RecordHeaderLen : RecordHeaderLen+ctLen]
	pt, err := s.gcm.Open(nil, s.nonce(), body, hdr)
	if err != nil {
		return nil, 0, err
	}
	return pt, RecordHeaderLen + ctLen, nil
}

// EncryptMessage splits a message into maximal records.
func (s *Session) EncryptMessage(msg []byte) ([]byte, error) {
	var out []byte
	for len(msg) > 0 {
		n := len(msg)
		if n > MaxRecordPayload {
			n = MaxRecordPayload
		}
		rec, err := s.EncryptRecord(msg[:n])
		if err != nil {
			return nil, err
		}
		out = append(out, rec...)
		msg = msg[n:]
	}
	return out, nil
}

// DecryptMessage reverses EncryptMessage over a concatenated record
// stream.
func (s *Session) DecryptMessage(stream []byte) ([]byte, error) {
	var out []byte
	for len(stream) > 0 {
		pt, n, err := s.DecryptRecord(stream)
		if err != nil {
			return nil, err
		}
		out = append(out, pt...)
		stream = stream[n:]
	}
	return out, nil
}

// --- Deflate content encoding (page sequence) -----------------------------

// CompressBody encodes a response body as a sequence of independently
// compressed pages, each framed by the 4-byte page header of
// core.EncodeCompressedPage. enc selects the encoder: nil uses the
// software encoder (CPU baseline), otherwise the hardware-style DSA
// model.
func CompressBody(body []byte, enc *deflate.HWEncoder) []byte {
	var out []byte
	for len(body) > 0 {
		n := len(body)
		if n > core.MaxCompressInput {
			n = core.MaxCompressInput
		}
		var page []byte
		if enc != nil {
			// n is capped at MaxCompressInput above, so encoding cannot
			// fail; a failure here is a programmer error.
			full, err := core.EncodeCompressedPage(body[:n], enc)
			if err != nil {
				panic(err)
			}
			plen, _ := core.CompressedPayloadLen(full)
			page = full[:4+plen]
		} else {
			page = softPage(body[:n])
		}
		out = append(out, page...)
		body = body[n:]
	}
	return out
}

// softPage frames a software-deflate stream in the page format.
func softPage(data []byte) []byte {
	stream := deflate.Compress(data)
	if len(stream) <= len(data) {
		out := make([]byte, 4+len(stream))
		binary.LittleEndian.PutUint32(out, uint32(len(stream)))
		copy(out[4:], stream)
		return out
	}
	out := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(out, uint32(len(data))|1<<31)
	copy(out[4:], data)
	return out
}

// DecompressBody reverses CompressBody.
func DecompressBody(data []byte) ([]byte, error) {
	var out []byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, errors.New("ulp: truncated page header")
		}
		hdr := binary.LittleEndian.Uint32(data)
		plen := int(hdr &^ (1 << 31))
		if len(data) < 4+plen {
			return nil, errors.New("ulp: truncated page payload")
		}
		chunk := data[: 4+plen : 4+plen]
		orig, err := core.DecodeCompressedPage(chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, orig...)
		data = data[4+plen:]
	}
	return out, nil
}

// --- Minimal HTTP response framing -----------------------------------------

// BuildResponse frames an HTTP/1.1 200 response with the given body and
// optional Content-Encoding tag (the examples use it; the server model
// accounts framing bytes separately).
func BuildResponse(body []byte, contentEncoding string) []byte {
	head := "HTTP/1.1 200 OK\r\n"
	if contentEncoding != "" {
		head += "Content-Encoding: " + contentEncoding + "\r\n"
	}
	head += fmt.Sprintf("Content-Length: %d\r\n\r\n", len(body))
	return append([]byte(head), body...)
}
