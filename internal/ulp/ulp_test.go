package ulp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/deflate"
)

func pair(t *testing.T) (*Session, *Session) {
	t.Helper()
	key := []byte("0123456789abcdef")
	iv := []byte("abcdefghijkl")
	tx, err := NewSession(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSession(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestRecordRoundTrip(t *testing.T) {
	tx, rx := pair(t)
	for _, n := range []int{0, 1, 100, MaxRecordPayload} {
		payload := corpus.Generate(corpus.Text, n, int64(n))
		rec, err := tx.EncryptRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec) != RecordHeaderLen+n+aesgcm.TagSize {
			t.Fatalf("record length %d", len(rec))
		}
		pt, consumed, err := rx.DecryptRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(rec) || !bytes.Equal(pt, payload) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	tx, _ := pair(t)
	if _, err := tx.EncryptRecord(make([]byte, MaxRecordPayload+1)); err != ErrRecordTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestSequenceNumbersMatter(t *testing.T) {
	tx, rx := pair(t)
	r1, _ := tx.EncryptRecord([]byte("first"))
	r2, _ := tx.EncryptRecord([]byte("second"))
	// Decrypting out of order must fail (nonce mismatch).
	if _, _, err := rx.DecryptRecord(r2); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	// Fresh receiver in order works.
	_, rx2 := pair(t)
	if _, _, err := rx2.DecryptRecord(r1); err != nil {
		t.Fatal(err)
	}
	if pt, _, err := rx2.DecryptRecord(r2); err != nil || string(pt) != "second" {
		t.Fatal("in-order decrypt failed")
	}
}

func TestMessageFragmentation(t *testing.T) {
	tx, rx := pair(t)
	msg := corpus.Generate(corpus.HTML, 3*MaxRecordPayload+777, 5)
	stream, err := tx.EncryptMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rx.DecryptMessage(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message mismatch")
	}
	if tx.Seq() != 4 {
		t.Fatalf("records used = %d, want 4", tx.Seq())
	}
}

func TestRecordParsingErrors(t *testing.T) {
	_, rx := pair(t)
	if _, _, err := rx.DecryptRecord([]byte{1, 2}); err != ErrShortRecord {
		t.Fatalf("short: %v", err)
	}
	bad := Header(100)
	bad[1] = 0x02 // wrong version
	if _, _, err := rx.DecryptRecord(append(bad, make([]byte, 100)...)); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
	hdr := Header(100) // claims 100 bytes, provides 10
	if _, _, err := rx.DecryptRecord(append(hdr, make([]byte, 10)...)); err != ErrShortRecord {
		t.Fatalf("truncated body: %v", err)
	}
	// Tampering detected.
	tx, rx2 := pair(t)
	rec, _ := tx.EncryptRecord([]byte("data"))
	rec[7] ^= 1
	if _, _, err := rx2.DecryptRecord(rec); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession([]byte("short"), make([]byte, 12)); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, err := NewSession(make([]byte, 16), make([]byte, 8)); err == nil {
		t.Fatal("bad IV accepted")
	}
}

func TestCompressBodyRoundTripBothEncoders(t *testing.T) {
	for _, kind := range []corpus.Kind{corpus.HTML, corpus.Random, corpus.Zeros} {
		body := corpus.Generate(kind, 3*core.MaxCompressInput+1000, 3)
		// Software encoder.
		sw := CompressBody(body, nil)
		got, err := DecompressBody(sw)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("%v soft: %v", kind, err)
		}
		// Hardware-style encoder.
		hw := CompressBody(body, deflate.NewHWEncoder(deflate.PaperHWConfig()))
		got, err = DecompressBody(hw)
		if err != nil || !bytes.Equal(got, body) {
			t.Fatalf("%v hw: %v", kind, err)
		}
		if kind == corpus.HTML && len(sw) >= len(body) {
			t.Fatal("html did not compress")
		}
		if kind == corpus.HTML && len(sw) > len(hw) {
			t.Fatal("software encoder should compress at least as well as the DSA")
		}
	}
}

func TestDecompressBodyErrors(t *testing.T) {
	if _, err := DecompressBody([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	hdr := []byte{100, 0, 0, 0, 1, 2, 3} // claims 100 payload bytes
	if _, err := DecompressBody(hdr); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestCompressBodyQuick(t *testing.T) {
	f := func(body []byte) bool {
		out, err := DecompressBody(CompressBody(body, nil))
		return err == nil && bytes.Equal(out, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildResponse(t *testing.T) {
	resp := BuildResponse([]byte("body"), "deflate")
	s := string(resp)
	if !bytes.HasPrefix(resp, []byte("HTTP/1.1 200 OK\r\n")) {
		t.Fatal("status line")
	}
	if !bytes.Contains(resp, []byte("Content-Encoding: deflate\r\n")) {
		t.Fatalf("encoding header missing in %q", s)
	}
	if !bytes.HasSuffix(resp, []byte("\r\n\r\nbody")) {
		t.Fatalf("body framing wrong: %q", s)
	}
	plain := BuildResponse(nil, "")
	if bytes.Contains(plain, []byte("Content-Encoding")) {
		t.Fatal("spurious encoding header")
	}
}
