package workload

import (
	"fmt"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

// Fault schedules one fleet event into a run: a forced rank failure
// (breaker trip + drain), or a readmission when Restore is set.
type Fault struct {
	AtPs    int64
	Rank    int
	Restore bool
}

// RunConfig assembles one end-to-end workload run: a multi-rank
// SmartDIMM fleet serving a KV-cache or embedding-gather request mix
// under open-loop trace-replay traffic, optionally supervised by the
// SLO autoscaler.
type RunConfig struct {
	// Kind selects the request source: "kv" or "embed".
	Kind string
	// Ranks is the fleet size. Zero selects 4.
	Ranks int
	// InitialActive caps how many ranks start admitted (the rest are
	// administratively parked for the autoscaler to deploy). Zero means
	// all ranks start active.
	InitialActive int
	// Policy is the starting placement policy.
	Policy fleet.Policy
	// Conns/Workers mirror the server knobs. Zero selects 64/10.
	Conns, Workers int
	Seed           int64

	// Arrivals shapes the open-loop trace. Connections, Seed, and
	// HorizonPs are filled from the run when zero.
	Arrivals  wrkgen.ArrivalConfig
	HorizonPs int64 // trace horizon; zero selects 10ms
	WarmupPs  int64 // measurement gate; zero selects 1ms
	DrainPs   int64 // post-horizon settle window; zero selects 2ms

	KV    KVConfig
	Embed EmbedConfig

	// Scale, when non-nil, runs the autoscaler over the fleet: Run fills
	// Obs/Fl/Window, and installs a default FlipPolicy (switch to
	// LeastLoaded) when none is set.
	Scale *autoscale.Config

	// ScrapePs is the obs scrape interval. Zero selects the autoscaler's
	// control interval (one scrape per tick), or 200us without a Scale.
	// The control interval must be a whole multiple of it.
	ScrapePs int64
	// SeriesCap bounds each series ring; zero sizes the ring to hold the
	// whole run so tick timelines stay index-aligned.
	SeriesCap int
	// Rules are alert rules evaluated on every scrape tick.
	Rules []obs.Rule
	// Record arms the per-run tracer and flight recorder: every rule
	// firing captures an incident bundle (ps-windowed trace slice plus
	// canonical report correlating alerts, actions, and faults).
	Record bool
	// LookbackPs is the incident bundle window; zero selects 2ms.
	LookbackPs int64

	// Faults are injected fleet events (flash-crowd chaos).
	Faults []Fault

	// Pool parallelizes trace generation (nil = serial); the trace — and
	// therefore the whole run — is byte-identical either way.
	Pool *runner.Pool
	// TracePlacement enables the fleet placement trace in the report.
	TracePlacement bool
}

func (c *RunConfig) defaults() error {
	if c.Kind != "kv" && c.Kind != "embed" {
		return fmt.Errorf("workload: unknown kind %q (want kv or embed)", c.Kind)
	}
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.InitialActive <= 0 || c.InitialActive > c.Ranks {
		c.InitialActive = c.Ranks
	}
	if c.Conns <= 0 {
		c.Conns = 64
	}
	if c.Workers <= 0 {
		c.Workers = 10
	}
	if c.HorizonPs <= 0 {
		c.HorizonPs = 10 * sim.Ms
	}
	if c.WarmupPs <= 0 {
		c.WarmupPs = sim.Ms
	}
	if c.DrainPs <= 0 {
		c.DrainPs = 2 * sim.Ms
	}
	return nil
}

// Report is one run's outcome; Canonical renders the byte-compared
// determinism artifact.
type Report struct {
	Kind    string
	Metrics server.Metrics
	// Issued/Completed/PeakInFlight are the open-loop replayer's view.
	Issued, Completed uint64
	PeakInFlight      int
	// P50/P99 come from the replayer's end-to-end record over the
	// measured window.
	P50Ps, P99Ps float64
	// Fleet state at the end of the run.
	Fleet       fleet.Totals
	FinalActive int
	PagesOK     bool
	// Workload-mix counters (whichever source ran).
	Gets, Sets, Gathers uint64
	// Autoscaler outcome (zero-valued without Scale).
	SLOHeldFrac    float64
	Actions        string // autoscale.Controller.TraceString
	ActiveTimeline []int
	P99Timeline    []float64 // observed tail per control tick
	Placement      string    // fleet placement trace (TracePlacement only)
	// Observability outcome (zero-valued when the obs plane was off).
	AlertLog         string // obs transition log, one line per transition
	Alerts           []obs.Transition
	Incidents        []obs.Incident
	IncidentsDropped int
	// Store is the scraped series store (nil when the plane was off) —
	// the figures' timeline source. Not part of Canonical.
	Store *obs.Store
	// Trace is the run tracer (Record only). Not part of Canonical.
	Trace *telemetry.Tracer
}

// Collect implements telemetry.Collector.
func (r Report) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "issued", Value: float64(r.Issued)})
	emit(telemetry.Sample{Name: "completed", Value: float64(r.Completed)})
	emit(telemetry.Sample{Name: "peak_inflight", Value: float64(r.PeakInFlight)})
	emit(telemetry.Sample{Name: "p50_lat_ps", Value: r.P50Ps})
	emit(telemetry.Sample{Name: "p99_lat_ps", Value: r.P99Ps})
	emit(telemetry.Sample{Name: "gets", Value: float64(r.Gets)})
	emit(telemetry.Sample{Name: "sets", Value: float64(r.Sets)})
	emit(telemetry.Sample{Name: "gathers", Value: float64(r.Gathers)})
	emit(telemetry.Sample{Name: "slo_held_frac", Value: r.SLOHeldFrac})
	emit(telemetry.Sample{Name: "final_active", Value: float64(r.FinalActive)})
}

// Canonical renders every deterministic observable — counts, latency
// percentiles, fleet totals, the action log, the active-rank timeline —
// into one string for byte comparison across worker counts.
func (r Report) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind %s\n", r.Kind)
	fmt.Fprintf(&b, "issued %d completed %d peak %d\n", r.Issued, r.Completed, r.PeakInFlight)
	fmt.Fprintf(&b, "requests %d tx %d errors %d\n", r.Metrics.Requests, r.Metrics.TXBytes, r.Metrics.Errors)
	fmt.Fprintf(&b, "lat p50 %g p99 %g mean %d\n", r.P50Ps, r.P99Ps, r.Metrics.MeanLatPs)
	fmt.Fprintf(&b, "mix gets %d sets %d gathers %d\n", r.Gets, r.Sets, r.Gathers)
	fmt.Fprintf(&b, "fleet active %d trips %d migr %d sheds %d soft %d admdrain %d admadmit %d\n",
		r.FinalActive, r.Fleet.Trips, r.Fleet.Migrations, r.Fleet.Sheds, r.Fleet.SoftOps,
		r.Fleet.AdminDrains, r.Fleet.AdminAdmits)
	fmt.Fprintf(&b, "pages_ok %v\n", r.PagesOK)
	fmt.Fprintf(&b, "slo_held %g\n", r.SLOHeldFrac)
	fmt.Fprintf(&b, "active_timeline %v\n", r.ActiveTimeline)
	b.WriteString("--- actions ---\n")
	b.WriteString(r.Actions)
	b.WriteString("--- alerts ---\n")
	b.WriteString(r.AlertLog)
	fmt.Fprintf(&b, "incidents %d dropped %d\n", len(r.Incidents), r.IncidentsDropped)
	if r.Placement != "" {
		b.WriteString("--- placement ---\n")
		b.WriteString(r.Placement)
		b.WriteByte('\n')
	}
	return b.String()
}

// Run executes one workload scenario end to end and reports.
func Run(cfg RunConfig) (Report, error) {
	if err := cfg.defaults(); err != nil {
		return Report{}, err
	}
	var tracer *telemetry.Tracer
	if cfg.Record {
		tracer = telemetry.New()
	}
	params := sim.DefaultParams()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: params, LLCBytes: 2 << 20, LLCWays: 8,
		Geometry:       dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128},
		WithSmartDIMM:  true,
		SmartDIMMRanks: cfg.Ranks,
		Tracer:         tracer,
	})
	if err != nil {
		return Report{}, err
	}
	fl, err := fleet.New(fleet.Config{Sys: sys, Policy: cfg.Policy, TracePlacement: cfg.TracePlacement})
	if err != nil {
		return Report{}, err
	}
	// Park the tail ranks before any connection exists: placements avoid
	// them from the start, and only the autoscaler can deploy them.
	for i := cfg.InitialActive; i < cfg.Ranks; i++ {
		if err := fl.Drain(i); err != nil {
			return Report{}, err
		}
	}

	var (
		src server.WorkloadSource
		kv  *KV
		em  *Embed
		msg int
	)
	switch cfg.Kind {
	case "kv":
		c := cfg.KV
		c.Seed = cfg.Seed
		if kv, err = NewKV(c); err != nil {
			return Report{}, err
		}
		src, msg = kv, kv.MaxPayload()
	case "embed":
		c := cfg.Embed
		c.Seed = cfg.Seed
		if em, err = NewEmbed(c); err != nil {
			return Report{}, err
		}
		src, msg = em, em.MaxPayload()
	}

	win := stats.NewWindow(4)
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: fl, Mode: server.HTTPSMode, Workers: cfg.Workers,
		MsgSize: msg, Connections: cfg.Conns, FileKind: corpus.Text, Seed: cfg.Seed,
		Source: src, LatWindow: win,
	})
	if err != nil {
		return Report{}, err
	}

	reg := telemetry.NewRegistry()
	fl.RegisterMetrics(reg)
	reg.Register("server.window", win)

	arr := cfg.Arrivals
	if arr.Connections <= 0 {
		arr.Connections = cfg.Conns
	}
	if arr.Seed == 0 {
		arr.Seed = cfg.Seed
	}
	if arr.HorizonPs <= 0 {
		arr.HorizonPs = cfg.HorizonPs
	}
	trace, err := wrkgen.GenArrivalsPooled(arr, cfg.Pool)
	if err != nil {
		return Report{}, err
	}
	// The server feeds the window itself (LatWindow): pass nil here or
	// every completion would be observed twice.
	gen := wrkgen.NewOpenLoop(sys.Engine, srv, trace, nil)

	// The observability plane: armed whenever anything consumes it (the
	// autoscaler, alert rules, or the flight recorder). Bench runs with
	// none of those schedule no scrape events and stay byte-identical.
	var (
		scraper *obs.Scraper
		rec     *obs.Recorder
		tickPs  int64
	)
	if cfg.Scale != nil {
		if tickPs = cfg.Scale.TickPs; tickPs <= 0 {
			tickPs = 500 * sim.Us
		}
	}
	if cfg.Scale != nil || len(cfg.Rules) > 0 || cfg.Record || cfg.ScrapePs > 0 {
		scrapePs := cfg.ScrapePs
		if scrapePs <= 0 {
			if scrapePs = tickPs; scrapePs <= 0 {
				scrapePs = 200 * sim.Us
			}
		}
		seriesCap := cfg.SeriesCap
		if seriesCap <= 0 {
			// Hold the whole run: tick timelines index straight into the
			// ring only while it has not wrapped.
			seriesCap = int((cfg.HorizonPs+cfg.DrainPs)/scrapePs) + 8
		}
		if cfg.Record {
			rec = obs.NewRecorder(obs.RecorderConfig{LookbackPs: cfg.LookbackPs})
		}
		scraper, err = obs.New(obs.Config{
			Eng: sys.Engine, Reg: reg, IntervalPs: scrapePs, SeriesCap: seriesCap,
			Rules: cfg.Rules, Tracer: tracer,
			TraceSeries: []string{"server.window.p99", "fleet.active"},
			Recorder:    rec,
		})
		if err != nil {
			return Report{}, err
		}
	}

	var ctl *autoscale.Controller
	if cfg.Scale != nil {
		sc := *cfg.Scale
		sc.Obs, sc.Fl, sc.Window = scraper, fl, win
		if sc.FlipPolicy == nil {
			sc.FlipPolicy = func() { fl.SetPolicy(fleet.LeastLoaded) }
		}
		if rec != nil && sc.OnAction == nil {
			sc.OnAction = func(a autoscale.Action) {
				if a.Rank < 0 {
					rec.Note(a.AtPs, "action", fmt.Sprintf("%s p99=%g", a.What, a.P99))
				} else {
					rec.Note(a.AtPs, "action", fmt.Sprintf("%s d%d p99=%g", a.What, a.Rank, a.P99))
				}
			}
		}
		if ctl, err = autoscale.New(sc); err != nil {
			return Report{}, err
		}
		ctl.Start()
	}
	if scraper != nil {
		scraper.Start()
	}

	for _, f := range cfg.Faults {
		f := f
		sys.Engine.At(f.AtPs, func() {
			if f.Restore {
				_ = fl.Admit(f.Rank)
				rec.Note(f.AtPs, "fault", fmt.Sprintf("restore rank%d", f.Rank))
			} else {
				_ = fl.Fail(f.Rank)
				rec.Note(f.AtPs, "fault", fmt.Sprintf("fail rank%d", f.Rank))
			}
		})
	}

	gen.Start()
	sys.Engine.RunUntil(cfg.WarmupPs)
	srv.BeginMeasurement()
	gen.BeginMeasurement()
	sys.Engine.RunUntil(arr.HorizonPs + cfg.DrainPs)

	m := srv.Collect()
	if err := srv.LastError(); err != nil {
		return Report{}, fmt.Errorf("workload %s: %w", cfg.Kind, err)
	}
	rep := Report{
		Kind: cfg.Kind, Metrics: m,
		Issued: gen.Issued, Completed: gen.Completed, PeakInFlight: gen.PeakIn,
		P50Ps: gen.Latency.Percentile(50), P99Ps: gen.Latency.Percentile(99),
		Fleet:       fl.Totals(),
		FinalActive: fl.ActiveMembers(),
		PagesOK:     fl.OutstandingPages() == fl.ExpectedPages(),
	}
	if kv != nil {
		rep.Gets, rep.Sets = kv.Gets, kv.Sets
	}
	if em != nil {
		rep.Gathers = em.Gathers
	}
	if scraper != nil {
		rep.AlertLog = scraper.AlertLogString()
		rep.Alerts = scraper.Transitions()
		rep.Store = scraper.Store()
		rep.Trace = tracer
	}
	if rec != nil {
		rep.Incidents = rec.Incidents
		rep.IncidentsDropped = rec.Dropped
	}
	if ctl != nil {
		rep.SLOHeldFrac = ctl.SLOHeldFrac()
		rep.Actions = ctl.TraceString()
		// The figure timelines come from the series store: the control
		// tick is every tickEvery-th scrape, so every tickEvery-th point
		// of a series is its value at a tick.
		tickEvery := int(tickPs / scraper.IntervalPs())
		prefix := cfg.Scale.LatencyPrefix
		if prefix == "" {
			prefix = "server.window"
		}
		p99s := seriesAtTicks(rep.Store, prefix+".p99", tickEvery)
		actives := seriesAtTicks(rep.Store, "fleet.active", tickEvery)
		rep.P99Timeline = p99s
		rep.ActiveTimeline = make([]int, len(actives))
		for i, v := range actives {
			rep.ActiveTimeline[i] = int(v)
		}
	}
	if cfg.TracePlacement {
		rep.Placement = fl.TraceString()
	}
	return rep, nil
}

// DefaultAlertRules is the production rule set for a workload run: a
// multi-window SLO burn-rate page on the rolling server tail (budget
// 25% of scrape intervals over SLO; page while both the 1ms and 400us
// windows burn at more than 2x budget, damped by 200us of For), and an
// instant breaker alert on any fleet trip in the last 300us.
func DefaultAlertRules(sloPs float64) []obs.Rule {
	return []obs.Rule{
		obs.BurnRate("slo-burn", "server.window.p99", sloPs,
			0.25, 2, sim.Ms, 400*sim.Us, 200*sim.Us),
		obs.Threshold("breaker-trip", "fleet.trips", obs.ReduceDelta,
			300*sim.Us, 0.5, 0),
	}
}

// seriesAtTicks extracts every every-th point of a scraped series —
// its value at each control tick, given one tick per every scrapes.
// Run sizes the ring to the whole run, so indices align with scrape
// numbers (the alignment the non-wrapping ring guarantees).
func seriesAtTicks(st *obs.Store, name string, every int) []float64 {
	se := st.Series(name)
	if se == nil || every <= 0 {
		return nil
	}
	var out []float64
	for i := 0; i < se.Len(); i++ {
		if (i+1)%every == 0 {
			out = append(out, se.At(i).V)
		}
	}
	return out
}
