// Package workload is the production workload suite: request sources
// that shape what each connection asks the server for — the KV-cache
// ULP (GET/SET records with zipfian keys and mixed value sizes) and the
// RecSys embedding-gather ULP (multi-table batched gathers with
// pooling) — plus the end-to-end Run harness that replays open-loop
// trace traffic through a SmartDIMM fleet under the SLO autoscaler.
//
// Sources implement server.WorkloadSource. All randomness lives in
// per-connection generator state seeded from (Seed, connID), so a
// source's request stream for connection c is a pure function of the
// config and c's submission count — reordering other connections never
// perturbs it, which is what keeps whole-run reports byte-identical at
// any worker count.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples {0..n-1} with P(k) proportional to 1/(k+1)^s by inverting the
// cumulative distribution: a single binary search per sample over a
// precomputed table, driven by a caller-supplied uniform variate. Keeping
// the RNG out of the sampler is deliberate — per-connection determinism
// needs the caller to own every bit of random state.
type Zipf struct {
	cum  []float64 // cum[k] = P(key <= k), cum[n-1] == 1
	mean float64   // analytic E[key]
}

// NewZipf builds the inverse-CDF table for n keys at skew s (s=0 is
// uniform; web cache traces run s in [0.9, 1.1]).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf needs keys, have %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: negative zipf skew %g", s)
	}
	z := &Zipf{cum: make([]float64, n)}
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
	}
	run, meanAcc := 0.0, 0.0
	for k := 0; k < n; k++ {
		p := math.Pow(float64(k+1), -s) / total
		run += p
		meanAcc += float64(k) * p
		z.cum[k] = run
	}
	z.cum[n-1] = 1 // absorb rounding
	z.mean = meanAcc
	return z, nil
}

// Sample maps a uniform variate u in [0,1) to a key.
func (z *Zipf) Sample(u float64) int {
	return sort.SearchFloat64s(z.cum, u)
}

// N returns the key-space size.
func (z *Zipf) N() int { return len(z.cum) }

// Mean returns the analytic expected key index — the exact moment the
// sampler test compares empirical draws against.
func (z *Zipf) Mean() float64 { return z.mean }

// P returns the probability of key k.
func (z *Zipf) P(k int) float64 {
	if k == 0 {
		return z.cum[0]
	}
	return z.cum[k] - z.cum[k-1]
}
