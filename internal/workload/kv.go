package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/server"
)

// KVConfig shapes the KV-cache workload: a memcached/Redis-style GET/SET
// mix carried as TLS records, with zipfian key popularity and per-key
// value sizes drawn from a small class mix (the bimodal small-metadata /
// large-blob shape of production caches).
type KVConfig struct {
	// Keys is the key-space size. Zero selects 4096.
	Keys int
	// ZipfS is the popularity skew. Negative is rejected; zero means
	// uniform. The conventional cache-trace value is 0.99.
	ZipfS float64
	// ReadFrac is the GET fraction; the rest are SETs. Zero selects 0.9.
	ReadFrac float64
	// ValueSizes / ValueWeights are the size classes and their mix.
	// Defaults: 128B (60%), 1KiB (30%), 4KiB (10%). Every key is assigned
	// one class up front (a key's value size is a property of the key,
	// not of the request).
	ValueSizes   []int
	ValueWeights []float64
	// AckBytes is the SET response size. Zero selects 64.
	AckBytes int
	Seed     int64
}

func (c *KVConfig) defaults() error {
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.9
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("workload: kv read fraction %g outside [0,1]", c.ReadFrac)
	}
	if len(c.ValueSizes) == 0 {
		c.ValueSizes = []int{128, 1024, 4096}
		c.ValueWeights = []float64{0.6, 0.3, 0.1}
	}
	if len(c.ValueWeights) == 0 {
		c.ValueWeights = make([]float64, len(c.ValueSizes))
		for i := range c.ValueWeights {
			c.ValueWeights[i] = 1
		}
	}
	if len(c.ValueWeights) != len(c.ValueSizes) {
		return fmt.Errorf("workload: %d value sizes but %d weights", len(c.ValueSizes), len(c.ValueWeights))
	}
	for _, s := range c.ValueSizes {
		if s <= 0 {
			return fmt.Errorf("workload: non-positive value size %d", s)
		}
	}
	if c.AckBytes <= 0 {
		c.AckBytes = 64
	}
	return nil
}

// KV is the KV-cache request source; it implements server.WorkloadSource.
type KV struct {
	cfg     KVConfig
	zipf    *Zipf
	valSize []int // per-key value size, fixed at construction

	rngs map[int]*rand.Rand // per-connection; seeded from (Seed, connID)

	// Gets/Sets count issued requests; GetBytes/SetBytes the value bytes
	// they moved (response bodies for GETs, request bodies for SETs).
	Gets, Sets         uint64
	GetBytes, SetBytes uint64
}

// NewKV validates the config and assigns every key its value-size class
// from the seeded class mix.
func NewKV(cfg KVConfig) (*KV, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	z, err := NewZipf(cfg.Keys, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	k := &KV{cfg: cfg, zipf: z, rngs: make(map[int]*rand.Rand)}
	total := 0.0
	for _, w := range cfg.ValueWeights {
		total += w
	}
	sizeRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	k.valSize = make([]int, cfg.Keys)
	for i := range k.valSize {
		u := sizeRng.Float64() * total
		run := 0.0
		k.valSize[i] = cfg.ValueSizes[len(cfg.ValueSizes)-1]
		for j, w := range cfg.ValueWeights {
			if run += w; u < run {
				k.valSize[i] = cfg.ValueSizes[j]
				break
			}
		}
	}
	return k, nil
}

// rng returns connection id's private generator, creating it on first
// use. Per-connection state is the determinism contract: connection c's
// request stream depends only on (Seed, c, submission count).
func (k *KV) rng(connID int) *rand.Rand {
	r, ok := k.rngs[connID]
	if !ok {
		r = rand.New(rand.NewSource(k.cfg.Seed + int64(connID)*0x9E3779B9 + 1))
		k.rngs[connID] = r
	}
	return r
}

// NextRequest implements server.WorkloadSource.
func (k *KV) NextRequest(connID int) server.RequestSpec {
	r := k.rng(connID)
	key := k.zipf.Sample(r.Float64())
	size := k.valSize[key]
	if r.Float64() < k.cfg.ReadFrac {
		k.Gets++
		k.GetBytes += uint64(size)
		return server.RequestSpec{Kind: "get", Payload: size}
	}
	k.Sets++
	k.SetBytes += uint64(size)
	return server.RequestSpec{Kind: "set", Payload: size, Store: true, Ack: k.cfg.AckBytes}
}

// MaxPayload is the largest value the source can return — the server's
// MsgSize must cover it.
func (k *KV) MaxPayload() int {
	max := 0
	for _, s := range k.cfg.ValueSizes {
		if s > max {
			max = s
		}
	}
	return max
}
