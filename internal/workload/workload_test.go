package workload

// Workload-suite unit tests: the zipf sampler's exact moments at a
// fixed seed, per-connection source determinism (a connection's stream
// must not depend on other connections' interleaving), and the
// end-to-end Run harness — same seed, same canonical report, serial or
// pooled, with the autoscaler reacting to a flash crowd.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/autoscale"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wrkgen"
)

// TestZipfMoments pins the sampler against its own analytic
// distribution at a fixed seed: the empirical mean over 200k draws must
// sit within a tight band of Zipf.Mean, the head key's frequency within
// a band of P(0), and every draw in range. Uniform (s=0) must also come
// out flat.
func TestZipfMoments(t *testing.T) {
	z, err := NewZipf(1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const draws = 200000
	var sum float64
	var head int
	for i := 0; i < draws; i++ {
		k := z.Sample(rng.Float64())
		if k < 0 || k >= z.N() {
			t.Fatalf("draw %d out of range", k)
		}
		sum += float64(k)
		if k == 0 {
			head++
		}
	}
	mean := sum / draws
	if rel := math.Abs(mean-z.Mean()) / z.Mean(); rel > 0.02 {
		t.Fatalf("empirical mean %g vs analytic %g (rel %g > 2%%)", mean, z.Mean(), rel)
	}
	headFreq := float64(head) / draws
	if rel := math.Abs(headFreq-z.P(0)) / z.P(0); rel > 0.02 {
		t.Fatalf("head frequency %g vs P(0)=%g (rel %g > 2%%)", headFreq, z.P(0), rel)
	}

	u, err := NewZipf(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (64.0 - 1) / 2
	if math.Abs(u.Mean()-want) > 1e-9 {
		t.Fatalf("uniform mean %g, want %g", u.Mean(), want)
	}
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("NewZipf accepted zero keys")
	}
}

// TestKVPerConnDeterminism: a connection's request stream is a pure
// function of (seed, conn, submission count) — interleaving other
// connections' requests must not perturb it.
func TestKVPerConnDeterminism(t *testing.T) {
	mk := func() *KV {
		kv, err := NewKV(KVConfig{Keys: 512, ZipfS: 0.99, ReadFrac: 0.8, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return kv
	}
	solo := mk()
	var want []int
	for i := 0; i < 40; i++ {
		spec := solo.NextRequest(7)
		want = append(want, spec.Payload, boolInt(spec.Store))
	}
	mixed := mk()
	var got []int
	for i := 0; i < 40; i++ {
		mixed.NextRequest(i % 5) // noise on other conns
		spec := mixed.NextRequest(7)
		got = append(got, spec.Payload, boolInt(spec.Store))
		mixed.NextRequest(100 + i)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("conn 7 stream diverged at %d: %v vs %v", i, want[i], got[i])
		}
	}
	if mixed.Gets+mixed.Sets != 120 {
		t.Fatalf("counter total %d, want 120", mixed.Gets+mixed.Sets)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestKVMix checks the GET/SET ratio and the size-class mix converge on
// the configured shares.
func TestKVMix(t *testing.T) {
	kv, err := NewKV(KVConfig{Keys: 2048, ZipfS: 0, ReadFrac: 0.75, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		spec := kv.NextRequest(i % 16)
		sizes[spec.Payload]++
		if spec.Store && spec.Kind != "set" || !spec.Store && spec.Kind != "get" {
			t.Fatalf("kind %q / store %v mismatch", spec.Kind, spec.Store)
		}
	}
	readFrac := float64(kv.Gets) / n
	if math.Abs(readFrac-0.75) > 0.02 {
		t.Fatalf("read fraction %g, want ~0.75", readFrac)
	}
	// Default classes 128/1024/4096 at 60/30/10% (uniform keys).
	for _, c := range []struct {
		size int
		frac float64
	}{{128, 0.6}, {1024, 0.3}, {4096, 0.1}} {
		got := float64(sizes[c.size]) / n
		if math.Abs(got-c.frac) > 0.05 {
			t.Fatalf("size %d share %g, want ~%g", c.size, got, c.frac)
		}
	}
	if kv.MaxPayload() != 4096 {
		t.Fatalf("MaxPayload %d, want 4096", kv.MaxPayload())
	}
}

// TestEmbedSpec checks the gather geometry lands in the spec.
func TestEmbedSpec(t *testing.T) {
	em, err := NewEmbed(EmbedConfig{Tables: 4, Lookups: 16, Dim: 32, Rows: 1 << 12, ZipfS: 1.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec := em.NextRequest(0)
	if spec.Kind != "gather" || spec.Store {
		t.Fatalf("spec %+v: want a gather GET", spec)
	}
	if want := 4 * 16 * 32 * 4; spec.GatherBytes != want {
		t.Fatalf("GatherBytes %d, want %d", spec.GatherBytes, want)
	}
	if want := 4 * 32 * 4; spec.Payload != want {
		t.Fatalf("Payload %d, want %d (pooled)", spec.Payload, want)
	}
	if em.RowsRead != 64 {
		t.Fatalf("RowsRead %d, want 64", em.RowsRead)
	}
	// Zipf skew 1.05 over 4096 rows: the hot 1% should take far more
	// than its uniform 1% share.
	for i := 0; i < 200; i++ {
		em.NextRequest(i % 8)
	}
	hotFrac := float64(em.HotRows) / float64(em.RowsRead)
	if hotFrac < 0.05 {
		t.Fatalf("hot-row fraction %g, want > 5%% under skew", hotFrac)
	}
}

// soakCfg is the shared end-to-end scenario: a 4-rank fleet starting at
// 2 active, a flash crowd mid-trace, a rank fault during the crowd, and
// the autoscaler holding the SLO.
func soakCfg(pool *runner.Pool) RunConfig {
	return RunConfig{
		Kind: "kv", Ranks: 4, InitialActive: 2, Conns: 48, Workers: 8, Seed: 11,
		HorizonPs: 8 * sim.Ms, WarmupPs: sim.Ms, DrainPs: 2 * sim.Ms,
		KV: KVConfig{Keys: 1024, ZipfS: 0.99, ReadFrac: 0.9},
		Arrivals: wrkgen.ArrivalConfig{
			Streams: 4, BaseRPS: 1.2e6,
			Flash: []wrkgen.FlashCrowd{{StartPs: 3 * sim.Ms, EndPs: 6 * sim.Ms, Mult: 3}},
		},
		Scale: &autoscale.Config{
			SLOPs: float64(40 * sim.Us), TickPs: 200 * sim.Us,
			UpAfter: 2, DownAfter: 6, CooldownTicks: 2, MinActive: 1,
		},
		Faults: []Fault{{AtPs: 4 * sim.Ms, Rank: 0}},
		Pool:   pool,
	}
}

// TestRunKVAutoscales is the end-to-end smoke: the flash crowd must
// push the autoscaler to admit parked ranks, the run must finish with
// page conservation intact, and the mix counters must add up.
func TestRunKVAutoscales(t *testing.T) {
	rep, err := Run(soakCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 || rep.Issued < rep.Completed {
		t.Fatalf("issued %d completed %d", rep.Issued, rep.Completed)
	}
	if rep.Fleet.AdminAdmits == 0 {
		t.Fatalf("flash crowd never scaled up:\n%s", rep.Actions)
	}
	if !rep.PagesOK {
		t.Fatal("page conservation violated")
	}
	if rep.Gets+rep.Sets != rep.Issued {
		t.Fatalf("mix %d+%d != issued %d", rep.Gets, rep.Sets, rep.Issued)
	}
	if rep.SLOHeldFrac <= 0 {
		t.Fatal("no measured SLO ticks")
	}
}

// TestRunSameSeedSameReport is the workload determinism gate: the same
// seed must produce a byte-identical canonical report whether the trace
// generates serially, on a 2-worker pool, or at GOMAXPROCS=2.
func TestRunSameSeedSameReport(t *testing.T) {
	ref, err := Run(soakCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Canonical()
	pooled, err := Run(soakCfg(runner.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := pooled.Canonical(); got != want {
		t.Fatalf("pooled report differs from serial:\n--- serial ---\n%s--- pooled ---\n%s", want, got)
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	again, err := Run(soakCfg(runner.New(0)))
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Canonical(); got != want {
		t.Fatal("GOMAXPROCS=2 report differs from serial")
	}
}

// TestRunEmbed drives the gather workload end to end: every request is
// a gather, and the gather stage must show up in the breakdown.
func TestRunEmbed(t *testing.T) {
	cfg := RunConfig{
		Kind: "embed", Ranks: 2, Conns: 24, Workers: 6, Seed: 3,
		HorizonPs: 4 * sim.Ms, WarmupPs: sim.Ms,
		Embed:    EmbedConfig{Tables: 4, Lookups: 8, Dim: 32, Rows: 1 << 12, ZipfS: 1.05},
		Arrivals: wrkgen.ArrivalConfig{Streams: 2, BaseRPS: 4e5},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gathers != rep.Issued {
		t.Fatalf("gathers %d != issued %d", rep.Gathers, rep.Issued)
	}
	if rep.Metrics.StagePs[server.StageGather] == 0 {
		t.Fatal("gather stage never attributed")
	}
	if !rep.PagesOK {
		t.Fatal("page conservation violated")
	}
}
