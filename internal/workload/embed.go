package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/server"
)

// EmbedConfig shapes the RecSys embedding-gather workload: each request
// is one inference batch's sparse-feature fetch — Lookups rows gathered
// from each of Tables embedding tables and sum-pooled to one Dim-float
// vector per table. The gather reads Tables*Lookups*Dim*4 bytes out of
// near-memory (the dominant memory-bound phase of DLRM-class models);
// only the pooled Tables*Dim*4 bytes continue into the ULP and onto the
// wire.
type EmbedConfig struct {
	// Tables is the embedding-table count. Zero selects 8.
	Tables int
	// Lookups is the rows gathered per table (the pooling factor). Zero
	// selects 32.
	Lookups int
	// Dim is the embedding dimension (floats per row). Zero selects 64.
	Dim int
	// Rows is each table's row count, for the popularity draw. Zero
	// selects 1 << 16.
	Rows int
	// ZipfS is the row-popularity skew. Zero means uniform; trace studies
	// put embedding access skew near 1.05.
	ZipfS float64
	Seed  int64
}

func (c *EmbedConfig) defaults() error {
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.Lookups <= 0 {
		c.Lookups = 32
	}
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.Rows <= 0 {
		c.Rows = 1 << 16
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("workload: negative embed skew %g", c.ZipfS)
	}
	return nil
}

// Embed is the embedding-gather request source; it implements
// server.WorkloadSource.
type Embed struct {
	cfg  EmbedConfig
	zipf *Zipf
	rngs map[int]*rand.Rand

	// Gathers counts requests; RowsRead the embedding rows they touched;
	// HotRows those drawn from the top 1% of the popularity ranking (a
	// cache-friendliness proxy the report surfaces).
	Gathers  uint64
	RowsRead uint64
	HotRows  uint64
}

// NewEmbed validates the config and builds the row-popularity sampler.
func NewEmbed(cfg EmbedConfig) (*Embed, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	z, err := NewZipf(cfg.Rows, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &Embed{cfg: cfg, zipf: z, rngs: make(map[int]*rand.Rand)}, nil
}

func (e *Embed) rng(connID int) *rand.Rand {
	r, ok := e.rngs[connID]
	if !ok {
		r = rand.New(rand.NewSource(e.cfg.Seed + int64(connID)*0x9E3779B9 + 2))
		e.rngs[connID] = r
	}
	return r
}

// NextRequest implements server.WorkloadSource: the row draws consume
// the connection's RNG (so popularity shapes future cache modeling),
// and the spec carries the gather width and the pooled payload.
func (e *Embed) NextRequest(connID int) server.RequestSpec {
	r := e.rng(connID)
	hotCut := e.cfg.Rows / 100
	for t := 0; t < e.cfg.Tables; t++ {
		for l := 0; l < e.cfg.Lookups; l++ {
			if row := e.zipf.Sample(r.Float64()); row < hotCut {
				e.HotRows++
			}
			e.RowsRead++
		}
	}
	e.Gathers++
	return server.RequestSpec{
		Kind:        "gather",
		Payload:     e.MaxPayload(),
		GatherBytes: e.cfg.Tables * e.cfg.Lookups * e.cfg.Dim * 4,
	}
}

// MaxPayload is the pooled response size: one Dim-float vector per table.
func (e *Embed) MaxPayload() int { return e.cfg.Tables * e.cfg.Dim * 4 }
