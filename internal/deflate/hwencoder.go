package deflate

// Hardware-style Deflate encoder: a functional model of SmartDIMM's
// Deflate DSA (§V-B), specialized from the Fowers et al. FPGA pipeline:
//
//   - data is consumed in 64-byte chunks, one per buffer-device clock,
//     best effort;
//   - match candidates live in an N-bank Config Memory hash table with a
//     bounded number of ports per bank; when more positions in the
//     current parallelization window hash to one bank than it has ports,
//     the excess candidates are DROPPED (compression ratio is traded for
//     deterministic single-cycle latency);
//   - the history window is 4KB (the hash table "covers a 4KB window"),
//     and when the table is full the oldest substring is replaced —
//     modelled by direct-mapped overwrite, hardware's oldest-wins
//     behaviour at a fixed table size;
//   - the parallelization window is 8 bytes: the pipeline examines 8
//     consecutive positions per stage and selects non-overlapping
//     matches within the window greedily.
//
// The emitted stream uses fixed Huffman codes, giving the deterministic
// output latency the paper's design choices aim for.

// HWConfig parameterizes the DSA model. The zero value is invalid; use
// PaperHWConfig for the paper's configuration, or adjust fields for the
// §V-B ablation benches.
type HWConfig struct {
	// ParallelWindow is the number of consecutive byte positions examined
	// per pipeline stage (the paper uses 8).
	ParallelWindow int
	// Banks is the number of Config Memory banks holding candidates (8).
	Banks int
	// PortsPerBank is how many candidate reads/updates one bank serves
	// per cycle; excess candidates in a window are dropped (8).
	PortsPerBank int
	// WindowSize is the history window in bytes (4096).
	WindowSize int
	// TableEntries is the total number of candidate slots across banks;
	// a full table replaces the oldest entry (per bank, direct-mapped).
	TableEntries int
}

// PaperHWConfig returns the §V-B configuration: 8-byte parallelization
// window, 8 banks x 8 ports, 4KB history window.
func PaperHWConfig() HWConfig {
	return HWConfig{
		ParallelWindow: 8,
		Banks:          8,
		PortsPerBank:   8,
		WindowSize:     4096,
		TableEntries:   4096,
	}
}

// HWStats reports the DSA-internal events the ablation benches examine.
type HWStats struct {
	Cycles          uint64 // 64-byte chunk cycles consumed
	BankConflicts   uint64 // candidate lookups dropped due to port limits
	CandidateProbes uint64 // total candidate lookups attempted
	Matches         uint64 // matches emitted
	Literals        uint64 // literals emitted
	Replaced        uint64 // hash entries overwritten (oldest replaced)
}

// HWEncoder is a reusable hardware-style Deflate encoder instance.
type HWEncoder struct {
	cfg   HWConfig
	stats HWStats
}

// NewHWEncoder validates the configuration.
func NewHWEncoder(cfg HWConfig) *HWEncoder {
	if cfg.ParallelWindow <= 0 {
		cfg.ParallelWindow = 8
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 8
	}
	if cfg.PortsPerBank <= 0 {
		cfg.PortsPerBank = 8
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 4096
	}
	if cfg.TableEntries <= 0 {
		cfg.TableEntries = 4096
	}
	return &HWEncoder{cfg: cfg}
}

// Stats returns the accumulated DSA statistics.
func (e *HWEncoder) Stats() HWStats { return e.stats }

// ResetStats zeroes the statistics.
func (e *HWEncoder) ResetStats() { e.stats = HWStats{} }

// ChunkSize is the data consumed per DSA cycle (one DDR burst).
const ChunkSize = 64

// Compress deflates src as the DSA would, returning an RFC 1951 stream
// (single final block, fixed Huffman codes). The paper compresses at 4KB
// page granularity; larger inputs are legal here but the history window
// still never exceeds the configured size.
func (e *HWEncoder) Compress(src []byte) []byte {
	tokens := e.lz77HW(src)
	var w bitWriter
	w.writeBits(1, 1) // BFINAL
	w.writeBits(1, 2) // BTYPE=01 fixed
	writeTokens(&w, tokens, fixedLitCodes, fixedDistCodes)
	return w.bytes()
}

// hwEntry is one candidate slot: the position of a previous occurrence.
type hwEntry struct {
	pos   int32
	valid bool
}

// lz77HW runs the banked best-effort match pipeline.
func (e *HWEncoder) lz77HW(src []byte) []token {
	var tokens []token
	if len(src) == 0 {
		return tokens
	}
	cfg := e.cfg
	entriesPerBank := cfg.TableEntries / cfg.Banks
	if entriesPerBank == 0 {
		entriesPerBank = 1
	}
	table := make([][]hwEntry, cfg.Banks)
	for b := range table {
		table[b] = make([]hwEntry, entriesPerBank)
	}

	bankOf := func(h uint32) int { return int(h) % cfg.Banks }
	slotOf := func(h uint32) int { return int(h/uint32(cfg.Banks)) % entriesPerBank }

	pos := 0
	for pos < len(src) {
		// One pipeline stage: examine up to ParallelWindow positions.
		winEnd := pos + cfg.ParallelWindow
		if winEnd > len(src) {
			winEnd = len(src)
		}
		if (pos % ChunkSize) == 0 {
			e.stats.Cycles++
		}
		// Per-window bank port accounting.
		portUse := make([]int, cfg.Banks)

		type cand struct {
			at   int // position in src
			prev int // candidate previous occurrence, -1 if none
		}
		cands := make([]cand, 0, cfg.ParallelWindow)
		for p := pos; p < winEnd; p++ {
			if p+4 > len(src) {
				cands = append(cands, cand{at: p, prev: -1})
				continue
			}
			h := hash4(src[p:])
			b := bankOf(h)
			s := slotOf(h)
			e.stats.CandidateProbes++
			if portUse[b] >= cfg.PortsPerBank {
				// Bank conflict: candidate dropped, no table update.
				e.stats.BankConflicts++
				cands = append(cands, cand{at: p, prev: -1})
				continue
			}
			portUse[b]++
			entry := table[b][s]
			prevPos := -1
			if entry.valid && int(entry.pos) < p && p-int(entry.pos) <= cfg.WindowSize {
				prevPos = int(entry.pos)
			}
			if entry.valid && int(entry.pos) != p {
				e.stats.Replaced++
			}
			table[b][s] = hwEntry{pos: int32(p), valid: true}
			cands = append(cands, cand{at: p, prev: prevPos})
		}

		// Greedy non-overlapping match selection within the window.
		consumed := pos
		for _, c := range cands {
			if c.at < consumed {
				continue // covered by a previous match in this window
			}
			// Emit literals for any gap (cannot happen with contiguous
			// windows, but keep the invariant explicit).
			for consumed < c.at {
				tokens = append(tokens, literalToken(src[consumed]))
				e.stats.Literals++
				consumed++
			}
			if c.prev < 0 {
				tokens = append(tokens, literalToken(src[c.at]))
				e.stats.Literals++
				consumed++
				continue
			}
			maxLen := len(src) - c.at
			if maxLen > MaxMatch {
				maxLen = MaxMatch
			}
			l := matchLen(src, c.prev, c.at, maxLen)
			if l < MinMatch {
				tokens = append(tokens, literalToken(src[c.at]))
				e.stats.Literals++
				consumed++
				continue
			}
			tokens = append(tokens, matchToken(l, c.at-c.prev))
			e.stats.Matches++
			consumed += l
		}
		if consumed < winEnd {
			// Trailing positions not consumed (e.g. dropped candidates at
			// the very end) were already emitted as literals above; this
			// branch is unreachable but kept as a safety net.
			for consumed < winEnd {
				tokens = append(tokens, literalToken(src[consumed]))
				e.stats.Literals++
				consumed++
			}
		}
		pos = consumed
	}
	return tokens
}

// CompressionRatio is a convenience helper returning the achieved
// original/compressed size ratio for this encoder on src.
func (e *HWEncoder) CompressionRatio(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	out := e.Compress(src)
	return float64(len(src)) / float64(len(out))
}
