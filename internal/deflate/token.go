package deflate

// LZ77 token stream representation shared by the software and
// hardware-style encoders.

// Match-length limits of Deflate.
const (
	MinMatch = 3
	MaxMatch = 258
	// MaxDistance is the largest backward distance RFC 1951 allows.
	MaxDistance = 32768

	endBlockSym   = 256
	numLitLenSyms = 286
	numDistSyms   = 30
)

// token is either a literal byte (dist == 0) or a match.
type token struct {
	lit  byte
	len  uint16 // match length, MinMatch..MaxMatch
	dist uint16 // match distance, 1..MaxDistance; 0 => literal
}

func literalToken(b byte) token { return token{lit: b} }
func matchToken(l, d int) token { return token{len: uint16(l), dist: uint16(d)} }
func (t token) isLiteral() bool { return t.dist == 0 }

func (t token) expandedLen() int {
	if t.isLiteral() {
		return 1
	}
	return int(t.len)
}

// lengthCode maps a match length (3..258) to its litlen symbol, extra
// bit count, and extra bit value. Tables generated at init per RFC 1951
// §3.2.5.
var (
	lengthSym   [MaxMatch + 1]uint16
	lengthExtra [numLitLenSyms]uint8
	lengthBase  [numLitLenSyms]uint16
	distExtra   [numDistSyms]uint8
	distBase    [numDistSyms]uint32
)

func init() {
	// Length codes 257..285.
	sym, base := 257, 3
	group := []struct {
		count, extra int
	}{
		{8, 0}, {4, 1}, {4, 2}, {4, 3}, {4, 4}, {4, 5},
	}
	for _, g := range group {
		for i := 0; i < g.count; i++ {
			lengthExtra[sym] = uint8(g.extra)
			lengthBase[sym] = uint16(base)
			span := 1 << g.extra
			for l := base; l < base+span && l <= MaxMatch; l++ {
				lengthSym[l] = uint16(sym)
			}
			base += span
			sym++
		}
	}
	// Code 285 is the special single-value 258 with 0 extra bits.
	lengthExtra[285] = 0
	lengthBase[285] = 258
	lengthSym[258] = 285

	// Distance codes 0..29.
	dbase := 1
	for code := 0; code < numDistSyms; code++ {
		extra := 0
		if code >= 2 {
			extra = code/2 - 1
		}
		distExtra[code] = uint8(extra)
		distBase[code] = uint32(dbase)
		dbase += 1 << extra
	}
}

// distCode maps a distance (1..32768) to its distance symbol.
func distCode(d int) int {
	// Binary search over the 30 bases.
	lo, hi := 0, numDistSyms-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(distBase[mid]) <= d {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// fixedLitLenLengths returns the code lengths of the fixed litlen code
// (RFC 1951 §3.2.6).
func fixedLitLenLengths() []uint8 {
	l := make([]uint8, 288)
	for i := 0; i <= 143; i++ {
		l[i] = 8
	}
	for i := 144; i <= 255; i++ {
		l[i] = 9
	}
	for i := 256; i <= 279; i++ {
		l[i] = 7
	}
	for i := 280; i <= 287; i++ {
		l[i] = 8
	}
	return l
}

// fixedDistLengths returns the code lengths of the fixed distance code.
func fixedDistLengths() []uint8 {
	l := make([]uint8, 30)
	for i := range l {
		l[i] = 5
	}
	return l
}

// The fixed Huffman codes never change, so both encoders share one
// canonical assignment built at init instead of rebuilding per block.
var (
	fixedLitCodes  []huffCode
	fixedDistCodes []huffCode
)

func init() {
	fixedLitCodes, _ = canonicalCodes(fixedLitLenLengths())
	fixedDistCodes, _ = canonicalCodes(fixedDistLengths())
}

// writeTokens emits the token stream plus end-of-block with the given
// codes.
func writeTokens(w *bitWriter, tokens []token, lit, dist []huffCode) {
	for _, t := range tokens {
		if t.isLiteral() {
			c := lit[t.lit]
			w.writeCode(c.code, uint(c.len))
			continue
		}
		sym := lengthSym[t.len]
		c := lit[sym]
		w.writeCode(c.code, uint(c.len))
		if e := lengthExtra[sym]; e > 0 {
			w.writeBits(uint32(t.len-lengthBase[sym]), uint(e))
		}
		dsym := distCode(int(t.dist))
		dc := dist[dsym]
		w.writeCode(dc.code, uint(dc.len))
		if e := distExtra[dsym]; e > 0 {
			w.writeBits(uint32(t.dist)-distBase[dsym], uint(e))
		}
	}
	eob := lit[endBlockSym]
	w.writeCode(eob.code, uint(eob.len))
}
