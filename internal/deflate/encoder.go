package deflate

// Software Deflate encoder: greedy hash-chain LZ77 with lazy matching,
// emitting whichever of stored/fixed/dynamic Huffman blocks is smallest.
// This is the "ULP processed on the CPU" baseline of the paper's
// evaluation.

import "sync"

const (
	hashBits  = 15
	hashSize  = 1 << hashBits
	hashShift = (32 - hashBits)
)

// EncoderOptions tunes the software encoder.
type EncoderOptions struct {
	// MaxChainLen bounds hash-chain traversal per position; higher finds
	// better matches at more CPU cost. <= 0 selects the default (64).
	MaxChainLen int
	// Lazy enables one-step lazy matching (defer a match if the next
	// position matches longer), as zlib levels >= 4 do.
	Lazy bool
	// WindowSize bounds match distances; <= 0 selects MaxDistance.
	// The hardware-style encoder uses 4096 (§V-B); the software default
	// is the full 32KB RFC window.
	WindowSize int
}

// Encoder is a reusable software deflate encoder. The hash-chain match
// finder (head/prev arrays), token buffer, Huffman construction scratch,
// and output bit accumulator all live in one arena recycled across
// EncodeAll calls, so steady-state encoding performs zero heap
// allocations beyond the output buffer the caller controls — the same
// "deflate state" shape whose cache footprint SoftDeflateStateBytes
// models in the offload backends. An Encoder is not safe for concurrent
// use; use one per connection or goroutine.
type Encoder struct {
	opts   EncoderOptions
	head   [hashSize]int32
	prev   []int32
	tokens []token
	w      bitWriter

	// Huffman/block scratch, sized to the RFC maxima.
	litFreq      [numLitLenSyms]int
	distFreq     [numDistSyms]int
	dynLit       [numLitLenSyms]uint8
	dynDist      [numDistSyms]uint8
	dynLitCodes  [numLitLenSyms]huffCode
	dynDistCodes [numDistSyms]huffCode
	clFreq       [19]int
	clLens       [19]uint8
	clCodes      [19]huffCode
	clSyms       []clSymbol
	seq          [numLitLenSyms + numDistSyms]uint8
	huff         huffScratch
}

// NewEncoder returns an encoder with the given options applied
// (defaults filled in as CompressOpts does).
func NewEncoder(o EncoderOptions) *Encoder {
	if o.MaxChainLen <= 0 {
		o.MaxChainLen = 64
	}
	if o.WindowSize <= 0 || o.WindowSize > MaxDistance {
		o.WindowSize = MaxDistance
	}
	return &Encoder{opts: o}
}

// defaultEncoders pools encoders with the default options so the
// package-level Compress reuses arenas across calls (and goroutines).
var defaultEncoders = sync.Pool{New: func() any { return NewEncoder(EncoderOptions{Lazy: true}) }}

// Compress deflates src with default options (lazy matching, 64-deep
// chains, 32KB window) into a single final block.
func Compress(src []byte) []byte {
	e := defaultEncoders.Get().(*Encoder)
	out := e.EncodeAll(src, nil)
	defaultEncoders.Put(e)
	return out
}

// CompressOpts deflates src with the given options into one final block.
func CompressOpts(src []byte, o EncoderOptions) []byte {
	return NewEncoder(o).EncodeAll(src, nil)
}

// EncodeAll deflates src into a single final block appended to dst
// (pass a slice with spare capacity to avoid output allocations too).
// The stream is byte-identical to CompressOpts with the same options.
func (e *Encoder) EncodeAll(src, dst []byte) []byte {
	e.w.buf = dst
	e.w.acc, e.w.nAcc = 0, 0
	e.lz77(src)
	e.writeBlock(e.tokens, src, true)
	out := e.w.bytes()
	e.w.buf = nil // do not retain the caller's buffer across calls
	return out
}

func hash4(b []byte) uint32 {
	// 4-byte rolling hash (multiplicative); requires len(b) >= 4.
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 2654435761) >> hashShift
}

// lz77 produces the token stream for src into e.tokens using the
// encoder's hash-chain arena.
func (e *Encoder) lz77(src []byte) {
	e.tokens = e.tokens[:0]
	if len(src) == 0 {
		return
	}
	head := &e.head
	for i := range head {
		head[i] = -1
	}
	if cap(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	prev := e.prev[:len(src)]
	for i := range prev {
		prev[i] = 0
	}
	o := e.opts

	insert := func(pos int) {
		if pos+4 > len(src) {
			return
		}
		h := hash4(src[pos:])
		if head[h] == int32(pos) {
			return // already at the head; avoid a self-referential chain
		}
		prev[pos] = head[h]
		head[h] = int32(pos)
	}

	findMatch := func(pos int) (length, dist int) {
		if pos+MinMatch > len(src) || pos+4 > len(src) {
			return 0, 0
		}
		limit := pos - o.WindowSize
		if limit < 0 {
			limit = 0
		}
		maxLen := len(src) - pos
		if maxLen > MaxMatch {
			maxLen = MaxMatch
		}
		cand := head[hash4(src[pos:])]
		best, bestDist := 0, 0
		for chain := 0; cand >= int32(limit) && cand >= 0 && chain < o.MaxChainLen; chain++ {
			c := int(cand)
			if c >= pos {
				cand = prev[c]
				continue
			}
			if src[c+best] == src[pos+best] || best == 0 {
				l := matchLen(src, c, pos, maxLen)
				if l > best {
					best, bestDist = l, pos-c
					if l >= maxLen {
						break
					}
				}
			}
			cand = prev[c]
		}
		if best < MinMatch {
			return 0, 0
		}
		return best, bestDist
	}

	pos := 0
	for pos < len(src) {
		l, d := findMatch(pos)
		if l == 0 {
			e.tokens = append(e.tokens, literalToken(src[pos]))
			insert(pos)
			pos++
			continue
		}
		if o.Lazy && pos+1 < len(src) {
			insert(pos)
			l2, d2 := findMatch(pos + 1)
			if l2 > l {
				// Defer: emit current byte as literal, take the longer
				// match at pos+1 on the next iteration.
				e.tokens = append(e.tokens, literalToken(src[pos]))
				pos++
				l, d = l2, d2
			}
			e.tokens = append(e.tokens, matchToken(l, d))
			for i := 0; i < l; i++ {
				insert(pos + i)
			}
			pos += l
			continue
		}
		e.tokens = append(e.tokens, matchToken(l, d))
		for i := 0; i < l; i++ {
			insert(pos + i)
		}
		pos += l
	}
}

// matchLen returns the length of the common prefix of src[a:] and
// src[b:], capped at maxLen. a < b.
func matchLen(src []byte, a, b, maxLen int) int {
	n := 0
	for n < maxLen && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// tokenFrequencies tallies litlen and distance symbol frequencies into
// the encoder's scratch arrays (end-of-block included).
func (e *Encoder) tokenFrequencies(tokens []token) {
	for i := range e.litFreq {
		e.litFreq[i] = 0
	}
	for i := range e.distFreq {
		e.distFreq[i] = 0
	}
	for _, t := range tokens {
		if t.isLiteral() {
			e.litFreq[t.lit]++
		} else {
			e.litFreq[lengthSym[t.len]]++
			e.distFreq[distCode(int(t.dist))]++
		}
	}
	e.litFreq[endBlockSym]++
}

// writeBlock emits one block, choosing the cheapest of the three block
// types for this token stream. src is the original uncompressed data of
// the block (needed for stored fallback).
func (e *Encoder) writeBlock(tokens []token, src []byte, final bool) {
	w := &e.w
	finalBit := uint32(0)
	if final {
		finalBit = 1
	}

	e.tokenFrequencies(tokens)
	e.huff.buildLengthsInto(e.dynLit[:], e.litFreq[:], maxCodeLen)
	e.huff.buildLengthsInto(e.dynDist[:], e.distFreq[:], maxCodeLen)
	dynHeaderBits, hlit, hdist, hclen := e.dynamicHeader()
	err1 := canonicalCodesInto(e.dynLitCodes[:], e.dynLit[:])
	err2 := canonicalCodesInto(e.dynDistCodes[:], e.dynDist[:])

	costWith := func(lit, dist []huffCode) int {
		bits := 0
		for sym, f := range e.litFreq {
			if f > 0 {
				bits += f * int(lit[sym].len)
			}
		}
		for sym, f := range e.distFreq {
			if f > 0 {
				bits += f * int(dist[sym].len)
			}
		}
		for _, t := range tokens {
			if !t.isLiteral() {
				bits += int(lengthExtra[lengthSym[t.len]])
				bits += int(distExtra[distCode(int(t.dist))])
			}
		}
		return bits
	}
	fixedBits := 3 + costWith(fixedLitCodes, fixedDistCodes)
	dynBits := 3 + dynHeaderBits + costWith(e.dynLitCodes[:], e.dynDistCodes[:])
	storedBits := 3 + 16 + 16 + 8*len(src) + 7 // worst-case alignment padding

	switch {
	case err1 == nil && err2 == nil && dynBits < fixedBits && dynBits < storedBits:
		w.writeBits(finalBit, 1)
		w.writeBits(2, 2) // BTYPE=10 dynamic
		w.writeBits(uint32(hlit-257), 5)
		w.writeBits(uint32(hdist-1), 5)
		w.writeBits(uint32(hclen-4), 4)
		for i := 0; i < hclen; i++ {
			w.writeBits(uint32(e.clLens[clOrder[i]]), 3)
		}
		for _, s := range e.clSyms {
			c := e.clCodes[s.sym]
			w.writeCode(c.code, uint(c.len))
			if s.extraBits > 0 {
				w.writeBits(uint32(s.extraVal), uint(s.extraBits))
			}
		}
		writeTokens(w, tokens, e.dynLitCodes[:], e.dynDistCodes[:])
	case fixedBits <= storedBits:
		w.writeBits(finalBit, 1)
		w.writeBits(1, 2) // BTYPE=01 fixed
		writeTokens(w, tokens, fixedLitCodes, fixedDistCodes)
	default:
		writeStored(w, src, final)
	}
}

// writeStored emits a stored (BTYPE=00) block; RFC caps stored blocks at
// 65535 bytes so long inputs are split.
func writeStored(w *bitWriter, src []byte, final bool) {
	for first := true; first || len(src) > 0; first = false {
		n := len(src)
		if n > 65535 {
			n = 65535
		}
		last := final && n == len(src)
		fb := uint32(0)
		if last {
			fb = 1
		}
		w.writeBits(fb, 1)
		w.writeBits(0, 2)
		w.alignByte()
		w.writeBits(uint32(n), 16)
		w.writeBits(uint32(n)^0xffff, 16)
		w.alignByte()
		w.writeBytes(src[:n])
		src = src[n:]
		if n == 0 {
			break
		}
	}
}

// clOrder is the fixed transmission order of code length code lengths.
var clOrder = [19]int{16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15}

// clSymbol is one symbol of the RLE-compressed code length sequence.
type clSymbol struct {
	sym       int
	extraBits int
	extraVal  int
}

// dynamicHeader builds the dynamic block header pieces into the
// encoder's scratch (e.clSyms, e.clLens, e.clCodes), returning the bit
// cost and HLIT/HDIST/HCLEN.
func (e *Encoder) dynamicHeader() (bits, hlit, hdist, hclen int) {
	hlit = numLitLenSyms
	for hlit > 257 && e.dynLit[hlit-1] == 0 {
		hlit--
	}
	hdist = numDistSyms
	for hdist > 1 && e.dynDist[hdist-1] == 0 {
		hdist--
	}
	seq := e.seq[:0]
	seq = append(seq, e.dynLit[:hlit]...)
	seq = append(seq, e.dynDist[:hdist]...)

	e.clSyms = rleCodeLengths(e.clSyms[:0], seq)
	for i := range e.clFreq {
		e.clFreq[i] = 0
	}
	for _, s := range e.clSyms {
		e.clFreq[s.sym]++
	}
	e.huff.buildLengthsInto(e.clLens[:], e.clFreq[:], 7)
	canonicalCodesInto(e.clCodes[:], e.clLens[:])

	hclen = 19
	for hclen > 4 && e.clLens[clOrder[hclen-1]] == 0 {
		hclen--
	}
	bits = 5 + 5 + 4 + 3*hclen
	for _, s := range e.clSyms {
		bits += int(e.clLens[s.sym]) + s.extraBits
	}
	return
}

// rleCodeLengths run-length encodes a code length sequence with symbols
// 16 (repeat previous 3-6), 17 (zeros 3-10), 18 (zeros 11-138),
// appending to out.
func rleCodeLengths(out []clSymbol, seq []uint8) []clSymbol {
	i := 0
	for i < len(seq) {
		v := seq[i]
		run := 1
		for i+run < len(seq) && seq[i+run] == v {
			run++
		}
		if v == 0 {
			for run >= 11 {
				n := run
				if n > 138 {
					n = 138
				}
				out = append(out, clSymbol{sym: 18, extraBits: 7, extraVal: n - 11})
				run -= n
				i += n
			}
			if run >= 3 {
				out = append(out, clSymbol{sym: 17, extraBits: 3, extraVal: run - 3})
				i += run
				run = 0
			}
			for ; run > 0; run-- {
				out = append(out, clSymbol{sym: 0})
				i++
			}
			continue
		}
		// Non-zero: emit the value once, then repeats of 3-6.
		out = append(out, clSymbol{sym: int(v)})
		i++
		run--
		for run >= 3 {
			n := run
			if n > 6 {
				n = 6
			}
			out = append(out, clSymbol{sym: 16, extraBits: 2, extraVal: n - 3})
			run -= n
			i += n
		}
		for ; run > 0; run-- {
			out = append(out, clSymbol{sym: int(v)})
			i++
		}
	}
	return out
}
