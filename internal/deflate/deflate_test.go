package deflate

import (
	"bytes"
	"compress/flate"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

// stdInflate decodes with compress/flate as the reference decoder.
func stdInflate(t *testing.T, data []byte) []byte {
	t.Helper()
	r := flate.NewReader(bytes.NewReader(data))
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reference inflate failed: %v", err)
	}
	return out
}

// stdDeflate encodes with compress/flate as the reference encoder.
func stdDeflate(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.DefaultCompression)
	w.Write(data)
	w.Close()
	return buf.Bytes()
}

func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	rnd := make([]byte, 8192)
	rng.Read(rnd)
	return map[string][]byte{
		"empty":      {},
		"single":     {0x42},
		"two":        {0x42, 0x43},
		"run":        bytes.Repeat([]byte{7}, 1000),
		"abc-repeat": bytes.Repeat([]byte("abcabcabd"), 300),
		"short":      []byte("hello world"),
		"html":       corpus.Generate(corpus.HTML, 8192, 1),
		"text":       corpus.Generate(corpus.Text, 8192, 1),
		"json":       corpus.Generate(corpus.JSON, 8192, 1),
		"random":     rnd,
		"zeros":      corpus.Generate(corpus.Zeros, 8192, 1),
		"4095":       corpus.Generate(corpus.Text, 4095, 9),
		"almost-rfc": bytes.Repeat([]byte("a"), 65535+100), // crosses stored-block size
	}
}

func TestSoftwareEncoderRoundTrip(t *testing.T) {
	for name, in := range testInputs() {
		t.Run(name, func(t *testing.T) {
			c := Compress(in)
			// Our decoder.
			out, err := Decompress(c)
			if err != nil {
				t.Fatalf("own inflate: %v", err)
			}
			if !bytes.Equal(out, in) {
				t.Fatal("own round trip mismatch")
			}
			// Reference decoder accepts our stream.
			if ref := stdInflate(t, c); !bytes.Equal(ref, in) {
				t.Fatal("reference decoder disagrees")
			}
		})
	}
}

func TestHWEncoderRoundTrip(t *testing.T) {
	enc := NewHWEncoder(PaperHWConfig())
	for name, in := range testInputs() {
		t.Run(name, func(t *testing.T) {
			c := enc.Compress(in)
			out, err := Decompress(c)
			if err != nil {
				t.Fatalf("own inflate: %v", err)
			}
			if !bytes.Equal(out, in) {
				t.Fatal("own round trip mismatch")
			}
			if ref := stdInflate(t, c); !bytes.Equal(ref, in) {
				t.Fatal("reference decoder disagrees")
			}
		})
	}
}

func TestDecompressAcceptsReferenceStreams(t *testing.T) {
	for name, in := range testInputs() {
		t.Run(name, func(t *testing.T) {
			c := stdDeflate(t, in)
			out, err := Decompress(c)
			if err != nil {
				t.Fatalf("inflate of reference stream: %v", err)
			}
			if !bytes.Equal(out, in) {
				t.Fatal("mismatch")
			}
		})
	}
}

func TestRoundTripQuick(t *testing.T) {
	enc := NewHWEncoder(PaperHWConfig())
	f := func(data []byte) bool {
		c1 := Compress(data)
		o1, err := Decompress(c1)
		if err != nil || !bytes.Equal(o1, data) {
			return false
		}
		c2 := enc.Compress(data)
		o2, err := Decompress(c2)
		return err == nil && bytes.Equal(o2, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareBeatsHWOnRatio(t *testing.T) {
	// The DSA trades compression ratio for deterministic latency; on
	// redundant data the software encoder (32KB window, dynamic Huffman)
	// must compress at least as well.
	in := corpus.Generate(corpus.HTML, 16384, 3)
	sw := len(Compress(in))
	hw := len(NewHWEncoder(PaperHWConfig()).Compress(in))
	if sw > hw {
		t.Fatalf("software (%dB) worse than hardware (%dB)", sw, hw)
	}
	// But the hardware model must still genuinely compress templated data.
	if ratio := float64(len(in)) / float64(hw); ratio < 1.5 {
		t.Fatalf("hw ratio = %.2f, want >= 1.5 on HTML", ratio)
	}
}

func TestHWWindowAblation(t *testing.T) {
	// Larger parallelization window and more banks should not hurt ratio;
	// a tiny 1-port configuration must show bank conflicts on real data.
	in := corpus.Generate(corpus.Text, 16384, 5)
	small := NewHWEncoder(HWConfig{ParallelWindow: 8, Banks: 2, PortsPerBank: 1, WindowSize: 4096, TableEntries: 4096})
	small.Compress(in)
	if small.Stats().BankConflicts == 0 {
		t.Fatal("1-port config shows no bank conflicts")
	}
	full := NewHWEncoder(PaperHWConfig())
	full.Compress(in)
	if full.Stats().BankConflicts >= small.Stats().BankConflicts {
		t.Fatal("8-port config should conflict less than 1-port")
	}
}

func TestHWStatsAccounting(t *testing.T) {
	enc := NewHWEncoder(PaperHWConfig())
	in := bytes.Repeat([]byte("abcdefgh"), 512)
	enc.Compress(in)
	st := enc.Stats()
	if st.Matches == 0 {
		t.Fatal("no matches on highly repetitive input")
	}
	if st.CandidateProbes == 0 || st.Cycles == 0 {
		t.Fatalf("stats not accumulating: %+v", st)
	}
	enc.ResetStats()
	if enc.Stats().Matches != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestHWHistoryWindowRespected(t *testing.T) {
	// Two identical 2KB chunks separated by >4KB of random bytes: the
	// DSA (4KB window) cannot use the far match; verify all emitted
	// distances are within the window by decoding successfully and
	// checking ratio stays low, and directly via token inspection.
	rng := rand.New(rand.NewSource(6))
	chunk := corpus.Generate(corpus.Text, 2048, 7)
	gap := make([]byte, 5000)
	rng.Read(gap)
	in := append(append(append([]byte{}, chunk...), gap...), chunk...)

	enc := NewHWEncoder(PaperHWConfig())
	tokens := enc.lz77HW(in)
	for _, tok := range tokens {
		if !tok.isLiteral() && int(tok.dist) > enc.cfg.WindowSize {
			t.Fatalf("distance %d exceeds DSA window %d", tok.dist, enc.cfg.WindowSize)
		}
	}
}

func TestCompressOptsWindow(t *testing.T) {
	in := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16KB
	narrow := CompressOpts(in, EncoderOptions{WindowSize: 256})
	out, err := Decompress(narrow)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatal("narrow-window round trip failed")
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"reserved-btype": {0x07},              // BFINAL=1, BTYPE=11
		"truncated":      {0x01},              // fixed block, then EOF
		"stored-len":     {0x01 ^ 0x01, 0x00}, // stored block, truncated LEN
	}
	for name, data := range cases {
		if _, err := Decompress(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	// Bit flips in a valid stream must not panic (errors are fine, and
	// some flips may decode to different bytes; we only require safety).
	valid := Compress(corpus.Generate(corpus.Text, 2048, 8))
	for i := 0; i < len(valid); i += 7 {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x10
		Decompress(mut) // must not panic
	}
}

func TestDecompressLimit(t *testing.T) {
	in := make([]byte, 100000)
	c := Compress(in)
	if _, err := DecompressLimit(c, 1000); err == nil {
		t.Fatal("limit not enforced")
	}
	out, err := DecompressLimit(c, len(in))
	if err != nil || len(out) != len(in) {
		t.Fatalf("exact limit rejected: %v", err)
	}
}

func TestStoredBlockChosenForRandom(t *testing.T) {
	// Incompressible data should cost at most a few bytes of overhead,
	// i.e. the encoder must fall back to stored blocks.
	rnd := make([]byte, 4096)
	rand.New(rand.NewSource(10)).Read(rnd)
	c := Compress(rnd)
	if len(c) > len(rnd)+16 {
		t.Fatalf("random data expanded to %d bytes (want stored fallback)", len(c))
	}
}

func TestTokenTables(t *testing.T) {
	// Spot checks from RFC 1951 §3.2.5.
	if lengthSym[3] != 257 || lengthSym[10] != 264 || lengthSym[11] != 265 ||
		lengthSym[258] != 285 || lengthSym[257] != 284 {
		t.Fatal("length symbol table wrong")
	}
	if lengthBase[265] != 11 || lengthExtra[265] != 1 {
		t.Fatal("length base/extra wrong for 265")
	}
	if distCode(1) != 0 || distCode(4) != 3 || distCode(5) != 4 ||
		distCode(32768) != 29 || distCode(24577) != 29 || distCode(24576) != 28 {
		t.Fatalf("distance codes wrong: %d %d %d %d", distCode(1), distCode(4), distCode(32768), distCode(24577))
	}
	if distBase[4] != 5 || distExtra[4] != 1 || distBase[29] != 24577 || distExtra[29] != 13 {
		t.Fatal("distance base/extra wrong")
	}
}

func TestHuffmanCanonical(t *testing.T) {
	// RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4) produce
	// codes 010,011,100,101,110,00,1110,1111.
	lengths := []uint8{3, 3, 3, 3, 3, 2, 4, 4}
	codes, err := canonicalCodes(lengths)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111}
	for i, c := range codes {
		if c.code != want[i] {
			t.Errorf("symbol %d: code %b, want %b", i, c.code, want[i])
		}
	}
	if _, err := canonicalCodes([]uint8{1, 1, 1}); err == nil {
		t.Fatal("over-subscribed lengths accepted")
	}
}

func TestBuildLengthsProperties(t *testing.T) {
	f := func(rawFreq []uint16) bool {
		freq := make([]int, len(rawFreq))
		used := 0
		for i, v := range rawFreq {
			freq[i] = int(v)
			if v > 0 {
				used++
			}
		}
		lengths := buildLengths(freq, maxCodeLen)
		// Kraft inequality must hold and every used symbol has a code.
		kraft := 0
		for i, l := range lengths {
			if freq[i] > 0 && l == 0 {
				return false
			}
			if freq[i] == 0 && l != 0 {
				return false
			}
			if l > 0 {
				kraft += 1 << (maxCodeLen - int(l))
			}
		}
		if kraft > 1<<maxCodeLen {
			return false
		}
		_, err := canonicalCodes(lengths)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		var w bitWriter
		type item struct {
			v uint32
			n uint
		}
		var items []item
		for i, v := range vals {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i]%16) + 1
			}
			iv := uint32(v) & (1<<n - 1)
			items = append(items, item{iv, n})
			w.writeBits(iv, n)
		}
		r := newBitReader(w.bytes())
		for _, it := range items {
			got, err := r.readBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseBits(t *testing.T) {
	if reverseBits(0b1011, 4) != 0b1101 {
		t.Fatal("reverseBits wrong")
	}
	if reverseBits(1, 1) != 1 || reverseBits(0, 5) != 0 {
		t.Fatal("reverseBits edge cases wrong")
	}
}

func BenchmarkSoftwareCompress4KB(b *testing.B) {
	in := corpus.Generate(corpus.HTML, 4096, 1)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Compress(in)
	}
}

func BenchmarkHWCompress4KB(b *testing.B) {
	in := corpus.Generate(corpus.HTML, 4096, 1)
	enc := NewHWEncoder(PaperHWConfig())
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		enc.Compress(in)
	}
}

func BenchmarkDecompress4KB(b *testing.B) {
	c := Compress(corpus.Generate(corpus.HTML, 4096, 1))
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Decompress(c)
	}
}
