// Package deflate is a from-scratch implementation of the Deflate
// compressed data format (RFC 1951) in the two shapes the paper uses:
//
//   - a software encoder with hash-chain LZ77 match finding and
//     stored/fixed/dynamic Huffman blocks — the "CPU" baseline that
//     Nginx's gzip filter stands in for;
//   - a hardware-style encoder modelling SmartDIMM's Deflate DSA
//     (§V-B): a specialization of the Fowers et al. fully pipelined
//     FPGA architecture with an 8-byte parallelization window, an
//     8-bank candidate memory that drops candidates on bank conflicts,
//     a 4KB history window, and oldest-entry replacement — best-effort
//     compression with deterministic latency;
//   - a complete inflate decoder used to verify round trips of both
//     encoders and interoperability with the reference codec.
//
// Both encoders emit RFC 1951 compliant streams; the tests prove every
// stream inflates with compress/flate and vice versa.
package deflate

import "errors"

// bitWriter packs bits LSB-first into bytes, as RFC 1951 §3.1.1
// prescribes for everything except Huffman codes (which callers must
// pre-reverse; see writeCode).
type bitWriter struct {
	buf  []byte
	acc  uint64
	nAcc uint
}

// writeBits appends the low n bits of v, LSB-first.
func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc |= uint64(v) << w.nAcc
	w.nAcc += n
	for w.nAcc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nAcc -= 8
	}
}

// writeCode appends a Huffman code of n bits. Huffman codes are packed
// starting from their most significant bit, so the canonical code value
// is bit-reversed before packing.
func (w *bitWriter) writeCode(code uint32, n uint) {
	w.writeBits(reverseBits(code, n), n)
}

// alignByte pads with zero bits to the next byte boundary.
func (w *bitWriter) alignByte() {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nAcc = 0
	}
}

// writeBytes appends raw bytes; the stream must be byte-aligned.
func (w *bitWriter) writeBytes(p []byte) {
	if w.nAcc != 0 {
		panic("deflate: writeBytes on unaligned stream")
	}
	w.buf = append(w.buf, p...)
}

// bytes returns the stream, flushing any partial final byte.
func (w *bitWriter) bytes() []byte {
	w.alignByte()
	return w.buf
}

// bitLen returns the total number of bits written so far.
func (w *bitWriter) bitLen() int { return len(w.buf)*8 + int(w.nAcc) }

func reverseBits(v uint32, n uint) uint32 {
	var r uint32
	for i := uint(0); i < n; i++ {
		r = r<<1 | (v & 1)
		v >>= 1
	}
	return r
}

// errUnexpectedEOF mirrors io.ErrUnexpectedEOF for truncated streams.
var errUnexpectedEOF = errors.New("deflate: unexpected end of stream")

// bitReader consumes bits LSB-first from a byte slice.
type bitReader struct {
	data []byte
	pos  int // byte position
	acc  uint32
	nAcc uint
}

func newBitReader(data []byte) *bitReader { return &bitReader{data: data} }

// readBits returns the next n bits (n <= 24), LSB-first.
func (r *bitReader) readBits(n uint) (uint32, error) {
	for r.nAcc < n {
		if r.pos >= len(r.data) {
			return 0, errUnexpectedEOF
		}
		r.acc |= uint32(r.data[r.pos]) << r.nAcc
		r.pos++
		r.nAcc += 8
	}
	v := r.acc & (1<<n - 1)
	r.acc >>= n
	r.nAcc -= n
	return v, nil
}

// readBit returns a single bit.
func (r *bitReader) readBit() (uint32, error) { return r.readBits(1) }

// alignByte discards bits up to the next byte boundary.
func (r *bitReader) alignByte() {
	drop := r.nAcc % 8
	r.acc >>= drop
	r.nAcc -= drop
}

// readBytes copies n raw bytes; the stream must be byte-aligned (any
// buffered whole bytes are consumed first).
func (r *bitReader) readBytes(p []byte) error {
	if r.nAcc%8 != 0 {
		panic("deflate: readBytes on unaligned stream")
	}
	for i := range p {
		if r.nAcc >= 8 {
			p[i] = byte(r.acc)
			r.acc >>= 8
			r.nAcc -= 8
			continue
		}
		if r.pos >= len(r.data) {
			return errUnexpectedEOF
		}
		p[i] = r.data[r.pos]
		r.pos++
	}
	return nil
}
