package deflate

import (
	"errors"
	"fmt"
	"sort"
)

// maxCodeLen is the longest Huffman code length Deflate permits.
const maxCodeLen = 15

// huffCode is one symbol's canonical code assignment.
type huffCode struct {
	code uint32 // canonical value, MSB-first semantics
	len  uint8  // 0 means the symbol is unused
}

// canonicalCodes assigns canonical Huffman codes to the given code
// lengths per RFC 1951 §3.2.2.
func canonicalCodes(lengths []uint8) ([]huffCode, error) {
	var blCount [maxCodeLen + 1]int
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("deflate: code length %d exceeds %d", l, maxCodeLen)
		}
		blCount[l]++
	}
	blCount[0] = 0
	var nextCode [maxCodeLen + 2]uint32
	code := uint32(0)
	for bits := 1; bits <= maxCodeLen; bits++ {
		code = (code + uint32(blCount[bits-1])) << 1
		nextCode[bits] = code
	}
	// Over-subscription check: the Kraft sum must not exceed 1.
	kraft := 0
	for bits := 1; bits <= maxCodeLen; bits++ {
		kraft += blCount[bits] << (maxCodeLen - bits)
	}
	if kraft > 1<<maxCodeLen {
		return nil, errors.New("deflate: over-subscribed code lengths")
	}
	out := make([]huffCode, len(lengths))
	for i, l := range lengths {
		if l == 0 {
			continue
		}
		out[i] = huffCode{code: nextCode[l], len: l}
		nextCode[l]++
	}
	return out, nil
}

// buildLengths computes length-limited Huffman code lengths for the
// given symbol frequencies using package-merge-free heap construction
// followed by depth limiting (the simple "flatten overlong codes"
// adjustment, which preserves prefix-freeness via canonical
// reassignment). Symbols with zero frequency get length 0.
func buildLengths(freq []int, limit int) []uint8 {
	n := len(freq)
	lengths := make([]uint8, n)
	type node struct {
		weight      int
		sym         int // -1 for internal
		left, right int // indices into nodes
	}
	var nodes []node
	var heap []int // node indices, min-heap by weight

	push := func(idx int) {
		heap = append(heap, idx)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if nodes[heap[p]].weight <= nodes[heap[i]].weight {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && nodes[heap[l]].weight < nodes[heap[small]].weight {
				small = l
			}
			if r < len(heap) && nodes[heap[r]].weight < nodes[heap[small]].weight {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}

	live := 0
	for sym, f := range freq {
		if f > 0 {
			nodes = append(nodes, node{weight: f, sym: sym, left: -1, right: -1})
			push(len(nodes) - 1)
			live++
		}
	}
	switch live {
	case 0:
		return lengths
	case 1:
		// Deflate requires at least a 1-bit code for a lone symbol.
		nodes[heap[0]].weight = 0
		lengths[nodes[heap[0]].sym] = 1
		return lengths
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
		push(len(nodes) - 1)
	}
	// Assign depths.
	root := heap[0]
	type visit struct{ idx, depth int }
	stack := []visit{{root, 0}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[v.idx]
		if nd.sym >= 0 {
			d := v.depth
			if d == 0 {
				d = 1
			}
			lengths[nd.sym] = uint8(d)
			continue
		}
		stack = append(stack, visit{nd.left, v.depth + 1}, visit{nd.right, v.depth + 1})
	}
	limitLengths(lengths, limit)
	return lengths
}

// limitLengths enforces a maximum code length by shortening overlong
// codes and re-balancing so the Kraft inequality still holds with
// equality on the used portion.
func limitLengths(lengths []uint8, limit int) {
	over := false
	for _, l := range lengths {
		if int(l) > limit {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Collect used symbols sorted by (length, symbol).
	type sl struct {
		sym int
		len int
	}
	var used []sl
	for sym, l := range lengths {
		if l > 0 {
			ln := int(l)
			if ln > limit {
				ln = limit
			}
			used = append(used, sl{sym, ln})
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].len != used[j].len {
			return used[i].len < used[j].len
		}
		return used[i].sym < used[j].sym
	})
	// Repair Kraft: K = sum 2^(limit-len) must be <= 2^limit.
	kraft := 0
	for _, u := range used {
		kraft += 1 << (limit - u.len)
	}
	budget := 1 << limit
	// Lengthen the shortest-excess codes until within budget.
	for kraft > budget {
		// Find a symbol with len < limit whose lengthening helps most:
		// take the one with the largest current share (smallest len).
		best := -1
		for i, u := range used {
			if u.len < limit && (best == -1 || u.len < used[best].len) {
				best = i
			}
		}
		if best == -1 {
			panic("deflate: cannot satisfy length limit")
		}
		kraft -= 1 << (limit - used[best].len)
		used[best].len++
		kraft += 1 << (limit - used[best].len)
	}
	for _, u := range used {
		lengths[u.sym] = uint8(u.len)
	}
}

// decodeTable is a bit-serial canonical Huffman decoder: firstCode and
// firstSym index codes by length, symbols are listed in canonical order.
type decodeTable struct {
	counts  [maxCodeLen + 1]int
	symbols []int
}

// newDecodeTable builds the decoder for the given code lengths.
func newDecodeTable(lengths []uint8) (*decodeTable, error) {
	t := &decodeTable{}
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("deflate: code length %d too long", l)
		}
		if l > 0 {
			t.counts[l]++
		}
	}
	// Reject over-subscribed tables (incomplete ones are legal for
	// distance codes per the RFC errata, caught at use time instead).
	kraft := 0
	for bits := 1; bits <= maxCodeLen; bits++ {
		kraft += t.counts[bits] << (maxCodeLen - bits)
	}
	if kraft > 1<<maxCodeLen {
		return nil, errors.New("deflate: over-subscribed decode table")
	}
	var offs [maxCodeLen + 2]int
	for l := 1; l <= maxCodeLen; l++ {
		offs[l+1] = offs[l] + t.counts[l]
	}
	t.symbols = make([]int, offs[maxCodeLen+1])
	next := offs
	for sym, l := range lengths {
		if l > 0 {
			t.symbols[next[l]] = sym
			next[l]++
		}
	}
	return t, nil
}

// decode reads one symbol from the bit reader.
func (t *decodeTable) decode(r *bitReader) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := t.counts[l]
		if code-first < count {
			return t.symbols[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, errors.New("deflate: invalid Huffman code")
}
