package deflate

import (
	"errors"
	"fmt"
)

// maxCodeLen is the longest Huffman code length Deflate permits.
const maxCodeLen = 15

// huffCode is one symbol's canonical code assignment.
type huffCode struct {
	code uint32 // canonical value, MSB-first semantics
	len  uint8  // 0 means the symbol is unused
}

// canonicalCodesInto assigns canonical Huffman codes for the given code
// lengths per RFC 1951 §3.2.2 into out, which must have len(lengths)
// entries. Unused symbols are zeroed. No allocations.
func canonicalCodesInto(out []huffCode, lengths []uint8) error {
	var blCount [maxCodeLen + 1]int
	for _, l := range lengths {
		if l > maxCodeLen {
			return fmt.Errorf("deflate: code length %d exceeds %d", l, maxCodeLen)
		}
		blCount[l]++
	}
	blCount[0] = 0
	var nextCode [maxCodeLen + 2]uint32
	code := uint32(0)
	for bits := 1; bits <= maxCodeLen; bits++ {
		code = (code + uint32(blCount[bits-1])) << 1
		nextCode[bits] = code
	}
	// Over-subscription check: the Kraft sum must not exceed 1.
	kraft := 0
	for bits := 1; bits <= maxCodeLen; bits++ {
		kraft += blCount[bits] << (maxCodeLen - bits)
	}
	if kraft > 1<<maxCodeLen {
		return errors.New("deflate: over-subscribed code lengths")
	}
	for i, l := range lengths {
		if l == 0 {
			out[i] = huffCode{}
			continue
		}
		out[i] = huffCode{code: nextCode[l], len: l}
		nextCode[l]++
	}
	return nil
}

// canonicalCodes is the allocating convenience form of canonicalCodesInto.
func canonicalCodes(lengths []uint8) ([]huffCode, error) {
	out := make([]huffCode, len(lengths))
	if err := canonicalCodesInto(out, lengths); err != nil {
		return nil, err
	}
	return out, nil
}

// huffNode is one node of the Huffman construction forest; sym is -1 for
// internal nodes, left/right index the scratch node pool.
type huffNode struct {
	weight      int
	sym         int
	left, right int
}

// symLen pairs a symbol with its (possibly clamped) code length during
// length limiting.
type symLen struct {
	sym int
	len int
}

// visitFrame is one stack entry of the iterative depth assignment.
type visitFrame struct {
	idx, depth int
}

// huffScratch holds the node pool, min-heap, traversal stack, and
// length-limiting scratch for buildLengthsInto, so repeated Huffman
// construction (three trees per deflate block) does not allocate.
type huffScratch struct {
	nodes []huffNode
	heap  []int // node indices, min-heap by weight
	stack []visitFrame
	used  []symLen
}

func (s *huffScratch) push(idx int) {
	s.heap = append(s.heap, idx)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.nodes[s.heap[p]].weight <= s.nodes[s.heap[i]].weight {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *huffScratch) pop() int {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.heap) && s.nodes[s.heap[l]].weight < s.nodes[s.heap[small]].weight {
			small = l
		}
		if r < len(s.heap) && s.nodes[s.heap[r]].weight < s.nodes[s.heap[small]].weight {
			small = r
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}

// buildLengthsInto computes length-limited Huffman code lengths for the
// given symbol frequencies into lengths (len(lengths) == len(freq)),
// using heap construction followed by depth limiting (the simple
// "flatten overlong codes" adjustment, which preserves prefix-freeness
// via canonical reassignment). Symbols with zero frequency get length 0.
func (s *huffScratch) buildLengthsInto(lengths []uint8, freq []int, limit int) {
	for i := range lengths {
		lengths[i] = 0
	}
	s.nodes = s.nodes[:0]
	s.heap = s.heap[:0]
	live := 0
	for sym, f := range freq {
		if f > 0 {
			s.nodes = append(s.nodes, huffNode{weight: f, sym: sym, left: -1, right: -1})
			s.push(len(s.nodes) - 1)
			live++
		}
	}
	switch live {
	case 0:
		return
	case 1:
		// Deflate requires at least a 1-bit code for a lone symbol.
		lengths[s.nodes[s.heap[0]].sym] = 1
		return
	}
	for len(s.heap) > 1 {
		a, b := s.pop(), s.pop()
		s.nodes = append(s.nodes, huffNode{weight: s.nodes[a].weight + s.nodes[b].weight, sym: -1, left: a, right: b})
		s.push(len(s.nodes) - 1)
	}
	// Assign depths iteratively.
	s.stack = append(s.stack[:0], visitFrame{s.heap[0], 0})
	for len(s.stack) > 0 {
		v := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		nd := s.nodes[v.idx]
		if nd.sym >= 0 {
			d := v.depth
			if d == 0 {
				d = 1
			}
			lengths[nd.sym] = uint8(d)
			continue
		}
		s.stack = append(s.stack, visitFrame{nd.left, v.depth + 1}, visitFrame{nd.right, v.depth + 1})
	}
	s.limitLengths(lengths, limit)
}

// buildLengths is the allocating convenience form of buildLengthsInto.
func buildLengths(freq []int, limit int) []uint8 {
	var s huffScratch
	lengths := make([]uint8, len(freq))
	s.buildLengthsInto(lengths, freq, limit)
	return lengths
}

// limitLengths enforces a maximum code length by shortening overlong
// codes and re-balancing so the Kraft inequality still holds with
// equality on the used portion.
func (s *huffScratch) limitLengths(lengths []uint8, limit int) {
	over := false
	for _, l := range lengths {
		if int(l) > limit {
			over = true
			break
		}
	}
	if !over {
		return
	}
	// Collect used symbols sorted by (length, symbol). Keys are unique
	// (symbols are distinct), so insertion sort yields the same order
	// any comparison sort would — without allocating.
	used := s.used[:0]
	for sym, l := range lengths {
		if l > 0 {
			ln := int(l)
			if ln > limit {
				ln = limit
			}
			used = append(used, symLen{sym, ln})
		}
	}
	for i := 1; i < len(used); i++ {
		u := used[i]
		j := i - 1
		for j >= 0 && (used[j].len > u.len || (used[j].len == u.len && used[j].sym > u.sym)) {
			used[j+1] = used[j]
			j--
		}
		used[j+1] = u
	}
	// Repair Kraft: K = sum 2^(limit-len) must be <= 2^limit.
	kraft := 0
	for _, u := range used {
		kraft += 1 << (limit - u.len)
	}
	budget := 1 << limit
	// Lengthen the shortest-excess codes until within budget.
	for kraft > budget {
		// Find a symbol with len < limit whose lengthening helps most:
		// take the one with the largest current share (smallest len).
		best := -1
		for i, u := range used {
			if u.len < limit && (best == -1 || u.len < used[best].len) {
				best = i
			}
		}
		if best == -1 {
			panic("deflate: cannot satisfy length limit")
		}
		kraft -= 1 << (limit - used[best].len)
		used[best].len++
		kraft += 1 << (limit - used[best].len)
	}
	for _, u := range used {
		lengths[u.sym] = uint8(u.len)
	}
	s.used = used
}

// decodeTable is a bit-serial canonical Huffman decoder: firstCode and
// firstSym index codes by length, symbols are listed in canonical order.
type decodeTable struct {
	counts  [maxCodeLen + 1]int
	symbols []int
}

// newDecodeTable builds the decoder for the given code lengths.
func newDecodeTable(lengths []uint8) (*decodeTable, error) {
	t := &decodeTable{}
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("deflate: code length %d too long", l)
		}
		if l > 0 {
			t.counts[l]++
		}
	}
	// Reject over-subscribed tables (incomplete ones are legal for
	// distance codes per the RFC errata, caught at use time instead).
	kraft := 0
	for bits := 1; bits <= maxCodeLen; bits++ {
		kraft += t.counts[bits] << (maxCodeLen - bits)
	}
	if kraft > 1<<maxCodeLen {
		return nil, errors.New("deflate: over-subscribed decode table")
	}
	var offs [maxCodeLen + 2]int
	for l := 1; l <= maxCodeLen; l++ {
		offs[l+1] = offs[l] + t.counts[l]
	}
	t.symbols = make([]int, offs[maxCodeLen+1])
	next := offs
	for sym, l := range lengths {
		if l > 0 {
			t.symbols[next[l]] = sym
			next[l]++
		}
	}
	return t, nil
}

// decode reads one symbol from the bit reader.
func (t *decodeTable) decode(r *bitReader) (int, error) {
	code, first, index := 0, 0, 0
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		code |= int(b)
		count := t.counts[l]
		if code-first < count {
			return t.symbols[index+code-first], nil
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return 0, errors.New("deflate: invalid Huffman code")
}
