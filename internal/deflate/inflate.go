package deflate

import (
	"errors"
	"fmt"
)

// Decompression errors.
var (
	ErrCorrupt = errors.New("deflate: corrupt stream")
)

// Decompress inflates a complete RFC 1951 stream. It accepts output from
// this package's encoders and from any conforming encoder (the tests
// check compress/flate interop), and is used by the receive path of the
// (de)compression ULP.
func Decompress(data []byte) ([]byte, error) {
	return DecompressLimit(data, 1<<30)
}

// DecompressLimit inflates with an output size cap, guarding against
// decompression bombs in the server model.
func DecompressLimit(data []byte, limit int) ([]byte, error) {
	r := newBitReader(data)
	var out []byte
	for {
		final, err := r.readBit()
		if err != nil {
			return nil, err
		}
		btype, err := r.readBits(2)
		if err != nil {
			return nil, err
		}
		switch btype {
		case 0: // stored
			r.alignByte()
			lenBits, err := r.readBits(16)
			if err != nil {
				return nil, err
			}
			nlenBits, err := r.readBits(16)
			if err != nil {
				return nil, err
			}
			if lenBits != ^nlenBits&0xffff {
				return nil, fmt.Errorf("%w: stored block LEN/NLEN mismatch", ErrCorrupt)
			}
			if len(out)+int(lenBits) > limit {
				return nil, fmt.Errorf("%w: output exceeds limit", ErrCorrupt)
			}
			chunk := make([]byte, lenBits)
			if err := r.readBytes(chunk); err != nil {
				return nil, err
			}
			out = append(out, chunk...)
		case 1: // fixed Huffman
			lit, err := newDecodeTable(fixedLitLenLengths())
			if err != nil {
				return nil, err
			}
			dist, err := newDecodeTable(fixedDistLengths())
			if err != nil {
				return nil, err
			}
			out, err = inflateBlock(r, out, lit, dist, limit)
			if err != nil {
				return nil, err
			}
		case 2: // dynamic Huffman
			lit, dist, err := readDynamicTables(r)
			if err != nil {
				return nil, err
			}
			out, err = inflateBlock(r, out, lit, dist, limit)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: reserved block type", ErrCorrupt)
		}
		if final == 1 {
			return out, nil
		}
	}
}

// readDynamicTables parses the dynamic block header (HLIT/HDIST/HCLEN and
// the RLE-compressed code lengths).
func readDynamicTables(r *bitReader) (lit, dist *decodeTable, err error) {
	hlitBits, err := r.readBits(5)
	if err != nil {
		return nil, nil, err
	}
	hdistBits, err := r.readBits(5)
	if err != nil {
		return nil, nil, err
	}
	hclenBits, err := r.readBits(4)
	if err != nil {
		return nil, nil, err
	}
	hlit := int(hlitBits) + 257
	hdist := int(hdistBits) + 1
	hclen := int(hclenBits) + 4
	if hlit > numLitLenSyms+2 || hdist > numDistSyms+2 {
		return nil, nil, fmt.Errorf("%w: header counts out of range", ErrCorrupt)
	}

	clLens := make([]uint8, 19)
	for i := 0; i < hclen; i++ {
		v, err := r.readBits(3)
		if err != nil {
			return nil, nil, err
		}
		clLens[clOrder[i]] = uint8(v)
	}
	clTable, err := newDecodeTable(clLens)
	if err != nil {
		return nil, nil, err
	}

	lens := make([]uint8, hlit+hdist)
	for i := 0; i < len(lens); {
		sym, err := clTable.decode(r)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case sym < 16:
			lens[i] = uint8(sym)
			i++
		case sym == 16:
			if i == 0 {
				return nil, nil, fmt.Errorf("%w: repeat with no previous length", ErrCorrupt)
			}
			n, err := r.readBits(2)
			if err != nil {
				return nil, nil, err
			}
			rep := int(n) + 3
			if i+rep > len(lens) {
				return nil, nil, fmt.Errorf("%w: repeat overruns lengths", ErrCorrupt)
			}
			for j := 0; j < rep; j++ {
				lens[i] = lens[i-1]
				i++
			}
		case sym == 17:
			n, err := r.readBits(3)
			if err != nil {
				return nil, nil, err
			}
			rep := int(n) + 3
			if i+rep > len(lens) {
				return nil, nil, fmt.Errorf("%w: zero run overruns lengths", ErrCorrupt)
			}
			i += rep
		case sym == 18:
			n, err := r.readBits(7)
			if err != nil {
				return nil, nil, err
			}
			rep := int(n) + 11
			if i+rep > len(lens) {
				return nil, nil, fmt.Errorf("%w: zero run overruns lengths", ErrCorrupt)
			}
			i += rep
		default:
			return nil, nil, fmt.Errorf("%w: bad code length symbol %d", ErrCorrupt, sym)
		}
	}
	if lens[endBlockSym] == 0 {
		return nil, nil, fmt.Errorf("%w: no end-of-block code", ErrCorrupt)
	}
	lit, err = newDecodeTable(lens[:hlit])
	if err != nil {
		return nil, nil, err
	}
	dist, err = newDecodeTable(lens[hlit:])
	if err != nil {
		return nil, nil, err
	}
	return lit, dist, nil
}

// inflateBlock decodes one block's symbol stream into out.
func inflateBlock(r *bitReader, out []byte, lit, dist *decodeTable, limit int) ([]byte, error) {
	for {
		sym, err := lit.decode(r)
		if err != nil {
			return nil, err
		}
		switch {
		case sym < 256:
			if len(out) >= limit {
				return nil, fmt.Errorf("%w: output exceeds limit", ErrCorrupt)
			}
			out = append(out, byte(sym))
		case sym == endBlockSym:
			return out, nil
		case sym < numLitLenSyms:
			extra := lengthExtra[sym]
			length := int(lengthBase[sym])
			if extra > 0 {
				v, err := r.readBits(uint(extra))
				if err != nil {
					return nil, err
				}
				length += int(v)
			}
			dsym, err := dist.decode(r)
			if err != nil {
				return nil, err
			}
			if dsym >= numDistSyms {
				return nil, fmt.Errorf("%w: bad distance symbol %d", ErrCorrupt, dsym)
			}
			distance := int(distBase[dsym])
			if de := distExtra[dsym]; de > 0 {
				v, err := r.readBits(uint(de))
				if err != nil {
					return nil, err
				}
				distance += int(v)
			}
			if distance > len(out) {
				return nil, fmt.Errorf("%w: distance %d beyond output", ErrCorrupt, distance)
			}
			if len(out)+length > limit {
				return nil, fmt.Errorf("%w: output exceeds limit", ErrCorrupt)
			}
			// Byte-by-byte copy: overlapping copies are the mechanism
			// behind run-length behaviour (dist < len).
			start := len(out) - distance
			for i := 0; i < length; i++ {
				out = append(out, out[start+i])
			}
		default:
			return nil, fmt.Errorf("%w: bad literal/length symbol %d", ErrCorrupt, sym)
		}
	}
}
