package deflate

import (
	"bytes"
	"testing"
)

// benchHTML synthesizes a repetitive HTML-ish page like the paper's web
// serving workload (nginx index pages compress at ~3-4x).
func benchHTML(n int) []byte {
	var b bytes.Buffer
	for i := 0; b.Len() < n; i++ {
		b.WriteString("<div class=\"row item\"><a href=\"/item/")
		b.WriteByte(byte('a' + i%26))
		b.WriteString("\">Item</a><span>description text that repeats</span></div>\n")
	}
	return b.Bytes()[:n]
}

// BenchmarkDeflateEncodeNoAlloc measures steady-state software deflate
// through a reused Encoder arena and output buffer: after warmup each
// 4KB page must encode with zero heap allocations.
func BenchmarkDeflateEncodeNoAlloc(b *testing.B) {
	src := benchHTML(4096)
	e := NewEncoder(EncoderOptions{Lazy: true})
	dst := e.EncodeAll(src, nil) // warm the arena and size the buffer
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.EncodeAll(src, dst[:0])
	}
	_ = dst
}

// BenchmarkDeflateCompress is the pooled package-level entry the offload
// backends call per page.
func BenchmarkDeflateCompress(b *testing.B) {
	src := benchHTML(4096)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compress(src)
	}
}

// TestEncodeAllMatchesCompressOpts pins EncodeAll (arena reuse across
// differently sized inputs) to the one-shot path byte-for-byte.
func TestEncodeAllMatchesCompressOpts(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("a"),
		benchHTML(300),
		benchHTML(4096),
		bytes.Repeat([]byte{0}, 70000),
		benchHTML(17),
	}
	for _, o := range []EncoderOptions{{Lazy: true}, {}, {MaxChainLen: 4, WindowSize: 4096}} {
		e := NewEncoder(o)
		var dst []byte
		for i, src := range inputs {
			dst = e.EncodeAll(src, dst[:0])
			want := CompressOpts(src, o)
			if !bytes.Equal(dst, want) {
				t.Fatalf("opts %+v input %d: EncodeAll differs from CompressOpts (%d vs %d bytes)",
					o, i, len(dst), len(want))
			}
		}
	}
}
