// Package stats provides the measurement primitives used across the
// SmartDIMM reproduction: counters, bandwidth meters, latency histograms
// with percentile queries, time-series samplers, and DDR CAS-command trace
// capture (used to regenerate Fig. 9 of the paper).
//
// All types are plain value types guarded by the caller unless documented
// otherwise; the simulator is single-threaded per system instance, so the
// hot-path types avoid locks.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/telemetry"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Collect implements telemetry.Collector.
func (c *Counter) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "count", Value: float64(c.n)})
}

// Degradation counts graceful-degradation events on an offload path:
// operations served by the primary placement, operations demoted to the
// fallback (CPU) path, and circuit-breaker transitions. A zero value is
// ready to use.
type Degradation struct {
	PrimaryOps    uint64 // served by the primary backend
	FallbackOps   uint64 // demoted to the fallback path
	ShortCircuits uint64 // routed straight to fallback while the breaker was open
	Opens         uint64 // breaker open transitions (primary demoted)
	Closes        uint64 // breaker close transitions (primary restored)
	InjectedFaults uint64 // failures forced by fault injection
}

// FallbackRate returns the fraction of operations that degraded.
func (d *Degradation) FallbackRate() float64 {
	total := d.PrimaryOps + d.FallbackOps
	if total == 0 {
		return 0
	}
	return float64(d.FallbackOps) / float64(total)
}

// Collect implements telemetry.Collector; every path that previously
// hand-formatted these counters now registers the ladder and prints
// through telemetry.Registry.WriteText.
func (d *Degradation) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "primary_ops", Value: float64(d.PrimaryOps)})
	emit(telemetry.Sample{Name: "fallback_ops", Value: float64(d.FallbackOps)})
	emit(telemetry.Sample{Name: "short_circuits", Value: float64(d.ShortCircuits)})
	emit(telemetry.Sample{Name: "opens", Value: float64(d.Opens)})
	emit(telemetry.Sample{Name: "closes", Value: float64(d.Closes)})
	emit(telemetry.Sample{Name: "injected_faults", Value: float64(d.InjectedFaults)})
	emit(telemetry.Sample{Name: "fallback_rate", Value: d.FallbackRate()})
}

// Gauge is a sampled instantaneous value that tracks its running
// maximum, minimum and mean.
type Gauge struct {
	cur, min, max float64
	sum           float64
	samples       uint64
}

// Set records a new sample for the gauge.
func (g *Gauge) Set(v float64) {
	if g.samples == 0 {
		g.min, g.max = v, v
	} else {
		if v < g.min {
			g.min = v
		}
		if v > g.max {
			g.max = v
		}
	}
	g.cur = v
	g.sum += v
	g.samples++
}

// Value returns the most recent sample.
func (g *Gauge) Value() float64 { return g.cur }

// Max returns the largest sample seen so far, or 0 before any sample.
func (g *Gauge) Max() float64 { return g.max }

// Min returns the smallest sample seen so far, or 0 before any sample.
func (g *Gauge) Min() float64 { return g.min }

// Mean returns the arithmetic mean of all samples, or 0 before any sample.
func (g *Gauge) Mean() float64 {
	if g.samples == 0 {
		return 0
	}
	return g.sum / float64(g.samples)
}

// Samples returns how many times Set has been called.
func (g *Gauge) Samples() uint64 { return g.samples }

// Collect implements telemetry.Collector.
func (g *Gauge) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "value", Value: g.cur})
	emit(telemetry.Sample{Name: "min", Value: g.min})
	emit(telemetry.Sample{Name: "max", Value: g.max})
	emit(telemetry.Sample{Name: "mean", Value: g.Mean()})
}

// BandwidthMeter accumulates bytes transferred against simulated time and
// reports utilization against a configured peak rate. Time is expressed in
// picoseconds, matching the DRAM model's clock resolution.
type BandwidthMeter struct {
	// PeakBytesPerSec is the theoretical peak of the measured channel.
	PeakBytesPerSec float64

	bytes      uint64
	windowBase uint64 // cumulative bytes at the last Sample call
	startPs    int64
	lastPs     int64
	started    bool
	intervals  []BandwidthSample
}

// BandwidthSample is one windowed bandwidth observation.
type BandwidthSample struct {
	AtPs        int64   // window end time
	BytesPerSec float64 // achieved bandwidth in the window
}

// Record accounts bytes transferred at simulated time nowPs.
func (m *BandwidthMeter) Record(nowPs int64, bytes uint64) {
	if !m.started {
		m.startPs = nowPs
		m.started = true
	}
	m.bytes += bytes
	m.lastPs = nowPs
}

// Sample closes a measurement window at nowPs and stores the windowed rate.
// Subsequent samples measure from the previous sample point.
func (m *BandwidthMeter) Sample(nowPs int64) BandwidthSample {
	var window int64
	if len(m.intervals) == 0 {
		window = nowPs - m.startPs
	} else {
		window = nowPs - m.intervals[len(m.intervals)-1].AtPs
	}
	s := BandwidthSample{AtPs: nowPs, BytesPerSec: ratePerSec(m.bytes-m.windowBase, window)}
	m.intervals = append(m.intervals, s)
	m.windowBase = m.bytes
	return s
}

// TotalBytes returns all bytes recorded since creation.
func (m *BandwidthMeter) TotalBytes() uint64 { return m.bytes }

// MeanBytesPerSec returns the lifetime average transfer rate.
func (m *BandwidthMeter) MeanBytesPerSec() float64 {
	if !m.started || m.lastPs == m.startPs {
		return 0
	}
	return ratePerSec(m.bytes, m.lastPs-m.startPs)
}

// Utilization returns mean bandwidth as a fraction of the configured peak,
// or 0 when no peak is configured.
func (m *BandwidthMeter) Utilization() float64 {
	if m.PeakBytesPerSec == 0 {
		return 0
	}
	return m.MeanBytesPerSec() / m.PeakBytesPerSec
}

// Samples returns the windowed samples captured so far.
func (m *BandwidthMeter) Samples() []BandwidthSample { return m.intervals }

// Merge folds another meter's traffic into this one, so per-device
// channel meters aggregate into a fleet total. Byte counts add; the
// merged observation window spans both meters' windows (fleet members
// run under one simulated clock, so the union interval is meaningful).
// Windowed samples are not merged — sample the aggregate instead.
func (m *BandwidthMeter) Merge(o *BandwidthMeter) {
	if o == nil || !o.started {
		return
	}
	if !m.started {
		m.startPs, m.lastPs, m.started = o.startPs, o.lastPs, true
	} else {
		if o.startPs < m.startPs {
			m.startPs = o.startPs
		}
		if o.lastPs > m.lastPs {
			m.lastPs = o.lastPs
		}
	}
	m.bytes += o.bytes
	m.windowBase += o.bytes
}

// Collect implements telemetry.Collector.
func (m *BandwidthMeter) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "total_bytes", Value: float64(m.bytes)})
	emit(telemetry.Sample{Name: "mean_bytes_per_sec", Value: m.MeanBytesPerSec()})
	emit(telemetry.Sample{Name: "utilization", Value: m.Utilization()})
}

func ratePerSec(bytes uint64, ps int64) float64 {
	if ps <= 0 {
		return 0
	}
	return float64(bytes) / (float64(ps) * 1e-12)
}

// Histogram is a latency/size histogram with percentile queries. The
// default (exact) mode stores raw samples — short simulation runs are
// bounded, and exact quantiles simplify validation against the paper.
// SetBounded switches to a log2-bucketed sketch with fixed memory
// (histSubBuckets linear sub-buckets per power-of-two octave, ~16KB
// total), which is what long-lived aggregation paths (the fleet's
// service-time sketches, the load generator's latency record) use so
// memory stays flat at fleet request rates. Bounded percentiles are
// nearest-rank over bucket midpoints: relative error is at most one
// sub-bucket width (~1/histSubBuckets of an octave); Min, Max, Mean,
// and Count stay exact in both modes.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
	n       uint64

	bounded  bool
	buckets  []uint64
	min, max float64
}

// Bounded-mode geometry: octaves cover [2^(histMinExp-1), 2^histMaxExp)
// with histSubBuckets linear sub-buckets each. Bucket 0 collects v <= 0
// and underflow; the top bucket collects overflow.
const (
	histSubBuckets = 16
	histMinExp     = -64
	histMaxExp     = 64
	histNumBuckets = (histMaxExp-histMinExp+1)*histSubBuckets + 1
)

// bucketIndex maps a sample to its bounded-mode bucket.
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < histMinExp {
		return 0
	}
	if exp > histMaxExp {
		exp = histMaxExp
	}
	sub := int((frac - 0.5) * 2 * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return (exp-histMinExp)*histSubBuckets + sub + 1
}

// bucketMid returns the linear midpoint of a bucket's value range, the
// representative bounded percentiles report.
func bucketMid(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	idx--
	exp := histMinExp + idx/histSubBuckets
	sub := idx % histSubBuckets
	lo := math.Ldexp(1, exp-1) // 2^(exp-1), the octave floor
	return lo * (1 + (float64(sub)+0.5)/histSubBuckets)
}

// SetBounded switches the histogram to the fixed-memory log2-bucketed
// mode, converting any samples already observed. Merging a bounded
// histogram into an exact one promotes the receiver, so boundedness is
// contagious through aggregation trees (a fleet total merged from
// bounded member sketches is itself bounded).
func (h *Histogram) SetBounded() {
	if h.bounded {
		return
	}
	h.bounded = true
	h.buckets = make([]uint64, histNumBuckets)
	for _, v := range h.samples {
		h.buckets[bucketIndex(v)]++
	}
	if len(h.samples) > 0 {
		if !h.sorted {
			sort.Float64s(h.samples)
		}
		h.min, h.max = h.samples[0], h.samples[len(h.samples)-1]
	}
	h.samples, h.sorted = nil, false
}

// Bounded reports whether the histogram is in log2-bucketed mode.
func (h *Histogram) Bounded() bool { return h.bounded }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.bounded {
		if h.buckets == nil {
			h.buckets = make([]uint64, histNumBuckets)
		}
		h.buckets[bucketIndex(v)]++
		if h.n == 0 {
			h.min, h.max = v, v
		} else {
			if v < h.min {
				h.min = v
			}
			if v > h.max {
				h.max = v
			}
		}
	} else {
		h.samples = append(h.samples, v)
		h.sorted = false
	}
	h.sum += v
	h.n++
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int { return int(h.n) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank: on the sorted samples in exact mode, on bucket
// midpoints in bounded mode (with exact min/max at the extremes).
// Returns 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if h.bounded {
		if p <= 0 {
			return h.min
		}
		if p >= 100 {
			return h.max
		}
		rank := uint64(math.Ceil(p / 100 * float64(h.n)))
		if rank < 1 {
			rank = 1
		}
		var cum uint64
		for i, c := range h.buckets {
			cum += c
			if cum >= rank {
				// Clamp the representative to the observed range so a
				// lone min/max sample never reports outside it.
				v := bucketMid(i)
				if v < h.min {
					v = h.min
				}
				if v > h.max {
					v = h.max
				}
				return v
			}
		}
		return h.max
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Merge folds another histogram's samples into this one so per-device
// latency sketches aggregate into fleet percentiles. With two exact
// histograms, both inputs are sorted in place (each is O(n log n) at
// most once over its lifetime) and combined with a single linear
// two-pointer pass — the union is never re-sorted, so repeated fleet
// aggregation stays O(total) after the first query on each member. If
// either side is bounded the result is bounded (the receiver promotes
// itself if needed): bounded-bounded merges add bucket counts, and an
// exact argument is re-observed bucket-wise. The argument is never
// mutated beyond sorting its samples.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.bounded || o.bounded {
		h.SetBounded()
		if h.buckets == nil {
			h.buckets = make([]uint64, histNumBuckets)
		}
		if o.bounded {
			for i, c := range o.buckets {
				h.buckets[i] += c
			}
		} else {
			for _, v := range o.samples {
				h.buckets[bucketIndex(v)]++
			}
		}
		omin, omax := o.Percentile(0), o.Percentile(100)
		if h.n == 0 {
			h.min, h.max = omin, omax
		} else {
			if omin < h.min {
				h.min = omin
			}
			if omax > h.max {
				h.max = omax
			}
		}
		h.sum += o.sum
		h.n += o.n
		return
	}
	if !o.sorted {
		sort.Float64s(o.samples)
		o.sorted = true
	}
	if len(h.samples) == 0 {
		h.samples = append(h.samples, o.samples...)
		h.sorted = true
		h.sum += o.sum
		h.n += o.n
		return
	}
	if !h.sorted {
		sort.Float64s(h.samples)
	}
	merged := make([]float64, 0, len(h.samples)+len(o.samples))
	i, j := 0, 0
	for i < len(h.samples) && j < len(o.samples) {
		if h.samples[i] <= o.samples[j] {
			merged = append(merged, h.samples[i])
			i++
		} else {
			merged = append(merged, o.samples[j])
			j++
		}
	}
	merged = append(merged, h.samples[i:]...)
	merged = append(merged, o.samples[j:]...)
	h.samples = merged
	h.sorted = true
	h.sum += o.sum
	h.n += o.n
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Collect implements telemetry.Collector.
func (h *Histogram) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "count", Value: float64(h.Count())})
	emit(telemetry.Sample{Name: "mean", Value: h.Mean()})
	emit(telemetry.Sample{Name: "p50", Value: h.Percentile(50)})
	emit(telemetry.Sample{Name: "p95", Value: h.Percentile(95)})
	emit(telemetry.Sample{Name: "p99", Value: h.Percentile(99)})
	emit(telemetry.Sample{Name: "max", Value: h.Max()})
}

// Reset discards all samples; the mode (exact or bounded) is kept.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = true
	h.sum = 0
	h.n = 0
	h.min, h.max = 0, 0
	for i := range h.buckets {
		h.buckets[i] = 0
	}
}

// TimeSeries captures (time, value) pairs for figures that plot a value
// over time, such as Fig. 10's scratchpad occupancy curves.
type TimeSeries struct {
	Name   string
	Points []SeriesPoint
}

// SeriesPoint is one (time, value) observation.
type SeriesPoint struct {
	AtPs  int64
	Value float64
}

// Append records a point at simulated time atPs.
func (t *TimeSeries) Append(atPs int64, v float64) {
	t.Points = append(t.Points, SeriesPoint{AtPs: atPs, Value: v})
}

// Last returns the most recent value, or 0 when empty.
func (t *TimeSeries) Last() float64 {
	if len(t.Points) == 0 {
		return 0
	}
	return t.Points[len(t.Points)-1].Value
}

// MaxAfter returns the maximum value among points at or after fromPs.
// It is used to check equilibrium occupancy in Fig. 10 after warmup.
func (t *TimeSeries) MaxAfter(fromPs int64) float64 {
	max := 0.0
	for _, p := range t.Points {
		if p.AtPs >= fromPs && p.Value > max {
			max = p.Value
		}
	}
	return max
}

// Downsample returns at most n points evenly spaced across the series,
// which keeps figure dumps readable.
func (t *TimeSeries) Downsample(n int) []SeriesPoint {
	if n <= 0 || len(t.Points) <= n {
		return t.Points
	}
	out := make([]SeriesPoint, 0, n)
	step := float64(len(t.Points)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, t.Points[int(float64(i)*step)])
	}
	return out
}

// String renders a short summary of the series.
func (t *TimeSeries) String() string {
	return fmt.Sprintf("series %q: %d points, last=%.3f", t.Name, len(t.Points), t.Last())
}
