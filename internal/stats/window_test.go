package stats

import (
	"math"
	"testing"

	"repro/internal/telemetry"
)

func TestWindowRollEvictsOldEpochs(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 100; i++ {
		w.Observe(1000) // epoch A: high
	}
	if got := w.Percentile(99); math.Abs(got-1000)/1000 > 0.1 {
		t.Fatalf("p99 before roll = %g, want ~1000", got)
	}
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	// Window still spans both epochs: p99 dominated by the old highs.
	if got := w.Percentile(99); got < 500 {
		t.Fatalf("p99 with high epoch live = %g, want > 500", got)
	}
	// Two more rolls push epoch A out of the window entirely.
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	if got := w.Percentile(99); got > 50 {
		t.Fatalf("p99 after eviction = %g, want ~10", got)
	}
	if n := w.Count(); n != 300 {
		t.Fatalf("count = %d, want 300 (3 live epochs x 100)", n)
	}
}

func TestWindowEmptyAndCollect(t *testing.T) {
	w := NewWindow(2)
	if w.Count() != 0 || w.Percentile(99) != 0 || w.Mean() != 0 {
		t.Fatalf("empty window should report zeros")
	}
	w.Observe(4)
	w.Observe(8)
	got := map[string]float64{}
	w.Collect(func(s telemetry.Sample) { got[s.Name] = s.Value })
	if got["count"] != 2 {
		t.Fatalf("collect count = %g, want 2", got["count"])
	}
	if got["mean"] != 6 {
		t.Fatalf("collect mean = %g, want 6", got["mean"])
	}
	if got["max"] != 8 {
		t.Fatalf("collect max = %g, want 8", got["max"])
	}
}
