package stats

import (
	"math"
	"testing"

	"repro/internal/telemetry"
)

func TestWindowRollEvictsOldEpochs(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 100; i++ {
		w.Observe(1000) // epoch A: high
	}
	if got := w.Percentile(99); math.Abs(got-1000)/1000 > 0.1 {
		t.Fatalf("p99 before roll = %g, want ~1000", got)
	}
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	// Window still spans both epochs: p99 dominated by the old highs.
	if got := w.Percentile(99); got < 500 {
		t.Fatalf("p99 with high epoch live = %g, want > 500", got)
	}
	// Two more rolls push epoch A out of the window entirely.
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	w.Roll()
	for i := 0; i < 100; i++ {
		w.Observe(10)
	}
	if got := w.Percentile(99); got > 50 {
		t.Fatalf("p99 after eviction = %g, want ~10", got)
	}
	if n := w.Count(); n != 300 {
		t.Fatalf("count = %d, want 300 (3 live epochs x 100)", n)
	}
}

// Rolling far past the epoch count must wrap cleanly: after any number
// of rolls, exactly Epochs() epochs are live and everything older is
// gone — including the epoch the cursor wrapped back onto.
func TestWindowRollWrapsPastEpochs(t *testing.T) {
	w := NewWindow(3)
	// Ten epochs, each holding ten samples of value 100*(epoch+1); the
	// window must end up spanning epochs 7, 8, 9 only.
	for epoch := 0; epoch < 10; epoch++ {
		if epoch > 0 {
			w.Roll()
		}
		for i := 0; i < 10; i++ {
			w.Observe(100 * float64(epoch+1))
		}
	}
	if n := w.Count(); n != 30 {
		t.Fatalf("count after wraparound = %d, want 30 (3 live epochs)", n)
	}
	// Oldest live epoch holds value 800: the minimum must not reach
	// further back than that, and the mean must be ~(800+900+1000)/3.
	if min := w.Percentile(0); min < 700 {
		t.Fatalf("min = %g, want >= ~800 (older epochs must be evicted)", min)
	}
	if mean := w.Mean(); math.Abs(mean-900)/900 > 0.01 {
		t.Fatalf("mean = %g, want ~900", mean)
	}
}

// epochs=1 degenerates to "current interval only": every Roll clears
// the whole window. NewWindow clamps smaller requests up to 1.
func TestWindowSingleEpochDegenerate(t *testing.T) {
	for _, req := range []int{1, 0, -5} {
		w := NewWindow(req)
		if w.Epochs() != 1 {
			t.Fatalf("NewWindow(%d).Epochs() = %d, want 1", req, w.Epochs())
		}
		w.Observe(100)
		w.Observe(200)
		if w.Count() != 2 {
			t.Fatalf("count = %d, want 2", w.Count())
		}
		w.Roll()
		if w.Count() != 0 || w.Percentile(99) != 0 || w.Mean() != 0 {
			t.Fatalf("NewWindow(%d): roll did not clear the single epoch: count=%d",
				req, w.Count())
		}
		w.Observe(50)
		if w.Count() != 1 {
			t.Fatalf("post-roll observe lost: count = %d", w.Count())
		}
	}
}

// Observations after a Roll must be visible to the very next query:
// the lazy merge cache may not serve a stale aggregate.
func TestWindowObserveAfterRollIsFresh(t *testing.T) {
	w := NewWindow(4)
	w.Observe(10)
	if w.Count() != 1 { // force the merge cache to populate
		t.Fatal("setup")
	}
	w.Roll()
	if w.Count() != 1 { // cache rebuilt after roll, old sample still live
		t.Fatalf("post-roll count = %d, want 1", w.Count())
	}
	w.Observe(1000)
	if w.Count() != 2 {
		t.Fatalf("observe after roll invisible: count = %d, want 2", w.Count())
	}
	if max := w.Percentile(100); max < 900 {
		t.Fatalf("fresh sample missing from percentile: max = %g", max)
	}
}

// Boundedness is contagious through Merge, and the promoted aggregate's
// Collect output switches to bucketed semantics: a fleet total merged
// from a window's bounded sketch is itself bounded, so registry samples
// built from it are bucket midpoints, not exact order statistics.
func TestWindowMergeContagionThroughCollect(t *testing.T) {
	w := NewWindow(2)
	for i := 0; i < 1000; i++ {
		w.Observe(1000)
	}

	var total Histogram // exact mode
	for i := 0; i < 10; i++ {
		total.Observe(3)
	}
	if total.Bounded() {
		t.Fatal("fresh histogram should start exact")
	}
	// Merge the window's aggregate (bounded by construction) into the
	// exact total: the receiver must promote itself.
	if !w.merged().Bounded() {
		t.Fatal("window aggregate should be bounded by construction")
	}
	total.Merge(w.merged())
	if !total.Bounded() {
		t.Fatal("merging a bounded sketch did not promote the receiver")
	}

	got := map[string]float64{}
	total.Collect(func(s telemetry.Sample) { got[s.Name] = s.Value })
	if got["count"] != 1010 {
		t.Fatalf("collect count = %g, want 1010", got["count"])
	}
	// Bounded percentiles are bucket midpoints: near the exact value,
	// but generally not equal to it. The p99 of the merged population
	// must land in the 1000-sample cohort's bucket (within one octave).
	if p99 := got["p99"]; p99 < 500 || p99 > 2000 {
		t.Fatalf("bounded p99 = %g, want within an octave of 1000", p99)
	}
	if got["max"] < 500 || got["max"] > 2000 {
		t.Fatalf("bounded max = %g, want within an octave of 1000", got["max"])
	}
}

func TestWindowEmptyAndCollect(t *testing.T) {
	w := NewWindow(2)
	if w.Count() != 0 || w.Percentile(99) != 0 || w.Mean() != 0 {
		t.Fatalf("empty window should report zeros")
	}
	w.Observe(4)
	w.Observe(8)
	got := map[string]float64{}
	w.Collect(func(s telemetry.Sample) { got[s.Name] = s.Value })
	if got["count"] != 2 {
		t.Fatalf("collect count = %g, want 2", got["count"])
	}
	if got["mean"] != 6 {
		t.Fatalf("collect mean = %g, want 6", got["mean"])
	}
	if got["max"] != 8 {
		t.Fatalf("collect max = %g, want 8", got["max"])
	}
}
