package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("new counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d, want 0", c.Value())
	}
}

func TestGaugeTracksExtremaAndMean(t *testing.T) {
	var g Gauge
	for _, v := range []float64{3, -1, 7, 5} {
		g.Set(v)
	}
	if g.Min() != -1 || g.Max() != 7 {
		t.Fatalf("min/max = %v/%v, want -1/7", g.Min(), g.Max())
	}
	if g.Value() != 5 {
		t.Fatalf("value = %v, want 5", g.Value())
	}
	if got, want := g.Mean(), 3.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if g.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", g.Samples())
	}
}

func TestGaugeEmpty(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 || g.Min() != 0 || g.Max() != 0 {
		t.Fatal("empty gauge should report zeros")
	}
}

func TestBandwidthMeterMeanRate(t *testing.T) {
	m := BandwidthMeter{PeakBytesPerSec: 1e9}
	m.Record(0, 0)
	// 1000 bytes over 1 microsecond = 1e9 bytes/sec.
	m.Record(1_000_000, 1000)
	if got := m.MeanBytesPerSec(); math.Abs(got-1e9) > 1 {
		t.Fatalf("mean rate = %v, want 1e9", got)
	}
	if got := m.Utilization(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
}

func TestBandwidthMeterWindows(t *testing.T) {
	var m BandwidthMeter
	m.Record(0, 0)
	m.Record(500_000, 500) // 500 B in 0.5 us
	s1 := m.Sample(1_000_000)
	if math.Abs(s1.BytesPerSec-5e8) > 1 {
		t.Fatalf("window1 = %v, want 5e8", s1.BytesPerSec)
	}
	m.Record(1_500_000, 2000)
	s2 := m.Sample(2_000_000)
	if math.Abs(s2.BytesPerSec-2e9) > 1 {
		t.Fatalf("window2 = %v, want 2e9", s2.BytesPerSec)
	}
	if len(m.Samples()) != 2 {
		t.Fatalf("samples = %d, want 2", len(m.Samples()))
	}
	if m.TotalBytes() != 2500 {
		t.Fatalf("total = %d, want 2500", m.TotalBytes())
	}
}

func TestBandwidthMeterZeroDuration(t *testing.T) {
	var m BandwidthMeter
	m.Record(100, 64)
	if m.MeanBytesPerSec() != 0 {
		t.Fatal("zero-duration meter must report 0 rate, not Inf")
	}
	if m.Utilization() != 0 {
		t.Fatal("unconfigured peak must report 0 utilization")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{50, 50}, {99, 99}, {100, 100}, {0, 1}, {1, 1},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentiles are non-decreasing in p for any sample set.
	f := func(vals []float64) bool {
		var h Histogram
		ok := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Observe(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := TimeSeries{Name: "occupancy"}
	for i := int64(0); i < 10; i++ {
		ts.Append(i*100, float64(i))
	}
	if ts.Last() != 9 {
		t.Fatalf("last = %v, want 9", ts.Last())
	}
	if got := ts.MaxAfter(500); got != 9 {
		t.Fatalf("max after 500 = %v, want 9", got)
	}
	if got := ts.MaxAfter(10_000); got != 0 {
		t.Fatalf("max after end = %v, want 0", got)
	}
	ds := ts.Downsample(3)
	if len(ds) != 3 {
		t.Fatalf("downsample = %d points, want 3", len(ds))
	}
	if !strings.Contains(ts.String(), "occupancy") {
		t.Fatalf("String() = %q", ts.String())
	}
}

func TestTimeSeriesDownsampleSmall(t *testing.T) {
	ts := TimeSeries{}
	ts.Append(1, 1)
	if got := ts.Downsample(10); len(got) != 1 {
		t.Fatalf("downsample of 1 point = %d, want 1", len(got))
	}
	if got := ts.Downsample(0); len(got) != 1 {
		t.Fatalf("downsample(0) should return all points")
	}
}

func TestCASTraceCountsAndLimit(t *testing.T) {
	tr := CASTrace{Limit: 2}
	tr.Record(CASEvent{AtPs: 1, Kind: RdCAS, PhysAddr: 0x1000, Core: 0})
	tr.Record(CASEvent{AtPs: 2, Kind: WrCAS, PhysAddr: 0x2000, Core: 1})
	tr.Record(CASEvent{AtPs: 3, Kind: RdCAS, PhysAddr: 0x3000, Core: 0})
	if tr.Reads() != 2 || tr.Writes() != 1 {
		t.Fatalf("reads/writes = %d/%d, want 2/1", tr.Reads(), tr.Writes())
	}
	if tr.Dropped() != 1 || len(tr.Events) != 2 {
		t.Fatalf("dropped=%d stored=%d, want 1/2", tr.Dropped(), len(tr.Events))
	}
}

func TestCASTraceDump(t *testing.T) {
	var tr CASTrace
	tr.Record(CASEvent{AtPs: 10, Kind: RdCAS, PhysAddr: 0x40, Core: 2})
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "10 rdCAS 0x40 2\n" {
		t.Fatalf("dump = %q", got)
	}
}

func TestCASTraceMonotonicRuns(t *testing.T) {
	var tr CASTrace
	// Core 0 reads monotonically 4 addresses, then restarts (new CompCpy).
	addrs := []uint64{0x0, 0x40, 0x80, 0xc0, 0x40, 0x80}
	for i, a := range addrs {
		tr.Record(CASEvent{AtPs: int64(i), Kind: RdCAS, PhysAddr: a, Core: 0})
	}
	runs := tr.MonotonicRunLengths()[0]
	if len(runs) != 2 || runs[0] != 4 || runs[1] != 2 {
		t.Fatalf("runs = %v, want [4 2]", runs)
	}
}

func TestCASTraceAddressSpread(t *testing.T) {
	var tr CASTrace
	if tr.AddressSpreadBytes() != 0 {
		t.Fatal("empty trace spread should be 0")
	}
	tr.Record(CASEvent{PhysAddr: 32 << 20})
	tr.Record(CASEvent{PhysAddr: 0})
	if got := tr.AddressSpreadBytes(); got != 32<<20 {
		t.Fatalf("spread = %d, want 32MB", got)
	}
}

func TestCASKindString(t *testing.T) {
	if RdCAS.String() != "rdCAS" || WrCAS.String() != "wrCAS" {
		t.Fatal("CASKind strings wrong")
	}
}

func TestHistogramMergeMatchesUnion(t *testing.T) {
	var a, b, want Histogram
	for i := 0; i < 50; i++ {
		v := float64((i * 7919) % 100)
		a.Observe(v)
		want.Observe(v)
	}
	for i := 0; i < 37; i++ {
		v := float64((i * 104729) % 250)
		b.Observe(v)
		want.Observe(v)
	}
	a.Percentile(50) // force a to be sorted before the merge
	a.Merge(&b)
	if a.Count() != want.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), want.Count())
	}
	if math.Abs(a.Mean()-want.Mean()) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", a.Mean(), want.Mean())
	}
	for _, p := range []float64{0, 1, 25, 50, 90, 99, 100} {
		if got, exp := a.Percentile(p), want.Percentile(p); got != exp {
			t.Fatalf("p%v = %v, want %v", p, got, exp)
		}
	}
	// Invariant: the merged sample set is already sorted (no re-sort).
	for i := 1; i < len(a.samples); i++ {
		if a.samples[i-1] > a.samples[i] {
			t.Fatalf("merged samples not sorted at %d", i)
		}
	}
	if !a.sorted {
		t.Fatal("merge must leave the receiver marked sorted")
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	var a Histogram
	a.Merge(nil) // no-op
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 0 {
		t.Fatal("merging empties should observe nothing")
	}
	var b Histogram
	b.Observe(3)
	b.Observe(1)
	a.Merge(&b) // empty receiver adopts the argument's samples
	if a.Count() != 2 || a.Percentile(0) != 1 || a.Percentile(100) != 3 {
		t.Fatalf("merge into empty: count=%d min=%v max=%v", a.Count(), a.Percentile(0), a.Percentile(100))
	}
	if b.Count() != 2 || b.Percentile(100) != 3 {
		t.Fatal("merge must leave the argument intact")
	}
	// Receiver keeps observing after a merge.
	a.Observe(2)
	if a.Percentile(50) != 2 {
		t.Fatalf("post-merge median = %v, want 2", a.Percentile(50))
	}
}

func TestBandwidthMeterMerge(t *testing.T) {
	a := &BandwidthMeter{PeakBytesPerSec: 100e9}
	b := &BandwidthMeter{PeakBytesPerSec: 100e9}
	a.Record(0, 1000)
	a.Record(1e12, 1000) // 2000B over 1s
	b.Record(5e11, 500)
	b.Record(2e12, 1500) // 2000B, window extends to 2s
	a.Merge(b)
	if got := a.TotalBytes(); got != 4000 {
		t.Fatalf("merged total = %d, want 4000", got)
	}
	// Union window = [0, 2s] → 4000B / 2s = 2000 B/s.
	if got := a.MeanBytesPerSec(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("merged mean rate = %v, want 2000", got)
	}
	// Merging into a fresh meter adopts the argument's window.
	total := &BandwidthMeter{}
	total.Merge(a)
	if total.TotalBytes() != 4000 || total.MeanBytesPerSec() != a.MeanBytesPerSec() {
		t.Fatal("merge into fresh meter should adopt totals and window")
	}
	var idle BandwidthMeter
	total.Merge(&idle) // unstarted argument is a no-op
	if total.TotalBytes() != 4000 {
		t.Fatal("merging an unstarted meter must not change totals")
	}
}

// Bounded mode must answer percentile queries within one sub-bucket of
// relative error while keeping count, mean, min and max exact.
func TestBoundedHistogramPercentiles(t *testing.T) {
	var h Histogram
	h.SetBounded()
	if !h.Bounded() {
		t.Fatal("SetBounded did not switch modes")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5 (mean must stay exact)", got)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %v/%v, want exact 1/1000", h.Min(), h.Max())
	}
	// One sub-bucket spans 1/histSubBuckets of an octave: relative error
	// is bounded by a factor of 2^(1/16)-ish; 10% is comfortably outside.
	for _, p := range []float64{25, 50, 90, 99} {
		want := float64(int(math.Ceil(p / 100 * 1000)))
		got := h.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("bounded p%v = %v, want ~%v (rel err %.3f)", p, got, want, rel)
		}
	}
}

// Converting an exact histogram mid-life must preserve its contents.
func TestSetBoundedConvertsExistingSamples(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	h.SetBounded()
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("conversion lost state: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if got := h.Percentile(50); math.Abs(got-50)/50 > 0.10 {
		t.Fatalf("p50 after conversion = %v, want ~50", got)
	}
}

// Merging two bounded histograms must equal observing the union into one.
func TestBoundedMergeMatchesUnion(t *testing.T) {
	var a, b, want Histogram
	a.SetBounded()
	b.SetBounded()
	want.SetBounded()
	for i := 0; i < 500; i++ {
		v := math.Exp(float64(i%37) / 5)
		a.Observe(v)
		want.Observe(v)
	}
	for i := 0; i < 300; i++ {
		v := float64(i)*3 + 0.5
		b.Observe(v)
		want.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != want.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), want.Count())
	}
	for p := 0.0; p <= 100; p += 5 {
		if got, w := a.Percentile(p), want.Percentile(p); got != w {
			t.Fatalf("merged p%v = %v, union = %v", p, got, w)
		}
	}
	if a.Min() != want.Min() || a.Max() != want.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), want.Min(), want.Max())
	}
}

// Boundedness is contagious through Merge in both directions: an exact
// receiver promotes itself when fed a bounded argument, and a bounded
// receiver re-observes an exact argument bucket-wise.
func TestHistogramMergeModeContagion(t *testing.T) {
	var exact, bounded Histogram
	bounded.SetBounded()
	for i := 1; i <= 50; i++ {
		exact.Observe(float64(i))
		bounded.Observe(float64(i + 50))
	}
	recv := exact // copy: exact receiver, bounded argument
	recv.Merge(&bounded)
	if !recv.Bounded() {
		t.Fatal("exact receiver did not promote on bounded merge")
	}
	if recv.Count() != 100 || recv.Min() != 1 || recv.Max() != 100 {
		t.Fatalf("promoted merge state: count=%d min=%v max=%v", recv.Count(), recv.Min(), recv.Max())
	}

	var recv2 Histogram
	recv2.SetBounded()
	for i := 1; i <= 50; i++ {
		recv2.Observe(float64(i + 50))
	}
	recv2.Merge(&exact) // bounded receiver, exact argument
	if recv2.Count() != 100 || recv2.Min() != 1 || recv2.Max() != 100 {
		t.Fatalf("bounded<-exact merge state: count=%d min=%v max=%v", recv2.Count(), recv2.Min(), recv2.Max())
	}
	if got := recv2.Percentile(50); math.Abs(got-50)/50 > 0.10 {
		t.Fatalf("bounded<-exact p50 = %v, want ~50", got)
	}
}

// Bounded percentiles must stay monotone in p, like exact ones.
func TestBoundedPercentileMonotonic(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		h.SetBounded()
		ok := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Observe(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Memory stays flat in bounded mode: Observe never grows the histogram
// after the bucket array exists.
func TestBoundedObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	h.SetBounded()
	h.Observe(1) // ensure buckets exist
	if a := testing.AllocsPerRun(1000, func() { h.Observe(123.456) }); a != 0 {
		t.Fatalf("bounded Observe allocates %v/op", a)
	}
}

func TestBoundedReset(t *testing.T) {
	var h Histogram
	h.SetBounded()
	for i := 0; i < 10; i++ {
		h.Observe(float64(i + 1))
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset did not clear bounded histogram")
	}
	if !h.Bounded() {
		t.Fatal("reset dropped bounded mode")
	}
	h.Observe(7)
	if h.Count() != 1 || h.Percentile(100) != 7 {
		t.Fatal("bounded histogram unusable after reset")
	}
}
