package stats

import "repro/internal/telemetry"

// Window is a rolling histogram: observations land in the current
// epoch, and Roll retires the oldest of the last N epochs. Percentile
// queries cover every live epoch, so a Window registered in the
// telemetry registry reports *recent* tail latency — the autoscaler's
// input signal — instead of the run-to-date aggregate a plain
// Histogram gives (which stops responding to load changes once enough
// history accumulates). Epochs run in the bounded log2-bucketed mode,
// so memory stays flat no matter how long the run is.
//
// Like the rest of this package, a Window is owned by a single system
// instance and is not safe for concurrent use.
type Window struct {
	epochs  []Histogram
	scratch Histogram
	cur     int
	dirty   bool
}

// NewWindow returns a rolling histogram covering the last `epochs`
// Roll intervals (minimum 1).
func NewWindow(epochs int) *Window {
	if epochs < 1 {
		epochs = 1
	}
	w := &Window{epochs: make([]Histogram, epochs)}
	for i := range w.epochs {
		w.epochs[i].SetBounded()
	}
	w.scratch.SetBounded()
	return w
}

// Epochs returns the window length in Roll intervals.
func (w *Window) Epochs() int { return len(w.epochs) }

// Observe records one sample into the current epoch.
func (w *Window) Observe(v float64) {
	w.epochs[w.cur].Observe(v)
	w.dirty = true
}

// Roll closes the current epoch and evicts the oldest one. The
// autoscaler calls it once per control tick, making the window span
// Epochs() ticks of history.
func (w *Window) Roll() {
	w.cur = (w.cur + 1) % len(w.epochs)
	w.epochs[w.cur].Reset()
	w.dirty = true
}

// merged rebuilds the cross-epoch aggregate lazily: queries between
// mutations share one merge pass.
func (w *Window) merged() *Histogram {
	if w.dirty {
		w.scratch.Reset()
		for i := range w.epochs {
			w.scratch.Merge(&w.epochs[i])
		}
		w.dirty = false
	}
	return &w.scratch
}

// Count returns the number of samples across the live epochs.
func (w *Window) Count() int { return w.merged().Count() }

// Mean returns the mean over the live epochs, or 0 when empty.
func (w *Window) Mean() float64 { return w.merged().Mean() }

// Percentile returns the p-th percentile over the live epochs (bounded
// histogram semantics), or 0 when empty.
func (w *Window) Percentile(p float64) float64 { return w.merged().Percentile(p) }

// Collect implements telemetry.Collector with the same sample names as
// Histogram, so "prefix.p99" reads the windowed tail.
func (w *Window) Collect(emit func(telemetry.Sample)) {
	m := w.merged()
	emit(telemetry.Sample{Name: "count", Value: float64(m.Count())})
	emit(telemetry.Sample{Name: "mean", Value: m.Mean()})
	emit(telemetry.Sample{Name: "p50", Value: m.Percentile(50)})
	emit(telemetry.Sample{Name: "p95", Value: m.Percentile(95)})
	emit(telemetry.Sample{Name: "p99", Value: m.Percentile(99)})
	emit(telemetry.Sample{Name: "max", Value: m.Max()})
}
