package stats

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
)

// CASKind distinguishes the two column commands SmartDIMM observes.
type CASKind uint8

// CAS command kinds as seen by the DIMM buffer device.
const (
	RdCAS CASKind = iota // read column address strobe
	WrCAS                // write column address strobe
)

// String returns the DDR mnemonic for the command kind.
func (k CASKind) String() string {
	if k == RdCAS {
		return "rdCAS"
	}
	return "wrCAS"
}

// CASEvent is one 64-byte column access observed on the DDR channel,
// recorded with simulated time and physical address. Fig. 9 of the paper
// is a scatter of exactly these events.
type CASEvent struct {
	AtPs     int64
	Kind     CASKind
	PhysAddr uint64
	Core     int // issuing core, -1 when unknown (e.g., prefetcher)
}

// CASTrace records CAS events for later analysis or dumping. A zero
// CASTrace is ready to use; set Limit to bound memory for long runs
// (events past the limit are counted but not stored).
type CASTrace struct {
	Limit   int
	Events  []CASEvent
	dropped uint64
	reads   uint64
	writes  uint64
}

// Record appends one event to the trace.
func (t *CASTrace) Record(ev CASEvent) {
	if ev.Kind == RdCAS {
		t.reads++
	} else {
		t.writes++
	}
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		t.dropped++
		return
	}
	t.Events = append(t.Events, ev)
}

// Reads returns the total rdCAS count, including unstored events.
func (t *CASTrace) Reads() uint64 { return t.reads }

// Writes returns the total wrCAS count, including unstored events.
func (t *CASTrace) Writes() uint64 { return t.writes }

// Dropped returns how many events exceeded Limit and were not stored.
func (t *CASTrace) Dropped() uint64 { return t.dropped }

// Dump writes the trace as "time_ps kind phys_addr core" rows, suitable
// for plotting Fig. 9 with gnuplot.
func (t *CASTrace) Dump(w io.Writer) error {
	for _, ev := range t.Events {
		if _, err := fmt.Fprintf(w, "%d %s 0x%x %d\n", ev.AtPs, ev.Kind, ev.PhysAddr, ev.Core); err != nil {
			return err
		}
	}
	return nil
}

// ExportTo emits the stored CAS events onto a trace as two cumulative
// Perfetto counters (rdCAS/wrCAS on a "cas" track), so Fig. 9 data and
// request spans land in one file. The text Dump format is unchanged —
// ExportTo is an additional view over the same events.
func (t *CASTrace) ExportTo(tr *telemetry.Tracer) {
	if tr == nil || len(t.Events) == 0 {
		return
	}
	track := tr.Track("cas")
	var rd, wr float64
	for _, ev := range t.Events {
		if ev.Kind == RdCAS {
			rd++
			tr.Counter(track, "rdCAS", ev.AtPs, rd)
		} else {
			wr++
			tr.Counter(track, "wrCAS", ev.AtPs, wr)
		}
	}
}

// MonotonicRunLengths returns, per core, the lengths of maximal runs of
// strictly increasing rdCAS addresses. The paper's Fig. 9 magnification
// shows monotonic address increase within each CompCpy call; long runs
// here confirm the same behaviour in the reproduction.
func (t *CASTrace) MonotonicRunLengths() map[int][]int {
	byCore := map[int][]CASEvent{}
	for _, ev := range t.Events {
		if ev.Kind == RdCAS {
			byCore[ev.Core] = append(byCore[ev.Core], ev)
		}
	}
	out := map[int][]int{}
	for core, evs := range byCore {
		sort.Slice(evs, func(i, j int) bool { return evs[i].AtPs < evs[j].AtPs })
		run := 1
		for i := 1; i < len(evs); i++ {
			if evs[i].PhysAddr > evs[i-1].PhysAddr {
				run++
				continue
			}
			out[core] = append(out[core], run)
			run = 1
		}
		if run > 0 {
			out[core] = append(out[core], run)
		}
	}
	return out
}

// AddressSpreadBytes returns max-min physical address over stored events,
// used to validate the 32MB inter-buffer spacing visible in Fig. 9.
func (t *CASTrace) AddressSpreadBytes() uint64 {
	if len(t.Events) == 0 {
		return 0
	}
	min, max := t.Events[0].PhysAddr, t.Events[0].PhysAddr
	for _, ev := range t.Events {
		if ev.PhysAddr < min {
			min = ev.PhysAddr
		}
		if ev.PhysAddr > max {
			max = ev.PhysAddr
		}
	}
	return max - min
}
