// Package netsim models the network fabric of the testbed: serialized
// links with propagation delay and the programmable switch the paper
// uses to inject packet drops (§III, Fig. 2). Packets flow over a
// sim.Engine so link behaviour composes with the TCP model and the
// server model deterministically.
package netsim

import (
	"math/rand"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Packet is one frame on the wire. Payload semantics belong to the
// layer above (nettcp).
type Packet struct {
	Seq   int64 // first payload byte (TCP sequence)
	Len   int   // payload bytes
	Wire  int   // bytes on the wire including headers
	Flags uint8
	Ack   int64 // cumulative ack (for ACK packets)
	SACK  bool
}

// Packet flags.
const (
	FlagAck uint8 = 1 << iota
	FlagRetransmit
)

// LinkConfig describes one unidirectional link (through the drop-
// injecting switch).
type LinkConfig struct {
	Gbps           float64
	PropPs         int64
	DropProb       float64 // Bernoulli per-packet drop (the switch)
	ReorderProb    float64
	ReorderDelayPs int64 // extra delay applied to reordered packets
	Seed           int64
	// Burst, when enabled, runs a Gilbert-Elliott two-state loss chain
	// on top of (not instead of) DropProb: long good stretches broken by
	// dense loss bursts, the pattern real switches and congested paths
	// produce and the one that defeats SmartNIC resynchronization worst
	// (Fig. 2). The chain draws from its own RNG stream, so enabling it
	// never perturbs DropProb/ReorderProb draws.
	Burst fault.GEConfig
	// FlapEveryPs/FlapDownPs model deterministic link flaps: the link is
	// down (every packet dropped) during the first FlapDownPs of each
	// FlapEveryPs period, measured in engine time at the point the
	// packet clears the transmitter. Zero disables flapping.
	FlapEveryPs int64
	FlapDownPs  int64
	// FlapPhasePs shifts the flap schedule: the first down window opens
	// at FlapPhasePs instead of 0, so an outage can hit mid-stream
	// instead of always eating the opening burst. The link is up before
	// the phase point.
	FlapPhasePs int64
}

// Link is a serialized, lossy, optionally reordering link.
type Link struct {
	cfg  LinkConfig
	eng  *sim.Engine
	rng  *rand.Rand
	ge   *fault.GilbertElliott // nil unless cfg.Burst is enabled
	busy int64                 // time the transmitter frees up
	// Deliver receives packets at the far end.
	Deliver func(Packet)

	Sent      uint64
	Dropped   uint64 // all drops (flap + burst + Bernoulli)
	Reordered uint64
	Delivered uint64
	WireBytes uint64
	// Attribution of Dropped by mechanism.
	BurstDropped uint64 // Gilbert-Elliott bad-state losses
	FlapDropped  uint64 // packets sent into a link-down window
}

// NewLink builds a link on the engine.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if cfg.Gbps <= 0 {
		cfg.Gbps = 100
	}
	l := &Link{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Burst.Enabled() {
		// A distinct stream: the GE chain must not consume draws from the
		// Bernoulli/reorder RNG, or enabling bursts would change them.
		l.ge = fault.NewGilbertElliott(cfg.Burst, cfg.Seed^0x6745_2301)
	}
	return l
}

// serializationPs returns wire time for n bytes.
func (l *Link) serializationPs(n int) int64 {
	return int64(float64(n*8) / (l.cfg.Gbps * 1e9) * 1e12)
}

// Send enqueues a packet for transmission. The transmitter serializes
// packets back to back; the switch then drops or delays them.
func (l *Link) Send(p Packet) {
	l.Sent++
	l.WireBytes += uint64(p.Wire)
	start := l.eng.Now()
	if l.busy > start {
		start = l.busy
	}
	done := start + l.serializationPs(p.Wire)
	l.busy = done

	// The Bernoulli draw stays first and unconditional so enabling the
	// burst/flap mechanisms never shifts the switch's RNG stream: the
	// same packets are switch-dropped with or without them.
	if l.rng.Float64() < l.cfg.DropProb {
		l.Dropped++
		return // the switch ate it
	}
	if l.flapDown(done) {
		l.Dropped++
		l.FlapDropped++
		return // link is down: the frame goes nowhere
	}
	if l.ge != nil && l.ge.Lose() {
		l.Dropped++
		l.BurstDropped++
		return // bad-state burst loss
	}
	delay := l.cfg.PropPs
	if l.cfg.ReorderProb > 0 && l.rng.Float64() < l.cfg.ReorderProb {
		l.Reordered++
		delay += l.cfg.ReorderDelayPs
	}
	l.eng.At(done+delay, func() {
		l.Delivered++
		if l.Deliver != nil {
			l.Deliver(p)
		}
	})
}

// BusyUntil returns when the transmitter frees up (for senders that
// pace against the link).
func (l *Link) BusyUntil() int64 { return l.busy }

// flapDown reports whether the link is inside a down window at time t.
func (l *Link) flapDown(t int64) bool {
	if l.cfg.FlapEveryPs <= 0 || l.cfg.FlapDownPs <= 0 {
		return false
	}
	t -= l.cfg.FlapPhasePs
	if t < 0 {
		return false
	}
	return t%l.cfg.FlapEveryPs < l.cfg.FlapDownPs
}
