// Package netsim models the network fabric of the testbed: serialized
// links with propagation delay and the programmable switch the paper
// uses to inject packet drops (§III, Fig. 2). Packets flow over a
// sim.Engine so link behaviour composes with the TCP model and the
// server model deterministically.
package netsim

import (
	"math/rand"

	"repro/internal/sim"
)

// Packet is one frame on the wire. Payload semantics belong to the
// layer above (nettcp).
type Packet struct {
	Seq   int64 // first payload byte (TCP sequence)
	Len   int   // payload bytes
	Wire  int   // bytes on the wire including headers
	Flags uint8
	Ack   int64 // cumulative ack (for ACK packets)
	SACK  bool
}

// Packet flags.
const (
	FlagAck uint8 = 1 << iota
	FlagRetransmit
)

// LinkConfig describes one unidirectional link (through the drop-
// injecting switch).
type LinkConfig struct {
	Gbps           float64
	PropPs         int64
	DropProb       float64 // Bernoulli per-packet drop (the switch)
	ReorderProb    float64
	ReorderDelayPs int64 // extra delay applied to reordered packets
	Seed           int64
}

// Link is a serialized, lossy, optionally reordering link.
type Link struct {
	cfg  LinkConfig
	eng  *sim.Engine
	rng  *rand.Rand
	busy int64 // time the transmitter frees up
	// Deliver receives packets at the far end.
	Deliver func(Packet)

	Sent      uint64
	Dropped   uint64
	Reordered uint64
	Delivered uint64
	WireBytes uint64
}

// NewLink builds a link on the engine.
func NewLink(eng *sim.Engine, cfg LinkConfig) *Link {
	if cfg.Gbps <= 0 {
		cfg.Gbps = 100
	}
	return &Link{cfg: cfg, eng: eng, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// serializationPs returns wire time for n bytes.
func (l *Link) serializationPs(n int) int64 {
	return int64(float64(n*8) / (l.cfg.Gbps * 1e9) * 1e12)
}

// Send enqueues a packet for transmission. The transmitter serializes
// packets back to back; the switch then drops or delays them.
func (l *Link) Send(p Packet) {
	l.Sent++
	l.WireBytes += uint64(p.Wire)
	start := l.eng.Now()
	if l.busy > start {
		start = l.busy
	}
	done := start + l.serializationPs(p.Wire)
	l.busy = done

	if l.rng.Float64() < l.cfg.DropProb {
		l.Dropped++
		return // the switch ate it
	}
	delay := l.cfg.PropPs
	if l.cfg.ReorderProb > 0 && l.rng.Float64() < l.cfg.ReorderProb {
		l.Reordered++
		delay += l.cfg.ReorderDelayPs
	}
	l.eng.At(done+delay, func() {
		l.Delivered++
		if l.Deliver != nil {
			l.Deliver(p)
		}
	})
}

// BusyUntil returns when the transmitter frees up (for senders that
// pace against the link).
func (l *Link) BusyUntil() int64 { return l.busy }
