package netsim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestLinkDeliversInOrder(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, PropPs: 1000})
	var got []int64
	l.Deliver = func(p Packet) { got = append(got, p.Seq) }
	for i := int64(0); i < 10; i++ {
		l.Send(Packet{Seq: i, Len: 1000, Wire: 1040})
	}
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	if l.Delivered != 10 || l.Dropped != 0 {
		t.Fatalf("stats %d/%d", l.Delivered, l.Dropped)
	}
}

func TestLinkSerializationPacing(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 10, PropPs: 0}) // 10Gbps: 1250B = 1us
	var times []int64
	l.Deliver = func(p Packet) { times = append(times, eng.Now()) }
	l.Send(Packet{Len: 1250, Wire: 1250})
	l.Send(Packet{Len: 1250, Wire: 1250})
	eng.Run()
	if len(times) != 2 {
		t.Fatal("delivery count")
	}
	gap := times[1] - times[0]
	if gap < 900_000 || gap > 1_100_000 {
		t.Fatalf("serialization gap = %dps, want ~1us", gap)
	}
}

func TestLinkDropRate(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, DropProb: 0.5, Seed: 42})
	n := 0
	l.Deliver = func(Packet) { n++ }
	for i := 0; i < 10000; i++ {
		l.Send(Packet{Len: 100, Wire: 140})
	}
	eng.Run()
	if l.Dropped == 0 {
		t.Fatal("nothing dropped at p=0.5")
	}
	rate := float64(l.Dropped) / float64(l.Sent)
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("drop rate %.3f, want ~0.5", rate)
	}
	if uint64(n) != l.Delivered || l.Delivered+l.Dropped != l.Sent {
		t.Fatal("accounting inconsistent")
	}
}

func TestLinkReorder(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, PropPs: 100, ReorderProb: 0.3,
		ReorderDelayPs: 1_000_000, Seed: 7})
	var got []int64
	l.Deliver = func(p Packet) { got = append(got, p.Seq) }
	for i := int64(0); i < 100; i++ {
		l.Send(Packet{Seq: i, Len: 100, Wire: 140})
	}
	eng.Run()
	if l.Reordered == 0 {
		t.Fatal("no reordering at p=0.3")
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("reordered packets arrived in order")
	}
}

func TestLinkBurstLoss(t *testing.T) {
	eng := sim.NewEngine()
	ge := fault.GEConfig{PGoodBad: 0.02, PBadGood: 0.25, LossBad: 1}
	l := NewLink(eng, LinkConfig{Gbps: 100, Burst: ge, Seed: 5})
	var lost []bool
	l.Deliver = func(Packet) {}
	for i := 0; i < 20000; i++ {
		before := l.BurstDropped
		l.Send(Packet{Len: 100, Wire: 140})
		lost = append(lost, l.BurstDropped > before)
	}
	eng.Run()
	if l.BurstDropped == 0 {
		t.Fatal("no burst losses")
	}
	if l.Delivered+l.Dropped != l.Sent || l.BurstDropped > l.Dropped {
		t.Fatalf("accounting: sent=%d delivered=%d dropped=%d burst=%d",
			l.Sent, l.Delivered, l.Dropped, l.BurstDropped)
	}
	// Losses must cluster: the probability that a loss follows a loss
	// should far exceed the unconditional loss rate.
	var losses, pairs int
	for i := 1; i < len(lost); i++ {
		if lost[i-1] {
			losses++
			if lost[i] {
				pairs++
			}
		}
	}
	rate := float64(l.BurstDropped) / float64(l.Sent)
	condRate := float64(pairs) / float64(losses)
	if condRate < 4*rate {
		t.Fatalf("losses not bursty: P(loss|loss)=%.3f vs rate=%.3f", condRate, rate)
	}
}

func TestLinkBurstDoesNotPerturbBernoulliStream(t *testing.T) {
	// Enabling the GE chain must not change which packets the Bernoulli
	// switch drops — the chain draws from its own RNG stream.
	run := func(burst fault.GEConfig) []uint64 {
		eng := sim.NewEngine()
		l := NewLink(eng, LinkConfig{Gbps: 100, DropProb: 0.1, Burst: burst, Seed: 9})
		var bern []uint64
		for i := 0; i < 2000; i++ {
			burstBefore, dropBefore := l.BurstDropped, l.Dropped
			l.Send(Packet{Len: 100, Wire: 140})
			if l.BurstDropped == burstBefore && l.Dropped > dropBefore {
				bern = append(bern, uint64(i))
			}
		}
		eng.Run()
		return bern
	}
	plain := run(fault.GEConfig{})
	bursty := run(fault.GEConfig{PGoodBad: 0.05, PBadGood: 0.3, LossBad: 1})
	// The switch draw precedes the GE check and is unconditional, so the
	// exact same packets are switch-dropped in both runs.
	if len(plain) != len(bursty) {
		t.Fatalf("switch drop count changed: %d vs %d", len(plain), len(bursty))
	}
	for i := range plain {
		if plain[i] != bursty[i] {
			t.Fatalf("switch drop %d moved: packet %d vs %d", i, plain[i], bursty[i])
		}
	}
}

func TestLinkFlapWindows(t *testing.T) {
	eng := sim.NewEngine()
	// 10Gbps: a 1250B frame serializes in 1us. Down 10us of every 100us.
	l := NewLink(eng, LinkConfig{
		Gbps: 10, PropPs: 0,
		FlapEveryPs: 100 * 1_000_000, FlapDownPs: 10 * 1_000_000,
	})
	l.Deliver = func(Packet) {}
	for i := 0; i < 1000; i++ {
		l.Send(Packet{Len: 1250, Wire: 1250})
	}
	eng.Run()
	if l.FlapDropped == 0 {
		t.Fatal("no flap drops")
	}
	// Back-to-back 1us frames against a 10%-down link: ~10% land in the
	// down window (the first 10 of every 100).
	if l.FlapDropped < 80 || l.FlapDropped > 120 {
		t.Fatalf("FlapDropped = %d, want ~100", l.FlapDropped)
	}
	if l.Delivered+l.Dropped != l.Sent {
		t.Fatal("accounting inconsistent")
	}
	// Flapping is deterministic: same config, same drops.
	eng2 := sim.NewEngine()
	l2 := NewLink(eng2, LinkConfig{
		Gbps: 10, PropPs: 0,
		FlapEveryPs: 100 * 1_000_000, FlapDownPs: 10 * 1_000_000,
	})
	l2.Deliver = func(Packet) {}
	for i := 0; i < 1000; i++ {
		l2.Send(Packet{Len: 1250, Wire: 1250})
	}
	eng2.Run()
	if l2.FlapDropped != l.FlapDropped {
		t.Fatalf("flap drops not deterministic: %d vs %d", l2.FlapDropped, l.FlapDropped)
	}
}

func TestLinkDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.NewEngine()
		l := NewLink(eng, LinkConfig{Gbps: 100, DropProb: 0.1, Seed: 3})
		l.Deliver = func(Packet) {}
		for i := 0; i < 1000; i++ {
			l.Send(Packet{Len: 100, Wire: 140})
		}
		eng.Run()
		return l.Dropped, l.Delivered
	}
	d1, del1 := run()
	d2, del2 := run()
	if d1 != d2 || del1 != del2 {
		t.Fatal("same seed produced different outcomes")
	}
}
