package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestLinkDeliversInOrder(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, PropPs: 1000})
	var got []int64
	l.Deliver = func(p Packet) { got = append(got, p.Seq) }
	for i := int64(0); i < 10; i++ {
		l.Send(Packet{Seq: i, Len: 1000, Wire: 1040})
	}
	eng.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	if l.Delivered != 10 || l.Dropped != 0 {
		t.Fatalf("stats %d/%d", l.Delivered, l.Dropped)
	}
}

func TestLinkSerializationPacing(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 10, PropPs: 0}) // 10Gbps: 1250B = 1us
	var times []int64
	l.Deliver = func(p Packet) { times = append(times, eng.Now()) }
	l.Send(Packet{Len: 1250, Wire: 1250})
	l.Send(Packet{Len: 1250, Wire: 1250})
	eng.Run()
	if len(times) != 2 {
		t.Fatal("delivery count")
	}
	gap := times[1] - times[0]
	if gap < 900_000 || gap > 1_100_000 {
		t.Fatalf("serialization gap = %dps, want ~1us", gap)
	}
}

func TestLinkDropRate(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, DropProb: 0.5, Seed: 42})
	n := 0
	l.Deliver = func(Packet) { n++ }
	for i := 0; i < 10000; i++ {
		l.Send(Packet{Len: 100, Wire: 140})
	}
	eng.Run()
	if l.Dropped == 0 {
		t.Fatal("nothing dropped at p=0.5")
	}
	rate := float64(l.Dropped) / float64(l.Sent)
	if rate < 0.45 || rate > 0.55 {
		t.Fatalf("drop rate %.3f, want ~0.5", rate)
	}
	if uint64(n) != l.Delivered || l.Delivered+l.Dropped != l.Sent {
		t.Fatal("accounting inconsistent")
	}
}

func TestLinkReorder(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, LinkConfig{Gbps: 100, PropPs: 100, ReorderProb: 0.3,
		ReorderDelayPs: 1_000_000, Seed: 7})
	var got []int64
	l.Deliver = func(p Packet) { got = append(got, p.Seq) }
	for i := int64(0); i < 100; i++ {
		l.Send(Packet{Seq: i, Len: 100, Wire: 140})
	}
	eng.Run()
	if l.Reordered == 0 {
		t.Fatal("no reordering at p=0.3")
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("reordered packets arrived in order")
	}
}

func TestLinkDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng := sim.NewEngine()
		l := NewLink(eng, LinkConfig{Gbps: 100, DropProb: 0.1, Seed: 3})
		l.Deliver = func(Packet) {}
		for i := 0; i < 1000; i++ {
			l.Send(Packet{Len: 100, Wire: 140})
		}
		eng.Run()
		return l.Dropped, l.Delivered
	}
	d1, del1 := run()
	d2, del2 := run()
	if d1 != d2 || del1 != del2 {
		t.Fatal("same seed produced different outcomes")
	}
}
