package server

import (
	"repro/internal/sim"
	"repro/internal/wrkgen"
)

// RunClosedLoop drives the server with a wrk-style closed-loop generator
// for warmup + measurement windows and returns the measured metrics.
// The caller supplies the assembled system inside cfg.Sys.
func RunClosedLoop(cfg Config, warmupPs, measurePs int64) (Metrics, error) {
	eng := sim.NewEngine()
	srv, err := New(eng, cfg)
	if err != nil {
		return Metrics{}, err
	}
	gen := wrkgen.New(eng, srv, wrkgen.Config{
		Connections: cfg.Connections,
		ThinkPs:     int64(cfg.Sys.Params.RTTUs * float64(sim.Us)),
	})
	gen.Start()
	eng.RunUntil(warmupPs)
	srv.BeginMeasurement()
	gen.BeginMeasurement()
	eng.RunUntil(warmupPs + measurePs)
	m := srv.Collect()
	return m, nil
}
