package server

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/offload"
	"repro/internal/sim"
)

func newSys(t testing.TB, llcBytes int, withDIMM bool) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: llcBytes, LLCWays: 8,
		WithSmartDIMM: withDIMM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

const (
	warm    = 2 * sim.Ms
	measure = 10 * sim.Ms
)

func TestPlainHTTPServes(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	m, err := RunClosedLoop(Config{
		Sys: sys, Mode: PlainHTTP, Workers: 4, MsgSize: 4096,
		Connections: 32, FileKind: corpus.HTML, Seed: 1,
	}, warm, measure)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if m.RPS <= 0 || m.CPUUtil <= 0 || m.CPUUtil > 1.01 {
		t.Fatalf("metrics implausible: %+v", m)
	}
	if m.TXBytes != m.Requests*4096 {
		t.Fatalf("TX accounting: %d for %d requests", m.TXBytes, m.Requests)
	}
}

func TestHTTPSOnCPUServes(t *testing.T) {
	sys := newSys(t, 512<<10, false)
	m, err := RunClosedLoop(Config{
		Sys: sys, Backend: &offload.CPU{Sys: sys, Functional: true},
		Mode: HTTPSMode, Workers: 4, MsgSize: 4096,
		Connections: 32, FileKind: corpus.HTML, Seed: 1,
	}, warm, measure)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no HTTPS requests completed")
	}
	// TLS framing: 4096 payload + header + tag per record.
	per := uint64(4096 + 5 + 16)
	if m.TXBytes != m.Requests*per {
		t.Fatalf("TX bytes %d, want %d per request", m.TXBytes/m.Requests, per)
	}
}

func TestHTTPSMemBWExceedsHTTP(t *testing.T) {
	// The Fig. 3 mechanism: at high connection counts HTTPS moves far
	// more DRAM bytes per request than HTTP.
	run := func(mode Mode) Metrics {
		sys := newSys(t, 256<<10, false)
		cfg := Config{
			Sys: sys, Mode: mode, Workers: 4, MsgSize: 4096,
			Connections: 64, FileKind: corpus.HTML, Seed: 1,
		}
		if mode != PlainHTTP {
			cfg.Backend = &offload.CPU{Sys: sys, Functional: false}
		}
		m, err := RunClosedLoop(cfg, warm, measure)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	http := run(PlainHTTP)
	https := run(HTTPSMode)
	perReqHTTP := float64(http.MemBytes) / float64(http.Requests)
	perReqHTTPS := float64(https.MemBytes) / float64(https.Requests)
	if perReqHTTPS <= perReqHTTP*1.5 {
		t.Fatalf("HTTPS/HTTP per-request DRAM = %.0f/%.0f = %.2fx, want > 1.5x",
			perReqHTTPS, perReqHTTP, perReqHTTPS/perReqHTTP)
	}
}

func TestSmartDIMMBeatsCPUUnderContention(t *testing.T) {
	// The Fig. 11 headline at message granularity: with a contended LLC,
	// SmartDIMM yields more RPS and less memory bandwidth than the CPU
	// configuration.
	runWith := func(withDIMM bool) Metrics {
		sys := newSys(t, 256<<10, withDIMM)
		var b offload.Backend
		if withDIMM {
			b = &offload.SmartDIMM{Sys: sys}
		} else {
			b = &offload.CPU{Sys: sys, Functional: false}
		}
		m, err := RunClosedLoop(Config{
			Sys: sys, Backend: b, Mode: HTTPSMode, Workers: 4,
			MsgSize: 4096, Connections: 64, FileKind: corpus.Text, Seed: 1,
		}, warm, measure)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cpu := runWith(false)
	dimm := runWith(true)
	if dimm.RPS <= cpu.RPS {
		t.Fatalf("SmartDIMM RPS %.0f <= CPU %.0f", dimm.RPS, cpu.RPS)
	}
	perReqCPU := float64(cpu.MemBytes) / float64(cpu.Requests)
	perReqDIMM := float64(dimm.MemBytes) / float64(dimm.Requests)
	if perReqDIMM >= perReqCPU {
		t.Fatalf("SmartDIMM per-request DRAM %.0f >= CPU %.0f", perReqDIMM, perReqCPU)
	}
}

func TestCompressionMode(t *testing.T) {
	sys := newSys(t, 512<<10, false)
	m, err := RunClosedLoop(Config{
		Sys: sys, Backend: &offload.CPU{Sys: sys, Functional: true},
		Mode: CompressedHTTP, Workers: 4, MsgSize: 4096,
		Connections: 16, FileKind: corpus.HTML, Seed: 1,
	}, warm, measure)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no compressed requests")
	}
	// Compressible HTML: wire bytes well under body bytes.
	if m.TXBytes >= m.Requests*4096 {
		t.Fatalf("no wire savings: %d TX for %d requests", m.TXBytes, m.Requests)
	}
}

func TestSmartNICRejectsCompression(t *testing.T) {
	sys := newSys(t, 512<<10, false)
	_, err := RunClosedLoop(Config{
		Sys: sys, Backend: &offload.SmartNIC{Sys: sys},
		Mode: CompressedHTTP, Workers: 2, MsgSize: 4096,
		Connections: 4, FileKind: corpus.HTML, Seed: 1,
	}, warm, measure)
	if err == nil {
		t.Fatal("SmartNIC compression config accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	sys := newSys(t, 512<<10, false)
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Sys: sys, Mode: PlainHTTP, MsgSize: 4096}); err == nil {
		t.Fatal("zero connections accepted")
	}
	if _, err := New(eng, Config{Sys: sys, Mode: PlainHTTP, Connections: 4}); err == nil {
		t.Fatal("zero message size accepted")
	}
	if _, err := New(eng, Config{Sys: sys, Mode: HTTPSMode, Connections: 4, MsgSize: 4096}); err == nil {
		t.Fatal("HTTPS without backend accepted")
	}
}

func TestModeString(t *testing.T) {
	if PlainHTTP.String() != "http" || HTTPSMode.String() != "https" || CompressedHTTP.String() != "http+deflate" {
		t.Fatal("mode names")
	}
}

func TestMoreWorkersMoreThroughput(t *testing.T) {
	run := func(workers int) Metrics {
		sys := newSys(t, 512<<10, false)
		m, err := RunClosedLoop(Config{
			Sys: sys, Backend: &offload.CPU{Sys: sys, Functional: false},
			Mode: HTTPSMode, Workers: workers, MsgSize: 16384,
			Connections: 64, FileKind: corpus.Text, Seed: 1,
		}, warm, measure)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	one := run(1)
	eight := run(8)
	if eight.RPS <= one.RPS*2 {
		t.Fatalf("8 workers (%.0f RPS) not scaling over 1 (%.0f RPS)", eight.RPS, one.RPS)
	}
}

func TestAdaptiveBackendInServer(t *testing.T) {
	// The adaptive backend must drive the full server model end to end.
	sys := newSys(t, 256<<10, true)
	ad := &offload.Adaptive{
		Sys:        sys,
		CPUBackend: &offload.CPU{Sys: sys, Functional: false},
		DIMM:       &offload.SmartDIMM{Sys: sys},
	}
	m, err := RunClosedLoop(Config{
		Sys: sys, Backend: ad, Mode: HTTPSMode, Workers: 4,
		MsgSize: 4096, Connections: 64, FileKind: corpus.Text, Seed: 3,
	}, 2*sim.Ms, 8*sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no requests served through adaptive backend")
	}
	// Under this contention the policy should be offloading heavily.
	if ad.OffloadedN == 0 {
		t.Fatal("adaptive never offloaded in a contended server run")
	}
}
