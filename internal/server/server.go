// Package server models the Nginx web server of the paper's evaluation
// (§VI): a fixed pool of worker threads serving persistent connections,
// reading response bodies from a page-cache region, running the ULP
// through a pluggable accelerator placement (internal/offload), and
// transmitting over a shared NIC link. All memory traffic executes
// against the functional memory system, so requests-per-second, CPU
// utilization, and memory bandwidth (Fig. 3, 11, 12, Table I) are
// measured outcomes.
package server

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Mode selects what the server does to response bodies.
type Mode int

// Serving modes.
const (
	PlainHTTP Mode = iota // sendfile-style, no ULP
	HTTPSMode             // TLS via the configured backend
	CompressedHTTP
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case PlainHTTP:
		return "http"
	case HTTPSMode:
		return "https"
	default:
		return "http+deflate"
	}
}

// ulp maps a mode to its offload ULP.
func (m Mode) ulp() offload.ULP {
	if m == HTTPSMode {
		return offload.TLS
	}
	return offload.Compression
}

// Config assembles one server instance.
type Config struct {
	Sys     *sim.System
	Backend offload.Backend // nil is allowed for PlainHTTP
	Mode    Mode
	Workers int // paper: 10 threads pinned to 10 cores
	MsgSize int // response body size (the paper's "message size")
	// Connections is used to size the page-cache working set: each
	// connection serves a distinct file region, which is what creates
	// LLC capacity pressure as connection counts grow (Fig. 3).
	Connections int
	FileKind    corpus.Kind
	Seed        int64
	// Source, when non-nil, shapes each request (payload size, GET vs
	// SET direction, embedding-gather width) — the workload suite's
	// hook. Nil serves the legacy fixed-MsgSize GET stream. MsgSize must
	// cover the largest Payload the source returns: it sizes the
	// connection buffers and the page-cache working set.
	Source WorkloadSource
	// LatWindow, when non-nil, receives every request's end-to-end
	// latency in picoseconds, warmup included — the rolling tail signal
	// the autoscaler reads from the telemetry registry.
	LatWindow *stats.Window
}

// RequestSpec describes one request's work, produced by a
// WorkloadSource at submit time.
type RequestSpec struct {
	// Kind labels the request for accounting ("get", "set", "gather");
	// it does not affect timing.
	Kind string
	// Payload is the value size in bytes (response body for GETs,
	// request body for SETs); clamped to (0, Config.MsgSize].
	Payload int
	// Store marks a SET: the payload travels client->server (staged in
	// over RDMA or the DDIO bounce), and the response is a short Ack.
	Store bool
	// Ack is the SET response size; 0 selects 64 bytes.
	Ack int
	// GatherBytes, when > 0, reads that many embedding-table bytes
	// ahead of the ULP stage (the RecSys gather), attributed to the
	// "gather" pipeline stage.
	GatherBytes int
}

// WorkloadSource produces the next request's shape for a connection.
// Calls happen in submission order under the single-threaded engine, so
// a deterministic source yields a deterministic request stream; sources
// should keep any randomness in per-connection state so the stream
// survives reordering of unrelated connections.
type WorkloadSource interface {
	NextRequest(connID int) RequestSpec
}

// connState is the per-connection server state.
type connState struct {
	id       int
	oconn    *offload.Conn // nil in PlainHTTP mode
	filePage uint64        // page-cache address of this connection's file
	payload  []byte        // the file content (for staging)
}

// Pipeline stage indices for Metrics.StagePs. StageWire is the shared
// NIC link's serialization window, split out from the TX stage's CPU
// cost so the breakdown separates host work from wire occupancy.
// StageBounce is the host-DRAM bounce: a page-cache miss re-staging the
// payload through storage + DDIO (LLC DMA ways) — the cost the peer-DMA
// data path eliminates. StageRDMA is its replacement on DataPathPeer:
// the NIC's one-sided WRITE depositing the record straight into the
// connection's registered SmartDIMM buffer. The two are mutually
// exclusive per run, which is what makes "bounce absent under peer-DMA"
// checkable straight off the critical-path breakdown.
// StageGather is the embedding-gather pass of the RecSys workload: the
// request reads its embedding rows out of the table slab before the ULP
// ships the pooled result — near-memory on inline (SmartDIMM)
// placements, through the CPU cache hierarchy otherwise.
const (
	StageParse = iota
	StageCopy
	StageULP
	StageTX
	StageWire
	StageBounce
	StageRDMA
	StageGather
	NumStages
)

// StageNames labels Metrics.StagePs entries, indexed by Stage*.
var StageNames = [NumStages]string{"parse", "copy", "ulp", "tx", "wire", "bounce", "rdma", "gather"}

// Metrics are the measured outcomes of a run.
type Metrics struct {
	Requests     uint64
	ElapsedPs    int64
	RPS          float64
	CPUBusyPs    int64
	CPUUtil      float64 // busy / (workers * elapsed)
	MemBytes     uint64
	MemBWGBps    float64
	TXBytes      uint64
	MeanLatPs    int64
	DeviceBusyPs int64
	// Latency is the per-request end-to-end latency record (submit to
	// last wire byte, in picoseconds) over the measured window. It runs
	// in the bounded log2-bucketed mode so long windows at fleet request
	// rates keep fixed memory; Min/Max/Mean stay exact.
	Latency stats.Histogram
	// StagePs sums each pipeline stage's duration over measured
	// requests (worker occupancy for parse/copy/ulp/tx, link occupancy
	// for wire) — the per-stage latency breakdown of -fig breakdown.
	StagePs [NumStages]int64
	// Errors counts requests abandoned on processing errors since the
	// server started (not windowed by BeginMeasurement: a fault during
	// warmup still matters to a robustness run).
	Errors uint64
}

// Collect implements telemetry.Collector.
func (m Metrics) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "requests", Value: float64(m.Requests)})
	emit(telemetry.Sample{Name: "elapsed_ps", Value: float64(m.ElapsedPs)})
	emit(telemetry.Sample{Name: "rps", Value: m.RPS})
	emit(telemetry.Sample{Name: "cpu_busy_ps", Value: float64(m.CPUBusyPs)})
	emit(telemetry.Sample{Name: "cpu_util", Value: m.CPUUtil})
	emit(telemetry.Sample{Name: "mem_bytes", Value: float64(m.MemBytes)})
	emit(telemetry.Sample{Name: "mem_bw_gbps", Value: m.MemBWGBps})
	emit(telemetry.Sample{Name: "tx_bytes", Value: float64(m.TXBytes)})
	emit(telemetry.Sample{Name: "mean_lat_ps", Value: float64(m.MeanLatPs)})
	emit(telemetry.Sample{Name: "p50_lat_ps", Value: m.Latency.Percentile(50)})
	emit(telemetry.Sample{Name: "p99_lat_ps", Value: m.Latency.Percentile(99)})
	emit(telemetry.Sample{Name: "device_busy_ps", Value: float64(m.DeviceBusyPs)})
	for i, ps := range m.StagePs {
		emit(telemetry.Sample{Name: "stage_ps." + StageNames[i], Value: float64(ps)})
	}
	emit(telemetry.Sample{Name: "errors", Value: float64(m.Errors)})
}

// Server is the Nginx model; it implements wrkgen.Target.
type Server struct {
	cfg   Config
	eng   *sim.Engine
	conns []*connState
	rng   *rand.Rand

	// freeWorkers is a LIFO stack of idle worker ids. Scheduling is
	// governed purely by its length (identical to the old idleWorkers
	// counter); the ids only attribute stages to per-worker trace
	// tracks.
	freeWorkers []int
	queue       []pendingReq

	// link transmitter occupancy (shared NIC)
	linkBusyPs int64

	// ing is the peer-DMA ingress (DataPathPeer only): stage-0 restages
	// and construction-time staging go through the RDMA NIC instead of
	// storage DMA through DDIO. Nil on the host-mediated path.
	ing offload.Ingestor
	// bounceBytes accumulates host-DRAM bounce traffic (DDIO restages)
	// for the LLC-pressure counter on the nic track.
	bounceBytes uint64

	// win mirrors cfg.LatWindow: the rolling latency record the
	// autoscaler polls (fed outside the measurement gate on purpose).
	win *stats.Window

	// tracing (all nil/zero when cfg.Sys.Tracer is nil)
	tr           *telemetry.Tracer
	workerTracks []telemetry.TrackID
	nicTrack     telemetry.TrackID
	reqTrack     telemetry.TrackID
	reqSeq       uint64

	// measurement
	measuring    bool
	measureFrom  int64
	memBase      uint64
	cpuBusyPs    int64
	deviceBusyPs int64
	requests     uint64
	txBytes      uint64
	latSumPs     int64
	latency      stats.Histogram // bounded; per-request end-to-end ps
	stagePs      [NumStages]int64
	errors       uint64
	lastErr      error
}

type pendingReq struct {
	connID int
	done   func()
	at     int64
	spec   RequestSpec
	seq    uint64  // async-span id (only assigned when tracing)
	ctx    *reqCtx // non-nil when re-entering a staged request
}

// New builds the server and its connections (allocating buffers and the
// page-cache working set).
func New(eng *sim.Engine, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 10
	}
	if cfg.Connections <= 0 {
		return nil, fmt.Errorf("server: need connections")
	}
	if cfg.MsgSize <= 0 {
		return nil, fmt.Errorf("server: need message size")
	}
	s := &Server{
		cfg: cfg, eng: eng,
		rng: rand.New(rand.NewSource(cfg.Seed + 99)),
		win: cfg.LatWindow,
	}
	s.latency.SetBounded()
	// Stacked so worker 0 pops first: the first dispatched stage lands
	// on worker 0's track.
	s.freeWorkers = make([]int, cfg.Workers)
	for i := range s.freeWorkers {
		s.freeWorkers[i] = cfg.Workers - 1 - i
	}
	if tr := cfg.Sys.Tracer; tr != nil {
		s.tr = tr
		for w := 0; w < cfg.Workers; w++ {
			s.workerTracks = append(s.workerTracks, tr.Track(fmt.Sprintf("worker%d", w)))
		}
		s.nicTrack = tr.Track("nic")
		s.reqTrack = tr.Track("requests")
	}
	inline := cfg.Mode != PlainHTTP && cfg.Backend != nil && cfg.Backend.InlineSource()
	if cfg.Sys.DataPath == sim.DataPathPeer {
		ing, ok := cfg.Backend.(offload.Ingestor)
		if !ok || !inline {
			return nil, fmt.Errorf("server: peer data path needs an RDMA-backed inline backend (have %T)", cfg.Backend)
		}
		s.ing = ing
	}
	for id := 0; id < cfg.Connections; id++ {
		c := &connState{id: id}
		c.payload = corpus.Generate(cfg.FileKind, cfg.MsgSize, cfg.Seed+int64(id))
		if cfg.Mode != PlainHTTP {
			if cfg.Backend == nil {
				return nil, fmt.Errorf("server: mode %v needs a backend", cfg.Mode)
			}
			if !cfg.Backend.Supports(cfg.Mode.ulp()) {
				return nil, fmt.Errorf("server: %s cannot offload %v", cfg.Backend.Name(), cfg.Mode.ulp())
			}
			oc, err := cfg.Backend.NewConn(cfg.Mode.ulp(), id, cfg.MsgSize)
			if err != nil {
				return nil, fmt.Errorf("server: conn %d: %w", id, err)
			}
			c.oconn = oc
		}
		if inline {
			// The page cache lives in conn.Src on the SmartDIMM itself
			// (Benefit B2); CompCpy consumes it without a staging copy.
			c.filePage = c.oconn.Src
			if s.ing != nil {
				// Peer path: the working set arrived over RDMA before
				// the measured epoch — registered-MR bounds checks and
				// functional writes, no wire occupancy.
				if err := s.ing.Preload(c.oconn, c.payload); err != nil {
					return nil, err
				}
			} else if err := offload.StagePayloadDMA(cfg.Sys, c.oconn, c.payload); err != nil {
				return nil, err
			}
		} else {
			addr, err := cfg.Sys.AllocPlain(cfg.MsgSize)
			if err != nil {
				return nil, fmt.Errorf("server: page cache: %w", err)
			}
			c.filePage = addr
			// Populate the page cache via storage DMA (DDIO).
			if err := cfg.Sys.DMAIn(addr, c.payload); err != nil {
				return nil, err
			}
		}
		s.conns = append(s.conns, c)
	}
	return s, nil
}

// Submit implements wrkgen.Target.
func (s *Server) Submit(connID int, done func()) {
	spec := RequestSpec{Payload: s.cfg.MsgSize}
	if s.cfg.Source != nil {
		spec = s.cfg.Source.NextRequest(connID)
		if spec.Payload <= 0 || spec.Payload > s.cfg.MsgSize {
			spec.Payload = s.cfg.MsgSize
		}
		if s.cfg.Mode == PlainHTTP {
			// Plain HTTP has no record framing to ingest a SET through.
			spec.Store = false
		}
	}
	req := pendingReq{connID: connID, done: done, at: s.eng.Now(), spec: spec}
	if s.tr != nil {
		s.reqSeq++
		req.seq = s.reqSeq
		s.tr.AsyncBegin(s.reqTrack, "req", req.seq, req.at)
	}
	s.queue = append(s.queue, req)
	s.dispatch()
}

// dispatch hands queued requests to idle workers.
func (s *Server) dispatch() {
	for len(s.freeWorkers) > 0 && len(s.queue) > 0 {
		req := s.queue[0]
		s.queue = s.queue[1:]
		w := s.freeWorkers[len(s.freeWorkers)-1]
		s.freeWorkers = s.freeWorkers[:len(s.freeWorkers)-1]
		if req.ctx != nil {
			req.ctx.worker = w
			s.runStage(req.ctx)
		} else {
			s.serve(req, w)
		}
	}
}

// reqCtx carries a request through its pipeline stages. Stages execute
// as separate work items so different connections' stages interleave on
// the workers — modelling the asynchronicity between the storage stack,
// the ULP layer, and TCP processing that creates the ping-pong cache
// behaviour of Fig. 1/Observation 3 (a request's data is evicted by
// other connections' work between its own passes).
type reqCtx struct {
	req      pendingReq
	conn     *connState
	stage    int
	worker   int   // worker currently holding this request's stage
	cpu      int64 // accumulated CPU time
	device   int64
	txBytes  int
	spans    []offload.Span
	flushDst bool
}

// serve runs the request's current stage on worker w.
func (s *Server) serve(req pendingReq, w int) {
	s.runStage(&reqCtx{req: req, conn: s.conns[req.connID%len(s.conns)], worker: w})
}

// requeue releases the worker after stageCPU+stageDev and re-enters the
// request for its next stage (or completes it). ran names the stage
// that just executed (PlainHTTP bumps rc.stage before releasing).
func (s *Server) requeue(rc *reqCtx, ran int, stageCPU, stageDev int64, final bool) {
	s.requeueSplit(rc, ran, stageCPU, ran, stageDev, final)
}

// requeueSplit is requeue with separate attribution for the CPU and
// device portions of a stage — how the parse stage's page-cache-miss
// device time lands on the "bounce" (host DDIO) or "rdma" (peer
// deposit) stage while its CPU time stays on "parse". Timing is
// identical to the single-stage form; only the breakdown accounting and
// span names differ.
func (s *Server) requeueSplit(rc *reqCtx, cpuStage int, stageCPU int64, devStage int, stageDev int64, final bool) {
	if cpuStage == devStage {
		s.requeueParts(rc, []stagePart{{stage: cpuStage, cpu: stageCPU, dev: stageDev}}, final)
		return
	}
	s.requeueParts(rc, []stagePart{
		{stage: cpuStage, cpu: stageCPU},
		{stage: devStage, dev: stageDev},
	}, final)
}

// stagePart is one attributed slice of a worker occupancy window.
type stagePart struct {
	stage    int
	cpu, dev int64
}

// requeueParts generalizes requeueSplit to any number of sequential
// attribution slices on one worker hold — the embedding workload's
// gather+ulp window is two parts back to back. Total occupancy is the
// sum; each part books its duration to its own stage and emits its own
// span, consecutively from now.
func (s *Server) requeueParts(rc *reqCtx, parts []stagePart, final bool) {
	now := s.eng.Now()
	var dur int64
	for _, pt := range parts {
		rc.cpu += pt.cpu
		rc.device += pt.dev
		d := pt.cpu + pt.dev
		if s.measuring {
			s.stagePs[pt.stage] += d
		}
		if s.tr != nil && d > 0 {
			s.tr.Span(s.workerTracks[rc.worker], StageNames[pt.stage], now+dur, d)
		}
		dur += d
	}
	s.eng.At(now+dur, func() {
		s.freeWorkers = append(s.freeWorkers, rc.worker)
		if !final {
			rc.stage++
			s.queueCtx(rc)
		}
		s.dispatch()
	})
}

// queueCtx re-enters a staged request at the back of the work queue.
func (s *Server) queueCtx(rc *reqCtx) {
	s.queue = append(s.queue, pendingReq{connID: rc.req.connID, done: rc.req.done, at: rc.req.at, seq: rc.req.seq, ctx: rc})
}

// failReq abandons a request after a processing error: the worker is
// released, the request completes with no response bytes, and the error
// is accounted — the model's analogue of the server answering 5xx and
// moving on instead of crashing the process. Panics remain only for
// programmer errors (impossible states), not for memory-system or
// backend failures.
func (s *Server) failReq(rc *reqCtx, err error) {
	s.errors++
	s.lastErr = fmt.Errorf("server: request on conn %d: %w", rc.conn.id, err)
	now := s.eng.Now()
	if s.tr != nil {
		s.tr.Instant(s.workerTracks[rc.worker], "error", now)
		s.tr.AsyncEnd(s.reqTrack, "req", rc.req.seq, now)
	}
	s.eng.At(now, func() {
		s.freeWorkers = append(s.freeWorkers, rc.worker)
		s.dispatch()
	})
	s.eng.At(now, rc.req.done)
}

// LastError returns the most recent request-processing error, if any.
func (s *Server) LastError() error { return s.lastErr }

// runStage executes one pipeline stage synchronously against the memory
// system and schedules the next.
func (s *Server) runStage(rc *reqCtx) {
	c := rc.conn
	p := s.cfg.Sys.Params
	coreID := workerCore(rc.req.connID)
	inline := s.cfg.Mode != PlainHTTP && s.cfg.Backend.InlineSource()

	spec := rc.req.spec
	payload := c.payload
	if spec.Payload < len(payload) {
		payload = payload[:spec.Payload]
	}

	switch rc.stage {
	case 0: // parse + payload fetch (file for GETs, request body for SETs)
		cpu := p.HTTPParseNs * sim.Ns
		var device int64
		devStage := StageParse
		if spec.Store {
			// SET ingest: the value arrives with the request and is
			// staged into the connection's buffers — over one-sided RDMA
			// on the peer path, through the DDIO bounce on the host path
			// (priced as the NIC's RX DMA window, no storage read).
			if s.ing != nil {
				d, err := s.ing.Ingest(c.oconn, payload)
				if err != nil {
					s.failReq(rc, err)
					return
				}
				device = d
				devStage = StageRDMA
			} else {
				if inline {
					if err := offload.StagePayloadDMA(s.cfg.Sys, c.oconn, payload); err != nil {
						s.failReq(rc, err)
						return
					}
				} else if err := s.cfg.Sys.DMAIn(c.filePage, payload); err != nil {
					s.failReq(rc, err)
					return
				}
				device = p.LinkSerializationPs(len(payload))
				devStage = StageBounce
				if s.tr != nil {
					s.bounceBytes += uint64(len(payload))
					s.tr.Counter(s.nicTrack, "ddio_bounce_bytes", s.eng.Now(), float64(s.bounceBytes))
				}
			}
		} else if s.rng.Float64() >= p.PageCacheHitRate {
			if s.ing != nil {
				// Peer-DMA refill: the record is re-fetched from the
				// remote origin as one-sided RDMA WRITEs landing in the
				// connection's registered MR — no storage read, no
				// host-DRAM bounce, no DDIO occupancy. The NIC charges
				// doorbells, wire serialization and the owning rank's
				// write timing.
				d, err := s.ing.Ingest(c.oconn, payload)
				if err != nil {
					s.failReq(rc, err)
					return
				}
				device = d
				devStage = StageRDMA
			} else {
				// Host-mediated refill: storage read plus the DDIO
				// bounce through host DRAM / the LLC's DMA ways.
				device = int64(p.StorageReadUsPer4KB * float64(sim.Us) * float64((spec.Payload+4095)/4096))
				if inline {
					if err := offload.StagePayloadDMA(s.cfg.Sys, c.oconn, payload); err != nil {
						s.failReq(rc, err)
						return
					}
				} else if err := s.cfg.Sys.DMAIn(c.filePage, payload); err != nil {
					s.failReq(rc, err)
					return
				}
				devStage = StageBounce
				if s.tr != nil {
					s.bounceBytes += uint64(len(payload))
					s.tr.Counter(s.nicTrack, "ddio_bounce_bytes", s.eng.Now(), float64(s.bounceBytes))
				}
			}
		}
		if s.cfg.Mode == PlainHTTP {
			rc.stage++ // skip the copy and ULP stages
		}
		s.requeueSplit(rc, StageParse, cpu, devStage, device, false)

	case 1: // app copy out of the page cache (skipped for inline)
		var cpu int64
		if !inline {
			_, rdLat, err := s.cfg.Sys.ReadBytes(coreID, c.filePage, spec.Payload)
			if err != nil {
				s.failReq(rc, err)
				return
			}
			stageLat, err := offload.StagePayloadCPU(s.cfg.Sys, coreID, c.oconn, payload)
			if err != nil {
				s.failReq(rc, err)
				return
			}
			cpu = rdLat + stageLat
		}
		s.requeue(rc, StageCopy, cpu, 0, false)

	case 2: // (embedding gather +) ULP processing
		if s.cfg.Mode == PlainHTTP {
			s.transmit(rc, c.filePage, spec.Payload,
				[]offload.Span{{Off: 0, Len: spec.Payload}})
			return
		}
		var parts []stagePart
		if spec.GatherBytes > 0 {
			gcpu, gdev, err := s.gather(rc, spec.GatherBytes, coreID, inline)
			if err != nil {
				s.failReq(rc, err)
				return
			}
			parts = append(parts, stagePart{stage: StageGather, cpu: gcpu, dev: gdev})
		}
		res, err := s.cfg.Backend.Process(s.cfg.Mode.ulp(), coreID, c.oconn, spec.Payload)
		if err != nil {
			s.failReq(rc, err)
			return
		}
		rc.spans = res.DstSpans
		rc.txBytes = res.TXBytes
		rc.flushDst = res.DstFlushNeeded
		if spec.Store {
			// SETs answer with a short ack; the processed value stays
			// resident (the ULP cost above is the record decrypt/verify).
			ack := spec.Ack
			if ack <= 0 {
				ack = 64
			}
			if ack > spec.Payload {
				ack = spec.Payload
			}
			rc.txBytes = ack
			rc.spans = []offload.Span{{Off: 0, Len: ack}}
			rc.flushDst = false
		}
		parts = append(parts, stagePart{stage: StageULP, cpu: res.CPUPs, dev: res.DevicePs})
		s.requeueParts(rc, parts, false)

	case 3: // transmission
		s.transmit(rc, c.oconn.Dst, rc.txBytes, rc.spans)
	}
}

// gather reads n bytes of embedding rows out of the connection's table
// slab ahead of the ULP stage. On inline placements the home rank reads
// its own DRAM (device time, no host cache traffic) — the AxDIMM
// near-memory gather; otherwise the CPU pulls the rows through the
// cache hierarchy (CPU time). Gathers wider than the staged region wrap
// around it chunk by chunk.
func (s *Server) gather(rc *reqCtx, n, coreID int, inline bool) (cpu, dev int64, err error) {
	c := rc.conn
	chunk := s.cfg.MsgSize
	for n > 0 {
		step := n
		if step > chunk {
			step = chunk
		}
		if inline {
			_, lat, e := s.cfg.Sys.DMAOut(c.oconn.Src, step)
			if e != nil {
				return 0, 0, e
			}
			dev += lat
		} else {
			_, lat, e := s.cfg.Sys.ReadBytes(coreID, c.filePage, step)
			if e != nil {
				return 0, 0, e
			}
			cpu += lat
		}
		n -= step
	}
	return cpu, dev, nil
}

// transmit performs the TX stage: NIC DMA, per-packet kernel costs, and
// shared-link serialization; completes the request.
func (s *Server) transmit(rc *reqCtx, base uint64, txBytes int, spans []offload.Span) {
	p := s.cfg.Sys.Params
	var cpuFlush int64
	if rc.flushDst {
		// USE step of Algorithm 2: write back the stale cached copies so
		// TX DMA observes the DSA output. Under contention most lines
		// already left the LLC (self-recycled), making this flush cheap
		// (the §IV-A residency effect).
		for _, sp := range spans {
			l, err := s.cfg.Sys.Hier.Flush(base+uint64(sp.Off), sp.Len)
			if err != nil {
				s.failReq(rc, fmt.Errorf("dst flush: %w", err))
				return
			}
			cpuFlush += l
		}
	}
	var dmaLat int64
	for _, sp := range spans {
		_, l, err := s.cfg.Sys.DMAOut(base+uint64(sp.Off), sp.Len)
		if err != nil {
			s.failReq(rc, fmt.Errorf("TX DMA: %w", err))
			return
		}
		dmaLat += l
	}
	segs := p.SegmentsFor(txBytes)
	cpu := cpuFlush + p.SyscallNs*sim.Ns + int64(segs)*p.PerPacketCPUNs*sim.Ns

	now := s.eng.Now()
	wireStart := now + cpu
	if s.linkBusyPs > wireStart {
		wireStart = s.linkBusyPs
	}
	// The NIC's TX DMA overlaps with other responses' wire time; only
	// the serialization occupies the shared link.
	s.linkBusyPs = wireStart + p.LinkSerializationPs(txBytes+segs*40)
	wireDone := s.linkBusyPs + dmaLat

	rc.cpu += cpu
	if s.win != nil {
		s.win.Observe(float64(wireDone - rc.req.at))
	}
	if s.measuring {
		s.cpuBusyPs += rc.cpu
		s.deviceBusyPs += rc.device
		s.requests++
		s.txBytes += uint64(txBytes)
		s.latSumPs += wireDone - rc.req.at
		s.latency.Observe(float64(wireDone - rc.req.at))
		s.stagePs[StageTX] += cpu
		s.stagePs[StageWire] += wireDone - wireStart
	}
	if s.tr != nil {
		if cpu > 0 {
			s.tr.Span(s.workerTracks[rc.worker], StageNames[StageTX], now, cpu)
		}
		s.tr.Span(s.nicTrack, "wire", wireStart, s.linkBusyPs-wireStart)
		s.tr.AsyncEnd(s.reqTrack, "req", rc.req.seq, wireDone)
	}
	s.eng.At(now+cpu, func() {
		s.freeWorkers = append(s.freeWorkers, rc.worker)
		s.dispatch()
	})
	s.eng.At(wireDone, rc.req.done)
}

// workerCore maps a connection to a core id for trace attribution.
func workerCore(connID int) int { return connID % 10 }

// BeginMeasurement snapshots counters after warmup.
func (s *Server) BeginMeasurement() {
	s.measuring = true
	s.measureFrom = s.eng.Now()
	s.memBase = s.cfg.Sys.MemoryBytesMoved()
	s.cpuBusyPs, s.deviceBusyPs, s.requests, s.txBytes, s.latSumPs = 0, 0, 0, 0, 0
	s.latency.Reset()
	s.stagePs = [NumStages]int64{}
}

// Collect returns the metrics accumulated since BeginMeasurement.
func (s *Server) Collect() Metrics {
	elapsed := s.eng.Now() - s.measureFrom
	m := Metrics{
		Requests:     s.requests,
		ElapsedPs:    elapsed,
		CPUBusyPs:    s.cpuBusyPs,
		DeviceBusyPs: s.deviceBusyPs,
		MemBytes:     s.cfg.Sys.MemoryBytesMoved() - s.memBase,
		TXBytes:      s.txBytes,
		Latency:      s.latency,
		StagePs:      s.stagePs,
		Errors:       s.errors,
	}
	if elapsed > 0 {
		m.RPS = float64(s.requests) / (float64(elapsed) * 1e-12)
		m.CPUUtil = float64(s.cpuBusyPs) / (float64(s.cfg.Workers) * float64(elapsed))
		m.MemBWGBps = float64(m.MemBytes) / (float64(elapsed) * 1e-12) / 1e9
	}
	if s.requests > 0 {
		m.MeanLatPs = s.latSumPs / int64(s.requests)
	}
	return m
}
