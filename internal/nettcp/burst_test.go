package nettcp

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// testBurst is a moderately hostile Gilbert-Elliott channel: rare
// transitions into a bad state that eats most packets while it lasts.
func testBurst() fault.GEConfig {
	return fault.GEConfig{PGoodBad: 0.002, PBadGood: 0.2, LossBad: 0.8}
}

// TestBurstyLossWithReorderNIC drives the SmartNIC hook through
// combined bursty loss and reordering: every loss-triggered retransmit
// desynchronizes the inline engine, and the records in flight during
// each resync window fall back to software encryption. The transfer
// must still complete, with the degradation visible in the counters.
func TestBurstyLossWithReorderNIC(t *testing.T) {
	nic := &NICTLSHook{P: sim.DefaultParams(), RecordLen: 16384, FallbackRecords: 16}
	res := MeasureGoodputBursty(sim.DefaultParams(), nic, BurstyNet{
		Burst:       testBurst(),
		ReorderProb: 0.005, ReorderDelayPs: 300 * sim.Us,
	}, 4<<20, 21)
	if !res.Completed {
		t.Fatal("transfer incomplete under bursty loss + reorder")
	}
	if res.BurstDrops == 0 {
		t.Fatal("GE chain produced no burst drops")
	}
	if res.Reordered == 0 {
		t.Fatal("no reordered packets at p=0.005")
	}
	if res.Resyncs == 0 {
		t.Fatal("burst losses produced no NIC resyncs")
	}
	if res.FallbackEncrypts < res.Resyncs {
		t.Fatalf("FallbackEncrypts=%d < Resyncs=%d: resync windows unaccounted",
			res.FallbackEncrypts, res.Resyncs)
	}
	if res.GoodputGbps <= 0 {
		t.Fatal("no goodput measured")
	}
}

// TestBurstyLossNICVsCPU reproduces the Fig. 2b relationship: under
// bursty loss the CPU sender only pays retransmission bandwidth, while
// the NIC sender pays a resync per loss event — so the NIC transfer
// cannot be faster, and it degrades through software fallback rather
// than failing.
func TestBurstyLossNICVsCPU(t *testing.T) {
	net := BurstyNet{Burst: testBurst()}
	p := sim.DefaultParams()

	nic := &NICTLSHook{P: p, RecordLen: 16384, FallbackRecords: 16}
	nicRes := MeasureGoodputBursty(p, nic, net, 4<<20, 33)
	cpuRes := MeasureGoodputBursty(p, CPUTLSHook{P: p}, net, 4<<20, 33)

	if !nicRes.Completed || !cpuRes.Completed {
		t.Fatalf("incomplete: nic=%v cpu=%v", nicRes.Completed, cpuRes.Completed)
	}
	// Same seed, same channel: both senders face the same loss process
	// (modulo send-time differences), so burst drops appear in both.
	if nicRes.BurstDrops == 0 || cpuRes.BurstDrops == 0 {
		t.Fatalf("burst drops: nic=%d cpu=%d", nicRes.BurstDrops, cpuRes.BurstDrops)
	}
	if cpuRes.FallbackEncrypts != 0 || cpuRes.Resyncs != 0 {
		t.Fatal("CPU hook reported NIC-only counters")
	}
	if nicRes.GoodputGbps > cpuRes.GoodputGbps*1.05 {
		t.Fatalf("NIC (%.2fGbps) beat CPU (%.2fGbps) under bursty loss",
			nicRes.GoodputGbps, cpuRes.GoodputGbps)
	}
}

// TestFlapWindowRecovery sends through a link with deterministic down
// windows: the sender must ride out each outage via RTO and finish.
func TestFlapWindowRecovery(t *testing.T) {
	res := MeasureGoodputBursty(sim.DefaultParams(), CPUTLSHook{P: sim.DefaultParams()}, BurstyNet{
		FlapEveryPs: 20 * sim.Ms, FlapDownPs: 500 * sim.Us,
	}, 4<<20, 17)
	if !res.Completed {
		t.Fatal("transfer incomplete across flap windows")
	}
	if res.FlapDrops == 0 {
		t.Fatal("no packets hit a down window")
	}
	if res.Timeouts == 0 && res.Retransmits == 0 {
		t.Fatal("outages recovered without any retransmission")
	}
}

// TestBurstyMeasurementDeterministic: same seed, same trace, same
// result — the reproducibility contract of the Fig. 2b experiment.
func TestBurstyMeasurementDeterministic(t *testing.T) {
	run := func() GoodputResult {
		nic := &NICTLSHook{P: sim.DefaultParams(), RecordLen: 16384}
		return MeasureGoodputBursty(sim.DefaultParams(), nic, BurstyNet{
			Burst:       testBurst(),
			ReorderProb: 0.005, ReorderDelayPs: 300 * sim.Us,
		}, 2<<20, 77)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestResyncWindowFallbackBounded checks the resync-window model
// directly: one retransmission forces exactly FallbackRecords+1
// software encryptions (the retransmitted record plus the window).
func TestResyncWindowFallbackBounded(t *testing.T) {
	p := sim.DefaultParams()
	h := &NICTLSHook{P: p, RecordLen: 16384, FallbackRecords: 8}
	if c := h.RecordCost(16384); c != p.NICCryptoSetupNs*sim.Ns {
		t.Fatalf("in-sync record cost = %d", c)
	}
	h.RetransmitCost(1460)
	for i := 0; i < 8; i++ {
		if c := h.RecordCost(16384); c != p.AESGCMComputePs(16384) {
			t.Fatalf("record %d inside window not software-encrypted (cost %d)", i, c)
		}
	}
	if c := h.RecordCost(16384); c != p.NICCryptoSetupNs*sim.Ns {
		t.Fatalf("record after window still degraded (cost %d)", c)
	}
	if h.FallbackEncrypts != 9 { // 1 retransmitted + 8 window records
		t.Fatalf("FallbackEncrypts = %d, want 9", h.FallbackEncrypts)
	}
	if h.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", h.Resyncs)
	}
}
