package nettcp

import (
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// GoodputResult is one Fig. 2 measurement point.
type GoodputResult struct {
	DropProb    float64
	GoodputGbps float64
	Retransmits uint64
	Timeouts    uint64
	Resyncs     uint64 // SmartNIC hook only
	Completed   bool
	// Bursty-variant accounting (MeasureGoodputBursty).
	BurstDrops       uint64
	FlapDrops        uint64
	Reordered        uint64
	FallbackEncrypts uint64 // SmartNIC hook only
}

// MeasureGoodput runs one bulk transfer of total bytes through a lossy
// 100GbE link with the given ULP hook and drop probability, returning
// achieved goodput — one point of Fig. 2.
func MeasureGoodput(p sim.Params, hook ULPHook, dropProb float64, total int64, seed int64) GoodputResult {
	eng := sim.NewEngine()
	rttHalf := int64(p.RTTUs * float64(sim.Us) / 2)
	data := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, DropProb: dropProb, Seed: seed,
	})
	ack := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, Seed: seed + 1,
	})
	cfg := DefaultConfig()
	cfg.MSS = p.MTUBytes - 40
	sender, recv, err := NewTransfer(eng, data, ack, cfg, hook, total)
	if err != nil {
		// Inputs are internally derived; an error here means a broken
		// caller, reported as a never-completed zero-goodput point.
		return GoodputResult{DropProb: dropProb}
	}

	// Bound the run: generous deadline scaled to the ideal time.
	ideal := int64(float64(total*8) / (p.LinkGbps * 1e9) * 1e12)
	deadline := 200*ideal + 2*sim.S
	eng.RunUntil(deadline)

	res := GoodputResult{
		DropProb:    dropProb,
		Retransmits: sender.Retransmits,
		Timeouts:    sender.Timeouts,
		Completed:   sender.Done(),
	}
	elapsed := sender.DonePs
	if !sender.Done() {
		elapsed = eng.Now()
	}
	if elapsed > 0 {
		res.GoodputGbps = float64(recv.Received*8) / (float64(elapsed) * 1e-12) / 1e9
	}
	if nic, ok := hook.(*NICTLSHook); ok {
		res.Resyncs = nic.Resyncs
	}
	return res
}

// BurstyNet describes the impaired data path for MeasureGoodputBursty:
// Gilbert-Elliott bursty loss, deterministic link-flap windows, and
// optional reordering — the failure modes that hurt autonomous NIC
// offload most, since every loss or spurious retransmit inside a burst
// desynchronizes the inline engine again (Fig. 2b).
type BurstyNet struct {
	Burst          fault.GEConfig
	FlapEveryPs    int64
	FlapDownPs     int64
	DropProb       float64
	ReorderProb    float64
	ReorderDelayPs int64
}

// MeasureGoodputBursty runs one bulk transfer through a link impaired
// per net, returning the achieved goodput and the drop/degradation
// accounting — one point of the Fig. 2b bursty-loss experiment.
func MeasureGoodputBursty(p sim.Params, hook ULPHook, net BurstyNet, total int64, seed int64) GoodputResult {
	eng := sim.NewEngine()
	rttHalf := int64(p.RTTUs * float64(sim.Us) / 2)
	data := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, Seed: seed,
		DropProb: net.DropProb, Burst: net.Burst,
		FlapEveryPs: net.FlapEveryPs, FlapDownPs: net.FlapDownPs,
		ReorderProb: net.ReorderProb, ReorderDelayPs: net.ReorderDelayPs,
	})
	ack := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, Seed: seed + 1,
	})
	cfg := DefaultConfig()
	cfg.MSS = p.MTUBytes - 40
	sender, recv, err := NewTransfer(eng, data, ack, cfg, hook, total)
	if err != nil {
		// Inputs are internally derived; an error here means a broken
		// caller, reported as a never-completed zero-goodput point.
		return GoodputResult{DropProb: net.DropProb}
	}

	ideal := int64(float64(total*8) / (p.LinkGbps * 1e9) * 1e12)
	deadline := 200*ideal + 2*sim.S
	eng.RunUntil(deadline)

	res := GoodputResult{
		DropProb:    net.DropProb,
		Retransmits: sender.Retransmits,
		Timeouts:    sender.Timeouts,
		Completed:   sender.Done(),
		BurstDrops:  data.BurstDropped,
		FlapDrops:   data.FlapDropped,
		Reordered:   data.Reordered,
	}
	elapsed := sender.DonePs
	if !sender.Done() {
		elapsed = eng.Now()
	}
	if elapsed > 0 {
		res.GoodputGbps = float64(recv.Received*8) / (float64(elapsed) * 1e-12) / 1e9
	}
	if nic, ok := hook.(*NICTLSHook); ok {
		res.Resyncs = nic.Resyncs
		res.FallbackEncrypts = nic.FallbackEncrypts
	}
	return res
}
