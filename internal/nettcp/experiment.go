package nettcp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// GoodputResult is one Fig. 2 measurement point.
type GoodputResult struct {
	DropProb    float64
	GoodputGbps float64
	Retransmits uint64
	Timeouts    uint64
	Resyncs     uint64 // SmartNIC hook only
	Completed   bool
}

// MeasureGoodput runs one bulk transfer of total bytes through a lossy
// 100GbE link with the given ULP hook and drop probability, returning
// achieved goodput — one point of Fig. 2.
func MeasureGoodput(p sim.Params, hook ULPHook, dropProb float64, total int64, seed int64) GoodputResult {
	eng := sim.NewEngine()
	rttHalf := int64(p.RTTUs * float64(sim.Us) / 2)
	data := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, DropProb: dropProb, Seed: seed,
	})
	ack := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: p.LinkGbps, PropPs: rttHalf, Seed: seed + 1,
	})
	cfg := DefaultConfig()
	cfg.MSS = p.MTUBytes - 40
	sender, recv := NewTransfer(eng, data, ack, cfg, hook, total)

	// Bound the run: generous deadline scaled to the ideal time.
	ideal := int64(float64(total*8) / (p.LinkGbps * 1e9) * 1e12)
	deadline := 200*ideal + 2*sim.S
	eng.RunUntil(deadline)

	res := GoodputResult{
		DropProb:    dropProb,
		Retransmits: sender.Retransmits,
		Timeouts:    sender.Timeouts,
		Completed:   sender.Done(),
	}
	elapsed := sender.DonePs
	if !sender.Done() {
		elapsed = eng.Now()
	}
	if elapsed > 0 {
		res.GoodputGbps = float64(recv.Received*8) / (float64(elapsed) * 1e-12) / 1e9
	}
	if nic, ok := hook.(*NICTLSHook); ok {
		res.Resyncs = nic.Resyncs
	}
	return res
}
