package nettcp

// RDMAIngress is the zero-copy hand-off between the TCP receiver and
// the RDMA NIC model: every RecordLen-sized record the receiver
// reassembles in stream order is deposited into the connection's
// registered SmartDIMM buffer as a one-sided WRITE, cycling through a
// ring of Slots slot positions (SlotStride bytes apart) inside the MR.
// Attach with Attach (it sets Receiver.OnDeliver).
//
// The netsim layer models segments as lengths, not bytes, so the
// ingress regenerates each record's content deterministically through
// Gen — same seed, same records, same landings, byte-identical traces.

import (
	"errors"
	"fmt"

	"repro/internal/rdma"
)

// ErrBadIngress reports an RDMAIngress with inconsistent geometry.
var ErrBadIngress = errors.New("nettcp: bad RDMA ingress geometry")

// RDMAIngress turns the receiver's in-order byte stream into one-sided
// writes through an rdma.NIC.
type RDMAIngress struct {
	NIC       *rdma.NIC
	ConnID    int
	RecordLen int
	// SlotStride is the spacing between consecutive record slots in the
	// registered region; Slots is the ring depth. SlotStride*Slots must
	// fit inside the MR the connection's QP is bound to.
	SlotStride int
	Slots      int
	// Gen produces record i's payload (exactly RecordLen bytes). It
	// must be deterministic in i.
	Gen func(rec int) []byte

	pending int // in-order bytes not yet forming a full record
	rec     int // next record ordinal

	// Deposited counts records written through the NIC; DepositPs is
	// the summed modelled deposit latency (doorbells, wire, rank
	// write timing). Err latches the first NIC failure — the receiver's
	// delivery callback has no error path, so callers check it after
	// the run.
	Deposited uint64
	DepositPs int64
	Err       error
}

// NewRDMAIngress validates the geometry and returns an ingress ready to
// Attach to a Receiver.
func NewRDMAIngress(nic *rdma.NIC, connID, recordLen, slotStride, slots int, gen func(int) []byte) (*RDMAIngress, error) {
	if nic == nil || gen == nil {
		return nil, fmt.Errorf("%w: nil NIC or generator", ErrBadIngress)
	}
	if recordLen <= 0 || slotStride < recordLen || slots <= 0 {
		return nil, fmt.Errorf("%w: record %d stride %d slots %d", ErrBadIngress, recordLen, slotStride, slots)
	}
	return &RDMAIngress{
		NIC: nic, ConnID: connID,
		RecordLen: recordLen, SlotStride: slotStride, Slots: slots,
		Gen: gen,
	}, nil
}

// Attach wires the ingress to a receiver's in-order delivery stream.
func (g *RDMAIngress) Attach(r *Receiver) { r.OnDeliver = g.push }

// push accumulates newly in-order bytes and deposits each completed
// record into its ring slot.
func (g *RDMAIngress) push(n int) {
	if g.Err != nil {
		return // poisoned: stop depositing, keep the first error
	}
	g.pending += n
	for g.pending >= g.RecordLen {
		g.pending -= g.RecordLen
		data := g.Gen(g.rec)
		if len(data) != g.RecordLen {
			g.Err = fmt.Errorf("%w: generator returned %d bytes for record %d, want %d",
				ErrBadIngress, len(data), g.rec, g.RecordLen)
			return
		}
		off := (g.rec % g.Slots) * g.SlotStride
		lat, err := g.NIC.Deposit(g.ConnID, off, data)
		g.DepositPs += lat
		if err != nil {
			g.Err = fmt.Errorf("nettcp: deposit record %d: %w", g.rec, err)
			return
		}
		g.rec++
		g.Deposited++
	}
}
