// Package nettcp is a Reno-style TCP model sufficient for the paper's
// Fig. 2 experiment: a bulk sender streaming TLS records over a lossy
// link, with slow start, congestion avoidance, fast retransmit on three
// duplicate ACKs, and retransmission timeouts. The ULP hook charges
// per-record processing time at the sender (CPU encryption) and a
// resynchronization penalty per retransmission (autonomous SmartNIC
// offload, Pismenny et al.): exactly the two mechanisms whose balance
// produces the Fig. 2 cliff.
package nettcp

import (
	"errors"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Typed construction errors. Replication rides this path (the cluster
// tier's inter-node fabric reuses the same link model), so a miswired
// transfer must fail loudly at construction instead of hanging
// silently: a zero-byte transfer never sets Done, a nil link or hook
// panics only once the first record boundary or retransmission hits.
var (
	ErrNoPayload = errors.New("nettcp: transfer needs a positive byte count")
	ErrNilLink   = errors.New("nettcp: transfer needs both a data and an ack link")
	ErrNilHook   = errors.New("nettcp: transfer needs a ULP hook (use a zero-cost hook for plain TCP)")
)

// ULPHook charges ULP costs to the sender.
type ULPHook interface {
	// RecordCost returns the sender-side stall before a fresh record of
	// n payload bytes may start transmitting (e.g. CPU encryption time).
	RecordCost(n int) int64
	// RetransmitCost returns the stall charged when bytes are
	// retransmitted (SmartNIC resync + CPU fallback; zero for CPU TLS).
	RetransmitCost(n int) int64
}

// CPUTLSHook models TLS fully on the CPU: per-record AES-NI time,
// amortized over the server's worker threads (the paper's testbed uses
// 10 threads, which pipelines encryption of different records behind
// transmission), and free retransmissions (the encrypted bytes are
// simply resent).
type CPUTLSHook struct {
	P sim.Params
	// Cores is the number of worker threads encrypting in parallel;
	// <= 0 selects the testbed's 10.
	Cores int
}

// RecordCost implements ULPHook.
func (h CPUTLSHook) RecordCost(n int) int64 {
	cores := h.Cores
	if cores <= 0 {
		cores = 10
	}
	return h.P.AESGCMComputePs(n) / int64(cores)
}

// RetransmitCost implements ULPHook.
func (h CPUTLSHook) RetransmitCost(int) int64 { return 0 }

// NICTLSHook models autonomous SmartNIC offload: records cost almost
// nothing on the CPU, but a retransmission desynchronizes the inline
// engine — the driver resynchronizes with the firmware while the flow
// falls back to software encryption for the records in flight during
// the resync window (Pismenny et al. §5: resynchronization cost grows
// with load; the engine misses every record it cannot match).
type NICTLSHook struct {
	P sim.Params
	// RecordLen is the TLS record size, over which fallback encryption
	// is charged.
	RecordLen int
	// FallbackRecords is how many subsequent records are encrypted in
	// software while one resync completes.
	FallbackRecords int
	Resyncs         uint64
	// FallbackEncrypts counts records encrypted in software inside
	// resync windows — the graceful-degradation cost the offload pays
	// under loss (each resync forces up to FallbackRecords of them).
	FallbackEncrypts uint64
	fallbackLeft     int
}

// RecordCost implements ULPHook.
func (h *NICTLSHook) RecordCost(n int) int64 {
	if h.fallbackLeft > 0 {
		// Out of sync: this record is encrypted on the CPU, serially on
		// this flow's thread.
		h.fallbackLeft--
		h.FallbackEncrypts++
		return h.P.AESGCMComputePs(n)
	}
	return h.P.NICCryptoSetupNs * sim.Ns
}

// RetransmitCost implements ULPHook.
func (h *NICTLSHook) RetransmitCost(int) int64 {
	h.Resyncs++
	h.FallbackEncrypts++ // the retransmitted record itself
	fb := h.FallbackRecords
	if fb <= 0 {
		fb = 64
	}
	h.fallbackLeft = fb
	return h.P.NICResyncUs*sim.Us + h.P.AESGCMComputePs(h.RecordLen)
}

// Config tunes the TCP model.
type Config struct {
	MSS          int
	InitCwndPkts int
	RTOPs        int64
	RecordLen    int // ULP record size carried by the stream
	HeaderBytes  int // per-packet header overhead on the wire
	// MaxInFlightPkts caps cwnd growth (receiver window).
	MaxInFlightPkts int
}

// DefaultConfig mirrors the testbed: 1460B MSS, 100Gbe, 16KB records.
func DefaultConfig() Config {
	return Config{
		MSS: 1460, InitCwndPkts: 10, RTOPs: 2 * sim.Ms,
		RecordLen: 16384, HeaderBytes: 40, MaxInFlightPkts: 1024,
	}
}

// Sender is the bulk TCP sender with a ULP hook.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	data *netsim.Link // sender -> receiver
	hook ULPHook

	totalBytes  int64 // bytes to send
	nextSeq     int64 // next fresh byte to send
	sndUna      int64 // oldest unacked byte
	cwnd        float64
	ssthresh    float64
	dupAcks     int
	recovering  bool
	recoverSeq  int64
	ulpReadyPs  int64 // sender stalled on ULP processing until here
	paidThrough int64 // record bytes whose ULP cost is already charged
	rtoCancel   sim.Cancel
	done        bool

	// Stats
	Retransmits    uint64
	Timeouts       uint64
	FastRecoveries uint64
	DonePs         int64

	// Tracer, when non-nil, records loss-recovery instants (retransmit,
	// rto, fast-recovery) on TraceTrack. Set after NewTransfer.
	Tracer     *telemetry.Tracer
	TraceTrack telemetry.TrackID
}

// Receiver acknowledges cumulatively.
type Receiver struct {
	eng     *sim.Engine
	ack     *netsim.Link // receiver -> sender
	rcvNext int64
	ooo     map[int64]int // out-of-order segments: seq -> len
	// Received counts in-order payload bytes delivered to the app.
	Received int64
	// OnDeliver, when non-nil, is called with each chunk of newly
	// in-order payload bytes (after reassembly), in stream order. This
	// is the NIC hand-off point: an RDMAIngress attached here turns the
	// reassembled byte stream into one-sided writes into the
	// connection's registered SmartDIMM buffer. Set before traffic
	// flows; it runs inside the delivery event, so it must not block.
	OnDeliver func(n int)
}

// NewTransfer wires a sender and receiver over the given links and
// starts transmitting total bytes. Call eng.Run (or RunUntil) after.
func NewTransfer(eng *sim.Engine, data, ack *netsim.Link, cfg Config, hook ULPHook, total int64) (*Sender, *Receiver, error) {
	if total <= 0 {
		return nil, nil, ErrNoPayload
	}
	if data == nil || ack == nil {
		return nil, nil, ErrNilLink
	}
	if hook == nil {
		return nil, nil, ErrNilHook
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 1460
	}
	if cfg.InitCwndPkts <= 0 {
		cfg.InitCwndPkts = 10
	}
	if cfg.RTOPs <= 0 {
		cfg.RTOPs = 5 * sim.Ms
	}
	if cfg.MaxInFlightPkts <= 0 {
		cfg.MaxInFlightPkts = 1024
	}
	s := &Sender{
		cfg: cfg, eng: eng, data: data, hook: hook,
		totalBytes: total,
		cwnd:       float64(cfg.InitCwndPkts * cfg.MSS),
		ssthresh:   float64(cfg.MaxInFlightPkts * cfg.MSS),
	}
	r := &Receiver{eng: eng, ack: ack, ooo: make(map[int64]int)}
	data.Deliver = r.onData
	ack.Deliver = s.onAck
	eng.At(eng.Now(), s.pump)
	return s, r, nil
}

// Done reports whether every byte was acknowledged.
func (s *Sender) Done() bool { return s.done }

// inFlight returns unacknowledged bytes.
func (s *Sender) inFlight() int64 { return s.nextSeq - s.sndUna }

// pump sends as much fresh data as cwnd allows, charging ULP costs at
// record boundaries.
func (s *Sender) pump() {
	if s.done {
		return
	}
	now := s.eng.Now()
	if now < s.ulpReadyPs {
		s.eng.At(s.ulpReadyPs, s.pump)
		return
	}
	window := int64(s.cwnd)
	if max := int64(s.cfg.MaxInFlightPkts * s.cfg.MSS); window > max {
		window = max
	}
	for s.nextSeq < s.totalBytes && s.inFlight() < window {
		// Record boundary: charge ULP processing before these bytes
		// exist in encrypted form (once per record).
		if s.cfg.RecordLen > 0 && s.nextSeq >= s.paidThrough {
			cost := s.hook.RecordCost(s.cfg.RecordLen)
			s.paidThrough = s.nextSeq + int64(s.cfg.RecordLen)
			if cost > 0 {
				s.ulpReadyPs = s.eng.Now() + cost
				s.eng.At(s.ulpReadyPs, s.pump)
				s.armRTO()
				return
			}
		}
		n := int(s.totalBytes - s.nextSeq)
		if n > s.cfg.MSS {
			n = s.cfg.MSS
		}
		s.data.Send(netsim.Packet{Seq: s.nextSeq, Len: n, Wire: n + s.cfg.HeaderBytes})
		s.nextSeq += int64(n)
	}
	s.armRTO()
}

// armRTO (re)schedules the retransmission timer.
func (s *Sender) armRTO() {
	s.rtoCancel.Cancel()
	if s.done || s.inFlight() == 0 {
		return
	}
	s.rtoCancel = s.eng.After(s.cfg.RTOPs, s.onRTO)
}

// onRTO fires after RTOPs without progress: classic timeout response.
func (s *Sender) onRTO() {
	if s.done || s.inFlight() == 0 {
		return
	}
	s.Timeouts++
	s.Tracer.Instant(s.TraceTrack, "rto", s.eng.Now())
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < float64(2*s.cfg.MSS) {
		s.ssthresh = float64(2 * s.cfg.MSS)
	}
	s.cwnd = float64(s.cfg.MSS)
	s.recovering = false
	s.dupAcks = 0
	s.retransmit(s.sndUna)
	s.armRTO()
}

// retransmit resends one MSS at seq, charging the ULP retransmit cost.
func (s *Sender) retransmit(seq int64) {
	s.Retransmits++
	s.Tracer.Instant(s.TraceTrack, "retransmit", s.eng.Now())
	n := int(s.totalBytes - seq)
	if n > s.cfg.MSS {
		n = s.cfg.MSS
	}
	if n <= 0 {
		return
	}
	if cost := s.hook.RetransmitCost(n); cost > 0 {
		s.ulpReadyPs = s.eng.Now() + cost
		s.eng.At(s.ulpReadyPs, func() {
			s.data.Send(netsim.Packet{Seq: seq, Len: n, Wire: n + s.cfg.HeaderBytes, Flags: netsim.FlagRetransmit})
		})
		return
	}
	s.data.Send(netsim.Packet{Seq: seq, Len: n, Wire: n + s.cfg.HeaderBytes, Flags: netsim.FlagRetransmit})
}

// onAck processes a cumulative acknowledgment.
func (s *Sender) onAck(p netsim.Packet) {
	if s.done {
		return
	}
	switch {
	case p.Ack > s.sndUna:
		acked := p.Ack - s.sndUna
		s.sndUna = p.Ack
		s.dupAcks = 0
		if s.recovering && p.Ack >= s.recoverSeq {
			s.recovering = false
			s.cwnd = s.ssthresh
		}
		mss := float64(s.cfg.MSS)
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
		} else {
			s.cwnd += mss * mss / s.cwnd // congestion avoidance
		}
		if s.sndUna >= s.totalBytes {
			s.done = true
			s.DonePs = s.eng.Now()
			s.rtoCancel.Cancel()
			return
		}
		s.armRTO()
		s.pump()
	case p.Ack == s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 && !s.recovering {
			// Fast retransmit + recovery.
			s.FastRecoveries++
			s.Tracer.Instant(s.TraceTrack, "fast-recovery", s.eng.Now())
			s.recovering = true
			s.recoverSeq = s.nextSeq
			s.ssthresh = s.cwnd / 2
			if s.ssthresh < float64(2*s.cfg.MSS) {
				s.ssthresh = float64(2 * s.cfg.MSS)
			}
			s.cwnd = s.ssthresh + 3*float64(s.cfg.MSS)
			s.retransmit(s.sndUna)
			s.armRTO()
		}
	}
}

// onData handles an arriving segment at the receiver.
func (r *Receiver) onData(p netsim.Packet) {
	if p.Seq == r.rcvNext {
		r.rcvNext += int64(p.Len)
		r.Received += int64(p.Len)
		r.deliver(p.Len)
		// Drain any buffered out-of-order segments.
		for {
			n, ok := r.ooo[r.rcvNext]
			if !ok {
				break
			}
			delete(r.ooo, r.rcvNext)
			r.rcvNext += int64(n)
			r.Received += int64(n)
			r.deliver(n)
		}
	} else if p.Seq > r.rcvNext {
		r.ooo[p.Seq] = p.Len
	}
	// Cumulative ACK (also the dup-ack generator).
	r.ack.Send(netsim.Packet{Flags: netsim.FlagAck, Ack: r.rcvNext, Wire: 40})
}

// deliver notifies the attached ingress (if any) of in-order bytes.
func (r *Receiver) deliver(n int) {
	if r.OnDeliver != nil {
		r.OnDeliver(n)
	}
}

// Goodput returns application bytes per second at the receiver given
// the elapsed simulation time.
func (r *Receiver) Goodput(elapsedPs int64) float64 {
	if elapsedPs <= 0 {
		return 0
	}
	return float64(r.Received) / (float64(elapsedPs) * 1e-12)
}
