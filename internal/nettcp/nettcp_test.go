package nettcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// zeroHook charges no ULP costs (plain TCP).
type zeroHook struct{}

func (zeroHook) RecordCost(int) int64     { return 0 }
func (zeroHook) RetransmitCost(int) int64 { return 0 }

func runTransfer(t *testing.T, drop float64, hook ULPHook, total int64) (*Sender, *Receiver, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	data := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, DropProb: drop, Seed: 1})
	ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, Seed: 2})
	s, r, err := NewTransfer(eng, data, ack, DefaultConfig(), hook, total)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(60 * sim.S)
	return s, r, eng
}

func TestLosslessTransferCompletes(t *testing.T) {
	s, r, _ := runTransfer(t, 0, zeroHook{}, 10<<20)
	if !s.Done() {
		t.Fatal("transfer did not complete")
	}
	if r.Received != 10<<20 {
		t.Fatalf("received %d, want %d", r.Received, 10<<20)
	}
	if s.Retransmits != 0 || s.Timeouts != 0 {
		t.Fatalf("spurious retransmits %d / timeouts %d", s.Retransmits, s.Timeouts)
	}
}

func TestLosslessGoodputNearLineRate(t *testing.T) {
	s, r, _ := runTransfer(t, 0, zeroHook{}, 50<<20)
	gbps := float64(r.Received*8) / (float64(s.DonePs) * 1e-12) / 1e9
	if gbps < 50 {
		t.Fatalf("goodput %.1f Gbps, want near 100 for bulk lossless", gbps)
	}
}

func TestLossyTransferRecoversAllBytes(t *testing.T) {
	for _, drop := range []float64{0.001, 0.01} {
		s, r, _ := runTransfer(t, drop, zeroHook{}, 2<<20)
		if !s.Done() {
			t.Fatalf("drop=%v: transfer stuck (recv %d)", drop, r.Received)
		}
		if r.Received < 2<<20 {
			t.Fatalf("drop=%v: received %d", drop, r.Received)
		}
		if s.Retransmits == 0 {
			t.Fatalf("drop=%v: no retransmissions recorded", drop)
		}
	}
}

func TestLossReducesGoodput(t *testing.T) {
	s0, r0, _ := runTransfer(t, 0, zeroHook{}, 5<<20)
	s1, r1, _ := runTransfer(t, 0.01, zeroHook{}, 5<<20)
	if !s0.Done() || !s1.Done() {
		t.Fatal("transfers incomplete")
	}
	g0 := r0.Goodput(s0.DonePs)
	g1 := r1.Goodput(s1.DonePs)
	if g1 >= g0 {
		t.Fatalf("1%% loss did not reduce goodput: %.0f vs %.0f", g1, g0)
	}
}

func TestULPRecordCostThrottlesSender(t *testing.T) {
	// A hook charging 10us per 16KB record caps goodput at ~13 Gbps.
	slow := &fixedHook{record: 10 * sim.Us}
	s, r, _ := runTransfer(t, 0, slow, 10<<20)
	if !s.Done() {
		t.Fatal("transfer did not complete")
	}
	gbps := float64(r.Received*8) / (float64(s.DonePs) * 1e-12) / 1e9
	if gbps > 16 {
		t.Fatalf("record cost not throttling: %.1f Gbps", gbps)
	}
}

type fixedHook struct {
	record, retrans int64
	retransN        int
}

func (h *fixedHook) RecordCost(int) int64 { return h.record }
func (h *fixedHook) RetransmitCost(int) int64 {
	h.retransN++
	return h.retrans
}

func TestRetransmitCostCharged(t *testing.T) {
	h := &fixedHook{retrans: 50 * sim.Us}
	s, _, _ := runTransfer(t, 0.005, h, 2<<20)
	if !s.Done() {
		t.Fatal("transfer did not complete")
	}
	if h.retransN == 0 {
		t.Fatal("retransmit hook never charged")
	}
}

func TestFig2Shape(t *testing.T) {
	// The headline Fig. 2 behaviour:
	//   (1) at zero drops SmartNIC and CPU achieve similar bandwidth;
	//   (2) as drops rise, SmartNIC degrades more than CPU.
	p := sim.DefaultParams()
	const total = 8 << 20
	cpu0 := MeasureGoodput(p, CPUTLSHook{P: p}, 0, total, 1)
	nic0 := MeasureGoodput(p, &NICTLSHook{P: p, RecordLen: 16384}, 0, total, 1)
	if !cpu0.Completed || !nic0.Completed {
		t.Fatal("lossless transfers incomplete")
	}
	ratio0 := nic0.GoodputGbps / cpu0.GoodputGbps
	if ratio0 < 0.85 || ratio0 > 1.3 {
		t.Fatalf("at 0 drops NIC/CPU = %.2f, want ~1 (paper: parity)", ratio0)
	}

	cpuD := MeasureGoodput(p, CPUTLSHook{P: p}, 0.004, total, 1)
	nicD := MeasureGoodput(p, &NICTLSHook{P: p, RecordLen: 16384}, 0.004, total, 1)
	if nicD.Resyncs == 0 {
		t.Fatal("no resyncs under drops")
	}
	// SmartNIC must lose more of its bandwidth than CPU does.
	cpuLoss := cpuD.GoodputGbps / cpu0.GoodputGbps
	nicLoss := nicD.GoodputGbps / nic0.GoodputGbps
	if nicLoss >= cpuLoss {
		t.Fatalf("SmartNIC retained %.2f vs CPU %.2f under drops — cliff missing", nicLoss, cpuLoss)
	}
}

func TestGoodputZeroElapsed(t *testing.T) {
	r := &Receiver{}
	if r.Goodput(0) != 0 {
		t.Fatal("zero elapsed should be zero goodput")
	}
}
