package nettcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestReorderTriggersResyncNotLoss: packet reordering (no loss) still
// desynchronizes the autonomous SmartNIC engine via spurious fast
// retransmits, while a CPU sender merely wastes a little bandwidth —
// the second half of the paper's Observation 1.
func TestReorderTriggersResyncNotLoss(t *testing.T) {
	run := func(hook ULPHook) (*Sender, *Receiver) {
		eng := sim.NewEngine()
		data := netsim.NewLink(eng, netsim.LinkConfig{
			Gbps: 100, PropPs: 6 * sim.Us,
			ReorderProb: 0.01, ReorderDelayPs: 300 * sim.Us, Seed: 5,
		})
		ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, Seed: 6})
		s, r, err := NewTransfer(eng, data, ack, DefaultConfig(), hook, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(30 * sim.S)
		return s, r
	}
	nic := &NICTLSHook{P: sim.DefaultParams(), RecordLen: 16384}
	sNIC, rNIC := run(nic)
	if !sNIC.Done() {
		t.Fatal("NIC transfer incomplete under reordering")
	}
	if rNIC.Received != 4<<20 {
		t.Fatalf("received %d", rNIC.Received)
	}
	if nic.Resyncs == 0 {
		t.Fatal("reordering produced no resyncs")
	}

	sCPU, _ := run(CPUTLSHook{P: sim.DefaultParams()})
	if !sCPU.Done() {
		t.Fatal("CPU transfer incomplete under reordering")
	}
	// Reordering costs the NIC configuration more time than the CPU one.
	if sNIC.DonePs <= sCPU.DonePs {
		t.Fatalf("NIC (%.2fms) not slower than CPU (%.2fms) under reordering",
			float64(sNIC.DonePs)/float64(sim.Ms), float64(sCPU.DonePs)/float64(sim.Ms))
	}
}

// TestSpuriousRetransmitsFromReorder verifies the TCP model itself
// produces duplicate-ACK-driven retransmissions from reordering alone.
func TestSpuriousRetransmitsFromReorder(t *testing.T) {
	eng := sim.NewEngine()
	data := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: 100, PropPs: 6 * sim.Us,
		ReorderProb: 0.02, ReorderDelayPs: 500 * sim.Us, Seed: 9,
	})
	ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, Seed: 10})
	s, _, err := NewTransfer(eng, data, ack, DefaultConfig(), zeroHook{}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * sim.S)
	if !s.Done() {
		t.Fatal("transfer incomplete")
	}
	if s.Retransmits == 0 {
		t.Fatal("no spurious retransmits despite heavy reordering")
	}
}
