package nettcp

// TCP-over-netsim feeding the RDMA NIC: the receiver's reassembled
// stream lands in a registered SmartDIMM buffer as one-sided writes,
// even under segment loss and reordering-by-retransmission.

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rdma"
	"repro/internal/sim"
)

func runRDMATransfer(t *testing.T, drop float64, total int64) (*Sender, *Receiver, *RDMAIngress, *rdma.NIC, *sim.System, uint64) {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		WithSmartDIMM: true, DataPath: sim.DataPathPeer,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine
	const recordLen, stride, slots = 16384, 16384, 4
	addr, err := sys.Driver.AllocPages(stride * slots / 4096)
	if err != nil {
		t.Fatal(err)
	}
	nic, err := rdma.New(rdma.Config{Sys: sys, RecordLandings: true, TraceOps: true})
	if err != nil {
		t.Fatal(err)
	}
	rkey, err := nic.RegisterMR(addr, stride*slots)
	if err != nil {
		t.Fatal(err)
	}
	if err := nic.CreateQP(0, rkey); err != nil {
		t.Fatal(err)
	}
	gen := func(rec int) []byte {
		p := make([]byte, recordLen)
		for i := range p {
			p[i] = byte(rec*31 + i)
		}
		return p
	}
	ing, err := NewRDMAIngress(nic, 0, recordLen, stride, slots, gen)
	if err != nil {
		t.Fatal(err)
	}
	data := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, DropProb: drop, Seed: 1})
	ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: 100, PropPs: 6 * sim.Us, Seed: 2})
	s, r, err := NewTransfer(eng, data, ack, DefaultConfig(), zeroHook{}, total)
	if err != nil {
		t.Fatal(err)
	}
	ing.Attach(r)
	eng.RunUntil(60 * sim.S)
	return s, r, ing, nic, sys, addr
}

func TestRDMAIngressDepositsEveryRecord(t *testing.T) {
	total := int64(64 * 16384)
	s, r, ing, nic, sys, addr := runRDMATransfer(t, 0, total)
	if !s.Done() || r.Received != total {
		t.Fatalf("transfer incomplete: done=%v received=%d", s.Done(), r.Received)
	}
	if ing.Err != nil {
		t.Fatalf("ingress error: %v", ing.Err)
	}
	if ing.Deposited != 64 {
		t.Fatalf("deposited %d records, want 64", ing.Deposited)
	}
	if ing.DepositPs <= 0 {
		t.Fatalf("deposits charged no device time")
	}
	// The last ring pass (records 60..63) must be resident in the MR.
	for rec := 60; rec < 64; rec++ {
		off := uint64((rec % 4) * 16384)
		got, _, err := sys.DMAOut(addr+off, 16384)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16384)
		for i := range want {
			want[i] = byte(rec*31 + i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d missing from its ring slot", rec)
		}
	}
	for _, l := range nic.Landings() {
		mr, ok := nic.LookupMR(l.Rkey)
		if !ok || l.Addr < mr.Addr || l.Addr+uint64(l.Len) > mr.Addr+uint64(mr.Len) {
			t.Fatalf("landing outside the registered region: %+v", l)
		}
	}
}

func TestRDMAIngressSurvivesLoss(t *testing.T) {
	total := int64(32 * 16384)
	s, r, ing, _, _, _ := runRDMATransfer(t, 0.01, total)
	if !s.Done() || r.Received < total {
		t.Fatalf("lossy transfer incomplete: done=%v received=%d", s.Done(), r.Received)
	}
	if s.Retransmits == 0 {
		t.Fatalf("expected retransmissions at 1%% drop")
	}
	if ing.Err != nil {
		t.Fatalf("ingress error under loss: %v", ing.Err)
	}
	if ing.Deposited != 32 {
		t.Fatalf("deposited %d records, want 32 (in-order delivery must dedupe)", ing.Deposited)
	}
}

func TestRDMAIngressDeterministic(t *testing.T) {
	run := func() (uint64, int64, string) {
		_, _, ing, nic, _, _ := runRDMATransfer(t, 0.005, int64(16*16384))
		return ing.Deposited, ing.DepositPs, nic.TraceString()
	}
	d1, p1, tr1 := run()
	d2, p2, tr2 := run()
	if d1 != d2 || p1 != p2 || tr1 != tr2 {
		t.Fatalf("same-seed ingress diverged: %d/%d ps %d/%d", d1, d2, p1, p2)
	}
}
