package nettcp

import (
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// flapTransfer runs a transfer over a data link with one deterministic
// outage window [phase, phase+down) and a clean ack link.
func flapTransfer(t *testing.T, cfg Config, gbps float64, phase, down int64, total int64) (*Sender, *Receiver, *netsim.Link) {
	t.Helper()
	eng := sim.NewEngine()
	data := netsim.NewLink(eng, netsim.LinkConfig{
		Gbps: gbps, PropPs: 6 * sim.Us, Seed: 1,
		// One window only: a period longer than any deadline below.
		FlapEveryPs: 600 * sim.S, FlapDownPs: down, FlapPhasePs: phase,
	})
	ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: gbps, PropPs: 6 * sim.Us, Seed: 2})
	s, r, err := NewTransfer(eng, data, ack, cfg, zeroHook{}, total)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(60 * sim.S)
	return s, r, data
}

// TestFlapMidHandshake partitions the data path from t=0: the entire
// initial window and the first RTO retransmissions are eaten, so the
// connection must bootstrap purely on timeout recovery once the link
// heals — the cold-start side of a node partition. Regression for the
// replication fabric, which opens streams into possibly-partitioned
// peers.
func TestFlapMidHandshake(t *testing.T) {
	const total = 2 << 20
	s, r, data := flapTransfer(t, DefaultConfig(), 100, 0, 5*sim.Ms, total)
	if !s.Done() {
		t.Fatalf("transfer never completed after the handshake-window partition (recv %d)", r.Received)
	}
	if r.Received != total {
		t.Fatalf("received %d, want %d", r.Received, total)
	}
	if data.FlapDropped == 0 {
		t.Fatal("outage dropped nothing: flap not exercised")
	}
	// With a 2ms RTO against a 5ms outage, at least two timeout-driven
	// retransmissions are themselves eaten before one survives.
	if s.Timeouts < 2 {
		t.Fatalf("timeouts = %d, want >= 2 (RTO retransmits inside the outage must be re-lost)", s.Timeouts)
	}
}

// TestFlapMidStream partitions the data path while the pipe is full:
// everything in flight at the cut is lost at once, and the sender must
// resynchronize from sndUna when the link heals without losing or
// duplicating a byte at the receiver.
func TestFlapMidStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTOPs = 500 * sim.Us
	const total = 4 << 20
	// 10 Gbps stretches the transfer to ~3.4ms; the 500us outage at 1ms
	// lands mid-stream, after slow start has filled the window.
	s, r, data := flapTransfer(t, cfg, 10, sim.Ms, 500*sim.Us, total)
	if !s.Done() {
		t.Fatalf("transfer never completed after the mid-stream partition (recv %d)", r.Received)
	}
	if r.Received != total {
		t.Fatalf("received %d, want %d", r.Received, total)
	}
	if data.FlapDropped == 0 {
		t.Fatal("outage dropped nothing: the flap window missed the stream")
	}
	if s.Retransmits == 0 {
		t.Fatal("no retransmissions across the outage")
	}
	// The phase honored the healthy prefix: more packets were delivered
	// than dropped, so the cut really was mid-stream, not at start.
	if data.Delivered <= data.FlapDropped {
		t.Fatalf("delivered %d <= flap-dropped %d: outage consumed the whole stream", data.Delivered, data.FlapDropped)
	}
}

// TestNewTransferTypedErrors pins the constructor's failure modes —
// before these were typed, a zero-byte transfer hung silently (Done
// never set) and a nil link or hook deferred to a panic mid-run.
func TestNewTransferTypedErrors(t *testing.T) {
	eng := sim.NewEngine()
	data := netsim.NewLink(eng, netsim.LinkConfig{Seed: 1})
	ack := netsim.NewLink(eng, netsim.LinkConfig{Seed: 2})
	for _, c := range []struct {
		name  string
		data  *netsim.Link
		hook  ULPHook
		total int64
		want  error
	}{
		{"zero payload", data, zeroHook{}, 0, ErrNoPayload},
		{"negative payload", data, zeroHook{}, -5, ErrNoPayload},
		{"nil data link", nil, zeroHook{}, 1 << 20, ErrNilLink},
		{"nil hook", data, nil, 1 << 20, ErrNilHook},
	} {
		_, _, err := NewTransfer(eng, c.data, ack, DefaultConfig(), c.hook, c.total)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, _, err := NewTransfer(eng, data, ack, DefaultConfig(), zeroHook{}, 1<<20); err != nil {
		t.Fatalf("valid transfer rejected: %v", err)
	}
}
