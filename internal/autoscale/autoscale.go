// Package autoscale is the SLO-driven fleet controller: a closed loop
// that subscribes to the observability plane's scrape ticks and resizes
// the active rank set — admitting parked ranks when the rolling p99
// breaches the latency SLO, draining them back out when the tail falls
// comfortably under it, and flipping the placement policy when per-rank
// queue depths diverge. Everything it reads comes from the obs series
// store (the same series an operator would graph and alert on): the
// rolling latency window under <LatencyPrefix>.p99/.count, per-rank
// queue-depth sketches under fleet.rank<i>.qdepth.p99, the activity
// bitmap under fleet.state.rank<i>.
//
// The controller is deliberately conservative — production autoscalers
// that react to single samples flap, and flapping is worse than either
// steady state: every admit/drain resharding connections costs
// migrations. Three mechanisms damp it:
//
//   - hysteresis: a scale-up needs UpAfter consecutive breach ticks, a
//     scale-down needs DownAfter consecutive ticks below LowFrac*SLO —
//     an oscillating tail straddling the SLO edge never accumulates
//     either streak;
//   - cooldown: after any action the controller sits out CooldownTicks
//     ticks, long enough for the reshard to show up in the window;
//   - a dead band: between LowFrac*SLO and SLO neither streak grows.
//
// The controller runs inside the scraper's single self-rescheduling
// engine event (its control tick is every TickPs/ScrapeInterval-th
// scrape), so runs are deterministic: same seed, same trace, same
// actions, at any GOMAXPROCS.
package autoscale

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scaler is the fleet surface the controller drives. internal/fleet's
// Fleet implements it (administrative Drain/Admit hold members out of
// the breaker's auto-readmission).
type Scaler interface {
	Members() int
	ActiveMembers() int
	IsActive(i int) bool
	Drain(i int) error
	Admit(i int) error
}

// Config parameterizes a controller.
type Config struct {
	// Obs is the observability plane the controller subscribes to: it
	// reads the scraped series store instead of re-scanning the raw
	// registry, and its control tick rides the scraper's engine event.
	Obs *obs.Scraper
	Fl  Scaler
	// Window is the rolling latency record the server feeds; the
	// controller rolls it once per tick so <LatencyPrefix>.p99 always
	// spans the last few ticks, not the whole run.
	Window *stats.Window
	// LatencyPrefix locates the window's series in the store.
	// Empty selects "server.window".
	LatencyPrefix string

	// TickPs is the control interval. It must be a whole multiple of the
	// scraper's interval (the controller acts every TickPs/interval-th
	// scrape). Zero selects 500us.
	TickPs int64
	// SLOPs is the p99 latency objective in picoseconds (required).
	SLOPs float64
	// LowFrac*SLOPs is the scale-down threshold. Zero selects 0.4.
	LowFrac float64
	// UpAfter consecutive breach ticks trigger an admit; zero selects 2.
	UpAfter int
	// DownAfter consecutive low ticks trigger a drain; zero selects 4.
	DownAfter int
	// CooldownTicks is the post-action quiet period; zero selects 3.
	CooldownTicks int
	// MinActive floors scale-down. Zero selects 1.
	MinActive int
	// MinSamples skips control decisions on ticks whose window holds
	// fewer completions (idle start, post-reshard gap). Zero selects 32.
	MinSamples int

	// FlipPolicy, when non-nil, is invoked (once) when the active ranks'
	// qdepth p99s stay imbalanced — max > ImbalanceRatio*min — for
	// ImbalanceAfter consecutive ticks: the hook where the fleet flips
	// rr/affinity to leastload live.
	FlipPolicy     func()
	ImbalanceRatio float64 // zero selects 4
	ImbalanceAfter int     // zero selects 3

	// OnAction, when non-nil, observes every control decision as it is
	// taken — the flight recorder's correlation feed.
	OnAction func(Action)
}

func (c *Config) defaults() error {
	if c.Obs == nil || c.Fl == nil || c.Window == nil {
		return fmt.Errorf("autoscale: need obs scraper, scaler, and window")
	}
	if c.SLOPs <= 0 {
		return fmt.Errorf("autoscale: need a latency SLO")
	}
	if c.LatencyPrefix == "" {
		c.LatencyPrefix = "server.window"
	}
	if c.TickPs <= 0 {
		c.TickPs = 500 * sim.Us
	}
	if iv := c.Obs.IntervalPs(); c.TickPs%iv != 0 {
		return fmt.Errorf("autoscale: TickPs %d is not a multiple of the scrape interval %d", c.TickPs, iv)
	}
	if c.LowFrac <= 0 || c.LowFrac >= 1 {
		c.LowFrac = 0.4
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 4
	}
	if c.CooldownTicks <= 0 {
		c.CooldownTicks = 3
	}
	if c.MinActive <= 0 {
		c.MinActive = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.ImbalanceRatio <= 0 {
		c.ImbalanceRatio = 4
	}
	if c.ImbalanceAfter <= 0 {
		c.ImbalanceAfter = 3
	}
	return nil
}

// Action is one control decision, for the run report and tests.
type Action struct {
	AtPs int64
	What string // "admit", "drain", "flip-policy"
	Rank int    // -1 for flip-policy
	P99  float64
}

func (a Action) String() string {
	if a.Rank < 0 {
		return fmt.Sprintf("%d %s p99=%g", a.AtPs, a.What, a.P99)
	}
	return fmt.Sprintf("%d %s d%d p99=%g", a.AtPs, a.What, a.Rank, a.P99)
}

// Controller is the live autoscaler.
type Controller struct {
	cfg       Config
	tickEvery int // control tick = every tickEvery-th scrape
	scrapes   int

	// Interned series names, so per-tick store reads don't rebuild
	// strings (mirrors the registry's own name interning).
	latP99Name, latCountName string
	stateNames, qdepthNames  []string

	// Actions is the decision log; TraceString renders it.
	Actions []Action
	// Ticks counts control intervals; SLOHeldTicks those whose measured
	// p99 (with enough samples) met the SLO — the soak's figure of merit.
	Ticks         int
	SLOHeldTicks  int
	MeasuredTicks int

	breachStreak, lowStreak, imbStreak int
	cooldown                           int
	flipped                            bool
}

// New validates the config and builds a controller; Start arms it.
func New(cfg Config) (*Controller, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:          cfg,
		tickEvery:    int(cfg.TickPs / cfg.Obs.IntervalPs()),
		latP99Name:   cfg.LatencyPrefix + ".p99",
		latCountName: cfg.LatencyPrefix + ".count",
	}
	for i := 0; i < cfg.Fl.Members(); i++ {
		c.stateNames = append(c.stateNames, fmt.Sprintf("fleet.state.rank%d", i))
		c.qdepthNames = append(c.qdepthNames, fmt.Sprintf("fleet.rank%d.qdepth.p99", i))
	}
	return c, nil
}

// Start subscribes the control loop to the scraper's ticks. Call before
// the scraper starts running.
func (c *Controller) Start() {
	c.cfg.Obs.OnScrape(func(atPs int64, st *obs.Store) {
		c.scrapes++
		if c.scrapes%c.tickEvery != 0 {
			return
		}
		c.tick(atPs, st)
	})
}

// tick is one control interval: read the freshly scraped series, decide,
// roll the window.
func (c *Controller) tick(atPs int64, st *obs.Store) {
	p99 := st.LastValue(c.latP99Name)
	count := int(st.LastValue(c.latCountName))
	c.Ticks++

	if count >= c.cfg.MinSamples {
		c.MeasuredTicks++
		if p99 <= c.cfg.SLOPs {
			c.SLOHeldTicks++
		}
		c.decide(atPs, p99)
		c.checkImbalance(atPs, st, p99)
	}

	c.cfg.Window.Roll()
}

// decide applies the hysteresis ladder to the measured tail.
func (c *Controller) decide(atPs int64, p99 float64) {
	if c.cooldown > 0 {
		c.cooldown--
		return
	}
	switch {
	case p99 > c.cfg.SLOPs:
		c.breachStreak++
		c.lowStreak = 0
		if c.breachStreak >= c.cfg.UpAfter {
			c.scaleUp(atPs, p99)
		}
	case p99 < c.cfg.LowFrac*c.cfg.SLOPs:
		c.lowStreak++
		c.breachStreak = 0
		if c.lowStreak >= c.cfg.DownAfter {
			c.scaleDown(atPs, p99)
		}
	default:
		// Dead band: neither streak accumulates across it.
		c.breachStreak, c.lowStreak = 0, 0
	}
}

// scaleUp admits the lowest-indexed parked rank.
func (c *Controller) scaleUp(atPs int64, p99 float64) {
	c.breachStreak = 0
	for i := 0; i < c.cfg.Fl.Members(); i++ {
		if c.cfg.Fl.IsActive(i) {
			continue
		}
		if err := c.cfg.Fl.Admit(i); err != nil {
			return
		}
		c.act(atPs, "admit", i, p99)
		return
	}
	// Every rank already active: nothing to give; stay quiet until the
	// streak rebuilds (no cooldown charged for a no-op).
}

// scaleDown drains the highest-indexed active rank, respecting the floor.
func (c *Controller) scaleDown(atPs int64, p99 float64) {
	c.lowStreak = 0
	if c.cfg.Fl.ActiveMembers() <= c.cfg.MinActive {
		return
	}
	for i := c.cfg.Fl.Members() - 1; i >= 0; i-- {
		if !c.cfg.Fl.IsActive(i) {
			continue
		}
		if err := c.cfg.Fl.Drain(i); err != nil {
			return
		}
		c.act(atPs, "drain", i, p99)
		return
	}
}

// checkImbalance watches the active ranks' qdepth p99 spread and fires
// the policy-flip hook when it stays pathological.
func (c *Controller) checkImbalance(atPs int64, st *obs.Store, p99 float64) {
	if c.cfg.FlipPolicy == nil || c.flipped {
		return
	}
	min, max, n := 0.0, 0.0, 0
	for i := range c.stateNames {
		if st.LastValue(c.stateNames[i]) != 1 {
			continue
		}
		q := st.LastValue(c.qdepthNames[i])
		if n == 0 || q < min {
			min = q
		}
		if q > max {
			max = q
		}
		n++
	}
	if n < 2 || max <= (min+1)*c.cfg.ImbalanceRatio {
		c.imbStreak = 0
		return
	}
	if c.imbStreak++; c.imbStreak >= c.cfg.ImbalanceAfter {
		c.cfg.FlipPolicy()
		c.flipped = true
		c.act(atPs, "flip-policy", -1, p99)
	}
}

func (c *Controller) act(atPs int64, what string, rank int, p99 float64) {
	a := Action{AtPs: atPs, What: what, Rank: rank, P99: p99}
	c.Actions = append(c.Actions, a)
	c.cooldown = c.cfg.CooldownTicks
	if c.cfg.OnAction != nil {
		c.cfg.OnAction(a)
	}
}

// SLOHeldFrac is the fraction of measured ticks that met the SLO.
func (c *Controller) SLOHeldFrac() float64 {
	if c.MeasuredTicks == 0 {
		return 0
	}
	return float64(c.SLOHeldTicks) / float64(c.MeasuredTicks)
}

// TraceString renders the action log one decision per line — the
// byte-compared artifact of the workload determinism gate.
func (c *Controller) TraceString() string {
	var b strings.Builder
	for _, a := range c.Actions {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}
