package autoscale

// Controller unit tests against a scripted registry and fake scaler:
// the hysteresis gate (an SLO-straddling oscillation must cause zero
// actions), the basic scale-up/scale-down ladder with cooldown, and the
// one-shot policy flip on sustained queue imbalance.

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// fakeScaler tracks admits/drains over a bitmap.
type fakeScaler struct {
	active         []bool
	admits, drains int
}

func newFakeScaler(total, active int) *fakeScaler {
	f := &fakeScaler{active: make([]bool, total)}
	for i := 0; i < active; i++ {
		f.active[i] = true
	}
	return f
}

func (f *fakeScaler) Members() int { return len(f.active) }
func (f *fakeScaler) ActiveMembers() int {
	n := 0
	for _, a := range f.active {
		if a {
			n++
		}
	}
	return n
}
func (f *fakeScaler) IsActive(i int) bool { return f.active[i] }
func (f *fakeScaler) Drain(i int) error   { f.active[i] = false; f.drains++; return nil }
func (f *fakeScaler) Admit(i int) error   { f.active[i] = true; f.admits++; return nil }

// scriptedP99 registers a latency collector whose p99 follows a script,
// advancing one entry per registry snapshot (= one controller tick).
func scriptedP99(reg *telemetry.Registry, script func(tick int) float64) {
	tick := 0
	reg.Register("server.window", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "p99", Value: script(tick)})
		emit(telemetry.Sample{Name: "count", Value: 1000})
		tick++
	}))
}

func newController(t *testing.T, eng *sim.Engine, reg *telemetry.Registry, fl Scaler, cfg Config) *Controller {
	t.Helper()
	// One scrape per control tick: the scripted collectors advance one
	// entry per registry snapshot, i.e. per scrape.
	sc, err := obs.New(obs.Config{Eng: eng, Reg: reg, IntervalPs: cfg.TickPs})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs, cfg.Fl = sc, fl
	if cfg.Window == nil {
		cfg.Window = stats.NewWindow(4)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sc.Start()
	return c
}

// A control interval that is not a whole multiple of the scrape
// interval is a config error, not a silent drift.
func TestTickMustAlignToScrape(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	sc, err := obs.New(obs.Config{Eng: eng, Reg: reg, IntervalPs: 100 * sim.Us})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Obs: sc, Fl: newFakeScaler(2, 1), Window: stats.NewWindow(4),
		SLOPs: 1, TickPs: 150 * sim.Us})
	if err == nil {
		t.Fatal("misaligned TickPs validated")
	}
}

// A scrape interval finer than the control interval must not change the
// decision cadence: the controller acts every TickPs/interval-th scrape.
func TestControlTickSubsamplesScrapes(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	slo := float64(10 * sim.Us)
	scriptedP99(reg, func(int) float64 { return slo * 3 }) // sustained breach
	sc, err := obs.New(obs.Config{Eng: eng, Reg: reg, IntervalPs: 50 * sim.Us})
	if err != nil {
		t.Fatal(err)
	}
	fl := newFakeScaler(4, 1)
	c, err := New(Config{Obs: sc, Fl: fl, Window: stats.NewWindow(4),
		SLOPs: slo, TickPs: 100 * sim.Us, UpAfter: 2, CooldownTicks: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sc.Start()
	eng.RunUntil(20 * 100 * sim.Us)
	if sc.Scrapes != 40 || c.Ticks != 20 {
		t.Fatalf("scrapes=%d ticks=%d, want 40/20", sc.Scrapes, c.Ticks)
	}
	if fl.admits == 0 {
		t.Fatal("sustained breach never scaled up under subsampled control")
	}
}

// TestHysteresisNoFlap is the no-flap gate: a tail oscillating across
// the SLO edge every tick — breach, ok, breach, ok — must never
// accumulate either streak, so the controller takes zero actions over a
// long run. A single-sample controller would flap on every other tick.
func TestHysteresisNoFlap(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	slo := float64(10 * sim.Us)
	scriptedP99(reg, func(tick int) float64 {
		if tick%2 == 0 {
			return slo * 1.5 // breach
		}
		return slo * 0.9 // dead band: resets the breach streak
	})
	fl := newFakeScaler(4, 2)
	c := newController(t, eng, reg, fl, Config{SLOPs: slo, TickPs: 100 * sim.Us, UpAfter: 2, DownAfter: 4})
	eng.RunUntil(60 * 100 * sim.Us)
	if len(c.Actions) != 0 {
		t.Fatalf("oscillating tail caused %d actions (flap): %v", len(c.Actions), c.Actions)
	}
	if fl.admits != 0 || fl.drains != 0 {
		t.Fatalf("admits=%d drains=%d, want 0/0", fl.admits, fl.drains)
	}
	if c.Ticks < 50 {
		t.Fatalf("only %d ticks ran", c.Ticks)
	}
}

// TestScaleUpDownLadder drives a sustained breach, then a sustained
// quiet phase, and checks the ladder: one admit per breach episode
// (cooldown absorbs the rest), drains down to MinActive in the quiet
// phase, and never below it.
func TestScaleUpDownLadder(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	slo := float64(10 * sim.Us)
	scriptedP99(reg, func(tick int) float64 {
		if tick < 12 {
			return slo * 3 // hot: admit
		}
		return slo * 0.1 // idle: drain
	})
	fl := newFakeScaler(4, 1)
	c := newController(t, eng, reg, fl, Config{
		SLOPs: slo, TickPs: 100 * sim.Us,
		UpAfter: 2, DownAfter: 3, CooldownTicks: 2, MinActive: 1,
	})
	eng.RunUntil(40 * 100 * sim.Us)
	if fl.admits == 0 {
		t.Fatal("sustained breach never scaled up")
	}
	if fl.admits > 3 {
		t.Fatalf("%d admits in a 12-tick breach with cooldown 2, want <= 3", fl.admits)
	}
	if got := fl.ActiveMembers(); got != 1 {
		t.Fatalf("quiet phase drained to %d active, want MinActive=1", got)
	}
	for _, a := range c.Actions {
		if a.What == "drain" && a.Rank == 0 {
			t.Fatal("drained rank 0 below the floor")
		}
	}
	if c.SLOHeldFrac() <= 0 || c.SLOHeldFrac() >= 1 {
		t.Fatalf("SLOHeldFrac = %g, want in (0,1) for a mixed run", c.SLOHeldFrac())
	}
}

// TestImbalanceFlipsPolicyOnce: a sustained per-rank qdepth skew fires
// the FlipPolicy hook exactly once, ever.
func TestImbalanceFlipsPolicyOnce(t *testing.T) {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	slo := float64(10 * sim.Us)
	scriptedP99(reg, func(int) float64 { return slo * 0.6 }) // dead band: no scaling
	reg.Register("fleet.state", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "rank0", Value: 1})
		emit(telemetry.Sample{Name: "rank1", Value: 1})
	}))
	reg.Register("fleet", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "rank0.qdepth.p99", Value: 40})
		emit(telemetry.Sample{Name: "rank1.qdepth.p99", Value: 1})
	}))
	flips := 0
	fl := newFakeScaler(2, 2)
	c := newController(t, eng, reg, fl, Config{
		SLOPs: slo, TickPs: 100 * sim.Us,
		FlipPolicy: func() { flips++ }, ImbalanceRatio: 4, ImbalanceAfter: 3,
	})
	eng.RunUntil(30 * 100 * sim.Us)
	if flips != 1 {
		t.Fatalf("FlipPolicy fired %d times, want exactly 1", flips)
	}
	found := false
	for _, a := range c.Actions {
		if a.What == "flip-policy" {
			found = true
		}
	}
	if !found {
		t.Fatal("flip-policy missing from the action log")
	}
}
