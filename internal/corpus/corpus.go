// Package corpus generates synthetic data corpora with controlled
// redundancy structure. The paper's artifact compresses publicly
// available corpora and Nginx HTTP responses; this package substitutes
// deterministic generators whose entropy and match structure span the
// same regimes (highly templated HTML, natural-ish text, structured
// JSON, incompressible random bytes, and trivially compressible zeros),
// so compression-ratio orderings and the Deflate DSA's hash-bank
// behaviour are exercised the same way.
//
// All generators are seeded and deterministic, which keeps every
// benchmark and figure in the reproduction repeatable bit-for-bit.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind selects a corpus generator.
type Kind int

// Supported corpus kinds, ordered roughly from most to least compressible.
const (
	Zeros  Kind = iota // all zero bytes: best case for LZ77
	HTML               // templated markup, heavy long-range repetition
	Text               // word-sampled prose, moderate repetition
	JSON               // structured records with repeated keys
	Random             // uniform random bytes: incompressible
)

// String returns the corpus kind name.
func (k Kind) String() string {
	switch k {
	case Zeros:
		return "zeros"
	case HTML:
		return "html"
	case Text:
		return "text"
	case JSON:
		return "json"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every corpus kind, in compressibility order.
func AllKinds() []Kind { return []Kind{Zeros, HTML, Text, JSON, Random} }

// Generate produces size bytes of the requested corpus kind using the
// given seed. The same (kind, size, seed) triple always yields the same
// bytes.
func Generate(kind Kind, size int, seed int64) []byte {
	if size <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case Zeros:
		return make([]byte, size)
	case HTML:
		return genHTML(rng, size)
	case Text:
		return genText(rng, size)
	case JSON:
		return genJSON(rng, size)
	case Random:
		b := make([]byte, size)
		rng.Read(b)
		return b
	default:
		panic(fmt.Sprintf("corpus: unknown kind %d", int(kind)))
	}
}

// wordList is a small vocabulary with a Zipf-ish sampling in genText; a
// compact vocabulary yields the medium-distance LZ matches typical of
// natural text.
var wordList = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"memory", "network", "protocol", "server", "cache", "bandwidth",
	"request", "response", "channel", "buffer", "packet", "stream",
	"latency", "throughput", "encryption", "compression", "offload",
	"accelerator", "datacenter", "connection", "processing", "hardware",
}

func genText(rng *rand.Rand, size int) []byte {
	var b strings.Builder
	b.Grow(size + 16)
	sentenceLen := 0
	for b.Len() < size {
		// Zipf-like: favor early words quadratically.
		idx := rng.Intn(len(wordList))
		if rng.Intn(2) == 0 {
			idx = rng.Intn(idx + 1)
		}
		w := wordList[idx]
		if sentenceLen == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		b.WriteString(w)
		sentenceLen++
		if sentenceLen > 6+rng.Intn(10) {
			b.WriteString(". ")
			sentenceLen = 0
		} else {
			b.WriteByte(' ')
		}
	}
	return []byte(b.String())[:size]
}

var htmlTags = []string{"div", "span", "p", "li", "td", "a", "h2", "section"}
var htmlClasses = []string{"nav-item", "content", "header", "footer", "row", "col-md-4", "btn btn-primary", "card"}

func genHTML(rng *rand.Rand, size int) []byte {
	var b strings.Builder
	b.Grow(size + 64)
	b.WriteString("<!DOCTYPE html>\n<html>\n<head><title>Synthetic page</title></head>\n<body>\n")
	for b.Len() < size {
		tag := htmlTags[rng.Intn(len(htmlTags))]
		class := htmlClasses[rng.Intn(len(htmlClasses))]
		fmt.Fprintf(&b, "<%s class=\"%s\" id=\"e%d\">", tag, class, rng.Intn(1000))
		// Inline a short run of text content.
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			b.WriteString(wordList[rng.Intn(len(wordList))])
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "</%s>\n", tag)
	}
	return []byte(b.String())[:size]
}

var jsonKeys = []string{"id", "timestamp", "user_id", "status", "payload", "region", "latency_us", "bytes"}

func genJSON(rng *rand.Rand, size int) []byte {
	var b strings.Builder
	b.Grow(size + 64)
	b.WriteString("[")
	first := true
	for b.Len() < size {
		if !first {
			b.WriteString(",")
		}
		first = false
		b.WriteString("{")
		for i, k := range jsonKeys {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%q:%d", k, rng.Intn(100000))
		}
		b.WriteString("}")
	}
	b.WriteString("]")
	return []byte(b.String())[:size]
}

// File is a named corpus blob, mirroring the files an Nginx document
// root would serve in the paper's testbed.
type File struct {
	Name string
	Kind Kind
	Data []byte
}

// DocumentRoot builds a deterministic set of files of the given size,
// one per corpus kind, named like web assets. The web-server model
// serves these in the Fig. 3/11/12 experiments.
func DocumentRoot(fileSize int, seed int64) []File {
	kinds := AllKinds()
	files := make([]File, 0, len(kinds))
	for i, k := range kinds {
		name := fmt.Sprintf("/%s_%dB.bin", k, fileSize)
		files = append(files, File{Name: name, Kind: k, Data: Generate(k, fileSize, seed+int64(i))})
	}
	return files
}
