package corpus

import (
	"bytes"
	"compress/flate"
	"io"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range AllKinds() {
		a := Generate(k, 4096, 7)
		b := Generate(k, 4096, 7)
		if !bytes.Equal(a, b) {
			t.Errorf("%v: same seed produced different data", k)
		}
		c := Generate(k, 4096, 8)
		if k != Zeros && bytes.Equal(a, c) {
			t.Errorf("%v: different seeds produced identical data", k)
		}
	}
}

func TestGenerateExactSize(t *testing.T) {
	for _, k := range AllKinds() {
		for _, size := range []int{1, 63, 64, 4096, 16384} {
			if got := len(Generate(k, size, 1)); got != size {
				t.Errorf("%v size %d: got %d bytes", k, size, got)
			}
		}
	}
}

func TestGenerateZeroAndNegativeSize(t *testing.T) {
	if Generate(Text, 0, 1) != nil {
		t.Error("size 0 should return nil")
	}
	if Generate(Text, -5, 1) != nil {
		t.Error("negative size should return nil")
	}
}

// flateRatio measures how well the standard library compresses the data,
// anchoring our compressibility-ordering property to a reference codec.
func flateRatio(t *testing.T, data []byte) float64 {
	t.Helper()
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	return float64(len(data)) / float64(buf.Len())
}

func TestCompressibilityOrdering(t *testing.T) {
	// The kinds are declared from most to least compressible; verify the
	// ordering holds under a reference codec (allowing HTML/Text/JSON to
	// be close, but requiring the extremes to be far apart).
	const n = 16384
	zeros := flateRatio(t, Generate(Zeros, n, 1))
	html := flateRatio(t, Generate(HTML, n, 1))
	random := flateRatio(t, Generate(Random, n, 1))
	if zeros < 50 {
		t.Errorf("zeros ratio = %.1f, want very high", zeros)
	}
	if html < 2 {
		t.Errorf("html ratio = %.1f, want >= 2", html)
	}
	if random > 1.1 {
		t.Errorf("random ratio = %.2f, want ~1 (incompressible)", random)
	}
	if !(zeros > html && html > random) {
		t.Errorf("ordering violated: zeros=%.1f html=%.1f random=%.2f", zeros, html, random)
	}
}

func TestGeneratedDataRoundTripsThroughFlate(t *testing.T) {
	for _, k := range AllKinds() {
		data := Generate(k, 8192, 3)
		var buf bytes.Buffer
		w, _ := flate.NewWriter(&buf, flate.BestSpeed)
		w.Write(data)
		w.Close()
		r := flate.NewReader(&buf)
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%v: inflate error: %v", k, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("%v: round trip mismatch", k)
		}
	}
}

func TestHTMLLooksLikeMarkup(t *testing.T) {
	data := string(Generate(HTML, 2048, 1))
	if !strings.Contains(data, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	if !strings.Contains(data, "class=") {
		t.Error("missing class attributes")
	}
}

func TestJSONStructure(t *testing.T) {
	data := string(Generate(JSON, 2048, 1))
	if !strings.HasPrefix(data, "[{") {
		t.Errorf("json should start with [{, got %q", data[:8])
	}
	if !strings.Contains(data, `"timestamp":`) {
		t.Error("missing expected key")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Zeros: "zeros", HTML: "html", Text: "text", JSON: "json", Random: "random"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestDocumentRoot(t *testing.T) {
	files := DocumentRoot(4096, 42)
	if len(files) != len(AllKinds()) {
		t.Fatalf("got %d files, want %d", len(files), len(AllKinds()))
	}
	seen := map[string]bool{}
	for _, f := range files {
		if len(f.Data) != 4096 {
			t.Errorf("%s: size %d, want 4096", f.Name, len(f.Data))
		}
		if seen[f.Name] {
			t.Errorf("duplicate name %s", f.Name)
		}
		seen[f.Name] = true
		if !strings.HasPrefix(f.Name, "/") {
			t.Errorf("name %s should be an absolute path", f.Name)
		}
	}
}

func TestGenerateUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown kind")
		}
	}()
	Generate(Kind(42), 16, 1)
}
