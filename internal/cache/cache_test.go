package cache

import (
	"bytes"
	"testing"
)

func tiny() *Cache {
	// 2 sets x 4 ways x 64B = 512B cache for deterministic eviction tests.
	return MustNew(Config{SizeBytes: 512, Ways: 4})
}

func lineData(b byte) []byte { return bytes.Repeat([]byte{b}, LineSize) }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{SizeBytes: 512, Ways: 0}); err == nil {
		t.Error("0 ways accepted")
	}
	if _, err := New(Config{SizeBytes: 500, Ways: 4}); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := New(Config{SizeBytes: 3 * 4 * 64, Ways: 4}); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if _, err := New(DefaultXeonLLC()); err != nil {
		t.Errorf("default LLC invalid: %v", err)
	}
}

func TestReadMissFillHit(t *testing.T) {
	c := tiny()
	buf := make([]byte, LineSize)
	if c.Read(0x1000, ClassCPU, buf) {
		t.Fatal("cold read hit")
	}
	if v := c.Fill(0x1000, ClassCPU, lineData(0xAA)); v != nil {
		t.Fatal("fill into empty cache evicted")
	}
	if !c.Read(0x1000, ClassCPU, buf) {
		t.Fatal("read after fill missed")
	}
	if !bytes.Equal(buf, lineData(0xAA)) {
		t.Fatal("read data wrong")
	}
	st := c.Stats()
	if st.Accesses[ClassCPU] != 2 || st.Misses[ClassCPU] != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteDirtyAndWriteback(t *testing.T) {
	c := tiny()
	c.Fill(0x1000, ClassCPU, lineData(0))
	if !c.Write(0x1000, ClassCPU, lineData(0xBB)) {
		t.Fatal("write to present line missed")
	}
	if !c.IsDirty(0x1000) {
		t.Fatal("write did not mark dirty")
	}
	v := c.FlushLine(0x1000)
	if v == nil || !v.Dirty || v.Addr != 0x1000 {
		t.Fatalf("flush victim %+v", v)
	}
	if !bytes.Equal(v.Data[:], lineData(0xBB)) {
		t.Fatal("writeback data wrong")
	}
	if c.Contains(0x1000) {
		t.Fatal("line survived flush")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 2 sets, 4 ways; same-set stride = 2*64 = 128
	base := uint64(0)
	// Fill 4 ways of set 0.
	for i := 0; i < 4; i++ {
		c.Fill(base+uint64(i)*128, ClassCPU, lineData(byte(i)))
	}
	// Touch line 0 so line 1 becomes LRU.
	buf := make([]byte, LineSize)
	c.Read(base, ClassCPU, buf)
	v := c.Fill(base+4*128, ClassCPU, lineData(4))
	if v == nil || v.Addr != base+1*128 {
		t.Fatalf("expected LRU victim at %#x, got %+v", base+128, v)
	}
	if v.Dirty {
		t.Fatal("clean victim marked dirty")
	}
}

func TestFillDirtyVictimCarriesData(t *testing.T) {
	c := tiny()
	for i := 0; i < 4; i++ {
		c.FillDirty(uint64(i)*128, ClassCPU, lineData(byte(i)))
	}
	v := c.FillDirty(4*128, ClassCPU, lineData(9))
	if v == nil || !v.Dirty {
		t.Fatalf("dirty victim expected, got %+v", v)
	}
	if !bytes.Equal(v.Data[:], lineData(0)) {
		t.Fatal("victim data wrong")
	}
}

func TestCATWayMaskRestrictsAllocation(t *testing.T) {
	c := tiny()
	c.SetWayMask(ClassDMA, 0b0001) // DMA may only use way 0
	// Two DMA fills to the same set must evict each other.
	v1 := c.FillDirty(0, ClassDMA, lineData(1))
	v2 := c.FillDirty(128, ClassDMA, lineData(2))
	if v1 != nil {
		t.Fatal("first DMA fill evicted")
	}
	if v2 == nil || v2.Addr != 0 {
		t.Fatalf("second DMA fill should evict the first, got %+v", v2)
	}
	// CPU fills are unrestricted and do not evict the DMA line.
	c.Fill(256, ClassCPU, lineData(3))
	if !c.Contains(128) {
		t.Fatal("CPU fill evicted DMA line despite free ways")
	}
	if c.EffectiveWays(ClassDMA) != 1 || c.EffectiveWays(ClassCPU) != 4 {
		t.Fatalf("effective ways %d/%d", c.EffectiveWays(ClassDMA), c.EffectiveWays(ClassCPU))
	}
}

func TestDDIOLeakToDRAM(t *testing.T) {
	// Observation 3: DMA data with long usage distance leaks to DRAM.
	// With DDIO limited to 2 ways, streaming DMA fills evict earlier DMA
	// lines before the CPU reads them.
	c := MustNew(Config{SizeBytes: 64 * 1024, Ways: 8, WayMask: [numClasses]uint64{ClassDMA: 0b11}})
	leaked := 0
	var addrs []uint64
	for i := 0; i < 1024; i++ {
		addr := uint64(i) * LineSize
		addrs = append(addrs, addr)
		if v := c.FillDirty(addr, ClassDMA, lineData(byte(i))); v != nil && v.Dirty {
			leaked++
		}
	}
	if leaked == 0 {
		t.Fatal("no DDIO leakage under streaming DMA")
	}
	// The CPU now consumes the buffers: most reads must miss.
	buf := make([]byte, LineSize)
	misses := 0
	for _, a := range addrs {
		if !c.Read(a, ClassCPU, buf) {
			misses++
		}
	}
	if misses < len(addrs)/2 {
		t.Fatalf("only %d/%d misses; DDIO model not leaking", misses, len(addrs))
	}
}

func TestFlushRange(t *testing.T) {
	c := tiny()
	c.FillDirty(0, ClassCPU, lineData(1))
	c.Fill(64, ClassCPU, lineData(2))
	// 0x2000 not cached.
	var wbs []Victim
	present := c.FlushRange(0, 192, func(v Victim) { wbs = append(wbs, v) })
	if present != 2 {
		t.Fatalf("present = %d, want 2", present)
	}
	if len(wbs) != 1 || wbs[0].Addr != 0 {
		t.Fatalf("writebacks = %+v", wbs)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("lines survived FlushRange")
	}
}

func TestOccupancyOf(t *testing.T) {
	c := tiny()
	c.Fill(0, ClassCPU, lineData(1))
	c.Fill(64, ClassCPU, lineData(2))
	if got := c.OccupancyOf(0, 256); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	if got := c.OccupancyOf(1024, 256); got != 0 {
		t.Fatalf("occupancy of empty range = %d", got)
	}
}

func TestSampleMissRateWindow(t *testing.T) {
	c := tiny()
	buf := make([]byte, LineSize)
	c.Read(0, ClassCPU, buf) // miss
	c.Fill(0, ClassCPU, lineData(0))
	c.Read(0, ClassCPU, buf) // hit
	if r := c.SampleMissRate(); r != 0.5 {
		t.Fatalf("window miss rate = %v, want 0.5", r)
	}
	// Window reset: no accesses since sample.
	if r := c.SampleMissRate(); r != 0 {
		t.Fatalf("empty window = %v, want 0", r)
	}
	c.Read(0, ClassCPU, buf)
	if r := c.SampleMissRate(); r != 0 {
		t.Fatalf("all-hit window = %v", r)
	}
}

func TestStatsMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle miss rate should be 0")
	}
	s.Accesses[ClassCPU] = 10
	s.Misses[ClassCPU] = 3
	s.Accesses[ClassDMA] = 10
	s.Misses[ClassDMA] = 1
	if got := s.MissRate(); got != 0.2 {
		t.Fatalf("miss rate = %v, want 0.2", got)
	}
}

func TestFillExistingLinePreservesDirty(t *testing.T) {
	c := tiny()
	c.FillDirty(0, ClassCPU, lineData(1))
	c.Fill(0, ClassCPU, lineData(2)) // re-fill clean over dirty line
	if !c.IsDirty(0) {
		t.Fatal("re-fill cleared dirty bit")
	}
	buf := make([]byte, LineSize)
	c.Read(0, ClassCPU, buf)
	if !bytes.Equal(buf, lineData(2)) {
		t.Fatal("re-fill did not update data")
	}
}

func TestClassString(t *testing.T) {
	if ClassCPU.String() != "cpu" || ClassDMA.String() != "dma" {
		t.Fatal("class names")
	}
}

func BenchmarkCacheReadHit(b *testing.B) {
	c := MustNew(DefaultXeonLLC())
	c.Fill(0x4000, ClassCPU, lineData(1))
	buf := make([]byte, LineSize)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		c.Read(0x4000, ClassCPU, buf)
	}
}
