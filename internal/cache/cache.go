// Package cache models a last-level cache with the two features the
// paper's evaluation leans on:
//
//   - Direct Cache Access (Intel DDIO): DMA traffic from the NIC and
//     storage allocates into a restricted subset of ways, and when the
//     "usage distance" of DMA data is long the lines leak to DRAM before
//     the CPU consumes them (§II, Observation 3);
//   - Cache Allocation Technology (CAT): way masks shrink the LLC seen
//     by an allocation class, which is how Fig. 10 provisions 10-50MB
//     LLCs for the scratchpad-equilibrium experiment.
//
// The cache is functional: lines carry their 64 bytes of data, so dirty
// writebacks deliver real content to the DIMM model — that is the
// mechanism behind SmartDIMM's self-recycling (§IV-B), where an LLC
// writeback of a destination-buffer cacheline triggers the wrCAS that
// swaps in the DSA's result.
package cache

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// Class labels an allocation class for CAT masking and statistics.
type Class int

// Allocation classes used by the system model.
const (
	ClassCPU Class = iota // demand traffic from cores
	ClassDMA              // device DMA via DDIO
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassCPU:
		return "cpu"
	case ClassDMA:
		return "dma"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Victim describes a line evicted or flushed from the cache.
type Victim struct {
	Addr  uint64
	Dirty bool
	Data  [LineSize]byte
}

// Stats tracks per-class access outcomes plus writeback counts.
type Stats struct {
	Accesses   [numClasses]uint64
	Misses     [numClasses]uint64
	Writebacks uint64 // dirty evictions + dirty flushes
	Fills      uint64
}

// MissRate returns the aggregate miss rate across classes, 0 when idle.
func (s *Stats) MissRate() float64 {
	var acc, miss uint64
	for c := 0; c < int(numClasses); c++ {
		acc += s.Accesses[c]
		miss += s.Misses[c]
	}
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

type line struct {
	tag     uint64
	data    [LineSize]byte
	valid   bool
	dirty   bool
	lastUse uint64
	class   Class
}

// Config sizes the cache.
type Config struct {
	SizeBytes int
	Ways      int
	// WayMask[class] restricts which ways the class may allocate into;
	// zero means "all ways". Lookups always search every way.
	WayMask [numClasses]uint64
}

// DefaultXeonLLC returns the testbed-like LLC: the Xeon Gold 6242 has a
// 22MB L3; we model 22MB, 11 ways (2MB per way, matching CAT's way
// granularity on that part), with DDIO limited to 2 ways.
func DefaultXeonLLC() Config {
	return Config{
		SizeBytes: 22 << 20,
		Ways:      11,
		WayMask:   [numClasses]uint64{ClassDMA: 0b11},
	}
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement and per-class way masking.
type Cache struct {
	cfg     Config
	sets    [][]line
	setMask uint64
	tick    uint64
	stats   Stats
	// window counters for miss-rate sampling (adaptive offload probe)
	winAcc, winMiss uint64
}

// New builds a cache; SizeBytes must be a multiple of Ways*LineSize and
// the resulting set count a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 || cfg.Ways > 64 {
		return nil, fmt.Errorf("cache: ways = %d out of range", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.Ways*LineSize) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*linesize", cfg.SizeBytes)
	}
	nSets := cfg.SizeBytes / (cfg.Ways * LineSize)
	if nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", nSets)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, nSets), setMask: uint64(nSets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// MustNew is New that panics on error. It exists for tests and
// compile-time-fixed configurations only: a failure means the literal
// config in the source is invalid — a programmer error, which is the
// one class of failure the codebase still panics on. Anything built
// from runtime input must call New and propagate the error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetWayMask applies a CAT mask for a class; 0 restores all ways.
func (c *Cache) SetWayMask(class Class, mask uint64) { c.cfg.WayMask[class] = mask }

// Stats returns a copy of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// SizeBytes returns the configured capacity.
func (c *Cache) SizeBytes() int { return c.cfg.SizeBytes }

func (c *Cache) setIndex(addr uint64) uint64 { return (addr / LineSize) & c.setMask }
func (c *Cache) tagOf(addr uint64) uint64    { return addr / LineSize }

// lookup returns the way holding addr, or -1.
func (c *Cache) lookup(addr uint64) int {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return w
		}
	}
	return -1
}

// Contains reports whether the line is cached, without touching LRU or
// statistics (a probe, not an access).
func (c *Cache) Contains(addr uint64) bool { return c.lookup(addr) != -1 }

// IsDirty reports whether the line is cached and dirty, without touching
// LRU or statistics.
func (c *Cache) IsDirty(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	w := c.lookup(addr)
	return w != -1 && set[w].dirty
}

// Read performs a demand read of the line containing addr. On a hit the
// line data is copied into dst (which must hold 64 bytes) and ok=true.
// On a miss ok=false and the caller must obtain the line from memory and
// call Fill.
func (c *Cache) Read(addr uint64, class Class, dst []byte) (ok bool) {
	c.tick++
	c.stats.Accesses[class]++
	c.winAcc++
	w := c.lookup(addr)
	if w == -1 {
		c.stats.Misses[class]++
		c.winMiss++
		return false
	}
	set := c.sets[c.setIndex(addr)]
	set[w].lastUse = c.tick
	copy(dst, set[w].data[:])
	return true
}

// Write performs a demand write of a full line. On a hit the line is
// updated and marked dirty. On a miss ok=false; with write-allocate the
// caller Fills the line (fetching old content if the write is partial)
// and retries, or uses FillDirty directly for a full-line write.
func (c *Cache) Write(addr uint64, class Class, src []byte) (ok bool) {
	c.tick++
	c.stats.Accesses[class]++
	c.winAcc++
	w := c.lookup(addr)
	if w == -1 {
		c.stats.Misses[class]++
		c.winMiss++
		return false
	}
	set := c.sets[c.setIndex(addr)]
	set[w].lastUse = c.tick
	set[w].dirty = true
	copy(set[w].data[:], src)
	return true
}

// Fill installs a clean line fetched from memory, evicting per class
// mask + LRU if needed. The returned victim (if any) must be written
// back by the caller when dirty.
func (c *Cache) Fill(addr uint64, class Class, data []byte) *Victim {
	return c.fill(addr, class, data, false)
}

// FillDirty installs a line that is immediately dirty: a full-line CPU
// store miss (no fetch needed) or a DDIO DMA write from a device.
func (c *Cache) FillDirty(addr uint64, class Class, data []byte) *Victim {
	return c.fill(addr, class, data, true)
}

func (c *Cache) fill(addr uint64, class Class, data []byte, dirty bool) *Victim {
	c.tick++
	c.stats.Fills++
	si := c.setIndex(addr)
	set := c.sets[si]
	tag := c.tagOf(addr)

	// If present already (races between fill paths), update in place.
	if w := c.lookup(addr); w != -1 {
		copy(set[w].data[:], data)
		set[w].dirty = set[w].dirty || dirty
		set[w].lastUse = c.tick
		set[w].class = class
		return nil
	}

	mask := c.cfg.WayMask[class]
	if mask == 0 {
		mask = ^uint64(0)
	}
	// Prefer an invalid allowed way.
	victimWay := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if !set[w].valid {
			victimWay = w
			oldest = 0
			break
		}
		if set[w].lastUse < oldest {
			victimWay = w
			oldest = set[w].lastUse
		}
	}
	if victimWay == -1 {
		// Mask excluded every way (misconfigured CAT): fall back to way 0
		// behaviourally rather than dropping the line.
		victimWay = 0
	}
	var victim *Victim
	if set[victimWay].valid {
		v := &Victim{Addr: set[victimWay].tag * LineSize, Dirty: set[victimWay].dirty}
		v.Data = set[victimWay].data
		victim = v
		if v.Dirty {
			c.stats.Writebacks++
		}
	}
	set[victimWay] = line{tag: tag, valid: true, dirty: dirty, lastUse: c.tick, class: class}
	copy(set[victimWay].data[:], data)
	return victim
}

// FlushLine removes the line containing addr (clflush semantics),
// returning it for writeback if it was present. Clean lines are simply
// invalidated.
func (c *Cache) FlushLine(addr uint64) *Victim {
	w := c.lookup(addr)
	if w == -1 {
		return nil
	}
	set := c.sets[c.setIndex(addr)]
	v := &Victim{Addr: set[w].tag * LineSize, Dirty: set[w].dirty}
	v.Data = set[w].data
	set[w].valid = false
	if v.Dirty {
		c.stats.Writebacks++
	}
	return v
}

// FlushRange flushes every line in [addr, addr+size), invoking wb for
// each dirty victim in address order. It returns how many lines were
// present (dirty or clean) — the §IV-A flush-cost claim depends on how
// much of the range was actually cached.
func (c *Cache) FlushRange(addr uint64, size int, wb func(Victim)) int {
	present := 0
	start := addr &^ (LineSize - 1)
	for a := start; a < addr+uint64(size); a += LineSize {
		if v := c.FlushLine(a); v != nil {
			present++
			if v.Dirty && wb != nil {
				wb(*v)
			}
		}
	}
	return present
}

// OccupancyOf counts how many valid lines fall within [addr, addr+size).
func (c *Cache) OccupancyOf(addr uint64, size int) int {
	n := 0
	start := addr &^ (LineSize - 1)
	for a := start; a < addr+uint64(size); a += LineSize {
		if c.Contains(a) {
			n++
		}
	}
	return n
}

// SampleMissRate returns the miss rate since the previous sample and
// resets the window — the probe the adaptive offload policy calls
// periodically (§IV goals, §V-C).
func (c *Cache) SampleMissRate() float64 {
	if c.winAcc == 0 {
		return 0
	}
	r := float64(c.winMiss) / float64(c.winAcc)
	c.winAcc, c.winMiss = 0, 0
	return r
}

// EffectiveWays returns the number of ways usable by the class under its
// current mask.
func (c *Cache) EffectiveWays(class Class) int {
	mask := c.cfg.WayMask[class]
	if mask == 0 {
		return c.cfg.Ways
	}
	n := bits.OnesCount64(mask & ((1 << uint(c.cfg.Ways)) - 1))
	if n == 0 {
		return 1
	}
	return n
}
