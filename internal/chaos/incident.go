// Incident chaos: the observability-plane soak behind `./ci.sh obs`.
// It reruns the workload scenario with the flash crowd pushed past the
// two initial ranks' collapse point and the full alerting/recording
// stack armed — a 100us scraper, the default burn-rate + breaker rules,
// and a flight recorder with a 2ms lookback — and checks the incident
// narrative an on-call operator would reconstruct:
//
//   - the burn-rate page leads: the crowd alone breaches the tail, so
//     the SLO page fires before the injected rank failure trips the
//     breaker — detection from symptoms, not just from the fault event;
//   - every alert resolves: by run end each rule's last transition is
//     back to inactive (the autoscaler's added capacity absorbed the
//     crowd and the restored rank cleared the breaker);
//   - each firing froze a bundle: one incident per firing, none
//     dropped, each carrying a non-empty trace slice and a timeline
//     that correlates the cause — the breaker incident contains the
//     injected fault note, the burn incident the autoscaler's response;
//   - replayability: the run canonical (actions + alert log) and every
//     incident bundle (report + trace digest) are byte-identical from
//     the same seed, serial or pooled, at any GOMAXPROCS.
package chaos

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// IncidentReport is the soak's outcome.
type IncidentReport struct {
	Seed             int64
	Alerts           []obs.Transition
	AlertLog         string
	Incidents        []obs.Incident
	IncidentsDropped int
	SLOHeldFrac      float64
	Violations       []string
	// Canonical is the run's byte-compared replay artifact; Bundles are
	// the per-incident canonical reports (text + trace digest).
	Canonical string
	Bundles   []string
}

// incidentSoakConfig is the workload soak scenario with the crowd
// hardened and the observability plane armed; seed and pool vary.
func incidentSoakConfig(seed int64, pool *runner.Pool) workload.RunConfig {
	cfg := workloadSoakConfig(seed, pool)
	// 3.0x on base 900k peaks ~2.7M rps — at the two initial ranks'
	// collapse point, so the tail breaches from the crowd alone and the
	// burn-rate page leads the injected rank failure instead of
	// trailing it.
	cfg.Arrivals.Flash[0].Mult = 3.0
	cfg.ScrapePs = 100 * sim.Us
	cfg.Rules = workload.DefaultAlertRules(cfg.Scale.SLOPs)
	cfg.Record = true
	cfg.LookbackPs = 2 * sim.Ms
	return cfg
}

// RunIncidentSoak executes the soak once. Construction failures return
// an error; invariant breaches land in Violations.
func RunIncidentSoak(seed int64, pool *runner.Pool) (IncidentReport, error) {
	rep, err := workload.Run(incidentSoakConfig(seed, pool))
	if err != nil {
		return IncidentReport{}, err
	}
	out := IncidentReport{
		Seed: seed, Alerts: rep.Alerts, AlertLog: rep.AlertLog,
		Incidents: rep.Incidents, IncidentsDropped: rep.IncidentsDropped,
		SLOHeldFrac: rep.SLOHeldFrac, Canonical: rep.Canonical(),
	}
	for _, in := range rep.Incidents {
		out.Bundles = append(out.Bundles, in.Canonical())
	}
	v := func(format string, args ...any) {
		out.Violations = append(out.Violations, fmt.Sprintf(format, args...))
	}

	// Walk the transition log once: first firing per rule, last state
	// per rule (in first-seen order, so violations render stably).
	firstFiring := map[string]int64{}
	lastByRule := map[string]obs.Transition{}
	var ruleOrder []string
	firings := 0
	for _, tr := range rep.Alerts {
		if _, seen := lastByRule[tr.Rule]; !seen {
			ruleOrder = append(ruleOrder, tr.Rule)
		}
		lastByRule[tr.Rule] = tr
		if tr.To == obs.Firing {
			firings++
			if _, ok := firstFiring[tr.Rule]; !ok {
				firstFiring[tr.Rule] = tr.AtPs
			}
		}
	}
	burnAt, burnOK := firstFiring["slo-burn"]
	tripAt, tripOK := firstFiring["breaker-trip"]
	if !burnOK {
		v("burn-rate page never fired")
	}
	if !tripOK {
		v("breaker-trip alert never fired")
	}
	if burnOK && tripOK && burnAt >= tripAt {
		v("burn-rate page at %d did not lead the breaker alert at %d", burnAt, tripAt)
	}
	for _, rule := range ruleOrder {
		if tr := lastByRule[rule]; tr.To != obs.Inactive {
			v("rule %s ended %s at %d (never resolved)", rule, tr.To, tr.AtPs)
		}
	}

	// Every firing froze exactly one bundle, and each bundle correlates
	// its cause.
	if len(rep.Incidents) != firings {
		v("%d incidents captured for %d firings", len(rep.Incidents), firings)
	}
	if rep.IncidentsDropped != 0 {
		v("%d incidents dropped", rep.IncidentsDropped)
	}
	for _, in := range rep.Incidents {
		if !strings.Contains(in.Report, "rule="+in.Rule) {
			v("incident at %d misattributed (rule %q not in report header)", in.AtPs, in.Rule)
		}
		if in.Trace == nil || in.Trace.Len() == 0 {
			v("incident %s at %d carries no trace slice", in.Rule, in.AtPs)
		}
		if in.Rule == "breaker-trip" && !strings.Contains(in.Report, " fault ") {
			v("breaker incident at %d missing the injected fault from its timeline", in.AtPs)
		}
		if in.Rule == "slo-burn" && !strings.Contains(in.Report, " action ") {
			v("burn incident at %d missing the autoscaler response from its timeline", in.AtPs)
		}
	}

	// This is a genuine incident run: the SLO must actually have been
	// violated for a stretch, and the controller must still not thrash.
	if rep.SLOHeldFrac > 0.9 {
		v("SLO held %.0f%% of ticks — the scenario never became an incident", rep.SLOHeldFrac*100)
	}
	if rep.Completed == 0 {
		v("no requests completed")
	}
	checkNoFlap(splitActions(rep.Actions), v)
	return out, nil
}
