package chaos

// Incident-soak tests: the pinned scenario must reproduce the full
// alert narrative — burn-rate page, breaker alert, both resolved — with
// one incident bundle per firing, and the run canonical plus every
// bundle must replay byte-identically from the seed, serial or pooled,
// at GOMAXPROCS 1 and 2.

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/runner"
)

// The deterministic alert sequence for seed 7 (calibrated against the
// pinned scenario): the crowd breaches the tail at 3.8ms, the page
// fires at 4.0ms, the injected fault trips the breaker alert at 4.2ms,
// the breaker resolves when the trip slides out of its window, and the
// page resolves once the scaled-up fleet drains the backlog.
var wantAlertLog = strings.Join([]string{
	"3800000000 slo-burn inactive->pending v=2.4",
	"4000000000 slo-burn pending->firing v=3.2",
	"4200000000 breaker-trip inactive->firing v=1",
	"4500000000 breaker-trip firing->inactive v=0",
	"9800000000 slo-burn firing->inactive v=2",
	"",
}, "\n")

func TestIncidentSoak(t *testing.T) {
	rep, err := RunIncidentSoak(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.AlertLog != wantAlertLog {
		t.Fatalf("alert log:\n%swant:\n%s", rep.AlertLog, wantAlertLog)
	}
	if len(rep.Incidents) != 2 {
		t.Fatalf("%d incidents, want 2", len(rep.Incidents))
	}
	// Bundle order is firing order: page first, breaker second.
	if rep.Incidents[0].Rule != "slo-burn" || rep.Incidents[1].Rule != "breaker-trip" {
		t.Fatalf("incident order = [%s %s], want [slo-burn breaker-trip]",
			rep.Incidents[0].Rule, rep.Incidents[1].Rule)
	}
	// The breaker bundle's 2ms lookback reaches back across the page:
	// its timeline must correlate the fault, the page, and the
	// autoscaler's first admission.
	breaker := rep.Incidents[1].Report
	for _, want := range []string{
		"fault fail rank1",
		"alert slo-burn pending->firing",
		"3600000000 action admit d2",
	} {
		if !strings.Contains(breaker, want) {
			t.Errorf("breaker bundle missing %q:\n%s", want, breaker)
		}
	}
	// Each bundle pins its trace slice with a digest.
	for i, b := range rep.Bundles {
		if !strings.Contains(b, "trace_sha256 ") {
			t.Errorf("bundle %d has no trace digest", i)
		}
	}
	t.Logf("incident soak: slo_held=%.0f%% alerts=%d bundles=%d",
		rep.SLOHeldFrac*100, len(rep.Alerts), len(rep.Bundles))
}

func TestIncidentSoakReplaysFromSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("replay soak is the long half of the gate")
	}
	ref, err := RunIncidentSoak(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, got IncidentReport) {
		t.Helper()
		if got.Canonical != ref.Canonical {
			t.Fatalf("%s canonical differs from serial:\n--- serial ---\n%s--- %s ---\n%s",
				label, ref.Canonical, label, got.Canonical)
		}
		if len(got.Bundles) != len(ref.Bundles) {
			t.Fatalf("%s captured %d bundles, serial %d", label, len(got.Bundles), len(ref.Bundles))
		}
		for i := range ref.Bundles {
			if got.Bundles[i] != ref.Bundles[i] {
				t.Fatalf("%s bundle %d differs from serial:\n--- serial ---\n%s--- %s ---\n%s",
					label, i, ref.Bundles[i], label, got.Bundles[i])
			}
		}
	}
	pooled, err := RunIncidentSoak(7, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	check("pooled", pooled)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		again, err := RunIncidentSoak(7, runner.New(0))
		if err != nil {
			t.Fatal(err)
		}
		runtime.GOMAXPROCS(prev)
		check("gomaxprocs", again)
	}
	other, err := RunIncidentSoak(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Canonical == ref.Canonical {
		t.Fatal("different seeds produced identical canonical reports")
	}
}
