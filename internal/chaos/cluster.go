// Cluster chaos: the replication-tier soak. Each schedule derives a
// random fault plan from its seed — node kills with later rejoins,
// symmetric and asymmetric network partitions, a graceful drain, and
// background per-link packet loss — runs it against a replicated
// cluster through warmup -> chaos -> heal -> settle phases, and then
// replays the recorded client history through the linearizability
// checker: no client-acked write may be lost, no read may travel back
// in time, regardless of what the schedule did to the nodes.
//
// Every schedule is seed-replayable and renders to one canonical report
// string; the cluster determinism gate requires the report and the
// merged trace byte-identical across ExecWorkers/GOMAXPROCS, so the
// soak doubles as a nondeterminism detector for the failover paths.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ClusterSoakConfig sizes one RunCluster schedule.
type ClusterSoakConfig struct {
	Nodes       int   // server nodes (default 3)
	Conns       int   // client connections (default 4)
	WarmupPs    int64 // leader election + steady state (default 2ms)
	ChaosPs     int64 // fault window (default 6ms)
	SettlePs    int64 // post-heal catch-up before checking (default 3ms)
	ExecWorkers int   // epoch parallelism: 0 = GOMAXPROCS, 1 = serial
	Trace       bool  // thread per-shard tracers through the run
}

// ClusterReport is one schedule's canonical outcome.
type ClusterReport struct {
	Seed  int64
	Nodes int
	// Schedule lists the derived fault plan, one canonical line per
	// event, in firing order.
	Schedule []string
	// Client-observed outcome over the chaos window.
	Ops         uint64
	AckedWrites uint64
	AckedReads  uint64
	Timeouts    uint64
	Retries     uint64
	Promotions  uint64
	Net         cluster.NetTotals
	// Check is the linearizability verdict; Violations folds its
	// breaches plus soak-level liveness checks.
	Check      cluster.CheckReport
	Violations []string
}

// Ok reports whether the schedule passed every invariant.
func (r ClusterReport) Ok() bool { return len(r.Violations) == 0 && r.Check.Ok() }

// Collect implements telemetry.Collector.
func (r ClusterReport) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "nodes", Value: float64(r.Nodes)})
	emit(telemetry.Sample{Name: "ops", Value: float64(r.Ops)})
	emit(telemetry.Sample{Name: "acked_writes", Value: float64(r.AckedWrites)})
	emit(telemetry.Sample{Name: "acked_reads", Value: float64(r.AckedReads)})
	emit(telemetry.Sample{Name: "timeouts", Value: float64(r.Timeouts)})
	emit(telemetry.Sample{Name: "retries", Value: float64(r.Retries)})
	emit(telemetry.Sample{Name: "promotions", Value: float64(r.Promotions)})
	emit(telemetry.Sample{Name: "check_violations", Value: float64(r.Check.ViolationCount)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

// String renders the canonical soak transcript — the byte-compared
// artifact of the cluster determinism gate.
func (r ClusterReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster chaos seed=%d nodes=%d\n", r.Seed, r.Nodes)
	for _, s := range r.Schedule {
		fmt.Fprintf(&b, "  plan %s\n", s)
	}
	fmt.Fprintf(&b, "ops=%d acked_writes=%d acked_reads=%d timeouts=%d retries=%d promotions=%d\n",
		r.Ops, r.AckedWrites, r.AckedReads, r.Timeouts, r.Retries, r.Promotions)
	fmt.Fprintf(&b, "net sent=%d dropped=%d retrans=%d delivered=%d expired=%d\n",
		r.Net.Sent, r.Net.Dropped, r.Net.Retrans, r.Net.Delivered, r.Net.Expired)
	b.WriteString(r.Check.String())
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}

// clusterSchedule is the fault plan derived from one seed.
type clusterSchedule struct {
	lines      []string
	kills      [][2]int64 // per victim: [killPs, rejoinPs)
	victims    []int
	partitions fault.Partitions
	lossProb   float64
	drainNode  int // -1 = none
	drainAt    int64
	undrainAt  int64
}

// deriveSchedule rolls a fault plan inside [warmup, warmup+chaos): one
// or two node kills (distinct victims, rejoining before heal), one to
// three partition windows over random endpoint splits (router
// included; asymmetric half the time), background per-link loss, and —
// half the time — a drain of a surviving node.
func deriveSchedule(rng *rand.Rand, nodes int, warmupPs, chaosPs int64) clusterSchedule {
	sc := clusterSchedule{drainNode: -1}
	healPs := warmupPs + chaosPs
	span := func(maxFrac float64) (int64, int64) {
		from := warmupPs + int64(rng.Float64()*0.5*float64(chaosPs))
		dur := int64((0.1 + rng.Float64()*maxFrac) * float64(chaosPs))
		to := from + dur
		if to > healPs {
			to = healPs
		}
		return from, to
	}

	nKills := 1 + rng.Intn(2)
	perm := rng.Perm(nodes)
	for k := 0; k < nKills; k++ {
		victim := perm[k]
		from, to := span(0.4)
		sc.victims = append(sc.victims, victim)
		sc.kills = append(sc.kills, [2]int64{from, to})
		sc.lines = append(sc.lines, fmt.Sprintf("kill node=%d at=%dps rejoin=%dps", victim, from, to))
	}

	nParts := 1 + rng.Intn(3)
	for p := 0; p < nParts; p++ {
		// Split the endpoint space (0 = router, 1+i = node i) into two
		// non-empty sides.
		eps := rng.Perm(nodes + 1)
		cut := 1 + rng.Intn(nodes)
		a := append([]int(nil), eps[:cut]...)
		b := append([]int(nil), eps[cut:]...)
		sort.Ints(a)
		sort.Ints(b)
		from, to := span(0.3)
		part := fault.Partition{FromPs: from, ToPs: to, A: a, B: b, OneWay: rng.Intn(2) == 0}
		sc.partitions = append(sc.partitions, part)
		sc.lines = append(sc.lines, fmt.Sprintf("partition a=%v b=%v from=%dps to=%dps oneway=%v",
			a, b, from, to, part.OneWay))
	}

	sc.lossProb = 0.002 + rng.Float64()*0.01
	sc.lines = append(sc.lines, fmt.Sprintf("loss prob=%.4f", sc.lossProb))

	if rng.Intn(2) == 0 {
		// Drain a node that is not being killed, if one exists.
		for _, cand := range perm[nKills:] {
			sc.drainNode = cand
			break
		}
		if sc.drainNode >= 0 {
			sc.drainAt, _ = span(0.2)
			sc.undrainAt = healPs
			sc.lines = append(sc.lines, fmt.Sprintf("drain node=%d at=%dps undrain=%dps",
				sc.drainNode, sc.drainAt, sc.undrainAt))
		}
	}
	return sc
}

// RunCluster executes one seed-replayable cluster chaos schedule and
// checks it. The returned error reports harness construction failures
// only; invariant breaches land in the report. The cluster comes back
// alongside so callers can fingerprint its merged trace.
func RunCluster(seed int64, cfg ClusterSoakConfig) (ClusterReport, *cluster.Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.WarmupPs <= 0 {
		cfg.WarmupPs = 2 * sim.Ms
	}
	if cfg.ChaosPs <= 0 {
		cfg.ChaosPs = 6 * sim.Ms
	}
	if cfg.SettlePs <= 0 {
		cfg.SettlePs = 3 * sim.Ms
	}
	rep := ClusterReport{Seed: seed, Nodes: cfg.Nodes}

	sched := deriveSchedule(rand.New(rand.NewSource(seed^0x5eed)), cfg.Nodes, cfg.WarmupPs, cfg.ChaosPs)
	rep.Schedule = sched.lines

	c, err := cluster.New(cluster.Config{
		Nodes: cfg.Nodes, Conns: cfg.Conns,
		MsgSize: 1024, Workers: 2, NodeConns: 2,
		FileKind: corpus.Text, Seed: seed,
		Trace: cfg.Trace, ExecWorkers: cfg.ExecWorkers,
		NetFaults: func(ep int) *fault.Injector {
			// One injector per endpoint (shard-owned), every endpoint
			// arming the same value-typed partition windows — that is how
			// a partition cuts both directions from two different
			// injectors without shared state. Loss streams stay
			// per-endpoint-independent via the injector seed.
			inj := fault.New(seed + int64(ep)*7919)
			inj.Arm(cluster.SiteNetCut, sched.partitions)
			for d := 0; d <= cfg.Nodes; d++ {
				if d != ep {
					inj.Arm(fmt.Sprintf("%s.%d", cluster.SiteNetDrop, d), fault.Bernoulli{Prob: sched.lossProb})
				}
			}
			return inj
		},
	})
	if err != nil {
		return rep, nil, err
	}
	for k, victim := range sched.victims {
		c.KillAt(victim, sched.kills[k][0])
		c.RejoinAt(victim, sched.kills[k][1])
	}
	if sched.drainNode >= 0 {
		c.DrainAt(sched.drainNode, sched.drainAt)
		c.UndrainAt(sched.drainNode, sched.undrainAt)
	}

	healPs := cfg.WarmupPs + cfg.ChaosPs
	c.Start()
	c.RunUntil(cfg.WarmupPs)
	c.BeginMeasurement()
	c.RunUntil(healPs)          // partitions end, victims rejoined
	c.RunUntil(healPs + sim.Ms) // post-heal serving window (availability proof)
	m, err := c.Collect()
	if err != nil {
		return rep, c, err
	}
	c.Quiesce(cfg.SettlePs)

	rep.Ops, rep.AckedWrites, rep.AckedReads = m.Ops, m.AckedWrites, m.AckedReads
	rep.Timeouts, rep.Retries, rep.Promotions = m.Timeouts, m.Retries, m.Promotions
	rep.Net = c.Net().Totals()
	rep.Check = c.Check()
	healed := false
	for _, op := range c.History() {
		if op.Kind == cluster.OpWrite && op.AckPs >= healPs {
			healed = true
			break
		}
	}
	if !healed {
		rep.Violations = append(rep.Violations, "no write acked after heal (availability did not recover)")
	}
	if rep.Net.Dropped == 0 {
		rep.Violations = append(rep.Violations, "schedule dropped no messages — chaos not wired through")
	}
	return rep, c, nil
}
