// Package chaos drives randomized, seed-reproducible fault schedules
// across every layer of the simulator at once — DRAM ALERT_N, memory
// controller CRC retries, DSA faults, translation-table insert failures
// — while running real offload traffic, and checks the invariants that
// must survive any fault the injector can express:
//
//   - round trips stay bit-exact: a TLS record that Process encrypted
//     (or a page the Deflate DSA compressed) must decrypt/inflate back
//     to the staged payload, whether it took the DSA path or any rung
//     of the degradation ladder (Force-Recycle, CPU fallback);
//   - failures are typed: the only errors an operation may surface are
//     the degradable set the offload layer recovers from
//     (core.ErrNoScratchpad, core.ErrTranslationInsert, core.ErrDSAFault,
//     memctrl.ErrAlertRetryExhausted);
//   - resources conserve: once injection is disarmed and every touched
//     destination chunk is drained (USE, then a buffer-reuse
//     rewrite+flush), the Scratchpad and
//     Config Memory free lists return to their configured sizes, the
//     Translation Table is empty, no record is in flight, and the event
//     engine holds no leaked events;
//   - schedules replay: the same seed reproduces the identical fault
//     trace (fault.Injector.TraceString) and the identical report.
//
// A scenario deliberately runs on a tiny device (8 Scratchpad / 8
// Config pages) so multi-record operations exercise Force-Recycle and
// genuine exhaustion, not just the injected faults.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/deflate"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/memctrl"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Message capacities of the per-scenario connections: two records per
// operation keeps multi-chunk pressure on the tiny scratchpad.
const (
	tlsMsg  = 2 * offload.MaxTLSPayload
	compMsg = 2 * core.MaxCompressInput
)

// Report summarizes one chaos scenario. Violations lists every
// invariant breach; an empty list means the scenario survived.
type Report struct {
	Seed int64
	Ops  int
	// Tolerated counts operations that failed with a degradable error
	// (the typed set the software stack recovers from) — expected under
	// injection, not a violation.
	Tolerated int
	// Consults/Fired are the injector's totals across all sites.
	Consults, Fired int64
	// PrimaryOps/FallbackOps are per-chunk outcomes from the SmartDIMM
	// backend's degradation counters.
	PrimaryOps, FallbackOps uint64
	Violations              []string
	// Trace is the canonical fault trace: equal across runs of the same
	// seed, the reproducibility artifact.
	Trace string
	// TracePath is where RunWithTrace wrote the Perfetto trace (empty
	// for plain Run).
	TracePath string
}

// Collect implements telemetry.Collector.
func (r Report) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "ops", Value: float64(r.Ops)})
	emit(telemetry.Sample{Name: "tolerated", Value: float64(r.Tolerated)})
	emit(telemetry.Sample{Name: "consults", Value: float64(r.Consults)})
	emit(telemetry.Sample{Name: "fired", Value: float64(r.Fired)})
	emit(telemetry.Sample{Name: "primary_ops", Value: float64(r.PrimaryOps)})
	emit(telemetry.Sample{Name: "fallback_ops", Value: float64(r.FallbackOps)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

// chunkRef is one destination region an operation may have registered;
// the drain phase USEs every one of them to settle accounting.
type chunkRef struct {
	addr uint64
	size int
}

// tolerable mirrors the offload layer's degradable set: the only
// errors chaos operations are allowed to surface.
func tolerable(err error) bool {
	return errors.Is(err, core.ErrNoScratchpad) ||
		errors.Is(err, core.ErrTranslationInsert) ||
		errors.Is(err, core.ErrDSAFault) ||
		errors.Is(err, memctrl.ErrAlertRetryExhausted)
}

// tlsAAD rebuilds the 5-byte TLS record header the backends use as AAD.
func tlsAAD(n int) []byte {
	m := n + aesgcm.TagSize
	return []byte{0x17, 0x03, 0x03, byte(m >> 8), byte(m)}
}

type scenario struct {
	rng  *rand.Rand
	inj  *fault.Injector
	sys  *sim.System
	off  *offload.SmartDIMM
	base []byte
	rep  *Report

	// tls+tlsShadow share an id and therefore key material: the shadow's
	// NextIV is consumed in lockstep with the operation conn's, giving
	// the verifier the IV sequence without reaching into unexported
	// state. Any failed operation abandons the pair (the conn's sequence
	// number is indeterminate after a partial operation) and allocates a
	// fresh one under a new id.
	tls, tlsShadow *offload.Conn
	comp           *offload.Conn
	nextID         int

	cleanup []chunkRef
}

// armSites installs an independent random plan (or none) at every
// injection site, drawn from the scenario RNG. Window plans are
// excluded: direct driver traffic never advances the event clock, so
// time-windowed plans would silently never fire.
func armSites(rng *rand.Rand, inj *fault.Injector) {
	sites := []string{"memctrl.crc", "dram.alert", "core.alert", "core.dsa", "core.ttinsert"}
	for _, site := range sites {
		switch rng.Intn(5) {
		case 0:
			// unarmed: this layer stays on its fault-free path
		case 1:
			inj.Arm(site, fault.Bernoulli{Prob: 0.01 + 0.15*rng.Float64()})
		case 2:
			inj.Arm(site, fault.Periodic{Every: int64(2 + rng.Intn(30)), Offset: int64(rng.Intn(8))})
		case 3:
			inj.Arm(site, fault.OneShot{N: int64(1 + rng.Intn(50))})
		case 4:
			inj.Arm(site, fault.Burst{GE: fault.GEConfig{
				PGoodBad: 0.02 + 0.1*rng.Float64(),
				PBadGood: 0.2,
				LossBad:  0.5 + 0.4*rng.Float64(),
			}})
		}
	}
}

// Run executes one chaos scenario: ops randomized operations (TLS
// TX/RX, compression TX/RX) against a tiny SmartDIMM under the seeded
// fault schedule, a plain-DIMM read/write phase under dram.alert, then
// the disarm/drain/conservation check. The returned error reports
// harness construction failures only; invariant breaches land in
// Report.Violations.
func Run(seed int64, ops int) (Report, error) {
	return run(seed, ops, nil)
}

// RunWithTrace is Run with span tracing enabled: the scenario records a
// Perfetto trace (fault instants, driver CompCpy spans, device events,
// controller drains) and writes it to tracePath. Same-seed runs write
// byte-identical traces.
func RunWithTrace(seed int64, ops int, tracePath string) (Report, error) {
	tr := telemetry.New()
	rep, err := run(seed, ops, tr)
	if err != nil {
		return rep, err
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return rep, err
	}
	if err := tr.WritePerfetto(f); err != nil {
		f.Close()
		return rep, err
	}
	if err := f.Close(); err != nil {
		return rep, err
	}
	rep.TracePath = tracePath
	return rep, nil
}

func run(seed int64, ops int, tracer *telemetry.Tracer) (Report, error) {
	if ops <= 0 {
		ops = 12
	}
	rep := Report{Seed: seed, Ops: ops}
	rng := rand.New(rand.NewSource(seed))
	inj := fault.New(seed)
	armSites(rng, inj)

	dc := core.DeviceConfig{
		Geometry:         dram.SmallGeometry(),
		ScratchpadPages:  8,
		ConfigPages:      8,
		DSALatencyCycles: 32,
		MMIOPages:        1,
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		WithSmartDIMM: true,
		LLCBytes:      4 << 20,
		LLCWays:       8,
		DeviceConfig:  &dc,
		Faults:        inj,
		Tracer:        tracer,
	})
	if err != nil {
		return rep, err
	}

	s := &scenario{
		rng:  rng,
		inj:  inj,
		sys:  sys,
		off:  &offload.SmartDIMM{Sys: sys},
		base: corpus.Generate(corpus.HTML, 96<<10, seed),
		rep:  &rep,
	}
	if err := s.newTLSPair(); err != nil {
		return rep, err
	}
	if err := s.newComp(); err != nil {
		return rep, err
	}

	for i := 0; i < ops; i++ {
		var err error
		switch s.rng.Intn(4) {
		case 0:
			err = s.opTLSTX()
		case 1:
			err = s.opTLSRX()
		case 2:
			err = s.opCompTX()
		case 3:
			err = s.opCompRX()
		}
		if err != nil {
			return rep, err
		}
	}

	psys, err := s.plainDIMMPhase()
	if err != nil {
		return rep, err
	}

	// Drain: quiesce injection, then reclaim every destination chunk any
	// operation may have left registered. USE consumes the record the
	// normal way; the rewrite+flush models the software reusing the
	// buffer, which swap-recycles any line whose early writeback was
	// S7-ignored while the DSA was still producing it (such a line's LLC
	// copy is clean, so USE's flush alone never writes it back). With
	// faults disarmed every step must succeed, and afterwards every
	// resource pool must be back at its configured size.
	s.inj.DisarmAll()
	zeros := make([]byte, (tlsMsg/2+aesgcm.TagSize+63)&^63)
	for _, c := range s.cleanup {
		if _, _, err := s.sys.Driver.Use(0, c.addr, c.size); err != nil {
			s.violate("drain: USE(%#x,%d) after disarm: %v", c.addr, c.size, err)
		}
		wlen := (c.size + 63) &^ 63 // stays within the chunk's pages
		if _, err := s.sys.Driver.WriteBuffer(0, c.addr, zeros[:wlen]); err != nil {
			s.violate("drain: rewrite(%#x,%d): %v", c.addr, wlen, err)
		}
		if _, err := s.sys.Hier.Flush(c.addr, wlen); err != nil {
			s.violate("drain: flush(%#x,%d): %v", c.addr, wlen, err)
		}
	}
	dev := s.sys.Dev
	if free := dev.ScratchpadFreePages(); free != dc.ScratchpadPages {
		s.violate("conservation: %d/%d scratchpad pages free after drain", free, dc.ScratchpadPages)
	}
	if free := dev.ConfigFreePages(); free != dc.ConfigPages {
		s.violate("conservation: %d/%d config pages free after drain", free, dc.ConfigPages)
	}
	if n := dev.TranslationCount(); n != 0 {
		s.violate("conservation: %d translation entries leaked", n)
	}
	if n := dev.InFlightRecords(); n != 0 {
		s.violate("conservation: %d records still in flight", n)
	}
	if n := s.sys.Engine.Pending(); n != 0 {
		s.violate("engine: %d events leaked", n)
	}
	if n := psys.Engine.Pending(); n != 0 {
		s.violate("engine: %d events leaked on plain-DIMM system", n)
	}

	rep.Consults, rep.Fired = inj.Counts()
	rep.PrimaryOps = s.off.Degraded.PrimaryOps
	rep.FallbackOps = s.off.Degraded.FallbackOps
	rep.Trace = inj.TraceString()
	return rep, nil
}

func (s *scenario) violate(format string, args ...interface{}) {
	s.rep.Violations = append(s.rep.Violations, fmt.Sprintf(format, args...))
}

// opFailed classifies an operation failure (typed degradable errors are
// tolerated, anything else is a violation) and renews the affected
// connection so later operations start from known sequence state.
func (s *scenario) opFailed(label string, err error, renew func() error) error {
	if tolerable(err) {
		s.rep.Tolerated++
	} else {
		s.violate("%s: non-degradable error: %v", label, err)
	}
	return renew()
}

func (s *scenario) newTLSPair() error {
	id := s.nextID
	s.nextID++
	conn, err := s.off.NewConn(offload.TLS, id, tlsMsg)
	if err != nil {
		return err
	}
	shadow, err := s.off.NewConn(offload.TLS, id, tlsMsg)
	if err != nil {
		return err
	}
	s.tls, s.tlsShadow = conn, shadow
	return nil
}

func (s *scenario) newComp() error {
	id := s.nextID
	s.nextID++
	conn, err := s.off.NewConn(offload.Compression, id, compMsg)
	if err != nil {
		return err
	}
	s.comp = conn
	return nil
}

// payload returns a deterministic slice of the corpus.
func (s *scenario) payload(n int) []byte {
	off := s.rng.Intn(len(s.base) - n)
	return s.base[off : off+n]
}

// opTLSTX encrypts a message through Process and verifies every record
// decrypts back to the staged payload with the mirrored IV sequence.
func (s *scenario) opTLSTX() error {
	l := offload.LayoutFor(offload.TLS)
	n := 1 + s.rng.Intn(tlsMsg)
	payload := s.payload(n)
	chunks := l.Chunks(n)
	for k, cn := range chunks {
		s.cleanup = append(s.cleanup, chunkRef{s.tls.Dst + uint64(k*l.DstStride), cn + aesgcm.TagSize})
	}
	if err := offload.StagePayloadDMA(s.sys, s.tls, payload); err != nil {
		return s.opFailed("tls-tx stage", err, s.newTLSPair)
	}
	if _, err := s.off.Process(offload.TLS, 0, s.tls, n); err != nil {
		return s.opFailed("tls-tx process", err, s.newTLSPair)
	}
	g, err := aesgcm.NewGCM(s.tls.Key)
	if err != nil {
		return err
	}
	rest := payload
	for k, cn := range chunks {
		iv := s.tlsShadow.NextIV()
		out, _, err := s.sys.Driver.Use(0, s.tls.Dst+uint64(k*l.DstStride), cn+aesgcm.TagSize)
		if err != nil {
			return s.opFailed("tls-tx use", err, s.newTLSPair)
		}
		pt, oerr := g.Open(nil, iv, out, tlsAAD(cn))
		if oerr != nil {
			s.violate("tls-tx: record %d does not decrypt: %v", k, oerr)
		} else if !bytes.Equal(pt, rest[:cn]) {
			s.violate("tls-tx: record %d round-trip mismatch", k)
		}
		rest = rest[cn:]
	}
	return nil
}

// opTLSRX seals records with the shadow's IV sequence, stages them as
// NIC RX traffic, and decrypts them through the SmartDIMM receive path.
func (s *scenario) opTLSRX() error {
	l := offload.LayoutFor(offload.TLS)
	g, err := aesgcm.NewGCM(s.tls.Key)
	if err != nil {
		return err
	}
	nrec := 1 + s.rng.Intn(2)
	var records [][]byte
	var lens []int
	var want []byte
	for k := 0; k < nrec; k++ {
		cn := 1 + s.rng.Intn(offload.MaxTLSPayload)
		pt := s.payload(cn)
		sealed, err := g.Seal(nil, s.tlsShadow.NextIV(), pt, tlsAAD(cn))
		if err != nil {
			return err
		}
		records = append(records, sealed)
		lens = append(lens, cn)
		want = append(want, pt...)
		s.cleanup = append(s.cleanup, chunkRef{s.tls.Dst + uint64(k*l.DstStride), cn + aesgcm.TagSize})
	}
	if err := offload.StageRXRecordsDMA(s.sys, s.tls, records); err != nil {
		return s.opFailed("tls-rx stage", err, s.newTLSPair)
	}
	res, err := s.off.ReceiveTLS(0, s.tls, lens)
	if err != nil {
		return s.opFailed("tls-rx receive", err, s.newTLSPair)
	}
	if !res.AuthOK {
		s.violate("tls-rx: authentication failed on valid records")
	}
	if !bytes.Equal(res.Payload, want) {
		s.violate("tls-rx: payload mismatch")
	}
	return nil
}

// opCompTX compresses a message through Process and verifies every
// destination page decodes back to its source chunk.
func (s *scenario) opCompTX() error {
	l := offload.LayoutFor(offload.Compression)
	n := 1 + s.rng.Intn(compMsg)
	payload := s.payload(n)
	chunks := l.Chunks(n)
	for k := range chunks {
		s.cleanup = append(s.cleanup, chunkRef{s.comp.Dst + uint64(k*l.DstStride), core.PageSize})
	}
	if err := offload.StagePayloadDMA(s.sys, s.comp, payload); err != nil {
		return s.opFailed("comp-tx stage", err, s.newComp)
	}
	if _, err := s.off.Process(offload.Compression, 0, s.comp, n); err != nil {
		return s.opFailed("comp-tx process", err, s.newComp)
	}
	rest := payload
	for k, cn := range chunks {
		out, _, err := s.sys.Driver.Use(0, s.comp.Dst+uint64(k*l.DstStride), core.PageSize)
		if err != nil {
			return s.opFailed("comp-tx use", err, s.newComp)
		}
		orig, derr := core.DecodeCompressedPage(out)
		if derr != nil {
			s.violate("comp-tx: page %d undecodable: %v", k, derr)
		} else if !bytes.Equal(orig, rest[:cn]) {
			s.violate("comp-tx: page %d round-trip mismatch", k)
		}
		rest = rest[cn:]
	}
	return nil
}

// opCompRX stages wire-format compressed pages as RX traffic and
// inflates them through the SmartDIMM receive path.
func (s *scenario) opCompRX() error {
	l := offload.LayoutFor(offload.Compression)
	enc := deflate.NewHWEncoder(deflate.PaperHWConfig())
	nrec := 1 + s.rng.Intn(2)
	var records [][]byte
	var lens []int
	var want [][]byte
	for k := 0; k < nrec; k++ {
		cn := 1 + s.rng.Intn(core.MaxCompressInput)
		data := s.payload(cn)
		page, err := core.EncodeCompressedPage(data, enc)
		if err != nil {
			return err
		}
		plen, err := core.CompressedPayloadLen(page)
		if err != nil {
			return err
		}
		// Stage the full page so stale bytes from earlier operations in
		// the stride cannot alias into this record.
		records = append(records, page)
		lens = append(lens, 4+plen)
		want = append(want, data)
		s.cleanup = append(s.cleanup, chunkRef{s.comp.Dst + uint64(k*l.DstStride), core.PageSize})
	}
	if err := offload.StageRXRecordsDMA(s.sys, s.comp, records); err != nil {
		return s.opFailed("comp-rx stage", err, s.newComp)
	}
	res, err := s.off.ReceiveCompressed(0, s.comp, lens)
	if err != nil {
		return s.opFailed("comp-rx receive", err, s.newComp)
	}
	// Each record inflates into one page-sized slot of the payload.
	for k, data := range want {
		if len(res.Payload) < k*core.PageSize+len(data) {
			s.violate("comp-rx: payload truncated at record %d", k)
			break
		}
		if !bytes.Equal(res.Payload[k*core.PageSize:k*core.PageSize+len(data)], data) {
			s.violate("comp-rx: record %d mismatch", k)
		}
	}
	return nil
}

// plainDIMMPhase exercises the dram.alert site: a plain (non-SmartDIMM)
// channel under injected ALERT_N must still round-trip data bit-exact —
// alerts cost retries, never correctness. The write-back is forced with
// a flush so the reads actually reach DRAM.
func (s *scenario) plainDIMMPhase() (*sim.System, error) {
	psys, err := sim.NewSystem(sim.SystemConfig{
		LLCBytes: 1 << 20,
		LLCWays:  4,
		Faults:   s.inj,
	})
	if err != nil {
		return nil, err
	}
	data := s.payload(2 * dram.PageSize)
	if _, err := psys.WriteBytes(0, 0, data); err != nil {
		if tolerable(err) {
			s.rep.Tolerated++
			return psys, nil
		}
		s.violate("plain-dimm write: %v", err)
		return psys, nil
	}
	if _, err := psys.Hier.Flush(0, len(data)); err != nil {
		if tolerable(err) {
			s.rep.Tolerated++
			return psys, nil
		}
		s.violate("plain-dimm flush: %v", err)
		return psys, nil
	}
	got, _, err := psys.ReadBytes(0, 0, len(data))
	if err != nil {
		if tolerable(err) {
			s.rep.Tolerated++
			return psys, nil
		}
		s.violate("plain-dimm read: %v", err)
		return psys, nil
	}
	if !bytes.Equal(got, data) {
		s.violate("plain-dimm: data corrupted under ALERT_N injection")
	}
	return psys, nil
}
