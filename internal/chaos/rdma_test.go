package chaos

import (
	"testing"
)

// TestRDMASoak runs randomized fault schedules through the peer-DMA
// ingress — doorbell loss, RNR NAKs, rogue out-of-bounds writes, and
// the two forced races (MR unregister in flight, peer write across a
// migration) — and fails on the first invariant violation, reporting
// the seed so the schedule replays exactly.
func TestRDMASoak(t *testing.T) {
	n := soakSize() / 2
	var fired int64
	var posted, completed, failed uint64
	var lost, naks, stale, bounds, migrations uint64
	tolerated := 0
	for i := 0; i < n; i++ {
		seed := int64(9000 + i*7907)
		rep, err := RunRDMA(seed, 24)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d (policy %s): %d invariant violations:\n%s\ntrace:\n%s",
				seed, rep.Policy, len(rep.Violations), rep.Violations[0], rep.Trace)
		}
		fired += rep.Fired
		posted += rep.Posted
		completed += rep.Completed
		failed += rep.Failed
		lost += rep.DoorbellsLost
		naks += rep.RNRNaks
		stale += rep.StaleRetries
		bounds += rep.BoundsRefusals
		migrations += rep.Migrations
		tolerated += rep.Tolerated
	}
	// The soak must exercise the whole failure surface, not just the
	// clean path: doorbells get lost, receivers NAK, rogue writes are
	// refused, and in-flight WQEs cross migrations.
	if fired == 0 {
		t.Fatal("no faults fired across the rdma soak")
	}
	if lost == 0 {
		t.Fatal("no doorbell was ever lost")
	}
	if naks == 0 {
		t.Fatal("no RNR NAK was ever injected")
	}
	if bounds == 0 {
		t.Fatal("no rogue write was ever refused")
	}
	if stale == 0 {
		t.Fatal("no in-flight WQE ever crossed a migration")
	}
	if migrations == 0 {
		t.Fatal("no connection ever migrated")
	}
	if completed == 0 || posted != completed+failed {
		t.Fatalf("wqe ledger: posted %d, completed %d, failed %d", posted, completed, failed)
	}
	t.Logf("rdma soak: %d schedules, %d fired, %d posted (%d ok / %d failed), %d lost doorbells, %d naks, %d stale retargets, %d bounds refusals, %d migrations, %d tolerated",
		n, fired, posted, completed, failed, lost, naks, stale, bounds, migrations, tolerated)
}

// TestRDMASameSeedSameTrace replays a schedule and requires the
// combined injector + NIC + placement trace and the whole report to
// reproduce byte-for-byte.
func TestRDMASameSeedSameTrace(t *testing.T) {
	for _, seed := range []int64{13, 1313, 131313} {
		a, err := RunRDMA(seed, 24)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunRDMA(seed, 24)
		if err != nil {
			t.Fatal(err)
		}
		if a.Trace == "" || a.Trace != b.Trace {
			t.Fatalf("seed %d: trace not reproducible (%d vs %d bytes)", seed, len(a.Trace), len(b.Trace))
		}
		if a.Posted != b.Posted || a.Completed != b.Completed || a.Failed != b.Failed ||
			a.DoorbellsLost != b.DoorbellsLost || a.RNRNaks != b.RNRNaks ||
			a.StaleRetries != b.StaleRetries || a.PeerBytes != b.PeerBytes ||
			a.Migrations != b.Migrations || a.Tolerated != b.Tolerated ||
			len(a.Violations) != len(b.Violations) {
			t.Fatalf("seed %d: reports diverge:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestRDMANoInjectionBaseline checks the harness itself: a single-op
// scenario must pass clean.
func TestRDMANoInjectionBaseline(t *testing.T) {
	rep, err := RunRDMA(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations on a single-op scenario: %v", rep.Violations)
	}
}
