package chaos

// Workload-soak tests: the pinned flash-crowd + rank-fault scenario
// must hold its invariants, and the canonical report must replay
// byte-identically from the seed — serial or pooled trace generation,
// at GOMAXPROCS 1 and 2.

import (
	"runtime"
	"testing"

	"repro/internal/runner"
)

func TestWorkloadSoak(t *testing.T) {
	rep, err := RunWorkloadSoak(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Admits == 0 || rep.Trips == 0 {
		t.Fatalf("soak exercised nothing: admits=%d trips=%d", rep.Admits, rep.Trips)
	}
	t.Logf("soak: issued=%d slo_held=%.0f%% actions=%d final_active=%d",
		rep.Issued, rep.SLOHeldFrac*100, rep.Actions, rep.FinalActive)
}

func TestWorkloadSoakReplaysFromSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("replay soak is the long half of the gate")
	}
	ref, err := RunWorkloadSoak(11, nil)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunWorkloadSoak(11, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Canonical != ref.Canonical {
		t.Fatalf("pooled soak differs from serial:\n--- serial ---\n%s--- pooled ---\n%s", ref.Canonical, pooled.Canonical)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		again, err := RunWorkloadSoak(11, runner.New(0))
		if err != nil {
			t.Fatal(err)
		}
		if again.Canonical != ref.Canonical {
			t.Fatalf("GOMAXPROCS=%d soak differs from serial reference", procs)
		}
	}
	// A different seed must actually change the run (the canonical
	// artifact is not a constant).
	other, err := RunWorkloadSoak(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other.Canonical == ref.Canonical {
		t.Fatal("different seeds produced identical canonical reports")
	}
}
