// Fleet chaos: the same randomized fault schedules, but driven through a
// multi-rank SmartDIMM fleet instead of a single device, with forced
// member failures injected mid-stream. On top of the single-device
// invariants (bit-exact round trips, typed failures), the fleet schedule
// checks the conservation invariant *across* devices:
//
//   - at every point — including immediately after a forced failure,
//     drain, and reshard — the pages allocated across all rank drivers
//     equal exactly what the fleet's live connections should hold
//     (migration may move buffers between ranks but never leak or
//     double-free them);
//   - a failed member is really drained: no connection remains homed on
//     it until it is readmitted;
//   - after disarm and drain, every device in the fleet returns to its
//     configured Scratchpad/Config free-list sizes with an empty
//     Translation Table and no record in flight — even devices whose
//     connections migrated away mid-operation (migration aborts
//     stranded records rather than leaking them);
//   - both the fault trace and the fleet's placement trace replay
//     byte-identically from the seed.
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// fleetRanks is the fleet schedule's device count: three ranks so a
// forced failure always leaves survivors to reshard onto, while the
// affinity policy still gets an incomplete last channel group.
const fleetRanks = 3

// FleetReport summarizes one fleet chaos scenario.
type FleetReport struct {
	Seed    int64
	Ops     int
	Devices int
	Policy  string
	// Tolerated counts operations that failed with a degradable error.
	Tolerated int
	// Consults/Fired are the injector's totals across all sites.
	Consults, Fired int64
	// Trips/Readmits/Migrations/Sheds/SoftOps are the fleet's reactions.
	Trips, Readmits, Migrations, Sheds, SoftOps uint64
	// PrimaryOps/FallbackOps are per-chunk outcomes summed over members.
	PrimaryOps, FallbackOps uint64
	Violations              []string
	// Trace is the canonical fault trace; Placement is the fleet's
	// placement trace. Both must replay byte-identically from the seed.
	Trace, Placement string
	// TracePath is where RunFleetWithTrace wrote the Perfetto trace
	// (empty for plain RunFleet).
	TracePath string
}

// Collect implements telemetry.Collector.
func (r FleetReport) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "ops", Value: float64(r.Ops)})
	emit(telemetry.Sample{Name: "devices", Value: float64(r.Devices)})
	emit(telemetry.Sample{Name: "tolerated", Value: float64(r.Tolerated)})
	emit(telemetry.Sample{Name: "consults", Value: float64(r.Consults)})
	emit(telemetry.Sample{Name: "fired", Value: float64(r.Fired)})
	emit(telemetry.Sample{Name: "trips", Value: float64(r.Trips)})
	emit(telemetry.Sample{Name: "readmits", Value: float64(r.Readmits)})
	emit(telemetry.Sample{Name: "migrations", Value: float64(r.Migrations)})
	emit(telemetry.Sample{Name: "sheds", Value: float64(r.Sheds)})
	emit(telemetry.Sample{Name: "soft_ops", Value: float64(r.SoftOps)})
	emit(telemetry.Sample{Name: "primary_ops", Value: float64(r.PrimaryOps)})
	emit(telemetry.Sample{Name: "fallback_ops", Value: float64(r.FallbackOps)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

// fleetChunk is one destination region an operation may have registered,
// tracked relative to its connection so migrations (which rewrite the
// connection's buffer addresses) can't strand the drain phase.
type fleetChunk struct {
	conn *offload.Conn
	off  uint64
	size int
}

type fleetScenario struct {
	rng  *rand.Rand
	inj  *fault.Injector
	sys  *sim.System
	fl   *fleet.Fleet
	base []byte
	rep  *FleetReport

	conns   []*offload.Conn // live connection per slot
	allIDs  []int           // every id ever created (abandoned ones too)
	nextID  int
	op      int // current op index, for violation context
	cleanup []fleetChunk
}

// RunFleet executes one fleet chaos scenario: ops randomized compression
// offloads spread over several connections against a 3-rank fleet of
// tiny devices under the seeded fault schedule, with forced member
// failures (and natural breaker trips) mid-stream, then the
// disarm/drain/conservation check across every device. The returned
// error reports harness construction failures only; invariant breaches
// land in FleetReport.Violations.
func RunFleet(seed int64, ops int) (FleetReport, error) {
	return runFleet(seed, ops, nil)
}

// RunFleetWithTrace is RunFleet with span tracing enabled; the Perfetto
// trace (including fleet trip/drain/reshard instants) lands at
// tracePath. Same-seed runs write byte-identical traces.
func RunFleetWithTrace(seed int64, ops int, tracePath string) (FleetReport, error) {
	tr := telemetry.New()
	rep, err := runFleet(seed, ops, tr)
	if err != nil {
		return rep, err
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return rep, err
	}
	if err := tr.WritePerfetto(f); err != nil {
		f.Close()
		return rep, err
	}
	if err := f.Close(); err != nil {
		return rep, err
	}
	rep.TracePath = tracePath
	return rep, nil
}

func runFleet(seed int64, ops int, tracer *telemetry.Tracer) (FleetReport, error) {
	if ops <= 0 {
		ops = 16
	}
	rep := FleetReport{Seed: seed, Ops: ops, Devices: fleetRanks}
	rng := rand.New(rand.NewSource(seed))
	inj := fault.New(seed)
	armSites(rng, inj)

	dc := core.DeviceConfig{
		Geometry:         dram.SmallGeometry(),
		ScratchpadPages:  8,
		ConfigPages:      8,
		DSALatencyCycles: 32,
		MMIOPages:        1,
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		SmartDIMMRanks: fleetRanks,
		LLCBytes:       4 << 20,
		LLCWays:        8,
		DeviceConfig:   &dc,
		Faults:         inj,
		Tracer:         tracer,
	})
	if err != nil {
		return rep, err
	}

	policies := []fleet.Policy{fleet.RoundRobin, fleet.LeastLoaded, fleet.Affinity, fleet.Sticky}
	pol := policies[rng.Intn(len(policies))]
	rep.Policy = pol.String()
	fl, err := fleet.New(fleet.Config{
		Sys:            sys,
		Policy:         pol,
		TracePlacement: true,
		// Short breaker windows so trips and readmissions both happen
		// within a scenario-sized op stream.
		FailThreshold:      2,
		CooldownOps:        8,
		MigrateCooldownOps: 2,
	})
	if err != nil {
		return rep, err
	}

	s := &fleetScenario{
		rng:  rng,
		inj:  inj,
		sys:  sys,
		fl:   fl,
		base: corpus.Generate(corpus.HTML, 96<<10, seed),
		rep:  &rep,
	}
	for i := 0; i < 4; i++ {
		if err := s.newConn(i, true); err != nil {
			return rep, err
		}
	}

	// Forced rank failures at two points of the stream; the member is
	// drawn from the scenario RNG so every member sees failures across a
	// soak. Conservation is checked immediately after each drain, while
	// the fleet is mid-flight — not just at the end.
	failAt := map[int]bool{ops / 3: true, (2 * ops) / 3: true}
	for i := 0; i < ops; i++ {
		if failAt[i] {
			victim := s.rng.Intn(fl.Members())
			if err := fl.Fail(victim); err != nil {
				return rep, err
			}
			s.checkDrained(victim)
			s.checkConservation(fmt.Sprintf("after forced failure of d%d", victim))
		}
		s.op = i
		if err := s.opComp(s.rng.Intn(len(s.conns))); err != nil {
			return rep, err
		}
	}

	// Drain: quiesce injection, then settle every destination chunk any
	// operation may have left registered — USE consumes the record, the
	// rewrite+flush swap-recycles lines whose early writeback was
	// S7-ignored (see the single-device drain). Chunk addresses resolve
	// through the live connection structs, so buffers that migrated
	// between ranks are drained where they ended up.
	s.inj.DisarmAll()
	zeros := make([]byte, core.PageSize)
	for _, c := range s.cleanup {
		addr := c.conn.Dst + c.off
		if _, _, err := s.use(addr, c.size); err != nil {
			s.violate("drain: USE(%#x,%d) after disarm: %v", addr, c.size, err)
		}
		wlen := (c.size + 63) &^ 63
		if _, err := s.sys.Driver.WriteBuffer(0, addr, zeros[:wlen]); err != nil {
			s.violate("drain: rewrite(%#x,%d): %v", addr, wlen, err)
		}
		if _, err := s.sys.Hier.Flush(addr, wlen); err != nil {
			s.violate("drain: flush(%#x,%d): %v", addr, wlen, err)
		}
	}
	for i, dev := range s.sys.Devs {
		if free := dev.ScratchpadFreePages(); free != dc.ScratchpadPages {
			s.violate("conservation: dev %d: %d/%d scratchpad pages free after drain", i, free, dc.ScratchpadPages)
		}
		if free := dev.ConfigFreePages(); free != dc.ConfigPages {
			s.violate("conservation: dev %d: %d/%d config pages free after drain", i, free, dc.ConfigPages)
		}
		if n := dev.TranslationCount(); n != 0 {
			s.violate("conservation: dev %d: %d translation entries leaked", i, n)
		}
		if n := dev.InFlightRecords(); n != 0 {
			s.violate("conservation: dev %d: %d records still in flight", i, n)
		}
	}
	s.checkConservation("after final drain")
	if n := s.sys.Engine.Pending(); n != 0 {
		s.violate("engine: %d events leaked", n)
	}

	t := fl.Totals()
	rep.Consults, rep.Fired = inj.Counts()
	rep.Trips, rep.Readmits = t.Trips, t.Readmits
	rep.Migrations, rep.Sheds, rep.SoftOps = t.Migrations, t.Sheds, t.SoftOps
	rep.PrimaryOps, rep.FallbackOps = t.Degraded.PrimaryOps, t.Degraded.FallbackOps
	rep.Trace = inj.TraceString()
	rep.Placement = fl.TraceString()
	return rep, nil
}

func (s *fleetScenario) violate(format string, args ...interface{}) {
	s.rep.Violations = append(s.rep.Violations, fmt.Sprintf(format, args...))
}

// checkConservation asserts the cross-fleet page invariant: allocated
// pages over every rank driver must equal exactly what the fleet's live
// connections hold, wherever migration has put them.
func (s *fleetScenario) checkConservation(when string) {
	out, exp := s.fl.OutstandingPages(), s.fl.ExpectedPages()
	if out != exp {
		s.violate("conservation %s: %d pages allocated across ranks, connections should hold %d", when, out, exp)
	}
}

// checkDrained asserts no connection is still homed on a failed member.
func (s *fleetScenario) checkDrained(victim int) {
	for _, id := range s.allIDs {
		if s.fl.Home(id) == victim {
			s.violate("drain: conn %d still homed on failed d%d", id, victim)
		}
	}
}

// newConn (re)fills a connection slot. A failed operation abandons its
// connection — the fleet keeps its buffers (still counted by the
// conservation invariant) but the slot gets a fresh id.
func (s *fleetScenario) newConn(slot int, grow bool) error {
	id := s.nextID
	s.nextID++
	conn, err := s.fl.NewConn(offload.Compression, id, compMsg)
	if err != nil {
		return err
	}
	s.allIDs = append(s.allIDs, id)
	if grow {
		s.conns = append(s.conns, conn)
	} else {
		s.conns[slot] = conn
	}
	return nil
}

// opFailed classifies an operation failure (typed degradable errors are
// tolerated, anything else is a violation) and renews the slot.
func (s *fleetScenario) opFailed(slot int, label string, err error) error {
	if tolerable(err) {
		s.rep.Tolerated++
	} else {
		s.violate("%s: non-degradable error: %v", label, err)
	}
	return s.newConn(slot, false)
}

// payload returns a deterministic slice of the corpus.
func (s *fleetScenario) payload(n int) []byte {
	off := s.rng.Intn(len(s.base) - n)
	return s.base[off : off+n]
}

// use routes a USE by address: rank 0's driver flushes and reads through
// the shared hierarchy, so the owning rank's device sees the accesses
// regardless of which driver struct issues them.
func (s *fleetScenario) use(addr uint64, size int) ([]byte, int64, error) {
	return s.sys.Driver.Use(0, addr, size)
}

// opComp compresses a message through the fleet and verifies every
// destination page decodes back to its source chunk — whether it took
// the home device's DSA, the CPU fallback rung, or (homeless) the soft
// backend, and wherever rebalancing moved the connection mid-stream.
func (s *fleetScenario) opComp(slot int) error {
	conn := s.conns[slot]
	l := offload.LayoutFor(offload.Compression)
	n := 1 + s.rng.Intn(compMsg)
	payload := s.payload(n)
	chunks := l.Chunks(n)
	for k := range chunks {
		s.cleanup = append(s.cleanup, fleetChunk{conn, uint64(k * l.DstStride), core.PageSize})
	}
	if err := offload.StagePayloadDMA(s.sys, conn, payload); err != nil {
		return s.opFailed(slot, "fleet comp stage", err)
	}
	if _, err := s.fl.Process(offload.Compression, 0, conn, n); err != nil {
		return s.opFailed(slot, "fleet comp process", err)
	}
	rest := payload
	for k, cn := range chunks {
		out, _, err := s.use(conn.Dst+uint64(k*l.DstStride), core.PageSize)
		if err != nil {
			return s.opFailed(slot, "fleet comp use", err)
		}
		orig, derr := core.DecodeCompressedPage(out)
		if derr != nil {
			s.violate("fleet comp: op %d conn %d (home d%d) page %d undecodable: %v",
				s.op, conn.ID, s.fl.Home(conn.ID), k, derr)
		} else if !bytes.Equal(orig, rest[:cn]) {
			srcNow, _, _ := s.sys.ReadBytes(0, conn.Src+uint64(k*l.SrcStride), cn)
			s.violate("fleet comp: op %d conn %d (home d%d) page %d round-trip mismatch (got %d bytes, want %d, srcStale=%v, outIsSrcNow=%v)",
				s.op, conn.ID, s.fl.Home(conn.ID), k, len(orig), cn,
				!bytes.Equal(srcNow, rest[:cn]), bytes.Equal(orig, srcNow))
		}
		rest = rest[cn:]
	}
	return nil
}
