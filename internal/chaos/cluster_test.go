package chaos

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// TestClusterSoakSchedules is the linearizability chaos soak demanded
// by ROADMAP item 2: hundreds of seed-replayable schedules mixing node
// kills, symmetric and asymmetric partitions, drain/rejoin, and packet
// loss — and not one client-acked write may be lost, not one read may
// violate linearizability. -short runs a 40-schedule slice (the CI
// gate); the full run covers 200.
func TestClusterSoakSchedules(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		seed := int64(9000 + i)
		rep, _, err := RunCluster(seed, ClusterSoakConfig{})
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: invariants violated:\n%s", seed, rep)
		}
	}
}

// clusterSoakFingerprint runs one traced schedule and renders its
// deterministic artifacts for byte comparison.
func clusterSoakFingerprint(t *testing.T, execWorkers int) []byte {
	t.Helper()
	rep, c, err := RunCluster(424242, ClusterSoakConfig{ExecWorkers: execWorkers, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.WriteString(rep.String())
	if err := c.MergedTrace().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestClusterSoakDeterministic is the cluster trace gate: the same
// chaos schedule produces byte-identical reports and merged traces
// under serial execution, parallel execution, and GOMAXPROCS=2.
func TestClusterSoakDeterministic(t *testing.T) {
	ref := clusterSoakFingerprint(t, 1)
	if got := clusterSoakFingerprint(t, 4); !bytes.Equal(got, ref) {
		t.Fatalf("parallel soak diverged from serial reference (%d vs %d bytes)", len(got), len(ref))
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := clusterSoakFingerprint(t, 0); !bytes.Equal(got, ref) {
		t.Fatal("GOMAXPROCS=2 soak diverged from serial reference")
	}
}

// TestClusterScheduleDerivation pins seed-replayability of the plan
// itself: same seed, same schedule lines; different seed, different
// plan.
func TestClusterScheduleDerivation(t *testing.T) {
	a, _, err := RunCluster(77, ClusterSoakConfig{ChaosPs: 4 * sim.Ms})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunCluster(77, ClusterSoakConfig{ChaosPs: 4 * sim.Ms})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed, different reports:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	cR, _, err := RunCluster(78, ClusterSoakConfig{ChaosPs: 4 * sim.Ms})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == cR.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}
