package chaos

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// shardedSoak runs one traced soak and returns the canonical report
// string plus the merged trace bytes.
func shardedSoak(t *testing.T, seed int64, execWorkers int) (string, []byte) {
	t.Helper()
	rep, sc, err := RunSharded(seed, ShardedSoakConfig{
		Shards: 2, ExecWorkers: execWorkers, MeasurePs: sim.Ms, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("seed %d: %s", seed, v)
	}
	var b bytes.Buffer
	if err := sc.MergedTrace().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	return rep.String(), b.Bytes()
}

// TestShardedChaosDeterministic is the fault-injected shard determinism
// gate: the soak's report and merged trace are byte-identical across the
// serial reference schedule, full parallelism, and GOMAXPROCS=2.
func TestShardedChaosDeterministic(t *testing.T) {
	refRep, refTrace := shardedSoak(t, 42, 1)
	gotRep, gotTrace := shardedSoak(t, 42, 4)
	if gotRep != refRep {
		t.Fatalf("parallel soak report diverged:\n--- serial ---\n%.600s\n--- parallel ---\n%.600s", refRep, gotRep)
	}
	if !bytes.Equal(gotTrace, refTrace) {
		t.Fatal("parallel soak trace diverged from serial reference")
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	gotRep, gotTrace = shardedSoak(t, 42, 0)
	if gotRep != refRep {
		t.Fatal("GOMAXPROCS=2 soak report diverged from serial reference")
	}
	if !bytes.Equal(gotTrace, refTrace) {
		t.Fatal("GOMAXPROCS=2 soak trace diverged from serial reference")
	}
}

// TestShardedChaosSoak sweeps seeds serially and parallel, checking
// invariants inside RunSharded and that faults actually land.
func TestShardedChaosSoak(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, _, err := RunSharded(seed, ShardedSoakConfig{ExecWorkers: 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
		if rep.Requests == 0 || rep.Consults == 0 {
			t.Fatalf("seed %d: soak did not exercise the cluster: %+v", seed, rep)
		}
		if rep.Fired > 0 && rep.Errors == 0 && rep.FallbackOps == 0 && rep.Trips == 0 {
			t.Errorf("seed %d: %d faults fired with no visible reaction", seed, rep.Fired)
		}
	}
}
