package chaos

import (
	"testing"
)

// soakSize returns the number of randomized schedules to run: bounded
// under -short, the full soak otherwise (ci.sh's full pass).
func soakSize() int {
	if testing.Short() {
		return 40
	}
	return 200
}

// TestChaosSoak runs randomized fault schedules across all layers and
// fails on the first invariant violation, reporting the seed so the
// schedule can be replayed exactly.
func TestChaosSoak(t *testing.T) {
	n := soakSize()
	var fired, consults int64
	var primary, fallback uint64
	tolerated := 0
	for i := 0; i < n; i++ {
		seed := int64(1000 + i*7919)
		rep, err := Run(seed, 12)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: %d invariant violations:\n%s\ntrace:\n%s",
				seed, len(rep.Violations), rep.Violations[0], rep.Trace)
		}
		fired += rep.Fired
		consults += rep.Consults
		primary += rep.PrimaryOps
		fallback += rep.FallbackOps
		tolerated += rep.Tolerated
	}
	// The soak must actually exercise the machinery: faults fire, some
	// chunks degrade to the CPU rung, and plenty still take the DSA path.
	if fired == 0 {
		t.Fatal("no faults fired across the whole soak")
	}
	if fallback == 0 {
		t.Fatal("no chunk ever took the CPU fallback rung")
	}
	if primary == 0 {
		t.Fatal("no chunk ever took the DSA path")
	}
	t.Logf("soak: %d schedules, %d/%d consultations fired, %d primary / %d fallback chunks, %d tolerated op failures",
		n, fired, consults, primary, fallback, tolerated)
}

// TestChaosSameSeedSameTrace replays a schedule and requires the fault
// trace and the whole report to reproduce byte-for-byte.
func TestChaosSameSeedSameTrace(t *testing.T) {
	for _, seed := range []int64{42, 4242, 424242} {
		a, err := Run(seed, 12)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(seed, 12)
		if err != nil {
			t.Fatal(err)
		}
		if a.Trace != b.Trace {
			t.Fatalf("seed %d: fault trace not reproducible:\n--- first\n%s--- second\n%s", seed, a.Trace, b.Trace)
		}
		if a.Fired != b.Fired || a.Consults != b.Consults ||
			a.PrimaryOps != b.PrimaryOps || a.FallbackOps != b.FallbackOps ||
			a.Tolerated != b.Tolerated || len(a.Violations) != len(b.Violations) {
			t.Fatalf("seed %d: reports diverge: %+v vs %+v", seed, a, b)
		}
	}
}

// TestChaosQuietSeedIsCleanBaseline checks the harness itself: with ops
// but (almost certainly) few or no armed faults, everything must pass
// on the primary path.
func TestChaosNoInjectionBaseline(t *testing.T) {
	// Seed chosen so armSites leaves every site unarmed is not
	// guaranteed; instead run with ops=0: only the plain-DIMM phase and
	// the conservation checks execute.
	rep, err := Run(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations on a single-op scenario: %v", rep.Violations)
	}
}

// TestFleetChaosSoak runs randomized fault schedules through a 3-rank
// fleet with forced member failures mid-stream, and fails on the first
// cross-fleet invariant violation. The fleet scenario is heavier than
// the single-device one, so it runs half as many schedules — still
// covering every placement policy many times over.
func TestFleetChaosSoak(t *testing.T) {
	n := soakSize() / 2
	var fired int64
	var primary, fallback, trips, readmits, migrations uint64
	tolerated := 0
	for i := 0; i < n; i++ {
		seed := int64(5000 + i*6007)
		rep, err := RunFleet(seed, 16)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d (policy %s): %d invariant violations:\n%s\nplacement:\n%s",
				seed, rep.Policy, len(rep.Violations), rep.Violations[0], rep.Placement)
		}
		fired += rep.Fired
		primary += rep.PrimaryOps
		fallback += rep.FallbackOps
		trips += rep.Trips
		readmits += rep.Readmits
		migrations += rep.Migrations
		tolerated += rep.Tolerated
	}
	// The soak must exercise the failure machinery, not just clean paths:
	// members trip and readmit, connections migrate between ranks, and
	// chunks take both the DSA path and the fallback rung.
	if fired == 0 {
		t.Fatal("no faults fired across the fleet soak")
	}
	if trips == 0 {
		t.Fatal("no member breaker ever tripped")
	}
	if readmits == 0 {
		t.Fatal("no tripped member was ever readmitted")
	}
	if migrations == 0 {
		t.Fatal("no connection ever migrated between ranks")
	}
	if primary == 0 || fallback == 0 {
		t.Fatalf("degradation ladder not exercised: %d primary / %d fallback chunks", primary, fallback)
	}
	t.Logf("fleet soak: %d schedules, %d faults fired, %d trips / %d readmits / %d migrations, %d primary / %d fallback chunks, %d tolerated failures",
		n, fired, trips, readmits, migrations, primary, fallback, tolerated)
}

// TestFleetChaosSameSeedSameTrace replays fleet schedules and requires
// both the fault trace and the placement trace to reproduce
// byte-for-byte, along with the whole report.
func TestFleetChaosSameSeedSameTrace(t *testing.T) {
	for _, seed := range []int64{42, 4242, 424242} {
		a, err := RunFleet(seed, 16)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFleet(seed, 16)
		if err != nil {
			t.Fatal(err)
		}
		if a.Trace != b.Trace {
			t.Fatalf("seed %d: fault trace not reproducible", seed)
		}
		if a.Placement != b.Placement {
			t.Fatalf("seed %d: placement trace not reproducible:\n--- first\n%s\n--- second\n%s",
				seed, a.Placement, b.Placement)
		}
		if a.Fired != b.Fired || a.Consults != b.Consults ||
			a.PrimaryOps != b.PrimaryOps || a.FallbackOps != b.FallbackOps ||
			a.Trips != b.Trips || a.Readmits != b.Readmits ||
			a.Migrations != b.Migrations || a.SoftOps != b.SoftOps ||
			a.Tolerated != b.Tolerated || len(a.Violations) != len(b.Violations) {
			t.Fatalf("seed %d: reports diverge: %+v vs %+v", seed, a, b)
		}
	}
}
