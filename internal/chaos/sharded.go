// Sharded chaos: the serving-path soak run on the sharded PDES cluster.
// Every server shard gets its own seeded fault injector (independent
// streams, like distinct machines in a rack failing independently); the
// soak drives the closed-loop workload through the dispatch fabric,
// classifies every server-side failure against the degradable-error
// taxonomy, and checks the per-shard conservation invariants while the
// cluster is still live. The whole report — per-shard fault traces,
// breaker totals, serving counters — renders to one deterministic
// string, and the shard determinism gate requires it byte-identical for
// any ExecWorkers/GOMAXPROCS combination: fault injection must not
// open a nondeterminism hole the fault-free gates can't see.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ShardedReport summarizes one sharded chaos soak.
type ShardedReport struct {
	Seed   int64
	Shards int
	// Requests/Errors/Tolerated aggregate the serving outcome: Errors is
	// the servers' abandoned-request count, Tolerated how many shards
	// ended on a degradable last error.
	Requests  uint64
	Errors    uint64
	Tolerated int
	// Consults/Fired sum the injector totals across shards.
	Consults, Fired int64
	// Trips/Readmits/FallbackOps sum the per-shard fleet reactions.
	Trips, Readmits, FallbackOps uint64
	Epochs, CrossMsgs            uint64
	Violations                   []string
	// PerShard holds one deterministic line per shard; Traces the
	// per-shard canonical fault traces.
	PerShard []string
	Traces   []string
}

// Collect implements telemetry.Collector.
func (r ShardedReport) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "shards", Value: float64(r.Shards)})
	emit(telemetry.Sample{Name: "requests", Value: float64(r.Requests)})
	emit(telemetry.Sample{Name: "errors", Value: float64(r.Errors)})
	emit(telemetry.Sample{Name: "tolerated", Value: float64(r.Tolerated)})
	emit(telemetry.Sample{Name: "consults", Value: float64(r.Consults)})
	emit(telemetry.Sample{Name: "fired", Value: float64(r.Fired)})
	emit(telemetry.Sample{Name: "trips", Value: float64(r.Trips)})
	emit(telemetry.Sample{Name: "readmits", Value: float64(r.Readmits)})
	emit(telemetry.Sample{Name: "fallback_ops", Value: float64(r.FallbackOps)})
	emit(telemetry.Sample{Name: "epochs", Value: float64(r.Epochs)})
	emit(telemetry.Sample{Name: "cross_shard_msgs", Value: float64(r.CrossMsgs)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

// String renders the canonical soak transcript. Two runs of the same
// seed must produce identical strings regardless of execution schedule.
func (r ShardedReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded chaos seed=%d shards=%d\n", r.Seed, r.Shards)
	fmt.Fprintf(&b, "requests=%d errors=%d tolerated=%d\n", r.Requests, r.Errors, r.Tolerated)
	fmt.Fprintf(&b, "faults consults=%d fired=%d\n", r.Consults, r.Fired)
	fmt.Fprintf(&b, "fleet trips=%d readmits=%d fallback=%d\n", r.Trips, r.Readmits, r.FallbackOps)
	fmt.Fprintf(&b, "engine epochs=%d cross_msgs=%d\n", r.Epochs, r.CrossMsgs)
	for _, line := range r.PerShard {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	for s, tr := range r.Traces {
		fmt.Fprintf(&b, "-- shard %d fault trace --\n%s", s, tr)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}

// armServingSites installs a seeded per-shard fault plan on the sites
// the serving path consults: CRC corruption on the rank's command bus
// and ALERT_n assertions against the device MMIO window, plus an
// occasional DSA engine fault. Rates stay low enough that the breaker
// degrades instead of every request dying, so the soak exercises the
// trip/fallback/readmit machinery across shards.
func armServingSites(rng *rand.Rand, inj *fault.Injector) {
	inj.Arm("memctrl.crc", fault.Bernoulli{Prob: 0.002 + 0.01*rng.Float64()})
	inj.Arm("core.alert", fault.Bernoulli{Prob: 0.002 + 0.01*rng.Float64()})
	if rng.Intn(2) == 0 {
		inj.Arm("core.dsa", fault.Periodic{Every: int64(40 + rng.Intn(100)), Offset: int64(rng.Intn(10))})
	}
}

// ShardedSoakConfig sizes a RunSharded soak.
type ShardedSoakConfig struct {
	Shards      int   // server shards (default 2)
	Connections int   // total connections (default 4*Shards)
	ExecWorkers int   // epoch parallelism: 0 = GOMAXPROCS, 1 = serial reference
	MeasurePs   int64 // measurement window (default 2ms)
	Trace       bool  // thread per-shard span tracers through the run
}

// RunSharded executes one sharded chaos soak: a compressed-HTTP serving
// workload over Shards fault-injected sub-systems, the standard
// warmup/measure protocol, then invariant checks per shard. The
// returned error reports harness construction failures only; invariant
// breaches land in ShardedReport.Violations. The cluster is returned
// alongside so callers can fingerprint its merged trace.
func RunSharded(seed int64, cfg ShardedSoakConfig) (ShardedReport, *fleet.Sharded, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 4 * cfg.Shards
	}
	if cfg.MeasurePs <= 0 {
		cfg.MeasurePs = 2 * sim.Ms
	}
	rep := ShardedReport{Seed: seed, Shards: cfg.Shards}

	injs := make([]*fault.Injector, cfg.Shards)
	sc, err := fleet.NewSharded(fleet.ShardedConfig{
		Shards: cfg.Shards, Workers: 4,
		MsgSize: 2048, Connections: cfg.Connections,
		FileKind: corpus.HTML, Mode: server.CompressedHTTP, Seed: seed,
		ExecWorkers: cfg.ExecWorkers,
		Trace:       cfg.Trace,
		Faults: func(shard int) *fault.Injector {
			// A per-shard RNG derived from (seed, shard) picks the plan;
			// the injector's own site streams derive from its seed — both
			// independent of any other shard.
			inj := fault.New(seed + int64(shard)*7919)
			armServingSites(rand.New(rand.NewSource(seed^int64(shard+1)*104729)), inj)
			injs[shard] = inj
			return inj
		},
	})
	if err != nil {
		return rep, nil, err
	}

	sc.Generator().Start()
	sc.Engine().RunUntil(sim.Ms)
	for _, srv := range sc.Servers() {
		srv.BeginMeasurement()
	}
	sc.Generator().BeginMeasurement()
	sc.Engine().RunUntil(sim.Ms + cfg.MeasurePs)

	for s, srv := range sc.Servers() {
		m := srv.Collect()
		rep.Requests += m.Requests
		rep.Errors += m.Errors
		if err := srv.LastError(); err != nil {
			if tolerable(err) {
				rep.Tolerated++
			} else {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("shard %d: non-degradable error: %v", s, err))
			}
		}
		if m.Requests == 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("shard %d: served no requests under fault load", s))
		}
		fl := sc.Fleets()[s]
		t := fl.Totals()
		rep.Trips += t.Trips
		rep.Readmits += t.Readmits
		rep.FallbackOps += t.Degraded.FallbackOps
		// Conservation while live: pages allocated across the shard's
		// ranks must equal what its connections hold, even mid-fault.
		if out, exp := fl.OutstandingPages(), fl.ExpectedPages(); out != exp {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("shard %d: conservation: %d pages allocated, connections hold %d", s, out, exp))
		}
		consults, fired := injs[s].Counts()
		rep.Consults += consults
		rep.Fired += fired
		if consults == 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("shard %d: fault sites never consulted — injection not wired through", s))
		}
		rep.PerShard = append(rep.PerShard, fmt.Sprintf(
			"shard%d requests=%d errors=%d consults=%d fired=%d trips=%d fallback=%d",
			s, m.Requests, m.Errors, consults, fired, t.Trips, t.Degraded.FallbackOps))
		rep.Traces = append(rep.Traces, injs[s].TraceString())
	}
	rep.Epochs = sc.Engine().Epochs()
	rep.CrossMsgs = sc.Engine().Sent()
	if rep.Requests > 0 && rep.CrossMsgs < 2*(rep.Requests-uint64(cfg.Connections)) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(
			"dispatch fabric undercounted: %d msgs for %d requests", rep.CrossMsgs, rep.Requests))
	}
	return rep, sc, nil
}
