// Workload chaos: the production-workload soak behind `./ci.sh
// workload`. One seeded scenario — a KV-cache fleet starting half
// parked, an open-loop trace with a 3x flash crowd, and a forced rank
// failure injected mid-crowd — runs under the SLO autoscaler, and the
// harness checks the operational invariants a production cache owner
// would page on:
//
//   - the autoscaler actually reacts: the flash crowd forces at least
//     one administrative admission, and the SLO-held fraction over
//     measured control ticks stays above the floor;
//   - no flapping: the action log never admits and drains the same
//     rank back-to-back within the hysteresis window, and total actions
//     stay bounded (a flapping controller reshards connections every
//     tick — migrations are the symptom);
//   - page conservation across every rank driver, exactly as the fleet
//     chaos schedule checks it, but here while ranks are parked,
//     deployed, failed, and drained by two independent controllers (the
//     breaker and the autoscaler);
//   - seed replayability: the same seed reproduces the canonical
//     report byte-for-byte, serial or pooled trace generation.
package chaos

import (
	"fmt"

	"repro/internal/autoscale"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/wrkgen"
)

// WorkloadReport is the soak's outcome.
type WorkloadReport struct {
	Seed        int64
	Kind        string
	Issued      uint64
	Completed   uint64
	SLOHeldFrac float64
	Admits      uint64 // administrative (autoscaler) admissions
	Drains      uint64 // administrative drains
	Trips       uint64 // breaker trips (the injected fault)
	Actions     int
	FinalActive int
	Violations  []string
	// Canonical is the run's byte-compared replay artifact.
	Canonical string
}

// Collect implements telemetry.Collector.
func (r WorkloadReport) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "issued", Value: float64(r.Issued)})
	emit(telemetry.Sample{Name: "completed", Value: float64(r.Completed)})
	emit(telemetry.Sample{Name: "slo_held_frac", Value: r.SLOHeldFrac})
	emit(telemetry.Sample{Name: "admits", Value: float64(r.Admits)})
	emit(telemetry.Sample{Name: "drains", Value: float64(r.Drains)})
	emit(telemetry.Sample{Name: "trips", Value: float64(r.Trips)})
	emit(telemetry.Sample{Name: "actions", Value: float64(r.Actions)})
	emit(telemetry.Sample{Name: "final_active", Value: float64(r.FinalActive)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

// workloadSoakConfig is the pinned scenario; seed and pool vary.
func workloadSoakConfig(seed int64, pool *runner.Pool) workload.RunConfig {
	// Calibration (probe runs at these knobs): two ranks hold ~2.0M rps
	// of this KV mix at p99 ~17us and collapse near 2.8M; three or four
	// ranks hold 2.8M at ~25us. Base 900k with a 3x crowd peaks ~2.7M —
	// inside the parked capacity, far outside the initial two ranks —
	// so the SLO genuinely hinges on the autoscaler deploying them.
	return workload.RunConfig{
		Kind: "kv", Ranks: 4, InitialActive: 2, Conns: 48, Workers: 16, Seed: seed,
		HorizonPs: 8 * sim.Ms, WarmupPs: sim.Ms, DrainPs: 2 * sim.Ms,
		KV: workload.KVConfig{Keys: 1024, ZipfS: 0.99, ReadFrac: 0.9},
		Arrivals: wrkgen.ArrivalConfig{
			Streams: 4, BaseRPS: 9e5,
			DiurnalAmp: 0.15, DiurnalPeriodPs: 10 * sim.Ms,
			Flash:        []wrkgen.FlashCrowd{{StartPs: 3 * sim.Ms, EndPs: 6 * sim.Ms, Mult: 2.5}},
			BurstEveryPs: 2 * sim.Ms, BurstLen: 12, BurstGapPs: sim.Us,
		},
		Scale: &autoscale.Config{
			SLOPs: float64(100 * sim.Us), TickPs: 200 * sim.Us,
			UpAfter: 2, DownAfter: 6, CooldownTicks: 2, MinActive: 2,
		},
		// The fault lands mid-crowd — the worst moment: capacity is
		// already short and the breaker drains an active rank. Restore
		// arrives after the crowd passes.
		Faults: []workload.Fault{
			{AtPs: 4200 * sim.Us, Rank: 1},
			{AtPs: 7 * sim.Ms, Rank: 1, Restore: true},
		},
		Pool: pool,
	}
}

// RunWorkloadSoak executes the soak once. Construction failures return
// an error; invariant breaches land in Violations.
func RunWorkloadSoak(seed int64, pool *runner.Pool) (WorkloadReport, error) {
	rep, err := workload.Run(workloadSoakConfig(seed, pool))
	if err != nil {
		return WorkloadReport{}, err
	}
	out := WorkloadReport{
		Seed: seed, Kind: rep.Kind,
		Issued: rep.Issued, Completed: rep.Completed,
		SLOHeldFrac: rep.SLOHeldFrac,
		Admits:      rep.Fleet.AdminAdmits, Drains: rep.Fleet.AdminDrains,
		Trips:       rep.Fleet.Trips,
		Actions:     len(splitActions(rep.Actions)),
		FinalActive: rep.FinalActive,
		Canonical:   rep.Canonical(),
	}
	v := func(format string, args ...any) {
		out.Violations = append(out.Violations, fmt.Sprintf(format, args...))
	}
	if rep.Completed == 0 {
		v("no requests completed")
	}
	if rep.Issued < rep.Completed {
		v("completed %d > issued %d", rep.Completed, rep.Issued)
	}
	// The InitialActive=2 park counts as 2 drains; the crowd must force
	// at least one admission beyond that.
	if out.Admits == 0 {
		v("flash crowd never scaled up (0 admits)")
	}
	if out.Trips == 0 {
		v("injected fault never tripped the breaker")
	}
	if rep.SLOHeldFrac < 0.5 {
		v("SLO held only %.0f%% of measured ticks (floor 50%%)", rep.SLOHeldFrac*100)
	}
	if !rep.PagesOK {
		v("page conservation violated across rank drivers")
	}
	checkNoFlap(splitActions(rep.Actions), v)
	return out, nil
}

// splitActions breaks the action trace into lines.
func splitActions(trace string) []string {
	var out []string
	start := 0
	for i := 0; i < len(trace); i++ {
		if trace[i] == '\n' {
			if i > start {
				out = append(out, trace[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// checkNoFlap flags opposite-direction actions landing closer together
// than the hysteresis machinery permits (after an admit, cooldown plus
// the DownAfter streak put the earliest legitimate drain 8 ticks =
// 1.6ms out; flapWindowPs sits well inside that), and an action count
// that says the controller thrashed.
const flapWindowPs = sim.Ms

func checkNoFlap(actions []string, v func(string, ...any)) {
	type act struct {
		at   int64
		what string
	}
	parsed := make([]act, 0, len(actions))
	for _, line := range actions {
		var a act
		if _, err := fmt.Sscanf(line, "%d %s", &a.at, &a.what); err == nil {
			parsed = append(parsed, a)
		}
	}
	for i := 1; i < len(parsed); i++ {
		a, b := parsed[i-1], parsed[i]
		opposite := (a.what == "admit" && b.what == "drain") || (a.what == "drain" && b.what == "admit")
		if opposite && b.at-a.at < flapWindowPs {
			v("flap: %q then %q within %dus", actions[i-1], actions[i], (b.at-a.at)/sim.Us)
		}
	}
	if len(actions) > 12 {
		v("%d autoscale actions in a 10ms run (thrash)", len(actions))
	}
}
