// RDMA chaos: the peer-DMA ingress under a seeded fault schedule.
// Deposits stream through the NIC model into fleet-managed registered
// buffers while the injector eats doorbells and NAKs receivers, and the
// harness forces the two races the data path must survive:
//
//   - MR-unregister-during-flight (at ops/3): a WQE is posted, its MR is
//     quiesced before the doorbell rings, and the late write must fail
//     cleanly ("stale" completion, no landing) instead of hitting memory
//     whose registration was revoked;
//   - mid-migration peer writes (at 2*ops/3): a WQE is posted, the
//     connection's home rank is force-failed (drain + reshard moves the
//     buffers), and the late write must retarget to the post-migration
//     registration — never the freed pages.
//
// Invariants checked: every landing lies inside the registered region it
// was addressed to (no record outside its MR); WQE conservation — posted
// equals completed + failed + pending throughout, and pending is zero
// after disarm + drain; cross-rank page conservation over the fleet; no
// leaked engine events; and the report's combined trace (injector + NIC
// + placement) replays byte-identically from the seed.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/rdma"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// rdmaRanks matches the fleet schedule: failures always leave survivors.
const rdmaRanks = 3

// RDMAReport summarizes one RDMA chaos scenario.
type RDMAReport struct {
	Seed    int64
	Ops     int
	Devices int
	Policy  string
	// Tolerated counts deposits that failed with a degradable error
	// (retry exhaustion under injected doorbell loss / RNR).
	Tolerated int
	// Consults/Fired are the injector's totals across all sites.
	Consults, Fired int64
	// NIC counters after the final drain.
	Posted, Completed, Failed    uint64
	DoorbellsLost, RNRNaks       uint64
	StaleRetries, BoundsRefusals uint64
	PeerBytes                    uint64
	Migrations                   uint64
	Violations                   []string
	// Trace concatenates the fault, NIC-op, and placement traces; it
	// must replay byte-identically from the seed.
	Trace string
}

// Collect implements telemetry.Collector.
func (r RDMAReport) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "seed", Value: float64(r.Seed)})
	emit(telemetry.Sample{Name: "ops", Value: float64(r.Ops)})
	emit(telemetry.Sample{Name: "tolerated", Value: float64(r.Tolerated)})
	emit(telemetry.Sample{Name: "posted", Value: float64(r.Posted)})
	emit(telemetry.Sample{Name: "completed", Value: float64(r.Completed)})
	emit(telemetry.Sample{Name: "failed", Value: float64(r.Failed)})
	emit(telemetry.Sample{Name: "doorbells_lost", Value: float64(r.DoorbellsLost)})
	emit(telemetry.Sample{Name: "rnr_naks", Value: float64(r.RNRNaks)})
	emit(telemetry.Sample{Name: "stale_retries", Value: float64(r.StaleRetries)})
	emit(telemetry.Sample{Name: "bounds_refusals", Value: float64(r.BoundsRefusals)})
	emit(telemetry.Sample{Name: "migrations", Value: float64(r.Migrations)})
	emit(telemetry.Sample{Name: "violations", Value: float64(len(r.Violations))})
}

type rdmaScenario struct {
	rng   *rand.Rand
	inj   *fault.Injector
	sys   *sim.System
	nic   *rdma.NIC
	fl    *fleet.Fleet
	bkend *offload.RDMA
	base  []byte
	rep   *RDMAReport
	conns []*offload.Conn
	op    int
}

// RunRDMA executes one RDMA chaos scenario: ops seeded deposits over
// several fleet-homed connections with doorbell loss and RNR NAKs
// armed, plus the two forced races (MR unregister in flight, peer write
// across a drain-and-reshard migration), then disarm + drain + the full
// invariant sweep. The returned error reports harness construction
// failures only; invariant breaches land in RDMAReport.Violations.
func RunRDMA(seed int64, ops int) (RDMAReport, error) {
	if ops <= 0 {
		ops = 16
	}
	rep := RDMAReport{Seed: seed, Ops: ops, Devices: rdmaRanks}
	rng := rand.New(rand.NewSource(seed))
	inj := fault.New(seed)
	// The two RDMA sites get schedules drawn from the scenario RNG, so a
	// soak covers quiet, bursty, and saturated fault regimes.
	inj.Arm(rdma.SiteDoorbell, fault.Bernoulli{Prob: 0.02 + 0.2*rng.Float64()})
	inj.Arm(rdma.SiteRNR, fault.Bernoulli{Prob: 0.02 + 0.2*rng.Float64()})

	dc := core.DeviceConfig{
		Geometry:         dram.SmallGeometry(),
		ScratchpadPages:  8,
		ConfigPages:      8,
		DSALatencyCycles: 32,
		MMIOPages:        1,
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		SmartDIMMRanks: rdmaRanks,
		LLCBytes:       4 << 20,
		LLCWays:        8,
		DeviceConfig:   &dc,
		DataPath:       sim.DataPathPeer,
		Faults:         inj,
	})
	if err != nil {
		return rep, err
	}
	nic, err := rdma.New(rdma.Config{
		Sys: sys, Faults: inj, TraceOps: true, RecordLandings: true,
	})
	if err != nil {
		return rep, err
	}
	policies := []fleet.Policy{fleet.RoundRobin, fleet.LeastLoaded, fleet.Sticky}
	pol := policies[rng.Intn(len(policies))]
	rep.Policy = pol.String()
	fl, err := fleet.New(fleet.Config{
		Sys: sys, Policy: pol, RNIC: nic, TracePlacement: true,
		FailThreshold: 2, CooldownOps: 8, MigrateCooldownOps: 2,
	})
	if err != nil {
		return rep, err
	}
	bkend, err := offload.NewRDMA(fl, nic)
	if err != nil {
		return rep, err
	}

	s := &rdmaScenario{
		rng: rng, inj: inj, sys: sys, nic: nic, fl: fl, bkend: bkend,
		base: corpus.Generate(corpus.HTML, 96<<10, seed),
		rep:  &rep,
	}
	for i := 0; i < 4; i++ {
		conn, err := bkend.NewConn(offload.Compression, i, compMsg)
		if err != nil {
			return rep, err
		}
		s.conns = append(s.conns, conn)
	}

	forceQuiesce := ops / 3
	forceMigrate := (2 * ops) / 3
	for i := 0; i < ops; i++ {
		s.op = i
		switch i {
		case forceQuiesce:
			s.forceUnregisterInFlight()
		case forceMigrate:
			s.forceMigrationInFlight()
		}
		s.opDeposit(s.rng.Intn(len(s.conns)))
		s.checkWQEConservation("mid-stream")
	}

	// Disarm, then drain every QP: with injection quiet the doorbells
	// cannot be lost, so every retained WQE executes now.
	s.inj.DisarmAll()
	if _, err := s.nic.DrainAll(); err != nil {
		s.violate("drain: DrainAll after disarm: %v", err)
	}
	if p := s.nic.Pending(); p != 0 {
		s.violate("drain: %d WQEs still pending after disarm+drain", p)
	}
	s.checkWQEConservation("after disarm+drain")
	s.checkLandings()
	if out, exp := fl.OutstandingPages(), fl.ExpectedPages(); out != exp {
		s.violate("conservation: %d pages allocated across ranks, connections should hold %d", out, exp)
	}
	if n := sys.Engine.Pending(); n != 0 {
		s.violate("engine: %d events leaked", n)
	}

	st := nic.Stats()
	rep.Consults, rep.Fired = inj.Counts()
	rep.Posted, rep.Completed, rep.Failed = st.Posted, st.Completed, st.Failed
	rep.DoorbellsLost, rep.RNRNaks = st.DoorbellsLost, st.RNRNaks
	rep.StaleRetries, rep.BoundsRefusals = st.StaleRkeyRetries, st.BoundsRefusals
	rep.PeerBytes = st.PeerBytes
	rep.Migrations = fl.Totals().Migrations
	rep.Trace = inj.TraceString() + nic.TraceString() + fl.TraceString()
	return rep, nil
}

func (s *rdmaScenario) violate(format string, args ...interface{}) {
	s.rep.Violations = append(s.rep.Violations, fmt.Sprintf(format, args...))
}

// opDeposit streams one payload through the peer path. A few percent of
// deposits are rogue (deliberately out of bounds): the NIC must refuse
// them without touching memory.
func (s *rdmaScenario) opDeposit(slot int) {
	conn := s.conns[slot]
	if s.rng.Intn(16) == 0 {
		if err := s.nic.PostWrite(conn.ID, conn.Size-8, s.payload(256)); err != nil {
			if errors.Is(err, rdma.ErrSQFull) {
				s.rep.Tolerated++ // leftovers from a lost-doorbell deposit
			} else {
				s.violate("op %d: rogue post refused at the SQ (want bounds refusal at exec): %v", s.op, err)
			}
			return
		}
		if _, err := s.nic.RingDoorbell(conn.ID); err != nil {
			s.violate("op %d: rogue ring: %v", s.op, err)
		}
		return
	}
	n := 1 + s.rng.Intn(compMsg)
	if _, err := s.bkend.Ingest(conn, s.payload(n)); err != nil {
		if errors.Is(err, rdma.ErrRetryExhausted) {
			// Injected doorbell loss out-ran the retry budget; the WQEs
			// stay posted and the final drain delivers them.
			s.rep.Tolerated++
			return
		}
		s.violate("op %d: deposit conn %d: %v", s.op, conn.ID, err)
	}
}

// forceUnregisterInFlight posts a WQE, quiesces its MR before the
// doorbell, and checks the late write fails cleanly without landing.
func (s *rdmaScenario) forceUnregisterInFlight() {
	conn := s.conns[s.rng.Intn(len(s.conns))]
	if err := s.nic.PostWrite(conn.ID, 0, s.payload(1024)); err != nil {
		if !errors.Is(err, rdma.ErrSQFull) {
			s.violate("op %d: unregister-race post: %v", s.op, err)
		}
		return
	}
	if rk := s.nic.QuiesceQP(conn.ID); rk == 0 {
		s.violate("op %d: quiesce found no MR for conn %d", s.op, conn.ID)
		return
	}
	snap, _, err := s.sys.DMAOut(conn.Src, 1024)
	if err != nil {
		s.violate("op %d: unregister-race snapshot: %v", s.op, err)
		return
	}
	failedBefore := s.nic.Stats().Failed
	if _, err := s.nic.RingDoorbell(conn.ID); err != nil {
		s.violate("op %d: unregister-race ring: %v", s.op, err)
	}
	// The ring may be eaten by injected doorbell loss; only a delivered
	// ring must produce the clean "stale" failure.
	if s.nic.Stats().Failed > failedBefore {
		now, _, err := s.sys.DMAOut(conn.Src, 1024)
		if err != nil {
			s.violate("op %d: unregister-race readback: %v", s.op, err)
		} else if !bytes.Equal(snap, now) {
			s.violate("op %d: write landed through a revoked registration", s.op)
		}
	}
	// Restore ingress over the same buffer (the registration the next
	// deposits use).
	if _, err := s.nic.RebindQP(conn.ID, conn.Src, conn.Size); err != nil {
		s.violate("op %d: unregister-race rebind: %v", s.op, err)
	}
}

// forceMigrationInFlight posts a WQE, force-fails the connection's home
// rank (drain-and-reshard moves the buffers and rebinds the MR), and
// checks the late write followed the registration.
func (s *rdmaScenario) forceMigrationInFlight() {
	conn := s.conns[s.rng.Intn(len(s.conns))]
	home := s.fl.Home(conn.ID)
	if home < 0 {
		return // already homeless; nothing to migrate
	}
	data := s.payload(1024)
	if err := s.nic.PostWrite(conn.ID, 0, data); err != nil {
		if !errors.Is(err, rdma.ErrSQFull) {
			s.violate("op %d: migration-race post: %v", s.op, err)
		}
		return
	}
	oldSrc := conn.Src
	if err := s.fl.Fail(home); err != nil {
		s.violate("op %d: migration-race fail d%d: %v", s.op, home, err)
		return
	}
	if conn.Src == oldSrc {
		// No survivor accepted the buffers (stranded): the MR stays
		// over the same pages and the write may land there legally.
		s.readmitAll()
		return
	}
	oldSnap, _, err := s.sys.DMAOut(oldSrc, len(data))
	if err != nil {
		s.violate("op %d: migration-race snapshot: %v", s.op, err)
		return
	}
	completedBefore := s.nic.Stats().Completed
	if _, err := s.nic.RingDoorbell(conn.ID); err != nil {
		s.violate("op %d: migration-race ring: %v", s.op, err)
	}
	if s.nic.Stats().Completed > completedBefore {
		oldNow, _, err := s.sys.DMAOut(oldSrc, len(data))
		if err != nil {
			s.violate("op %d: migration-race readback: %v", s.op, err)
		} else if !bytes.Equal(oldSnap, oldNow) {
			s.violate("op %d: mid-migration write landed in the draining rank's freed pages", s.op)
		}
	}
	s.readmitAll()
}

// readmitAll returns tripped members to service so the soak keeps all
// ranks in play after a forced failure.
func (s *rdmaScenario) readmitAll() {
	for i := 0; i < s.fl.Members(); i++ {
		if err := s.fl.Readmit(i); err != nil {
			s.violate("op %d: readmit d%d: %v", s.op, i, err)
		}
	}
}

// payload returns a deterministic slice of the corpus.
func (s *rdmaScenario) payload(n int) []byte {
	off := s.rng.Intn(len(s.base) - n)
	return s.base[off : off+n]
}

// checkWQEConservation asserts posted == completed + failed + pending.
func (s *rdmaScenario) checkWQEConservation(when string) {
	st := s.nic.Stats()
	if st.Posted != st.Completed+st.Failed+uint64(s.nic.Pending()) {
		s.violate("wqe conservation %s (op %d): posted %d != completed %d + failed %d + pending %d",
			when, s.op, st.Posted, st.Completed, st.Failed, s.nic.Pending())
	}
}

// checkLandings asserts every recorded landing lies inside the MR it was
// addressed to.
func (s *rdmaScenario) checkLandings() {
	for _, l := range s.nic.Landings() {
		mr, ok := s.nic.LookupMR(l.Rkey)
		if !ok {
			s.violate("landing against unknown rk%d: %+v", l.Rkey, l)
			continue
		}
		if l.Addr < mr.Addr || l.Addr+uint64(l.Len) > mr.Addr+uint64(mr.Len) {
			s.violate("landing outside rk%d's region: %+v vs [%#x,+%d)", l.Rkey, l, mr.Addr, mr.Len)
		}
	}
}
