package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
)

// detScale is small enough to run every sweep twice in one test.
func detScale() Scale {
	return Scale{
		Connections: 32, Workers: 2,
		WarmupPs: sim.Ms / 2, MeasurePs: 2 * sim.Ms,
		LLCBytes: 128 << 10, LLCWays: 8,
	}
}

// renderSweeps runs the figure sweeps and formats every field of every
// result, so any divergence — values or ordering — shows up as a byte
// difference.
func renderSweeps(t *testing.T, pool *runner.Pool) string {
	t.Helper()
	sc := detScale()
	var b strings.Builder

	for _, p := range Fig2(pool, []float64{0, 0.5}) {
		fmt.Fprintf(&b, "fig2 %s %.2f %.6f %d\n", p.Placement, p.DropPct, p.Gbps, p.Resyncs)
	}

	f3, err := Fig3(pool, sc, []int{8, 32}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range f3 {
		fmt.Fprintf(&b, "fig3 %d %.6f %.6f %.6f\n", p.Connections, p.HTTPMemGBps, p.HTTPSMemGBps, p.NormalizedRatio)
	}

	f10, err := Fig10(pool, []int{128 << 10, 512 << 10}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f10 {
		fmt.Fprintf(&b, "fig10 %d %.6f %d\n", s.LLCBytes, s.EquilibriumKB, s.ForceRecycles)
		for _, p := range s.Series.Downsample(8) {
			fmt.Fprintf(&b, "fig10pt %d %.6f\n", p.AtPs, p.Value)
		}
	}

	perf, err := RunPlacements(pool, sc, server.HTTPSMode, []int{2048, 4096}, corpus.Text)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range perf {
		fmt.Fprintf(&b, "fig11 %s %d %.6f %.6f %.6f %.6f\n",
			p.Placement, p.MsgSize, p.Metrics.RPS, p.RPSNorm, p.CPUNorm, p.MemNorm)
	}

	t1, err := Table1(pool, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t1 {
		fmt.Fprintf(&b, "table1 %s %.6f %.6f %.6f\n", r.Placement, r.NginxSlowdown, r.McfSlowdown, r.CoRunRPS)
	}
	return b.String()
}

// TestSweepsDeterministicUnderParallelism is the regression gate for the
// parallel harness: a four-worker pool must reproduce the serial sweep
// byte-for-byte. Every simulation owns its engine and seeded RNG, so the
// only way this can fail is shared mutable state leaking between runs —
// exactly the bug class this test exists to catch.
func TestSweepsDeterministicUnderParallelism(t *testing.T) {
	serial := renderSweeps(t, nil)
	parallel := renderSweeps(t, runner.New(4))
	if serial != parallel {
		t.Fatalf("parallel sweep diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if strings.Count(serial, "\n") < 20 {
		t.Fatalf("sweep output suspiciously small:\n%s", serial)
	}
}
