package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

// CritPathRow is one placement's critical-path attribution: for every
// measured request, which stage blocked its latency window, aggregated
// into per-stage shares. It is the trace-derived counterpart of
// FigBreakdown's accounting-derived table — the same Fig. 13-style
// argument, but reconstructed purely from the Perfetto event stream, so
// it also validates that the instrumentation tells the same story as
// the server's internal counters. On the SmartDIMM placement the copy
// stage never appears (inline source: no page-cache copy spans exist),
// reproducing the paper's "copy vanishes" claim from the trace alone.
type CritPathRow struct {
	Placement Placement
	Requests  int
	P99Ps     int64
	Dominant  string // stage that blocked the most requests
	// Stages is the full blocking table (share of summed blocked time),
	// sorted by blocked time descending.
	Stages []profile.StageTotal
}

// ShareOf returns the named stage's share of blocked time in percent
// (0 when the stage never blocked — e.g. "copy" on SmartDIMM).
func (r CritPathRow) ShareOf(stage string) float64 {
	for _, s := range r.Stages {
		if s.Name == stage {
			return s.SharePct
		}
	}
	return 0
}

// CritPathBreakdown runs one traced serving window per placement and
// critical-path-analyzes each trace. Traces never leave the run: each
// placement gets a private Tracer, and the analysis happens in-process
// on the recorded events.
func CritPathBreakdown(pool *runner.Pool, sc Scale, mode server.Mode, msgSize int) ([]CritPathRow, error) {
	placements := []Placement{PlaceCPU, PlaceSmartNIC, PlaceQAT, PlaceSmartDIMM}
	type result struct {
		row  CritPathRow
		skip bool
	}
	results, err := runner.Map(context.Background(), pool, placements,
		func(_ context.Context, place Placement, _ int) (result, error) {
			tr := telemetry.New()
			sys, err := sim.NewSystem(sim.SystemConfig{
				Params:        sim.DefaultParams(),
				LLCBytes:      sc.LLCBytes,
				LLCWays:       sc.LLCWays,
				Geometry:      mediumGeometry(),
				WithSmartDIMM: place == PlaceSmartDIMM,
				Tracer:        tr,
			})
			if err != nil {
				return result{}, err
			}
			b := backendFor(place, sys)
			if !b.Supports(mode2ulp(mode)) {
				return result{skip: true}, nil
			}
			srv, err := server.New(sys.Engine, server.Config{
				Sys: sys, Backend: b, Mode: mode, Workers: sc.Workers,
				MsgSize: msgSize, Connections: sc.Connections,
				FileKind: corpus.HTML, Seed: 5,
			})
			if err != nil {
				return result{}, err
			}
			gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
				Connections: sc.Connections,
				ThinkPs:     int64(sys.Params.RTTUs * float64(sim.Us)),
			})
			gen.Start()
			sys.Engine.RunUntil(sc.WarmupPs)
			srv.BeginMeasurement()
			sys.Engine.RunUntil(sc.WarmupPs + sc.MeasurePs)
			if sys.Trace != nil {
				sys.Trace.ExportTo(tr)
			}
			cp := profile.AnalyzeTracer(tr, profile.Options{FromPs: sc.WarmupPs})
			row := CritPathRow{Placement: place, Requests: len(cp.Requests),
				P99Ps: cp.PercentileLatencyPs(99), Stages: cp.Stages}
			best := 0
			for _, s := range cp.Stages {
				if s.Dominant > best {
					best, row.Dominant = s.Dominant, s.Name
				}
			}
			return result{row: row}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []CritPathRow
	for _, r := range results {
		if !r.skip {
			out = append(out, r.row)
		}
	}
	return out, nil
}

// WriteCritPathTable renders the per-placement stage-share table the
// `figures -fig critpath` command prints: one row per placement, the
// server pipeline stages plus the uncovered wait share, each as a
// percentage of that placement's total blocked time.
func WriteCritPathTable(w io.Writer, rows []CritPathRow) error {
	cols := append(append([]string{}, server.StageNames[:]...), profile.WaitStage)
	if _, err := fmt.Fprintf(w, "%-24s %8s %10s", "placement", "reqs", "p99(us)"); err != nil {
		return err
	}
	for _, c := range cols {
		if _, err := fmt.Fprintf(w, " %7s%%", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  dominant\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-24s %8d %10.1f", r.Placement, r.Requests,
			float64(r.P99Ps)/float64(sim.Us)); err != nil {
			return err
		}
		for _, c := range cols {
			if _, err := fmt.Fprintf(w, " %8.1f", r.ShareOf(c)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  %s\n", r.Dominant); err != nil {
			return err
		}
	}
	return nil
}
