// Package experiments contains one runner per table and figure of the
// paper's evaluation (§III and §VII). cmd/figures prints their output;
// bench_test.go wraps them as benchmarks; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/corun"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/nettcp"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wrkgen"
)

// Every sweep in this package takes a *runner.Pool: each parameter point
// builds its own sim.System and sim.Engine, so points are independent
// and fan out across the pool's workers. Results are assembled in input
// order, so a parallel sweep prints byte-identically to a serial one
// (nil pool); TestSweepsDeterministicUnderParallelism pins this down.

// Scale bounds an experiment run. Quick keeps `go test` fast; Paper
// approaches the paper's workload sizes.
type Scale struct {
	Connections int
	Workers     int
	WarmupPs    int64
	MeasurePs   int64
	LLCBytes    int
	LLCWays     int
}

// QuickScale is used by tests and benchmarks.
func QuickScale() Scale {
	// 256 connections against 4 workers keeps the server CPU-saturated
	// (the regime the paper evaluates: "a large number of connections
	// and high network rates"), and the ~3MB working set thrashes the
	// 512KB LLC the way the testbed's 1024 connections thrash 22MB.
	return Scale{
		Connections: 256, Workers: 4,
		WarmupPs: 2 * sim.Ms, MeasurePs: 10 * sim.Ms,
		LLCBytes: 512 << 10, LLCWays: 8,
	}
}

// PaperScale approximates the testbed (1024 wrk connections, 10 server
// threads). The LLC is scaled with the workload so contention matches.
func PaperScale() Scale {
	return Scale{
		Connections: 1024, Workers: 10,
		WarmupPs: 4 * sim.Ms, MeasurePs: 20 * sim.Ms,
		LLCBytes: 4 << 20, LLCWays: 16,
	}
}

// mediumGeometry provides 512MB of simulated DRAM, enough for
// paper-scale connection counts.
func mediumGeometry() dram.Geometry {
	return dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128}
}

// Placement names one accelerator configuration of §VI.
type Placement int

// The four placements compared in Fig. 11/12.
const (
	PlaceCPU Placement = iota
	PlaceSmartNIC
	PlaceQAT
	PlaceSmartDIMM
)

// String names the placement as the paper does.
func (p Placement) String() string {
	switch p {
	case PlaceCPU:
		return "CPU"
	case PlaceSmartNIC:
		return "SmartNIC"
	case PlaceQAT:
		return "QuickAssist"
	default:
		return "SmartDIMM"
	}
}

// newSystem assembles a system for a placement.
func newSystem(sc Scale, place Placement, traceCAS int) (*sim.System, error) {
	return sim.NewSystem(sim.SystemConfig{
		Params:        sim.DefaultParams(),
		LLCBytes:      sc.LLCBytes,
		LLCWays:       sc.LLCWays,
		Geometry:      mediumGeometry(),
		WithSmartDIMM: place == PlaceSmartDIMM,
		TraceCAS:      traceCAS,
	})
}

// backendFor builds the placement's backend over sys.
func backendFor(place Placement, sys *sim.System) offload.Backend {
	switch place {
	case PlaceCPU:
		return &offload.CPU{Sys: sys}
	case PlaceSmartNIC:
		return &offload.SmartNIC{Sys: sys}
	case PlaceQAT:
		return &offload.QAT{Sys: sys}
	default:
		return &offload.SmartDIMM{Sys: sys}
	}
}

// --- Fig. 2 -----------------------------------------------------------------

// Fig2Point is one (placement, drop rate) bandwidth measurement.
type Fig2Point struct {
	Placement string
	DropPct   float64
	Gbps      float64
	Resyncs   uint64
}

// Fig2 measures encrypted-connection bandwidth for the CPU and SmartNIC
// configurations under injected packet drops, one drop rate per worker.
func Fig2(pool *runner.Pool, dropsPct []float64) []Fig2Point {
	p := sim.DefaultParams()
	const total = 8 << 20
	pairs, _ := runner.Map(context.Background(), pool, dropsPct,
		func(_ context.Context, d float64, _ int) ([2]Fig2Point, error) {
			prob := d / 100
			cpu := nettcp.MeasureGoodput(p, nettcp.CPUTLSHook{P: p}, prob, total, 11)
			nic := &nettcp.NICTLSHook{P: p, RecordLen: 16384}
			nicRes := nettcp.MeasureGoodput(p, nic, prob, total, 11)
			return [2]Fig2Point{
				{Placement: "CPU", DropPct: d, Gbps: cpu.GoodputGbps},
				{Placement: "SmartNIC", DropPct: d, Gbps: nicRes.GoodputGbps, Resyncs: nicRes.Resyncs},
			}, nil
		})
	out := make([]Fig2Point, 0, 2*len(pairs))
	for _, pr := range pairs {
		out = append(out, pr[0], pr[1])
	}
	return out
}

// --- Fig. 2b (bursty loss) --------------------------------------------------

// Fig2bPoint is one (placement, burst intensity) goodput measurement
// under Gilbert-Elliott bursty loss, link flaps, and mild reordering.
type Fig2bPoint struct {
	Placement        string
	PGoodBadPct      float64 // burst-entry probability, percent per packet
	Gbps             float64
	BurstDrops       uint64
	FlapDrops        uint64
	Resyncs          uint64
	FallbackEncrypts uint64
}

// Fig2b extends Fig. 2 from Bernoulli drops to the loss patterns real
// networks produce: Gilbert-Elliott bursts (dense loss while the channel
// is bad), periodic link-flap outages, and mild reordering. Each burst
// desynchronizes the autonomous SmartNIC engine again, so the NIC
// placement pays a resync plus a window of software-fallback encryptions
// per loss event while the CPU placement only retransmits — the same
// cliff as Fig. 2, but reached at far lower average loss rates.
func Fig2b(pool *runner.Pool, pGoodBadPct []float64) []Fig2bPoint {
	p := sim.DefaultParams()
	const total = 8 << 20
	pairs, _ := runner.Map(context.Background(), pool, pGoodBadPct,
		func(_ context.Context, g float64, _ int) ([2]Fig2bPoint, error) {
			net := nettcp.BurstyNet{
				Burst:       fault.GEConfig{PGoodBad: g / 100, PBadGood: 0.2, LossBad: 0.8},
				FlapEveryPs: 50 * sim.Ms, FlapDownPs: 200 * sim.Us,
				ReorderProb: 0.001, ReorderDelayPs: 300 * sim.Us,
			}
			cpu := nettcp.MeasureGoodputBursty(p, nettcp.CPUTLSHook{P: p}, net, total, 11)
			nic := &nettcp.NICTLSHook{P: p, RecordLen: 16384, FallbackRecords: 16}
			nicRes := nettcp.MeasureGoodputBursty(p, nic, net, total, 11)
			return [2]Fig2bPoint{
				{Placement: "CPU", PGoodBadPct: g, Gbps: cpu.GoodputGbps,
					BurstDrops: cpu.BurstDrops, FlapDrops: cpu.FlapDrops},
				{Placement: "SmartNIC", PGoodBadPct: g, Gbps: nicRes.GoodputGbps,
					BurstDrops: nicRes.BurstDrops, FlapDrops: nicRes.FlapDrops,
					Resyncs: nicRes.Resyncs, FallbackEncrypts: nicRes.FallbackEncrypts},
			}, nil
		})
	out := make([]Fig2bPoint, 0, 2*len(pairs))
	for _, pr := range pairs {
		out = append(out, pr[0], pr[1])
	}
	return out
}

// --- Fig. 3 -----------------------------------------------------------------

// Fig3Point is one connection-count measurement.
type Fig3Point struct {
	Connections     int
	HTTPMemGBps     float64
	HTTPSMemGBps    float64
	NormalizedRatio float64 // HTTPS/HTTP memory bandwidth per request
}

// Fig3 compares HTTP and HTTPS memory bandwidth as connections grow, one
// connection count per worker.
func Fig3(pool *runner.Pool, sc Scale, connCounts []int, msgSize int) ([]Fig3Point, error) {
	out, err := runner.Map(context.Background(), pool, connCounts,
		func(_ context.Context, conns, _ int) (Fig3Point, error) {
			run := func(mode server.Mode) (server.Metrics, error) {
				sys, err := newSystem(sc, PlaceCPU, 0)
				if err != nil {
					return server.Metrics{}, err
				}
				cfg := server.Config{
					Sys: sys, Mode: mode, Workers: sc.Workers, MsgSize: msgSize,
					Connections: conns, FileKind: corpus.HTML, Seed: 7,
				}
				if mode != server.PlainHTTP {
					cfg.Backend = &offload.CPU{Sys: sys}
				}
				return server.RunClosedLoop(cfg, sc.WarmupPs, sc.MeasurePs)
			}
			http, err := run(server.PlainHTTP)
			if err != nil {
				return Fig3Point{}, err
			}
			https, err := run(server.HTTPSMode)
			if err != nil {
				return Fig3Point{}, err
			}
			ratio := 1.0
			if http.MemBWGBps > 0.001 {
				ratio = https.MemBWGBps / http.MemBWGBps
			}
			return Fig3Point{
				Connections: conns, HTTPMemGBps: http.MemBWGBps, HTTPSMemGBps: https.MemBWGBps,
				NormalizedRatio: ratio,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Fig. 9 -----------------------------------------------------------------

// Fig9Result is the CAS trace of concurrent CompCpy offloads.
type Fig9Result struct {
	Trace        *stats.CASTrace
	MeanRunLen   map[int]float64 // mean monotonic rdCAS run length per core
	SpreadBytes  uint64
	SelfRecycles uint64
}

// Fig9 reproduces the trace experiment: four cores concurrently
// offloading TLS records, buffers spaced 32MB apart.
func Fig9() (*Fig9Result, error) {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
		Geometry: mediumGeometry(), WithSmartDIMM: true, TraceCAS: 200000,
	})
	if err != nil {
		return nil, err
	}
	const cores = 4
	const msg = 16384 - core.TagSize
	backend := &offload.SmartDIMM{Sys: sys}
	var conns []*offload.Conn
	for c := 0; c < cores; c++ {
		// Space the buffers 32MB apart as in the paper's trace.
		want := uint64(c) * 32 << 20
		for {
			probe, err := sys.Driver.AllocPages(1)
			if err != nil {
				return nil, err
			}
			if probe >= want {
				break
			}
		}
		conn, err := backend.NewConn(offload.TLS, c, msg)
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
	}
	payload := corpus.Generate(corpus.Text, msg, 3)
	for round := 0; round < 6; round++ {
		for c := 0; c < cores; c++ {
			if err := offload.StagePayloadDMA(sys, conns[c], payload); err != nil {
				return nil, err
			}
			if _, err := backend.Process(offload.TLS, c, conns[c], msg); err != nil {
				return nil, err
			}
		}
	}
	res := &Fig9Result{
		Trace:        sys.Trace,
		MeanRunLen:   map[int]float64{},
		SpreadBytes:  sys.Trace.AddressSpreadBytes(),
		SelfRecycles: sys.Dev.Stats().SelfRecycles,
	}
	for corenum, runs := range sys.Trace.MonotonicRunLengths() {
		if corenum < 0 {
			continue // DMA / writeback traffic without core attribution
		}
		sum := 0
		for _, r := range runs {
			sum += r
		}
		if len(runs) > 0 {
			res.MeanRunLen[corenum] = float64(sum) / float64(len(runs))
		}
	}
	return res, nil
}

// --- Fig. 10 ----------------------------------------------------------------

// Fig10Series is the scratchpad occupancy over time for one LLC size.
type Fig10Series struct {
	LLCBytes      int
	Series        *stats.TimeSeries
	EquilibriumKB float64 // max occupancy after warmup
	ForceRecycles uint64
}

// Fig10 sweeps LLC provisioning (the paper uses CAT for 10-50MB) and
// samples Scratchpad occupancy while the HTTPS workload runs, one LLC
// size per worker.
func Fig10(pool *runner.Pool, llcSizes []int, sc Scale) ([]Fig10Series, error) {
	out, err := runner.Map(context.Background(), pool, llcSizes,
		func(_ context.Context, llc, _ int) (Fig10Series, error) {
			sys, err := sim.NewSystem(sim.SystemConfig{
				Params: sim.DefaultParams(), LLCBytes: llc, LLCWays: sc.LLCWays,
				Geometry: mediumGeometry(), WithSmartDIMM: true,
			})
			if err != nil {
				return Fig10Series{}, err
			}
			eng := sim.NewEngine()
			srv, err := server.New(eng, server.Config{
				Sys: sys, Backend: &offload.SmartDIMM{Sys: sys}, Mode: server.HTTPSMode,
				Workers: sc.Workers, MsgSize: 4096, Connections: sc.Connections,
				FileKind: corpus.Text, Seed: 3,
			})
			if err != nil {
				return Fig10Series{}, err
			}
			gen := wrkgen.New(eng, srv, wrkgen.Config{Connections: sc.Connections})
			series := &stats.TimeSeries{Name: fmt.Sprintf("llc=%dMB", llc>>20)}
			var tick func()
			tick = func() {
				series.Append(eng.Now(), float64(sys.Dev.ScratchpadOccupancyBytes()))
				eng.After(100*sim.Us, tick)
			}
			gen.Start()
			eng.After(0, tick)
			eng.RunUntil(sc.WarmupPs + sc.MeasurePs)
			return Fig10Series{
				LLCBytes:      llc,
				Series:        series,
				EquilibriumKB: series.MaxAfter(sc.WarmupPs) / 1024,
				ForceRecycles: sys.Driver.Stats().ForceRecycleCalls,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- Fig. 11 / Fig. 12 -------------------------------------------------------

// PerfPoint is one (placement, message size) server measurement,
// normalized against the CPU configuration by the caller.
type PerfPoint struct {
	Placement Placement
	MsgSize   int
	Metrics   server.Metrics
	// Normalized to the CPU run of the same message size:
	RPSNorm, CPUNorm, MemNorm float64
}

// RunPlacements measures the server under every placement supporting
// the ULP, normalizing to CPU (Fig. 11 for TLS, Fig. 12 for
// compression). All (message size, placement) simulations fan out
// across the pool; normalization happens after the barrier, against the
// CPU run of the same message size.
func RunPlacements(pool *runner.Pool, sc Scale, mode server.Mode, msgSizes []int, kind corpus.Kind) ([]PerfPoint, error) {
	placements := []Placement{PlaceCPU, PlaceSmartNIC, PlaceQAT, PlaceSmartDIMM}
	warm, meas := sc.WarmupPs, sc.MeasurePs
	if mode == server.CompressedHTTP {
		// Software deflate is ~50x slower than AES-NI: the closed loop
		// needs proportionally longer windows to reach steady state.
		warm *= 8
		meas *= 8
	}
	type job struct {
		msg   int
		place Placement
	}
	type result struct {
		m    server.Metrics
		skip bool // placement does not support this ULP
	}
	jobs := make([]job, 0, len(msgSizes)*len(placements))
	for _, msg := range msgSizes {
		for _, place := range placements {
			jobs = append(jobs, job{msg: msg, place: place})
		}
	}
	results, err := runner.Map(context.Background(), pool, jobs,
		func(_ context.Context, j job, _ int) (result, error) {
			sys, err := newSystem(sc, j.place, 0)
			if err != nil {
				return result{}, err
			}
			b := backendFor(j.place, sys)
			if !b.Supports(mode2ulp(mode)) {
				return result{skip: true}, nil
			}
			m, err := server.RunClosedLoop(server.Config{
				Sys: sys, Backend: b, Mode: mode, Workers: sc.Workers,
				MsgSize: j.msg, Connections: sc.Connections, FileKind: kind, Seed: 5,
			}, warm, meas)
			if err != nil {
				return result{}, err
			}
			return result{m: m}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []PerfPoint
	for i, j := range jobs {
		if results[i].skip {
			continue
		}
		m := results[i].m
		pt := PerfPoint{Placement: j.place, MsgSize: j.msg, Metrics: m}
		// The CPU placement leads each message-size group.
		cpuBase := results[(i/len(placements))*len(placements)].m
		if cpuBase.RPS > 0 {
			pt.RPSNorm = m.RPS / cpuBase.RPS
			pt.CPUNorm = perReq(m.CPUBusyPs, m.Requests) / perReq(cpuBase.CPUBusyPs, cpuBase.Requests)
			pt.MemNorm = perReqU(m.MemBytes, m.Requests) / perReqU(cpuBase.MemBytes, cpuBase.Requests)
		}
		out = append(out, pt)
	}
	return out, nil
}

func mode2ulp(m server.Mode) offload.ULP {
	if m == server.HTTPSMode {
		return offload.TLS
	}
	return offload.Compression
}

func perReq(v int64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

func perReqU(v, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(v) / float64(n)
}

// --- Table I -----------------------------------------------------------------

// Table1Row is one placement's co-run slowdowns.
type Table1Row struct {
	Placement     Placement
	NginxSlowdown float64 // fraction of solo RPS lost
	McfSlowdown   float64 // fraction of solo ops lost
	CoRunRPS      float64
}

// Table1 measures performance isolation: Nginx+TLS co-running with the
// mcf-like antagonist, each normalized to its solo run. Each placement
// needs three independent simulations (solo server, solo antagonist,
// co-run); all twelve fan out across the pool.
func Table1(pool *runner.Pool, sc Scale) ([]Table1Row, error) {
	// Isolation needs headroom: size the LLC so the solo server largely
	// fits (low miss rate), then let the antagonist evict it. The
	// testbed's 22MB LLC plays this role for 1024 connections; scale it
	// to the configured connection count (~16KB working set each).
	sc.LLCBytes = sc.Connections * 16 << 10
	if sc.LLCBytes < 1<<20 {
		sc.LLCBytes = 1 << 20
	}
	placements := []Placement{PlaceCPU, PlaceSmartNIC, PlaceQAT, PlaceSmartDIMM}
	const (
		soloServer = iota
		soloAntagonist
		coRun
		jobsPerPlace
	)
	type job struct {
		place Placement
		kind  int
	}
	type result struct {
		rps, ops     float64 // solo measurements
		coRPS, coOps float64 // co-run measurements
	}
	jobs := make([]job, 0, len(placements)*jobsPerPlace)
	for _, place := range placements {
		for k := 0; k < jobsPerPlace; k++ {
			jobs = append(jobs, job{place: place, kind: k})
		}
	}
	results, err := runner.Map(context.Background(), pool, jobs,
		func(_ context.Context, j job, _ int) (result, error) {
			sys, err := newSystem(sc, j.place, 0)
			if err != nil {
				return result{}, err
			}
			switch j.kind {
			case soloServer:
				m, err := server.RunClosedLoop(server.Config{
					Sys: sys, Backend: backendFor(j.place, sys), Mode: server.HTTPSMode,
					Workers: sc.Workers, MsgSize: 4096, Connections: sc.Connections,
					FileKind: corpus.Text, Seed: 5,
				}, sc.WarmupPs, sc.MeasurePs)
				if err != nil {
					return result{}, err
				}
				return result{rps: m.RPS}, nil
			case soloAntagonist:
				ops, err := runAntagonist(sys, sc)
				return result{ops: ops}, err
			default:
				coRPS, coOps, err := runCoLocated(sys, j.place, sc)
				return result{coRPS: coRPS, coOps: coOps}, err
			}
		})
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, len(placements))
	for i, place := range placements {
		solo := results[i*jobsPerPlace+soloServer]
		ant := results[i*jobsPerPlace+soloAntagonist]
		co := results[i*jobsPerPlace+coRun]
		out = append(out, Table1Row{
			Placement:     place,
			NginxSlowdown: 1 - co.coRPS/solo.rps,
			McfSlowdown:   1 - co.coOps/ant.ops,
			CoRunRPS:      co.coRPS,
		})
	}
	return out, nil
}

// runAntagonist measures the co-runner's solo throughput.
func runAntagonist(sys *sim.System, sc Scale) (float64, error) {
	eng := sim.NewEngine()
	a, err := corun.Start(eng, corun.DefaultConfig(sys))
	if err != nil {
		return 0, err
	}
	eng.RunUntil(sc.WarmupPs)
	a.BeginMeasurement()
	eng.RunUntil(sc.WarmupPs + sc.MeasurePs)
	return a.OpsPerSecond(), nil
}

// runCoLocated runs the server and the antagonist on one engine and
// memory system.
func runCoLocated(sys *sim.System, place Placement, sc Scale) (rps, ops float64, err error) {
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{
		Sys: sys, Backend: backendFor(place, sys), Mode: server.HTTPSMode,
		Workers: sc.Workers, MsgSize: 4096, Connections: sc.Connections,
		FileKind: corpus.Text, Seed: 5,
	})
	if err != nil {
		return 0, 0, err
	}
	gen := wrkgen.New(eng, srv, wrkgen.Config{Connections: sc.Connections})
	ant, err := corun.Start(eng, corun.DefaultConfig(sys))
	if err != nil {
		return 0, 0, err
	}
	gen.Start()
	eng.RunUntil(sc.WarmupPs)
	gen.BeginMeasurement()
	srv.BeginMeasurement()
	ant.BeginMeasurement()
	eng.RunUntil(sc.WarmupPs + sc.MeasurePs)
	return gen.RPS(), ant.OpsPerSecond(), nil
}

// --- Fig. 13 -----------------------------------------------------------------

// Fig13Row is one placement's qualitative scorecard (0-3 scale, higher
// is better), matching the radar chart's axes.
type Fig13Row struct {
	Placement            string
	LowLLCContention     int // performance when the LLC is uncontended
	HighLLCContention    int // performance under contention
	TransportCompat      int // works with TCP and UDP stacks
	ULPDiversity         int // non-size-preserving / non-incremental ULPs
	LossResistance       int // performance under packet loss/reorder
	TransportFlexibility int // layer-4 software remains evolvable
}

// Fig13 returns the design-space comparison. The scores encode the
// paper's qualitative claims; the quantitative figures substantiate the
// contended/loss axes.
func Fig13() []Fig13Row {
	return []Fig13Row{
		{Placement: "CPU", LowLLCContention: 3, HighLLCContention: 1, TransportCompat: 3, ULPDiversity: 3, LossResistance: 3, TransportFlexibility: 3},
		{Placement: "SmartNIC (autonomous)", LowLLCContention: 3, HighLLCContention: 2, TransportCompat: 2, ULPDiversity: 1, LossResistance: 1, TransportFlexibility: 3},
		{Placement: "SmartNIC (TOE)", LowLLCContention: 3, HighLLCContention: 2, TransportCompat: 1, ULPDiversity: 2, LossResistance: 2, TransportFlexibility: 1},
		{Placement: "PCIe (QuickAssist)", LowLLCContention: 1, HighLLCContention: 1, TransportCompat: 3, ULPDiversity: 3, LossResistance: 3, TransportFlexibility: 3},
		{Placement: "SmartDIMM", LowLLCContention: 2, HighLLCContention: 3, TransportCompat: 3, ULPDiversity: 3, LossResistance: 3, TransportFlexibility: 3},
	}
}
