// The autoscale experiment: a KV-cache fleet starting half parked
// serves an open-loop trace with a flash crowd and a forced rank
// failure, supervised by the SLO autoscaler. The timeline samples the
// observed p99 and the active rank count at every control tick, with
// the controller's decisions marked on the ticks they landed in — the
// printed series shows the crowd breaching the SLO, ranks deploying,
// the breaker absorbing the fault, and the fleet draining back once
// the crowd passes.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/autoscale"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wrkgen"
)

// AutoscalePoint is one control tick of the timeline.
type AutoscalePoint struct {
	AtPs   int64
	Active int
	P99Ps  float64
	Mark   string // controller action(s) landing in this tick, if any
}

// AutoscaleResult is the timeline plus the run's figure of merit.
type AutoscaleResult struct {
	Points      []AutoscalePoint
	TickPs      int64
	SLOPs       float64
	SLOHeldFrac float64
	CrowdPs     [2]int64 // flash-crowd start/end
	FaultPs     int64
	Report      workload.Report
}

// Autoscale runs the flash-crowd + rank-fault scenario (the same shape
// the chaos workload soak pins) and assembles the per-tick timeline.
func Autoscale(seed int64) (AutoscaleResult, error) {
	const (
		tickPs  = 200 * sim.Us
		crowdOn = 3 * sim.Ms
		crowdOf = 6 * sim.Ms
		faultPs = 4200 * sim.Us
	)
	res := AutoscaleResult{
		TickPs: tickPs, SLOPs: float64(100 * sim.Us),
		CrowdPs: [2]int64{crowdOn, crowdOf}, FaultPs: faultPs,
	}
	rep, err := workload.Run(workload.RunConfig{
		Kind: "kv", Ranks: 4, InitialActive: 2, Conns: 48, Workers: 16, Seed: seed,
		HorizonPs: 8 * sim.Ms, WarmupPs: sim.Ms, DrainPs: 2 * sim.Ms,
		KV: workload.KVConfig{Keys: 1024, ZipfS: 0.99, ReadFrac: 0.9},
		Arrivals: wrkgen.ArrivalConfig{
			Streams: 4, BaseRPS: 9e5,
			DiurnalAmp: 0.15, DiurnalPeriodPs: 10 * sim.Ms,
			Flash:        []wrkgen.FlashCrowd{{StartPs: crowdOn, EndPs: crowdOf, Mult: 2.5}},
			BurstEveryPs: 2 * sim.Ms, BurstLen: 12, BurstGapPs: sim.Us,
		},
		Scale: &autoscale.Config{
			SLOPs: res.SLOPs, TickPs: tickPs,
			UpAfter: 2, DownAfter: 6, CooldownTicks: 2, MinActive: 2,
		},
		Faults: []workload.Fault{
			{AtPs: faultPs, Rank: 1},
			{AtPs: 7 * sim.Ms, Rank: 1, Restore: true},
		},
		// The default alert rules ride the same scraper the controller
		// reads; their transitions land on the timeline as tick marks.
		Rules: workload.DefaultAlertRules(res.SLOPs),
	})
	if err != nil {
		return res, err
	}
	res.Report = rep
	res.SLOHeldFrac = rep.SLOHeldFrac

	res.Points = make([]AutoscalePoint, len(rep.ActiveTimeline))
	for i := range res.Points {
		res.Points[i] = AutoscalePoint{
			AtPs: int64(i+1) * tickPs, Active: rep.ActiveTimeline[i],
		}
		if i < len(rep.P99Timeline) {
			res.Points[i].P99Ps = rep.P99Timeline[i]
		}
	}
	// Pin each controller decision onto the tick it fired at (actions
	// land exactly on tick instants).
	var at int64
	var what string
	for _, line := range splitLines(rep.Actions) {
		if _, err := fmt.Sscanf(line, "%d %s", &at, &what); err != nil {
			continue
		}
		idx := int(at/tickPs) - 1
		if idx < 0 || idx >= len(res.Points) {
			continue
		}
		if res.Points[idx].Mark != "" {
			res.Points[idx].Mark += ", "
		}
		res.Points[idx].Mark += what
	}
	// Alert transitions land on scrape instants — tick instants here, the
	// scraper defaulting to the control interval.
	for _, tr := range rep.Alerts {
		idx := int(tr.AtPs/tickPs) - 1
		if idx < 0 || idx >= len(res.Points) {
			continue
		}
		if res.Points[idx].Mark != "" {
			res.Points[idx].Mark += ", "
		}
		res.Points[idx].Mark += fmt.Sprintf("[%s %s->%s]", tr.Rule, tr.From, tr.To)
	}
	return res, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// WriteAutoscaleTimeline renders the per-tick series with the crowd
// window, the injected fault, and every controller decision marked.
func (r AutoscaleResult) WriteAutoscaleTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%8s %7s %10s %5s  %s\n", "t(ms)", "active", "p99(us)", "slo", "event"); err != nil {
		return err
	}
	for _, p := range r.Points {
		verdict := "ok"
		if p.P99Ps > r.SLOPs {
			verdict = "MISS"
		}
		mark := p.Mark
		if r.CrowdPs[0] > p.AtPs-r.TickPs && r.CrowdPs[0] <= p.AtPs {
			mark = join(mark, "<- flash crowd on")
		}
		if r.FaultPs > p.AtPs-r.TickPs && r.FaultPs <= p.AtPs {
			mark = join(mark, "<- rank 1 fails")
		}
		if r.CrowdPs[1] > p.AtPs-r.TickPs && r.CrowdPs[1] <= p.AtPs {
			mark = join(mark, "<- flash crowd off")
		}
		if _, err := fmt.Fprintf(w, "%8.1f %7d %10.1f %5s  %s\n",
			float64(p.AtPs)/float64(sim.Ms), p.Active, p.P99Ps/float64(sim.Us), verdict, mark); err != nil {
			return err
		}
	}
	rep := r.Report
	_, err := fmt.Fprintf(w, "issued=%d completed=%d slo_held=%.0f%% admits=%d drains=%d trips=%d final_active=%d\n",
		rep.Issued, rep.Completed, r.SLOHeldFrac*100,
		rep.Fleet.AdminAdmits, rep.Fleet.AdminDrains, rep.Fleet.Trips, rep.FinalActive)
	return err
}

func join(a, b string) string {
	if a == "" {
		return b
	}
	return a + "  " + b
}
