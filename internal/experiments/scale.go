package experiments

// The fleet scaling experiment (`cmd/figures -fig scale`): aggregate RPS
// and p99 latency of the compressed-HTTP serving stack as the SmartDIMM
// fleet grows from 1 to 8 ranks, under a uniform closed-loop load and
// under a Zipf-skewed one where a few hot connections carry most of the
// request rate. Compression keeps the shared 100GbE link far from
// saturation (responses leave the server ~4x smaller), so the device
// fleet — not the NIC — is the scaling bottleneck: the uniform sweep
// shows device count as a throughput lever, and the skewed sweep
// separates the placement policies — least-loaded migrates hot
// connections off deep queues while round-robin only sheds at hard
// saturation, so its tail latency degrades first.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wrkgen"
)

// FleetScale sizes the fleet scaling experiment: QuickScale's LLC and
// windows, but 64 connections against 32 workers so the worker pool and
// the shared NIC link stay ahead of the device fleet — device count is
// the variable under test, so nothing else may bottleneck first.
func FleetScale() Scale {
	return Scale{
		Connections: 64, Workers: 32,
		WarmupPs: 2 * sim.Ms, MeasurePs: 10 * sim.Ms,
		LLCBytes: 512 << 10, LLCWays: 8,
	}
}

// ScalePoint is one (device count, policy, load) fleet measurement.
type ScalePoint struct {
	Devices    int
	Policy     string
	Load       string // "uniform" or "zipf"
	RPS        float64
	P99Us      float64
	MeanUs     float64
	Migrations uint64
	Sheds      uint64
	Fallback   float64 // fraction of chunks degraded to the CPU rung
}

// scaleJob names one simulation of the sweep.
type scaleJob struct {
	devices int
	policy  fleet.Policy
	zipf    bool
}

// zipfThink builds a deterministic per-connection think-time table: a
// seeded permutation assigns each connection a popularity rank; the
// eight hottest connections request nearly back-to-back (a tenth of the
// base think time) and the rest cool off as rank^1.1 (capped), so a
// handful of connections carry most of the request rate — the shape of
// a Zipf-popular object set behind persistent connections. The
// permutation scatters hot connections over IDs so round-robin
// placement cannot balance them by accident.
func zipfThink(conns int, basePs int64, seed int64) func(int) int64 {
	rng := rand.New(rand.NewSource(seed))
	ranks := rng.Perm(conns)
	thinks := make([]int64, conns)
	for i, r := range ranks {
		mult := math.Pow(float64(r+1), 1.1)
		if mult > 40 {
			mult = 40
		}
		if r < 8 {
			mult = 0.1
		}
		// Per-connection jitter decorrelates equal-rank connections so
		// the cold majority doesn't synchronize into request bursts.
		mult *= 0.75 + 0.5*rng.Float64()
		thinks[i] = int64(float64(basePs) * mult)
	}
	return func(c int) int64 { return thinks[c%conns] }
}

// runScalePoint assembles an n-rank system, a fleet over it, and the
// HTTPS server, and measures one closed-loop window. The server runs on
// the system's own engine so fleet queue occupancy and the memory
// contention model share the simulated clock.
func runScalePoint(sc Scale, j scaleJob, msgSize int) (ScalePoint, error) {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params:         sim.DefaultParams(),
		LLCBytes:       sc.LLCBytes,
		LLCWays:        sc.LLCWays,
		Geometry:       mediumGeometry(),
		WithSmartDIMM:  true,
		SmartDIMMRanks: j.devices,
	})
	if err != nil {
		return ScalePoint{}, err
	}
	fl, err := fleet.New(fleet.Config{Sys: sys, Policy: j.policy})
	if err != nil {
		return ScalePoint{}, err
	}
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: fl, Mode: server.CompressedHTTP, Workers: sc.Workers,
		MsgSize: msgSize, Connections: sc.Connections, FileKind: corpus.HTML, Seed: 11,
	})
	if err != nil {
		return ScalePoint{}, err
	}
	base := int64(sys.Params.RTTUs * float64(sim.Us))
	gcfg := wrkgen.Config{Connections: sc.Connections, ThinkPs: base}
	load := "uniform"
	if j.zipf {
		gcfg.ThinkPsFor = zipfThink(sc.Connections, base, 17)
		load = "zipf"
	}
	gen := wrkgen.New(sys.Engine, srv, gcfg)
	gen.Start()
	sys.Engine.RunUntil(sc.WarmupPs)
	srv.BeginMeasurement()
	gen.BeginMeasurement()
	sys.Engine.RunUntil(sc.WarmupPs + sc.MeasurePs)
	t := fl.Totals()
	return ScalePoint{
		Devices:    j.devices,
		Policy:     j.policy.String(),
		Load:       load,
		RPS:        gen.RPS(),
		P99Us:      gen.Latency.Percentile(99) * 1e6,
		MeanUs:     gen.Latency.Mean() * 1e6,
		Migrations: t.Migrations,
		Sheds:      t.Sheds,
		Fallback:   t.Degraded.FallbackRate(),
	}, nil
}

// FigScale runs the full sweep: round-robin and least-loaded at each
// device count under both loads, plus the affinity and sticky policies
// at the largest count under skew (one row each, enough to compare all
// four policies). One simulation per worker.
func FigScale(pool *runner.Pool, sc Scale, devCounts []int, msgSize int) ([]ScalePoint, error) {
	var jobs []scaleJob
	for _, zipf := range []bool{false, true} {
		for _, n := range devCounts {
			for _, p := range []fleet.Policy{fleet.RoundRobin, fleet.LeastLoaded} {
				jobs = append(jobs, scaleJob{devices: n, policy: p, zipf: zipf})
			}
		}
	}
	maxDev := devCounts[len(devCounts)-1]
	jobs = append(jobs,
		scaleJob{devices: maxDev, policy: fleet.Affinity, zipf: true},
		scaleJob{devices: maxDev, policy: fleet.Sticky, zipf: true},
	)
	return runner.Map(context.Background(), pool, jobs,
		func(_ context.Context, j scaleJob, _ int) (ScalePoint, error) {
			return runScalePoint(sc, j, msgSize)
		})
}

// RenderScale prints the sweep the way cmd/figures expects.
func RenderScale(points []ScalePoint) string {
	s := fmt.Sprintf("%-8s %-9s %-9s %12s %10s %10s %8s %6s %9s\n",
		"load", "policy", "devices", "RPS", "p99(us)", "mean(us)", "migr", "shed", "fallback")
	for _, p := range points {
		s += fmt.Sprintf("%-8s %-9s %-9d %12.0f %10.1f %10.1f %8d %6d %9.4f\n",
			p.Load, p.Policy, p.Devices, p.RPS, p.P99Us, p.MeanUs, p.Migrations, p.Sheds, p.Fallback)
	}
	return s
}
