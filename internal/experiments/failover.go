// The failover experiment: a 3-node replicated cluster serving a
// closed-loop read/write mix gets its node-0 primaries killed mid-run.
// The timeline buckets client-acked operations over simulated time, so
// the printed series shows availability dip, backup promotion, recovery
// to full goodput while the victim is still down, and the rejoin —
// with the linearizability checker run over the same history to prove
// the visible continuity is not hiding lost acked writes.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/sim"
)

// FailoverPoint is one time bucket of the availability timeline.
type FailoverPoint struct {
	AtPs        int64 // bucket start
	AckedWrites int
	AckedReads  int
	OpsPerSec   float64 // acked operations per second over the bucket
}

// FailoverResult is the timeline plus the run's correctness verdict.
type FailoverResult struct {
	Points     []FailoverPoint
	BucketPs   int64
	KillPs     int64
	RejoinPs   int64
	EndPs      int64
	Promotions uint64
	// RecoveryPs is the gap between the kill and the first write acked
	// after it — the client-visible failover time.
	RecoveryPs int64
	Check      cluster.CheckReport
}

// Failover runs the kill/promote/rejoin schedule against a 3-node
// cluster and buckets the acked-operation history.
func Failover(seed int64) (FailoverResult, error) {
	const (
		killPs   = 6 * sim.Ms
		rejoinPs = 14 * sim.Ms
		endPs    = 22 * sim.Ms
		bucketPs = sim.Ms / 2
	)
	res := FailoverResult{BucketPs: bucketPs, KillPs: killPs, RejoinPs: rejoinPs, EndPs: endPs}
	c, err := cluster.New(cluster.Config{
		Nodes: 3, Conns: 6, MsgSize: 1024, Workers: 2, NodeConns: 2,
		FileKind: corpus.Text, Seed: seed,
	})
	if err != nil {
		return res, err
	}
	c.KillAt(0, killPs)
	c.RejoinAt(0, rejoinPs)
	c.Start()
	c.RunUntil(endPs)
	m, err := c.Collect()
	if err != nil {
		return res, err
	}
	res.Promotions = m.Promotions
	c.Quiesce(2 * sim.Ms)
	res.Check = c.Check()

	nBuckets := int(endPs / bucketPs)
	res.Points = make([]FailoverPoint, nBuckets)
	for i := range res.Points {
		res.Points[i].AtPs = int64(i) * bucketPs
	}
	firstAfterKill := int64(-1)
	for _, op := range c.History() {
		if op.AckPs < 0 || op.AckPs >= endPs {
			continue
		}
		p := &res.Points[op.AckPs/bucketPs]
		if op.Kind == cluster.OpWrite {
			p.AckedWrites++
			if op.AckPs >= killPs && (firstAfterKill < 0 || op.AckPs < firstAfterKill) {
				firstAfterKill = op.AckPs
			}
		} else {
			p.AckedReads++
		}
	}
	for i := range res.Points {
		p := &res.Points[i]
		p.OpsPerSec = float64(p.AckedWrites+p.AckedReads) / (float64(bucketPs) * 1e-12)
	}
	if firstAfterKill >= 0 {
		res.RecoveryPs = firstAfterKill - killPs
	}
	return res, nil
}

// WriteFailoverTimeline renders the availability/goodput series with
// the kill and rejoin instants marked on their buckets.
func (r FailoverResult) WriteFailoverTimeline(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%8s %8s %8s %12s\n", "t(ms)", "w-acks", "r-acks", "ops/s"); err != nil {
		return err
	}
	for _, p := range r.Points {
		mark := ""
		if r.KillPs >= p.AtPs && r.KillPs < p.AtPs+r.BucketPs {
			mark = "  <- kill node 0"
		}
		if r.RejoinPs >= p.AtPs && r.RejoinPs < p.AtPs+r.BucketPs {
			mark = "  <- rejoin node 0"
		}
		if _, err := fmt.Fprintf(w, "%8.1f %8d %8d %12.0f%s\n",
			float64(p.AtPs)/float64(sim.Ms), p.AckedWrites, p.AckedReads, p.OpsPerSec, mark); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "promotions=%d recovery=%.2fms checker=%s\n",
		r.Promotions, float64(r.RecoveryPs)/float64(sim.Ms), checkVerdict(r.Check))
	return err
}

func checkVerdict(rep cluster.CheckReport) string {
	if rep.Ok() {
		return "ok"
	}
	return fmt.Sprintf("FAILED (%d violations)", rep.ViolationCount)
}
