// The incident experiment: the flash-crowd + rank-fault scenario with
// the crowd pushed past the initial ranks' collapse point and the full
// observability plane armed — a 100us scraper, the default burn-rate +
// breaker alert rules, and the flight recorder. The rendered figure is
// the incident narrative end to end: the per-tick timeline with alert
// transitions marked on the ticks they fired in, the deterministic
// alert log, and each frozen incident bundle's correlated timeline.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/autoscale"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wrkgen"
)

// IncidentResult is the run plus the rendering parameters.
type IncidentResult struct {
	TickPs  int64
	SLOPs   float64
	CrowdPs [2]int64
	FaultPs int64
	Report  workload.Report
}

// Incident runs the scenario. It mirrors Autoscale's shape with the
// crowd multiplier raised to 3.0x — base 900k peaks ~2.7M rps, at the
// two initial ranks' collapse point — so the burn-rate page fires from
// the crowd alone, before the injected fault trips the breaker.
func Incident(seed int64) (IncidentResult, error) {
	const (
		tickPs  = 200 * sim.Us
		crowdOn = 3 * sim.Ms
		crowdOf = 6 * sim.Ms
		faultPs = 4200 * sim.Us
	)
	res := IncidentResult{
		TickPs: tickPs, SLOPs: float64(100 * sim.Us),
		CrowdPs: [2]int64{crowdOn, crowdOf}, FaultPs: faultPs,
	}
	rep, err := workload.Run(workload.RunConfig{
		Kind: "kv", Ranks: 4, InitialActive: 2, Conns: 48, Workers: 16, Seed: seed,
		HorizonPs: 8 * sim.Ms, WarmupPs: sim.Ms, DrainPs: 2 * sim.Ms,
		KV: workload.KVConfig{Keys: 1024, ZipfS: 0.99, ReadFrac: 0.9},
		Arrivals: wrkgen.ArrivalConfig{
			Streams: 4, BaseRPS: 9e5,
			DiurnalAmp: 0.15, DiurnalPeriodPs: 10 * sim.Ms,
			Flash:        []wrkgen.FlashCrowd{{StartPs: crowdOn, EndPs: crowdOf, Mult: 3.0}},
			BurstEveryPs: 2 * sim.Ms, BurstLen: 12, BurstGapPs: sim.Us,
		},
		Scale: &autoscale.Config{
			SLOPs: res.SLOPs, TickPs: tickPs,
			UpAfter: 2, DownAfter: 6, CooldownTicks: 2, MinActive: 2,
		},
		Faults: []workload.Fault{
			{AtPs: faultPs, Rank: 1},
			{AtPs: 7 * sim.Ms, Rank: 1, Restore: true},
		},
		ScrapePs:   100 * sim.Us,
		Rules:      workload.DefaultAlertRules(res.SLOPs),
		Record:     true,
		LookbackPs: 2 * sim.Ms,
	})
	if err != nil {
		return res, err
	}
	res.Report = rep
	return res, nil
}

// WriteIncidentReport renders the narrative: the tick timeline with
// alert transitions marked, the alert log, and each incident bundle's
// header + correlated timeline (the bundle's series summary is elided
// to a count; the trace slice to its digest line).
func (r IncidentResult) WriteIncidentReport(w io.Writer) error {
	rep := r.Report
	marks := map[int]string{}
	addMark := func(atPs int64, text string) {
		idx := int(atPs/r.TickPs) - 1
		if atPs%r.TickPs != 0 {
			idx++ // between ticks: surfaces at the next tick boundary
		}
		if idx < 0 || idx >= len(rep.ActiveTimeline) {
			return
		}
		if marks[idx] != "" {
			marks[idx] += "  "
		}
		marks[idx] += text
	}
	addMark(r.CrowdPs[0], "<- flash crowd on")
	addMark(r.FaultPs, "<- rank 1 fails")
	addMark(r.CrowdPs[1], "<- flash crowd off")
	for _, tr := range rep.Alerts {
		addMark(tr.AtPs, fmt.Sprintf("[%s %s->%s]", tr.Rule, tr.From, tr.To))
	}
	if _, err := fmt.Fprintf(w, "%8s %7s %10s %5s  %s\n", "t(ms)", "active", "p99(us)", "slo", "event"); err != nil {
		return err
	}
	for i, active := range rep.ActiveTimeline {
		var p99 float64
		if i < len(rep.P99Timeline) {
			p99 = rep.P99Timeline[i]
		}
		verdict := "ok"
		if p99 > r.SLOPs {
			verdict = "MISS"
		}
		atPs := int64(i+1) * r.TickPs
		if _, err := fmt.Fprintf(w, "%8.1f %7d %10.1f %5s  %s\n",
			float64(atPs)/float64(sim.Ms), active, p99/float64(sim.Us), verdict, marks[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "--- alert log ---\n%s", rep.AlertLog); err != nil {
		return err
	}
	for i, in := range rep.Incidents {
		if _, err := fmt.Fprintf(w, "--- incident %d ---\n%s", i, elideSeries(in.Report)); err != nil {
			return err
		}
		if in.Trace != nil {
			if _, err := fmt.Fprintf(w, "trace slice: %d events\n", in.Trace.Len()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "incidents=%d dropped=%d slo_held=%.0f%% admits=%d trips=%d\n",
		len(rep.Incidents), rep.IncidentsDropped, rep.SLOHeldFrac*100,
		rep.Fleet.AdminAdmits, rep.Fleet.Trips)
	return err
}

// elideSeries truncates an incident report at its series summary,
// keeping the header and correlated timeline.
func elideSeries(report string) string {
	const marker = "--- series ---\n"
	i := strings.Index(report, marker)
	if i < 0 {
		return report
	}
	n := strings.Count(report[i+len(marker):], "\n")
	return report[:i] + fmt.Sprintf("(series summary: %d series elided)\n", n)
}
