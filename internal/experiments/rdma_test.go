package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/server"
)

// rdmaPoints runs the figure at the fast traced scale.
func rdmaPoints(t *testing.T, pool *runner.Pool) []RDMAPoint {
	t.Helper()
	pts, err := FigRDMA(pool, critScale())
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// The rendered rdma table is pinned byte-for-byte: NIC modelling, peer
// write pricing, stage re-attribution and formatting all sit under this
// golden. Regenerate with
// `go test ./internal/experiments/ -run TestCritPathRDMAGolden -update`.
func TestCritPathRDMAGolden(t *testing.T) {
	pts := rdmaPoints(t, nil)
	var b strings.Builder
	if err := WriteRDMATable(&b, pts); err != nil {
		t.Fatal(err)
	}
	got := []byte(b.String())

	path := filepath.Join("testdata", "critpath_rdma.golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rdma table diverged from golden\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The headline claims must hold in the golden itself.
	byLabel := func(label string, co bool) *RDMAPoint {
		for i := range pts {
			if pts[i].Label == label && pts[i].Corun == co {
				return &pts[i]
			}
		}
		t.Fatalf("missing %s corun=%v", label, co)
		return nil
	}
	hostDimm, peerDimm := byLabel("host-dimm", false), byLabel("peer-dimm", false)
	// Zero-copy: under peer-DMA the copy stage AND the host-DRAM bounce
	// stage are both absent from the critical path — the rdma stage
	// carries the ingress instead.
	if peerDimm.CopyPct != 0 || peerDimm.BouncePct != 0 {
		t.Fatalf("peer-dimm copy=%.2f%% bounce=%.2f%%, want both 0", peerDimm.CopyPct, peerDimm.BouncePct)
	}
	if peerDimm.RDMAPct <= 0 {
		t.Fatalf("peer-dimm rdma share = %.2f%%, want > 0", peerDimm.RDMAPct)
	}
	if hostDimm.BouncePct <= 0 {
		t.Fatalf("host-dimm bounce share = %.2f%%, want > 0 (page-cache misses bounce)", hostDimm.BouncePct)
	}
	if hostDimm.RDMAPct != 0 {
		t.Fatalf("host-dimm rdma share = %.2f%%, want 0", hostDimm.RDMAPct)
	}
	// Goodput: the zero-copy path must at least match the host-mediated
	// fleet at equal rank count.
	if peerDimm.RPS < hostDimm.RPS {
		t.Fatalf("peer-dimm rps %.0f < host-dimm rps %.0f", peerDimm.RPS, hostDimm.RPS)
	}
	// Doorbell batching must be active (more than one WQE per ring on
	// a 16KB record split into 4KB MTUs).
	if peerDimm.WQEPerDoorbell <= 1 {
		t.Fatalf("wqe/doorbell %.2f, want > 1", peerDimm.WQEPerDoorbell)
	}
	if peerDimm.PeerBytes == 0 {
		t.Fatalf("no peer bytes deposited")
	}
}

// The determinism gate for the rdma figure: serial, pooled, and
// GOMAXPROCS=2 runs must render byte-identical tables.
func TestRDMADeterministicAcrossSchedulers(t *testing.T) {
	render := func(pool *runner.Pool) string {
		var b strings.Builder
		if err := WriteRDMATable(&b, rdmaPoints(t, pool)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(nil)
	if !strings.Contains(serial, "peer-dimm") {
		t.Fatalf("table malformed:\n%s", serial)
	}
	pool := runner.New(0)
	pooled, err := runner.Map(context.Background(), pool, []int{0, 1},
		func(context.Context, int, int) (string, error) { return render(pool), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range pooled {
		if got != serial {
			t.Fatalf("pooled run %d diverged from serial", i)
		}
	}
	prev := runtime.GOMAXPROCS(2)
	constrained := render(nil)
	runtime.GOMAXPROCS(prev)
	if constrained != serial {
		t.Fatal("GOMAXPROCS=2 run diverged from serial")
	}
}

// Peer-DMA pressure-isolation sanity: the antagonist column exists and
// the co-run rows still satisfy the zero-copy invariant.
func TestRDMACorunRowsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := rdmaPoints(t, nil)
	if len(pts) != 6 {
		t.Fatalf("want 6 rows, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Corun && p.AntOps <= 0 {
			t.Fatalf("%s co-run row missing antagonist progress", p.Label)
		}
		if p.Label == "peer-dimm" && (p.CopyPct != 0 || p.BouncePct != 0) {
			t.Fatalf("peer-dimm corun=%v copy=%.2f bounce=%.2f, want 0/0", p.Corun, p.CopyPct, p.BouncePct)
		}
		if p.Requests == 0 {
			t.Fatalf("%s corun=%v served no requests", p.Label, p.Corun)
		}
	}
	_ = server.StageNames // keep the import honest if asserts change
}
