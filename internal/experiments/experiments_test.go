package experiments

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/sim"
)

// tiny returns an extra-small scale for unit tests.
func tiny() Scale {
	// Small but heavily contended: the per-connection working set is
	// ~12KB, so 64 connections (~780KB) thrash the 128KB LLC the way
	// 1024 connections thrash the testbed's 22MB one.
	return Scale{
		Connections: 64, Workers: 4,
		WarmupPs: 1 * sim.Ms, MeasurePs: 5 * sim.Ms,
		LLCBytes: 128 << 10, LLCWays: 8,
	}
}

func TestFig2Shape(t *testing.T) {
	pts := Fig2(nil, []float64{0, 0.5})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[string]float64{}
	for _, p := range pts {
		byKey[p.Placement+dropKey(p.DropPct)] = p.Gbps
	}
	// Parity at zero drops; SmartNIC hit harder by drops.
	if r := byKey["SmartNIC0.0"] / byKey["CPU0.0"]; r < 0.8 || r > 1.3 {
		t.Fatalf("zero-drop ratio %.2f", r)
	}
	nicRet := byKey["SmartNIC0.5"] / byKey["SmartNIC0.0"]
	cpuRet := byKey["CPU0.5"] / byKey["CPU0.0"]
	if nicRet >= cpuRet {
		t.Fatalf("SmartNIC retained %.2f vs CPU %.2f under drops", nicRet, cpuRet)
	}
}

func dropKey(f float64) string {
	if f == 0 {
		return "0.0"
	}
	return "0.5"
}

func TestFig3RatioGrowsWithConnections(t *testing.T) {
	pts, err := Fig3(nil, tiny(), []int{8, 64}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].NormalizedRatio <= 0 || pts[1].NormalizedRatio <= 0 {
		t.Fatal("ratios not measured")
	}
	// More connections => more HTTPS memory amplification.
	if pts[1].NormalizedRatio <= pts[0].NormalizedRatio {
		t.Fatalf("ratio did not grow: %.2f -> %.2f", pts[0].NormalizedRatio, pts[1].NormalizedRatio)
	}
	// At high connection counts HTTPS must cost well over 1x.
	if pts[1].NormalizedRatio < 1.3 {
		t.Fatalf("HTTPS amplification %.2f too small", pts[1].NormalizedRatio)
	}
}

func TestFig9TraceProperties(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Reads() == 0 || res.Trace.Writes() == 0 {
		t.Fatal("trace empty")
	}
	if res.SelfRecycles == 0 {
		t.Fatal("no self-recycle writes in trace window")
	}
	// Buffers spaced 32MB apart: total spread must be large.
	if res.SpreadBytes < 32<<20 {
		t.Fatalf("address spread %d < 32MB", res.SpreadBytes)
	}
	// Monotonic address increase within CompCpy calls: mean run length
	// far above random (which would be ~2).
	for corenum, mean := range res.MeanRunLen {
		if mean < 8 {
			t.Fatalf("core %d mean monotonic run %.1f too short", corenum, mean)
		}
	}
	if len(res.MeanRunLen) < 4 {
		t.Fatalf("expected 4 cores in trace, got %d", len(res.MeanRunLen))
	}
}

func TestFig10EquilibriumScalesWithLLC(t *testing.T) {
	sc := tiny()
	series, err := Fig10(nil, []int{128 << 10, 1 << 20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatal("series count")
	}
	for _, s := range series {
		if len(s.Series.Points) == 0 {
			t.Fatal("no occupancy samples")
		}
	}
	// Larger LLC => higher scratchpad occupancy at equilibrium (fewer
	// writebacks recycling pages).
	if series[1].EquilibriumKB <= series[0].EquilibriumKB {
		t.Fatalf("equilibrium did not scale: %.0fKB (small LLC) vs %.0fKB (big LLC)",
			series[0].EquilibriumKB, series[1].EquilibriumKB)
	}
}

func TestFig11Shape(t *testing.T) {
	pts, err := RunPlacements(nil, tiny(), server.HTTPSMode, []int{4096}, corpus.Text)
	if err != nil {
		t.Fatal(err)
	}
	got := map[Placement]PerfPoint{}
	for _, p := range pts {
		got[p.Placement] = p
	}
	if len(got) != 4 {
		t.Fatalf("placements = %d, want 4", len(got))
	}
	d := got[PlaceSmartDIMM]
	// SmartDIMM beats CPU on RPS, uses less CPU and memory bandwidth.
	if d.RPSNorm <= 1.0 {
		t.Fatalf("SmartDIMM RPS norm = %.2f, want > 1", d.RPSNorm)
	}
	if d.CPUNorm >= 1.0 {
		t.Fatalf("SmartDIMM CPU norm = %.2f, want < 1", d.CPUNorm)
	}
	if d.MemNorm >= 1.0 {
		t.Fatalf("SmartDIMM mem norm = %.2f, want < 1", d.MemNorm)
	}
	// QAT must not beat CPU at 4KB (Observation 2).
	if q := got[PlaceQAT]; q.RPSNorm > 1.05 {
		t.Fatalf("QAT RPS norm = %.2f at 4KB, want <= ~1", q.RPSNorm)
	}
}

func TestFig12Shape(t *testing.T) {
	pts, err := RunPlacements(nil, tiny(), server.CompressedHTTP, []int{4096}, corpus.HTML)
	if err != nil {
		t.Fatal(err)
	}
	got := map[Placement]PerfPoint{}
	for _, p := range pts {
		got[p.Placement] = p
	}
	// SmartNIC cannot run compression: only 3 placements.
	if _, ok := got[PlaceSmartNIC]; ok {
		t.Fatal("SmartNIC must be absent from Fig. 12")
	}
	d := got[PlaceSmartDIMM]
	// Compression gains exceed TLS gains (the CPU deflate path is far
	// slower than AES-NI): expect multi-x RPS improvement.
	if d.RPSNorm < 1.5 {
		t.Fatalf("SmartDIMM compression RPS norm = %.2f, want >= 1.5", d.RPSNorm)
	}
	if d.CPUNorm >= 0.7 {
		t.Fatalf("SmartDIMM compression CPU norm = %.2f, want well below 1", d.CPUNorm)
	}
}

func TestTable1Isolation(t *testing.T) {
	rows, err := Table1(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPlace := map[Placement]Table1Row{}
	for _, r := range rows {
		byPlace[r.Placement] = r
	}
	for p, r := range byPlace {
		if r.NginxSlowdown < -0.10 || r.NginxSlowdown > 0.9 {
			t.Fatalf("%v nginx slowdown %.2f implausible", p, r.NginxSlowdown)
		}
	}
	// SmartDIMM interferes less than the CPU configuration.
	if byPlace[PlaceSmartDIMM].McfSlowdown >= byPlace[PlaceCPU].McfSlowdown {
		t.Fatalf("SmartDIMM mcf slowdown %.3f >= CPU %.3f",
			byPlace[PlaceSmartDIMM].McfSlowdown, byPlace[PlaceCPU].McfSlowdown)
	}
}

func TestFig13Scorecard(t *testing.T) {
	rows := Fig13()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var dimm, cpu Fig13Row
	for _, r := range rows {
		switch r.Placement {
		case "SmartDIMM":
			dimm = r
		case "CPU":
			cpu = r
		}
	}
	if dimm.HighLLCContention <= cpu.HighLLCContention {
		t.Fatal("scorecard must favor SmartDIMM under contention")
	}
	if cpu.LowLLCContention < dimm.LowLLCContention {
		t.Fatal("CPU wins when uncontended")
	}
}

func TestPlacementString(t *testing.T) {
	want := map[Placement]string{PlaceCPU: "CPU", PlaceSmartNIC: "SmartNIC", PlaceQAT: "QuickAssist", PlaceSmartDIMM: "SmartDIMM"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d = %q", p, p.String())
		}
	}
}
