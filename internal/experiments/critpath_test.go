package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/offload"
	"repro/internal/profile"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// critScale keeps the traced four-placement sweep fast.
func critScale() Scale {
	return Scale{
		Connections: 32, Workers: 2,
		WarmupPs: sim.Ms / 2, MeasurePs: sim.Ms,
		LLCBytes: 128 << 10, LLCWays: 8,
	}
}

// The rendered critical-path table is pinned byte-for-byte: trace
// emission, request pairing, stage attribution, and formatting all sit
// under this one golden. Regenerate with
// `go test ./internal/experiments/ -run TestCritPathGolden -update`.
func TestCritPathGolden(t *testing.T) {
	rows, err := CritPathBreakdown(nil, critScale(), server.HTTPSMode, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCritPathTable(&b, rows); err != nil {
		t.Fatal(err)
	}
	got := []byte(b.String())

	path := filepath.Join("testdata", "critpath.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("critical-path table diverged from golden\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The headline claim must hold in the golden itself: SmartDIMM's
	// copy share is zero while CPU's is not.
	var cpu, dimm *CritPathRow
	for i := range rows {
		switch rows[i].Placement {
		case PlaceCPU:
			cpu = &rows[i]
		case PlaceSmartDIMM:
			dimm = &rows[i]
		}
	}
	if cpu == nil || dimm == nil {
		t.Fatal("missing placements")
	}
	if dimm.ShareOf("copy") != 0 {
		t.Fatalf("SmartDIMM copy share = %.2f%%, want 0", dimm.ShareOf("copy"))
	}
	if cpu.ShareOf("copy") <= 0 {
		t.Fatalf("CPU copy share = %.2f%%, want > 0", cpu.ShareOf("copy"))
	}
}

// tracedRun is the pinned single-run scenario behind the cross-scheduler
// gate: one SmartDIMM serving window, traced, exported as Perfetto JSON.
func tracedRun(t *testing.T) []byte {
	t.Helper()
	tr := telemetry.New()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 512 << 10, LLCWays: 8,
		WithSmartDIMM: true, Tracer: tr, TraceCAS: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: &offload.SmartDIMM{Sys: sys}, Mode: server.HTTPSMode,
		Workers: 4, MsgSize: 4096, Connections: 32, FileKind: corpus.Text, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
		Connections: 32, ThinkPs: int64(sys.Params.RTTUs * float64(sim.Us)),
	})
	gen.Start()
	sys.Engine.RunUntil(1 * sim.Ms)
	srv.BeginMeasurement()
	sys.Engine.RunUntil(3 * sim.Ms)
	sys.Trace.ExportTo(tr)
	return tr.PerfettoJSON()
}

// analyzeTrace runs a trace through the exact path cmd/tracestat takes:
// Perfetto JSON in, profile tree + critical-path table text out.
func analyzeTrace(t *testing.T, trace []byte) string {
	t.Helper()
	tracks, events, err := profile.ReadPerfetto(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := profile.FromEvents(tracks, events).WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	cp := profile.Analyze(tracks, events, profile.Options{FromPs: 1 * sim.Ms})
	if err := cp.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if err := cp.WriteWaterfall(&b, 3); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The acceptance gate: the same-seed run must yield byte-identical
// profile text and critical-path tables whether the simulation ran
// serially, fanned through the runner pool, or under GOMAXPROCS=2.
func TestTracestatByteIdenticalAcrossSchedulers(t *testing.T) {
	serial := analyzeTrace(t, tracedRun(t))
	if !strings.Contains(serial, "simulated-time profile") || !strings.Contains(serial, "critical path:") {
		t.Fatalf("analysis output malformed:\n%.400s", serial)
	}

	// Through the pool: the traced run executes on a pool worker.
	pool := runner.New(0)
	pooled, err := runner.Map(context.Background(), pool, []int{0, 1},
		func(context.Context, int, int) (string, error) {
			return analyzeTrace(t, tracedRun(t)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range pooled {
		if got != serial {
			t.Fatalf("pooled run %d diverged from serial analysis", i)
		}
	}

	// Under a constrained scheduler.
	prev := runtime.GOMAXPROCS(2)
	constrained := analyzeTrace(t, tracedRun(t))
	runtime.GOMAXPROCS(prev)
	if constrained != serial {
		t.Fatal("GOMAXPROCS=2 run diverged from serial analysis")
	}
}
