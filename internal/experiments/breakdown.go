package experiments

import (
	"context"

	"repro/internal/corpus"
	"repro/internal/runner"
	"repro/internal/server"
)

// BreakdownRow is one placement's per-stage latency breakdown: where a
// measured request's time goes across the server pipeline (parse, page
// cache copy, ULP processing, TX CPU, wire serialization). SharePct is
// each stage's fraction of the summed stage time, in percent.
type BreakdownRow struct {
	Placement Placement
	Metrics   server.Metrics
	SharePct  [server.NumStages]float64
}

// FigBreakdown measures the per-stage latency breakdown for every
// placement serving mode/msgSize at scale sc. It is the table behind
// `-fig breakdown`: the SmartDIMM rows should show the copy stage
// vanish (inline source, Benefit B2) and the ULP stage shrink to
// doorbell+descriptor costs, while CPU rows are ULP-dominated.
func FigBreakdown(pool *runner.Pool, sc Scale, mode server.Mode, msgSize int) ([]BreakdownRow, error) {
	placements := []Placement{PlaceCPU, PlaceSmartNIC, PlaceQAT, PlaceSmartDIMM}
	type result struct {
		row  BreakdownRow
		skip bool
	}
	results, err := runner.Map(context.Background(), pool, placements,
		func(_ context.Context, place Placement, _ int) (result, error) {
			sys, err := newSystem(sc, place, 0)
			if err != nil {
				return result{}, err
			}
			b := backendFor(place, sys)
			if !b.Supports(mode2ulp(mode)) {
				return result{skip: true}, nil
			}
			m, err := server.RunClosedLoop(server.Config{
				Sys: sys, Backend: b, Mode: mode, Workers: sc.Workers,
				MsgSize: msgSize, Connections: sc.Connections,
				FileKind: corpus.HTML, Seed: 5,
			}, sc.WarmupPs, sc.MeasurePs)
			if err != nil {
				return result{}, err
			}
			row := BreakdownRow{Placement: place, Metrics: m}
			var total int64
			for _, ps := range m.StagePs {
				total += ps
			}
			if total > 0 {
				for i, ps := range m.StagePs {
					row.SharePct[i] = 100 * float64(ps) / float64(total)
				}
			}
			return result{row: row}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []BreakdownRow
	for _, r := range results {
		if !r.skip {
			out = append(out, r.row)
		}
	}
	return out, nil
}
