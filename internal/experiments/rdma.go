package experiments

// The zero-copy data-path experiment behind `figures -fig rdma`: the
// same 4-rank serving workload measured under three record-ingress
// configurations — the all-CPU host path, the host-mediated SmartDIMM
// fleet (storage DMA bouncing through host DRAM on page-cache misses),
// and the peer-DMA fleet (the RDMA NIC writing straight into the
// registered lower-half buffers) — each solo and co-located with the
// LLC-thrashing antagonist. The trace-derived stage shares substantiate
// the zero-copy claim: under peer-DMA both the copy stage and the
// host-DRAM bounce stage are absent (their time moves to the rdma
// stage, priced on the rank's write timing), and because refills no
// longer stream through the LLC's DMA ways, the co-run column shows the
// isolation benefit on top of the goodput win.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/corun"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/profile"
	"repro/internal/rdma"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

// RDMARanks is the rank count the rdma figure compares at: equal for
// the host-mediated and peer-DMA fleets, so the delta is the data path.
const RDMARanks = 4

// RDMAPoint is one (data path, co-location) measurement.
type RDMAPoint struct {
	Label string // host-cpu | host-dimm | peer-dimm
	Corun bool

	Requests int
	RPS      float64
	TxGbps   float64
	P99Ps    int64

	// Trace-derived critical-path shares (percent of blocked time).
	CopyPct   float64
	BouncePct float64
	RDMAPct   float64

	// Peer-DMA only: mean WQEs retired per doorbell ring (the
	// submission-queue batching win) and peer bytes deposited.
	WQEPerDoorbell float64
	PeerBytes      uint64

	// Co-run only: antagonist progress, for the isolation argument.
	AntOps float64
}

// rdmaConfig names one column of the figure.
type rdmaConfig struct {
	label string
	ranks int  // SmartDIMM ranks (0 = CPU-only system)
	peer  bool // zero-copy RDMA ingress
	corun bool
}

func rdmaConfigs() []rdmaConfig {
	var out []rdmaConfig
	for _, co := range []bool{false, true} {
		out = append(out,
			rdmaConfig{label: "host-cpu", corun: co},
			rdmaConfig{label: "host-dimm", ranks: RDMARanks, corun: co},
			rdmaConfig{label: "peer-dimm", ranks: RDMARanks, peer: true, corun: co},
		)
	}
	return out
}

// FigRDMA runs the six traced measurements. Each run gets a private
// system, tracer and (for peer columns) NIC; the critical-path analysis
// happens in-process on the recorded events.
func FigRDMA(pool *runner.Pool, sc Scale) ([]RDMAPoint, error) {
	return runner.Map(context.Background(), pool, rdmaConfigs(),
		func(_ context.Context, cf rdmaConfig, _ int) (RDMAPoint, error) {
			return runRDMAConfig(cf, sc)
		})
}

func runRDMAConfig(cf rdmaConfig, sc Scale) (RDMAPoint, error) {
	tr := telemetry.New()
	dp := sim.DataPathHost
	if cf.peer {
		dp = sim.DataPathPeer
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params:         sim.DefaultParams(),
		LLCBytes:       sc.LLCBytes,
		LLCWays:        sc.LLCWays,
		Geometry:       mediumGeometry(),
		WithSmartDIMM:  cf.ranks > 0,
		SmartDIMMRanks: cf.ranks,
		DataPath:       dp,
		Tracer:         tr,
	})
	if err != nil {
		return RDMAPoint{}, err
	}
	var backend offload.Backend
	var nic *rdma.NIC
	if cf.ranks > 0 {
		if cf.peer {
			if nic, err = rdma.New(rdma.Config{Sys: sys, Tracer: tr}); err != nil {
				return RDMAPoint{}, err
			}
		}
		fl, err := fleet.New(fleet.Config{Sys: sys, Policy: fleet.RoundRobin, RNIC: nic})
		if err != nil {
			return RDMAPoint{}, err
		}
		backend = fl
		if cf.peer {
			if backend, err = offload.NewRDMA(fl, nic); err != nil {
				return RDMAPoint{}, err
			}
		}
	} else {
		backend = &offload.CPU{Sys: sys}
	}
	// 16KB messages (the paper's TLS record size): each record splits
	// into several MTU-sized WQEs, so doorbell coalescing is visible in
	// the wqe/doorbell column.
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: backend, Mode: server.HTTPSMode, Workers: sc.Workers,
		MsgSize: 16384, Connections: sc.Connections, FileKind: corpus.Text, Seed: 5,
	})
	if err != nil {
		return RDMAPoint{}, err
	}
	gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
		Connections: sc.Connections,
		ThinkPs:     int64(sys.Params.RTTUs * float64(sim.Us)),
	})
	var ant *corun.Antagonist
	if cf.corun {
		if ant, err = corun.Start(sys.Engine, corun.DefaultConfig(sys)); err != nil {
			return RDMAPoint{}, err
		}
	}
	gen.Start()
	sys.Engine.RunUntil(sc.WarmupPs)
	srv.BeginMeasurement()
	gen.BeginMeasurement()
	if ant != nil {
		ant.BeginMeasurement()
	}
	sys.Engine.RunUntil(sc.WarmupPs + sc.MeasurePs)
	m := srv.Collect()
	if err := srv.LastError(); err != nil {
		return RDMAPoint{}, fmt.Errorf("rdma %s: %w", cf.label, err)
	}
	if sys.Trace != nil {
		sys.Trace.ExportTo(tr)
	}
	cp := profile.AnalyzeTracer(tr, profile.Options{FromPs: sc.WarmupPs})
	row := CritPathRow{Stages: cp.Stages}
	pt := RDMAPoint{
		Label: cf.label, Corun: cf.corun,
		Requests:  int(m.Requests),
		RPS:       m.RPS,
		TxGbps:    float64(m.TXBytes*8) / (float64(m.ElapsedPs) * 1e-12) / 1e9,
		P99Ps:     cp.PercentileLatencyPs(99),
		CopyPct:   row.ShareOf("copy"),
		BouncePct: row.ShareOf("bounce"),
		RDMAPct:   row.ShareOf("rdma"),
	}
	if nic != nil {
		st := nic.Stats()
		if st.Doorbells > 0 {
			pt.WQEPerDoorbell = float64(st.Completed+st.Failed) / float64(st.Doorbells)
		}
		pt.PeerBytes = st.PeerBytes
	}
	if ant != nil {
		pt.AntOps = ant.OpsPerSecond()
	}
	return pt, nil
}

// WriteRDMATable renders the figure the `figures -fig rdma` command
// prints: goodput and stage shares per data path, solo and co-run.
func WriteRDMATable(w io.Writer, pts []RDMAPoint) error {
	if _, err := fmt.Fprintf(w, "%-11s %-6s %8s %10s %9s %8s %8s %8s %8s %12s\n",
		"datapath", "corun", "reqs", "rps", "tx(Gbps)", "p99(us)",
		"copy%", "bounce%", "rdma%", "wqe/doorbell"); err != nil {
		return err
	}
	for _, p := range pts {
		co := "solo"
		if p.Corun {
			co = "+mcf"
		}
		if _, err := fmt.Fprintf(w, "%-11s %-6s %8d %10.0f %9.2f %8.1f %8.1f %8.1f %8.1f %12.2f\n",
			p.Label, co, p.Requests, p.RPS, p.TxGbps,
			float64(p.P99Ps)/float64(sim.Us),
			p.CopyPct, p.BouncePct, p.RDMAPct, p.WQEPerDoorbell); err != nil {
			return err
		}
	}
	return nil
}
