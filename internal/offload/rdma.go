package offload

import (
	"fmt"

	"repro/internal/rdma"
)

// Ingestor is the peer-DMA ingress contract: a backend that can land an
// inbound record directly in the connection's device-side buffer,
// without bouncing through host DRAM. The server model routes stage-0
// payload staging here when the system's data path is DataPathPeer.
type Ingestor interface {
	// Ingest deposits payload into conn's staging buffer over the RDMA
	// path and returns the modelled device time.
	Ingest(conn *Conn, payload []byte) (int64, error)
	// Preload stages payload at construction time (before the measured
	// epoch): functionally identical, no wire or doorbell occupancy.
	Preload(conn *Conn, payload []byte) error
}

// RDMA wraps an inline backend (SmartDIMM or a fleet) with a zero-copy
// ingress path: every connection's Src buffer is registered as an RDMA
// memory region and inbound records arrive as one-sided WRITEs through
// the NIC model instead of storage DMA through DDIO. Processing is
// delegated unchanged — the per-chunk copy stage the host-mediated CPU
// placement pays stays elided (InlineSource), and the host-DRAM bounce
// the inline placements still paid on page-cache misses disappears.
type RDMA struct {
	Inner Backend
	NIC   *rdma.NIC
}

// NewRDMA validates the pairing: peer deposits only make sense when the
// inner backend consumes records from device-side buffers in place.
func NewRDMA(inner Backend, nic *rdma.NIC) (*RDMA, error) {
	if inner == nil || nic == nil {
		return nil, fmt.Errorf("offload: RDMA backend needs an inner backend and a NIC")
	}
	if !inner.InlineSource() {
		return nil, fmt.Errorf("offload: RDMA ingress over %s: peer deposits need an inline (device-buffer) backend", inner.Name())
	}
	return &RDMA{Inner: inner, NIC: nic}, nil
}

// Name implements Backend.
func (b *RDMA) Name() string { return b.Inner.Name() + "+rdma" }

// Supports implements Backend.
func (b *RDMA) Supports(u ULP) bool { return b.Inner.Supports(u) }

// InlineSource implements Backend: the page cache lives in conn.Src on
// the device, exactly like the inner backend.
func (b *RDMA) InlineSource() bool { return true }

// NewConn implements Backend: allocate through the inner backend, then
// register the staging buffer as a remotely-writable MR and bind a QP
// to it. Fleet migrations re-register through the same NIC (the fleet
// holds the NIC via its Config.RNIC), so the QP's binding follows the
// buffer wherever placement moves it.
func (b *RDMA) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	conn, err := b.Inner.NewConn(u, id, msgSize)
	if err != nil {
		return nil, err
	}
	rkey, err := b.NIC.RegisterMR(conn.Src, conn.Size)
	if err != nil {
		return nil, fmt.Errorf("offload: conn %d MR: %w", id, err)
	}
	if err := b.NIC.CreateQP(id, rkey); err != nil {
		return nil, fmt.Errorf("offload: conn %d QP: %w", id, err)
	}
	return conn, nil
}

// Process implements Backend by delegation: the records are already in
// place, so the ULP pass is identical to the host-mediated inline path.
func (b *RDMA) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	return b.Inner.Process(u, coreID, conn, payloadLen)
}

// Ingest implements Ingestor: the record is chunked to the ULP's source
// layout (the same strides StagePayloadDMA uses) and deposited through
// the NIC — MTU-sized WQEs, batched doorbells, RNR retries and all.
func (b *RDMA) Ingest(conn *Conn, payload []byte) (int64, error) {
	l := LayoutFor(conn.U)
	var lat int64
	for k, c := range l.Chunks(len(payload)) {
		d, err := b.NIC.Deposit(conn.ID, k*l.SrcStride, payload[:c])
		lat += d
		if err != nil {
			return lat, fmt.Errorf("offload: ingest conn %d: %w", conn.ID, err)
		}
		payload = payload[c:]
	}
	return lat, nil
}

// Preload implements Ingestor.
func (b *RDMA) Preload(conn *Conn, payload []byte) error {
	l := LayoutFor(conn.U)
	for k, c := range l.Chunks(len(payload)) {
		if err := b.NIC.Preload(conn.ID, k*l.SrcStride, payload[:c]); err != nil {
			return err
		}
		payload = payload[c:]
	}
	return nil
}
