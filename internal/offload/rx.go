package offload

// The receive path (§V-C): TLS decryption and body decompression of
// records the NIC DMA'd into a connection's staging buffer. The Linux
// TCP ULP infrastructure invokes the ULP after TCP reassembly on RX —
// the same spot where SmartDIMM offloading is initiated "before the
// packet is transferred to the remaining network stack or userspace".
//
// RX staging convention: record k's ciphertext||tag (TLS) or compressed
// page (deflate) sits at k*SrcStride within conn.Src, mirroring the TX
// layout; decrypted/decompressed output lands at k*DstStride in
// conn.Dst.

import (
	"fmt"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/sim"
)

// RXResult is the cost and outcome breakdown of receive-side processing.
type RXResult struct {
	CPUPs    int64
	DevicePs int64
	// AuthOK reports whether every record's tag verified.
	AuthOK bool
	// Payload is the reassembled plaintext/decompressed body.
	Payload []byte
	Records int
}

// StageRXRecordsDMA delivers wire records into conn.Src via NIC RX DMA
// (DDIO): records[k] is placed at k*SrcStride.
func StageRXRecordsDMA(sys *sim.System, conn *Conn, records [][]byte) error {
	l := LayoutFor(conn.U)
	for k, rec := range records {
		if len(rec) > l.SrcStride {
			return fmt.Errorf("offload: RX record %d (%dB) exceeds stride", k, len(rec))
		}
		if err := sys.DMAIn(conn.Src+uint64(k*l.SrcStride), rec); err != nil {
			return err
		}
	}
	return nil
}

// ReceiveTLS decrypts staged records on the CPU with AES-NI:
// payloadLens[k] is record k's plaintext length.
func (b *CPU) ReceiveTLS(coreID int, conn *Conn, payloadLens []int) (RXResult, error) {
	res := RXResult{AuthOK: true}
	p := b.Sys.Params
	l := LayoutFor(TLS)
	var gcm *aesgcm.GCM
	if b.Functional {
		var err error
		gcm, err = aesgcm.NewGCM(conn.Key)
		if err != nil {
			return res, err
		}
	}
	for k, n := range payloadLens {
		sealed, lat, err := b.Sys.ReadBytes(coreID, conn.Src+uint64(k*l.SrcStride), n+aesgcm.TagSize)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat + p.AESGCMComputePs(n)
		var pt []byte
		if b.Functional {
			pt, err = gcm.Open(nil, conn.NextIV(), sealed, tlsAAD(n))
			if err != nil {
				res.AuthOK = false
				pt = make([]byte, n)
			}
		} else {
			conn.NextIV()
			pt = make([]byte, n)
		}
		lat, err = b.Sys.WriteBytes(coreID, conn.Dst+uint64(k*l.DstStride), pt)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		res.Payload = append(res.Payload, pt...)
		res.Records++
	}
	return res, nil
}

// ReceiveTLS decrypts staged records through CompCpy: the DSA decrypts
// each record in flight and verifies its tag near memory; the trailer's
// first byte carries the verification verdict (§V-A decrypt path).
func (b *SmartDIMM) ReceiveTLS(coreID int, conn *Conn, payloadLens []int) (RXResult, error) {
	res := RXResult{AuthOK: true}
	drv := b.drv()
	l := LayoutFor(TLS)
	for k, n := range payloadLens {
		sbuf := conn.Src + uint64(k*l.SrcStride)
		dbuf := conn.Dst + uint64(k*l.DstStride)
		iv := conn.NextIV()
		g, err := aesgcm.NewGCM(conn.Key)
		if err != nil {
			return res, err
		}
		eiv, err := g.EIV(iv)
		if err != nil {
			return res, err
		}
		ctx := &core.OffloadContext{
			Op: core.OpTLSDecrypt,
			TLS: &core.TLSContext{
				Direction: aesgcm.Decrypt, Key: conn.Key, IV: iv,
				H: g.H(), EIV: eiv, AAD: tlsAAD(n), PayloadLen: n,
			},
			Length: n,
		}
		lat := int64(0)
		err = errSoftRung
		if !b.Soft {
			lat, err = drv.CompCpy(coreID, dbuf, sbuf, n+core.TagSize, ctx, false)
		}
		if err != nil {
			if !degradable(err) {
				return res, err
			}
			// CPU fallback: decrypt the staged record with AES-NI.
			sealed, rlat, rerr := b.Sys.ReadBytes(coreID, sbuf, n+core.TagSize)
			if rerr != nil {
				return res, rerr
			}
			pt, oerr := g.Open(nil, iv, sealed, tlsAAD(n))
			if oerr != nil {
				res.AuthOK = false
				pt = make([]byte, n)
			}
			wlat, werr := b.Sys.WriteBytes(coreID, dbuf, pt)
			if werr != nil {
				return res, werr
			}
			res.CPUPs += rlat + wlat + b.Sys.Params.AESGCMComputePs(n)
			res.Payload = append(res.Payload, pt...)
			res.Records++
			b.Degraded.FallbackOps++
			continue
		}
		res.CPUPs += lat
		b.Degraded.PrimaryOps++
		// USE: flush and read the plaintext plus the verification byte.
		out, lat, err := drv.Use(coreID, dbuf, n+core.TagSize)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		if out[n] != 1 {
			res.AuthOK = false
		}
		res.Payload = append(res.Payload, out[:n]...)
		res.Records++
	}
	return res, nil
}

// ReceiveCompressed inflates staged compressed pages on the CPU.
func (b *CPU) ReceiveCompressed(coreID int, conn *Conn, pageLens []int) (RXResult, error) {
	res := RXResult{AuthOK: true}
	p := b.Sys.Params
	l := LayoutFor(Compression)
	for k, n := range pageLens {
		page, lat, err := b.Sys.ReadBytes(coreID, conn.Src+uint64(k*l.SrcStride), n)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		var orig []byte
		if b.Functional {
			orig, err = core.DecodeCompressedPage(page)
			if err != nil {
				return res, fmt.Errorf("offload: RX page %d: %w", k, err)
			}
		} else {
			orig = make([]byte, core.MaxCompressInput)
		}
		res.CPUPs += p.InflateComputePs(len(orig))
		lat, err = b.Sys.WriteBytes(coreID, conn.Dst+uint64(k*l.DstStride), orig)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		res.Payload = append(res.Payload, orig...)
		res.Records++
	}
	return res, nil
}

// ReceiveCompressed inflates staged pages through the Inflate DSA.
func (b *SmartDIMM) ReceiveCompressed(coreID int, conn *Conn, pageLens []int) (RXResult, error) {
	res := RXResult{AuthOK: true}
	drv := b.drv()
	l := LayoutFor(Compression)
	for k := range pageLens {
		sbuf := conn.Src + uint64(k*l.SrcStride)
		dbuf := conn.Dst + uint64(k*l.DstStride)
		ctx := &core.OffloadContext{Op: core.OpDecompress, Length: core.PageSize}
		var lat int64
		err := errSoftRung
		if !b.Soft {
			lat, err = drv.CompCpy(coreID, dbuf, sbuf, core.PageSize, ctx, true)
		}
		if err != nil {
			if !degradable(err) {
				return res, err
			}
			// CPU fallback: inflate the staged page in software. Output
			// is padded to the page size to match the Inflate DSA.
			page, rlat, rerr := b.Sys.ReadBytes(coreID, sbuf, core.PageSize)
			if rerr != nil {
				return res, rerr
			}
			orig, derr := core.DecodeCompressedPage(page)
			if derr != nil {
				return res, fmt.Errorf("offload: RX fallback page %d: %w", k, derr)
			}
			padded := make([]byte, core.PageSize)
			copy(padded, orig)
			wlat, werr := b.Sys.WriteBytes(coreID, dbuf, padded)
			if werr != nil {
				return res, werr
			}
			res.CPUPs += rlat + wlat + b.Sys.Params.InflateComputePs(len(orig))
			res.Payload = append(res.Payload, padded...)
			res.Records++
			b.Degraded.FallbackOps++
			continue
		}
		res.CPUPs += lat
		b.Degraded.PrimaryOps++
		out, lat, err := drv.Use(coreID, dbuf, core.PageSize)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		// The original length comes from the framing the peer sent; the
		// caller trims. Here each page holds up to MaxCompressInput bytes.
		res.Payload = append(res.Payload, out...)
		res.Records++
	}
	return res, nil
}
