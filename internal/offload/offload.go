// Package offload implements the four ULP accelerator placements the
// paper's evaluation compares (§VI): processing on the CPU with AES-NI,
// autonomous SmartNIC offload (ConnectX-6 style), PCIe-card offload
// (QuickAssist style), and SmartDIMM via CompCpy — all behind one
// Backend interface driven by the server model.
//
// Each backend executes its real memory traffic against the shared
// system model (internal/sim.System), so the CPU-utilization and
// memory-bandwidth numbers of Fig. 11/12 are measured, not asserted:
// the CPU path streams payloads through the LLC twice and pays compute
// time; the PCIe path pays descriptor/doorbell/poll latencies plus DMA
// passes; the SmartDIMM path pays CompCpy's copy and registration and
// nothing else.
package offload

import (
	"errors"
	"fmt"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/deflate"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/stats"
)

// degradable reports whether a CompCpy failure is one the software
// stack recovers from by processing the chunk on the CPU instead:
// scratchpad exhaustion that Force-Recycle could not relieve, a
// translation-table insert failure, a DSA fault that aborted the
// record, or an ALERT_N retry budget burned by injected DRAM faults.
// Anything else (misuse, broken invariants) still propagates.
func degradable(err error) bool {
	return errors.Is(err, core.ErrNoScratchpad) ||
		errors.Is(err, core.ErrTranslationInsert) ||
		errors.Is(err, core.ErrDSAFault) ||
		errors.Is(err, memctrl.ErrAlertRetryExhausted)
}

// ULP selects the upper-layer protocol being offloaded.
type ULP int

// The two ULPs of the paper's evaluation.
const (
	TLS ULP = iota
	Compression
)

// String names the ULP.
func (u ULP) String() string {
	if u == TLS {
		return "tls"
	}
	return "compression"
}

// TLSRecordHeader is the TLS 1.3 record header size (also used as AAD).
const TLSRecordHeader = 5

// MaxTLSPayload is the largest payload per TLS record: sized so that
// payload+tag is exactly four 4KB pages, keeping SmartDIMM records
// page-aligned with no overlap between consecutive records.
const MaxTLSPayload = 16384 - aesgcm.TagSize

// Layout describes how a message is split into ULP records and where
// each record's source and destination live within the connection
// buffers. All backends share one layout so their memory behaviour is
// comparable.
type Layout struct {
	MaxChunk  int // payload bytes per record
	SrcStride int // source bytes reserved per record (page multiple)
	DstStride int // destination bytes reserved per record (page multiple)
}

// LayoutFor returns the record layout of a ULP.
func LayoutFor(u ULP) Layout {
	if u == TLS {
		// Source: 16368B payload in a 16KB window. Destination: header +
		// ciphertext + tag needs 16389B; reserve 5 pages.
		return Layout{MaxChunk: MaxTLSPayload, SrcStride: 16384, DstStride: 20480}
	}
	return Layout{MaxChunk: core.MaxCompressInput, SrcStride: core.PageSize, DstStride: core.PageSize}
}

// Chunks returns the per-record payload sizes for a message.
func (l Layout) Chunks(payloadLen int) []int {
	var out []int
	for payloadLen > 0 {
		c := payloadLen
		if c > l.MaxChunk {
			c = l.MaxChunk
		}
		out = append(out, c)
		payloadLen -= c
	}
	return out
}

// BufBytes returns the buffer size needed for a message of msgSize.
func (l Layout) BufBytes(msgSize int) int {
	n := (msgSize + l.MaxChunk - 1) / l.MaxChunk
	if n == 0 {
		n = 1
	}
	stride := l.SrcStride
	if l.DstStride > stride {
		stride = l.DstStride
	}
	return n * stride
}

// Span is one destination region the NIC must DMA for transmission.
type Span struct {
	Off int // offset within conn.Dst
	Len int
}

// Result reports the cost breakdown of one ULP operation.
type Result struct {
	// CPUPs is CPU busy time charged to the worker core.
	CPUPs int64
	// DevicePs is time spent on the accelerator while the CPU waits
	// (synchronous offloads) — included in latency, not CPU utilization.
	DevicePs int64
	// TXBytes is the post-ULP byte count handed to the NIC.
	TXBytes int
	// Records is how many ULP records/chunks were produced.
	Records int
	// DstSpans lists the destination regions for NIC TX DMA.
	DstSpans []Span
	// DstFlushNeeded marks destinations whose cached (stale) copies must
	// be flushed before TX DMA — the USE step of Algorithm 2. Only the
	// SmartDIMM path sets it; the flush is what recycles the Scratchpad
	// in the common case, and it happens at transmission time, not
	// inside Process, so Scratchpad pages live across the gap between
	// ULP processing and TCP transmission (the Fig. 10 dynamics).
	DstFlushNeeded bool
}

// WallPs is the latency contribution of the operation.
func (r Result) WallPs() int64 { return r.CPUPs + r.DevicePs }

// Conn is per-connection state: buffer addresses in the system's
// memory, the TLS session key material, and a record sequence counter.
type Conn struct {
	ID   int
	U    ULP
	Src  uint64 // staging buffer holding the (plain) payload
	Dst  uint64 // record buffer holding the ULP output
	Size int    // per-buffer size in bytes

	Key    []byte
	ivBase [12]byte
	seq    uint64

	// State is the software compressor's per-connection state region
	// (zlib-style sliding window + hash tables). Only the CPU
	// compression path touches it; the Deflate DSA keeps its candidate
	// state in on-chip Config Memory instead (§V-B) — that asymmetry is
	// a large part of Fig. 12's memory-bandwidth gap.
	State      uint64
	StateBytes int

	onSmartDIMM bool
}

// NextIV derives the per-record nonce (TLS 1.3 xors the sequence number
// into the static IV).
func (c *Conn) NextIV() []byte {
	iv := make([]byte, 12)
	copy(iv, c.ivBase[:])
	s := c.seq
	c.seq++
	for i := 0; i < 8; i++ {
		iv[11-i] ^= byte(s >> (8 * i))
	}
	return iv
}

// Backend is one accelerator placement.
type Backend interface {
	Name() string
	// NewConn allocates connection buffers able to hold msgSize-byte
	// messages of the given ULP.
	NewConn(u ULP, id, msgSize int) (*Conn, error)
	// Process runs the ULP over the payload already staged in conn.Src
	// (per LayoutFor(u)) and leaves the output in conn.Dst, ready for
	// NIC TX DMA over the returned DstSpans.
	Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error)
	// Supports reports whether the placement can run the ULP at all
	// (SmartNICs cannot offload non-size-preserving compression, §III).
	Supports(u ULP) bool
	// InlineSource reports whether the backend consumes the page-cache
	// resident payload directly from conn.Src without a separate staging
	// copy. SmartDIMM piggybacks its offload on the existing copy (§IV
	// goals: "minimized data movement"), so the server keeps file data
	// in conn.Src (on-DIMM page cache, Benefit B2) and skips staging.
	InlineSource() bool
}

// StagePayloadCPU writes a message into conn.Src per the ULP layout via
// CPU stores (the app copying from the page cache), returning CPU time.
func StagePayloadCPU(sys *sim.System, coreID int, conn *Conn, payload []byte) (int64, error) {
	l := LayoutFor(conn.U)
	var lat int64
	for k, n := range l.Chunks(len(payload)) {
		w, err := sys.WriteBytes(coreID, conn.Src+uint64(k*l.SrcStride), payload[:n])
		if err != nil {
			return 0, err
		}
		lat += w
		payload = payload[n:]
	}
	return lat, nil
}

// StagePayloadDMA delivers a message into conn.Src via device DMA
// (storage or NIC RX through DDIO).
func StagePayloadDMA(sys *sim.System, conn *Conn, payload []byte) error {
	l := LayoutFor(conn.U)
	for k, n := range l.Chunks(len(payload)) {
		if err := sys.DMAIn(conn.Src+uint64(k*l.SrcStride), payload[:n]); err != nil {
			return err
		}
		payload = payload[n:]
	}
	return nil
}

// ReadOutput reads the transformed records back through the cache (test
// verification helper; not part of the serving path). When the result
// requires a destination flush (SmartDIMM), it performs the USE step
// first so the reads observe the DSA output.
func ReadOutput(sys *sim.System, coreID int, conn *Conn, res Result) ([][]byte, error) {
	var out [][]byte
	for _, sp := range res.DstSpans {
		if res.DstFlushNeeded {
			if _, err := sys.Hier.Flush(conn.Dst+uint64(sp.Off), sp.Len); err != nil {
				return nil, err
			}
		}
		b, _, err := sys.ReadBytes(coreID, conn.Dst+uint64(sp.Off), sp.Len)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// connKey derives deterministic per-connection key material.
func connKey(id int) ([]byte, [12]byte) {
	key := make([]byte, 16)
	var iv [12]byte
	for i := range key {
		key[i] = byte(id>>(i%4) + i*7)
	}
	for i := range iv {
		iv[i] = byte(id*13 + i)
	}
	return key, iv
}

// newPlainConn allocates connection buffers in regular memory.
// SoftDeflateStateBytes models the software compressor's working state
// (32KB sliding window x2 + hash heads/chains), the dominant source of
// cache pressure on the CPU compression path.
const SoftDeflateStateBytes = 64 << 10

func newPlainConn(sys *sim.System, u ULP, id, msgSize int) (*Conn, error) {
	size := LayoutFor(u).BufBytes(msgSize)
	src, err := sys.AllocPlain(size)
	if err != nil {
		return nil, err
	}
	dst, err := sys.AllocPlain(size)
	if err != nil {
		return nil, err
	}
	key, iv := connKey(id)
	c := &Conn{ID: id, U: u, Src: src, Dst: dst, Size: size, Key: key, ivBase: iv}
	if u == Compression {
		st, err := sys.AllocPlain(SoftDeflateStateBytes)
		if err != nil {
			return nil, err
		}
		c.State = st
		c.StateBytes = SoftDeflateStateBytes
	}
	return c, nil
}

// tlsAAD builds the 5-byte TLS record header used as AAD.
func tlsAAD(payloadLen int) []byte {
	n := payloadLen + aesgcm.TagSize
	return []byte{0x17, 0x03, 0x03, byte(n >> 8), byte(n)}
}

// softCompressPage produces the wire page format with the software
// encoder (better ratio than the DSA, same framing).
func softCompressPage(data []byte) []byte {
	stream := deflate.Compress(data)
	if len(stream)+4 <= len(data) {
		out := make([]byte, 4+len(stream))
		out[0] = byte(len(stream))
		out[1] = byte(len(stream) >> 8)
		out[2] = byte(len(stream) >> 16)
		copy(out[4:], stream)
		return out
	}
	out := make([]byte, 4+len(data))
	out[0] = byte(len(data))
	out[1] = byte(len(data) >> 8)
	out[2] = byte(len(data) >> 16)
	out[3] = 0x80
	copy(out[4:], data)
	return out
}

// estimateCompressed models a typical HTML compression ratio (~3x) for
// non-functional sweeps.
func estimateCompressed(n int) int { return 4 + n/3 }

// --- CPU backend ---------------------------------------------------------

// CPU processes ULPs on the host cores: AES-NI for TLS, software
// deflate for compression. Functional controls whether the actual
// transform runs (tests verify outputs) or only its memory traffic and
// compute time are modelled (large sweeps).
type CPU struct {
	Sys        *sim.System
	Functional bool
}

// Name implements Backend.
func (b *CPU) Name() string { return "CPU" }

// Supports implements Backend: the CPU runs everything.
func (b *CPU) Supports(ULP) bool { return true }

// InlineSource implements Backend: the CPU path copies payloads from
// the page cache into its buffers before processing.
func (b *CPU) InlineSource() bool { return false }

// NewConn implements Backend.
func (b *CPU) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	return newPlainConn(b.Sys, u, id, msgSize)
}

// Process implements Backend.
func (b *CPU) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	var res Result
	p := b.Sys.Params
	l := LayoutFor(u)
	var gcm *aesgcm.GCM
	if b.Functional && u == TLS {
		var err error
		gcm, err = aesgcm.NewGCM(conn.Key)
		if err != nil {
			return res, err
		}
	}
	if u == Compression && conn.StateBytes > 0 {
		// The software compressor streams through its window and hash
		// state: half read, half updated, all through the LLC. Under
		// many concurrent connections this state is what thrashes.
		half := conn.StateBytes / 2
		_, lat, err := b.Sys.ReadBytes(coreID, conn.State, half)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		lat, err = b.Sys.WriteBytes(coreID, conn.State+uint64(half), make([]byte, half))
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
	}
	for k, n := range l.Chunks(payloadLen) {
		// Read the plaintext through the cache (first ULP pass).
		data, lat, err := b.Sys.ReadBytes(coreID, conn.Src+uint64(k*l.SrcStride), n)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat

		var out []byte
		switch u {
		case TLS:
			res.CPUPs += p.AESGCMComputePs(n)
			if b.Functional {
				sealed, err := gcm.Seal(nil, conn.NextIV(), data, tlsAAD(n))
				if err != nil {
					return res, err
				}
				out = append(tlsAAD(n), sealed...)
			} else {
				conn.NextIV()
				out = make([]byte, TLSRecordHeader+n+aesgcm.TagSize)
			}
		case Compression:
			res.CPUPs += p.DeflateComputePs(n)
			if b.Functional {
				out = softCompressPage(data)
			} else {
				out = make([]byte, estimateCompressed(n))
			}
		}
		// Write the record through the cache (second ULP pass).
		lat, err = b.Sys.WriteBytes(coreID, conn.Dst+uint64(k*l.DstStride), out)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		res.TXBytes += len(out)
		res.Records++
		res.DstSpans = append(res.DstSpans, Span{Off: k * l.DstStride, Len: len(out)})
	}
	return res, nil
}

// --- SmartNIC backend ------------------------------------------------------

// SmartNIC models ConnectX-6 autonomous TLS offload (Pismenny et al.):
// the CPU builds the plaintext record and the TCP stack as usual; the
// NIC encrypts inline during TX. On packet loss or reordering the
// engine desynchronizes: the driver resynchronizes and the affected
// record falls back to CPU encryption — the Fig. 2 mechanism, charged
// via ResyncPenalty.
type SmartNIC struct {
	Sys *sim.System
	// Resyncs counts desynchronization events charged so far.
	Resyncs uint64
}

// Name implements Backend.
func (b *SmartNIC) Name() string { return "SmartNIC" }

// Supports implements Backend: autonomous NIC offload requires
// size-preserving transforms, so compression is out (§III, Obs. 1).
func (b *SmartNIC) Supports(u ULP) bool { return u == TLS }

// InlineSource implements Backend.
func (b *SmartNIC) InlineSource() bool { return false }

// NewConn implements Backend.
func (b *SmartNIC) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	return newPlainConn(b.Sys, u, id, msgSize)
}

// Process implements Backend: the CPU builds the record with plaintext
// payload (the library "skips performing the offloaded operation in
// software"); encryption happens on the NIC at line rate with no CPU or
// host-memory cost beyond the TX DMA the server model already performs.
func (b *SmartNIC) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	var res Result
	if u != TLS {
		return res, fmt.Errorf("offload: SmartNIC cannot offload %v", u)
	}
	p := b.Sys.Params
	l := LayoutFor(u)
	for k, n := range l.Chunks(payloadLen) {
		data, lat, err := b.Sys.ReadBytes(coreID, conn.Src+uint64(k*l.SrcStride), n)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat + p.NICCryptoSetupNs*sim.Ns
		out := make([]byte, 0, TLSRecordHeader+n+aesgcm.TagSize)
		out = append(out, tlsAAD(n)...)
		out = append(out, data...)                         // plaintext: NIC encrypts in flight
		out = append(out, make([]byte, aesgcm.TagSize)...) // tag placeholder
		conn.NextIV()
		lat, err = b.Sys.WriteBytes(coreID, conn.Dst+uint64(k*l.DstStride), out)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		res.TXBytes += len(out)
		res.Records++
		res.DstSpans = append(res.DstSpans, Span{Off: k * l.DstStride, Len: len(out)})
	}
	return res, nil
}

// ResyncPenalty returns the cost of one desynchronization event: the
// driver/firmware resync plus CPU fallback encryption of the affected
// record (recordLen payload bytes).
func (b *SmartNIC) ResyncPenalty(recordLen int) Result {
	b.Resyncs++
	p := b.Sys.Params
	return Result{
		CPUPs:    p.AESGCMComputePs(recordLen) + p.NICResyncUs*sim.Us/2,
		DevicePs: p.NICResyncUs * sim.Us / 2,
	}
}

// --- QuickAssist (PCIe) backend --------------------------------------------

// QAT models an Intel QuickAssist 8970 PCIe adapter in the synchronous
// mode the paper evaluates: per-offload descriptor setup and doorbell,
// CPU copies into/out of pinned DMA buffers, payload DMA over PCIe in
// both directions, and a spin-polling completion path that burns CPU for
// the whole device round trip (Observation 2: the notification mechanism
// bottlenecks PCIe-attached acceleration; the paper notes QAT "increases
// memory and CPU utilization due to high notification and memory copy
// overheads").
type QAT struct {
	Sys        *sim.System
	Functional bool
	// pinned DMA staging buffers, shared per backend (QAT instance).
	pinned     uint64
	pinnedSize int
}

// Name implements Backend.
func (b *QAT) Name() string { return "QuickAssist" }

// Supports implements Backend: QAT accelerates crypto and compression.
func (b *QAT) Supports(ULP) bool { return true }

// InlineSource implements Backend.
func (b *QAT) InlineSource() bool { return false }

// NewConn implements Backend.
func (b *QAT) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	if need := LayoutFor(u).BufBytes(msgSize) * 2; b.pinnedSize < need {
		addr, err := b.Sys.AllocPlain(need)
		if err != nil {
			return nil, err
		}
		b.pinned, b.pinnedSize = addr, need
	}
	return newPlainConn(b.Sys, u, id, msgSize)
}

// Process implements Backend.
func (b *QAT) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	var res Result
	p := b.Sys.Params
	l := LayoutFor(u)
	var gcm *aesgcm.GCM
	if b.Functional && u == TLS {
		var err error
		gcm, err = aesgcm.NewGCM(conn.Key)
		if err != nil {
			return res, err
		}
	}
	for k, n := range l.Chunks(payloadLen) {
		// CPU: copy the payload into the pinned DMA staging buffer
		// (the qatzip/QAT-engine flow), build the descriptor, doorbell.
		data, lat, err := b.Sys.ReadBytes(coreID, conn.Src+uint64(k*l.SrcStride), n)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat
		lat, err = b.Sys.WriteBytes(coreID, b.pinned, data[:n])
		if err != nil {
			return res, err
		}
		res.CPUPs += lat + p.QATSetupNs*sim.Ns
		// Card DMA-reads the payload from the pinned buffer (real
		// channel traffic), computes, DMA-writes the result.
		_, dmaLat, err := b.Sys.DMAOut(b.pinned, n)
		if err != nil {
			return res, err
		}
		var out []byte
		switch {
		case u == TLS && b.Functional:
			sealed, err := gcm.Seal(nil, conn.NextIV(), data, tlsAAD(n))
			if err != nil {
				return res, err
			}
			out = append(tlsAAD(n), sealed...)
		case u == TLS:
			conn.NextIV()
			out = make([]byte, TLSRecordHeader+n+aesgcm.TagSize)
		case b.Functional:
			out = softCompressPage(data)
		default:
			out = make([]byte, estimateCompressed(n))
		}
		if err := b.Sys.DMAIn(b.pinned+uint64(b.pinnedSize/2), out); err != nil {
			return res, err
		}
		// Synchronous mode: the CPU spin-polls for the whole device
		// round trip (PCIe RTT + both transfers), then copies the result
		// out of the pinned buffer into the record buffer.
		spin := int64(p.QATPCIeRTTUs*float64(sim.Us)) +
			p.PCIeTransferPs(n) + p.PCIeTransferPs(len(out)) + dmaLat +
			p.QATCompletionNs*sim.Ns
		res.CPUPs += spin
		out2, lat2, err := b.Sys.ReadBytes(coreID, b.pinned+uint64(b.pinnedSize/2), len(out))
		if err != nil {
			return res, err
		}
		res.CPUPs += lat2
		lat2, err = b.Sys.WriteBytes(coreID, conn.Dst+uint64(k*l.DstStride), out2)
		if err != nil {
			return res, err
		}
		res.CPUPs += lat2
		res.TXBytes += len(out)
		res.Records++
		res.DstSpans = append(res.DstSpans, Span{Off: k * l.DstStride, Len: len(out)})
	}
	return res, nil
}

// --- SmartDIMM backend -------------------------------------------------------

// SmartDIMM offloads ULPs through CompCpy (§IV-V). Connection buffers
// are allocated from the device's offload range; the only CPU costs are
// the copy CompCpy performs anyway, the source flush, registration MMIO
// writes, and the destination flush before TX.
//
// When CompCpy fails with a degradable error (scratchpad exhaustion,
// translation-table insert failure, DSA fault, ALERT_N budget), the
// affected chunk is processed by the CPU software path into the same
// destination buffer — the degradation ladder's last rung — and counted
// in Degraded.
type SmartDIMM struct {
	Sys *sim.System
	// Driver selects which rank's buffer device serves this backend; nil
	// uses the system's rank-0 driver (the single-device configuration).
	// internal/fleet builds one SmartDIMM per rank over the same system.
	Driver *core.Driver
	// Soft forces every chunk onto the CPU software rung without touching
	// the device — the processing path of a connection whose home device
	// failed and could not be re-homed (fleet drain with no survivors).
	Soft bool
	// Degraded counts chunks served by CompCpy vs the CPU fallback.
	Degraded stats.Degradation
}

// drv returns the backing driver: the explicitly bound rank, or the
// system's rank-0 driver.
func (b *SmartDIMM) drv() *core.Driver {
	if b.Driver != nil {
		return b.Driver
	}
	return b.Sys.Driver
}

// errSoftRung marks a chunk deliberately routed to the CPU rung by Soft
// mode; it is degradable by construction.
var errSoftRung = fmt.Errorf("offload: soft mode: %w", core.ErrNoScratchpad)

// Name implements Backend.
func (b *SmartDIMM) Name() string { return "SmartDIMM" }

// Supports implements Backend: SmartDIMM handles both ULPs (§V).
func (b *SmartDIMM) Supports(ULP) bool { return true }

// InlineSource implements Backend: CompCpy piggybacks on the existing
// copy out of the page cache; conn.Src holds the file data itself.
func (b *SmartDIMM) InlineSource() bool { return true }

// NewConn implements Backend: buffers come from the SmartDIMM driver.
func (b *SmartDIMM) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	drv := b.drv()
	if drv == nil {
		return nil, fmt.Errorf("offload: system has no SmartDIMM")
	}
	size := LayoutFor(u).BufBytes(msgSize)
	pages := (size + core.PageSize - 1) / core.PageSize
	src, err := drv.AllocPages(pages)
	if err != nil {
		return nil, err
	}
	dst, err := drv.AllocPages(pages)
	if err != nil {
		return nil, err
	}
	key, iv := connKey(id)
	return &Conn{ID: id, U: u, Src: src, Dst: dst, Size: size, Key: key, ivBase: iv,
		onSmartDIMM: true}, nil
}

// Process implements Backend.
func (b *SmartDIMM) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	var res Result
	drv := b.drv()
	l := LayoutFor(u)
	for k, n := range l.Chunks(payloadLen) {
		sbuf := conn.Src + uint64(k*l.SrcStride)
		dbuf := conn.Dst + uint64(k*l.DstStride)
		var ctx *core.OffloadContext
		var size int
		ordered := false
		switch u {
		case TLS:
			iv := conn.NextIV()
			g, err := aesgcm.NewGCM(conn.Key)
			if err != nil {
				return res, err
			}
			eiv, err := g.EIV(iv)
			if err != nil {
				return res, err
			}
			ctx = &core.OffloadContext{
				Op: core.OpTLSEncrypt,
				TLS: &core.TLSContext{
					Direction: aesgcm.Encrypt, Key: conn.Key, IV: iv,
					H: g.H(), EIV: eiv, AAD: tlsAAD(n), PayloadLen: n,
				},
				Length: n,
			}
			size = n + core.TagSize
			res.TXBytes += TLSRecordHeader + n + core.TagSize
			res.DstSpans = append(res.DstSpans, Span{Off: k * l.DstStride, Len: n + core.TagSize})
		case Compression:
			ctx = &core.OffloadContext{Op: core.OpCompress, Length: n}
			size = core.PageSize
			ordered = true
		}
		var lat int64
		err := errSoftRung
		if !b.Soft {
			lat, err = drv.CompCpy(coreID, dbuf, sbuf, size, ctx, ordered)
		}
		switch {
		case err == nil:
			res.CPUPs += lat
			b.Degraded.PrimaryOps++
		case degradable(err):
			// Degradation ladder: CompCpy already tried Force-Recycle;
			// process this chunk on the CPU into the same destination.
			if tr := b.Sys.Tracer; tr != nil {
				tr.Instant(tr.Track("offload"), "cpu-fallback", b.Sys.Engine.Now())
			}
			flat, ferr := b.fallbackChunk(u, coreID, ctx, sbuf, dbuf, n)
			if ferr != nil {
				return res, fmt.Errorf("offload: CPU fallback after %v: %w", err, ferr)
			}
			res.CPUPs += flat
			b.Degraded.FallbackOps++
		default:
			return res, err
		}
		if u == Compression {
			// Wire bytes: the compressed payload length from the page
			// header. Flush just that line so the DMA peek observes the
			// DSA's output rather than the stale cached copy.
			flat, err := b.Sys.Hier.Flush(dbuf, 64)
			if err != nil {
				return res, err
			}
			res.CPUPs += flat
			page, _, err := b.Sys.DMAOut(dbuf, 64)
			if err != nil {
				return res, err
			}
			clen, err := core.CompressedPayloadLen(page)
			if err != nil {
				return res, err
			}
			res.TXBytes += 4 + clen
			res.DstSpans = append(res.DstSpans, Span{Off: k * l.DstStride, Len: 4 + clen})
		}
		res.Records++
	}
	res.DstFlushNeeded = true
	if tr := b.Sys.Tracer; tr != nil {
		tr.Span(tr.Track("offload"), u.String(), b.Sys.Engine.Now(), res.WallPs())
	}
	return res, nil
}

// fallbackChunk runs one chunk of a failed offload on the CPU software
// path, writing the same wire format the DSA would have produced into
// the destination buffer. Returns the CPU time charged.
func (b *SmartDIMM) fallbackChunk(u ULP, coreID int, ctx *core.OffloadContext, sbuf, dbuf uint64, n int) (int64, error) {
	p := b.Sys.Params
	data, lat, err := b.Sys.ReadBytes(coreID, sbuf, n)
	if err != nil {
		return 0, err
	}
	var out []byte
	switch u {
	case TLS:
		g, err := aesgcm.NewGCM(ctx.TLS.Key)
		if err != nil {
			return 0, err
		}
		// Same IV and AAD the DSA was registered with, so the peer
		// decrypts the record identically.
		out, err = g.Seal(nil, ctx.TLS.IV, data, ctx.TLS.AAD)
		if err != nil {
			return 0, err
		}
		lat += p.AESGCMComputePs(n)
	case Compression:
		page, err := core.EncodeCompressedPage(data, deflate.NewHWEncoder(deflate.PaperHWConfig()))
		if err != nil {
			return 0, err
		}
		out = page
		lat += p.DeflateComputePs(n)
	}
	wlat, err := b.Sys.WriteBytes(coreID, dbuf, out)
	if err != nil {
		return 0, err
	}
	return lat + wlat, nil
}

// --- Adaptive backend -----------------------------------------------------

// Adaptive is the §V-C policy: probe the LLC miss rate periodically and
// offload to SmartDIMM only under contention, processing on the CPU
// otherwise.
type Adaptive struct {
	Sys           *sim.System
	CPUBackend    *CPU
	DIMM          *SmartDIMM
	ProbeInterval int // requests between miss-rate samples

	reqs         int
	offloading   bool
	OffloadedN   uint64
	OnCPUN       uint64
	LastMissRate float64
}

// Name implements Backend.
func (b *Adaptive) Name() string { return "SmartDIMM-adaptive" }

// Supports implements Backend.
func (b *Adaptive) Supports(ULP) bool { return true }

// InlineSource implements Backend: both adaptive paths read the on-DIMM
// page cache directly.
func (b *Adaptive) InlineSource() bool { return true }

// NewConn implements Backend: buffers live on SmartDIMM so both paths
// can use them (its capacity counts toward system memory, Benefit B2).
func (b *Adaptive) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	return b.DIMM.NewConn(u, id, msgSize)
}

// Process implements Backend.
func (b *Adaptive) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	interval := b.ProbeInterval
	if interval <= 0 {
		interval = 64
	}
	if b.reqs%interval == 0 {
		b.LastMissRate = b.Sys.LLCMissRateSample()
		b.offloading = b.LastMissRate >= b.Sys.Params.AdaptiveMissRateThreshold
	}
	b.reqs++
	if b.offloading {
		b.OffloadedN++
		return b.DIMM.Process(u, coreID, conn, payloadLen)
	}
	b.OnCPUN++
	return b.CPUBackend.Process(u, coreID, conn, payloadLen)
}
