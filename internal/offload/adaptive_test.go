package offload

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestAdaptiveCompressionBothPathsDecodable(t *testing.T) {
	// The adaptive backend must produce valid wire pages from whichever
	// path it picks, so a run that switches mid-stream stays correct.
	sys := newSys(t, 128<<10, true)
	ad := &Adaptive{
		Sys:           sys,
		CPUBackend:    &CPU{Sys: sys, Functional: true},
		DIMM:          &SmartDIMM{Sys: sys},
		ProbeInterval: 3,
	}
	conn, err := ad.NewConn(Compression, 5, core.MaxCompressInput)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.Generate(corpus.HTML, core.MaxCompressInput, 11)
	big, _ := sys.AllocPlain(512 << 10)
	for i := 0; i < 12; i++ {
		stage(t, sys, conn, payload)
		res, err := ad.Process(Compression, 0, conn, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		records, err := ReadOutput(sys, 0, conn, res)
		if err != nil {
			t.Fatal(err)
		}
		page := make([]byte, core.PageSize)
		copy(page, records[0])
		orig, err := core.DecodeCompressedPage(page)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(orig, payload) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
		// Alternate contention so the policy flips.
		if i%2 == 0 {
			sys.ReadBytes(1, big, 256<<10)
		}
	}
	if ad.OffloadedN == 0 {
		t.Fatal("never offloaded")
	}
}

func TestBackendMetadata(t *testing.T) {
	sys := newSys(t, 128<<10, true)
	cases := []struct {
		b        Backend
		name     string
		inline   bool
		supports map[ULP]bool
	}{
		{&CPU{Sys: sys}, "CPU", false, map[ULP]bool{TLS: true, Compression: true}},
		{&SmartNIC{Sys: sys}, "SmartNIC", false, map[ULP]bool{TLS: true, Compression: false}},
		{&QAT{Sys: sys}, "QuickAssist", false, map[ULP]bool{TLS: true, Compression: true}},
		{&SmartDIMM{Sys: sys}, "SmartDIMM", true, map[ULP]bool{TLS: true, Compression: true}},
		{&Adaptive{Sys: sys, CPUBackend: &CPU{Sys: sys}, DIMM: &SmartDIMM{Sys: sys}},
			"SmartDIMM-adaptive", true, map[ULP]bool{TLS: true, Compression: true}},
	}
	for _, c := range cases {
		if c.b.Name() != c.name {
			t.Errorf("name %q != %q", c.b.Name(), c.name)
		}
		if c.b.InlineSource() != c.inline {
			t.Errorf("%s: inline = %v", c.name, c.b.InlineSource())
		}
		for u, want := range c.supports {
			if c.b.Supports(u) != want {
				t.Errorf("%s: supports(%v) = %v, want %v", c.name, u, c.b.Supports(u), want)
			}
		}
	}
}

func TestNonFunctionalModeCostsOnly(t *testing.T) {
	// Functional=false models costs without running the transform; the
	// cost structure must match the functional mode's.
	payload := corpus.Generate(corpus.Text, 4096, 1)
	run := func(functional bool) Result {
		sys := newSys(t, 1<<20, false)
		b := &CPU{Sys: sys, Functional: functional}
		conn, err := b.NewConn(TLS, 1, 4096)
		if err != nil {
			t.Fatal(err)
		}
		stage(t, sys, conn, payload)
		res, err := b.Process(TLS, 0, conn, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	f := run(true)
	nf := run(false)
	if f.TXBytes != nf.TXBytes || f.Records != nf.Records {
		t.Fatalf("framing differs: %+v vs %+v", f, nf)
	}
	ratio := float64(f.CPUPs) / float64(nf.CPUPs)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("cost model drift between modes: %.2f", ratio)
	}
	// estimateCompressed is only used in non-functional compression.
	sys := newSys(t, 1<<20, false)
	b := &CPU{Sys: sys, Functional: false}
	conn, _ := b.NewConn(Compression, 2, 4096)
	stage(t, sys, conn, payload)
	res, err := b.Process(Compression, 0, conn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.TXBytes >= 4096 || res.TXBytes <= 0 {
		t.Fatalf("estimated compressed size %d implausible", res.TXBytes)
	}
}

func TestSoftCompressPageRawFallback(t *testing.T) {
	// Incompressible input exercises the raw branch of softCompressPage.
	rnd := corpus.Generate(corpus.Random, 2048, 3)
	page := softCompressPage(rnd)
	if len(page) != 4+len(rnd) {
		t.Fatalf("raw fallback length %d", len(page))
	}
	if page[3]&0x80 == 0 {
		t.Fatal("raw flag not set")
	}
	full := make([]byte, core.PageSize)
	copy(full, page)
	out, err := core.DecodeCompressedPage(full)
	if err != nil || !bytes.Equal(out, rnd) {
		t.Fatalf("raw page decode: %v", err)
	}
}
