package offload

import (
	"testing"

	"repro/internal/fault"
)

func breakerPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

// A transient NIC failure window must open the breaker after Threshold
// consecutive failures, serve the cooldown from the CPU fallback, then
// restore the primary on a successful half-open probe.
func TestBreakerOpensAndRecovers(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	primary := &SmartNIC{Sys: sys}
	fallback := &CPU{Sys: sys, Functional: true}
	br := NewBreaker(primary, fallback)
	br.Cooldown = 4

	inj := fault.New(7)
	// The breaker consults the injector with now = ops completed, so a
	// [0,3) window fails exactly the first three requests.
	inj.Arm("offload.nic", fault.Window{FromPs: 0, ToPs: 3, Prob: 1})
	br.Faults = inj
	br.FaultSite = "offload.nic"

	payload := breakerPayload(4000)
	conn, err := br.NewConn(TLS, 1, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		stage(t, sys, conn, payload)
		if _, err := br.Process(TLS, 0, conn, len(payload)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	s := &br.Stats
	if s.InjectedFaults != 3 {
		t.Errorf("InjectedFaults = %d, want 3", s.InjectedFaults)
	}
	if s.Opens != 1 || s.Closes != 1 {
		t.Errorf("Opens/Closes = %d/%d, want 1/1", s.Opens, s.Closes)
	}
	// Requests 0-2 fail over, 3-6 short-circuit, 7 probes and closes,
	// 8-11 run on the restored primary.
	if s.FallbackOps != 7 || s.PrimaryOps != 5 {
		t.Errorf("FallbackOps/PrimaryOps = %d/%d, want 7/5", s.FallbackOps, s.PrimaryOps)
	}
	if s.ShortCircuits != 4 {
		t.Errorf("ShortCircuits = %d, want 4", s.ShortCircuits)
	}
	if br.Open() {
		t.Error("breaker still open after successful probe")
	}
	if rate := s.FallbackRate(); rate <= 0.5 || rate >= 0.65 {
		t.Errorf("FallbackRate = %.3f, want 7/12", rate)
	}
}

// A primary that never recovers must keep the breaker open: every
// half-open probe fails, cooldowns restart, and all requests are served
// by the fallback without surfacing an error.
func TestBreakerStaysOpenWhilePrimaryDown(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	primary := &SmartNIC{Sys: sys}
	fallback := &CPU{Sys: sys, Functional: true}
	br := NewBreaker(primary, fallback)
	br.Threshold = 2
	br.Cooldown = 2

	inj := fault.New(11)
	inj.Arm("offload.nic", fault.Bernoulli{Prob: 1})
	br.Faults = inj
	br.FaultSite = "offload.nic"

	payload := breakerPayload(2500)
	conn, err := br.NewConn(TLS, 2, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		stage(t, sys, conn, payload)
		if _, err := br.Process(TLS, 0, conn, len(payload)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	s := &br.Stats
	if !br.Open() {
		t.Error("breaker closed while primary is permanently down")
	}
	if s.PrimaryOps != 0 || s.Closes != 0 {
		t.Errorf("PrimaryOps/Closes = %d/%d, want 0/0", s.PrimaryOps, s.Closes)
	}
	if s.FallbackOps != 10 {
		t.Errorf("FallbackOps = %d, want 10", s.FallbackOps)
	}
	// Requests 0-1 open the breaker, then cooldowns of 2 alternate with
	// failed probes: 2,3 SC, 4 probe, 5,6 SC, 7 probe, 8,9 SC.
	if s.InjectedFaults != 4 {
		t.Errorf("InjectedFaults = %d, want 4", s.InjectedFaults)
	}
	if s.ShortCircuits != 6 {
		t.Errorf("ShortCircuits = %d, want 6", s.ShortCircuits)
	}
	if s.Opens != 1 {
		t.Errorf("Opens = %d, want 1 (re-opens after failed probes are not new transitions)", s.Opens)
	}
}

// The breaker advertises exactly its primary's capabilities.
func TestBreakerDelegatesCapabilities(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	br := NewBreaker(&SmartNIC{Sys: sys}, &CPU{Sys: sys})
	if br.Supports(Compression) {
		t.Error("breaker over SmartNIC must not claim compression support")
	}
	if !br.Supports(TLS) {
		t.Error("breaker over SmartNIC must support TLS")
	}
	if br.Name() != "SmartNIC+breaker" {
		t.Errorf("Name = %q", br.Name())
	}
}
