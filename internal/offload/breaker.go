package offload

// The circuit breaker demotes a persistently failing accelerator
// placement to CPU processing — the coarse-grained rung of the
// degradation ladder. Per-chunk fallbacks (SmartDIMM.fallbackChunk)
// handle transient faults; the breaker handles a backend that keeps
// failing, where paying the failed-attempt latency on every request
// would be worse than simply serving from the CPU until the device
// recovers.

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/stats"
)

// Breaker wraps a primary Backend with a circuit breaker over a CPU
// (or any compatible) fallback. State machine:
//
//	closed    — requests go to the primary; Threshold consecutive
//	            failures open the breaker.
//	open      — requests short-circuit to the fallback for Cooldown
//	            requests (no failed-attempt latency).
//	half-open — after the cooldown, one probe request tries the
//	            primary: success closes the breaker, failure re-opens.
//
// Both backends must allocate address-compatible connections; the
// breaker delegates NewConn to the primary so either path can process
// any connection. Counters land in Stats (stats.Degradation).
type Breaker struct {
	Primary  Backend
	Fallback Backend
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 3).
	Threshold int
	// Cooldown is how many short-circuited requests pass before a
	// half-open probe (default 32).
	Cooldown int
	// Faults + FaultSite, when set, force primary failures at the named
	// injection site — how tests and the chaos soak model a misbehaving
	// SmartNIC/QAT device that the backend model itself cannot produce.
	Faults    *fault.Injector
	FaultSite string

	Stats stats.Degradation

	consecFails int
	open        bool
	sinceOpen   int
}

// NewBreaker wraps primary with a CPU fallback and default thresholds.
func NewBreaker(primary, fallback Backend) *Breaker {
	return &Breaker{Primary: primary, Fallback: fallback, Threshold: 3, Cooldown: 32}
}

// Name implements Backend.
func (b *Breaker) Name() string { return b.Primary.Name() + "+breaker" }

// Supports implements Backend: the breaker offers exactly what its
// primary placement offers (demotion is a failure response, not a
// capability extension).
func (b *Breaker) Supports(u ULP) bool { return b.Primary.Supports(u) }

// InlineSource implements Backend.
func (b *Breaker) InlineSource() bool { return b.Primary.InlineSource() }

// NewConn implements Backend.
func (b *Breaker) NewConn(u ULP, id, msgSize int) (*Conn, error) {
	return b.Primary.NewConn(u, id, msgSize)
}

// Open reports whether the breaker is currently open (primary demoted).
func (b *Breaker) Open() bool { return b.open }

// Process implements Backend.
func (b *Breaker) Process(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = 3
	}
	cooldown := b.Cooldown
	if cooldown <= 0 {
		cooldown = 32
	}

	if b.open {
		b.sinceOpen++
		if b.sinceOpen <= cooldown {
			b.Stats.ShortCircuits++
			return b.fallback(u, coreID, conn, payloadLen)
		}
		// Half-open: fall through and probe the primary once.
	}

	res, err := b.tryPrimary(u, coreID, conn, payloadLen)
	if err == nil {
		if b.open {
			b.open = false
			b.Stats.Closes++
		}
		b.consecFails = 0
		b.Stats.PrimaryOps++
		return res, nil
	}

	if b.open {
		// Failed half-open probe: stay open, restart the cooldown.
		b.sinceOpen = 0
	} else {
		b.consecFails++
		if b.consecFails >= threshold {
			b.open = true
			b.sinceOpen = 0
			b.Stats.Opens++
		}
	}
	return b.fallback(u, coreID, conn, payloadLen)
}

// tryPrimary runs the primary backend, folding in injected faults.
func (b *Breaker) tryPrimary(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	if b.Faults.Fire(b.FaultSite, int64(b.Stats.PrimaryOps+b.Stats.FallbackOps)) {
		b.Stats.InjectedFaults++
		return Result{}, fmt.Errorf("offload: injected %s failure at %q", b.Primary.Name(), b.FaultSite)
	}
	return b.Primary.Process(u, coreID, conn, payloadLen)
}

// fallback serves the request from the fallback backend.
func (b *Breaker) fallback(u ULP, coreID int, conn *Conn, payloadLen int) (Result, error) {
	res, err := b.Fallback.Process(u, coreID, conn, payloadLen)
	if err != nil {
		return res, fmt.Errorf("offload: fallback %s also failed: %w", b.Fallback.Name(), err)
	}
	b.Stats.FallbackOps++
	return res, nil
}
