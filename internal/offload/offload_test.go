package offload

import (
	"bytes"
	"testing"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/sim"
)

func newSys(t testing.TB, llcBytes int, withDIMM bool) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: llcBytes, LLCWays: 8,
		WithSmartDIMM: withDIMM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// verifyTLS decodes the records a backend produced and checks they
// decrypt to payload under the connection's key schedule.
func verifyTLS(t *testing.T, sys *sim.System, conn *Conn, res Result, payload []byte, nicEncrypts bool) {
	t.Helper()
	records, err := ReadOutput(sys, 0, conn, res)
	if err != nil {
		t.Fatal(err)
	}
	g, err := aesgcm.NewGCM(conn.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the IVs used (sequence restarts at 0 per connection).
	seqConn := &Conn{ivBase: conn.ivBase}
	off := 0
	for i, rec := range records {
		iv := seqConn.NextIV()
		var hdr, body []byte
		if conn.onSmartDIMM {
			// SmartDIMM spans carry ciphertext||tag without the header.
			n := len(rec) - aesgcm.TagSize
			hdr = tlsAAD(n)
			body = rec
		} else {
			hdr = rec[:TLSRecordHeader]
			body = rec[TLSRecordHeader:]
		}
		n := len(body) - aesgcm.TagSize
		want := payload[off : off+n]
		if nicEncrypts {
			// SmartNIC records carry plaintext on the host; the NIC
			// encrypts on the wire. Verify plaintext passthrough.
			if !bytes.Equal(body[:n], want) {
				t.Fatalf("record %d: plaintext mismatch", i)
			}
		} else {
			pt, err := g.Open(nil, iv, body, hdr)
			if err != nil {
				t.Fatalf("record %d: decrypt failed: %v", i, err)
			}
			if !bytes.Equal(pt, want) {
				t.Fatalf("record %d: payload mismatch", i)
			}
		}
		off += n
	}
	if off != len(payload) {
		t.Fatalf("records covered %d of %d payload bytes", off, len(payload))
	}
}

func stage(t *testing.T, sys *sim.System, conn *Conn, payload []byte) {
	t.Helper()
	if _, err := StagePayloadCPU(sys, 0, conn, payload); err != nil {
		t.Fatal(err)
	}
}

func TestCPUBackendTLS(t *testing.T) {
	for _, size := range []int{1000, 4096, 16384, 65536} {
		sys := newSys(t, 1<<20, false)
		b := &CPU{Sys: sys, Functional: true}
		conn, err := b.NewConn(TLS, 1, size)
		if err != nil {
			t.Fatal(err)
		}
		payload := corpus.Generate(corpus.HTML, size, int64(size))
		stage(t, sys, conn, payload)
		res, err := b.Process(TLS, 0, conn, size)
		if err != nil {
			t.Fatal(err)
		}
		wantRecords := (size + MaxTLSPayload - 1) / MaxTLSPayload
		if res.Records != wantRecords {
			t.Fatalf("size %d: %d records, want %d", size, res.Records, wantRecords)
		}
		if res.TXBytes != size+wantRecords*(TLSRecordHeader+aesgcm.TagSize) {
			t.Fatalf("size %d: TXBytes = %d", size, res.TXBytes)
		}
		if res.CPUPs <= 0 || res.DevicePs != 0 {
			t.Fatalf("size %d: costs %d/%d", size, res.CPUPs, res.DevicePs)
		}
		verifyTLS(t, sys, conn, res, payload, false)
	}
}

func TestSmartDIMMBackendTLS(t *testing.T) {
	for _, size := range []int{1000, 4096, 16384, 40000} {
		sys := newSys(t, 256<<10, true)
		b := &SmartDIMM{Sys: sys}
		conn, err := b.NewConn(TLS, 2, size)
		if err != nil {
			t.Fatal(err)
		}
		payload := corpus.Generate(corpus.Text, size, int64(size))
		stage(t, sys, conn, payload)
		res, err := b.Process(TLS, 0, conn, size)
		if err != nil {
			t.Fatal(err)
		}
		verifyTLS(t, sys, conn, res, payload, false)
		if sys.Dev.Stats().DSAErrors != 0 {
			t.Fatalf("size %d: DSA errors", size)
		}
	}
}

func TestSmartNICBackendCarriesPlaintext(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	b := &SmartNIC{Sys: sys}
	conn, _ := b.NewConn(TLS, 3, 4096)
	payload := corpus.Generate(corpus.JSON, 4096, 1)
	stage(t, sys, conn, payload)
	res, err := b.Process(TLS, 0, conn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	verifyTLS(t, sys, conn, res, payload, true)
	if !b.Supports(TLS) || b.Supports(Compression) {
		t.Fatal("SmartNIC support matrix wrong")
	}
	if _, err := b.Process(Compression, 0, conn, 4096); err == nil {
		t.Fatal("SmartNIC accepted compression")
	}
	// Resync penalty includes CPU fallback crypto.
	pen := b.ResyncPenalty(4096)
	if pen.CPUPs <= sys.Params.AESGCMComputePs(4096) {
		t.Fatal("resync penalty too small")
	}
	if b.Resyncs != 1 {
		t.Fatal("resync not counted")
	}
}

func TestQATBackendTLS(t *testing.T) {
	sys := newSys(t, 1<<20, false)
	b := &QAT{Sys: sys, Functional: true}
	conn, _ := b.NewConn(TLS, 4, 4096)
	payload := corpus.Generate(corpus.HTML, 4096, 2)
	stage(t, sys, conn, payload)
	res, err := b.Process(TLS, 0, conn, 4096)
	if err != nil {
		t.Fatal(err)
	}
	verifyTLS(t, sys, conn, res, payload, false)
	// Synchronous QAT: the spin-polled device round trip is charged as
	// CPU time (Observation 2), so CPUPs must include at least the PCIe
	// RTT and there is no overlapped device time.
	if res.DevicePs != 0 {
		t.Fatal("sync QAT should have no overlapped device time")
	}
	if res.CPUPs < int64(sys.Params.QATPCIeRTTUs*float64(sim.Us)) {
		t.Fatal("QAT spin-poll cost not charged")
	}
	// Observation 2: for small offloads the fixed costs dominate — the
	// QAT wall time for 4KB must exceed the CPU path's.
	cpuB := &CPU{Sys: newSys(t, 1<<20, false), Functional: false}
	cpuConn, _ := cpuB.NewConn(TLS, 5, 4096)
	stage(t, cpuB.Sys, cpuConn, payload)
	cpuRes, _ := cpuB.Process(TLS, 0, cpuConn, 4096)
	if res.WallPs() <= cpuRes.WallPs() {
		t.Fatalf("QAT 4KB (%dps) should be slower than CPU (%dps)", res.WallPs(), cpuRes.WallPs())
	}
}

func TestCompressionBackendsProduceDecodablePages(t *testing.T) {
	payload := corpus.Generate(corpus.HTML, 12000, 7)
	check := func(name string, sys *sim.System, b Backend) {
		conn, err := b.NewConn(Compression, 6, len(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stage(t, sys, conn, payload)
		res, err := b.Process(Compression, 0, conn, len(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TXBytes >= len(payload) {
			t.Fatalf("%s: no compression achieved (%d >= %d)", name, res.TXBytes, len(payload))
		}
		records, err := ReadOutput(sys, 0, conn, res)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		for _, rec := range records {
			page := make([]byte, core.PageSize)
			copy(page, rec)
			orig, err := core.DecodeCompressedPage(page)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			got = append(got, orig...)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	sysCPU := newSys(t, 1<<20, false)
	check("cpu", sysCPU, &CPU{Sys: sysCPU, Functional: true})
	sysD := newSys(t, 256<<10, true)
	check("smartdimm", sysD, &SmartDIMM{Sys: sysD})
	sysQ := newSys(t, 1<<20, false)
	check("qat", sysQ, &QAT{Sys: sysQ, Functional: true})
}

func TestSmartDIMMCheaperCPUThanCPUBackend(t *testing.T) {
	// The core claim: under contention, SmartDIMM's per-request CPU cost
	// (copy + registration) beats CPU crypto + thrashing.
	const size = 16384
	payload := corpus.Generate(corpus.Text, size, 1)

	sysC := newSys(t, 128<<10, false)
	cpu := &CPU{Sys: sysC, Functional: true}
	cc, _ := cpu.NewConn(TLS, 1, size)
	stage(t, sysC, cc, payload)
	cpuRes, err := cpu.Process(TLS, 0, cc, size)
	if err != nil {
		t.Fatal(err)
	}

	sysD := newSys(t, 128<<10, true)
	dimm := &SmartDIMM{Sys: sysD}
	dc, _ := dimm.NewConn(TLS, 1, size)
	stage(t, sysD, dc, payload)
	dimmRes, err := dimm.Process(TLS, 0, dc, size)
	if err != nil {
		t.Fatal(err)
	}
	if dimmRes.CPUPs >= cpuRes.CPUPs {
		t.Fatalf("SmartDIMM CPU %dps >= CPU backend %dps", dimmRes.CPUPs, cpuRes.CPUPs)
	}
}

func TestAdaptiveSwitchesOnContention(t *testing.T) {
	sys := newSys(t, 128<<10, true) // small LLC: high miss rate
	ad := &Adaptive{
		Sys: sys, CPUBackend: &CPU{Sys: sys, Functional: false},
		DIMM: &SmartDIMM{Sys: sys}, ProbeInterval: 4,
	}
	conn, err := ad.NewConn(TLS, 9, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.Generate(corpus.Text, 4096, 1)
	// Generate contention: stream a large range through the tiny LLC.
	big, _ := sys.AllocPlain(1 << 20)
	sys.WriteBytes(1, big, make([]byte, 1<<20))
	sys.ReadBytes(1, big, 1<<20)

	for i := 0; i < 16; i++ {
		stage(t, sys, conn, payload)
		if _, err := ad.Process(TLS, 0, conn, len(payload)); err != nil {
			t.Fatal(err)
		}
		// Keep contention high between probes.
		sys.ReadBytes(1, big, 256<<10)
	}
	if ad.OffloadedN == 0 {
		t.Fatalf("adaptive never offloaded under contention (miss rate %.3f)", ad.LastMissRate)
	}
}

func TestAdaptiveStaysOnCPUWhenUncontended(t *testing.T) {
	sys := newSys(t, 8<<20, true) // huge LLC: near-zero miss rate
	ad := &Adaptive{
		Sys: sys, CPUBackend: &CPU{Sys: sys, Functional: false},
		DIMM: &SmartDIMM{Sys: sys}, ProbeInterval: 4,
	}
	conn, _ := ad.NewConn(TLS, 9, 4096)
	payload := corpus.Generate(corpus.Text, 4096, 1)
	// Warm the cache on the CPU path so the steady state has a low miss
	// rate, then clear the probe window before the adaptive loop.
	for i := 0; i < 4; i++ {
		stage(t, sys, conn, payload)
		if _, err := ad.CPUBackend.Process(TLS, 0, conn, len(payload)); err != nil {
			t.Fatal(err)
		}
	}
	sys.LLCMissRateSample()
	for i := 0; i < 24; i++ {
		stage(t, sys, conn, payload)
		if _, err := ad.Process(TLS, 0, conn, len(payload)); err != nil {
			t.Fatal(err)
		}
	}
	if ad.OnCPUN == 0 {
		t.Fatal("adaptive never used the CPU when uncontended")
	}
	if ad.OffloadedN > ad.OnCPUN {
		t.Fatalf("adaptive mostly offloaded without contention: %d vs %d", ad.OffloadedN, ad.OnCPUN)
	}
}

func TestLayoutChunks(t *testing.T) {
	l := LayoutFor(TLS)
	if got := l.Chunks(16368); len(got) != 1 || got[0] != 16368 {
		t.Fatalf("chunks(16368) = %v", got)
	}
	if got := l.Chunks(16384); len(got) != 2 || got[1] != 16 {
		t.Fatalf("chunks(16384) = %v", got)
	}
	if got := l.Chunks(0); got != nil {
		t.Fatalf("chunks(0) = %v", got)
	}
	lc := LayoutFor(Compression)
	if lc.MaxChunk != core.MaxCompressInput {
		t.Fatal("compression chunk size")
	}
	if l.BufBytes(65536) < 4*l.DstStride {
		t.Fatalf("BufBytes(64K) = %d too small", l.BufBytes(65536))
	}
}

func TestULPString(t *testing.T) {
	if TLS.String() != "tls" || Compression.String() != "compression" {
		t.Fatal("ULP names")
	}
}
