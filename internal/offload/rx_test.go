package offload

import (
	"bytes"
	"testing"

	"repro/internal/aesgcm"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/deflate"
	"repro/internal/ulp"
)

// buildWireTLS produces wire records (ciphertext||tag, no header) for a
// message using the same key schedule a Conn derives.
func buildWireTLS(t *testing.T, conn *Conn, payload []byte) ([][]byte, []int) {
	t.Helper()
	g, err := aesgcm.NewGCM(conn.Key)
	if err != nil {
		t.Fatal(err)
	}
	seq := &Conn{ivBase: conn.ivBase}
	l := LayoutFor(TLS)
	var records [][]byte
	var lens []int
	for _, n := range l.Chunks(len(payload)) {
		sealed, err := g.Seal(nil, seq.NextIV(), payload[:n], tlsAAD(n))
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, sealed)
		lens = append(lens, n)
		payload = payload[n:]
	}
	return records, lens
}

func TestRXTLSOnCPU(t *testing.T) {
	sys := newSys(t, 512<<10, false)
	b := &CPU{Sys: sys, Functional: true}
	conn, err := b.NewConn(TLS, 7, 40000)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.Generate(corpus.JSON, 40000, 2)
	records, lens := buildWireTLS(t, conn, payload)
	if err := StageRXRecordsDMA(sys, conn, records); err != nil {
		t.Fatal(err)
	}
	res, err := b.ReceiveTLS(0, conn, lens)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthOK {
		t.Fatal("auth failed on valid records")
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("RX payload mismatch")
	}
	if res.Records != len(records) || res.CPUPs <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestRXTLSOnSmartDIMM(t *testing.T) {
	sys := newSys(t, 256<<10, true)
	b := &SmartDIMM{Sys: sys}
	conn, err := b.NewConn(TLS, 8, 40000)
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.Generate(corpus.Text, 40000, 3)
	records, lens := buildWireTLS(t, conn, payload)
	if err := StageRXRecordsDMA(sys, conn, records); err != nil {
		t.Fatal(err)
	}
	res, err := b.ReceiveTLS(0, conn, lens)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthOK {
		t.Fatal("near-memory tag verification failed on valid records")
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("SmartDIMM RX payload mismatch")
	}
	if sys.Dev.Stats().AuthFailures != 0 {
		t.Fatal("device counted auth failures")
	}
}

func TestRXTLSTamperDetectedNearMemory(t *testing.T) {
	sys := newSys(t, 256<<10, true)
	b := &SmartDIMM{Sys: sys}
	conn, _ := b.NewConn(TLS, 9, 4096)
	payload := corpus.Generate(corpus.Text, 4096, 4)
	records, lens := buildWireTLS(t, conn, payload)
	records[0][5] ^= 0x40 // corrupt ciphertext on the wire
	if err := StageRXRecordsDMA(sys, conn, records); err != nil {
		t.Fatal(err)
	}
	res, err := b.ReceiveTLS(0, conn, lens)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuthOK {
		t.Fatal("tampered record passed near-memory verification")
	}
	if sys.Dev.Stats().AuthFailures == 0 {
		t.Fatal("device did not count the auth failure")
	}
}

func TestRXCompressedBothBackends(t *testing.T) {
	body := corpus.Generate(corpus.HTML, 2*core.MaxCompressInput+500, 5)
	// Build wire pages with the DSA encoder (what a SmartDIMM TX sent).
	enc := deflate.NewHWEncoder(deflate.PaperHWConfig())
	var records [][]byte
	var lens []int
	rest := body
	for len(rest) > 0 {
		n := len(rest)
		if n > core.MaxCompressInput {
			n = core.MaxCompressInput
		}
		page, err := core.EncodeCompressedPage(rest[:n], enc)
		if err != nil {
			t.Fatal(err)
		}
		plen, _ := core.CompressedPayloadLen(page)
		records = append(records, page[:4+plen])
		lens = append(lens, 4+plen)
		rest = rest[n:]
	}

	// CPU RX.
	sysC := newSys(t, 512<<10, false)
	cb := &CPU{Sys: sysC, Functional: true}
	connC, _ := cb.NewConn(Compression, 10, len(body))
	if err := StageRXRecordsDMA(sysC, connC, records); err != nil {
		t.Fatal(err)
	}
	resC, err := cb.ReceiveCompressed(0, connC, lens)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resC.Payload, body) {
		t.Fatal("CPU RX decompression mismatch")
	}

	// SmartDIMM RX (Inflate DSA); output pages are padded, so trim.
	sysD := newSys(t, 256<<10, true)
	db := &SmartDIMM{Sys: sysD}
	connD, _ := db.NewConn(Compression, 11, len(body))
	if err := StageRXRecordsDMA(sysD, connD, records); err != nil {
		t.Fatal(err)
	}
	resD, err := db.ReceiveCompressed(0, connD, lens)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	rest = body
	for k := range records {
		n := len(rest)
		if n > core.MaxCompressInput {
			n = core.MaxCompressInput
		}
		got = append(got, resD.Payload[k*core.PageSize:k*core.PageSize+n]...)
		rest = rest[n:]
	}
	if !bytes.Equal(got, body) {
		t.Fatal("SmartDIMM RX decompression mismatch")
	}
}

func TestRXInteropWithULPSession(t *testing.T) {
	// Records produced by the ulp.Session reference implementation (the
	// software TLS stack) must decrypt through the SmartDIMM RX path:
	// the two ends speak the same record protocol.
	sys := newSys(t, 256<<10, true)
	b := &SmartDIMM{Sys: sys}
	conn, _ := b.NewConn(TLS, 12, 8000)
	sess, err := ulp.NewSession(conn.Key, conn.ivBase[:])
	if err != nil {
		t.Fatal(err)
	}
	payload := corpus.Generate(corpus.HTML, 8000, 6)
	rec, err := sess.EncryptRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the 5-byte header: the RX staging carries ciphertext||tag.
	wire := rec[ulp.RecordHeaderLen:]
	if err := StageRXRecordsDMA(sys, conn, [][]byte{wire}); err != nil {
		t.Fatal(err)
	}
	res, err := b.ReceiveTLS(0, conn, []int{len(payload)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuthOK || !bytes.Equal(res.Payload, payload) {
		t.Fatal("ulp.Session record did not decrypt through SmartDIMM RX")
	}
}

func TestStageRXOversizedRecordRejected(t *testing.T) {
	sys := newSys(t, 256<<10, false)
	b := &CPU{Sys: sys}
	conn, _ := b.NewConn(TLS, 13, 4096)
	big := make([]byte, LayoutFor(TLS).SrcStride+1)
	if err := StageRXRecordsDMA(sys, conn, [][]byte{big}); err == nil {
		t.Fatal("oversized RX record accepted")
	}
}
