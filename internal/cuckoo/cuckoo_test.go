package cuckoo

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	tbl := New[string](64, 3, 8)
	if err := tbl.Insert(42, "hello"); err != nil {
		t.Fatal(err)
	}
	v, ok := tbl.Lookup(42)
	if !ok || v != "hello" {
		t.Fatalf("lookup = %q,%v", v, ok)
	}
	if _, ok := tbl.Lookup(43); ok {
		t.Fatal("lookup of absent key succeeded")
	}
	if !tbl.Contains(42) || tbl.Contains(43) {
		t.Fatal("Contains wrong")
	}
}

func TestInsertReplacesExisting(t *testing.T) {
	tbl := New[int](64, 3, 8)
	tbl.Insert(7, 1)
	tbl.Insert(7, 2)
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replace, not duplicate)", tbl.Len())
	}
	if v, _ := tbl.Lookup(7); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}

func TestDelete(t *testing.T) {
	tbl := New[int](64, 3, 8)
	tbl.Insert(1, 10)
	tbl.Insert(2, 20)
	if !tbl.Delete(1) {
		t.Fatal("delete of present key failed")
	}
	if tbl.Delete(1) {
		t.Fatal("double delete succeeded")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after delete, want 1", tbl.Len())
	}
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tbl.Lookup(2); !ok || v != 20 {
		t.Fatal("unrelated key damaged by delete")
	}
}

func TestPaperConfigDimensions(t *testing.T) {
	tbl := NewPaperConfig[uint64]()
	if tbl.Capacity() != 12288 {
		t.Fatalf("capacity = %d, want 12288", tbl.Capacity())
	}
	// Insert the full working set of the paper: 4096 translations
	// (2048 scratchpad + 2048 config memory pages). Occupancy stays
	// at 33% and nothing may fail.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		if err := tbl.Insert(rng.Uint64(), uint64(i)); err != nil {
			t.Fatalf("insert %d failed: %v", i, err)
		}
	}
	if occ := tbl.Occupancy(); occ > 0.34 {
		t.Fatalf("occupancy = %.3f, want <= 0.34", occ)
	}
	st := tbl.Stats()
	if st.FailedInserts != 0 {
		t.Fatalf("failed inserts = %d, want 0 at paper occupancy", st.FailedInserts)
	}
	// Paper claim: at <50% occupancy insertion typically succeeds on the
	// first attempt or with a single displacement. Verify nearly all
	// inserts were first-try and the mean displacement count is tiny.
	firstTry := float64(st.FirstTryInserts) / float64(st.Inserts)
	if firstTry < 0.90 {
		t.Fatalf("first-try rate = %.3f, want >= 0.90", firstTry)
	}
	if mean := float64(st.Displacements) / float64(st.Inserts); mean > 0.25 {
		t.Fatalf("mean displacements/insert = %.3f, want <= 0.25", mean)
	}
}

func TestAllInsertedKeysFound(t *testing.T) {
	tbl := New[uint64](1024, 3, 8)
	rng := rand.New(rand.NewSource(2))
	keys := make(map[uint64]uint64)
	for i := 0; i < 500; i++ { // ~49% occupancy
		k := rng.Uint64()
		keys[k] = uint64(i)
		if err := tbl.Insert(k, uint64(i)); err != nil {
			t.Fatalf("insert failed at %d: %v", i, err)
		}
	}
	for k, want := range keys {
		got, ok := tbl.Lookup(k)
		if !ok || got != want {
			t.Fatalf("key %#x: got %d,%v want %d", k, got, ok, want)
		}
	}
}

func TestHighOccupancyUsesCAMOrFails(t *testing.T) {
	// A tiny table force-fed far beyond capacity must either stage in the
	// CAM or report ErrFull — never lose an acknowledged entry.
	tbl := New[int](12, 3, 4)
	rng := rand.New(rand.NewSource(3))
	accepted := map[uint64]int{}
	for i := 0; i < 64; i++ {
		k := rng.Uint64()
		if err := tbl.Insert(k, i); err == nil {
			accepted[k] = i
		}
	}
	if len(accepted) == 0 {
		t.Fatal("nothing accepted")
	}
	if tbl.Stats().FailedInserts == 0 {
		t.Fatal("expected some failures when 5x oversubscribed")
	}
	for k, want := range accepted {
		got, ok := tbl.Lookup(k)
		if !ok || got != want {
			t.Fatalf("accepted key %#x lost (got %d,%v want %d)", k, got, ok, want)
		}
	}
	if tbl.Len() != len(accepted) {
		t.Fatalf("len = %d, want %d", tbl.Len(), len(accepted))
	}
}

func TestReset(t *testing.T) {
	tbl := New[int](64, 3, 8)
	for i := uint64(0); i < 10; i++ {
		tbl.Insert(i, int(i))
	}
	tbl.Reset()
	if tbl.Len() != 0 {
		t.Fatalf("len after reset = %d", tbl.Len())
	}
	if tbl.Stats().Inserts != 0 {
		t.Fatal("stats not cleared by reset")
	}
	if _, ok := tbl.Lookup(3); ok {
		t.Fatal("entry survived reset")
	}
	// Table must be reusable after Reset.
	if err := tbl.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Lookup(5); v != 50 {
		t.Fatal("insert after reset broken")
	}
}

func TestDefaultsSelected(t *testing.T) {
	tbl := New[int](10, 0, -1)
	if tbl.ways != DefaultWays {
		t.Fatalf("ways = %d, want %d", tbl.ways, DefaultWays)
	}
	if tbl.camSize != DefaultCAMEntries {
		t.Fatalf("cam = %d, want %d", tbl.camSize, DefaultCAMEntries)
	}
}

func TestStatsCounting(t *testing.T) {
	tbl := New[int](64, 3, 8)
	tbl.Insert(1, 1)
	tbl.Lookup(1)
	tbl.Lookup(2)
	tbl.Delete(1)
	st := tbl.Stats()
	if st.Inserts != 1 || st.Lookups != 2 || st.Hits != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStringSummary(t *testing.T) {
	tbl := New[int](64, 3, 8)
	if s := tbl.String(); !strings.Contains(s, "3-ary") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: a table at paper occupancy behaves exactly like a Go map for
// an arbitrary insert/delete/lookup sequence.
func TestQuickMapEquivalence(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val uint16
		Del bool
	}) bool {
		tbl := New[uint16](4*len(ops)+16, 3, 8)
		ref := map[uint64]uint16{}
		for _, op := range ops {
			if op.Del {
				delRef := false
				if _, ok := ref[op.Key]; ok {
					delete(ref, op.Key)
					delRef = true
				}
				if tbl.Delete(op.Key) != delRef {
					return false
				}
			} else {
				if err := tbl.Insert(op.Key, op.Val); err != nil {
					return false
				}
				ref[op.Key] = op.Val
			}
		}
		if tbl.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tbl.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsertPaperOccupancy(b *testing.B) {
	tbl := NewPaperConfig[uint64]()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Reset()
		for j, k := range keys {
			tbl.Insert(k, uint64(j))
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tbl := NewPaperConfig[uint64]()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = rng.Uint64()
		tbl.Insert(keys[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(keys[i%len(keys)])
	}
}
