// Package cuckoo implements the d-ary cuckoo hash table SmartDIMM uses as
// its Translation Table (§IV-C of the paper), together with the 8-entry
// CAM staging array that absorbs insertions so displacement chains run
// off the critical path.
//
// The paper's configuration is a 3-ary table sized 3x over the required
// entries (12K entries for 4K translations), which keeps occupancy below
// 33% where insertion almost always succeeds on the first attempt or with
// a single displacement. The implementation exposes displacement and
// failure statistics so the reproduction can verify that claim
// (BenchmarkCuckooOccupancy).
package cuckoo

import (
	"errors"
	"fmt"
)

// ErrFull is returned when an insertion cannot be placed even after the
// displacement budget is exhausted and the CAM staging array is full.
// At the paper's <33% occupancy this is effectively unreachable.
var ErrFull = errors.New("cuckoo: table full (displacement budget and CAM exhausted)")

// DefaultWays is the arity used by SmartDIMM's Translation Table.
const DefaultWays = 3

// DefaultCAMEntries is the size of the staging CAM in the paper.
const DefaultCAMEntries = 8

// maxDisplacements bounds a single insertion's displacement chain. The
// hardware performs these one per cycle off the critical path; 32 is far
// beyond what <50% occupancy ever needs.
const maxDisplacements = 32

// Stats captures the behaviour the paper argues about experimentally.
type Stats struct {
	Inserts         uint64 // successful insertions (table or CAM)
	FirstTryInserts uint64 // placed without displacing anyone
	Displacements   uint64 // total entries moved during insertions
	CAMStaged       uint64 // insertions that parked in the CAM first
	CAMDrains       uint64 // CAM entries later moved into the table
	FailedInserts   uint64 // insertions that returned ErrFull
	Lookups         uint64
	Hits            uint64
	Deletes         uint64
}

// slot is one bucket cell.
type slot[V any] struct {
	key   uint64
	value V
	used  bool
}

// Table is a d-ary cuckoo hash table with CAM overflow staging. Keys are
// uint64 (SmartDIMM keys translations by physical page number). The zero
// value is not usable; construct with New.
type Table[V any] struct {
	ways      int
	perWay    int // buckets per way
	slots     [][]slot[V]
	cam       []slot[V]
	camSize   int
	occupancy int
	stats     Stats
	seeds     []uint64
}

// New constructs a table with the given total capacity (rounded up to a
// multiple of ways), arity, and CAM size. Passing ways <= 0 or camSize < 0
// selects the paper defaults.
func New[V any](capacity, ways, camSize int) *Table[V] {
	if ways <= 0 {
		ways = DefaultWays
	}
	if camSize < 0 {
		camSize = DefaultCAMEntries
	}
	if capacity < ways {
		capacity = ways
	}
	perWay := (capacity + ways - 1) / ways
	t := &Table[V]{
		ways:    ways,
		perWay:  perWay,
		slots:   make([][]slot[V], ways),
		camSize: camSize,
		seeds:   make([]uint64, ways),
	}
	for w := 0; w < ways; w++ {
		t.slots[w] = make([]slot[V], perWay)
		// Distinct odd multipliers give the distinct hash functions the
		// paper requires for each way.
		t.seeds[w] = 0x9e3779b97f4a7c15 + uint64(w)*0xbf58476d1ce4e5b9
	}
	return t
}

// NewPaperConfig constructs the Translation Table exactly as the paper
// configures it: 12288 entries (3x the 4096 required translations),
// 3-ary, with an 8-entry CAM.
func NewPaperConfig[V any]() *Table[V] {
	return New[V](12288, DefaultWays, DefaultCAMEntries)
}

// mix is a 64-bit finalizer (splitmix64) applied per way with a
// way-specific seed, standing in for the hardware's three hash circuits.
func mix(key, seed uint64) uint64 {
	z := key + seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *Table[V]) bucket(way int, key uint64) int {
	return int(mix(key, t.seeds[way]) % uint64(t.perWay))
}

// Len returns the number of stored entries, including CAM residents.
func (t *Table[V]) Len() int { return t.occupancy }

// Capacity returns the total table capacity excluding the CAM.
func (t *Table[V]) Capacity() int { return t.ways * t.perWay }

// Occupancy returns the load factor of the main table (0..1), excluding
// CAM residents.
func (t *Table[V]) Occupancy() float64 {
	inCAM := 0
	for i := range t.cam {
		if t.cam[i].used {
			inCAM++
		}
	}
	return float64(t.occupancy-inCAM) / float64(t.Capacity())
}

// Stats returns a copy of the accumulated statistics.
func (t *Table[V]) Stats() Stats { return t.stats }

// Lookup returns the value stored for key. The CAM is probed in the same
// cycle as the table ways, as in the hardware.
func (t *Table[V]) Lookup(key uint64) (V, bool) {
	t.stats.Lookups++
	for i := range t.cam {
		if t.cam[i].used && t.cam[i].key == key {
			t.stats.Hits++
			return t.cam[i].value, true
		}
	}
	for w := 0; w < t.ways; w++ {
		s := &t.slots[w][t.bucket(w, key)]
		if s.used && s.key == key {
			t.stats.Hits++
			return s.value, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Table[V]) Contains(key uint64) bool {
	_, ok := t.Lookup(key)
	return ok
}

// Insert stores value under key, replacing any existing entry for the
// same key. If no way has a free bucket, it first parks the entry in the
// CAM (constant-time, as the hardware does) and then attempts to drain by
// running the displacement chain off the critical path. ErrFull is
// returned only when both the displacement budget and the CAM are
// exhausted.
func (t *Table[V]) Insert(key uint64, value V) error {
	// Update in place if present (table or CAM).
	for i := range t.cam {
		if t.cam[i].used && t.cam[i].key == key {
			t.cam[i].value = value
			return nil
		}
	}
	for w := 0; w < t.ways; w++ {
		s := &t.slots[w][t.bucket(w, key)]
		if s.used && s.key == key {
			s.value = value
			return nil
		}
	}

	// Fast path: any empty candidate bucket.
	for w := 0; w < t.ways; w++ {
		s := &t.slots[w][t.bucket(w, key)]
		if !s.used {
			*s = slot[V]{key: key, value: value, used: true}
			t.occupancy++
			t.stats.Inserts++
			t.stats.FirstTryInserts++
			return nil
		}
	}

	// Park in the CAM and drain via displacements.
	if len(t.cam) < t.camSize {
		t.cam = append(t.cam, slot[V]{key: key, value: value, used: true})
	} else {
		placed := false
		for i := range t.cam {
			if !t.cam[i].used {
				t.cam[i] = slot[V]{key: key, value: value, used: true}
				placed = true
				break
			}
		}
		if !placed {
			t.stats.FailedInserts++
			return ErrFull
		}
	}
	t.occupancy++
	t.stats.Inserts++
	t.stats.CAMStaged++
	t.drainCAM()
	return nil
}

// drainCAM tries to move CAM residents into the main table using bounded
// displacement chains. Failure to drain leaves the entry in the CAM; it
// remains fully visible to lookups.
func (t *Table[V]) drainCAM() {
	for i := range t.cam {
		if !t.cam[i].used {
			continue
		}
		if t.placeWithDisplacement(t.cam[i].key, t.cam[i].value) {
			t.cam[i].used = false
			t.stats.CAMDrains++
		}
	}
}

// placeWithDisplacement runs a cuckoo displacement chain for (key, value).
// It returns false if the chain exceeds the displacement budget; in that
// case the table is left as it was before the call (the chain is rolled
// forward only on success by operating on copies until commit).
func (t *Table[V]) placeWithDisplacement(key uint64, value V) bool {
	type move struct {
		way, idx int
		old      slot[V]
	}
	curKey, curVal := key, value
	var trail []move
	way := 0
	for d := 0; d <= maxDisplacements; d++ {
		// Try all ways for an empty bucket first.
		for w := 0; w < t.ways; w++ {
			idx := t.bucket(w, curKey)
			if !t.slots[w][idx].used {
				t.slots[w][idx] = slot[V]{key: curKey, value: curVal, used: true}
				t.stats.Displacements += uint64(len(trail))
				return true
			}
		}
		if d == maxDisplacements {
			break
		}
		// Evict from a rotating way to avoid ping-pong between two cells.
		idx := t.bucket(way, curKey)
		victim := t.slots[way][idx]
		trail = append(trail, move{way: way, idx: idx, old: victim})
		t.slots[way][idx] = slot[V]{key: curKey, value: curVal, used: true}
		curKey, curVal = victim.key, victim.value
		way = (way + 1) % t.ways
	}
	// Roll back so the displaced chain does not lose entries.
	for i := len(trail) - 1; i >= 0; i-- {
		m := trail[i]
		t.slots[m.way][m.idx] = m.old
	}
	return false
}

// Delete removes key, returning whether it was present.
func (t *Table[V]) Delete(key uint64) bool {
	for i := range t.cam {
		if t.cam[i].used && t.cam[i].key == key {
			t.cam[i].used = false
			t.occupancy--
			t.stats.Deletes++
			return true
		}
	}
	for w := 0; w < t.ways; w++ {
		s := &t.slots[w][t.bucket(w, key)]
		if s.used && s.key == key {
			s.used = false
			t.occupancy--
			t.stats.Deletes++
			return true
		}
	}
	return false
}

// Reset empties the table, keeping configuration and zeroing statistics.
func (t *Table[V]) Reset() {
	for w := range t.slots {
		for i := range t.slots[w] {
			t.slots[w][i].used = false
		}
	}
	t.cam = t.cam[:0]
	t.occupancy = 0
	t.stats = Stats{}
}

// String summarizes the table state.
func (t *Table[V]) String() string {
	return fmt.Sprintf("cuckoo(%d-ary, cap=%d, len=%d, occ=%.1f%%)",
		t.ways, t.Capacity(), t.Len(), t.Occupancy()*100)
}
