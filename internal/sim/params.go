package sim

// Params collects every calibration constant of the reproduction in one
// place, each annotated with its source. The absolute values matter less
// than the ratios they induce — the reproduction brief is shape fidelity
// (winner ordering, approximate factors, crossover points), not absolute
// testbed numbers.
type Params struct {
	// --- CPU ---------------------------------------------------------

	// CPUClockGHz is the core clock (Xeon Gold 6242: 2.8 GHz base).
	CPUClockGHz float64
	// AESNIBytesPerCycle is AES-GCM throughput with AES-NI+PCLMULQDQ.
	// Gueron reports ~0.75-1.0 cycles/byte on Skylake-era cores for
	// AES-GCM; we use 1.0 cycle/byte => 1.0 bytes/cycle inverse.
	AESNICyclesPerByte float64
	// AESSetupCycles is per-record setup (key schedule reuse, IV, final
	// tag handling) on the CPU path.
	AESSetupCycles float64
	// DeflateCyclesPerByte is software deflate at nginx's default
	// gzip_comp_level=1 (~200MB/s at 2.8GHz => ~14 cycles/byte).
	DeflateCyclesPerByte float64
	// InflateCyclesPerByte for the receive path (~300MB/s => ~9).
	InflateCyclesPerByte float64
	// HTTPParseNs is per-request parse + app logic time.
	HTTPParseNs int64
	// SyscallNs models the socket write + kernel TCP path per response
	// segment batch.
	SyscallNs int64

	// --- SmartNIC (ConnectX-6 autonomous TLS offload, Pismenny et al.)

	// NICCryptoSetupNs is the per-record offload bookkeeping on the CPU
	// (building the TLS record state the NIC tracks).
	NICCryptoSetupNs int64
	// NICResyncUs is the driver/firmware resynchronization cost when a
	// retransmission or reorder desynchronizes the inline engine; the
	// affected record falls back to CPU encryption.
	NICResyncUs int64

	// --- QuickAssist (PCIe 8970) --------------------------------------

	// QATSetupNs: descriptor build + doorbell MMIO write.
	QATSetupNs int64
	// QATCompletionNs: polling/interrupt completion detection cost on
	// the CPU (Observation 2: the notification mechanism bottlenecks
	// PCIe offload).
	QATCompletionNs int64
	// QATPCIeRTTUs: request->response PCIe round trip (DMA descriptors
	// both ways) excluding payload transfer.
	QATPCIeRTTUs float64
	// QATPCIeGBps: effective PCIe payload bandwidth (x8 Gen3 ~ 7.9GB/s).
	QATPCIeGBps float64

	// --- SmartDIMM -----------------------------------------------------

	// DSATLSBytesPerCycle: the TLS DSA sustains DDR line rate (validated
	// on the AxDIMM prototype, §VI): 64B per buffer-device cycle.
	DSATLSBytesPerCycle float64
	// AdaptiveMissRateThreshold: LLC miss rate above which the OpenSSL
	// engine offloads to SmartDIMM (§V-C; configurable).
	AdaptiveMissRateThreshold float64

	// --- Network --------------------------------------------------------

	// LinkGbps is the NIC line rate (100GbE).
	LinkGbps float64
	// MTUBytes is the TCP MSS+headers on the wire.
	MTUBytes int
	// RTTUs is the in-rack round trip.
	RTTUs float64
	// PerPacketCPUNs is the kernel TCP/IP per-packet processing cost.
	PerPacketCPUNs int64

	// --- Storage ---------------------------------------------------------

	// StorageReadUsPer4KB models the page-cache-miss path for file reads
	// (NVMe ~ 10us/4KB at QD1 amortized).
	StorageReadUsPer4KB float64
	// PageCacheHitRate is how often file data is already in the page
	// cache (memory) rather than storage.
	PageCacheHitRate float64
}

// DefaultParams returns the calibration used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		CPUClockGHz:          2.8,
		AESNICyclesPerByte:   1.0,
		AESSetupCycles:       1500,
		DeflateCyclesPerByte: 14,
		InflateCyclesPerByte: 9,
		HTTPParseNs:          2000,
		SyscallNs:            1500,

		NICCryptoSetupNs: 1500,
		NICResyncUs:      100,

		QATSetupNs:      2500,
		QATCompletionNs: 3000,
		QATPCIeRTTUs:    4.0,
		QATPCIeGBps:     7.9,

		DSATLSBytesPerCycle:       64,
		AdaptiveMissRateThreshold: 0.10,

		LinkGbps:       100,
		MTUBytes:       1500,
		RTTUs:          12,
		PerPacketCPUNs: 300,

		StorageReadUsPer4KB: 10,
		PageCacheHitRate:    0.95,
	}
}

// CyclesToPs converts CPU cycles to picoseconds at the configured clock.
func (p Params) CyclesToPs(cycles float64) int64 {
	return int64(cycles * 1000 / p.CPUClockGHz)
}

// AESGCMComputePs returns the pure-compute time for AES-NI over n bytes.
func (p Params) AESGCMComputePs(n int) int64 {
	return p.CyclesToPs(p.AESSetupCycles + p.AESNICyclesPerByte*float64(n))
}

// DeflateComputePs returns software deflate compute time for n bytes.
func (p Params) DeflateComputePs(n int) int64 {
	return p.CyclesToPs(p.DeflateCyclesPerByte * float64(n))
}

// InflateComputePs returns software inflate compute time for n bytes.
func (p Params) InflateComputePs(n int) int64 {
	return p.CyclesToPs(p.InflateCyclesPerByte * float64(n))
}

// PCIeTransferPs returns payload transfer time over the QAT link.
func (p Params) PCIeTransferPs(n int) int64 {
	return int64(float64(n) / (p.QATPCIeGBps * 1e9) * 1e12)
}

// LinkSerializationPs returns wire time for n bytes at line rate.
func (p Params) LinkSerializationPs(n int) int64 {
	return int64(float64(n*8) / (p.LinkGbps * 1e9) * 1e12)
}

// SegmentsFor returns how many MTU-sized packets carry n payload bytes.
func (p Params) SegmentsFor(n int) int {
	mss := p.MTUBytes - 40 // IP+TCP headers
	if mss <= 0 {
		mss = 1460
	}
	return (n + mss - 1) / mss
}
