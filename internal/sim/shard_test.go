package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// shardLog is one shard's deterministic event log: every handler
// appends to its own shard's log only, so the merged (concat in shard
// order) log is a pure function of the simulation.
type shardLog struct {
	lines []string
}

// buildPingModel wires a synthetic K-shard model onto se: each shard
// runs a self-scheduling chain of `events` local events spaced stepPs
// apart (per-shard LCG jitter so shards drift out of phase), and every
// 5th event sends a cross-shard message to the next shard at sendDelay.
// Handlers log (shard, time, seq) so any scheduling difference shows up
// as a text diff.
func buildPingModel(se *ShardedEngine, logs []*shardLog, events int, stepPs, sendDelay int64) {
	k := se.Shards()
	for i := 0; i < k; i++ {
		i := i
		rng := uint64(i*2654435761 + 12345)
		var tick func(n int)
		tick = func(n int) {
			e := se.Shard(i)
			logs[i].lines = append(logs[i].lines, fmt.Sprintf("s%d t=%d n=%d", i, e.Now(), n))
			if n%5 == 4 {
				dst := (i + 1) % k
				from, at := i, n
				se.Send(i, dst, sendDelay, func() {
					logs[dst].lines = append(logs[dst].lines,
						fmt.Sprintf("s%d t=%d recv from=%d n=%d", dst, se.Shard(dst).Now(), from, at))
				})
			}
			if n+1 < events {
				rng = rng*6364136223846793005 + 1442695040888963407
				jitter := int64(rng % 97)
				e.After(stepPs+jitter, func() { tick(n + 1) })
			}
		}
		e := se.Shard(i)
		e.At(int64(i)*11, func() { tick(0) })
	}
}

// runPingModel executes the model and returns the merged log.
func runPingModel(shards, workers int, lookahead int64, events int) string {
	se := NewShardedEngine(shards, lookahead)
	se.Workers = workers
	logs := make([]*shardLog, shards)
	for i := range logs {
		logs[i] = &shardLog{}
	}
	const sendDelay = 250_000 // >= every lookahead the tests exercise
	buildPingModel(se, logs, events, 1000, sendDelay)
	se.Run()
	var b strings.Builder
	for _, l := range logs {
		for _, line := range l.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestShardedDeterministicAcrossWorkers is the core PDES gate: the
// serial reference schedule (Workers=1) and fully parallel execution
// produce byte-identical event logs, also under a different GOMAXPROCS.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	ref := runPingModel(4, 1, 250_000, 200)
	if got := runPingModel(4, 4, 250_000, 200); got != ref {
		t.Fatalf("parallel execution diverged from serial reference:\n--- serial ---\n%.400s\n--- parallel ---\n%.400s", ref, got)
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := runPingModel(4, 0, 250_000, 200); got != ref {
		t.Fatal("GOMAXPROCS=2 execution diverged from serial reference")
	}
}

// TestShardedLookaheadWindows shrinks the conservative window down to
// 1ps: the epoch partitioning changes drastically (up to one timestamp
// per epoch) but results must not move at all — lookahead is an
// execution concern, never a model concern.
func TestShardedLookaheadWindows(t *testing.T) {
	ref := runPingModel(3, 1, 250_000, 120)
	for _, tc := range []struct {
		name      string
		lookahead int64
		workers   int
	}{
		{"1ps-serial", 1, 1},
		{"1ps-parallel", 1, 4},
		{"97ps", 97, 2},
		{"1ns", 1_000, 4},
		{"full-window", 250_000, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := runPingModel(3, tc.workers, tc.lookahead, 120); got != ref {
				t.Fatalf("lookahead %dps (workers=%d) changed results", tc.lookahead, tc.workers)
			}
		})
	}
}

// TestShardedTieBreakOrder pins the barrier merge order: two messages
// delivered to one shard at the same instant arrive in sender-shard
// order regardless of execution parallelism.
func TestShardedTieBreakOrder(t *testing.T) {
	run := func(workers int) string {
		se := NewShardedEngine(3, 100)
		se.Workers = workers
		var log []string
		// Both shard 1 and shard 2 fire at t=50 and send to shard 0 with
		// the same delay: identical delivery instants.
		for _, src := range []int{2, 1} {
			src := src
			se.Shard(src).At(50, func() {
				se.Send(src, 0, 100, func() {
					log = append(log, fmt.Sprintf("from=%d at=%d", src, se.Shard(0).Now()))
				})
			})
		}
		se.Run()
		return strings.Join(log, "\n")
	}
	want := "from=1 at=150\nfrom=2 at=150"
	for _, workers := range []int{1, 3} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: delivery order %q, want %q", workers, got, want)
		}
	}
}

// TestShardedSendBelowLookaheadPanics pins the conservative contract:
// a cross-shard latency shorter than the window is a model bug and must
// fail loudly, not corrupt causality silently.
func TestShardedSendBelowLookaheadPanics(t *testing.T) {
	se := NewShardedEngine(2, 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below lookahead did not panic")
		}
	}()
	se.Send(0, 1, 999, func() {})
}

// TestShardedPendingProcessedAggregate verifies the engine-wide
// counters sum across every shard (and in-flight messages), rather than
// reporting shard 0 alone.
func TestShardedPendingProcessedAggregate(t *testing.T) {
	se := NewShardedEngine(3, 10)
	fn := func() {}
	se.Shard(0).After(5, fn)
	se.Shard(1).After(6, fn)
	se.Shard(2).After(7, fn)
	se.Shard(2).After(8, fn)
	se.Send(0, 2, 50, fn)
	if got := se.Pending(); got != 5 {
		t.Fatalf("Pending() = %d, want 5 (4 queued + 1 buffered message)", got)
	}
	if n := se.Run(); n != 5 {
		t.Fatalf("Run() = %d events, want 5", n)
	}
	if got := se.Processed(); got != 5 {
		t.Fatalf("Processed() = %d, want 5", got)
	}
	if got := se.Pending(); got != 0 {
		t.Fatalf("Pending() after drain = %d, want 0", got)
	}
	if got := se.Sent(); got != 1 {
		t.Fatalf("Sent() = %d, want 1", got)
	}
}

// TestShardedRunUntilAdvancesAllClocks mirrors Engine.RunUntil's
// trailing-edge clock advance: after a sharded RunUntil every shard
// reads exactly the deadline, so measurement windows close together.
func TestShardedRunUntilAdvancesAllClocks(t *testing.T) {
	se := NewShardedEngine(3, 100)
	se.Shard(1).After(40, func() {})
	se.RunUntil(500)
	for i := 0; i < se.Shards(); i++ {
		if now := se.Shard(i).Now(); now != 500 {
			t.Fatalf("shard %d clock = %d after RunUntil(500)", i, now)
		}
	}
	// And a later run keeps working.
	ran := false
	se.Shard(2).After(10, func() { ran = true })
	se.RunUntil(600)
	if !ran {
		t.Fatal("event after clock advance did not run")
	}
}

// TestShardScheduleSteadyStateAllocs pins the 0-alloc schedule path
// under sharded execution: once warmed, per-shard scheduling and epoch
// stepping allocate nothing (Workers=1; parallel epochs pay only the
// per-epoch goroutine spawns, measured by BenchmarkEngineSharded).
func TestShardScheduleSteadyStateAllocs(t *testing.T) {
	se := NewShardedEngine(2, 50)
	se.Workers = 1
	var chain func(shard int, left int)
	chain = func(shard, left int) {
		if left > 0 {
			se.Shard(shard).After(100, func() { chain(shard, left-1) })
		}
	}
	// Warm the free lists and the merge buffers.
	chain(0, 64)
	chain(1, 64)
	se.Run()
	per := testing.AllocsPerRun(10, func() {
		chain(0, 32)
		chain(1, 32)
		se.Run()
	})
	// The closures capturing (shard, left) are the only allocations the
	// driver itself makes; the engine contributes zero. Allow the
	// closure allocs (2 per event) and nothing more.
	if per > 150 {
		t.Fatalf("steady-state sharded run allocates %.0f/run; engine path must be alloc-free", per)
	}
}
