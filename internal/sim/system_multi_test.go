package sim

import (
	"bytes"
	"testing"

	"repro/internal/dram"
)

func TestSystemExtraChannels(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Params: DefaultParams(), LLCBytes: 1 << 20, LLCWays: 8,
		WithSmartDIMM: true, ExtraChannels: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Hier.Channels) != 2 {
		t.Fatalf("channels = %d", len(sys.Hier.Channels))
	}
	// With an extra channel, plain memory lives entirely off-SmartDIMM.
	plain, err := sys.AllocPlain(8192)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := sys.Hier.ChannelOf(plain)
	if err != nil || ch != 1 {
		t.Fatalf("plain memory on channel %d, want 1", ch)
	}
	// Offload buffers stay on the SmartDIMM channel.
	off, err := sys.Driver.AllocPages(2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err = sys.Hier.ChannelOf(off)
	if err != nil || ch != 0 {
		t.Fatalf("offload buffer on channel %d, want 0", ch)
	}
	// Data integrity across both channels.
	data := bytes.Repeat([]byte{0x5C}, 4096)
	if _, err := sys.WriteBytes(0, plain, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.ReadBytes(0, plain, 4096)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("cross-channel round trip failed")
	}
}

func TestSystemPlainExhaustion(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Params: DefaultParams(), LLCBytes: 1 << 20, LLCWays: 8,
		Geometry: dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 16, ColsPerRow: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny geometry: 16 banks x 16 rows x 128 cols x 64B = 2MB.
	if _, err := sys.AllocPlain(4 << 20); err == nil {
		t.Fatal("over-allocation accepted")
	}
}

func TestContentionModelInflatesLatency(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		Params: DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generate heavy demand across two windows so the load factor
	// updates; the engine clock advances via scheduled events.
	addr, _ := sys.AllocPlain(8 << 20)
	var tickErr error
	var hammer func()
	rounds := 0
	hammer = func() {
		_, lat, err := sys.ReadBytes(0, addr+uint64(rounds%64)*128*1024, 128*1024)
		if err != nil {
			tickErr = err
			return
		}
		rounds++
		if rounds < 40 {
			sys.Engine.After(lat, hammer)
		}
	}
	sys.Engine.After(0, hammer)
	sys.Engine.Run()
	if tickErr != nil {
		t.Fatal(tickErr)
	}
	if lf := sys.Hier.LoadFactor(); lf <= 1.0 {
		t.Fatalf("load factor %.2f never rose under saturating demand", lf)
	}
}
