package sim

import "testing"

// BenchmarkEngineScheduleCancel exercises the hot schedule/cancel pair
// (the TCP model re-arms its RTO on every ACK). Steady state must be
// allocation-free: events come from the free list and Cancel is a value
// handle, not a closure.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := e.After(int64(i%97), fn)
		c.Cancel()
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
}

// BenchmarkEngineScheduleRun measures pure schedule+dispatch throughput
// with a deep queue, the RunUntil hot loop of every experiment.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.After(int64(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(int64(i+depth), fn)
		e.Step()
	}
}

// BenchmarkEngineSharded measures sharded events/sec at 1/2/4/8 shards
// on a self-scheduling per-shard event chain with periodic cross-shard
// sends — the engine-level cost of the epoch barrier protocol. On a
// multicore host the per-event rate should hold roughly flat as shards
// grow (shards execute concurrently); on one core it measures pure
// synchronization overhead. The steady-state schedule path itself is
// alloc-free (TestShardScheduleSteadyStateAllocs); the per-epoch
// goroutine spawns and cross-shard message buffering measured here are
// the only allocating parts.
func BenchmarkEngineSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(benchName(shards), func(b *testing.B) {
			const lookahead = 10_000
			se := NewShardedEngine(shards, lookahead)
			// One reusable self-scheduling closure per shard, so the
			// benchmark measures the engine, not closure construction.
			nop := func() {}
			left := make([]int, shards)
			ticks := make([]func(), shards)
			for s := 0; s < shards; s++ {
				s := s
				ticks[s] = func() {
					left[s]--
					if left[s] <= 0 {
						return
					}
					if left[s]%16 == 0 && shards > 1 {
						se.Send(s, (s+1)%shards, lookahead, nop)
					}
					se.Shard(s).After(100, ticks[s])
				}
			}
			// Warm the per-shard free lists and merge buffers.
			for s := 0; s < shards; s++ {
				left[s] = 512
				se.Shard(s).After(100, ticks[s])
			}
			se.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < shards; s++ {
					left[s] = 512
					se.Shard(s).After(100, ticks[s])
				}
				se.Run()
			}
			b.StopTimer()
			// Per-op work is 512 events per shard; report the rate the
			// scaling argument is about.
			b.ReportMetric(float64(se.Processed())/b.Elapsed().Seconds(), "events/s")
		})
	}
}

func benchName(shards int) string {
	return map[int]string{1: "1shard", 2: "2shards", 4: "4shards", 8: "8shards"}[shards]
}
