package sim

import "testing"

// BenchmarkEngineScheduleCancel exercises the hot schedule/cancel pair
// (the TCP model re-arms its RTO on every ACK). Steady state must be
// allocation-free: events come from the free list and Cancel is a value
// handle, not a closure.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := e.After(int64(i%97), fn)
		c.Cancel()
		if i%64 == 0 {
			for e.Step() {
			}
		}
	}
}

// BenchmarkEngineScheduleRun measures pure schedule+dispatch throughput
// with a deep queue, the RunUntil hot loop of every experiment.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.After(int64(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(int64(i+depth), fn)
		e.Step()
	}
}
