package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/memctrl"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// DataPath selects how inbound record payloads reach memory — the
// placement axis the RDMA/peer-DMA experiments compare.
type DataPath int

const (
	// DataPathHost is the historical path: storage or NIC RX delivers
	// payloads into host DRAM through DDIO (LLC DMA ways), and inline
	// backends re-stage them into SmartDIMM buffers from there.
	DataPathHost DataPath = iota
	// DataPathPeer is the zero-copy path: an RDMA-capable NIC writes
	// records straight into SmartDIMM lower-half buffers (registered
	// memory regions) via one-sided WRITE, bypassing host DRAM and the
	// LLC's DDIO ways entirely.
	DataPathPeer
)

// String names the data path.
func (d DataPath) String() string {
	if d == DataPathPeer {
		return "peer"
	}
	return "host"
}

// SystemConfig assembles a full host: LLC, memory channels (the first
// optionally a SmartDIMM), and calibration parameters.
type SystemConfig struct {
	Params Params
	// DataPath selects the host-mediated (default) or peer-DMA ingress
	// path. The system only records the choice; internal/rdma supplies
	// the NIC model and internal/server consults the field to pick the
	// staging route.
	DataPath DataPath
	// LLCBytes/LLCWays size the shared LLC; zero selects the testbed
	// default (22MB, 11 ways).
	LLCBytes int
	LLCWays  int
	// Geometry for each DIMM; zero value selects SmallGeometry (128MB),
	// which keeps simulations fast while exercising all mechanisms.
	Geometry dram.Geometry
	// WithSmartDIMM installs a SmartDIMM as channel 0.
	WithSmartDIMM bool
	// SmartDIMMRanks installs this many SmartDIMM buffer devices, one
	// per channel starting at channel 0 — the paper's target platform
	// exposes every rank's buffer device as an independent accelerator.
	// Zero with WithSmartDIMM set means one rank (the single-device
	// configuration every paper figure uses). Values above one split
	// each device's range between offload buffers (lower half) and
	// regular memory (upper half), exactly like the single-rank layout.
	SmartDIMMRanks int
	// DeviceConfig overrides the SmartDIMM configuration; zero selects
	// PaperDeviceConfig.
	DeviceConfig *core.DeviceConfig
	// ExtraChannels adds plain DIMMs after channel 0.
	ExtraChannels int
	// TraceCAS attaches a CAS trace to channel 0 (Fig. 9).
	TraceCAS int // max events; 0 disables
	// Faults, when non-nil, arms fault injection across channel 0: the
	// SmartDIMM device sites (core.alert / core.dsa / core.ttinsert) or
	// the plain DIMM site (dram.alert), and the controller's memctrl.crc
	// site. Nil keeps every layer on its fast, fault-free path.
	Faults *fault.Injector
	// Tracer, when non-nil, threads span tracing through every layer of
	// the assembled system — engine, per-rank controller, buffer device,
	// and driver — exactly like Faults. It also hooks Faults.OnFire so
	// fired injections land on the trace as instant events. Nil (the
	// default) keeps every instrumented site on its one-compare path.
	Tracer *telemetry.Tracer
	// Engine, when non-nil, builds the system on an existing engine
	// instead of a fresh one — how the sharded cluster places each
	// sub-system on its ShardedEngine shard. Nil keeps the historical
	// one-system-one-engine behaviour.
	Engine *Engine
}

// System is the assembled host model shared by the offload backends and
// the server model.
type System struct {
	Params   Params
	DataPath DataPath
	Engine   *Engine
	Hier     *memsys.Hierarchy
	Dev      *core.Device // nil without SmartDIMM; rank 0 with several
	Driver   *core.Driver // nil without SmartDIMM; rank 0 with several
	Trace    *stats.CASTrace
	BWMeter  *stats.BandwidthMeter

	// Devs/Drivers list every SmartDIMM rank in channel order; with a
	// single rank they alias Dev/Driver. Meters holds the per-channel
	// bandwidth meters in the same order (channel 0 first), so fleet
	// totals can be aggregated per device. Ctls holds the matching
	// memory controllers (write-queue pressure feeds placement scores).
	Devs    []*core.Device
	Drivers []*core.Driver
	Meters  []*stats.BandwidthMeter
	Ctls    []*memctrl.Controller

	// Tracer is the span tracer every component of this system records
	// to (nil when tracing is off). Callers that drive the system (the
	// server model, the fleet, the CLIs) read it from here.
	Tracer *telemetry.Tracer

	// allocator for plain (non-SmartDIMM) buffer space: one or more
	// page-granular regions (the upper half of each SmartDIMM rank, or
	// the plain channels) used for page-cache and connection buffers.
	plainRegions []plainRegion
}

// plainRegion is one contiguous range the plain bump allocator draws
// from; regions are consumed in order.
type plainRegion struct {
	next, end uint64
}

// NewSystem builds the host.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.LLCBytes == 0 {
		def := cache.DefaultXeonLLC()
		cfg.LLCBytes, cfg.LLCWays = def.SizeBytes, def.Ways
	}
	if cfg.Geometry.Ranks == 0 {
		cfg.Geometry = dram.SmallGeometry()
	}
	llc, err := cache.New(cache.Config{
		SizeBytes: cfg.LLCBytes, Ways: cfg.LLCWays,
		WayMask: [2]uint64{cache.ClassDMA: 0b11},
	})
	if err != nil {
		return nil, err
	}

	ranks := cfg.SmartDIMMRanks
	if ranks == 0 && cfg.WithSmartDIMM {
		ranks = 1
	}
	if ranks < 0 {
		return nil, fmt.Errorf("sim: %d SmartDIMM ranks", ranks)
	}

	eng := cfg.Engine
	if eng == nil {
		eng = NewEngine()
	}
	sys := &System{Params: cfg.Params, DataPath: cfg.DataPath, Engine: eng}
	sys.Tracer = cfg.Tracer
	sys.Engine.Tracer = cfg.Tracer
	// Channel-0 fault sites (core.*, memctrl.crc, dram.alert) all fire on
	// the DRAM-cycle clock; scale to picoseconds for the trace timeline.
	tck := memctrl.DefaultConfig().Timing.TCKps
	if cfg.Faults != nil && cfg.Tracer != nil {
		tr := cfg.Tracer
		faultTrack := tr.Track("faults")
		cfg.Faults.OnFire = func(site string, _, now int64) {
			tr.Instant(faultTrack, site, now*tck)
		}
	}
	var chans []memsys.Channel

	meter := &stats.BandwidthMeter{PeakBytesPerSec: 25.6e9} // DDR4-3200 x1
	sys.BWMeter = meter

	if ranks > 0 {
		dc := core.PaperDeviceConfig(cfg.Geometry)
		if cfg.DeviceConfig != nil {
			dc = *cfg.DeviceConfig
		}
		for r := 0; r < ranks; r++ {
			dev, err := core.NewDevice(dc)
			if err != nil {
				return nil, err
			}
			dev.Faults = cfg.Faults
			ctl := memctrl.New(memctrl.DefaultConfig(), dev)
			ctl.Faults = cfg.Faults
			if cfg.Tracer != nil {
				ctl.Tracer = cfg.Tracer
				ctl.TraceTrack = cfg.Tracer.Track(fmt.Sprintf("mem/rank%d", r))
				dev.Tracer = cfg.Tracer
				dev.TraceTrack = cfg.Tracer.Track(fmt.Sprintf("dev/rank%d", r))
				dev.TraceCycPs = tck
			}
			// Every rank's channel gets its own bandwidth meter so fleet
			// totals can be reported per device; channel 0 keeps the
			// shared BWMeter so single-rank behaviour is unchanged.
			m := meter
			if r > 0 {
				m = &stats.BandwidthMeter{PeakBytesPerSec: 25.6e9}
			}
			ctl.Meter = m
			sys.Meters = append(sys.Meters, m)
			sys.Ctls = append(sys.Ctls, ctl)
			if r == 0 {
				sys.Dev = dev
				if cfg.TraceCAS > 0 {
					sys.Trace = &stats.CASTrace{Limit: cfg.TraceCAS}
					ctl.Trace = sys.Trace
				}
			}
			sys.Devs = append(sys.Devs, dev)
			chans = append(chans, memsys.Channel{Ctl: ctl, Mod: dev})
		}
	} else {
		d, err := dram.NewPlainDIMM(cfg.Geometry)
		if err != nil {
			return nil, err
		}
		d.Faults = cfg.Faults
		ctl := memctrl.New(memctrl.DefaultConfig(), d)
		ctl.Meter = meter
		ctl.Faults = cfg.Faults
		if cfg.Tracer != nil {
			ctl.Tracer = cfg.Tracer
			ctl.TraceTrack = cfg.Tracer.Track("mem/plain")
		}
		sys.Meters = append(sys.Meters, meter)
		sys.Ctls = append(sys.Ctls, ctl)
		if cfg.TraceCAS > 0 {
			sys.Trace = &stats.CASTrace{Limit: cfg.TraceCAS}
			ctl.Trace = sys.Trace
		}
		chans = append(chans, memsys.Channel{Ctl: ctl, Mod: d})
	}
	for i := 0; i < cfg.ExtraChannels; i++ {
		d, err := dram.NewPlainDIMM(cfg.Geometry)
		if err != nil {
			return nil, err
		}
		chans = append(chans, memsys.Channel{Ctl: memctrl.New(memctrl.DefaultConfig(), d), Mod: d})
	}
	hier, err := memsys.New(llc, chans...)
	if err != nil {
		return nil, err
	}
	hier.Clock = sys.Engine.Now
	sys.Hier = hier

	devCap := cfg.Geometry.CapacityBytes()
	for r := 0; r < ranks; r++ {
		base := uint64(r) * devCap
		drv := core.NewDriver(hier, base, devCap, 1)
		dev := sys.Devs[r]
		drv.AbortProbe = func() uint64 { return dev.Stats().RecordAborts }
		if cfg.Tracer != nil {
			drv.Clock = sys.Engine.Now
			drv.Tracer = cfg.Tracer
			drv.TraceTrack = cfg.Tracer.Track(fmt.Sprintf("driver/rank%d", r))
		}
		sys.Drivers = append(sys.Drivers, drv)
		// Plain buffers (page cache, connection buffers: the OS using
		// SmartDIMM capacity as regular memory, Benefit B2) share each
		// device range with offload buffers: offloads take the lower
		// half, plain memory the upper half below the MMIO page. With
		// extra channels and a single rank, plain memory moves entirely
		// off the SmartDIMM (the layout every paper figure uses).
		if ranks == 1 && cfg.ExtraChannels > 0 {
			sys.plainRegions = append(sys.plainRegions,
				plainRegion{next: devCap, end: uint64(1+cfg.ExtraChannels) * devCap})
		} else {
			drv.SetAllocRange(base, base+devCap/2)
			sys.plainRegions = append(sys.plainRegions,
				plainRegion{next: base + devCap/2, end: base + devCap - dram.PageSize})
		}
	}
	if ranks == 0 {
		sys.plainRegions = append(sys.plainRegions,
			plainRegion{next: 0, end: uint64(1+cfg.ExtraChannels) * devCap})
	} else if ranks > 1 && cfg.ExtraChannels > 0 {
		// Extra plain channels extend the plain pool behind the ranks.
		sys.plainRegions = append(sys.plainRegions,
			plainRegion{next: uint64(ranks) * devCap, end: uint64(ranks+cfg.ExtraChannels) * devCap})
	}
	if ranks > 0 {
		sys.Driver = sys.Drivers[0]
	}
	return sys, nil
}

// AllocPlain reserves n bytes (page-aligned) of regular memory for page
// cache and connection buffers. Regions are consumed in order, so with a
// single region the addresses are identical to the historical bump
// allocator; multi-rank systems fall through to the next rank's upper
// half when one fills.
func (s *System) AllocPlain(n int) (uint64, error) {
	pages := uint64((n + dram.PageSize - 1) / dram.PageSize)
	for i := range s.plainRegions {
		r := &s.plainRegions[i]
		if r.next+pages*dram.PageSize <= r.end {
			addr := r.next
			r.next += pages * dram.PageSize
			return addr, nil
		}
	}
	return 0, fmt.Errorf("sim: plain memory exhausted")
}

// MemMLP is the memory-level parallelism of bulk sequential accesses:
// an out-of-order core overlaps several outstanding cacheline misses,
// so the time of an N-line stream is the summed latency divided by the
// achievable MLP, not the serial sum.
const MemMLP = 4

// WriteBytes copies data into memory through the cache (CPU writes).
func (s *System) WriteBytes(core int, addr uint64, data []byte) (int64, error) {
	var lat int64
	var line [dram.CachelineSize]byte
	for off := 0; off < len(data); off += dram.CachelineSize {
		n := copy(line[:], data[off:])
		for i := n; i < dram.CachelineSize; i++ {
			line[i] = 0
		}
		l, err := s.Hier.Write64(core, addr+uint64(off), line[:])
		if err != nil {
			return 0, err
		}
		lat += l
	}
	return lat / MemMLP, nil
}

// ReadBytes reads n bytes from memory through the cache (CPU reads).
func (s *System) ReadBytes(core int, addr uint64, n int) ([]byte, int64, error) {
	out := make([]byte, 0, n)
	var lat int64
	var line [dram.CachelineSize]byte
	for off := 0; off < n; off += dram.CachelineSize {
		l, err := s.Hier.Read64(core, addr+uint64(off), line[:])
		if err != nil {
			return nil, 0, err
		}
		lat += l
		take := n - off
		if take > dram.CachelineSize {
			take = dram.CachelineSize
		}
		out = append(out, line[:take]...)
	}
	return out, lat / MemMLP, nil
}

// DMAIn models a device (NIC RX or storage) delivering data via DDIO.
func (s *System) DMAIn(addr uint64, data []byte) error {
	var line [dram.CachelineSize]byte
	for off := 0; off < len(data); off += dram.CachelineSize {
		n := copy(line[:], data[off:])
		for i := n; i < dram.CachelineSize; i++ {
			line[i] = 0
		}
		if err := s.Hier.DMAWrite64(addr+uint64(off), line[:]); err != nil {
			return err
		}
	}
	return nil
}

// PeerDMAWrite models an RDMA NIC depositing data directly into
// device-adjacent memory (peer DMA): every line goes to the owning
// rank's controller — metered and priced by that rank's write-queue
// timing — without touching the LLC's DDIO ways. Returns the aggregate
// device-side latency; like DMAOut, the NIC's write engine pipelines
// outstanding lines MLP-wide.
func (s *System) PeerDMAWrite(addr uint64, data []byte) (int64, error) {
	var lat int64
	var line [dram.CachelineSize]byte
	for off := 0; off < len(data); off += dram.CachelineSize {
		n := copy(line[:], data[off:])
		for i := n; i < dram.CachelineSize; i++ {
			line[i] = 0
		}
		l, err := s.Hier.PeerDMAWrite64(addr+uint64(off), line[:])
		if err != nil {
			return 0, err
		}
		lat += l
	}
	return lat / MemMLP, nil
}

// DMAOut models NIC TX DMA reading n bytes, returning the data and the
// aggregate device-side latency.
func (s *System) DMAOut(addr uint64, n int) ([]byte, int64, error) {
	out := make([]byte, 0, n)
	var lat int64
	var line [dram.CachelineSize]byte
	for off := 0; off < n; off += dram.CachelineSize {
		l, err := s.Hier.DMARead64(addr+uint64(off), line[:])
		if err != nil {
			return nil, 0, err
		}
		lat += l
		take := n - off
		if take > dram.CachelineSize {
			take = dram.CachelineSize
		}
		out = append(out, line[:take]...)
	}
	// NIC DMA engines pipeline outstanding reads like a core's MLP.
	return out, lat / MemMLP, nil
}

// MemoryBytesMoved returns total metered DRAM channel traffic: channel
// 0 alone in the historical single-device configurations, and the sum
// over every rank's channel in a multi-rank fleet.
func (s *System) MemoryBytesMoved() uint64 {
	var n uint64
	for _, m := range s.Meters {
		n += m.TotalBytes()
	}
	return n
}

// LLCMissRateSample samples and resets the LLC miss-rate window — the
// probe the adaptive policy uses (§V-C).
func (s *System) LLCMissRateSample() float64 { return s.Hier.LLC.SampleMissRate() }

// RegisterMetrics registers every stats aggregate the assembled system
// owns — the rank-0 device and driver plus each rank's memory
// controller — under the conventional prefixes ("dev", "driver",
// "mem.rankN"). The CLIs and the bench harness all report through this
// one helper so their metric name layout cannot drift apart.
func (s *System) RegisterMetrics(reg *telemetry.Registry) {
	s.RegisterMetricsPrefixed(reg, "")
}

// RegisterMetricsPrefixed is RegisterMetrics with every prefix nested
// under an extra component ("shard3" -> "shard3.dev", ...). The sharded
// cluster registers each sub-system through it so a multi-shard metrics
// dump carries every shard's aggregates instead of shard 0's alone.
func (s *System) RegisterMetricsPrefixed(reg *telemetry.Registry, prefix string) {
	join := func(name string) string {
		if prefix == "" {
			return name
		}
		return prefix + "." + name
	}
	if s.Dev != nil {
		reg.Register(join("dev"), s.Dev.Stats())
	}
	if s.Driver != nil {
		reg.Register(join("driver"), s.Driver.Stats())
	}
	for r, ctl := range s.Ctls {
		reg.Register(join(fmt.Sprintf("mem.rank%d", r)), ctl.Stats())
	}
}
