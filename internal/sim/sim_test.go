package sim

import (
	"bytes"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(300, func() { order = append(order, 3) })
	e.After(100, func() { order = append(order, 1) })
	e.After(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 300 {
		t.Fatalf("now = %d", e.Now())
	}
}

func TestEngineTieBreakInsertionOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	cancel := e.After(10, func() { ran = true })
	cancel.Cancel()
	cancel.Cancel() // idempotent
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Fatal("pending count wrong")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(100, tick)
	}
	e.After(100, tick)
	n := e.RunUntil(1000)
	if n != 10 || count != 10 {
		t.Fatalf("ran %d events, count %d", n, count)
	}
	if e.Now() != 1000 {
		t.Fatalf("now = %d after RunUntil", e.Now())
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var hits []int64
	e.After(10, func() {
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 1 || hits[0] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEnginePastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	e.After(100, func() {
		e.At(5, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %d", e.Now())
			}
		})
	})
	e.Run()
}

func TestParamsConversions(t *testing.T) {
	p := DefaultParams()
	// 2800 cycles at 2.8GHz = 1us.
	if got := p.CyclesToPs(2800); got != Us {
		t.Fatalf("CyclesToPs = %d", got)
	}
	// AES-GCM 4KB at 1 cycle/byte + 1500 setup ~ 2us.
	ps := p.AESGCMComputePs(4096)
	if ps < Us || ps > 3*Us {
		t.Fatalf("AES 4KB = %dps implausible", ps)
	}
	// Deflate is much slower than AES.
	if p.DeflateComputePs(4096) < 10*p.AESGCMComputePs(4096)/2 {
		t.Fatal("deflate should be much costlier than AES-NI")
	}
	// 1500B at 100Gbps = 120ns.
	if got := p.LinkSerializationPs(1500); got < 119_000 || got > 121_000 {
		t.Fatalf("serialization = %dps, want ~120ns", got)
	}
	if p.SegmentsFor(4096) != 3 {
		t.Fatalf("segments for 4KB = %d", p.SegmentsFor(4096))
	}
	if p.SegmentsFor(0) != 0 {
		t.Fatal("segments for 0")
	}
	if p.PCIeTransferPs(7900) < 900_000 || p.PCIeTransferPs(7900) > 1_100_000 {
		t.Fatalf("PCIe 7900B = %dps, want ~1us", p.PCIeTransferPs(7900))
	}
}

func TestSystemPlainRoundTrip(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Params: DefaultParams(), LLCBytes: 1 << 20, LLCWays: 8})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sys.AllocPlain(8192)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("xyz"), 1000)
	if _, err := sys.WriteBytes(0, addr, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.ReadBytes(0, addr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestSystemWithSmartDIMMSharesRange(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Params: DefaultParams(), LLCBytes: 1 << 20, LLCWays: 8, WithSmartDIMM: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dev == nil || sys.Driver == nil {
		t.Fatal("SmartDIMM not installed")
	}
	// Offload and plain allocations must not overlap.
	off, err := sys.Driver.AllocPages(4)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.AllocPlain(4096)
	if err != nil {
		t.Fatal(err)
	}
	if off == plain {
		t.Fatal("allocator collision")
	}
	// DMA into plain memory works and leaks are measurable.
	data := bytes.Repeat([]byte{5}, 4096)
	if err := sys.DMAIn(plain, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.DMAOut(plain, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DMA round trip mismatch")
	}
}

func TestSystemMemoryAccounting(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{Params: DefaultParams(), LLCBytes: 64 * 1024, LLCWays: 8})
	addr, _ := sys.AllocPlain(1 << 20)
	// Stream 1MB through a 64KB LLC: most fills come from DRAM.
	buf := make([]byte, 1<<20)
	sys.WriteBytes(0, addr, buf)
	sys.ReadBytes(0, addr, 1<<20)
	if sys.MemoryBytesMoved() == 0 {
		t.Fatal("no DRAM traffic recorded for streaming access")
	}
}

func TestSystemTrace(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{Params: DefaultParams(), LLCBytes: 64 * 1024, LLCWays: 8, TraceCAS: 1000})
	addr, _ := sys.AllocPlain(256 * 1024)
	sys.WriteBytes(0, addr, make([]byte, 256*1024))
	sys.ReadBytes(0, addr, 256*1024)
	if sys.Trace == nil || sys.Trace.Reads() == 0 {
		t.Fatal("trace not capturing")
	}
}
