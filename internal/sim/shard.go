// Sharded parallel discrete-event execution: a ShardedEngine runs N
// independent Engine shards under conservative-lookahead (CMB-style)
// synchronization, so one simulation uses every core while remaining
// byte-deterministic.
//
// The model is partitioned so each shard owns a disjoint slice of
// simulation state (a SmartDIMM rank group with its controller, device,
// driver and meter; the NIC/client front-end). A shard only ever touches
// its own state from its own events; the sole cross-shard channel is
// Send, a timestamped message delivered at least one lookahead window in
// the future. That bound is what makes parallel execution safe: during
// an epoch every shard may process events up to
//
//	horizon = min(next event time over all shards) + lookahead
//
// because any message generated during the epoch carries a delivery time
// >= its sender's current event time + lookahead >= horizon — no shard
// can receive anything that would retroactively change work it already
// did this epoch.
//
// Determinism (DESIGN.md §14): each shard is sequential, so its event
// stream depends only on its inputs; inter-shard messages are buffered
// per sender in emission order and delivered at the epoch barrier in
// sorted (deliverPs, sender shard, sender emission seq) order. Both are
// independent of worker count and GOMAXPROCS, so a Workers=1 run and a
// fully parallel run are byte-identical — the property the shard
// determinism gates compare.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// xmsg is one cross-shard message awaiting barrier delivery.
type xmsg struct {
	at  int64
	src int32
	dst int32
	fn  func()
}

// ShardedEngine coordinates N Engine shards with conservative lookahead
// windows. Construct with NewShardedEngine, wire each shard's model to
// Shard(i), then drive the whole simulation with RunUntil exactly like a
// serial Engine.
type ShardedEngine struct {
	shards    []*Engine
	lookahead int64

	// Workers caps how many shards execute an epoch concurrently.
	// 0 selects GOMAXPROCS; 1 is the serial reference execution every
	// parallel run must match byte-for-byte.
	Workers int

	// outbox[src] accumulates messages sent by shard src during the
	// current epoch. Only shard src's goroutine appends to its slot, so
	// the buffers need no locks; the coordinator drains them all at the
	// barrier.
	outbox [][]xmsg
	merged []xmsg   // reusable barrier merge buffer
	counts []uint64 // reusable per-shard epoch event counts
	epochs uint64
	sent   uint64
}

// NewShardedEngine builds n shards synchronized at lookaheadPs windows.
// The lookahead must be at least 1ps (events at the epoch's minimum
// timestamp must be runnable); it should be the smallest cross-shard
// interaction latency the partitioned model exhibits — see
// fleet.DeriveDispatchPs for the derivation used by the sharded cluster.
func NewShardedEngine(n int, lookaheadPs int64) *ShardedEngine {
	if n < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", n))
	}
	if lookaheadPs < 1 {
		panic(fmt.Sprintf("sim: lookahead %dps; conservative windows need >= 1ps", lookaheadPs))
	}
	se := &ShardedEngine{
		lookahead: lookaheadPs,
		shards:    make([]*Engine, n),
		outbox:    make([][]xmsg, n),
		counts:    make([]uint64, n),
	}
	for i := range se.shards {
		se.shards[i] = NewEngine()
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Lookahead returns the conservative window in picoseconds.
func (se *ShardedEngine) Lookahead() int64 { return se.lookahead }

// Epochs returns how many barrier epochs have executed.
func (se *ShardedEngine) Epochs() uint64 { return se.epochs }

// Shard returns shard i's Engine. Model components built on shard i must
// schedule exclusively through it and touch only shard-i state.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// Now returns the front shard's clock. All shards share the same
// trailing-edge deadline after RunUntil, so outside a run this is the
// global simulated time.
func (se *ShardedEngine) Now() int64 { return se.shards[0].Now() }

// Pending aggregates live queued events across every shard plus
// cross-shard messages still buffered for barrier delivery — not shard
// 0's queue alone.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.Pending()
	}
	for _, box := range se.outbox {
		n += len(box)
	}
	return n
}

// Processed aggregates events run across every shard.
func (se *ShardedEngine) Processed() uint64 {
	n := uint64(0)
	for _, sh := range se.shards {
		n += sh.Processed()
	}
	return n
}

// Sent returns how many cross-shard messages have been issued.
func (se *ShardedEngine) Sent() uint64 { return se.sent }

// Send schedules fn on shard dst at src's now + delayPs. It is the only
// legal cross-shard interaction: fn runs on dst's goroutine and must
// touch only dst-owned state. The delay must be at least the lookahead
// window — that is the conservative contract that keeps parallel epochs
// safe — so a shorter cross-shard latency in the model requires
// rebuilding the engine with a tighter lookahead, not a shorter Send.
//
// Send may be called from within a shard's executing event (the normal
// case) or from setup code before the first RunUntil.
func (se *ShardedEngine) Send(src, dst int, delayPs int64, fn func()) {
	if src < 0 || src >= len(se.shards) || dst < 0 || dst >= len(se.shards) {
		panic(fmt.Sprintf("sim: Send %d -> %d outside [0,%d)", src, dst, len(se.shards)))
	}
	if delayPs < se.lookahead {
		panic(fmt.Sprintf("sim: Send %d -> %d with delay %dps < lookahead %dps breaks conservative synchronization",
			src, dst, delayPs, se.lookahead))
	}
	se.outbox[src] = append(se.outbox[src], xmsg{
		at: se.shards[src].Now() + delayPs, src: int32(src), dst: int32(dst), fn: fn,
	})
}

// deliver drains every outbox into the destination heaps in sorted
// (deliverPs, sender shard, sender emission order) order — the
// deterministic merge that makes destination-side tie-breaking (heap
// seq assignment) independent of which worker finished first.
func (se *ShardedEngine) deliver() {
	se.merged = se.merged[:0]
	for src := range se.outbox {
		se.merged = append(se.merged, se.outbox[src]...)
		se.outbox[src] = se.outbox[src][:0]
	}
	if len(se.merged) == 0 {
		return
	}
	se.sent += uint64(len(se.merged))
	// Stable sort preserves per-sender emission order for equal
	// (at, src) keys.
	sort.SliceStable(se.merged, func(i, j int) bool {
		if se.merged[i].at != se.merged[j].at {
			return se.merged[i].at < se.merged[j].at
		}
		return se.merged[i].src < se.merged[j].src
	})
	for i := range se.merged {
		m := &se.merged[i]
		se.shards[m.dst].At(m.at, m.fn)
		m.fn = nil // release the closure once handed to the heap
	}
}

// RunUntil advances the whole sharded simulation to deadline, executing
// conservative-lookahead epochs with up to Workers shards in parallel.
// It returns the number of events processed. After it returns, every
// shard's clock reads exactly deadline (mirroring Engine.RunUntil), so
// measurement windows close simultaneously on all shards.
func (se *ShardedEngine) RunUntil(deadline int64) uint64 {
	starts := make([]int64, len(se.shards))
	for i, sh := range se.shards {
		starts[i] = sh.Now()
	}
	total := uint64(0)
	for {
		se.deliver()
		minNext, any := int64(0), false
		for _, sh := range se.shards {
			if t, ok := sh.NextAt(); ok && (!any || t < minNext) {
				minNext, any = t, true
			}
		}
		if !any || minNext > deadline {
			break
		}
		horizon := deadline + 1
		if h := minNext + se.lookahead; h < horizon {
			horizon = h
		}
		total += se.runEpoch(horizon)
	}
	for i, sh := range se.shards {
		sh.advanceTo(deadline)
		if sh.Tracer != nil && deadline > starts[i] {
			sh.Tracer.Span(sh.Tracer.Track("engine"), "run", starts[i], deadline-starts[i])
		}
	}
	return total
}

// Run drains every shard to quiescence (no queued events, no buffered
// messages), honoring the same runaway cap as Engine.Run.
func (se *ShardedEngine) Run() uint64 {
	const maxEvents = 500_000_000
	total := uint64(0)
	for {
		se.deliver()
		minNext, any := int64(0), false
		for _, sh := range se.shards {
			if t, ok := sh.NextAt(); ok && (!any || t < minNext) {
				minNext, any = t, true
			}
		}
		if !any {
			return total
		}
		total += se.runEpoch(minNext + se.lookahead)
		if total > maxEvents {
			panic(fmt.Sprintf("sim: runaway sharded simulation (> %d events)", uint64(maxEvents)))
		}
	}
}

// runEpoch executes one lookahead window on every shard with queued
// work before the horizon. Workers=1 runs shards in index order — the
// serial reference schedule; parallel execution is indistinguishable
// from it because shards share no state and the barrier merge is
// order-insensitive.
func (se *ShardedEngine) runEpoch(horizon int64) uint64 {
	se.epochs++
	workers := se.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		n := uint64(0)
		for _, sh := range se.shards {
			n += sh.runEpoch(horizon)
		}
		return n
	}
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		se.counts[i] = 0
		if t, ok := sh.NextAt(); !ok || t >= horizon {
			continue // idle this epoch; skip the goroutine
		}
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			se.counts[i] = sh.runEpoch(horizon)
		}(i, sh)
	}
	wg.Wait()
	n := uint64(0)
	for _, c := range se.counts {
		n += c
	}
	return n
}
