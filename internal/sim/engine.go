// Package sim provides the discrete-event simulation kernel the system
// models run on (network, server, co-runners), plus the calibration
// parameters that map the paper's testbed components onto model costs
// (params.go).
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/telemetry"
)

// event is a scheduled callback. Events are pooled on a free list so
// steady-state scheduling allocates nothing; gen disambiguates
// incarnations of a recycled event so a stale Cancel handle is a no-op
// rather than killing whatever reused the slot.
type event struct {
	at    int64 // picoseconds
	seq   uint64
	fn    func()
	gen   uint64
	index int // heap position; -1 once popped or cancelled
}

// eventHeap orders events by time, then insertion order for determinism.
// Swap/Push/Pop keep each event's index current so cancellation can
// remove it in O(log n) without a tombstone scan.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler with picosecond
// resolution.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	free   []*event
	ran    uint64

	// Tracer, when set, records one coarse span per RunUntil window on
	// the "engine" track. The per-event paths (At/Step/Cancel) are never
	// instrumented — they are the 0-alloc hot core of the kernel.
	Tracer *telemetry.Tracer
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in picoseconds.
func (e *Engine) Now() int64 { return e.now }

// Processed returns how many events have run.
func (e *Engine) Processed() uint64 { return e.ran }

// Cancel is a handle returned by At/After; Cancel removes the event
// from the queue (idempotent, allocation-free). The zero value is a
// no-op, so a Cancel field needs no nil guard before use.
type Cancel struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Calling it after the event has
// run, been cancelled, or been recycled into a new event does nothing.
func (c Cancel) Cancel() {
	if c.ev == nil || c.ev.gen != c.gen {
		return
	}
	heap.Remove(&c.e.events, c.ev.index)
	c.e.recycle(c.ev)
}

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle retires an event: the generation bump invalidates outstanding
// Cancel handles, and dropping fn releases the callback's captures.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn at absolute time t (>= Now, else it runs at Now).
func (e *Engine) At(t int64, fn func()) Cancel {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.events, ev)
	return Cancel{e: e, ev: ev, gen: ev.gen}
}

// After schedules fn delta picoseconds from now.
func (e *Engine) After(delta int64, fn func()) Cancel {
	return e.At(e.now+delta, fn)
}

// Step runs the next event; it reports whether one was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	at, fn := ev.at, ev.fn
	e.recycle(ev) // before fn: the callback may schedule into this slot
	e.now = at
	e.ran++
	fn()
	return true
}

// RunUntil processes events until the queue is empty or time exceeds
// deadline. It returns the number of events processed.
func (e *Engine) RunUntil(deadline int64) uint64 {
	start := e.now
	n := uint64(0)
	for len(e.events) > 0 && e.events[0].at <= deadline {
		if e.Step() {
			n++
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	if e.Tracer != nil && deadline > start {
		e.Tracer.Span(e.Tracer.Track("engine"), "run", start, deadline-start)
	}
	return n
}

// Run processes events until none remain. It guards against runaway
// simulations with a generous event cap.
func (e *Engine) Run() uint64 {
	const maxEvents = 500_000_000
	n := uint64(0)
	for e.Step() {
		n++
		if n > maxEvents {
			panic(fmt.Sprintf("sim: runaway simulation (> %d events)", uint64(maxEvents)))
		}
	}
	return n
}

// Pending returns the number of live queued events. Cancelled events
// are removed eagerly, so this is the heap size: O(1).
func (e *Engine) Pending() int { return len(e.events) }

// NextAt returns the time of the earliest queued event, if any. The
// sharded coordinator uses it to compute the conservative epoch horizon.
func (e *Engine) NextAt() (int64, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// runEpoch processes events strictly before horizon and reports how
// many ran. Unlike RunUntil it neither advances the clock to the
// horizon nor records a tracer span: the sharded coordinator calls it
// once per lookahead epoch, and only the final deadline should move
// idle clocks or appear on the trace. It shares Step's 0-alloc path.
func (e *Engine) runEpoch(horizon int64) uint64 {
	n := uint64(0)
	for len(e.events) > 0 && e.events[0].at < horizon {
		e.Step()
		n++
	}
	return n
}

// advanceTo moves the clock forward to t if it lags behind (never
// backward). The sharded coordinator applies the run deadline to every
// shard after the last epoch, mirroring RunUntil's trailing-edge clock
// advance so measurement windows close at the same instant everywhere.
func (e *Engine) advanceTo(t int64) {
	if t > e.now {
		e.now = t
	}
}

// Time helpers.
const (
	Ns = int64(1_000)
	Us = int64(1_000_000)
	Ms = int64(1_000_000_000)
	S  = int64(1_000_000_000_000)
)
