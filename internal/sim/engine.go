// Package sim provides the discrete-event simulation kernel the system
// models run on (network, server, co-runners), plus the calibration
// parameters that map the paper's testbed components onto model costs
// (params.go).
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at   int64 // picoseconds
	seq  uint64
	fn   func()
	dead *bool
}

// eventHeap orders events by time, then insertion order for determinism.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler with picosecond
// resolution.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	ran    uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in picoseconds.
func (e *Engine) Now() int64 { return e.now }

// Processed returns how many events have run.
func (e *Engine) Processed() uint64 { return e.ran }

// Cancel is returned by At/After; calling it prevents the event from
// firing (idempotent).
type Cancel func()

// At schedules fn at absolute time t (>= Now, else it runs at Now).
func (e *Engine) At(t int64, fn func()) Cancel {
	if t < e.now {
		t = e.now
	}
	dead := new(bool)
	ev := &event{at: t, seq: e.seq, fn: fn, dead: dead}
	e.seq++
	heap.Push(&e.events, ev)
	return func() { *dead = true }
}

// After schedules fn delta picoseconds from now.
func (e *Engine) After(delta int64, fn func()) Cancel {
	return e.At(e.now+delta, fn)
}

// Step runs the next event; it reports whether one was run.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if *ev.dead {
			continue
		}
		e.now = ev.at
		e.ran++
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes events until the queue is empty or time exceeds
// deadline. It returns the number of events processed.
func (e *Engine) RunUntil(deadline int64) uint64 {
	n := uint64(0)
	for e.events.Len() > 0 {
		next := e.peekTime()
		if next > deadline {
			break
		}
		if e.Step() {
			n++
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// Run processes events until none remain. It guards against runaway
// simulations with a generous event cap.
func (e *Engine) Run() uint64 {
	const cap = 500_000_000
	n := uint64(0)
	for e.Step() {
		n++
		if n > cap {
			panic(fmt.Sprintf("sim: runaway simulation (> %d events)", uint64(cap)))
		}
	}
	return n
}

func (e *Engine) peekTime() int64 {
	for e.events.Len() > 0 {
		if *(e.events[0].dead) {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].at
	}
	return 1<<63 - 1
}

// Pending returns the number of live queued events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !*ev.dead {
			n++
		}
	}
	return n
}

// Time helpers.
const (
	Ns = int64(1_000)
	Us = int64(1_000_000)
	Ms = int64(1_000_000_000)
	S  = int64(1_000_000_000_000)
)
