package power

import (
	"math"
	"testing"
)

func TestPaperTotals(t *testing.T) {
	m := PaperModel()
	// §VII-D: 4.78W dynamic at full DDR utilization.
	if got := m.DynamicAtFullWatts(); math.Abs(got-4.78) > 0.01 {
		t.Fatalf("dynamic at full = %.2fW, want 4.78W", got)
	}
	// §VII-D: TLS offload consumes ~21.8% of FPGA resources.
	if got := m.TLSOffloadFPGAPercent(); math.Abs(got-21.8) > 0.1 {
		t.Fatalf("TLS FPGA share = %.1f%%, want 21.8%%", got)
	}
}

func TestAddedPowerNearPaperAverage(t *testing.T) {
	m := PaperModel()
	// The paper observes <30% channel utilization and ~0.92W average
	// added power; the model must land near that at 30%.
	got := m.AddedPowerAt(0.30)
	if math.Abs(got-0.92) > 0.05 {
		t.Fatalf("added power at 30%% = %.2fW, want ~0.92W", got)
	}
}

func TestPowerMonotonicInUtilization(t *testing.T) {
	m := PaperModel()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		p := m.PowerAt(u)
		if p <= prev {
			t.Fatalf("power not increasing at u=%.1f", u)
		}
		prev = p
	}
	// Clamping.
	if m.PowerAt(-1) != m.PowerAt(0) || m.PowerAt(2) != m.PowerAt(1) {
		t.Fatal("utilization not clamped")
	}
	if m.AddedPowerAt(-1) != m.AddedPowerAt(0) || m.AddedPowerAt(2) != m.AddedPowerAt(1) {
		t.Fatal("added-power utilization not clamped")
	}
}

func TestPowerAtFullIncludesStatic(t *testing.T) {
	m := PaperModel()
	if m.PowerAt(1) <= m.DynamicAtFullWatts() {
		t.Fatal("full power should include static")
	}
	if m.PowerAt(0) != m.StaticWatts {
		t.Fatal("idle power should equal static")
	}
}
