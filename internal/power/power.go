// Package power is the analytic area/power model of §VII-D: the paper
// reports 4.78W of dynamic power for the SmartDIMM FPGA prototype at
// full DDR channel utilization, ~0.92W average across benchmarks at the
// observed <30% channel utilization, and ~21.8% FPGA resource usage for
// the TLS offload. The model reproduces the utilization relationship
// (activity-based dynamic power) and itemizes the buffer-device blocks.
package power

// Block is one buffer-device component's contribution.
type Block struct {
	Name string
	// DynamicWattsAtFull is the block's dynamic power at 100% channel
	// utilization.
	DynamicWattsAtFull float64
	// FPGAPercent is the share of FPGA resources (LUT-equivalent).
	FPGAPercent float64
}

// Model is the SmartDIMM buffer-device power/area model.
type Model struct {
	Blocks []Block
	// StaticWatts is utilization-independent (clocking, PHYs idle).
	StaticWatts float64
}

// PaperModel itemizes the §IV-C blocks against the §VII-D totals: the
// block split is our estimate (the paper reports only totals), chosen so
// the totals match: sum of dynamic = 4.78W, TLS-offload blocks = 21.8%
// of FPGA resources.
func PaperModel() Model {
	return Model{
		StaticWatts: 0.35,
		Blocks: []Block{
			{Name: "DDR PHY + slot decoder", DynamicWattsAtFull: 1.30, FPGAPercent: 6.0},
			{Name: "MIG PHY", DynamicWattsAtFull: 1.10, FPGAPercent: 5.5},
			{Name: "Arbiter + bank table", DynamicWattsAtFull: 0.28, FPGAPercent: 1.5},
			{Name: "Translation table (cuckoo + CAM)", DynamicWattsAtFull: 0.30, FPGAPercent: 2.0},
			{Name: "Scratchpad SRAM (8MB)", DynamicWattsAtFull: 0.55, FPGAPercent: 3.0},
			{Name: "Config memory (8MB)", DynamicWattsAtFull: 0.25, FPGAPercent: 2.0},
			{Name: "TLS DSA (AES-GCM pipeline)", DynamicWattsAtFull: 0.75, FPGAPercent: 9.0},
			{Name: "GF multiplier + GHASH", DynamicWattsAtFull: 0.25, FPGAPercent: 4.3},
		},
	}
}

// DynamicAtFullWatts returns total dynamic power at 100% utilization.
func (m Model) DynamicAtFullWatts() float64 {
	sum := 0.0
	for _, b := range m.Blocks {
		sum += b.DynamicWattsAtFull
	}
	return sum
}

// PowerAt returns total power at the given DDR channel utilization
// (0..1): static plus activity-proportional dynamic power.
func (m Model) PowerAt(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return m.StaticWatts + m.DynamicAtFullWatts()*utilization
}

// AddedPowerAt returns the power SmartDIMM adds over a plain AxDIMM at
// the given utilization (static overhead excluded — the AxDIMM baseline
// already pays its PHYs' idle power). The paper quotes ~0.92W averaged
// across benchmarks at <30% channel utilization.
func (m Model) AddedPowerAt(utilization float64) float64 {
	// PHY blocks exist on the plain AxDIMM too; SmartDIMM's additions
	// are the arbiter, tables, scratchpad, config memory, and DSAs —
	// plus a small static clock-tree overhead for the added logic.
	const addedStatic = 0.2
	added := 0.0
	for _, b := range m.Blocks {
		switch b.Name {
		case "DDR PHY + slot decoder", "MIG PHY":
			continue
		}
		added += b.DynamicWattsAtFull
	}
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return addedStatic + added*utilization
}

// TLSOffloadFPGAPercent returns the FPGA share of the TLS offload path
// (everything except the PHYs the AxDIMM already has).
func (m Model) TLSOffloadFPGAPercent() float64 {
	sum := 0.0
	for _, b := range m.Blocks {
		switch b.Name {
		case "DDR PHY + slot decoder", "MIG PHY":
			continue
		}
		sum += b.FPGAPercent
	}
	return sum
}
