package wrkgen

import (
	"runtime"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
)

func arrivalCfg() ArrivalConfig {
	return ArrivalConfig{
		Streams:     6,
		Connections: 48,
		BaseRPS:     200000,
		HorizonPs:   20 * sim.Ms,
		Seed:        7,
		DiurnalAmp:  0.5, DiurnalPeriodPs: 20 * sim.Ms,
		Flash:        []FlashCrowd{{StartPs: 8 * sim.Ms, EndPs: 12 * sim.Ms, Mult: 3}},
		BurstEveryPs: 2 * sim.Ms, BurstLen: 16, BurstGapPs: sim.Us,
	}
}

// TestArrivalTraceDeterministic is the arrival determinism gate: the
// same seed must yield byte-identical traces whether streams generate
// serially, on a 2-worker pool, or on a GOMAXPROCS-wide pool under
// GOMAXPROCS=1 and 2 — possible only because every bit of arrival-
// process state is per-stream, never package-shared.
func TestArrivalTraceDeterministic(t *testing.T) {
	cfg := arrivalCfg()
	serial, err := GenArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Arrivals) == 0 {
		t.Fatal("empty trace")
	}
	ref := serial.String()

	pooled, err := GenArrivalsPooled(cfg, runner.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := pooled.String(); got != ref {
		t.Fatalf("pooled trace differs from serial (%d vs %d bytes)", len(got), len(ref))
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		tr, err := GenArrivalsPooled(cfg, runner.New(0))
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.String(); got != ref {
			t.Fatalf("GOMAXPROCS=%d trace differs from serial reference", procs)
		}
	}
}

// TestArrivalShapes sanity-checks the rate shaping: the flash-crowd
// window must hold measurably more arrivals than an equal-width quiet
// window, and every arrival must respect the horizon.
func TestArrivalShapes(t *testing.T) {
	cfg := arrivalCfg()
	cfg.BurstEveryPs = 0 // isolate the flash crowd
	cfg.DiurnalAmp = 0   // (the ramp would boost the quiet window)
	tr, err := GenArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flash, quiet int
	for _, a := range tr.Arrivals {
		if a.AtPs < 0 || a.AtPs >= cfg.HorizonPs {
			t.Fatalf("arrival at %d outside horizon %d", a.AtPs, cfg.HorizonPs)
		}
		if a.Conn < 0 || a.Conn >= cfg.Connections {
			t.Fatalf("arrival conn %d outside pool %d", a.Conn, cfg.Connections)
		}
		switch {
		case a.AtPs >= 8*sim.Ms && a.AtPs < 12*sim.Ms:
			flash++
		case a.AtPs >= 2*sim.Ms && a.AtPs < 6*sim.Ms:
			quiet++
		}
	}
	if flash < 2*quiet {
		t.Fatalf("flash window %d arrivals vs quiet %d: expected ~3x crowd", flash, quiet)
	}
	for i := 1; i < len(tr.Arrivals); i++ {
		if tr.Arrivals[i].AtPs < tr.Arrivals[i-1].AtPs {
			t.Fatalf("trace not time-ordered at %d", i)
		}
	}
}

// TestOpenLoopReplay drives the replayer against a trivial target and
// checks open-loop semantics: every arrival is issued at its trace
// time even while earlier requests are still in flight.
func TestOpenLoopReplay(t *testing.T) {
	eng := sim.NewEngine()
	cfg := ArrivalConfig{Streams: 2, Connections: 4, BaseRPS: 1e6, HorizonPs: sim.Ms, Seed: 3}
	tr, err := GenArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Target holds every request 50us: far longer than the ~1us mean
	// arrival gap, so a closed loop would throttle to ~conns/50us.
	var served int
	tgt := targetFunc(func(connID int, done func()) {
		served++
		eng.After(50*sim.Us, done)
	})
	g := NewOpenLoop(eng, tgt, tr, nil)
	g.Start()
	eng.RunUntil(2 * sim.Ms)
	if g.Issued != uint64(len(tr.Arrivals)) {
		t.Fatalf("issued %d of %d arrivals", g.Issued, len(tr.Arrivals))
	}
	if g.Completed != g.Issued {
		t.Fatalf("completed %d of %d", g.Completed, g.Issued)
	}
	if g.PeakIn < 10 {
		t.Fatalf("peak in-flight %d: open loop should overlap requests", g.PeakIn)
	}
}

type targetFunc func(connID int, done func())

func (f targetFunc) Submit(connID int, done func()) { f(connID, done) }
