// Open-loop trace-replay arrivals: instead of the closed loop (each
// connection re-issuing on completion), traffic is a pre-generated
// arrival trace replayed against the target at fixed simulated times,
// whether or not earlier requests have completed — the traffic model
// under which queues actually build and tail latency means something.
//
// Generation is a non-homogeneous Poisson process per stream, shaped by
// a diurnal ramp, flash-crowd windows, and burst storms, thinned
// against the peak rate (Lewis–Shedler). ALL arrival-process state —
// the RNG, the thinning clock, the burst schedule, the connection
// cursor — lives in the per-stream generator, never in package or
// shared structs: stream k's sub-trace is a pure function of
// (config, k), so streams generate independently on a runner pool and
// the merged trace is byte-identical serial vs pooled at any
// GOMAXPROCS (the determinism gate in arrivals_test.go).
package wrkgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Arrival is one open-loop request arrival.
type Arrival struct {
	AtPs int64
	Conn int
}

// FlashCrowd multiplies the arrival rate by Mult inside [StartPs, EndPs).
type FlashCrowd struct {
	StartPs, EndPs int64
	Mult           float64
}

// ArrivalConfig shapes the open-loop arrival trace.
type ArrivalConfig struct {
	// Streams is the number of independent client populations; each owns
	// its private RNG and clock state. Zero selects 4.
	Streams int
	// Connections is the persistent-connection pool the arrivals are
	// spread over (stream k cycles through its own disjoint slice).
	Connections int
	// BaseRPS is the aggregate baseline arrival rate (requests/second of
	// simulated time) before shaping.
	BaseRPS float64
	// HorizonPs bounds the trace: no arrival lands at or after it.
	HorizonPs int64
	Seed      int64

	// DiurnalAmp in [0,1) adds a sinusoidal ramp: rate(t) scales by
	// 1 + DiurnalAmp*sin(2*pi*t/DiurnalPeriodPs). Zero amp disables it.
	DiurnalAmp      float64
	DiurnalPeriodPs int64
	// Flash multiplies the rate inside each window (flash crowds).
	Flash []FlashCrowd
	// BurstEveryPs, when > 0, superimposes burst storms: per stream, a
	// Poisson process with this mean interval fires BurstLen
	// back-to-back arrivals spaced BurstGapPs apart.
	BurstEveryPs int64
	BurstLen     int
	BurstGapPs   int64
}

func (c *ArrivalConfig) defaults() error {
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.Connections <= 0 {
		return fmt.Errorf("wrkgen: arrivals need connections")
	}
	if c.BaseRPS <= 0 {
		return fmt.Errorf("wrkgen: arrivals need a base rate")
	}
	if c.HorizonPs <= 0 {
		return fmt.Errorf("wrkgen: arrivals need a horizon")
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
		return fmt.Errorf("wrkgen: diurnal amplitude %g outside [0,1)", c.DiurnalAmp)
	}
	if c.DiurnalAmp > 0 && c.DiurnalPeriodPs <= 0 {
		c.DiurnalPeriodPs = c.HorizonPs
	}
	for _, f := range c.Flash {
		if f.Mult <= 0 || f.EndPs <= f.StartPs {
			return fmt.Errorf("wrkgen: bad flash crowd %+v", f)
		}
	}
	if c.BurstEveryPs > 0 {
		if c.BurstLen <= 0 {
			c.BurstLen = 8
		}
		if c.BurstGapPs <= 0 {
			c.BurstGapPs = 2 * sim.Us
		}
	}
	return nil
}

// rateMult is the shaping factor at simulated time t (diurnal * flash).
func (c *ArrivalConfig) rateMult(t int64) float64 {
	m := 1.0
	if c.DiurnalAmp > 0 {
		m *= 1 + c.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(c.DiurnalPeriodPs))
	}
	for _, f := range c.Flash {
		if t >= f.StartPs && t < f.EndPs {
			m *= f.Mult
		}
	}
	return m
}

// peakMult bounds rateMult over the horizon, for thinning.
func (c *ArrivalConfig) peakMult() float64 {
	m := 1.0
	if c.DiurnalAmp > 0 {
		m *= 1 + c.DiurnalAmp
	}
	fm := 1.0
	for _, f := range c.Flash {
		if f.Mult > fm {
			fm = f.Mult
		}
	}
	return m * fm
}

// Trace is a merged, time-ordered arrival trace.
type Trace struct {
	Arrivals []Arrival
}

// String renders the trace one "atps conn" line per arrival — the
// byte-compared artifact of the arrival determinism gate.
func (t Trace) String() string {
	var b strings.Builder
	for _, a := range t.Arrivals {
		fmt.Fprintf(&b, "%d %d\n", a.AtPs, a.Conn)
	}
	return b.String()
}

// genStream generates stream k's sub-trace. Everything it touches is
// local: the RNG is seeded from (Seed, k) alone, and the stream's
// connections are the k-th residue class of the pool.
func genStream(cfg ArrivalConfig, k int) []Arrival {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*0x9E3779B9))
	lamMax := cfg.BaseRPS / float64(cfg.Streams) * cfg.peakMult() // arrivals/s
	var out []Arrival
	cursor := 0
	conn := func() int {
		c := (k + cursor*cfg.Streams) % cfg.Connections
		cursor++
		return c
	}
	// Thinned Poisson baseline.
	t := int64(0)
	for {
		gap := rng.ExpFloat64() / lamMax * 1e12 // seconds -> ps
		if gap > float64(cfg.HorizonPs) {
			break
		}
		t += int64(gap) + 1
		if t >= cfg.HorizonPs {
			break
		}
		if rng.Float64()*cfg.peakMult() < cfg.rateMult(t) {
			out = append(out, Arrival{AtPs: t, Conn: conn()})
		}
	}
	// Burst storms ride on top as a separate compound process.
	if cfg.BurstEveryPs > 0 {
		bt := int64(0)
		for {
			gap := rng.ExpFloat64() * float64(cfg.BurstEveryPs)
			if gap > float64(cfg.HorizonPs) {
				break
			}
			bt += int64(gap) + 1
			if bt >= cfg.HorizonPs {
				break
			}
			for i := 0; i < cfg.BurstLen; i++ {
				at := bt + int64(i)*cfg.BurstGapPs
				if at >= cfg.HorizonPs {
					break
				}
				out = append(out, Arrival{AtPs: at, Conn: conn()})
			}
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].AtPs < out[b].AtPs })
	return out
}

// GenArrivals generates the full trace serially.
func GenArrivals(cfg ArrivalConfig) (Trace, error) {
	return GenArrivalsPooled(cfg, nil)
}

// GenArrivalsPooled generates each stream's sub-trace as an independent
// job on the pool (nil = serial) and merges them deterministically:
// results come back in stream order, and the merge is a stable sort by
// time with stream order breaking ties — identical bytes at any worker
// count.
func GenArrivalsPooled(cfg ArrivalConfig, pool *runner.Pool) (Trace, error) {
	if err := cfg.defaults(); err != nil {
		return Trace{}, err
	}
	idx := make([]int, cfg.Streams)
	for i := range idx {
		idx[i] = i
	}
	subs, err := runner.Map(context.Background(), pool, idx,
		func(_ context.Context, k int, _ int) ([]Arrival, error) {
			return genStream(cfg, k), nil
		})
	if err != nil {
		return Trace{}, err
	}
	var all []Arrival
	for _, s := range subs {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].AtPs < all[b].AtPs })
	return Trace{Arrivals: all}, nil
}

// OpenLoop replays an arrival trace against a Target: requests are
// submitted at their trace times regardless of completion, so queueing
// delay is visible in the latency record instead of throttling the
// offered load (the closed-loop Generator's coordinated omission).
type OpenLoop struct {
	eng    *sim.Engine
	target Target
	trace  Trace
	next   int

	Issued    uint64
	Completed uint64
	InFlight  int
	PeakIn    int
	// Latency is the end-to-end record over the measured window
	// (bounded mode); Window, when non-nil, additionally receives every
	// completion — warmup included — for the autoscaler's rolling tail.
	Latency stats.Histogram
	Window  *stats.Window

	measuring   bool
	measureFrom int64
}

// NewOpenLoop builds a replayer; Start schedules the first arrival.
func NewOpenLoop(eng *sim.Engine, target Target, trace Trace, win *stats.Window) *OpenLoop {
	g := &OpenLoop{eng: eng, target: target, trace: trace, Window: win}
	g.Latency.SetBounded()
	return g
}

// Start arms the trace replay.
func (g *OpenLoop) Start() { g.scheduleNext() }

func (g *OpenLoop) scheduleNext() {
	if g.next >= len(g.trace.Arrivals) {
		return
	}
	a := g.trace.Arrivals[g.next]
	g.next++
	at := a.AtPs
	if now := g.eng.Now(); at < now {
		at = now
	}
	g.eng.At(at, func() {
		g.submit(a)
		g.scheduleNext()
	})
}

func (g *OpenLoop) submit(a Arrival) {
	g.Issued++
	g.InFlight++
	if g.InFlight > g.PeakIn {
		g.PeakIn = g.InFlight
	}
	start := g.eng.Now()
	g.target.Submit(a.Conn, func() {
		g.InFlight--
		g.Completed++
		lat := float64(g.eng.Now() - start)
		if g.measuring {
			g.Latency.Observe(lat)
		}
		if g.Window != nil {
			g.Window.Observe(lat)
		}
	})
}

// BeginMeasurement zeroes the windowed stats; call after warmup.
func (g *OpenLoop) BeginMeasurement() {
	g.measuring = true
	g.measureFrom = g.eng.Now()
	g.Completed = 0
	g.Latency.Reset()
}

// RPS returns completed requests per second since BeginMeasurement.
func (g *OpenLoop) RPS() float64 {
	elapsed := g.eng.Now() - g.measureFrom
	if elapsed <= 0 {
		return 0
	}
	return float64(g.Completed) / (float64(elapsed) * 1e-12)
}
