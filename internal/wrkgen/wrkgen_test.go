package wrkgen

import (
	"testing"

	"repro/internal/sim"
)

// fixedServer completes every request after a constant service time,
// one at a time (no concurrency limit).
type fixedServer struct {
	eng       *sim.Engine
	servicePs int64
	submitted int
}

func (f *fixedServer) Submit(connID int, done func()) {
	f.submitted++
	f.eng.After(f.servicePs, done)
}

func TestClosedLoopThroughput(t *testing.T) {
	eng := sim.NewEngine()
	srv := &fixedServer{eng: eng, servicePs: 100 * sim.Us}
	g := New(eng, srv, Config{Connections: 4})
	g.Start()
	eng.RunUntil(1 * sim.Ms)
	g.BeginMeasurement()
	eng.RunUntil(11 * sim.Ms)
	// 4 connections, 100us service, no think time: 40 req/ms = 40k RPS.
	rps := g.RPS()
	if rps < 35_000 || rps > 45_000 {
		t.Fatalf("RPS = %.0f, want ~40000", rps)
	}
	if g.Completed == 0 {
		t.Fatal("no completions")
	}
	// Latency ~ service time.
	mean := g.Latency.Mean()
	if mean < 90e-6 || mean > 150e-6 {
		t.Fatalf("mean latency %.1fus, want ~100us", mean*1e6)
	}
}

func TestThinkTimeReducesRate(t *testing.T) {
	run := func(think int64) float64 {
		eng := sim.NewEngine()
		srv := &fixedServer{eng: eng, servicePs: 50 * sim.Us}
		g := New(eng, srv, Config{Connections: 2, ThinkPs: think})
		g.Start()
		g.BeginMeasurement()
		eng.RunUntil(10 * sim.Ms)
		return g.RPS()
	}
	if noThink, withThink := run(0), run(200*sim.Us); withThink >= noThink {
		t.Fatalf("think time did not reduce rate: %.0f vs %.0f", withThink, noThink)
	}
}

func TestMaxRequestsCap(t *testing.T) {
	eng := sim.NewEngine()
	srv := &fixedServer{eng: eng, servicePs: sim.Us}
	g := New(eng, srv, Config{Connections: 2, MaxRequests: 10})
	g.Start()
	g.BeginMeasurement()
	eng.Run()
	if srv.submitted != 10 {
		t.Fatalf("submitted %d, want capped 10", srv.submitted)
	}
}

func TestRPSBeforeMeasurement(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, &fixedServer{eng: eng, servicePs: sim.Us}, Config{})
	if g.RPS() != 0 {
		t.Fatal("RPS before any time elapsed should be 0")
	}
}
