// Package wrkgen models the wrk HTTP load generator of the paper's
// methodology (§VI): a fixed set of persistent connections issuing
// requests closed-loop (each connection sends its next request as soon
// as the previous response completes, after a configurable think time),
// recording request latency and completion counts.
package wrkgen

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Target is the server-side entry point: Submit starts processing a
// request from the given connection and must invoke done exactly once
// when the response has fully left the server.
type Target interface {
	Submit(connID int, done func())
}

// Config tunes the generator.
type Config struct {
	Connections int
	// ThinkPs is the client-side delay between a response and the next
	// request (wrk uses ~0; the network RTT is charged here too).
	ThinkPs int64
	// ThinkPsFor, when non-nil, overrides ThinkPs per connection —
	// skewed workloads (e.g. Zipf request-rate distributions for the
	// fleet scaling experiment) give hot connections short think times
	// and cold connections long ones.
	ThinkPsFor func(connID int) int64
	// MaxRequests stops issuing new requests after this many (0 = no
	// cap; the run ends at the engine deadline).
	MaxRequests uint64
}

// Generator drives a Target over an engine.
type Generator struct {
	cfg    Config
	eng    *sim.Engine
	target Target

	issued    uint64
	Completed uint64
	Latency   stats.Histogram
	// measuring gates stats so warmup requests don't pollute them.
	measuring   bool
	measureFrom int64
}

// New builds a generator; Start begins the closed loop.
func New(eng *sim.Engine, target Target, cfg Config) *Generator {
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	g := &Generator{cfg: cfg, eng: eng, target: target}
	// The latency record grows with every completed request; bounded
	// mode keeps a long measurement window at fleet RPS in fixed memory.
	g.Latency.SetBounded()
	return g
}

// Start issues the first request on every connection.
func (g *Generator) Start() {
	for c := 0; c < g.cfg.Connections; c++ {
		g.issue(c)
	}
}

// BeginMeasurement zeroes the completion stats; call after warmup.
func (g *Generator) BeginMeasurement() {
	g.measuring = true
	g.measureFrom = g.eng.Now()
	g.Completed = 0
	g.Latency.Reset()
}

// RPS returns completed requests per second since BeginMeasurement.
func (g *Generator) RPS() float64 {
	elapsed := g.eng.Now() - g.measureFrom
	if elapsed <= 0 {
		return 0
	}
	return float64(g.Completed) / (float64(elapsed) * 1e-12)
}

func (g *Generator) issue(connID int) {
	if g.cfg.MaxRequests > 0 && g.issued >= g.cfg.MaxRequests {
		return
	}
	g.issued++
	start := g.eng.Now()
	g.target.Submit(connID, func() {
		if g.measuring {
			g.Completed++
			g.Latency.Observe(float64(g.eng.Now()-start) * 1e-12)
		}
		think := g.cfg.ThinkPs
		if g.cfg.ThinkPsFor != nil {
			think = g.cfg.ThinkPsFor(connID)
		}
		if think > 0 {
			g.eng.After(think, func() { g.issue(connID) })
		} else {
			g.eng.At(g.eng.Now(), func() { g.issue(connID) })
		}
	})
}
