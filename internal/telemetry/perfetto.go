// Chrome/Perfetto trace_event export. The writer is deliberately
// hand-rolled instead of encoding/json: field order, number formatting,
// and line layout are then fixed by this file alone, which is what the
// byte-identical-trace gate in ci.sh leans on. Timestamps convert from
// simulated picoseconds to the format's microseconds as the exact
// decimal "%d.%06d", so no float rounding can differ between runs.
//
// The output loads in ui.perfetto.dev and chrome://tracing: one process
// ("pid" 1), one named thread track per Tracer track, spans as phase
// "X", instants as "i", counters as "C", and request lifecycles as
// async "b"/"e" pairs.

package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// WritePerfetto writes the whole trace as Perfetto trace_event JSON.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	_, err := w.Write(t.PerfettoJSON())
	return err
}

// PerfettoJSON renders the trace; one event per line for diffability.
func (t *Tracer) PerfettoJSON() []byte {
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"smartdimm-sim"}}`)
	for i, name := range t.Tracks() {
		tid := i + 1
		fmt.Fprintf(&b, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":", tid)
		quote(&b, name)
		b.WriteString("}}")
		fmt.Fprintf(&b, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}", tid, tid)
	}
	for _, e := range t.Events() {
		b.WriteString(",\n{\"name\":")
		quote(&b, e.Name)
		tid := int(e.Track) + 1
		switch e.Kind {
		case KindSpan:
			fmt.Fprintf(&b, ",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
			b.WriteString(",\"dur\":")
			writeTs(&b, e.DurPs)
		case KindInstant:
			fmt.Fprintf(&b, ",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
		case KindCounter:
			fmt.Fprintf(&b, ",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
			b.WriteString(",\"args\":{\"value\":")
			b.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
			b.WriteString("}")
		case KindAsyncBegin:
			fmt.Fprintf(&b, ",\"cat\":\"req\",\"ph\":\"b\",\"id\":\"0x%x\",\"pid\":1,\"tid\":%d,\"ts\":", e.ID, tid)
			writeTs(&b, e.AtPs)
		case KindAsyncEnd:
			fmt.Fprintf(&b, ",\"cat\":\"req\",\"ph\":\"e\",\"id\":\"0x%x\",\"pid\":1,\"tid\":%d,\"ts\":", e.ID, tid)
			writeTs(&b, e.AtPs)
		}
		b.WriteString("}")
	}
	b.WriteString("\n]}\n")
	return b.Bytes()
}

// writeTs renders picoseconds as trace_event microseconds with exactly
// six fractional digits (picosecond resolution), avoiding floats.
func writeTs(b *bytes.Buffer, ps int64) {
	fmt.Fprintf(b, "%d.%06d", ps/1_000_000, ps%1_000_000)
}

// quote writes s as a JSON string. Track and event names are
// code-controlled ASCII, but escape the JSON metacharacters anyway so a
// stray byte cannot corrupt the file.
func quote(b *bytes.Buffer, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
