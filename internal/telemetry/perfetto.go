// Chrome/Perfetto trace_event export. The writer is deliberately
// hand-rolled instead of encoding/json: field order, number formatting,
// and line layout are then fixed by this file alone, which is what the
// byte-identical-trace gate in ci.sh leans on. Timestamps convert from
// simulated picoseconds to the format's microseconds as the exact
// decimal "%d.%06d", so no float rounding can differ between runs.
//
// The output loads in ui.perfetto.dev and chrome://tracing: one process
// ("pid" 1), one named thread track per Tracer track, spans as phase
// "X", instants as "i", counters as "C", and request lifecycles as
// async "b"/"e" pairs.

package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePerfetto writes the whole trace as Perfetto trace_event JSON.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	_, err := w.Write(t.PerfettoJSON())
	return err
}

// PerfettoJSON renders the trace; one event per line for diffability.
//
// Two edge cases are normalized at export time so every produced file
// loads cleanly in a trace viewer:
//
//   - Async spans left open when the engine drains (requests still in
//     flight at the simulation deadline) get a synthetic "e" event at
//     the trace's end timestamp, in begin-emission order — Perfetto
//     otherwise renders them as unterminated arrows.
//   - A Tracer that recorded nothing exports the minimal valid document
//     {"traceEvents":[]} instead of a process-metadata stub.
func (t *Tracer) PerfettoJSON() []byte {
	if t.Len() == 0 && len(t.Tracks()) == 0 {
		return []byte("{\"traceEvents\":[]}\n")
	}
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[\n")
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"smartdimm-sim"}}`)
	for i, name := range t.Tracks() {
		tid := i + 1
		fmt.Fprintf(&b, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":", tid)
		quote(&b, name)
		b.WriteString("}}")
		fmt.Fprintf(&b, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}", tid, tid)
	}
	for _, e := range t.Events() {
		b.WriteString(",\n{\"name\":")
		quote(&b, e.Name)
		tid := int(e.Track) + 1
		switch e.Kind {
		case KindSpan:
			fmt.Fprintf(&b, ",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
			b.WriteString(",\"dur\":")
			writeTs(&b, e.DurPs)
		case KindInstant:
			fmt.Fprintf(&b, ",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
		case KindCounter:
			fmt.Fprintf(&b, ",\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":", tid)
			writeTs(&b, e.AtPs)
			b.WriteString(",\"args\":{\"value\":")
			b.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
			b.WriteString("}")
		case KindAsyncBegin:
			fmt.Fprintf(&b, ",\"cat\":\"req\",\"ph\":\"b\",\"id\":\"0x%x\",\"pid\":1,\"tid\":%d,\"ts\":", e.ID, tid)
			writeTs(&b, e.AtPs)
		case KindAsyncEnd:
			fmt.Fprintf(&b, ",\"cat\":\"req\",\"ph\":\"e\",\"id\":\"0x%x\",\"pid\":1,\"tid\":%d,\"ts\":", e.ID, tid)
			writeTs(&b, e.AtPs)
		}
		b.WriteString("}")
	}
	for _, i := range t.unclosedAsync() {
		e := t.Events()[i]
		fmt.Fprintf(&b, ",\n{\"name\":")
		quote(&b, e.Name)
		fmt.Fprintf(&b, ",\"cat\":\"req\",\"ph\":\"e\",\"id\":\"0x%x\",\"pid\":1,\"tid\":%d,\"ts\":", e.ID, int(e.Track)+1)
		writeTs(&b, t.endPs())
		b.WriteString("}")
	}
	b.WriteString("\n]}\n")
	return b.Bytes()
}

// unclosedAsync returns the event indexes of async begins that never saw
// a matching end, in emission order. Begins and ends pair by (name, id).
func (t *Tracer) unclosedAsync() []int {
	var pending map[asyncKey][]int
	for i, e := range t.Events() {
		switch e.Kind {
		case KindAsyncBegin:
			if pending == nil {
				pending = map[asyncKey][]int{}
			}
			k := asyncKey{name: e.Name, id: e.ID}
			pending[k] = append(pending[k], i)
		case KindAsyncEnd:
			k := asyncKey{name: e.Name, id: e.ID}
			if s := pending[k]; len(s) > 0 {
				pending[k] = s[:len(s)-1]
			}
		}
	}
	var open []int
	for _, s := range pending {
		open = append(open, s...)
	}
	sort.Ints(open) // map order → emission order
	return open
}

type asyncKey struct {
	name string
	id   uint64
}

// endPs is the trace's end timestamp: the latest instant any recorded
// event covers (span ends included). Synthetic async ends land here.
func (t *Tracer) endPs() int64 {
	var end int64
	for _, e := range t.Events() {
		at := e.AtPs
		if e.Kind == KindSpan {
			at += e.DurPs
		}
		if at > end {
			end = at
		}
	}
	return end
}

// writeTs renders picoseconds as trace_event microseconds with exactly
// six fractional digits (picosecond resolution), avoiding floats.
func writeTs(b *bytes.Buffer, ps int64) {
	fmt.Fprintf(b, "%d.%06d", ps/1_000_000, ps%1_000_000)
}

// quote writes s as a JSON string. Track and event names are
// code-controlled ASCII, but escape the JSON metacharacters anyway so a
// stray byte cannot corrupt the file.
func quote(b *bytes.Buffer, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
