// Concurrency coverage for the metrics registry: per-rank fleet workers
// may register their collectors in parallel, so Register/Snapshot must
// be race-free, and Sort must restore a deterministic report order no
// matter how the scheduler interleaved the registrations. The telemetry
// package runs under -race in ci.sh, which is what gives the concurrent
// registrations here their teeth.
package telemetry

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// rankCollector mimics a per-rank stats aggregate.
func rankCollector(rank int) Collector {
	return CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "ops", Value: float64(100 + rank)})
		emit(Sample{Name: "errors", Value: float64(rank % 3)})
	})
}

// registerConcurrently fans rank registrations across goroutines and
// returns the sorted WriteText output.
func registerConcurrently(t *testing.T, ranks int) string {
	t.Helper()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < ranks; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r.Register(fmt.Sprintf("mem.rank%02d", rank), rankCollector(rank))
		}(i)
	}
	wg.Wait()
	r.Sort()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRegistryConcurrentRegistrationDeterministic registers per-rank
// collectors from racing goroutines at several GOMAXPROCS settings and
// asserts the sorted text report is identical to a serial registration.
func TestRegistryConcurrentRegistrationDeterministic(t *testing.T) {
	const ranks = 16
	serial := NewRegistry()
	for i := 0; i < ranks; i++ {
		serial.Register(fmt.Sprintf("mem.rank%02d", i), rankCollector(i))
	}
	var want strings.Builder
	if err := serial.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		for round := 0; round < 8; round++ {
			if got := registerConcurrently(t, ranks); got != want.String() {
				t.Fatalf("GOMAXPROCS=%d round %d: concurrent+Sort output diverged:\ngot:\n%swant:\n%s",
					procs, round, got, want.String())
			}
		}
	}
}

// Concurrent Register while another goroutine snapshots must be safe
// (the snapshot sees some prefix of the registrations, never a torn
// slice) — this is purely a -race target.
func TestRegistryRegisterSnapshotRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for i := 0; i < 64; i++ {
		r.Register(fmt.Sprintf("c%d", i), rankCollector(i))
	}
	close(stop)
	wg.Wait()
	if n := len(r.Snapshot()); n != 64*2 {
		t.Fatalf("snapshot has %d samples, want %d", n, 64*2)
	}
}

// SnapshotInto must agree with Snapshot byte-for-byte and reuse the
// caller's buffer once it has grown to fit.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		r.Register(fmt.Sprintf("mem.rank%02d", i), rankCollector(i))
	}
	r.Register("", CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "bare", Value: 7})
	}))
	want := r.Snapshot()
	var buf []Sample
	for round := 0; round < 3; round++ {
		buf = r.SnapshotInto(buf)
		if len(buf) != len(want) {
			t.Fatalf("round %d: %d samples, want %d", round, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("round %d sample %d = %+v, want %+v", round, i, buf[i], want[i])
			}
		}
	}
}

// Steady-state SnapshotInto allocates nothing: the emit closure and the
// full-name cache are built once, and the sample slice is the caller's.
func TestSnapshotIntoZeroAllocSteadyState(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Register(fmt.Sprintf("mem.rank%02d", i), rankCollector(i))
	}
	buf := r.SnapshotInto(nil) // warm: build closure, intern names, size buf
	if a := testing.AllocsPerRun(100, func() {
		buf = r.SnapshotInto(buf)
	}); a != 0 {
		t.Fatalf("steady-state SnapshotInto allocates %v/op, want 0", a)
	}
}

func BenchmarkSnapshotInto(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Register(fmt.Sprintf("mem.rank%02d", i), rankCollector(i))
	}
	buf := r.SnapshotInto(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.SnapshotInto(buf)
	}
	_ = buf
}

// Sort is stable: collectors sharing a prefix keep registration order.
func TestRegistrySortStable(t *testing.T) {
	r := NewRegistry()
	r.Register("b", CollectorFunc(func(emit func(Sample)) { emit(Sample{Name: "first", Value: 1}) }))
	r.Register("a", CollectorFunc(func(emit func(Sample)) { emit(Sample{Name: "x", Value: 2}) }))
	r.Register("b", CollectorFunc(func(emit func(Sample)) { emit(Sample{Name: "second", Value: 3}) }))
	r.Sort()
	snap := r.Snapshot()
	want := []string{"a.x", "b.first", "b.second"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i, n := range want {
		if snap[i].Name != n {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %+v)", i, snap[i].Name, n, snap)
		}
	}
}
