// Deterministic merging of per-shard trace streams. A sharded run gives
// every shard its own Tracer (a Tracer is single-threaded by design);
// after the run the streams are folded into one trace in sorted
// (simulated ps, shard, per-shard emission order) order — a pure
// function of the per-shard streams, so the merged trace is
// byte-identical no matter how many workers executed the epochs.

package telemetry

import "sort"

// MergeShards merges per-shard tracers into a single Tracer. Track
// names are namespaced with the matching prefix ("s3/" turns "worker0"
// into "s3/worker0"); prefixes must be distinct or same-named tracks
// collapse onto one lane. Tracks register in (shard, creation) order and
// events append in (AtPs, shard, emission) order, both deterministic.
// Nil or empty tracers are skipped; len(prefixes) must equal
// len(shards).
func MergeShards(prefixes []string, shards []*Tracer) *Tracer {
	if len(prefixes) != len(shards) {
		panic("telemetry: MergeShards prefix/shard length mismatch")
	}
	out := New()
	// Register every shard's tracks up front so merged TrackIDs depend
	// only on per-shard track creation order, not event timing.
	remap := make([][]TrackID, len(shards))
	for s, tr := range shards {
		if tr == nil {
			continue
		}
		names := tr.Tracks()
		remap[s] = make([]TrackID, len(names))
		for i, name := range names {
			remap[s][i] = out.Track(prefixes[s] + name)
		}
	}
	type key struct {
		shard int
		idx   int
	}
	var keys []key
	for s, tr := range shards {
		if tr == nil {
			continue
		}
		for i := 0; i < tr.Len(); i++ {
			keys = append(keys, key{shard: s, idx: i})
		}
	}
	// Stable sort on AtPs then shard; stability preserves each shard's
	// emission order for equal timestamps.
	sort.SliceStable(keys, func(a, b int) bool {
		ea := shards[keys[a].shard].events[keys[a].idx]
		eb := shards[keys[b].shard].events[keys[b].idx]
		if ea.AtPs != eb.AtPs {
			return ea.AtPs < eb.AtPs
		}
		return keys[a].shard < keys[b].shard
	})
	for _, k := range keys {
		ev := shards[k.shard].events[k.idx]
		ev.Track = remap[k.shard][ev.Track]
		out.events = append(out.events, ev)
	}
	return out
}
