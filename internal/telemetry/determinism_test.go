// Black-box determinism tests: the whole simulated stack (server,
// offload, SmartDIMM, memory controllers, fault injection) traced
// end-to-end must produce byte-identical Perfetto JSON from the same
// seed — including when runs fan out across the parallel runner, which
// is what the -race CI stage exercises.
package telemetry_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/nettcp"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

// runTracedServing runs one traced closed-loop HTTPS serving window on
// a SmartDIMM system with periodic DSA fault injection and returns the
// Perfetto trace bytes.
func runTracedServing(t *testing.T, seed int64) []byte {
	t.Helper()
	tr := telemetry.New()
	inj := fault.New(seed)
	inj.Arm("core.dsa", fault.Periodic{Every: 400})
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 512 << 10, LLCWays: 8,
		WithSmartDIMM: true, Faults: inj, Tracer: tr, TraceCAS: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: &offload.SmartDIMM{Sys: sys}, Mode: server.HTTPSMode,
		Workers: 4, MsgSize: 4096, Connections: 32, FileKind: corpus.Text, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
		Connections: 32, ThinkPs: int64(sys.Params.RTTUs * float64(sim.Us)),
	})
	gen.Start()
	sys.Engine.RunUntil(1 * sim.Ms)
	srv.BeginMeasurement()
	sys.Engine.RunUntil(3 * sim.Ms)
	sys.Trace.ExportTo(tr)
	return tr.PerfettoJSON()
}

func TestFullStackTraceReproducible(t *testing.T) {
	a := runTracedServing(t, 7)
	b := runTracedServing(t, 7)
	if len(a) == 0 || !bytes.Contains(a, []byte(`"traceEvents"`)) {
		t.Fatalf("trace missing or malformed (%d bytes)", len(a))
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ: %d vs %d bytes", len(a), len(b))
	}
	for _, want := range []string{"mem/rank0", "dev/rank0", "driver/rank0", "faults", "worker0", "nic", "requests", "offload", "cas", "CompCpy"} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("trace lacks %q", want)
		}
	}
}

// TestTracingUnderParallelRunner gives every sweep point its own Tracer
// and fans the points across the pool: per-system tracers must not
// race (this is the -race gate) and stay seed-deterministic.
func TestTracingUnderParallelRunner(t *testing.T) {
	seeds := []int64{3, 4, 3, 4}
	pool := runner.New(0)
	traces, err := runner.Map(context.Background(), pool, seeds,
		func(_ context.Context, seed int64, _ int) ([]byte, error) {
			return runTracedServing(t, seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traces[0], traces[2]) || !bytes.Equal(traces[1], traces[3]) {
		t.Fatal("same-seed traces differ across parallel workers")
	}
	if bytes.Equal(traces[0], traces[1]) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestNetTCPTraceInstants checks the TCP layer's loss-recovery instants
// land on the trace deterministically.
func TestNetTCPTraceInstants(t *testing.T) {
	run := func() []byte {
		tr := telemetry.New()
		p := sim.DefaultParams()
		eng := sim.NewEngine()
		rttHalf := int64(p.RTTUs * float64(sim.Us) / 2)
		data := netsim.NewLink(eng, netsim.LinkConfig{
			Gbps: p.LinkGbps, PropPs: rttHalf, DropProb: 0.02, Seed: 9,
		})
		ack := netsim.NewLink(eng, netsim.LinkConfig{Gbps: p.LinkGbps, PropPs: rttHalf, Seed: 10})
		cfg := nettcp.DefaultConfig()
		cfg.MSS = p.MTUBytes - 40
		sender, _, err := nettcp.NewTransfer(eng, data, ack, cfg, nettcp.CPUTLSHook{P: p}, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		sender.Tracer = tr
		sender.TraceTrack = tr.Track("tcp")
		eng.RunUntil(2 * sim.S)
		if !sender.Done() {
			t.Fatal("transfer did not complete")
		}
		if sender.Retransmits == 0 {
			t.Fatal("lossy link produced no retransmits; instants untested")
		}
		return tr.PerfettoJSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("nettcp traces differ across same-seed runs")
	}
	if !bytes.Contains(a, []byte("retransmit")) {
		t.Error("trace lacks retransmit instants")
	}
}

// TestChaosRunWithTrace checks the chaos harness writes a reproducible
// Perfetto file and records where it put it.
func TestChaosRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	r1, err := chaos.RunWithTrace(21, 8, p1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TracePath != p1 {
		t.Fatalf("TracePath = %q, want %q", r1.TracePath, p1)
	}
	if len(r1.Violations) != 0 {
		t.Fatalf("chaos violations: %v", r1.Violations)
	}
	if _, err := chaos.RunWithTrace(21, 8, p2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed chaos traces differ")
	}
	if !bytes.Contains(a, []byte(`"traceEvents"`)) || !bytes.Contains(a, []byte("faults")) {
		t.Fatal("chaos trace missing fault track")
	}
}
