// The metrics registry: one named path through which every aggregate —
// server metrics, device/driver/controller stats, fleet totals,
// degradation ladders — reports, replacing per-command formatting code.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Sample is one named point-in-time measurement.
type Sample struct {
	Name  string
	Value float64
}

// Collector is anything that can report itself as samples. Aggregates
// across the stack (stats.Degradation, core.DeviceStats, fleet totals,
// server metrics, ...) implement it so commands print them all through
// Registry.WriteText.
type Collector interface {
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect calls f.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// Registry holds named collectors in registration order, which is the
// order Snapshot and WriteText report in — deterministic by
// construction, no map iteration. Register, Sort, and Snapshot are safe
// for concurrent use: a fleet's per-rank workers may register their
// collectors in parallel, then call Sort once to restore a deterministic
// report order (arrival order under concurrency is scheduler-dependent).
type Registry struct {
	mu       sync.Mutex
	prefixes []string
	cs       []Collector

	// SnapshotInto scratch, guarded by mu: a reusable emit closure plus
	// a per-prefix full-name cache so steady-state snapshots allocate
	// nothing — the obs scraper reads the registry every few hundred
	// simulated microseconds, and per-tick garbage would dominate.
	emit      func(Sample)
	out       []Sample
	curPrefix string
	names     map[string]map[string]string // prefix -> bare name -> full name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector under a name prefix ("" for none). Sample
// names become "prefix.name".
func (r *Registry) Register(prefix string, c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.prefixes = append(r.prefixes, prefix)
	r.cs = append(r.cs, c)
	r.mu.Unlock()
}

// Sort stable-sorts the registered collectors by prefix, leaving each
// collector's own sample order untouched. After concurrent registration
// (per-rank fleet workers racing into the registry), one Sort call makes
// Snapshot/WriteText output independent of arrival order; serial callers
// never need it.
func (r *Registry) Sort() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]int, len(r.cs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.prefixes[idx[a]] < r.prefixes[idx[b]] })
	prefixes := make([]string, len(idx))
	cs := make([]Collector, len(idx))
	for i, j := range idx {
		prefixes[i], cs[i] = r.prefixes[j], r.cs[j]
	}
	r.prefixes, r.cs = prefixes, cs
}

// Snapshot collects every registered collector once, in registration
// order (or prefix order after Sort).
func (r *Registry) Snapshot() []Sample {
	return r.SnapshotInto(nil)
}

// SnapshotInto is Snapshot reusing the caller's sample slice: buf is
// truncated and refilled, growing only until it fits the sample set, so
// a caller that feeds the previous result back in (the obs scraper,
// once per scrape tick) reaches a 0 allocs/op steady state. Full names
// ("prefix.name") are interned in a per-prefix cache instead of being
// re-concatenated every call. Collectors run under the registry lock:
// a Collect implementation must not call back into this Registry.
func (r *Registry) SnapshotInto(buf []Sample) []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.emit == nil {
		r.names = map[string]map[string]string{}
		r.emit = func(s Sample) {
			if r.curPrefix != "" {
				byBare := r.names[r.curPrefix]
				if byBare == nil {
					byBare = map[string]string{}
					r.names[r.curPrefix] = byBare
				}
				full, ok := byBare[s.Name]
				if !ok {
					full = r.curPrefix + "." + s.Name
					byBare[s.Name] = full
				}
				s.Name = full
			}
			r.out = append(r.out, s)
		}
	}
	r.out = buf[:0]
	for i, c := range r.cs {
		r.curPrefix = r.prefixes[i]
		c.Collect(r.emit)
	}
	out := r.out
	r.out = nil // don't pin the caller's backing array past the call
	return out
}

// WriteText writes the snapshot as "name value" lines. Values format
// with strconv 'g'/-1, the shortest representation that round-trips, so
// the text export is byte-stable across runs.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
