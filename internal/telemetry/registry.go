// The metrics registry: one named path through which every aggregate —
// server metrics, device/driver/controller stats, fleet totals,
// degradation ladders — reports, replacing per-command formatting code.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Sample is one named point-in-time measurement.
type Sample struct {
	Name  string
	Value float64
}

// Collector is anything that can report itself as samples. Aggregates
// across the stack (stats.Degradation, core.DeviceStats, fleet totals,
// server metrics, ...) implement it so commands print them all through
// Registry.WriteText.
type Collector interface {
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect calls f.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// Registry holds named collectors in registration order, which is the
// order Snapshot and WriteText report in — deterministic by
// construction, no map iteration. Register, Sort, and Snapshot are safe
// for concurrent use: a fleet's per-rank workers may register their
// collectors in parallel, then call Sort once to restore a deterministic
// report order (arrival order under concurrency is scheduler-dependent).
type Registry struct {
	mu       sync.Mutex
	prefixes []string
	cs       []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector under a name prefix ("" for none). Sample
// names become "prefix.name".
func (r *Registry) Register(prefix string, c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.prefixes = append(r.prefixes, prefix)
	r.cs = append(r.cs, c)
	r.mu.Unlock()
}

// Sort stable-sorts the registered collectors by prefix, leaving each
// collector's own sample order untouched. After concurrent registration
// (per-rank fleet workers racing into the registry), one Sort call makes
// Snapshot/WriteText output independent of arrival order; serial callers
// never need it.
func (r *Registry) Sort() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := make([]int, len(r.cs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.prefixes[idx[a]] < r.prefixes[idx[b]] })
	prefixes := make([]string, len(idx))
	cs := make([]Collector, len(idx))
	for i, j := range idx {
		prefixes[i], cs[i] = r.prefixes[j], r.cs[j]
	}
	r.prefixes, r.cs = prefixes, cs
}

// Snapshot collects every registered collector once, in registration
// order (or prefix order after Sort).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	prefixes := append([]string(nil), r.prefixes...)
	cs := append([]Collector(nil), r.cs...)
	r.mu.Unlock()
	var out []Sample
	for i, c := range cs {
		prefix := prefixes[i]
		c.Collect(func(s Sample) {
			if prefix != "" {
				s.Name = prefix + "." + s.Name
			}
			out = append(out, s)
		})
	}
	return out
}

// WriteText writes the snapshot as "name value" lines. Values format
// with strconv 'g'/-1, the shortest representation that round-trips, so
// the text export is byte-stable across runs.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
