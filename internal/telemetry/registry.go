// The metrics registry: one named path through which every aggregate —
// server metrics, device/driver/controller stats, fleet totals,
// degradation ladders — reports, replacing per-command formatting code.

package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Sample is one named point-in-time measurement.
type Sample struct {
	Name  string
	Value float64
}

// Collector is anything that can report itself as samples. Aggregates
// across the stack (stats.Degradation, core.DeviceStats, fleet totals,
// server metrics, ...) implement it so commands print them all through
// Registry.WriteText.
type Collector interface {
	Collect(emit func(Sample))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(Sample))

// Collect calls f.
func (f CollectorFunc) Collect(emit func(Sample)) { f(emit) }

// Registry holds named collectors in registration order, which is the
// order Snapshot and WriteText report in — deterministic by
// construction, no map iteration.
type Registry struct {
	prefixes []string
	cs       []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector under a name prefix ("" for none). Sample
// names become "prefix.name".
func (r *Registry) Register(prefix string, c Collector) {
	if r == nil || c == nil {
		return
	}
	r.prefixes = append(r.prefixes, prefix)
	r.cs = append(r.cs, c)
}

// Snapshot collects every registered collector once, in registration
// order.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for i, c := range r.cs {
		prefix := r.prefixes[i]
		c.Collect(func(s Sample) {
			if prefix != "" {
				s.Name = prefix + "." + s.Name
			}
			out = append(out, s)
		})
	}
	return out
}

// WriteText writes the snapshot as "name value" lines. Values format
// with strconv 'g'/-1, the shortest representation that round-trips, so
// the text export is byte-stable across runs.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
