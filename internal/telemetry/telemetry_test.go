package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// A nil Tracer must absorb every call without panicking or allocating —
// that is the whole zero-overhead-when-disabled contract.
func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("x")
	if tk != 0 {
		t.Fatalf("nil Track = %d, want 0", tk)
	}
	tr.Span(tk, "s", 0, 10)
	tr.Instant(tk, "i", 5)
	tr.Counter(tk, "c", 5, 1.5)
	tr.AsyncBegin(tk, "a", 1, 0)
	tr.AsyncEnd(tk, "a", 1, 10)
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Fatal("nil tracer reported recorded state")
	}
	for _, fn := range map[string]func(){
		"span":    func() { tr.Span(tk, "s", 0, 10) },
		"instant": func() { tr.Instant(tk, "i", 5) },
		"counter": func() { tr.Counter(tk, "c", 5, 1.5) },
		"track":   func() { tr.Track("x") },
	} {
		if a := testing.AllocsPerRun(100, fn); a != 0 {
			t.Fatalf("nil tracer allocates %v/op", a)
		}
	}
}

func TestTrackIdempotent(t *testing.T) {
	tr := New()
	a := tr.Track("engine")
	b := tr.Track("mem")
	if a2 := tr.Track("engine"); a2 != a {
		t.Fatalf("Track(engine) = %d then %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct names share a TrackID")
	}
	if got := tr.Tracks(); len(got) != 2 || got[a] != "engine" || got[b] != "mem" {
		t.Fatalf("Tracks() = %v", got)
	}
}

func TestEventsRecordInEmissionOrder(t *testing.T) {
	tr := New()
	tk := tr.Track("t")
	tr.Span(tk, "b", 20, 5)
	tr.Span(tk, "a", 10, 5) // out of time order on purpose
	tr.Instant(tk, "i", 1)
	ev := tr.Events()
	if len(ev) != 3 || ev[0].Name != "b" || ev[1].Name != "a" || ev[2].Name != "i" {
		t.Fatalf("events reordered: %+v", ev)
	}
}

// The golden file pins the exporter's byte layout: every Perfetto phase
// the simulator emits, metadata tracks, the ps→µs timestamp format, and
// name escaping. Regenerate with `go test ./internal/telemetry/ -run
// TestPerfettoGolden -update` and eyeball the diff.
func TestPerfettoGolden(t *testing.T) {
	tr := New()
	eng := tr.Track("engine")
	mem := tr.Track("mem/rank0")
	tr.Span(eng, "run", 0, 2_000_000)
	tr.Span(mem, "drain", 1_234_567, 89_012)
	tr.Instant(mem, "ALERT_N", 1_500_000)
	tr.Counter(mem, "rdCAS", 2_000_000, 3)
	tr.AsyncBegin(eng, "req", 42, 100)
	tr.AsyncEnd(eng, "req", 42, 1_999_900)
	tr.Instant(eng, "quote\"back\\slash", 7)

	got := tr.PerfettoJSON()
	path := filepath.Join("testdata", "golden.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace JSON diverged from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Same events in, same bytes out — the exporter has no hidden state.
func TestPerfettoReproducible(t *testing.T) {
	build := func() []byte {
		tr := New()
		a := tr.Track("a")
		for i := int64(0); i < 100; i++ {
			tr.Span(a, "s", i*10, 5)
			tr.Counter(a, "c", i*10, float64(i)/3)
		}
		return tr.PerfettoJSON()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical builds exported different bytes")
	}
}

// Slice keeps every event overlapping the window — spans whole, with
// original timestamps — carries all tracks over, and preserves emission
// order.
func TestTracerSlice(t *testing.T) {
	tr := New()
	a := tr.Track("a")
	b := tr.Track("b")
	tr.Span(a, "before", 0, 50)           // ends at 50 < from: dropped
	tr.Span(a, "straddle-in", 80, 40)     // ends inside window: kept whole
	tr.Instant(b, "inside", 150)          // kept
	tr.Counter(b, "c", 190, 2)            // kept
	tr.Span(a, "straddle-out", 195, 1000) // starts inside: kept whole
	tr.Instant(b, "after", 201)           // starts past to: dropped

	s := tr.Slice(100, 200)
	if got := s.Tracks(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("slice tracks = %v, want [a b]", got)
	}
	ev := s.Events()
	names := make([]string, len(ev))
	for i, e := range ev {
		names[i] = e.Name
	}
	want := []string{"straddle-in", "inside", "c", "straddle-out"}
	if len(names) != len(want) {
		t.Fatalf("slice events = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("slice events = %v, want %v", names, want)
		}
	}
	if ev[0].AtPs != 80 || ev[0].DurPs != 40 {
		t.Fatalf("straddling span rewritten: %+v", ev[0])
	}
	var nilTr *Tracer
	if nilTr.Slice(0, 100) != nil {
		t.Fatal("nil Slice returned a tracer")
	}
}

func TestRegistryOrderAndText(t *testing.T) {
	r := NewRegistry()
	r.Register("b", CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "z", Value: 1})
		emit(Sample{Name: "a", Value: 0.5})
	}))
	r.Register("", CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "bare", Value: 3})
	}))
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "b.z" || snap[1].Name != "b.a" || snap[2].Name != "bare" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "b.z 1\nb.a 0.5\nbare 3\n"
	if buf.String() != want {
		t.Fatalf("WriteText = %q, want %q", buf.String(), want)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Register("x", CollectorFunc(func(func(Sample)) {}))
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced samples")
	}
}

// An async span left open at engine drain must get a synthetic end at
// the trace's end timestamp so viewers don't render it unterminated.
func TestPerfettoSyntheticAsyncEnd(t *testing.T) {
	tr := New()
	req := tr.Track("requests")
	eng := tr.Track("engine")
	tr.AsyncBegin(req, "req", 1, 100)
	tr.AsyncEnd(req, "req", 1, 500)
	tr.AsyncBegin(req, "req", 2, 300) // never closed: in flight at drain
	tr.Span(eng, "run", 0, 2_000)     // trace end = 2000ps = 0.002us

	got := string(tr.PerfettoJSON())
	if !json.Valid([]byte(got)) {
		t.Fatalf("exporter produced invalid JSON:\n%s", got)
	}
	ends := strings.Count(got, `"ph":"e"`)
	if ends != 2 {
		t.Fatalf("want 2 async ends (1 real + 1 synthetic), got %d:\n%s", ends, got)
	}
	if !strings.Contains(got, `"ph":"e","id":"0x2","pid":1,"tid":1,"ts":0.002000}`) {
		t.Fatalf("synthetic end for id 2 missing or not at trace end:\n%s", got)
	}
	// A balanced trace must not grow synthetic events.
	tr2 := New()
	r2 := tr2.Track("requests")
	tr2.AsyncBegin(r2, "req", 7, 10)
	tr2.AsyncEnd(r2, "req", 7, 20)
	if n := strings.Count(string(tr2.PerfettoJSON()), `"ph":"e"`); n != 1 {
		t.Fatalf("balanced trace exported %d ends, want 1", n)
	}
}

// Reused async ids (sequential request slots) must only synthesize ends
// for genuinely open spans, not confuse begin/end pairing.
func TestPerfettoSyntheticAsyncEndReusedID(t *testing.T) {
	tr := New()
	req := tr.Track("requests")
	tr.AsyncBegin(req, "req", 1, 0)
	tr.AsyncEnd(req, "req", 1, 10)
	tr.AsyncBegin(req, "req", 1, 20) // same id, second lifetime, unclosed
	got := string(tr.PerfettoJSON())
	if !json.Valid([]byte(got)) {
		t.Fatalf("invalid JSON:\n%s", got)
	}
	if n := strings.Count(got, `"ph":"e"`); n != 2 {
		t.Fatalf("want 2 ends (1 real + 1 synthetic), got %d:\n%s", n, got)
	}
}

// A tracer that recorded nothing must still export a valid (and
// minimal) JSON document.
func TestPerfettoEmptyTrace(t *testing.T) {
	for name, tr := range map[string]*Tracer{"fresh": New(), "nil": nil} {
		got := tr.PerfettoJSON()
		if want := "{\"traceEvents\":[]}\n"; string(got) != want {
			t.Fatalf("%s tracer: empty export = %q, want %q", name, got, want)
		}
		if !json.Valid(got) {
			t.Fatalf("%s tracer: empty export is invalid JSON", name)
		}
	}
	// A tracer with tracks but no events keeps the metadata preamble and
	// stays valid.
	tr := New()
	tr.Track("engine")
	if got := tr.PerfettoJSON(); !json.Valid(got) || !bytes.Contains(got, []byte("thread_name")) {
		t.Fatalf("track-only export wrong: %s", got)
	}
}
