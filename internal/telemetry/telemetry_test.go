package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// A nil Tracer must absorb every call without panicking or allocating —
// that is the whole zero-overhead-when-disabled contract.
func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("x")
	if tk != 0 {
		t.Fatalf("nil Track = %d, want 0", tk)
	}
	tr.Span(tk, "s", 0, 10)
	tr.Instant(tk, "i", 5)
	tr.Counter(tk, "c", 5, 1.5)
	tr.AsyncBegin(tk, "a", 1, 0)
	tr.AsyncEnd(tk, "a", 1, 10)
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Fatal("nil tracer reported recorded state")
	}
	for _, fn := range map[string]func(){
		"span":    func() { tr.Span(tk, "s", 0, 10) },
		"instant": func() { tr.Instant(tk, "i", 5) },
		"counter": func() { tr.Counter(tk, "c", 5, 1.5) },
		"track":   func() { tr.Track("x") },
	} {
		if a := testing.AllocsPerRun(100, fn); a != 0 {
			t.Fatalf("nil tracer allocates %v/op", a)
		}
	}
}

func TestTrackIdempotent(t *testing.T) {
	tr := New()
	a := tr.Track("engine")
	b := tr.Track("mem")
	if a2 := tr.Track("engine"); a2 != a {
		t.Fatalf("Track(engine) = %d then %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct names share a TrackID")
	}
	if got := tr.Tracks(); len(got) != 2 || got[a] != "engine" || got[b] != "mem" {
		t.Fatalf("Tracks() = %v", got)
	}
}

func TestEventsRecordInEmissionOrder(t *testing.T) {
	tr := New()
	tk := tr.Track("t")
	tr.Span(tk, "b", 20, 5)
	tr.Span(tk, "a", 10, 5) // out of time order on purpose
	tr.Instant(tk, "i", 1)
	ev := tr.Events()
	if len(ev) != 3 || ev[0].Name != "b" || ev[1].Name != "a" || ev[2].Name != "i" {
		t.Fatalf("events reordered: %+v", ev)
	}
}

// The golden file pins the exporter's byte layout: every Perfetto phase
// the simulator emits, metadata tracks, the ps→µs timestamp format, and
// name escaping. Regenerate with `go test ./internal/telemetry/ -run
// TestPerfettoGolden -update` and eyeball the diff.
func TestPerfettoGolden(t *testing.T) {
	tr := New()
	eng := tr.Track("engine")
	mem := tr.Track("mem/rank0")
	tr.Span(eng, "run", 0, 2_000_000)
	tr.Span(mem, "drain", 1_234_567, 89_012)
	tr.Instant(mem, "ALERT_N", 1_500_000)
	tr.Counter(mem, "rdCAS", 2_000_000, 3)
	tr.AsyncBegin(eng, "req", 42, 100)
	tr.AsyncEnd(eng, "req", 42, 1_999_900)
	tr.Instant(eng, "quote\"back\\slash", 7)

	got := tr.PerfettoJSON()
	path := filepath.Join("testdata", "golden.trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace JSON diverged from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// Same events in, same bytes out — the exporter has no hidden state.
func TestPerfettoReproducible(t *testing.T) {
	build := func() []byte {
		tr := New()
		a := tr.Track("a")
		for i := int64(0); i < 100; i++ {
			tr.Span(a, "s", i*10, 5)
			tr.Counter(a, "c", i*10, float64(i)/3)
		}
		return tr.PerfettoJSON()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical builds exported different bytes")
	}
}

func TestRegistryOrderAndText(t *testing.T) {
	r := NewRegistry()
	r.Register("b", CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "z", Value: 1})
		emit(Sample{Name: "a", Value: 0.5})
	}))
	r.Register("", CollectorFunc(func(emit func(Sample)) {
		emit(Sample{Name: "bare", Value: 3})
	}))
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "b.z" || snap[1].Name != "b.a" || snap[2].Name != "bare" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	var buf strings.Builder
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "b.z 1\nb.a 0.5\nbare 3\n"
	if buf.String() != want {
		t.Fatalf("WriteText = %q, want %q", buf.String(), want)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Register("x", CollectorFunc(func(func(Sample)) {}))
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced samples")
	}
}
