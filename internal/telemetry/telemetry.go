// Package telemetry is the simulated stack's observability layer:
// deterministic span tracing keyed on simulated picoseconds, a named
// metrics registry, and Chrome/Perfetto trace_event export.
//
// Determinism rules (DESIGN.md §12):
//
//   - Timestamps are simulated picoseconds, never wall clock. Two runs
//     with the same seed produce byte-identical traces, including under
//     the parallel sweep runner (each sweep point owns its Tracer).
//   - Events export in emission order and tracks in creation order; no
//     map iteration touches the output path.
//
// A nil *Tracer is valid, disabled, and free: every method nil-guards,
// so an instrumented hot path costs one pointer compare when tracing is
// off — the same pattern as internal/fault's nil injector.
//
// A Tracer is not safe for concurrent use. One simulated system owns
// one Tracer; the parallel runner gives each sweep point its own.
package telemetry

// TrackID names one horizontal lane of the trace (a Perfetto thread
// track). Tracks identify the component a span belongs to: the engine,
// a memory-controller rank, the buffer device, a server worker, the
// NIC wire, ...
type TrackID int32

// Kind discriminates recorded events.
type Kind uint8

// The kinds map one-to-one onto Perfetto trace_event phases.
const (
	KindSpan       Kind = iota // ph "X": complete span [AtPs, AtPs+DurPs)
	KindInstant                // ph "i": a point in time
	KindCounter                // ph "C": a sampled value
	KindAsyncBegin             // ph "b": start of an overlapping span
	KindAsyncEnd               // ph "e": end of an overlapping span
)

// Event is one recorded trace event. AtPs and DurPs are simulated
// picoseconds.
type Event struct {
	Kind  Kind
	Track TrackID
	Name  string
	AtPs  int64
	DurPs int64   // KindSpan only
	Value float64 // KindCounter only
	ID    uint64  // KindAsyncBegin/End: pairs a begin with its end
}

// Tracer accumulates events in emission order.
type Tracer struct {
	names  []string
	byName map[string]TrackID
	events []Event
}

// New returns an enabled Tracer.
func New() *Tracer { return &Tracer{byName: map[string]TrackID{}} }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Track returns the ID of the named track, creating it on first use.
// Components cache the ID at construction so per-event sites skip the
// map lookup. On a nil Tracer it returns 0.
func (t *Tracer) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	if id, ok := t.byName[name]; ok {
		return id
	}
	id := TrackID(len(t.names))
	t.names = append(t.names, name)
	t.byName[name] = id
	return id
}

// Span records a complete span of durPs picoseconds starting at
// startPs.
func (t *Tracer) Span(track TrackID, name string, startPs, durPs int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Kind: KindSpan, Track: track, Name: name, AtPs: startPs, DurPs: durPs})
}

// Instant records a point event — a fault firing, a breaker flip, a
// reshard — at atPs.
func (t *Tracer) Instant(track TrackID, name string, atPs int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Kind: KindInstant, Track: track, Name: name, AtPs: atPs})
}

// Counter records a sampled value at atPs; Perfetto renders successive
// samples of one (track, name) as a stepped area chart.
func (t *Tracer) Counter(track TrackID, name string, atPs int64, v float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Kind: KindCounter, Track: track, Name: name, AtPs: atPs, Value: v})
}

// AsyncBegin opens an overlapping span (a request lifecycle) keyed by
// id; AsyncEnd with the same name and id closes it. Unlike Span, many
// async spans of one name may be open on a track at once.
func (t *Tracer) AsyncBegin(track TrackID, name string, id uint64, atPs int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Kind: KindAsyncBegin, Track: track, Name: name, AtPs: atPs, ID: id})
}

// AsyncEnd closes the async span opened by AsyncBegin(name, id).
func (t *Tracer) AsyncEnd(track TrackID, name string, id uint64, atPs int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Kind: KindAsyncEnd, Track: track, Name: name, AtPs: atPs, ID: id})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events exposes the recorded events in emission order. The slice is
// owned by the Tracer; callers must not modify it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Tracks returns the track names in creation order (index == TrackID).
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	return t.names
}

// Slice returns a new Tracer holding the events that overlap the
// simulated-time window [fromPs, toPs] — the flight recorder's scoped
// incident export. Every track is carried over (IDs stay valid), spans
// are kept whole whenever any part of them overlaps the window
// (timestamps are never clipped or rewritten, so the slice stays
// byte-faithful to the original), and emission order is preserved. On a
// nil Tracer it returns nil.
func (t *Tracer) Slice(fromPs, toPs int64) *Tracer {
	if t == nil {
		return nil
	}
	out := New()
	for _, name := range t.names {
		out.Track(name)
	}
	for _, e := range t.events {
		end := e.AtPs
		if e.Kind == KindSpan {
			end += e.DurPs
		}
		if end < fromPs || e.AtPs > toPs {
			continue
		}
		out.events = append(out.events, e)
	}
	return out
}
