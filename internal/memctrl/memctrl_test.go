package memctrl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/stats"
)

func newCtl(t *testing.T) (*Controller, *dram.PlainDIMM) {
	t.Helper()
	d, err := dram.NewPlainDIMM(dram.SmallGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), d), d
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := newCtl(t)
	want := bytes.Repeat([]byte{0x5A}, 64)
	if _, err := c.Write(0x1000, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := c.Read(0x1000, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read did not observe queued write (drain-on-conflict broken)")
	}
	st := c.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Drains != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteCoalescing(t *testing.T) {
	c, _ := newCtl(t)
	c.Write(0x2000, 0, bytes.Repeat([]byte{1}, 64))
	c.Write(0x2000, 0, bytes.Repeat([]byte{2}, 64))
	if c.PendingWrites() != 1 {
		t.Fatalf("pending = %d, want coalesced 1", c.PendingWrites())
	}
	got := make([]byte, 64)
	c.Read(0x2000, 0, got)
	if got[0] != 2 {
		t.Fatal("coalesced write lost the newer data")
	}
}

func TestWriteBatching(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DrainThreshold = 8
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	c := New(cfg, d)
	buf := bytes.Repeat([]byte{7}, 64)
	for i := 0; i < 7; i++ {
		c.Write(uint64(i)*64, 0, buf)
	}
	if c.Stats().Writes != 0 {
		t.Fatal("writes issued before threshold")
	}
	c.Write(7*64, 0, buf)
	if c.Stats().Writes != 8 || c.PendingWrites() != 0 {
		t.Fatalf("threshold drain broken: %+v pending=%d", c.Stats(), c.PendingWrites())
	}
}

func TestRowHitVsConflictTiming(t *testing.T) {
	c, _ := newCtl(t)
	buf := make([]byte, 64)

	// First access to a closed bank: row miss.
	c.Read(0, 0, buf)
	// Same row: hit.
	c.Read(64, 0, buf)
	st := c.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
	// Same bank, different row: conflict. SmallGeometry row stride:
	// cols(128) * bg(4) * ba(4) * ranks(1) * 64B = 512KB.
	done1, _ := c.Read(0, 0, buf)
	done2, err := c.Read(512<<10, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().RowConflict != 1 {
		t.Fatalf("conflict not counted: %+v", c.Stats())
	}
	tm := dram.DDR4_3200()
	if done2-done1 < int64(tm.TRP+tm.TRCD) {
		t.Fatalf("conflict latency %d cycles < tRP+tRCD", done2-done1)
	}
}

func TestReadLatencyIncludesCL(t *testing.T) {
	c, _ := newCtl(t)
	buf := make([]byte, 64)
	done, err := c.Read(0, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	tm := dram.DDR4_3200()
	want := int64(tm.TRCD + tm.CL + tm.TBL)
	if done < want {
		t.Fatalf("cold read done at %d, want >= %d", done, want)
	}
}

func TestTraceRecordsCAS(t *testing.T) {
	c, _ := newCtl(t)
	tr := &stats.CASTrace{}
	c.Trace = tr
	buf := make([]byte, 64)
	c.Read(0, 3, buf)
	c.Write(64, 4, buf)
	c.DrainWrites()
	if tr.Reads() != 1 || tr.Writes() != 1 {
		t.Fatalf("trace %d/%d", tr.Reads(), tr.Writes())
	}
	if tr.Events[0].Core != 3 || tr.Events[1].Core != 4 {
		t.Fatal("core attribution lost")
	}
	if tr.Events[1].AtPs <= tr.Events[0].AtPs {
		t.Fatal("trace times not increasing")
	}
}

func TestBandwidthMeter(t *testing.T) {
	c, _ := newCtl(t)
	m := &stats.BandwidthMeter{}
	c.Meter = m
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		c.Read(uint64(i)*64, 0, buf)
	}
	if m.TotalBytes() != 640 {
		t.Fatalf("meter bytes = %d", m.TotalBytes())
	}
}

// alertModule wraps a module, asserting ALERT_N for the first n reads of
// a marked address (the SmartDIMM S13 path).
type alertModule struct {
	dram.Module
	alertAddr  uint64
	alertsLeft int
	sawRetries int
}

func (a *alertModule) HandleCommand(cycle int64, cmd dram.Command, wdata, rdata []byte) (bool, error) {
	if cmd.Kind == dram.CmdRd {
		phys := a.Module.Mapper().Encode(cmd.Rank, cmd.BG, cmd.BA, cmd.Row, cmd.Col)
		if phys == a.alertAddr && a.alertsLeft > 0 {
			a.alertsLeft--
			a.sawRetries++
			return true, nil
		}
	}
	return a.Module.HandleCommand(cycle, cmd, wdata, rdata)
}

func TestAlertRetry(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	am := &alertModule{Module: d, alertAddr: 0x40, alertsLeft: 3}
	cfg := DefaultConfig()
	c := New(cfg, am)

	buf := make([]byte, 64)
	done, err := c.Read(0x40, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Alerts != 3 {
		t.Fatalf("alerts = %d, want 3", c.Stats().Alerts)
	}
	// Backoff doubles per retry: base + 2*base + 4*base before success.
	if done < 7*int64(cfg.AlertRetryCycles) {
		t.Fatalf("backoff penalty not applied: done=%d", done)
	}
}

// TestAlertBackoffCurve pins the exact retry schedule: gaps between
// successive rdCAS reissues must double from the base until the cap.
func TestAlertBackoffCurve(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	am := &alertModule{Module: d, alertAddr: 0x40, alertsLeft: 5}
	cfg := DefaultConfig()
	cfg.AlertRetryCycles = 10
	cfg.AlertBackoffCapCycles = 40
	c := New(cfg, am)
	tr := &stats.CASTrace{}
	c.Trace = tr

	if _, err := c.Read(0x40, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 6 { // 5 alerted attempts + success
		t.Fatalf("CAS reissues = %d, want 6", len(tr.Events))
	}
	tck := cfg.Timing.TCKps
	wantGaps := []int64{10, 20, 40, 40, 40} // base<<k capped at 40
	for i, want := range wantGaps {
		gap := (tr.Events[i+1].AtPs - tr.Events[i].AtPs) / tck
		if gap != want {
			t.Fatalf("retry %d gap = %d cycles, want %d", i, gap, want)
		}
	}
}

func TestAlertRetryLimit(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	am := &alertModule{Module: d, alertAddr: 0x40, alertsLeft: 1 << 30}
	cfg := DefaultConfig()
	cfg.MaxAlertRetries = 4
	c := New(cfg, am)
	_, err := c.Read(0x40, 0, make([]byte, 64))
	if err == nil {
		t.Fatal("endless ALERT_N should error out")
	}
	if !errors.Is(err, ErrAlertRetryExhausted) {
		t.Fatalf("error %v is not ErrAlertRetryExhausted", err)
	}
}

// TestCRCInjectionRetries arms the memctrl.crc site: one injected CRC
// failure must retry transparently and still return correct data.
func TestCRCInjectionRetries(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	c := New(DefaultConfig(), d)
	inj := fault.New(11)
	inj.Arm("memctrl.crc", fault.OneShot{N: 1})
	c.Faults = inj

	want := bytes.Repeat([]byte{0xC3}, 64)
	if _, err := c.Write(0x80, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if _, err := c.Read(0x80, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted across CRC retry")
	}
	st := c.Stats()
	if st.CRCRetries != 1 || st.Alerts != 1 {
		t.Fatalf("CRC retry accounting: %+v", st)
	}
}

// TestDramAlertInjection arms the dram.alert site on a plain DIMM: the
// controller must absorb the spurious ALERT_N and complete the read.
func TestDramAlertInjection(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	inj := fault.New(12)
	inj.Arm("dram.alert", fault.OneShot{N: 1})
	d.Faults = inj
	c := New(DefaultConfig(), d)
	if _, err := c.Read(0, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Alerts != 1 {
		t.Fatalf("alerts = %d, want 1 injected", c.Stats().Alerts)
	}
}

// errWriteModule fails the wrCAS of one marked address.
type errWriteModule struct {
	dram.Module
	badAddr uint64
}

func (m *errWriteModule) HandleCommand(cycle int64, cmd dram.Command, wdata, rdata []byte) (bool, error) {
	if cmd.Kind == dram.CmdWr {
		phys := m.Module.Mapper().Encode(cmd.Rank, cmd.BG, cmd.BA, cmd.Row, cmd.Col)
		if phys == m.badAddr {
			return false, fmt.Errorf("injected wrCAS failure at %#x", phys)
		}
	}
	return m.Module.HandleCommand(cycle, cmd, wdata, rdata)
}

// TestDrainAbortKeepsQueueConsistent: a mid-batch write failure must not
// poison the queue — issued and failed entries leave, the tail stays and
// drains cleanly afterwards.
func TestDrainAbortKeepsQueueConsistent(t *testing.T) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	m := &errWriteModule{Module: d, badAddr: 0x40}
	c := New(DefaultConfig(), m)
	buf := bytes.Repeat([]byte{9}, 64)
	c.Write(0x00, 0, buf)
	c.Write(0x40, 0, buf) // will fail
	c.Write(0x80, 0, buf)
	if _, err := c.DrainWrites(); err == nil {
		t.Fatal("drain should surface the wrCAS failure")
	}
	if c.PendingWrites() != 1 {
		t.Fatalf("pending after aborted drain = %d, want 1 (unattempted tail)", c.PendingWrites())
	}
	if _, err := c.DrainWrites(); err != nil {
		t.Fatalf("tail drain failed: %v", err)
	}
	if c.Stats().Writes != 2 {
		t.Fatalf("writes = %d, want 2 issued", c.Stats().Writes)
	}
}

func TestBusTurnaroundCounted(t *testing.T) {
	c, _ := newCtl(t)
	buf := make([]byte, 64)
	c.Read(0, 0, buf)
	c.Write(64, 0, buf)
	c.DrainWrites()
	c.Read(128, 0, buf)
	if c.Stats().Turnarounds < 2 {
		t.Fatalf("turnarounds = %d, want >= 2", c.Stats().Turnarounds)
	}
}

func TestReadWriteSlackExceedsOneMicrosecond(t *testing.T) {
	// §IV-D: the gap between the first sbuf rdCAS and the first dbuf
	// wrCAS exceeds 1us on the testbed; the model's WPQ policy must
	// reproduce that.
	c, _ := newCtl(t)
	slackPs := c.CycleToPs(c.ReadWriteSlackCycles())
	if slackPs < 100_000 { // >= 0.1us analytically...
		t.Fatalf("analytic slack %d ps implausibly small", slackPs)
	}
	// Measured: stream reads of one page while writing another; compare
	// first rdCAS and first wrCAS timestamps.
	tr := &stats.CASTrace{}
	c.Trace = tr
	buf := make([]byte, 64)
	for i := 0; i < 64; i++ {
		c.Read(uint64(i)*64, 0, buf)
		c.Write(1<<20+uint64(i)*64, 0, buf)
	}
	c.DrainWrites()
	var firstRd, firstWr int64 = -1, -1
	for _, ev := range tr.Events {
		if ev.Kind == stats.RdCAS && firstRd == -1 {
			firstRd = ev.AtPs
		}
		if ev.Kind == stats.WrCAS && firstWr == -1 {
			firstWr = ev.AtPs
		}
	}
	if firstRd == -1 || firstWr == -1 {
		t.Fatal("missing CAS events")
	}
	slack := firstWr - firstRd
	if slack < 200_000 { // 0.2us in the reduced model; >1us on silicon
		t.Fatalf("measured rd->wr slack %d ps too small", slack)
	}
}

func TestAdvanceToMonotonic(t *testing.T) {
	c, _ := newCtl(t)
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatal("AdvanceTo failed")
	}
	c.AdvanceTo(50)
	if c.Now() != 100 {
		t.Fatal("AdvanceTo went backward")
	}
	if c.NowPs() != 100*dram.DDR4_3200().TCKps {
		t.Fatal("NowPs conversion")
	}
}

func TestShortWriteRejected(t *testing.T) {
	c, _ := newCtl(t)
	if _, err := c.Write(0, 0, make([]byte, 10)); err == nil {
		t.Fatal("short write accepted")
	}
}

func BenchmarkStreamRead(b *testing.B) {
	d, _ := dram.NewPlainDIMM(dram.SmallGeometry())
	c := New(DefaultConfig(), d)
	buf := make([]byte, 64)
	cap := dram.SmallGeometry().CapacityBytes()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(uint64(i)*64%cap, 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}
