// Package memctrl models a DDR4 memory controller for one channel: bank
// state tracking with open-page policy, activate/precharge scheduling,
// CAS-to-CAS and bus-turnaround spacing, a batched write-pending queue,
// and ALERT_N retry handling.
//
// Three behaviours matter to the paper and are modelled explicitly:
//
//  1. Write batching: stores drain to the DIMM in batches, so the first
//     wrCAS of a destination buffer trails the first rdCAS of its source
//     buffer by well over a microsecond (§IV-D) — the slack that lets
//     the DSA finish a cacheline before its result is needed.
//  2. ALERT_N: when the DIMM (SmartDIMM, S13 in Fig. 6) signals that a
//     rdCAS hit a cacheline whose computation is pending, the controller
//     retries the read under capped exponential backoff, and surfaces
//     ErrAlertRetryExhausted once the retry budget is spent.
//  3. No store-to-load forwarding: a read that matches a queued write
//     forces a drain instead of forwarding. For SmartDIMM destination
//     buffers forwarding would return the untransformed copy; draining
//     preserves the paper's semantics (flush + read observes the DIMM).
package memctrl

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// ErrAlertRetryExhausted is returned (wrapped, with the address) when a
// read burns through its whole ALERT_N/CRC retry budget without the DIMM
// ever answering cleanly. Callers match it with errors.Is.
var ErrAlertRetryExhausted = errors.New("memctrl: ALERT_N retry budget exhausted")

// Request directions for statistics.
const (
	dirNone = iota
	dirRead
	dirWrite
)

// Config tunes the controller model.
type Config struct {
	Timing dram.Timing
	// WriteQueueDepth is the write-pending-queue capacity; the queue
	// drains when DrainThreshold is reached (high-water-mark policy).
	WriteQueueDepth int
	DrainThreshold  int
	// AlertRetryCycles is the backoff base: retry k of a rdCAS answered
	// with ALERT_N (or failing CRC) waits min(AlertRetryCycles<<k,
	// AlertBackoffCapCycles) cycles before reissuing.
	AlertRetryCycles int
	// AlertBackoffCapCycles caps the exponential backoff; 0 defaults to
	// 8x the base.
	AlertBackoffCapCycles int
	// MaxAlertRetries bounds retries before giving up with
	// ErrAlertRetryExhausted.
	MaxAlertRetries int
}

// DefaultConfig returns a DDR4-3200 controller with a 64-entry WPQ
// draining at 48 (values in the range of Skylake-SP documentation).
func DefaultConfig() Config {
	return Config{
		Timing:           dram.DDR4_3200(),
		WriteQueueDepth:  64,
		DrainThreshold:   48,
		AlertRetryCycles: 100,
		MaxAlertRetries:  64,
	}
}

// CommandRoundTripPs returns the controller<->device command round trip
// in picoseconds: an activate, the CAS latency, and the ALERT_N retry
// base — the shortest interval across which the memory domain can react
// to a command. The sharded engine's conservative lookahead derivation
// uses it as a floor: no cross-shard interaction in this model resolves
// faster than a command/ALERT exchange on the DRAM bus.
func (c Config) CommandRoundTripPs() int64 {
	cycles := int64(c.Timing.TRCD+c.Timing.CL) + int64(c.AlertRetryCycles)
	return cycles * c.Timing.TCKps
}

// Stats aggregates controller activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64 // closed bank (ACT only)
	RowConflict uint64 // wrong row open (PRE+ACT)
	Alerts      uint64
	CRCRetries  uint64 // injected write-CRC / read-CRC faults retried
	Drains      uint64 // write-queue drain events
	Turnarounds uint64 // bus direction switches
	BusyCycles  int64  // data-bus occupied cycles
}

type bankState struct {
	openRow    int32
	readyCycle int64 // earliest next command issue for this bank
	actCycle   int64 // time of last ACT, for tRAS
}

type pendingWrite struct {
	addr  uint64
	core  int
	data  [dram.CachelineSize]byte
	atCyc int64
}

// Controller drives one dram.Module (one channel).
type Controller struct {
	cfg      Config
	mod      dram.Module
	banks    []bankState
	wq       []pendingWrite
	now      int64 // controller clock, DRAM cycles
	busDir   int
	busReady int64
	st       Stats
	// Trace, when non-nil, records every CAS issued on the channel.
	Trace *stats.CASTrace
	// Meter, when non-nil, accounts data-bus bytes for bandwidth stats.
	Meter *stats.BandwidthMeter
	// Faults, when non-nil, injects CRC errors at site "memctrl.crc":
	// a fired consultation makes the rdCAS data transfer fail its CRC
	// check and retry through the same backoff path as ALERT_N.
	Faults *fault.Injector
	// Tracer, when non-nil, records write-queue drain spans and
	// ALERT_N/CRC-retry instants on TraceTrack. Per-CAS paths are never
	// instrumented; the CAS view comes from Trace via ExportTo.
	Tracer     *telemetry.Tracer
	TraceTrack telemetry.TrackID
}

// New builds a controller over the module.
func New(cfg Config, mod dram.Module) *Controller {
	if cfg.WriteQueueDepth <= 0 {
		cfg.WriteQueueDepth = 64
	}
	if cfg.DrainThreshold <= 0 || cfg.DrainThreshold > cfg.WriteQueueDepth {
		cfg.DrainThreshold = cfg.WriteQueueDepth * 3 / 4
	}
	if cfg.AlertRetryCycles <= 0 {
		cfg.AlertRetryCycles = 100
	}
	if cfg.AlertBackoffCapCycles <= 0 {
		cfg.AlertBackoffCapCycles = cfg.AlertRetryCycles * 8
	}
	if cfg.MaxAlertRetries <= 0 {
		cfg.MaxAlertRetries = 64
	}
	geo := mod.Mapper().Geometry()
	banks := make([]bankState, geo.TotalBanks())
	for i := range banks {
		banks[i].openRow = -1
	}
	return &Controller{cfg: cfg, mod: mod, banks: banks}
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.st }

// Collect implements telemetry.Collector.
func (s Stats) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "reads", Value: float64(s.Reads)})
	emit(telemetry.Sample{Name: "writes", Value: float64(s.Writes)})
	emit(telemetry.Sample{Name: "row_hits", Value: float64(s.RowHits)})
	emit(telemetry.Sample{Name: "row_misses", Value: float64(s.RowMisses)})
	emit(telemetry.Sample{Name: "row_conflicts", Value: float64(s.RowConflict)})
	emit(telemetry.Sample{Name: "alerts", Value: float64(s.Alerts)})
	emit(telemetry.Sample{Name: "crc_retries", Value: float64(s.CRCRetries)})
	emit(telemetry.Sample{Name: "drains", Value: float64(s.Drains)})
	emit(telemetry.Sample{Name: "turnarounds", Value: float64(s.Turnarounds)})
	emit(telemetry.Sample{Name: "busy_cycles", Value: float64(s.BusyCycles)})
}

// Now returns the controller clock in DRAM cycles.
func (c *Controller) Now() int64 { return c.now }

// NowPs returns the controller clock in picoseconds.
func (c *Controller) NowPs() int64 { return c.now * c.cfg.Timing.TCKps }

// CycleToPs converts controller cycles to picoseconds.
func (c *Controller) CycleToPs(cyc int64) int64 { return cyc * c.cfg.Timing.TCKps }

// AdvanceTo moves the controller clock forward (never backward).
func (c *Controller) AdvanceTo(cycle int64) {
	if cycle > c.now {
		c.now = cycle
	}
}

// PendingWrites returns the current write-queue depth.
func (c *Controller) PendingWrites() int { return len(c.wq) }

// WriteQueuePressure returns the write-pending-queue occupancy as a
// fraction of its capacity, a cheap congestion signal the fleet's
// least-loaded placement policy folds into its per-device score.
func (c *Controller) WriteQueuePressure() float64 {
	return float64(len(c.wq)) / float64(c.cfg.WriteQueueDepth)
}

// prepareBank issues PRE/ACT as needed and returns the cycle at which a
// CAS to (cmd) may issue, updating bank state.
func (c *Controller) prepareBank(cmd dram.Command) (int64, error) {
	t := c.cfg.Timing
	idx := c.mod.Mapper().BankIndex(cmd.Rank, cmd.BG, cmd.BA)
	b := &c.banks[idx]
	at := c.now
	if b.readyCycle > at {
		at = b.readyCycle
	}
	switch {
	case b.openRow == int32(cmd.Row):
		c.st.RowHits++
	case b.openRow == -1:
		c.st.RowMisses++
		act := cmd
		act.Kind = dram.CmdACT
		if _, err := c.mod.HandleCommand(at, act, nil, nil); err != nil {
			return 0, err
		}
		b.actCycle = at
		at += int64(t.TRCD)
		b.openRow = int32(cmd.Row)
	default:
		c.st.RowConflict++
		// Respect tRAS before precharging.
		if min := b.actCycle + int64(t.TRAS); at < min {
			at = min
		}
		pre := cmd
		pre.Kind = dram.CmdPRE
		if _, err := c.mod.HandleCommand(at, pre, nil, nil); err != nil {
			return 0, err
		}
		at += int64(t.TRP)
		act := cmd
		act.Kind = dram.CmdACT
		if _, err := c.mod.HandleCommand(at, act, nil, nil); err != nil {
			return 0, err
		}
		b.actCycle = at
		at += int64(t.TRCD)
		b.openRow = int32(cmd.Row)
	}
	return at, nil
}

// reserveBus accounts bus occupancy and turnaround, returning the CAS
// issue cycle for a burst starting no earlier than at.
func (c *Controller) reserveBus(at int64, dir int) int64 {
	t := c.cfg.Timing
	if at < c.busReady {
		at = c.busReady
	}
	if c.busDir != dirNone && c.busDir != dir {
		c.st.Turnarounds++
		if dir == dirWrite {
			at += int64(t.TRTW)
		} else {
			at += int64(t.TWTR)
		}
	}
	c.busDir = dir
	c.busReady = at + int64(t.TCCD)
	c.st.BusyCycles += int64(t.TBL)
	return at
}

// Read fetches the 64-byte cacheline at addr. It returns the cycle at
// which data is available. A queued write to the same line forces a
// drain first (no forwarding; see package comment).
func (c *Controller) Read(addr uint64, core int, dst []byte) (int64, error) {
	line := addr &^ (dram.CachelineSize - 1)
	for _, w := range c.wq {
		if w.addr == line {
			if _, err := c.DrainWrites(); err != nil {
				return 0, err
			}
			break
		}
	}
	cmd, err := c.mod.Mapper().Decode(line)
	if err != nil {
		return 0, err
	}
	cmd.Kind = dram.CmdRd
	cmd.Core = core

	at, err := c.prepareBank(cmd)
	if err != nil {
		return 0, err
	}
	at = c.reserveBus(at, dirRead)

	t := c.cfg.Timing
	for attempt := 0; ; attempt++ {
		alert, err := c.mod.HandleCommand(at, cmd, nil, dst)
		if err != nil {
			return 0, err
		}
		c.recordCAS(at, stats.RdCAS, line, core)
		if !alert && c.Faults.Fire("memctrl.crc", at) {
			// Injected CRC failure on the data burst: the line must be
			// refetched, through the same backoff schedule as ALERT_N.
			c.st.CRCRetries++
			alert = true
		}
		if !alert {
			done := at + int64(t.CL) + int64(t.TBL)
			c.bankDone(cmd, at)
			c.st.Reads++
			if c.Meter != nil {
				c.Meter.Record(c.CycleToPs(done), dram.CachelineSize)
			}
			c.now = maxI64(c.now, at)
			return done, nil
		}
		c.st.Alerts++
		c.Tracer.Instant(c.TraceTrack, "ALERT_N", c.CycleToPs(at))
		if attempt >= c.cfg.MaxAlertRetries {
			return 0, fmt.Errorf("%w: %#x after %d retries",
				ErrAlertRetryExhausted, addr, attempt)
		}
		at += c.backoffCycles(attempt)
	}
}

// backoffCycles returns the wait before retry number attempt (0-based):
// base<<attempt, capped.
func (c *Controller) backoffCycles(attempt int) int64 {
	d := int64(c.cfg.AlertRetryCycles)
	cap := int64(c.cfg.AlertBackoffCapCycles)
	if attempt > 62 {
		return cap
	}
	d <<= uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	return d
}

// Write enqueues a 64-byte store. The queue drains at the high-water
// mark. The returned cycle is when the store was accepted (posted).
func (c *Controller) Write(addr uint64, core int, src []byte) (int64, error) {
	line := addr &^ (dram.CachelineSize - 1)
	if len(src) < dram.CachelineSize {
		return 0, fmt.Errorf("memctrl: short write buffer")
	}
	// Coalesce with an existing queued write to the same line.
	for i := range c.wq {
		if c.wq[i].addr == line {
			copy(c.wq[i].data[:], src)
			return c.now, nil
		}
	}
	var pw pendingWrite
	pw.addr = line
	pw.core = core
	pw.atCyc = c.now
	copy(pw.data[:], src)
	c.wq = append(c.wq, pw)
	if len(c.wq) >= c.cfg.DrainThreshold {
		if _, err := c.DrainWrites(); err != nil {
			return 0, err
		}
	}
	return c.now, nil
}

// DrainWrites issues every queued write to the DIMM, returning the cycle
// at which the last burst completes.
func (c *Controller) DrainWrites() (int64, error) {
	if len(c.wq) == 0 {
		return c.now, nil
	}
	c.st.Drains++
	startCyc := c.now
	t := c.cfg.Timing
	var last int64
	for i, w := range c.wq {
		// On any error, drop the writes already issued plus the failing
		// one so the queue is not poisoned: a later drain must not
		// re-issue half the batch or retry a write the DIMM rejected.
		cmd, err := c.mod.Mapper().Decode(w.addr)
		if err != nil {
			c.dropDrained(i)
			return 0, err
		}
		cmd.Kind = dram.CmdWr
		cmd.Core = w.core
		at, err := c.prepareBank(cmd)
		if err != nil {
			c.dropDrained(i)
			return 0, err
		}
		at = c.reserveBus(at, dirWrite)
		if _, err := c.mod.HandleCommand(at, cmd, w.data[:], nil); err != nil {
			c.dropDrained(i)
			return 0, err
		}
		c.recordCAS(at, stats.WrCAS, w.addr, w.core)
		done := at + int64(t.CWL) + int64(t.TBL)
		c.bankDone(cmd, at)
		c.st.Writes++
		if c.Meter != nil {
			c.Meter.Record(c.CycleToPs(done), dram.CachelineSize)
		}
		if done > last {
			last = done
		}
		c.now = maxI64(c.now, at)
	}
	c.wq = c.wq[:0]
	if c.Tracer != nil && last > startCyc {
		c.Tracer.Span(c.TraceTrack, "drain", c.CycleToPs(startCyc), c.CycleToPs(last-startCyc))
	}
	return last, nil
}

// dropDrained removes queue entries 0..i (issued or failed) after a
// drain aborts mid-batch, keeping the not-yet-attempted tail.
func (c *Controller) dropDrained(i int) {
	n := copy(c.wq, c.wq[i+1:])
	c.wq = c.wq[:n]
}

// bankDone updates per-bank availability after a CAS at cycle at.
func (c *Controller) bankDone(cmd dram.Command, at int64) {
	idx := c.mod.Mapper().BankIndex(cmd.Rank, cmd.BG, cmd.BA)
	b := &c.banks[idx]
	next := at + int64(c.cfg.Timing.TCCD)
	if cmd.Kind == dram.CmdWr {
		next = at + int64(c.cfg.Timing.TWR)
	}
	if next > b.readyCycle {
		b.readyCycle = next
	}
}

func (c *Controller) recordCAS(at int64, kind stats.CASKind, addr uint64, core int) {
	if c.Trace != nil {
		c.Trace.Record(stats.CASEvent{
			AtPs: c.CycleToPs(at), Kind: kind, PhysAddr: addr, Core: core,
		})
	}
}

// ReadWriteSlackCycles estimates the controller-induced gap between a
// read stream's first rdCAS and the corresponding writes' first wrCAS:
// the queue must fill to the drain threshold before any wrCAS issues,
// plus the bus turnaround (§IV-D micro-experiment).
func (c *Controller) ReadWriteSlackCycles() int64 {
	t := c.cfg.Timing
	// Each queued write was produced by roughly one read burst: the gap
	// is DrainThreshold bursts of read traffic plus the turnaround.
	return int64(c.cfg.DrainThreshold)*int64(t.TCCD) + int64(t.TRTW)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
