// Sharded single-run parallelism: a Sharded cluster partitions one
// serving simulation across a sim.ShardedEngine so a single run uses
// every core (ROADMAP item 1). Shard 0 is the NIC/client front-end — the
// closed-loop generator and the dispatch fabric; shards 1..K each own a
// complete, disjoint sub-system: RanksPerShard SmartDIMM ranks behind
// their own memory controllers, LLC slice, drivers, per-shard fleet
// backend, server worker pool, RNG stream, fault injector, and tracer.
//
// The only cross-shard interaction is the request/response exchange with
// the front-end, which crosses shards through ShardedEngine.Send at
// DispatchPs — the one-way NIC wire latency. DispatchPs is therefore the
// cluster's conservative lookahead window; DeriveDispatchPs derives it
// from the calibration parameters (half the in-rack RTT) floored at the
// slowest-resolving cross-domain latencies the model carries (the
// memory controller's command/ALERT round trip, the fleet's doorbell
// batch overhead), so shrinking the model's latencies can never silently
// break the conservative contract.
//
// Determinism: shard-local state is only ever touched by shard-local
// events, per-shard telemetry/fault/RNG streams are independent, and the
// engine's barrier merge is ordered (ps, shard, seq) — so traces,
// metrics dumps, and reports are byte-identical for any ExecWorkers and
// GOMAXPROCS setting (the shard determinism gates in ci.sh compare
// exactly this).
package fleet

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/memctrl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wrkgen"
)

// ShardedConfig assembles a sharded serving cluster.
type ShardedConfig struct {
	// Shards is the number of server shards (each with its own
	// sub-system); the NIC/client front-end adds one more engine shard.
	Shards int
	// RanksPerShard installs this many SmartDIMM ranks per shard behind
	// a per-shard fleet backend. Zero selects 1.
	RanksPerShard int
	// Policy is the per-shard fleet placement policy (default rr).
	Policy Policy
	// Workers is the per-shard server worker count (default 10).
	Workers int
	// MsgSize and Connections describe the workload; connections are
	// partitioned round-robin across shards (connection c lives on shard
	// c mod Shards), so Connections must be >= Shards.
	MsgSize     int
	Connections int
	FileKind    corpus.Kind
	Mode        server.Mode // zero value (PlainHTTP) is rejected; use HTTPSMode/CompressedHTTP
	Seed        int64

	// DispatchPs is the one-way front-end<->shard latency (NIC wire +
	// propagation). Zero derives it from Params (DeriveDispatchPs).
	DispatchPs int64
	// LookaheadPs is the conservative window; zero selects DispatchPs.
	// It must not exceed DispatchPs — Send rejects shorter crossings.
	LookaheadPs int64
	// ThinkPs is the client think time between a response and the next
	// request. The dispatch hops already charge a full RTT per request,
	// so the default is max(0, RTT - 2*DispatchPs).
	ThinkPs int64
	// ExecWorkers caps parallel epoch execution (ShardedEngine.Workers):
	// 0 = GOMAXPROCS, 1 = the serial reference schedule.
	ExecWorkers int

	// Params/LLCBytes/LLCWays/Geometry configure each sub-system; zero
	// values select the KPI-bench defaults (2MB 8-way LLC slice per
	// shard, small geometry).
	Params   *sim.Params
	LLCBytes int
	LLCWays  int
	Geometry dram.Geometry

	// Trace threads a per-shard tracer through every sub-system (and the
	// front-end); MergedTrace folds them into one stream after the run.
	Trace bool
	// Faults, when non-nil, is called once per server shard to build
	// that shard's fault injector (nil return leaves the shard clean).
	Faults func(shard int) *fault.Injector
}

// Sharded is the assembled cluster.
type Sharded struct {
	cfg     ShardedConfig
	eng     *sim.ShardedEngine
	systems []*sim.System
	fleets  []*Fleet
	servers []*server.Server
	gen     *wrkgen.Generator
	tracers []*telemetry.Tracer // index 0 = front-end, 1+s = shard s
	perConn []int               // connection count per shard

	dispTrack  telemetry.TrackID // fe-tracer lane for fabric spans
	dispatched uint64
}

// ShardedMetrics carries the aggregated and per-shard measurements of
// one Run. Aggregation happens in shard order with deterministic
// histogram merges, so a metrics dump is byte-stable.
type ShardedMetrics struct {
	Agg      server.Metrics
	PerShard []server.Metrics
	// Epochs/Sent/Processed summarize the engine's sharded execution.
	Epochs    uint64
	SentMsgs  uint64
	Processed uint64
}

// DeriveDispatchPs returns the one-way front-end->shard dispatch
// latency used as the conservative lookahead window: half the in-rack
// RTT, floored at the memory controller's command/ALERT round trip and
// the fleet's doorbell batch overhead — the slowest cross-domain
// latencies inside a shard's lookahead horizon. See DESIGN.md §14.
func DeriveDispatchPs(p sim.Params) int64 {
	d := int64(p.RTTUs * float64(sim.Us) / 2)
	if floor := memctrl.DefaultConfig().CommandRoundTripPs(); d < floor {
		d = floor
	}
	if floor := int64(120 * sim.Ns); d < floor { // default doorbell batch overhead
		d = floor
	}
	return d
}

// NewSharded builds the cluster: K+1 engine shards, K sub-systems, K
// servers, one generator.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: sharded cluster needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Connections < cfg.Shards {
		return nil, fmt.Errorf("fleet: %d connections across %d shards leaves an empty server", cfg.Connections, cfg.Shards)
	}
	if cfg.MsgSize <= 0 {
		return nil, fmt.Errorf("fleet: sharded cluster needs a message size")
	}
	if cfg.Mode == server.PlainHTTP {
		return nil, fmt.Errorf("fleet: sharded cluster serves ULP modes (https or http+deflate)")
	}
	if cfg.RanksPerShard <= 0 {
		cfg.RanksPerShard = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 10
	}
	params := sim.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	if cfg.DispatchPs <= 0 {
		cfg.DispatchPs = DeriveDispatchPs(params)
	}
	if cfg.LookaheadPs <= 0 {
		cfg.LookaheadPs = cfg.DispatchPs
	}
	if cfg.LookaheadPs > cfg.DispatchPs {
		return nil, fmt.Errorf("fleet: lookahead %dps exceeds dispatch latency %dps; the window must be a lower bound",
			cfg.LookaheadPs, cfg.DispatchPs)
	}
	if cfg.ThinkPs < 0 {
		cfg.ThinkPs = 0
	} else if cfg.ThinkPs == 0 {
		if rtt := int64(params.RTTUs * float64(sim.Us)); rtt > 2*cfg.DispatchPs {
			cfg.ThinkPs = rtt - 2*cfg.DispatchPs
		}
	}
	if cfg.LLCBytes == 0 {
		cfg.LLCBytes, cfg.LLCWays = 2<<20, 8
	}
	if cfg.Geometry.Ranks == 0 {
		cfg.Geometry = dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128}
	}

	sc := &Sharded{cfg: cfg}
	sc.eng = sim.NewShardedEngine(cfg.Shards+1, cfg.LookaheadPs)
	sc.eng.Workers = cfg.ExecWorkers
	sc.tracers = make([]*telemetry.Tracer, cfg.Shards+1)
	if cfg.Trace {
		sc.tracers[0] = telemetry.New()
		sc.eng.Shard(0).Tracer = sc.tracers[0]
		sc.dispTrack = sc.tracers[0].Track("dispatch")
	}
	sc.perConn = make([]int, cfg.Shards)
	for c := 0; c < cfg.Connections; c++ {
		sc.perConn[c%cfg.Shards]++
	}
	for s := 0; s < cfg.Shards; s++ {
		var tracer *telemetry.Tracer
		if cfg.Trace {
			tracer = telemetry.New()
			sc.tracers[1+s] = tracer
		}
		var inj *fault.Injector
		if cfg.Faults != nil {
			inj = cfg.Faults(s)
		}
		sys, err := sim.NewSystem(sim.SystemConfig{
			Params: params, LLCBytes: cfg.LLCBytes, LLCWays: cfg.LLCWays,
			Geometry:       cfg.Geometry,
			WithSmartDIMM:  true,
			SmartDIMMRanks: cfg.RanksPerShard,
			Tracer:         tracer,
			Faults:         inj,
			Engine:         sc.eng.Shard(1 + s),
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d system: %w", s, err)
		}
		fl, err := New(Config{Sys: sys, Policy: cfg.Policy})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d fleet: %w", s, err)
		}
		// Distinct per-shard seeds keep payloads and page-cache draws
		// independent streams, like distinct servers in a rack.
		srv, err := server.New(sys.Engine, server.Config{
			Sys: sys, Backend: fl, Mode: cfg.Mode, Workers: cfg.Workers,
			MsgSize: cfg.MsgSize, Connections: sc.perConn[s], FileKind: cfg.FileKind,
			Seed: cfg.Seed + int64(s)*100_003,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d server: %w", s, err)
		}
		sc.systems = append(sc.systems, sys)
		sc.fleets = append(sc.fleets, fl)
		sc.servers = append(sc.servers, srv)
	}
	sc.gen = wrkgen.New(sc.eng.Shard(0), sc, wrkgen.Config{
		Connections: cfg.Connections,
		ThinkPs:     cfg.ThinkPs,
	})
	return sc, nil
}

// Submit implements wrkgen.Target on the front-end shard: the request
// crosses to its connection's home shard over the dispatch fabric, and
// the completion crosses back — each hop one DispatchPs, together the
// wire RTT every request pays. With tracing on, the front-end wraps the
// whole crossing in a "creq" async lifecycle and records each fabric
// hop as a "dispatch" span, so the critical-path analyzer can attribute
// dispatch-fabric wait across shards (profile.Options.ShardAware). Both
// the forward emission and the retroactive return-hop emission run on
// shard 0 events, keeping the fe tracer single-writer.
func (sc *Sharded) Submit(connID int, done func()) {
	s := connID % sc.cfg.Shards
	local := connID / sc.cfg.Shards
	srv := sc.servers[s]
	sc.dispatched++
	id := sc.dispatched
	tr := sc.tracers[0]
	fe := sc.eng.Shard(0)
	tr.AsyncBegin(sc.dispTrack, "creq", id, fe.Now())
	tr.Span(sc.dispTrack, "dispatch", fe.Now(), sc.cfg.DispatchPs)
	sc.eng.Send(0, 1+s, sc.cfg.DispatchPs, func() {
		srv.Submit(local, func() {
			sc.eng.Send(1+s, 0, sc.cfg.DispatchPs, func() {
				tr.Span(sc.dispTrack, "dispatch", fe.Now()-sc.cfg.DispatchPs, sc.cfg.DispatchPs)
				tr.AsyncEnd(sc.dispTrack, "creq", id, fe.Now())
				done()
			})
		})
	})
}

// Engine exposes the sharded engine (shard 0 is the front-end).
func (sc *Sharded) Engine() *sim.ShardedEngine { return sc.eng }

// Generator exposes the front-end's closed-loop generator.
func (sc *Sharded) Generator() *wrkgen.Generator { return sc.gen }

// Servers exposes the per-shard server models in shard order.
func (sc *Sharded) Servers() []*server.Server { return sc.servers }

// Systems exposes the per-shard sub-systems in shard order.
func (sc *Sharded) Systems() []*sim.System { return sc.systems }

// Fleets exposes the per-shard fleet backends in shard order.
func (sc *Sharded) Fleets() []*Fleet { return sc.fleets }

// Dispatched returns how many requests crossed the dispatch fabric.
func (sc *Sharded) Dispatched() uint64 { return sc.dispatched }

// Run drives the standard measurement protocol: warm up, snapshot every
// shard's counters, measure, aggregate. It returns the aggregated and
// per-shard metrics; a request-processing error on any shard fails the
// run (shard order picks the reported one deterministically).
func (sc *Sharded) Run(warmupPs, measurePs int64) (ShardedMetrics, error) {
	sc.gen.Start()
	sc.eng.RunUntil(warmupPs)
	for _, srv := range sc.servers {
		srv.BeginMeasurement()
	}
	sc.gen.BeginMeasurement()
	sc.eng.RunUntil(warmupPs + measurePs)
	var sm ShardedMetrics
	for s, srv := range sc.servers {
		if err := srv.LastError(); err != nil {
			return sm, fmt.Errorf("fleet: shard %d: %w", s, err)
		}
		sm.PerShard = append(sm.PerShard, srv.Collect())
	}
	sm.Agg = sc.aggregate(sm.PerShard)
	sm.Epochs = sc.eng.Epochs()
	sm.SentMsgs = sc.eng.Sent()
	sm.Processed = sc.eng.Processed()
	return sm, nil
}

// aggregate folds per-shard metrics into cluster totals in shard order.
func (sc *Sharded) aggregate(per []server.Metrics) server.Metrics {
	var agg server.Metrics
	agg.Latency.SetBounded()
	var latWeight int64
	for i := range per {
		m := &per[i]
		agg.Requests += m.Requests
		agg.CPUBusyPs += m.CPUBusyPs
		agg.DeviceBusyPs += m.DeviceBusyPs
		agg.MemBytes += m.MemBytes
		agg.TXBytes += m.TXBytes
		agg.Errors += m.Errors
		if m.ElapsedPs > agg.ElapsedPs {
			agg.ElapsedPs = m.ElapsedPs
		}
		for s := range m.StagePs {
			agg.StagePs[s] += m.StagePs[s]
		}
		latWeight += m.MeanLatPs * int64(m.Requests)
		agg.Latency.Merge(&m.Latency)
	}
	if agg.ElapsedPs > 0 {
		agg.RPS = float64(agg.Requests) / (float64(agg.ElapsedPs) * 1e-12)
		agg.CPUUtil = float64(agg.CPUBusyPs) /
			(float64(len(per)*sc.cfg.Workers) * float64(agg.ElapsedPs))
		agg.MemBWGBps = float64(agg.MemBytes) / (float64(agg.ElapsedPs) * 1e-12) / 1e9
	}
	if agg.Requests > 0 {
		agg.MeanLatPs = latWeight / int64(agg.Requests)
	}
	return agg
}

// MergedTrace folds the per-shard tracers into one deterministic stream
// ("fe/" for the front-end, "s<N>/" per shard); nil when Trace was off.
func (sc *Sharded) MergedTrace() *telemetry.Tracer {
	if !sc.cfg.Trace {
		return nil
	}
	prefixes := make([]string, len(sc.tracers))
	prefixes[0] = "fe/"
	for s := 1; s < len(prefixes); s++ {
		prefixes[s] = fmt.Sprintf("s%d/", s-1)
	}
	return telemetry.MergeShards(prefixes, sc.tracers)
}

// RegisterMetrics registers the cluster topology ("sim.shards", engine
// aggregates) plus every shard's sub-system aggregates under
// "shard<N>.*" — the whole cluster, not shard 0 alone.
func (sc *Sharded) RegisterMetrics(reg *telemetry.Registry) {
	reg.Register("sim", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Name: "shards", Value: float64(len(sc.systems))})
		emit(telemetry.Sample{Name: "lookahead_ps", Value: float64(sc.eng.Lookahead())})
		emit(telemetry.Sample{Name: "epochs", Value: float64(sc.eng.Epochs())})
		emit(telemetry.Sample{Name: "cross_shard_msgs", Value: float64(sc.eng.Sent())})
		emit(telemetry.Sample{Name: "events", Value: float64(sc.eng.Processed())})
		emit(telemetry.Sample{Name: "dispatched", Value: float64(sc.dispatched)})
	}))
	for s, sys := range sc.systems {
		sys.RegisterMetricsPrefixed(reg, fmt.Sprintf("shard%d", s))
		reg.Register(fmt.Sprintf("shard%d.fleet", s), sc.fleets[s].Totals())
	}
}
