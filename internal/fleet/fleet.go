// Package fleet orchestrates several SmartDIMM buffer devices — one per
// rank, spread across memory channels — behind a single offload.Backend.
// The paper evaluates one rank, but its target platform carries 6 DIMMs
// (12 ranks) per socket, each rank's buffer device an independent
// accelerator; the fleet shards CompCpy work across them.
//
// Responsibilities:
//
//   - Placement: pluggable policies decide each connection's home device
//     (round-robin, least-loaded, channel-affinity, sticky hashing) and
//     when to migrate it.
//   - Submission: per-device queues with descriptor batching model the
//     doorbell path; occupancy serializes requests on their home device,
//     which is what makes device count a throughput lever.
//   - Admission control: a saturated device sheds connections to
//     siblings (buffers migrate with them) instead of queueing
//     unboundedly; if every device is saturated the caller backpressures.
//   - Failure: a member whose offloads collapse to the CPU fallback
//     rung trips a per-member breaker — its connections drain and
//     reshard across survivors, and the member may be re-admitted after
//     a cooldown. With no survivors, connections go "homeless" and run
//     entirely on the CPU software rung (offload.SmartDIMM Soft mode).
//
// The fleet is deterministic: identical seeds and request streams yield
// byte-identical placement traces regardless of GOMAXPROCS, because all
// state is owned by the (single-threaded) system instance and every
// iteration over connections is order-stable.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/offload"
	"repro/internal/rdma"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Policy selects how the fleet places and rebalances connections.
type Policy int

const (
	// RoundRobin homes new connections on devices in rotation and only
	// migrates at hard saturation (MaxQueueDepth).
	RoundRobin Policy = iota
	// LeastLoaded homes and proactively rebalances by per-device score:
	// submission-queue depth plus scratchpad and write-queue pressure.
	LeastLoaded
	// Affinity pins each connection to a channel group (RanksPerChannel
	// ranks behind one physical channel) and balances within the group,
	// bounding a connection's traffic to one channel. Requires the
	// memory system's range mode (it is meaningless under 64B
	// interleaving, where every access already stripes all channels).
	Affinity
	// Sticky uses rendezvous (highest-random-weight) hashing of the
	// connection ID over the active member set: placement is a pure
	// function of (conn, members), and a member failure moves only the
	// failed member's connections.
	Sticky
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case LeastLoaded:
		return "leastload"
	case Affinity:
		return "affinity"
	case Sticky:
		return "sticky"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the flag spellings accepted by cmd/smartdimm-sim.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "rr":
		return RoundRobin, nil
	case "leastload":
		return LeastLoaded, nil
	case "affinity":
		return Affinity, nil
	case "sticky":
		return Sticky, nil
	}
	return 0, fmt.Errorf("fleet: unknown placement policy %q (want rr, leastload, affinity, or sticky)", s)
}

// Config parameterizes a fleet over an assembled multi-rank system.
type Config struct {
	Sys    *sim.System
	Policy Policy

	// MaxQueueDepth is the admission limit: a device whose submission
	// queue reaches it sheds the submitting connection to the least
	// loaded sibling. Zero selects 12.
	MaxQueueDepth int
	// RebalanceGap is LeastLoaded's migration trigger: migrate the
	// submitting connection when its home queue is this much deeper
	// than the shallowest active member's. Zero selects 2.
	RebalanceGap int
	// MigrateCooldownOps rate-limits proactive rebalancing: a
	// connection migrates at most once per this many fleet submissions,
	// damping ping-pong when the load genuinely exceeds every member.
	// Zero selects 16. Drains ignore the cooldown.
	MigrateCooldownOps int
	// BatchSize is the descriptor count per doorbell ring; a Process
	// call's records are submitted in ceil(records/BatchSize) batches.
	// Zero selects 4.
	BatchSize int
	// BatchOverheadPs is the per-batch doorbell cost (uncached MMIO
	// write plus fence). Zero selects 120ns.
	BatchOverheadPs int64
	// RanksPerChannel sizes Affinity's channel groups. Zero selects 2
	// (two ranks behind each physical DDR4 channel).
	RanksPerChannel int
	// FailThreshold trips a member's breaker after this many consecutive
	// Process calls served entirely by the CPU fallback rung. Zero
	// selects 3 (mirroring the offload circuit breaker).
	FailThreshold int
	// CooldownOps is how many fleet submissions an open member sits out
	// before re-admission; 0 selects 256. Readmission is probational:
	// the first full-fallback Process after re-admission re-trips
	// immediately.
	CooldownOps int
	// NoReadmit keeps tripped members out permanently.
	NoReadmit bool
	// RNIC, when non-nil, is the RDMA NIC whose memory registrations
	// cover this fleet's connection buffers (the peer-DMA data path).
	// The fleet then enforces MR-locality across migrations: the MR is
	// quiesced before a connection's buffers move — an in-flight
	// one-sided write NAKs instead of landing in pages about to be
	// freed — and re-registered over the new home's buffers afterwards,
	// so a record can only ever land on the rank owning its current
	// registration.
	RNIC *rdma.NIC
	// MRReregPs is the extra occupancy a migration charges the target
	// when RNIC is set: MR invalidate + re-register + QP rebind (a few
	// MMIO round trips and a doorbell). Zero selects 480ns.
	MRReregPs int64
	// TracePlacement records every placement decision (placements,
	// migrations, sheds, trips, drains, readmissions) into the trace
	// returned by TraceString — the determinism gate's byte-compared
	// artifact. Off by default: long runs would accumulate MBs.
	TracePlacement bool
}

// member is one rank's buffer device plus its fleet-side queue state.
type member struct {
	idx     int
	backend *offload.SmartDIMM
	drv     *core.Driver
	dev     *core.Device
	ctl     *memctrl.Controller

	busyUntilPs int64   // device occupied through this instant
	inflight    []int64 // completion times of outstanding submissions

	state        memberState
	probation    bool   // just readmitted: one strike re-trips
	held         bool   // administratively drained (autoscaler): no auto-readmit
	cooldownLeft int    // fleet submissions until half-open
	consecFails  int    // consecutive full-fallback Process calls
	lastFallback uint64 // backend fallback counter at last check

	// ServicePs collects per-request device service time; Totals merges
	// the per-member histograms into the fleet sketch.
	ServicePs stats.Histogram
	// QDepth samples the member's submission-queue depth at every fleet
	// operation — the p50/p99 per-rank signal the autoscaler reads from
	// the telemetry registry (RegisterMetrics).
	QDepth stats.Histogram

	submitted, shed, migratedIn, migratedOut uint64
}

type memberState int

const (
	memberActive memberState = iota
	memberOpen
)

// homeRec tracks a connection's current home and buffer geometry.
type homeRec struct {
	conn       *offload.Conn
	home       int // member index; -1 = homeless (CPU soft rung)
	u          offload.ULP
	pages      int    // pages per buffer (Src and Dst each)
	lastMoveOp uint64 // fleet op count at the last migration
}

// Totals aggregates fleet-wide statistics from the per-member meters.
type Totals struct {
	Devices, Active int
	Degraded        stats.Degradation // merged over members + soft rung
	Descriptors     uint64
	Batches         uint64
	Sheds           uint64 // saturation-triggered migrations
	Migrations      uint64 // all buffer migrations (sheds, rebalances, drains)
	Trips           uint64 // breaker opens
	Readmits        uint64 // breaker closes
	SoftOps         uint64 // Process calls served homeless
	AdminDrains     uint64 // administrative (autoscaler) drains
	AdminAdmits     uint64 // administrative (autoscaler) admissions
	MigratedBytes   uint64
	BytesMoved      uint64          // summed channel traffic
	ServicePs       stats.Histogram // merged per-member service times
}

// Fleet shards ULP offloads across every SmartDIMM rank of a system.
// It implements offload.Backend.
type Fleet struct {
	cfg     Config
	members []*member
	conns   map[int]*homeRec
	soft    *offload.SmartDIMM // CPU-rung backend for homeless conns

	rrNext      int
	ops         uint64 // fleet-wide Process counter
	trips       uint64
	readmits    uint64
	softOps     uint64
	migrated    uint64
	shed        uint64
	migBytes    uint64
	descs       uint64
	batches     uint64
	adminDrains uint64 // autoscaler Drain calls
	adminAdmits uint64 // autoscaler Admit calls

	trace []string

	// tr/trTrack mirror cfg.Sys.Tracer: every tracef site doubles as a
	// Perfetto instant on the "fleet" track when tracing is enabled.
	tr      *telemetry.Tracer
	trTrack telemetry.TrackID
}

// New builds a fleet over every SmartDIMM rank cfg.Sys exposes. The
// system must have at least one rank (use sim.SystemConfig.SmartDIMMRanks)
// and be in range mode: the Affinity policy is undefined under 64B
// channel interleaving, and per-rank drivers assume ranked ranges.
func New(cfg Config) (*Fleet, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("fleet: nil system")
	}
	if len(cfg.Sys.Drivers) == 0 {
		return nil, fmt.Errorf("fleet: system has no SmartDIMM ranks (empty fleet)")
	}
	if cfg.Sys.Hier.Interleave {
		return nil, fmt.Errorf("fleet: channel interleaving defeats per-rank placement; use range mode")
	}
	if cfg.MaxQueueDepth <= 0 {
		cfg.MaxQueueDepth = 12
	}
	if cfg.RebalanceGap <= 0 {
		cfg.RebalanceGap = 2
	}
	if cfg.MigrateCooldownOps <= 0 {
		cfg.MigrateCooldownOps = 16
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4
	}
	if cfg.BatchOverheadPs <= 0 {
		cfg.BatchOverheadPs = 120 * sim.Ns
	}
	if cfg.RanksPerChannel <= 0 {
		cfg.RanksPerChannel = 2
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.CooldownOps <= 0 {
		cfg.CooldownOps = 256
	}
	if cfg.MRReregPs <= 0 {
		cfg.MRReregPs = 480 * sim.Ns
	}
	f := &Fleet{cfg: cfg, conns: make(map[int]*homeRec)}
	if tr := cfg.Sys.Tracer; tr != nil {
		f.tr = tr
		f.trTrack = tr.Track("fleet")
	}
	for i, drv := range cfg.Sys.Drivers {
		m := &member{
			idx:     i,
			drv:     drv,
			dev:     cfg.Sys.Devs[i],
			backend: &offload.SmartDIMM{Sys: cfg.Sys, Driver: drv},
		}
		if i < len(cfg.Sys.Ctls) {
			m.ctl = cfg.Sys.Ctls[i]
		}
		// Fleet service-time sketches live for the whole run at fleet
		// request rates: bounded mode keeps their memory flat.
		m.ServicePs.SetBounded()
		m.QDepth.SetBounded()
		f.members = append(f.members, m)
	}
	f.soft = &offload.SmartDIMM{Sys: cfg.Sys, Soft: true}
	return f, nil
}

// Name implements offload.Backend.
func (f *Fleet) Name() string {
	return fmt.Sprintf("SmartDIMM-fleet[%d,%s]", len(f.members), f.cfg.Policy)
}

// Supports implements offload.Backend: every member handles both ULPs.
func (f *Fleet) Supports(offload.ULP) bool { return true }

// InlineSource implements offload.Backend: connection buffers live on
// the home device; CompCpy consumes the page cache in place.
func (f *Fleet) InlineSource() bool { return true }

// Members returns the fleet size (including tripped members).
func (f *Fleet) Members() int { return len(f.members) }

// ActiveMembers returns how many members currently accept placements.
func (f *Fleet) ActiveMembers() int {
	n := 0
	for _, m := range f.members {
		if m.state == memberActive {
			n++
		}
	}
	return n
}

// NewConn implements offload.Backend: the policy picks a home device and
// the connection's buffers are allocated from that rank.
func (f *Fleet) NewConn(u offload.ULP, id, msgSize int) (*offload.Conn, error) {
	size := offload.LayoutFor(u).BufBytes(msgSize)
	pages := (size + core.PageSize - 1) / core.PageSize
	home := f.placeNew(id)
	if home < 0 {
		// No active members: allocate via the soft backend (rank 0's
		// range; processing never touches the device).
		conn, err := f.soft.NewConn(u, id, msgSize)
		if err != nil {
			return nil, err
		}
		f.conns[id] = &homeRec{conn: conn, home: -1, u: u, pages: pages}
		f.tracef("place c%d -> soft", id)
		return conn, nil
	}
	conn, err := f.members[home].backend.NewConn(u, id, msgSize)
	if err != nil {
		return nil, fmt.Errorf("fleet: conn %d on dev %d: %w", id, home, err)
	}
	f.conns[id] = &homeRec{conn: conn, home: home, u: u, pages: pages}
	f.tracef("place c%d -> d%d", id, home)
	return conn, nil
}

// Process implements offload.Backend: the request is routed to its
// connection's home device, waiting out that device's submission queue;
// descriptors are batched per doorbell; the wait and doorbell overhead
// are charged as device time on top of the member's own processing cost.
func (f *Fleet) Process(u offload.ULP, coreID int, conn *offload.Conn, payloadLen int) (offload.Result, error) {
	rec, ok := f.conns[conn.ID]
	if !ok {
		return offload.Result{}, fmt.Errorf("fleet: unknown conn %d", conn.ID)
	}
	now := f.cfg.Sys.Engine.Now()
	f.ops++
	f.tickCooldowns()
	f.retire(now)

	if rec.home < 0 {
		if !f.rehome(rec, now) {
			f.softOps++
			return f.soft.Process(u, coreID, conn, payloadLen)
		}
	}
	f.rebalance(rec, now)

	m := f.members[rec.home]
	wait := m.busyUntilPs - now
	if wait < 0 {
		wait = 0
	}
	res, err := m.backend.Process(u, coreID, conn, payloadLen)
	if err != nil {
		return res, err
	}
	m.submitted++
	f.noteOutcome(m, res, now)

	nBatches := int64((res.Records + f.cfg.BatchSize - 1) / f.cfg.BatchSize)
	overhead := nBatches * f.cfg.BatchOverheadPs
	f.descs += uint64(res.Records)
	f.batches += uint64(nBatches)

	svc := res.CPUPs + overhead
	done := now + wait + svc
	if m.state == memberActive {
		// A member that tripped during this call did no device work
		// (its records fell back to the CPU rung) and was already
		// drained; don't hold occupancy against it.
		m.busyUntilPs = done
		m.inflight = append(m.inflight, done)
	}
	m.ServicePs.Observe(float64(svc))

	res.DevicePs += wait + overhead
	return res, nil
}

// retire drops completed submissions from every member's queue and
// samples each active member's depth into its QDepth sketch (one
// uniform sample per fleet operation).
func (f *Fleet) retire(now int64) {
	for _, m := range f.members {
		q := m.inflight[:0]
		for _, t := range m.inflight {
			if t > now {
				q = append(q, t)
			}
		}
		m.inflight = q
		if m.state == memberActive {
			m.QDepth.Observe(float64(len(m.inflight)))
		}
	}
}

// tickCooldowns ages open members toward probational re-admission.
func (f *Fleet) tickCooldowns() {
	if f.cfg.NoReadmit {
		return
	}
	for _, m := range f.members {
		// Held members were drained administratively (autoscaler): only
		// an explicit Admit brings them back, never the breaker cooldown.
		if m.state != memberOpen || m.held {
			continue
		}
		if m.cooldownLeft--; m.cooldownLeft <= 0 {
			m.state = memberActive
			m.probation = true
			m.consecFails = 0
			f.readmits++
			f.tracef("readmit d%d", m.idx)
		}
	}
}

// noteOutcome watches the member's degradation counters: a Process call
// whose every record fell back to the CPU rung counts as a failure, and
// FailThreshold consecutive failures (one, on probation) trip the member.
func (f *Fleet) noteOutcome(m *member, res offload.Result, now int64) {
	cur := m.backend.Degraded.FallbackOps
	delta := cur - m.lastFallback
	m.lastFallback = cur
	if res.Records > 0 && delta >= uint64(res.Records) {
		m.consecFails++
	} else {
		m.consecFails = 0
		m.probation = false
	}
	if m.consecFails >= f.cfg.FailThreshold || (m.probation && m.consecFails > 0) {
		f.trip(m, now)
	}
}

// trip opens a member's breaker and drains its connections to survivors.
func (f *Fleet) trip(m *member, now int64) {
	if m.state == memberOpen {
		return
	}
	m.state = memberOpen
	m.probation = false
	m.consecFails = 0
	m.cooldownLeft = f.cfg.CooldownOps
	m.inflight = m.inflight[:0]
	m.busyUntilPs = 0
	f.trips++
	f.tracef("trip d%d", m.idx)
	f.drain(m, now)
}

// drain migrates every connection homed on m to a surviving member
// (policy-chosen), or marks it homeless when no member survives.
// Iteration is in ascending connection ID so traces are deterministic.
func (f *Fleet) drain(m *member, now int64) {
	var ids []int
	for id, rec := range f.conns {
		if rec.home == m.idx {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		rec := f.conns[id]
		to := f.placeDrain(id)
		if to < 0 {
			f.strand(m, rec)
			f.tracef("drain c%d d%d -> soft", id, m.idx)
			continue
		}
		if err := f.migrate(rec, to, now); err != nil {
			// Target full: the connection keeps its buffers and runs on
			// the CPU rung until re-homed.
			f.strand(m, rec)
			f.tracef("drain c%d d%d -> soft (%v)", id, m.idx, err)
			continue
		}
		f.tracef("drain c%d d%d -> d%d", id, m.idx, to)
	}
}

// strand marks a connection homeless on the CPU soft rung without moving
// its buffers. Any record the failed member still holds on them must be
// aborted first: a partially consumed offload leaves lines parked in the
// Scratchpad, and Soft-mode processing reuses the buffers without the
// re-registration that would implicitly retire it — the stale record's
// self-recycle path would swap old output over the CPU's writes.
func (f *Fleet) strand(m *member, rec *homeRec) {
	m.drv.AbortBuffer(rec.conn.Src, rec.pages)
	m.drv.AbortBuffer(rec.conn.Dst, rec.pages)
	// The connection's RDMA MR (if any) stays valid: stranding fails the
	// buffer *device*, not the DRAM behind it — the buffers don't move,
	// so peer deposits keep landing in the same registered region and
	// the CPU soft rung consumes them in place. MR-locality still holds.
	rec.home = -1
}

// rehome tries to find a homeless connection a live device again.
func (f *Fleet) rehome(rec *homeRec, now int64) bool {
	to := f.placeDrain(rec.conn.ID)
	if to < 0 {
		return false
	}
	if err := f.migrate(rec, to, now); err != nil {
		return false
	}
	f.tracef("rehome c%d -> d%d", rec.conn.ID, to)
	return true
}

// rebalance applies the policy's migration rule before a submission:
// LeastLoaded migrates once its home is RebalanceGap deeper than the
// shallowest member; every policy sheds at MaxQueueDepth saturation.
func (f *Fleet) rebalance(rec *homeRec, now int64) {
	m := f.members[rec.home]
	depth := len(m.inflight)
	min := f.minDepth()
	if m.state == memberActive && depth < f.cfg.MaxQueueDepth &&
		!(f.cfg.Policy == LeastLoaded && depth >= min+f.cfg.RebalanceGap) {
		return
	}
	// Only move when it strictly improves the connection's queue and
	// the connection hasn't just moved — otherwise equilibrium loads
	// ping-pong between equally deep members. Under the peer-DMA data
	// path a migration additionally quiesces and re-registers the
	// connection's MR (NAKing any deposit in flight), so the policy
	// demands a deeper imbalance before moving — MR-locality makes
	// ping-pong strictly more expensive than queue depth alone says.
	better := min + 1
	if f.cfg.RNIC != nil {
		better = min + 2
	}
	if better >= depth || f.ops-rec.lastMoveOp < uint64(f.cfg.MigrateCooldownOps) {
		return
	}
	to := f.shedTarget(rec)
	if to < 0 || to == rec.home {
		return // no better sibling; backpressure on the home queue
	}
	from := rec.home
	saturated := depth >= f.cfg.MaxQueueDepth
	if err := f.migrate(rec, to, now); err != nil {
		return
	}
	if saturated {
		f.shed++
		f.members[from].shed++
		f.tracef("shed c%d d%d -> d%d", rec.conn.ID, from, to)
	} else {
		f.tracef("rebalance c%d d%d -> d%d", rec.conn.ID, from, to)
	}
}

// migrate moves a connection's buffers to member `to`: allocate on the
// target, copy the staged source data device-to-device, free the old
// pages, and charge the copy to the target's occupancy.
func (f *Fleet) migrate(rec *homeRec, to int, now int64) error {
	t := f.members[to]
	newSrc, err := t.drv.AllocPages(rec.pages)
	if err != nil {
		return err
	}
	newDst, err := t.drv.AllocPages(rec.pages)
	if err != nil {
		t.drv.FreePages(newSrc, rec.pages)
		return err
	}
	conn := rec.conn
	// Peer-DMA: quiesce the connection's MR before anything moves. An
	// RDMA write is external to the fleet — without this, a WQE posted
	// before the migration could execute mid-copy and land in the old
	// pages after their contents were snapshotted (and just before they
	// return to the allocator, i.e. into memory a later owner receives).
	// Invalidated, the in-flight write NAKs and retries against the
	// QP's post-migration binding instead: the PR-3 strand/abort rule
	// extended to externally-writable buffers.
	var quiesced uint32
	if f.cfg.RNIC != nil {
		quiesced = f.cfg.RNIC.QuiesceQP(conn.ID)
	}
	// Both buffers move: Src carries staged payloads, Dst carries
	// processed output the server may not have transmitted yet. Reading
	// Dst through DMA also retires any record the old device still holds
	// in flight for these pages, materializing its output on the way out.
	bufBytes := rec.pages * core.PageSize
	data, lat, err := f.cfg.Sys.DMAOut(conn.Src, conn.Size)
	if err == nil {
		err = f.cfg.Sys.DMAIn(newSrc, data)
	}
	var out []byte
	if err == nil {
		var dlat int64
		out, dlat, err = f.cfg.Sys.DMAOut(conn.Dst, bufBytes)
		lat += dlat
	}
	if err == nil {
		err = f.cfg.Sys.DMAIn(newDst, out)
	}
	if err != nil {
		t.drv.FreePages(newSrc, rec.pages)
		t.drv.FreePages(newDst, rec.pages)
		if quiesced != 0 {
			// The buffers did not move; restore ingress over them.
			f.cfg.RNIC.RebindQP(conn.ID, conn.Src, conn.Size)
		}
		return err
	}
	if rec.home >= 0 {
		old := f.members[rec.home]
		// A record stranded on the old device by a failed operation must
		// not outlive the buffer: abort anything still registered before
		// the pages go back to the allocator, or the device's Scratchpad,
		// Config Memory and Translation Table entries would leak (and a
		// later owner of the pages could retire someone else's record).
		old.drv.AbortBuffer(conn.Src, rec.pages)
		old.drv.AbortBuffer(conn.Dst, rec.pages)
		old.drv.FreePages(conn.Src, rec.pages)
		old.drv.FreePages(conn.Dst, rec.pages)
		old.migratedOut++
	} else {
		// Homeless buffers were allocated from rank 0's range (soft
		// NewConn) or stranded by a failed migration target; return
		// them to whichever driver owns the address.
		if o := f.ownerOf(conn.Src); o != nil {
			o.AbortBuffer(conn.Src, rec.pages)
			o.AbortBuffer(conn.Dst, rec.pages)
			o.FreePages(conn.Src, rec.pages)
			o.FreePages(conn.Dst, rec.pages)
		}
	}
	conn.Src, conn.Dst = newSrc, newDst
	rec.home = to
	rec.lastMoveOp = f.ops
	if quiesced != 0 {
		// MR-locality: register the new home's buffer and point the QP
		// at it so stale in-flight WQEs retarget here. The rebind costs
		// the target a few MMIO round trips on top of the copy.
		if _, rerr := f.cfg.RNIC.RebindQP(conn.ID, conn.Src, conn.Size); rerr != nil {
			return fmt.Errorf("fleet: rebind c%d MR after migration: %w", conn.ID, rerr)
		}
		lat += f.cfg.MRReregPs
		f.tracef("rereg c%d -> d%d", conn.ID, to)
	}
	t.migratedIn++
	if t.busyUntilPs < now {
		t.busyUntilPs = now
	}
	t.busyUntilPs += lat
	f.migrated++
	f.migBytes += uint64(conn.Size)
	return nil
}

// ownerOf maps a physical address back to the rank driver that owns it.
func (f *Fleet) ownerOf(addr uint64) *core.Driver {
	for _, m := range f.members {
		if addr >= m.drv.Base && addr < m.drv.Base+f.devCap() {
			return m.drv
		}
	}
	return nil
}

func (f *Fleet) devCap() uint64 {
	if len(f.members) < 2 {
		return ^uint64(0) >> 1
	}
	return f.members[1].drv.Base - f.members[0].drv.Base
}

// --- placement ------------------------------------------------------------

// score is LeastLoaded's device pressure metric: submission-queue depth
// dominating, with scratchpad occupancy and write-queue pressure as
// fractional tie-breakers.
func (m *member) score() float64 {
	s := float64(len(m.inflight))
	if total := m.dev.ScratchpadFreePages(); total >= 0 {
		occ := m.dev.ScratchpadOccupancyBytes()
		cap := occ + total*core.PageSize
		if cap > 0 {
			s += float64(occ) / float64(cap)
		}
	}
	if m.ctl != nil {
		s += m.ctl.WriteQueuePressure()
	}
	return s
}

func (f *Fleet) minDepth() int {
	min := int(^uint(0) >> 1)
	for _, m := range f.members {
		if m.state == memberActive && len(m.inflight) < min {
			min = len(m.inflight)
		}
	}
	return min
}

// placeNew picks a home for a brand-new connection, or -1 if no member
// is active.
func (f *Fleet) placeNew(id int) int {
	switch f.cfg.Policy {
	case RoundRobin:
		return f.nextActiveRR()
	case LeastLoaded:
		return f.leastLoadedOf(f.activeSet())
	case Affinity:
		return f.leastLoadedOf(f.affinityGroup(id))
	case Sticky:
		return f.rendezvous(id, f.activeSet())
	}
	return f.nextActiveRR()
}

// placeDrain picks a new home for a connection leaving a failed member.
func (f *Fleet) placeDrain(id int) int {
	switch f.cfg.Policy {
	case Sticky:
		return f.rendezvous(id, f.activeSet())
	case Affinity:
		return f.leastLoadedOf(f.affinityGroup(id))
	default:
		return f.leastLoadedOf(f.activeSet())
	}
}

// shedTarget picks the sibling an overloaded home sheds to.
func (f *Fleet) shedTarget(rec *homeRec) int {
	switch f.cfg.Policy {
	case Affinity:
		if to := f.leastLoadedOf(f.without(f.affinityGroup(rec.conn.ID), rec.home)); to >= 0 {
			return to
		}
		// Whole group saturated or dead: spill across groups rather
		// than queueing unboundedly.
		return f.leastLoadedOf(f.without(f.activeSet(), rec.home))
	case Sticky:
		// Next-highest rendezvous weight keeps shed placement a pure
		// function of the connection ID.
		return f.rendezvous(rec.conn.ID, f.without(f.activeSet(), rec.home))
	default:
		return f.leastLoadedOf(f.without(f.activeSet(), rec.home))
	}
}

// activeSet lists active member indices in order.
func (f *Fleet) activeSet() []int {
	var set []int
	for _, m := range f.members {
		if m.state == memberActive {
			set = append(set, m.idx)
		}
	}
	return set
}

func (f *Fleet) without(set []int, idx int) []int {
	out := set[:0:0]
	for _, i := range set {
		if i != idx {
			out = append(out, i)
		}
	}
	return out
}

// affinityGroup lists the active members of a connection's channel
// group: RanksPerChannel consecutive ranks behind one physical channel.
func (f *Fleet) affinityGroup(id int) []int {
	groups := (len(f.members) + f.cfg.RanksPerChannel - 1) / f.cfg.RanksPerChannel
	g := id % groups
	if g < 0 {
		g = -g
	}
	var set []int
	for i := g * f.cfg.RanksPerChannel; i < (g+1)*f.cfg.RanksPerChannel && i < len(f.members); i++ {
		if f.members[i].state == memberActive {
			set = append(set, i)
		}
	}
	return set
}

// nextActiveRR rotates over active members.
func (f *Fleet) nextActiveRR() int {
	n := len(f.members)
	for k := 0; k < n; k++ {
		i := (f.rrNext + k) % n
		if f.members[i].state == memberActive {
			f.rrNext = i + 1
			return i
		}
	}
	return -1
}

// leastLoadedOf returns the lowest-score member of the set, breaking
// exact ties round-robin so simultaneous placements spread out instead
// of piling onto member 0. Returns -1 for an empty set.
func (f *Fleet) leastLoadedOf(set []int) int {
	if len(set) == 0 {
		return -1
	}
	best, bestScore := -1, 0.0
	n := len(set)
	for k := 0; k < n; k++ {
		i := set[(f.rrNext+k)%n]
		if s := f.members[i].score(); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	f.rrNext++
	return best
}

// rendezvous picks the member with the highest hash weight for the
// connection — stable under membership change except for the members
// that actually left.
func (f *Fleet) rendezvous(id int, set []int) int {
	best, bestW := -1, uint64(0)
	for _, i := range set {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%d", id, i)
		if w := h.Sum64(); best < 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// --- failure API, introspection -------------------------------------------

// Fail force-trips member i's breaker (chaos schedules use this to model
// a rank failure directly); its connections drain and reshard.
func (f *Fleet) Fail(i int) error {
	if i < 0 || i >= len(f.members) {
		return fmt.Errorf("fleet: no member %d", i)
	}
	f.trip(f.members[i], f.cfg.Sys.Engine.Now())
	return nil
}

// Readmit returns a tripped member to service immediately (probational).
func (f *Fleet) Readmit(i int) error {
	if i < 0 || i >= len(f.members) {
		return fmt.Errorf("fleet: no member %d", i)
	}
	m := f.members[i]
	if m.state == memberOpen {
		m.state = memberActive
		m.probation = true
		m.consecFails = 0
		f.readmits++
		f.tracef("readmit d%d", i)
	}
	return nil
}

// QueueDepth returns member i's current submission-queue depth.
func (f *Fleet) QueueDepth(i int) int { return len(f.members[i].inflight) }

// RankQDepth returns member i's queue-depth sketch, for callers that
// register per-rank collectors themselves (RegisterMetrics does all
// ranks at once).
func (f *Fleet) RankQDepth(i int) *stats.Histogram { return &f.members[i].QDepth }

// IsActive reports whether member i currently accepts placements.
func (f *Fleet) IsActive(i int) bool {
	return i >= 0 && i < len(f.members) && f.members[i].state == memberActive
}

// Drain administratively removes member i from service: its connections
// reshard across the survivors and the member is *held* out — unlike a
// breaker trip, the readmission cooldown never brings it back; only
// Admit does. This is the autoscaler's scale-down primitive. Draining
// the last active member is refused: the fleet never scales to zero.
func (f *Fleet) Drain(i int) error {
	if i < 0 || i >= len(f.members) {
		return fmt.Errorf("fleet: no member %d", i)
	}
	m := f.members[i]
	if m.state == memberActive && f.ActiveMembers() <= 1 {
		return fmt.Errorf("fleet: refusing to drain last active member %d", i)
	}
	if m.state == memberActive {
		m.state = memberOpen
		m.probation = false
		m.consecFails = 0
		m.inflight = m.inflight[:0]
		m.busyUntilPs = 0
		f.tracef("ascale drain d%d", i)
		f.drain(m, f.cfg.Sys.Engine.Now())
	}
	m.held = true
	f.adminDrains++
	return nil
}

// Admit returns an administratively drained (or tripped) member to
// service immediately and releases the hold. Admission is not
// probational: the member didn't fail, the autoscaler just parked it.
func (f *Fleet) Admit(i int) error {
	if i < 0 || i >= len(f.members) {
		return fmt.Errorf("fleet: no member %d", i)
	}
	m := f.members[i]
	m.held = false
	if m.state == memberOpen {
		m.state = memberActive
		m.probation = false
		m.consecFails = 0
		m.cooldownLeft = 0
		f.tracef("ascale admit d%d", i)
	}
	f.adminAdmits++
	return nil
}

// SetPolicy switches the placement policy live. Existing homes stay
// where they are; the new policy governs placements, sheds, and drains
// from the next operation on. The autoscaler uses this to flip from
// rr/affinity to leastload when per-rank queue depths diverge.
func (f *Fleet) SetPolicy(p Policy) {
	if f.cfg.Policy == p {
		return
	}
	f.cfg.Policy = p
	f.tracef("policy -> %s", p)
}

// Policy returns the placement policy currently in force.
func (f *Fleet) Policy() Policy { return f.cfg.Policy }

// RegisterMetrics publishes the fleet into a telemetry registry: each
// rank's queue-depth sketch under fleet.rank<i>.qdepth (the autoscaler's
// per-rank signal — p50/p99 arrive as .p50/.p99 samples), a live
// per-rank activity bitmap under fleet.state, and the fleet totals under
// fleet. Registration is concurrency-safe (Registry locks), so per-rank
// setup workers may call pieces of this in parallel and Sort after.
func (f *Fleet) RegisterMetrics(reg *telemetry.Registry) {
	for _, m := range f.members {
		reg.Register(fmt.Sprintf("fleet.rank%d.qdepth", m.idx), &m.QDepth)
	}
	// Sample names are precomputed: collectors run on every scrape, and a
	// per-emit Sprintf would be the one allocation left on the scraper's
	// zero-alloc snapshot path.
	rankNames := make([]string, len(f.members))
	for i, m := range f.members {
		rankNames[i] = fmt.Sprintf("rank%d", m.idx)
	}
	reg.Register("fleet.state", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		for i, m := range f.members {
			v := 0.0
			if m.state == memberActive {
				v = 1
			}
			emit(telemetry.Sample{Name: rankNames[i], Value: v})
		}
	}))
	reg.Register("fleet", telemetry.CollectorFunc(func(emit func(telemetry.Sample)) {
		f.Totals().Collect(emit)
	}))
}

// Home returns the member index a connection currently lives on, or -1
// if it is homeless (CPU soft rung) or unknown.
func (f *Fleet) Home(connID int) int {
	if rec, ok := f.conns[connID]; ok {
		return rec.home
	}
	return -1
}

// OutstandingPages sums pages currently allocated across every rank's
// driver — the fleet-wide half of the chaos conservation invariant.
func (f *Fleet) OutstandingPages() int {
	n := 0
	for _, d := range f.cfg.Sys.Drivers {
		n += d.OutstandingPages()
	}
	return n
}

// ExpectedPages sums the pages the fleet's live connections should hold
// (Src + Dst per connection), wherever they currently live.
func (f *Fleet) ExpectedPages() int {
	n := 0
	for _, rec := range f.conns {
		n += 2 * rec.pages
	}
	return n
}

// Totals aggregates the per-member meters into fleet-wide statistics,
// merging percentile sketches without re-sorting (stats.Histogram.Merge).
func (f *Fleet) Totals() Totals {
	t := Totals{
		Devices:       len(f.members),
		Active:        f.ActiveMembers(),
		Descriptors:   f.descs,
		Batches:       f.batches,
		Sheds:         f.shed,
		Migrations:    f.migrated,
		Trips:         f.trips,
		Readmits:      f.readmits,
		SoftOps:       f.softOps,
		AdminDrains:   f.adminDrains,
		AdminAdmits:   f.adminAdmits,
		MigratedBytes: f.migBytes,
	}
	for _, m := range f.members {
		t.Degraded.PrimaryOps += m.backend.Degraded.PrimaryOps
		t.Degraded.FallbackOps += m.backend.Degraded.FallbackOps
		t.Degraded.InjectedFaults += m.backend.Degraded.InjectedFaults
		t.ServicePs.Merge(&m.ServicePs)
	}
	t.Degraded.FallbackOps += f.soft.Degraded.FallbackOps
	t.Degraded.Opens, t.Degraded.Closes = f.trips, f.readmits
	t.BytesMoved = f.cfg.Sys.MemoryBytesMoved()
	return t
}

// Collect implements telemetry.Collector, flattening the merged
// degradation and service-time aggregates under dotted prefixes.
func (t Totals) Collect(emit func(telemetry.Sample)) {
	emit(telemetry.Sample{Name: "devices", Value: float64(t.Devices)})
	emit(telemetry.Sample{Name: "active", Value: float64(t.Active)})
	emit(telemetry.Sample{Name: "descriptors", Value: float64(t.Descriptors)})
	emit(telemetry.Sample{Name: "batches", Value: float64(t.Batches)})
	emit(telemetry.Sample{Name: "sheds", Value: float64(t.Sheds)})
	emit(telemetry.Sample{Name: "migrations", Value: float64(t.Migrations)})
	emit(telemetry.Sample{Name: "trips", Value: float64(t.Trips)})
	emit(telemetry.Sample{Name: "readmits", Value: float64(t.Readmits)})
	emit(telemetry.Sample{Name: "soft_ops", Value: float64(t.SoftOps)})
	emit(telemetry.Sample{Name: "admin_drains", Value: float64(t.AdminDrains)})
	emit(telemetry.Sample{Name: "admin_admits", Value: float64(t.AdminAdmits)})
	emit(telemetry.Sample{Name: "migrated_bytes", Value: float64(t.MigratedBytes)})
	emit(telemetry.Sample{Name: "bytes_moved", Value: float64(t.BytesMoved)})
	t.Degraded.Collect(func(s telemetry.Sample) {
		s.Name = "degraded." + s.Name
		emit(s)
	})
	t.ServicePs.Collect(func(s telemetry.Sample) {
		s.Name = "service_ps." + s.Name
		emit(s)
	})
}

// AggregateBW merges every rank channel's bandwidth meter into one.
func (f *Fleet) AggregateBW() *stats.BandwidthMeter {
	agg := &stats.BandwidthMeter{}
	for _, m := range f.cfg.Sys.Meters {
		agg.PeakBytesPerSec += m.PeakBytesPerSec
		agg.Merge(m)
	}
	return agg
}

// TraceString renders the placement trace (TracePlacement must be set).
// Identical configurations and request streams produce byte-identical
// traces regardless of GOMAXPROCS — the fleet determinism gate.
func (f *Fleet) TraceString() string {
	return strings.Join(f.trace, "\n")
}

func (f *Fleet) tracef(format string, args ...any) {
	if !f.cfg.TracePlacement && f.tr == nil {
		return
	}
	s := fmt.Sprintf(format, args...)
	if f.cfg.TracePlacement {
		f.trace = append(f.trace, s)
	}
	f.tr.Instant(f.trTrack, s, f.cfg.Sys.Engine.Now())
}
