package fleet_test

// Tests for the fleet dispatcher: table-driven placement checks for all
// four policies (including the empty-fleet and single-device edge
// cases), drain/readmit behavior, and the determinism gate — identical
// seeds and request streams must produce byte-identical placement
// traces and results regardless of GOMAXPROCS, mirroring
// TestSweepsDeterministicUnderParallelism.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/runner"
	"repro/internal/sim"
)

// newFleetSystem assembles a small multi-rank system for placement tests.
func newFleetSystem(t testing.TB, ranks int) *sim.System {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
		WithSmartDIMM: true, SmartDIMMRanks: ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func newTestFleet(t testing.TB, sys *sim.System, pol fleet.Policy) *fleet.Fleet {
	t.Helper()
	fl, err := fleet.New(fleet.Config{Sys: sys, Policy: pol, TracePlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// openConns creates n compression connections and returns their homes.
func openConns(t testing.TB, fl *fleet.Fleet, n int) ([]*offload.Conn, []int) {
	t.Helper()
	conns := make([]*offload.Conn, n)
	homes := make([]int, n)
	for i := 0; i < n; i++ {
		c, err := fl.NewConn(offload.Compression, i, 4096)
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		conns[i], homes[i] = c, fl.Home(i)
	}
	return conns, homes
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []fleet.Policy{fleet.RoundRobin, fleet.LeastLoaded, fleet.Affinity, fleet.Sticky} {
		got, err := fleet.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := fleet.ParsePolicy("hottest-first"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy name")
	}
}

// TestPlacementPolicies is the table-driven placement check for all four
// policies, including the single-device degenerate case for each.
func TestPlacementPolicies(t *testing.T) {
	cases := []struct {
		name   string
		policy fleet.Policy
		ranks  int
		conns  int
		check  func(t *testing.T, homes []int)
	}{
		{"rr-rotates", fleet.RoundRobin, 4, 8, func(t *testing.T, homes []int) {
			for i, h := range homes {
				if h != i%4 {
					t.Errorf("conn %d homed on d%d, want d%d (round-robin rotation)", i, h, i%4)
				}
			}
		}},
		{"leastload-balances", fleet.LeastLoaded, 4, 8, func(t *testing.T, homes []int) {
			per := map[int]int{}
			for _, h := range homes {
				per[h]++
			}
			for d := 0; d < 4; d++ {
				if per[d] != 2 {
					t.Errorf("device %d got %d of 8 idle-fleet placements, want 2 (spread: %v)", d, per[d], homes)
				}
			}
		}},
		{"affinity-pins-channel-group", fleet.Affinity, 4, 12, func(t *testing.T, homes []int) {
			// 4 ranks, 2 per channel: conn id%2 selects the group, so the
			// home rank divided by the group width must equal it.
			for i, h := range homes {
				if h/2 != i%2 {
					t.Errorf("conn %d homed on d%d outside channel group %d", i, h, i%2)
				}
			}
		}},
		{"sticky-uses-every-weight", fleet.Sticky, 4, 32, func(t *testing.T, homes []int) {
			per := map[int]bool{}
			for _, h := range homes {
				per[h] = true
			}
			if len(per) < 3 {
				t.Errorf("rendezvous hashing used only %d of 4 devices over 32 conns: %v", len(per), homes)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := newTestFleet(t, newFleetSystem(t, tc.ranks), tc.policy)
			_, homes := openConns(t, fl, tc.conns)
			tc.check(t, homes)
		})
		t.Run(tc.name+"/single-device", func(t *testing.T) {
			fl := newTestFleet(t, newFleetSystem(t, 1), tc.policy)
			_, homes := openConns(t, fl, 6)
			for i, h := range homes {
				if h != 0 {
					t.Errorf("conn %d homed on d%d in a one-device fleet", i, h)
				}
			}
		})
	}
}

// TestEmptyFleetRejected covers the empty-fleet edge: a system without
// SmartDIMM ranks, and one in channel-interleave mode, must both refuse
// to build a fleet.
func TestEmptyFleetRejected(t *testing.T) {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.New(fleet.Config{Sys: sys}); err == nil {
		t.Error("fleet.New accepted a system with no SmartDIMM ranks")
	}
	if _, err := fleet.New(fleet.Config{Sys: nil}); err == nil {
		t.Error("fleet.New accepted a nil system")
	}
	sys2 := newFleetSystem(t, 2)
	sys2.Hier.Interleave = true
	if _, err := fleet.New(fleet.Config{Sys: sys2}); err == nil {
		t.Error("fleet.New accepted a channel-interleaved memory system")
	}
}

// TestStickyDrainMovesOnlyFailedMember checks the rendezvous property
// the Sticky policy exists for: failing one member relocates exactly the
// connections homed on it.
func TestStickyDrainMovesOnlyFailedMember(t *testing.T) {
	fl := newTestFleet(t, newFleetSystem(t, 4), fleet.Sticky)
	_, before := openConns(t, fl, 24)
	victim := before[0]
	if err := fl.Fail(victim); err != nil {
		t.Fatal(err)
	}
	for i, old := range before {
		now := fl.Home(i)
		if old == victim {
			if now == victim {
				t.Errorf("conn %d still homed on failed d%d", i, victim)
			}
		} else if now != old {
			t.Errorf("conn %d moved d%d -> d%d though only d%d failed", i, old, now, victim)
		}
	}
	if fl.OutstandingPages() != fl.ExpectedPages() {
		t.Errorf("after drain: %d pages outstanding, expected %d", fl.OutstandingPages(), fl.ExpectedPages())
	}
}

// TestAllMembersDownSoftFallback drives the fleet to zero active members:
// existing and new connections must run homeless on the CPU soft rung
// and re-home after a member is readmitted.
func TestAllMembersDownSoftFallback(t *testing.T) {
	sys := newFleetSystem(t, 2)
	fl := newTestFleet(t, sys, fleet.LeastLoaded)
	conns, _ := openConns(t, fl, 4)
	payload := corpus.Generate(corpus.HTML, 4096, 3)
	for _, c := range conns {
		if err := offload.StagePayloadDMA(sys, c, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := fl.Fail(1); err != nil {
		t.Fatal(err)
	}
	if fl.ActiveMembers() != 0 {
		t.Fatalf("ActiveMembers = %d after failing both", fl.ActiveMembers())
	}
	for i := range conns {
		if h := fl.Home(i); h != -1 {
			t.Errorf("conn %d still homed on d%d with every member down", i, h)
		}
	}
	// A connection opened with no survivors is born homeless but usable.
	late, err := fl.NewConn(offload.Compression, 99, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if h := fl.Home(99); h != -1 {
		t.Errorf("conn opened with every member down homed on d%d", h)
	}
	if err := offload.StagePayloadDMA(sys, late, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Process(offload.Compression, 0, late, 4096); err != nil {
		t.Fatalf("soft-rung Process: %v", err)
	}
	if tt := fl.Totals(); tt.SoftOps == 0 {
		t.Error("Process with every member down did not count as a soft op")
	}
	if err := fl.Readmit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Process(offload.Compression, 0, late, 4096); err != nil {
		t.Fatal(err)
	}
	if h := fl.Home(99); h != 1 {
		t.Errorf("conn not re-homed on the readmitted member (home=%d)", h)
	}
	if fl.OutstandingPages() != fl.ExpectedPages() {
		t.Errorf("after rehome: %d pages outstanding, expected %d", fl.OutstandingPages(), fl.ExpectedPages())
	}
}

// --- determinism gate -------------------------------------------------------

// scriptJob names one deterministic fleet run of the gate.
type scriptJob struct {
	policy fleet.Policy
	ranks  int
}

// runFleetScript drives a fixed, seeded request stream through a fresh
// fleet — including a forced failure, drain, and readmission — and
// renders every observable (per-op results, totals, queue depths, and
// the placement trace) into one string for byte comparison.
func runFleetScript(j scriptJob) (string, error) {
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
		WithSmartDIMM: true, SmartDIMMRanks: j.ranks,
	})
	if err != nil {
		return "", err
	}
	fl, err := fleet.New(fleet.Config{
		Sys: sys, Policy: j.policy, TracePlacement: true,
		FailThreshold: 2, CooldownOps: 24, MigrateCooldownOps: 4,
	})
	if err != nil {
		return "", err
	}
	const nConns = 12
	payload := corpus.Generate(corpus.HTML, 4096, 7)
	conns := make([]*offload.Conn, nConns)
	for i := range conns {
		c, err := fl.NewConn(offload.Compression, i, 4096)
		if err != nil {
			return "", err
		}
		if err := offload.StagePayloadDMA(sys, c, payload); err != nil {
			return "", err
		}
		conns[i] = c
	}
	rng := rand.New(rand.NewSource(99))
	victim := 1 % j.ranks
	var b strings.Builder
	for op := 0; op < 96; op++ {
		switch op {
		case 32:
			if err := fl.Fail(victim); err != nil {
				return "", err
			}
		case 64:
			if err := fl.Readmit(victim); err != nil {
				return "", err
			}
		}
		c := conns[rng.Intn(nConns)]
		res, err := fl.Process(offload.Compression, op%4, c, 4096)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "op%d c%d home%d rec%d tx%d wall%d\n",
			op, c.ID, fl.Home(c.ID), res.Records, res.TXBytes, res.WallPs())
		sys.Engine.RunUntil(sys.Engine.Now() + int64(rng.Intn(5))*sim.Us)
	}
	tt := fl.Totals()
	fmt.Fprintf(&b, "totals dev%d act%d desc%d batch%d mig%d shed%d trip%d readmit%d soft%d\n",
		tt.Devices, tt.Active, tt.Descriptors, tt.Batches, tt.Migrations,
		tt.Sheds, tt.Trips, tt.Readmits, tt.SoftOps)
	for i := 0; i < fl.Members(); i++ {
		fmt.Fprintf(&b, "q%d=%d\n", i, fl.QueueDepth(i))
	}
	fmt.Fprintf(&b, "pages out%d exp%d\n", fl.OutstandingPages(), fl.ExpectedPages())
	b.WriteString("--- trace ---\n")
	b.WriteString(fl.TraceString())
	return b.String(), nil
}

// TestFleetDeterministicUnderParallelism is the fleet dispatcher's
// determinism gate, mirroring TestSweepsDeterministicUnderParallelism:
// the same seeded request streams — covering all four policies plus the
// single-device case, each with a failure/drain/readmit episode — must
// render byte-identically whether the runs execute serially or fanned
// across a worker pool, and regardless of GOMAXPROCS.
func TestFleetDeterministicUnderParallelism(t *testing.T) {
	jobs := []scriptJob{
		{fleet.RoundRobin, 4}, {fleet.LeastLoaded, 4},
		{fleet.Affinity, 4}, {fleet.Sticky, 4},
		{fleet.RoundRobin, 1},
	}
	render := func(pool *runner.Pool) string {
		outs, err := runner.Map(context.Background(), pool, jobs,
			func(_ context.Context, j scriptJob, _ int) (string, error) {
				return runFleetScript(j)
			})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(outs, "\n==== next job ====\n")
	}
	serial := render(nil)
	parallel := render(runner.New(4))
	prev := runtime.GOMAXPROCS(2)
	squeezed := render(runner.New(4))
	runtime.GOMAXPROCS(prev)
	if serial != parallel {
		t.Fatalf("parallel fleet runs diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if serial != squeezed {
		t.Fatalf("GOMAXPROCS=2 fleet runs diverged from serial:\n--- serial ---\n%s\n--- GOMAXPROCS=2 ---\n%s", serial, squeezed)
	}
	// The episodes must actually appear in the compared artifact, or the
	// gate silently compares trivia.
	for _, want := range []string{"place c", "trip d", "drain c", "readmit d"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("trace is missing %q events:\n%s", want, serial)
		}
	}
}
