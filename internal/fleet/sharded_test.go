package fleet

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// shardedFingerprint runs a small sharded cluster and renders its
// deterministic artifacts — the merged Perfetto trace, the metrics
// registry dump, and the aggregated/per-shard KPI lines — into one byte
// blob for identity comparison across execution schedules. When
// withExec is true the blob also includes execution-level counters
// (epoch count, lookahead): those are invariant across worker counts
// but legitimately change with the window size, so the lookahead
// invariance gate drops them.
func shardedFingerprint(t *testing.T, execWorkers int, lookahead int64, withExec bool) []byte {
	t.Helper()
	sc, err := NewSharded(ShardedConfig{
		Shards: 2, RanksPerShard: 2, Policy: RoundRobin,
		Workers: 4, MsgSize: 2048, Connections: 8,
		FileKind: corpus.Text, Mode: server.HTTPSMode, Seed: 7,
		ExecWorkers: execWorkers, LookaheadPs: lookahead,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sc.Run(sim.Ms/2, sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "agg requests=%d cpu=%d tx=%d mean=%d p99=%g errors=%d\n",
		m.Agg.Requests, m.Agg.CPUBusyPs, m.Agg.TXBytes, m.Agg.MeanLatPs,
		m.Agg.Latency.Percentile(99), m.Agg.Errors)
	for s, ps := range m.PerShard {
		fmt.Fprintf(&b, "shard%d requests=%d cpu=%d tx=%d stages=%v\n",
			s, ps.Requests, ps.CPUBusyPs, ps.TXBytes, ps.StagePs)
	}
	fmt.Fprintf(&b, "msgs=%d dispatched=%d completed=%d\n",
		m.SentMsgs, sc.Dispatched(), sc.Generator().Completed)
	reg := telemetry.NewRegistry()
	reg.Register("server", m.Agg)
	if withExec {
		fmt.Fprintf(&b, "epochs=%d events=%d\n", m.Epochs, m.Processed)
		sc.RegisterMetrics(reg)
	} else {
		for s, sys := range sc.Systems() {
			sys.RegisterMetricsPrefixed(reg, fmt.Sprintf("shard%d", s))
		}
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := sc.MergedTrace().WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestShardedClusterDeterministicAcrossWorkers is the full-stack shard
// determinism gate: serial reference execution, fully parallel
// execution, and a different GOMAXPROCS all produce byte-identical
// traces, metrics dumps, and reports.
func TestShardedClusterDeterministicAcrossWorkers(t *testing.T) {
	ref := shardedFingerprint(t, 1, 0, true)
	if got := shardedFingerprint(t, 4, 0, true); !bytes.Equal(got, ref) {
		t.Fatalf("parallel sharded run diverged from serial reference (%d vs %d bytes)", len(got), len(ref))
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := shardedFingerprint(t, 0, 0, true); !bytes.Equal(got, ref) {
		t.Fatal("GOMAXPROCS=2 sharded run diverged from serial reference")
	}
}

// TestShardedClusterLookaheadInvariance shrinks the epoch window well
// below the dispatch latency: partitioning into many more epochs must
// not move a single byte of output.
func TestShardedClusterLookaheadInvariance(t *testing.T) {
	ref := shardedFingerprint(t, 1, 0, false)
	// 100ns windows against the default ~6us dispatch: ~60x more epochs.
	if got := shardedFingerprint(t, 4, 100*sim.Ns, false); !bytes.Equal(got, ref) {
		t.Fatal("shrunken lookahead window changed cluster output")
	}
}

// TestShardedClusterAggregation checks the cluster-wide rollups: every
// shard serves traffic, the aggregate is the shard sum, and the engine
// counters reflect all shards.
func TestShardedClusterAggregation(t *testing.T) {
	sc, err := NewSharded(ShardedConfig{
		Shards: 3, Workers: 4, MsgSize: 1024, Connections: 9,
		FileKind: corpus.Text, Mode: server.HTTPSMode, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sc.Run(sim.Ms/2, sim.Ms)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for s, ps := range m.PerShard {
		if ps.Requests == 0 {
			t.Fatalf("shard %d served no requests", s)
		}
		sum += ps.Requests
	}
	if m.Agg.Requests != sum {
		t.Fatalf("aggregate requests %d != shard sum %d", m.Agg.Requests, sum)
	}
	// Generator completions lag server-side counts by the responses still
	// crossing the fabric when the window closes (one per connection at
	// most).
	done := sc.Generator().Completed
	if done == 0 || done > m.Agg.Requests || m.Agg.Requests-done > 9 {
		t.Fatalf("generator completions %d inconsistent with aggregate requests %d", done, m.Agg.Requests)
	}
	if m.Epochs == 0 || m.SentMsgs == 0 {
		t.Fatalf("sharded execution did not happen: epochs=%d msgs=%d", m.Epochs, m.SentMsgs)
	}
	// Every request crosses the fabric twice (dispatch + completion).
	if m.SentMsgs < 2*m.Agg.Requests {
		t.Fatalf("cross-shard messages %d < 2x requests %d", m.SentMsgs, m.Agg.Requests)
	}
	if got := sc.Engine().Processed(); got != m.Processed || got == 0 {
		t.Fatalf("engine processed %d, metrics say %d", got, m.Processed)
	}
}

// TestShardedClusterRejectsBadConfigs pins the constructor's guard
// rails.
func TestShardedClusterRejectsBadConfigs(t *testing.T) {
	base := ShardedConfig{
		Shards: 2, Workers: 2, MsgSize: 1024, Connections: 4,
		FileKind: corpus.Text, Mode: server.HTTPSMode,
	}
	for name, mutate := range map[string]func(*ShardedConfig){
		"zero shards":          func(c *ShardedConfig) { c.Shards = 0 },
		"fewer conns":          func(c *ShardedConfig) { c.Connections = 1 },
		"plain http":           func(c *ShardedConfig) { c.Mode = server.PlainHTTP },
		"lookahead > dispatch": func(c *ShardedConfig) { c.DispatchPs = 1000; c.LookaheadPs = 2000 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := NewSharded(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

// TestDeriveDispatchPs pins the lookahead derivation: half the in-rack
// RTT for the default calibration, floored at the memory-domain command
// round trip when the RTT collapses.
func TestDeriveDispatchPs(t *testing.T) {
	p := sim.DefaultParams()
	d := DeriveDispatchPs(p)
	if want := int64(p.RTTUs * float64(sim.Us) / 2); d != want {
		t.Fatalf("dispatch = %dps, want half RTT %dps", d, want)
	}
	p.RTTUs = 0
	if d := DeriveDispatchPs(p); d < 120*sim.Ns {
		t.Fatalf("dispatch floor = %dps, want >= doorbell overhead", d)
	}
}
