package fleet_test

// Tests for the fleet's autoscaler-facing surface: administrative
// Drain/Admit (held members must not auto-readmit), live policy
// switching, and the per-rank queue-depth telemetry — including the
// concurrent-registration gate run under -race.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/telemetry"
)

// driveFleet pushes n Process ops round-robin over the conns.
func driveFleet(t *testing.T, fl *fleet.Fleet, conns []*offload.Conn, n int) {
	t.Helper()
	for op := 0; op < n; op++ {
		c := conns[op%len(conns)]
		if _, err := fl.Process(offload.Compression, op%4, c, 4096); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

func stageAll(t *testing.T, fl *fleet.Fleet, sysStage func(*offload.Conn) error, conns []*offload.Conn) {
	t.Helper()
	for _, c := range conns {
		if err := sysStage(c); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFleetDrainAdmitHeld checks the autoscaler's scale primitives: a
// drained member resheds its connections, stays out through any number
// of breaker cooldown ticks (held), and returns only on Admit. Draining
// the last active member is refused.
func TestFleetDrainAdmitHeld(t *testing.T) {
	sys := newFleetSystem(t, 4)
	fl, err := fleet.New(fleet.Config{
		Sys: sys, Policy: fleet.LeastLoaded, TracePlacement: true,
		CooldownOps: 4, // tiny: held members must survive many cooldowns
	})
	if err != nil {
		t.Fatal(err)
	}
	conns, _ := openConns(t, fl, 8)
	payload := corpus.Generate(corpus.HTML, 4096, 3)
	stageAll(t, fl, func(c *offload.Conn) error { return offload.StagePayloadDMA(sys, c, payload) }, conns)

	if err := fl.Drain(1); err != nil {
		t.Fatal(err)
	}
	if fl.IsActive(1) {
		t.Fatal("member 1 still active after Drain")
	}
	for i := range conns {
		if fl.Home(i) == 1 {
			t.Fatalf("conn %d still homed on the drained member", i)
		}
	}
	// 64 ops = 16 cooldown periods: a breaker-tripped member would have
	// been readmitted long ago; a held member must not be.
	driveFleet(t, fl, conns, 64)
	if fl.IsActive(1) {
		t.Fatal("held member auto-readmitted by the breaker cooldown")
	}
	if err := fl.Admit(1); err != nil {
		t.Fatal(err)
	}
	if !fl.IsActive(1) {
		t.Fatal("member 1 inactive after Admit")
	}

	// Scale down to one and refuse the last drain.
	for _, i := range []int{0, 1, 2} {
		if err := fl.Drain(i); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if fl.ActiveMembers() != 1 {
		t.Fatalf("ActiveMembers = %d, want 1", fl.ActiveMembers())
	}
	if err := fl.Drain(3); err == nil {
		t.Fatal("Drain accepted the last active member")
	}
	tt := fl.Totals()
	if tt.AdminDrains != 4 || tt.AdminAdmits != 1 {
		t.Fatalf("admin counters drains=%d admits=%d, want 4/1", tt.AdminDrains, tt.AdminAdmits)
	}
	if fl.OutstandingPages() != fl.ExpectedPages() {
		t.Fatalf("pages out %d, expected %d", fl.OutstandingPages(), fl.ExpectedPages())
	}
}

// TestFleetSetPolicyLive flips the placement policy mid-run and checks
// subsequent placements follow the new rule.
func TestFleetSetPolicyLive(t *testing.T) {
	fl := newTestFleet(t, newFleetSystem(t, 4), fleet.RoundRobin)
	openConns(t, fl, 4)
	if fl.Policy() != fleet.RoundRobin {
		t.Fatalf("policy = %v, want rr", fl.Policy())
	}
	fl.SetPolicy(fleet.Sticky)
	if fl.Policy() != fleet.Sticky {
		t.Fatalf("policy = %v after SetPolicy, want sticky", fl.Policy())
	}
	// Sticky placement is a pure function of the conn ID: the same ID
	// must land where rendezvous hashing says, not where rotation would.
	if _, err := fl.NewConn(offload.Compression, 1000, 4096); err != nil {
		t.Fatal(err)
	}
	fl2 := newTestFleet(t, newFleetSystem(t, 4), fleet.Sticky)
	if _, err := fl2.NewConn(offload.Compression, 1000, 4096); err != nil {
		t.Fatal(err)
	}
	if fl.Home(1000) != fl2.Home(1000) {
		t.Fatalf("post-flip placement d%d differs from native sticky d%d", fl.Home(1000), fl2.Home(1000))
	}
	if !strings.Contains(fl.TraceString(), "policy -> sticky") {
		t.Fatal("policy flip not recorded in the placement trace")
	}
}

// TestFleetQDepthTelemetry drives load and checks the per-rank
// queue-depth sketches surface through the registry with p50/p99.
func TestFleetQDepthTelemetry(t *testing.T) {
	sys := newFleetSystem(t, 2)
	fl := newTestFleet(t, sys, fleet.RoundRobin)
	conns, _ := openConns(t, fl, 4)
	payload := corpus.Generate(corpus.HTML, 4096, 3)
	stageAll(t, fl, func(c *offload.Conn) error { return offload.StagePayloadDMA(sys, c, payload) }, conns)
	driveFleet(t, fl, conns, 32)

	reg := telemetry.NewRegistry()
	fl.RegisterMetrics(reg)
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	for _, name := range []string{
		"fleet.rank0.qdepth.p50", "fleet.rank0.qdepth.p99",
		"fleet.rank1.qdepth.p50", "fleet.rank1.qdepth.p99",
		"fleet.state.rank0", "fleet.state.rank1",
		"fleet.active", "fleet.admin_drains",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("registry missing %s", name)
		}
	}
	if got["fleet.rank0.qdepth.count"] == 0 {
		t.Fatal("rank 0 qdepth sketch empty after 32 ops")
	}
	if got["fleet.state.rank0"] != 1 || got["fleet.state.rank1"] != 1 {
		t.Fatalf("state bitmap %g/%g, want 1/1", got["fleet.state.rank0"], got["fleet.state.rank1"])
	}
	if err := fl.Drain(1); err != nil {
		t.Fatal(err)
	}
	got = map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["fleet.state.rank1"] != 0 {
		t.Fatalf("state.rank1 = %g after drain, want 0 (collectors must be live)", got["fleet.state.rank1"])
	}
}

// TestFleetMetricsConcurrentRegistration is the -race gate for the
// registry path: one goroutine per rank registers that rank's sketch
// concurrently (plus the state bitmap), then a single Sort restores a
// deterministic order — two snapshots must agree byte-for-byte, and a
// serially-registered registry must produce the identical report.
func TestFleetMetricsConcurrentRegistration(t *testing.T) {
	sys := newFleetSystem(t, 4)
	fl := newTestFleet(t, sys, fleet.RoundRobin)
	conns, _ := openConns(t, fl, 8)
	payload := corpus.Generate(corpus.HTML, 4096, 3)
	stageAll(t, fl, func(c *offload.Conn) error { return offload.StagePayloadDMA(sys, c, payload) }, conns)
	driveFleet(t, fl, conns, 48)

	render := func(reg *telemetry.Registry) string {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	conc := telemetry.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < fl.Members(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc.Register(fmt.Sprintf("fleet.rank%d.qdepth", i), fl.RankQDepth(i))
		}(i)
	}
	wg.Wait()
	conc.Sort()
	first := render(conc)
	if first != render(conc) {
		t.Fatal("two snapshots of the same registry differ")
	}

	serial := telemetry.NewRegistry()
	for i := 0; i < fl.Members(); i++ {
		serial.Register(fmt.Sprintf("fleet.rank%d.qdepth", i), fl.RankQDepth(i))
	}
	serial.Sort()
	if got := render(serial); got != first {
		t.Fatalf("concurrent registration report differs from serial:\n%s\nvs\n%s", first, got)
	}
	if !strings.Contains(first, "fleet.rank3.qdepth.p99") {
		t.Fatal("report missing rank3 p99")
	}
}
