package fleet_test

// Regression tests for the drain-and-reshard × RDMA race: a one-sided
// peer write posted before a migration must never land in the draining
// rank's pages after their contents were snapshotted (and freed). The
// fix quiesces the connection's MR before the buffer copy, so the stale
// WQE NAKs and retargets against the QP's post-migration binding — the
// PR-3 strand/abort rule extended to externally-writable buffers.

import (
	"bytes"
	"testing"

	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/rdma"
	"repro/internal/sim"
)

func newRDMAFleet(t *testing.T, ranks int) (*sim.System, *rdma.NIC, *fleet.Fleet, *offload.RDMA) {
	t.Helper()
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: sim.DefaultParams(), LLCBytes: 256 << 10, LLCWays: 8,
		WithSmartDIMM: true, SmartDIMMRanks: ranks,
		DataPath: sim.DataPathPeer,
	})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := rdma.New(rdma.Config{Sys: sys, RecordLandings: true})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.New(fleet.Config{
		Sys: sys, Policy: fleet.LeastLoaded, RNIC: nic, TracePlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := offload.NewRDMA(fl, nic)
	if err != nil {
		t.Fatal(err)
	}
	return sys, nic, fl, b
}

// TestFleetRDMAMigrationQuiescesInFlightMR is the race regression: post
// a WQE, migrate the connection before the doorbell rings, and prove the
// write lands in the new home's registration — never the freed pages.
func TestFleetRDMAMigrationQuiescesInFlightMR(t *testing.T) {
	sys, nic, fl, b := newRDMAFleet(t, 2)
	conn, err := b.NewConn(offload.Compression, 0, 4096)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	from := fl.Home(0)
	oldSrc := conn.Src

	// In-flight: posted to the SQ, doorbell not yet rung.
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	if err := nic.PostWrite(0, 0, data); err != nil {
		t.Fatalf("PostWrite: %v", err)
	}

	// Drain the home rank: the connection migrates to the survivor.
	if err := fl.Fail(from); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	to := fl.Home(0)
	if to == from || to < 0 {
		t.Fatalf("connection did not migrate off d%d (home d%d)", from, to)
	}
	if conn.Src == oldSrc {
		t.Fatalf("buffers did not move")
	}
	oldSnap, _, err := sys.DMAOut(oldSrc, len(data))
	if err != nil {
		t.Fatalf("DMAOut old region: %v", err)
	}

	// The late doorbell fires the stale WQE. With the quiesce in place
	// it NAKs against the invalidated rkey and retargets to the QP's
	// rebound MR over the new buffers.
	if _, err := nic.RingDoorbell(0); err != nil {
		t.Fatalf("RingDoorbell: %v", err)
	}
	st := nic.Stats()
	if st.StaleRkeyRetries != 1 {
		t.Fatalf("stale-rkey retries %d, want 1 (%+v)", st.StaleRkeyRetries, st)
	}
	if st.Failed != 0 || st.Completed != 1 {
		t.Fatalf("stale WQE should complete after retarget: %+v", st)
	}

	got, _, err := sys.DMAOut(conn.Src, len(data))
	if err != nil {
		t.Fatalf("DMAOut new region: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("in-flight write missing from the migrated buffer")
	}
	oldNow, _, err := sys.DMAOut(oldSrc, len(data))
	if err != nil {
		t.Fatalf("DMAOut old region: %v", err)
	}
	if !bytes.Equal(oldSnap, oldNow) {
		t.Fatalf("in-flight write landed in the draining rank's freed pages")
	}
	for _, l := range nic.Landings() {
		mr, ok := nic.LookupMR(l.Rkey)
		if !ok || l.Addr < mr.Addr || l.Addr+uint64(l.Len) > mr.Addr+uint64(mr.Len) {
			t.Fatalf("landing outside its registered region: %+v", l)
		}
	}
	if fl.OutstandingPages() != fl.ExpectedPages() {
		t.Fatalf("page conservation: outstanding %d != expected %d",
			fl.OutstandingPages(), fl.ExpectedPages())
	}
}

// TestFleetRDMAMigrationReregisters checks the steady-state MR-locality
// invariant: after any migration the connection's registration covers
// exactly its current buffers, and deposits keep flowing.
func TestFleetRDMAMigrationReregisters(t *testing.T) {
	sys, nic, fl, b := newRDMAFleet(t, 2)
	conn, err := b.NewConn(offload.Compression, 0, 4096)
	if err != nil {
		t.Fatalf("NewConn: %v", err)
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := b.Ingest(conn, payload); err != nil {
		t.Fatalf("Ingest before migration: %v", err)
	}
	if err := fl.Fail(fl.Home(0)); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if _, err := b.Ingest(conn, payload); err != nil {
		t.Fatalf("Ingest after migration: %v", err)
	}
	got, _, err := sys.DMAOut(conn.Src, len(payload))
	if err != nil {
		t.Fatalf("DMAOut: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-migration deposit missing from the rebound MR")
	}
	if st := nic.Stats(); st.MRInvalidations != 1 || st.Registrations != 2 {
		t.Fatalf("expected one quiesce + one re-registration: %+v", st)
	}
}
