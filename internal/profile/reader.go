// Reading traces back in. cmd/tracestat works offline on the JSON that
// `smartdimm-sim -trace` wrote, so this file inverts the telemetry
// package's Perfetto exporter: thread_name metadata rebuilds the track
// table (tid−1 = TrackID), phases X/i/C/b/e map back onto event kinds,
// and timestamps parse as decimal strings — the exporter's "%d.%06d"
// µs form carries exact picoseconds, and going through a float64 would
// round them, breaking the byte-identical analysis gate.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// pfEvent is one trace_event line as our exporter writes it.
type pfEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Tid  int             `json:"tid"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	ID   string          `json:"id"`
	Args json.RawMessage `json:"args"`
}

// ReadPerfetto parses a trace_event JSON document into the track table
// and event stream the analyzers consume. Only the constructs our
// exporter emits are recognized; anything else is skipped so the reader
// tolerates hand-edited or truncated-then-repaired traces.
func ReadPerfetto(r io.Reader) ([]string, []telemetry.Event, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var doc struct {
		TraceEvents []pfEvent `json:"traceEvents"`
	}
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("parse trace JSON: %w", err)
	}

	var tracks []string
	var events []telemetry.Event
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name != "thread_name" || e.Tid < 1 {
				continue
			}
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				return nil, nil, fmt.Errorf("event %d: thread_name args: %w", i, err)
			}
			for len(tracks) < e.Tid {
				tracks = append(tracks, "")
			}
			tracks[e.Tid-1] = args.Name
			continue
		}
		var kind telemetry.Kind
		switch e.Ph {
		case "X":
			kind = telemetry.KindSpan
		case "i":
			kind = telemetry.KindInstant
		case "C":
			kind = telemetry.KindCounter
		case "b":
			kind = telemetry.KindAsyncBegin
		case "e":
			kind = telemetry.KindAsyncEnd
		default:
			continue
		}
		ev := telemetry.Event{
			Kind:  kind,
			Track: telemetry.TrackID(e.Tid - 1),
			Name:  e.Name,
		}
		var err error
		if ev.AtPs, err = psFromMicros(e.Ts.String()); err != nil {
			return nil, nil, fmt.Errorf("event %d (%s): ts: %w", i, e.Name, err)
		}
		switch kind {
		case telemetry.KindSpan:
			if ev.DurPs, err = psFromMicros(e.Dur.String()); err != nil {
				return nil, nil, fmt.Errorf("event %d (%s): dur: %w", i, e.Name, err)
			}
		case telemetry.KindCounter:
			var args struct {
				Value json.Number `json:"value"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				return nil, nil, fmt.Errorf("event %d (%s): counter args: %w", i, e.Name, err)
			}
			if ev.Value, err = args.Value.Float64(); err != nil {
				return nil, nil, fmt.Errorf("event %d (%s): counter value: %w", i, e.Name, err)
			}
		case telemetry.KindAsyncBegin, telemetry.KindAsyncEnd:
			id := strings.TrimPrefix(e.ID, "0x")
			if ev.ID, err = strconv.ParseUint(id, 16, 64); err != nil {
				return nil, nil, fmt.Errorf("event %d (%s): async id %q: %w", i, e.Name, e.ID, err)
			}
		}
		events = append(events, ev)
	}
	return tracks, events, nil
}

// psFromMicros converts a decimal microsecond literal ("1234.567890")
// to integer picoseconds without any float step. Fractions shorter than
// six digits are zero-padded; longer ones are rejected — the exporter
// never writes sub-picosecond digits.
func psFromMicros(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty timestamp")
	}
	whole, frac := s, ""
	if dot := strings.IndexByte(s, '.'); dot >= 0 {
		whole, frac = s[:dot], s[dot+1:]
	}
	if len(frac) > 6 {
		return 0, fmt.Errorf("timestamp %q has sub-picosecond digits", s)
	}
	w, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("timestamp %q: %w", s, err)
	}
	var f int64
	if frac != "" {
		if f, err = strconv.ParseInt(frac, 10, 64); err != nil {
			return 0, fmt.Errorf("timestamp %q: %w", s, err)
		}
		for i := len(frac); i < 6; i++ {
			f *= 10
		}
	}
	if w < 0 {
		return w*1_000_000 - f, nil
	}
	return w*1_000_000 + f, nil
}
