// The KPI regression harness behind `./ci.sh bench`. It runs a small
// set of pinned, fully deterministic serving scenarios — same seed,
// same calibration, chaos off — extracts the KPIs the paper's
// evaluation argues about (throughput, tail latency, host cycles per
// transmitted byte, memory bandwidth), and compares them against the
// committed baseline in BENCH_baseline.json. Because the simulator is
// deterministic, an unchanged tree reproduces the baseline to the last
// bit; the tolerance exists so intentional calibration tweaks within a
// band don't trip the gate, while a real regression (a slowed hot path,
// a scheduling bug, an accounting error) does.
package profile

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/offload"
	"repro/internal/rdma"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wrkgen"
)

// BenchScenario pins one deterministic serving run.
type BenchScenario struct {
	Name      string `json:"name"`
	Placement string `json:"placement"` // cpu | smartdimm | a fleet policy
	Devices   int    `json:"devices"`   // SmartDIMM ranks (fleet when > 1)
	ULP       string `json:"ulp"`       // tls | compression
	Msg       int    `json:"msg"`
	Conns     int    `json:"conns"`
	Workers   int    `json:"workers"`
	Seed      int64  `json:"seed"`
	WarmupPs  int64  `json:"warmup_ps"`
	MeasurePs int64  `json:"measure_ps"`
	// Shards > 0 runs the scenario on the sharded PDES cluster
	// (fleet.Sharded): Shards sub-systems with Devices ranks each,
	// Placement naming the per-shard fleet policy. ExecWorkers sets the
	// epoch parallelism (0 = GOMAXPROCS, 1 = serial reference); the sim
	// KPIs are byte-identical either way, only wall KPIs move.
	Shards      int         `json:"shards,omitempty"`
	ExecWorkers int         `json:"exec_workers,omitempty"`
	Params      *sim.Params `json:"-"` // calibration override; nil = DefaultParams
	// Nodes > 0 runs the scenario on the replicated cluster tier
	// (internal/cluster): Nodes server nodes behind quorum-ack
	// replication with Conns closed-loop client connections, chaos off.
	// The KPI set is the client-visible one (acked ops, redirects,
	// promotions) rather than the per-server serving KPIs.
	Nodes int `json:"nodes,omitempty"`
	// DataPath selects how records reach the device buffers: "" or
	// "host" is the host-mediated path (storage DMA bouncing through
	// host DRAM on page-cache misses); "peer" is the zero-copy RDMA
	// path (the NIC writes straight into the registered lower-half
	// buffers). "peer" requires an inline placement (smartdimm or a
	// fleet policy).
	DataPath string `json:"datapath,omitempty"`
	// Workload, when set ("kv" or "embed"), runs the scenario through
	// the trace-replay workload suite (internal/workload) instead of the
	// closed-loop generator: an open-loop arrival trace at RPS drives
	// the named request mix over a Devices-rank fleet, chaos and
	// autoscaler off. Placement names the fleet policy; Msg is ignored
	// (the source's own payload mix governs).
	Workload string  `json:"workload,omitempty"`
	RPS      float64 `json:"rps,omitempty"` // open-loop offered rate (Workload only)
}

// Clock reads a wall-time instant in nanoseconds. The bench harness
// takes it as an injected dependency (internal/ is wall-clock-free by
// the determinism gate in ci.sh); cmd/tracestat passes time.Now.
type Clock func() int64

// BenchResult carries one scenario's extracted KPIs. The map marshals
// with sorted keys, so the JSON report is byte-deterministic.
type BenchResult struct {
	Name string             `json:"name"`
	KPIs map[string]float64 `json:"kpis"`
}

// BenchReport is the whole harness output (BENCH_results.json /
// BENCH_baseline.json).
type BenchReport struct {
	Scenarios []BenchResult `json:"scenarios"`
}

// DefaultBenchScenarios are the pinned regression scenarios: the
// single-device SmartDIMM placement, the 4-rank sharded fleet, and the
// all-CPU baseline the paper compares against. Windows are short — the
// gate needs stable KPIs, not converged steady state, and determinism
// makes short windows exactly reproducible.
func DefaultBenchScenarios() []BenchScenario {
	return []BenchScenario{
		{Name: "smartdimm-1dev", Placement: "smartdimm", Devices: 1, ULP: "tls",
			Msg: 4096, Conns: 64, Workers: 10, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
		{Name: "fleet-4rank", Placement: "rr", Devices: 4, ULP: "tls",
			Msg: 4096, Conns: 128, Workers: 10, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
		{Name: "cpu-baseline", Placement: "cpu", Devices: 1, ULP: "tls",
			Msg: 4096, Conns: 64, Workers: 10, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
		// The sharded PDES scenario: ~100k requests over an 8-shard rack
		// slice, sized so single-run parallelism shows up in the wall
		// columns (sim KPIs stay byte-identical at any ExecWorkers).
		{Name: "fleet-8rank-big", Placement: "rr", Shards: 8, Devices: 1, ULP: "tls",
			Msg: 4096, Conns: 512, Workers: 10, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 20 * sim.Ms},
		// The replicated cluster tier, healthy (chaos off): pins the
		// replication path's client-visible KPIs — quorum-ack write and
		// leased-read goodput, mean ack latency, and the redirect/timeout
		// counters that caught the router cursor ping-pong regression.
		{Name: "cluster-3node", Placement: "cluster", Nodes: 3, ULP: "tls",
			Msg: 1024, Conns: 6, Workers: 2, Seed: 1, WarmupPs: 2 * sim.Ms, MeasurePs: 8 * sim.Ms},
		// The zero-copy peer-DMA data path: fleet-4rank's twin with the
		// NIC depositing records straight into the registered rank
		// buffers. Pins the RDMA ingress KPIs (goodput with the bounce
		// stage gone, doorbell coalescing) against the host-mediated
		// twin above.
		{Name: "rdma-4rank", Placement: "rr", Devices: 4, ULP: "tls", DataPath: "peer",
			Msg: 4096, Conns: 128, Workers: 10, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
		// The production workload suite (internal/workload), open-loop
		// at a fixed offered rate, autoscaler off: the KV-cache GET/SET
		// mix and the embedding-gather mix over a 4-rank fleet. These pin
		// the trace-replay path itself — arrival shaping, the workload
		// sources, and the gather stage — not just the serving stack.
		{Name: "kv-4rank", Placement: "rr", Devices: 4, Workload: "kv", RPS: 1.8e6,
			Conns: 64, Workers: 16, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
		{Name: "embed-4rank", Placement: "rr", Devices: 4, Workload: "embed", RPS: 5e5,
			Conns: 64, Workers: 16, Seed: 1, WarmupPs: sim.Ms, MeasurePs: 4 * sim.Ms},
	}
}

// RunBenchScenario builds a fresh system and runs one closed-loop
// measurement, returning the scenario's KPIs.
func RunBenchScenario(sc BenchScenario) (BenchResult, error) {
	return RunBenchScenarioClocked(sc, nil)
}

// RunBenchScenarioClocked is RunBenchScenario with an optional wall
// clock. A non-nil clock adds the volatile wall KPIs — "wall_seconds"
// and "sim_req_per_wall_s" (simulated requests retired per wall-clock
// second, the single-run parallelism figure of merit). Wall KPIs never
// belong in BENCH_baseline.json; StripVolatile removes them.
func RunBenchScenarioClocked(sc BenchScenario, clock Clock) (BenchResult, error) {
	res := BenchResult{Name: sc.Name}
	params := sim.DefaultParams()
	if sc.Params != nil {
		params = *sc.Params
	}
	var start int64
	if clock != nil {
		start = clock()
	}
	var retired float64 // simulated work units for the wall-rate KPI
	if sc.Workload != "" {
		kpis, err := runWorkloadBench(sc, params)
		if err != nil {
			return res, err
		}
		res.KPIs = kpis
		retired = kpis["requests"]
	} else if sc.Nodes > 0 {
		kpis, err := runClusterWorkload(sc, params)
		if err != nil {
			return res, err
		}
		res.KPIs = kpis
		retired = kpis["ops"]
	} else {
		m, err := runScenarioWorkload(sc, params)
		if err != nil {
			return res, err
		}
		cyclesPerByte := 0.0
		if m.TXBytes > 0 {
			// ps → cycles: cycles = ps * GHz / 1000.
			cyclesPerByte = float64(m.CPUBusyPs) * params.CPUClockGHz / 1000 / float64(m.TXBytes)
		}
		res.KPIs = map[string]float64{
			"requests":        float64(m.Requests),
			"rps":             m.RPS,
			"mean_lat_ps":     float64(m.MeanLatPs),
			"p99_lat_ps":      m.Latency.Percentile(99),
			"cycles_per_byte": cyclesPerByte,
			"mem_bw_gbps":     m.MemBWGBps,
		}
		retired = float64(m.Requests)
	}
	if clock != nil {
		wall := float64(clock()-start) * 1e-9
		res.KPIs["wall_seconds"] = wall
		if wall > 0 {
			res.KPIs["sim_req_per_wall_s"] = retired / wall
		}
	}
	return res, nil
}

// runWorkloadBench runs the scenario through the trace-replay workload
// suite and extracts the serving KPIs plus the open-loop ones (issued
// count and end-to-end p99 over the replayer's record). workload.Run
// calibrates from DefaultParams; Params overrides don't apply here.
func runWorkloadBench(sc BenchScenario, params sim.Params) (map[string]float64, error) {
	pol, err := fleet.ParsePolicy(sc.Placement)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: workload runs need a fleet policy placement: %w", sc.Name, err)
	}
	rep, err := workload.Run(workload.RunConfig{
		Kind: sc.Workload, Ranks: sc.Devices, Policy: pol,
		Conns: sc.Conns, Workers: sc.Workers, Seed: sc.Seed,
		HorizonPs: sc.WarmupPs + sc.MeasurePs, WarmupPs: sc.WarmupPs, DrainPs: sim.Ms,
		KV:       workload.KVConfig{ZipfS: 0.99},
		Arrivals: wrkgen.ArrivalConfig{Streams: 4, BaseRPS: sc.RPS},
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	m := rep.Metrics
	cyclesPerByte := 0.0
	if m.TXBytes > 0 {
		cyclesPerByte = float64(m.CPUBusyPs) * params.CPUClockGHz / 1000 / float64(m.TXBytes)
	}
	return map[string]float64{
		"requests":        float64(m.Requests),
		"rps":             m.RPS,
		"mean_lat_ps":     float64(m.MeanLatPs),
		"p99_lat_ps":      rep.P99Ps,
		"cycles_per_byte": cyclesPerByte,
		"mem_bw_gbps":     m.MemBWGBps,
		"issued":          float64(rep.Issued),
	}, nil
}

// runClusterWorkload runs the scenario on the replicated cluster tier
// and extracts the client-visible KPIs.
func runClusterWorkload(sc BenchScenario, params sim.Params) (map[string]float64, error) {
	mode := server.HTTPSMode
	if sc.ULP == "compression" {
		mode = server.CompressedHTTP
	}
	c, err := cluster.New(cluster.Config{
		Nodes: sc.Nodes, Conns: sc.Conns, MsgSize: sc.Msg, Workers: sc.Workers,
		FileKind: corpus.Text, Mode: mode, Seed: sc.Seed,
		ExecWorkers: sc.ExecWorkers, Params: &params,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	m, err := c.Run(sc.WarmupPs, sc.MeasurePs)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return map[string]float64{
		"ops":          float64(m.Ops),
		"ops_per_sec":  m.OpsPerSec,
		"acked_writes": float64(m.AckedWrites),
		"acked_reads":  float64(m.AckedReads),
		"mean_lat_ps":  float64(m.MeanLatPs),
		"redirects":    float64(m.Redirects),
		"timeouts":     float64(m.Timeouts),
		"promotions":   float64(m.Promotions),
	}, nil
}

// runScenarioWorkload executes the scenario's serving run — on the
// sharded cluster when Shards > 0, on a single serial system otherwise —
// and returns the (aggregated) server metrics.
func runScenarioWorkload(sc BenchScenario, params sim.Params) (server.Metrics, error) {
	if sc.Shards > 0 {
		return runShardedWorkload(sc, params)
	}
	return runSerialWorkload(sc, params)
}

// runShardedWorkload runs the scenario on a fleet.Sharded cluster.
func runShardedWorkload(sc BenchScenario, params sim.Params) (server.Metrics, error) {
	pol, err := fleet.ParsePolicy(sc.Placement)
	if err != nil {
		return server.Metrics{}, fmt.Errorf("scenario %s: sharded runs need a fleet policy placement: %w", sc.Name, err)
	}
	mode := server.HTTPSMode
	if sc.ULP == "compression" {
		mode = server.CompressedHTTP
	}
	cl, err := fleet.NewSharded(fleet.ShardedConfig{
		Shards: sc.Shards, RanksPerShard: sc.Devices, Policy: pol,
		Workers: sc.Workers, MsgSize: sc.Msg, Connections: sc.Conns,
		FileKind: corpus.Text, Mode: mode, Seed: sc.Seed,
		ExecWorkers: sc.ExecWorkers, Params: &params,
	})
	if err != nil {
		return server.Metrics{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	sm, err := cl.Run(sc.WarmupPs, sc.MeasurePs)
	if err != nil {
		return server.Metrics{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return sm.Agg, nil
}

// runSerialWorkload runs the scenario on one serial system.
func runSerialWorkload(sc BenchScenario, params sim.Params) (server.Metrics, error) {
	pol, polErr := fleet.ParsePolicy(sc.Placement)
	isFleet := polErr == nil
	if sc.Devices > 1 && !isFleet {
		return server.Metrics{}, fmt.Errorf("scenario %s: %d devices needs a fleet policy placement", sc.Name, sc.Devices)
	}
	withDIMM := sc.Placement == "smartdimm" || isFleet
	ranks := 0
	if isFleet {
		ranks = sc.Devices
	}
	peer := sc.DataPath == "peer"
	if sc.DataPath != "" && sc.DataPath != "host" && !peer {
		return server.Metrics{}, fmt.Errorf("scenario %s: unknown data path %q", sc.Name, sc.DataPath)
	}
	if peer && !withDIMM {
		return server.Metrics{}, fmt.Errorf("scenario %s: peer data path needs an inline placement", sc.Name)
	}
	dp := sim.DataPathHost
	if peer {
		dp = sim.DataPathPeer
	}
	sys, err := sim.NewSystem(sim.SystemConfig{
		Params: params, LLCBytes: 2 << 20, LLCWays: 8,
		Geometry:       dram.Geometry{Ranks: 1, BankGroups: 4, BanksPerBG: 4, Rows: 4096, ColsPerRow: 128},
		WithSmartDIMM:  withDIMM,
		SmartDIMMRanks: ranks,
		DataPath:       dp,
	})
	if err != nil {
		return server.Metrics{}, err
	}
	var nic *rdma.NIC
	if peer {
		if nic, err = rdma.New(rdma.Config{Sys: sys}); err != nil {
			return server.Metrics{}, err
		}
	}

	var backend offload.Backend
	switch {
	case isFleet:
		fl, err := fleet.New(fleet.Config{Sys: sys, Policy: pol, RNIC: nic})
		if err != nil {
			return server.Metrics{}, err
		}
		backend = fl
	case sc.Placement == "cpu":
		backend = &offload.CPU{Sys: sys}
	case sc.Placement == "smartdimm":
		backend = &offload.SmartDIMM{Sys: sys}
	default:
		return server.Metrics{}, fmt.Errorf("scenario %s: unknown placement %q", sc.Name, sc.Placement)
	}
	if peer {
		if backend, err = offload.NewRDMA(backend, nic); err != nil {
			return server.Metrics{}, err
		}
	}

	mode := server.HTTPSMode
	if sc.ULP == "compression" {
		mode = server.CompressedHTTP
	}
	srv, err := server.New(sys.Engine, server.Config{
		Sys: sys, Backend: backend, Mode: mode, Workers: sc.Workers,
		MsgSize: sc.Msg, Connections: sc.Conns, FileKind: corpus.Text, Seed: sc.Seed,
	})
	if err != nil {
		return server.Metrics{}, err
	}
	gen := wrkgen.New(sys.Engine, srv, wrkgen.Config{
		Connections: sc.Conns,
		ThinkPs:     int64(sys.Params.RTTUs * float64(sim.Us)),
	})
	gen.Start()
	sys.Engine.RunUntil(sc.WarmupPs)
	srv.BeginMeasurement()
	gen.BeginMeasurement()
	sys.Engine.RunUntil(sc.WarmupPs + sc.MeasurePs)
	m := srv.Collect()
	if err := srv.LastError(); err != nil {
		return server.Metrics{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return m, nil
}

// RunBench runs every scenario in order.
func RunBench(scenarios []BenchScenario) (*BenchReport, error) {
	return RunBenchClocked(scenarios, nil)
}

// RunBenchClocked runs every scenario in order with an optional wall
// clock (see RunBenchScenarioClocked).
func RunBenchClocked(scenarios []BenchScenario, clock Clock) (*BenchReport, error) {
	rep := &BenchReport{}
	for _, sc := range scenarios {
		r, err := RunBenchScenarioClocked(sc, clock)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, r)
	}
	return rep, nil
}

// StripVolatile removes the wall-clock KPIs ("wall_*",
// "sim_req_per_wall_s") from a report in place and returns it. Baseline
// pinning must call this: wall KPIs vary run to run and host to host,
// and the comparison gate treats a baseline key missing from a fresh
// run as a drift.
func StripVolatile(rep *BenchReport) *BenchReport {
	for _, r := range rep.Scenarios {
		for k := range r.KPIs {
			if k == "sim_req_per_wall_s" || len(k) >= 5 && k[:5] == "wall_" {
				delete(r.KPIs, k)
			}
		}
	}
	return rep
}

// MarshalBench renders a report as stable, committed-diff-friendly
// JSON: scenarios in run order, KPI keys sorted (map marshaling sorts),
// trailing newline.
func MarshalBench(rep *BenchReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// UnmarshalBench parses a committed report.
func UnmarshalBench(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Drift is one KPI that moved beyond tolerance (or vanished).
type Drift struct {
	Scenario string
	KPI      string
	Base     float64
	Got      float64
	Rel      float64 // |got-base| / max(|base|, epsilon); +Inf when missing
}

func (d Drift) String() string {
	return fmt.Sprintf("%s/%s: baseline %g, got %g (drift %.2f%%)",
		d.Scenario, d.KPI, d.Base, d.Got, d.Rel*100)
}

// CompareBench checks a fresh report against the baseline: every
// baseline scenario and KPI must be present and within rel tolerance.
// New scenarios/KPIs in got (not yet in the baseline) are not drifts —
// they appear once the baseline is re-pinned with -update-baseline.
func CompareBench(base, got *BenchReport, tol float64) []Drift {
	byName := map[string]BenchResult{}
	for _, r := range got.Scenarios {
		byName[r.Name] = r
	}
	var drifts []Drift
	for _, b := range base.Scenarios {
		g, ok := byName[b.Name]
		if !ok {
			drifts = append(drifts, Drift{Scenario: b.Name, KPI: "(scenario)", Rel: math.Inf(1)})
			continue
		}
		names := make([]string, 0, len(b.KPIs))
		for k := range b.KPIs {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			bv := b.KPIs[k]
			gv, ok := g.KPIs[k]
			if !ok {
				drifts = append(drifts, Drift{Scenario: b.Name, KPI: k, Base: bv, Rel: math.Inf(1)})
				continue
			}
			denom := math.Abs(bv)
			if denom < 1e-12 {
				denom = 1e-12
			}
			rel := math.Abs(gv-bv) / denom
			if rel > tol {
				drifts = append(drifts, Drift{Scenario: b.Name, KPI: k, Base: bv, Got: gv, Rel: rel})
			}
		}
	}
	return drifts
}
