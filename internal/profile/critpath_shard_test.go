package profile

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestCritPathShardPairing: merged shard traces reuse async ids across
// tracks (every shard counts "req" from 1). Pairing must be per-track,
// or shard 0's begin would close against shard 1's end.
func TestCritPathShardPairing(t *testing.T) {
	tr := telemetry.New()
	s0 := tr.Track("s0/requests")
	s1 := tr.Track("s1/requests")
	tr.AsyncBegin(s0, "req", 1, 0)
	tr.AsyncBegin(s1, "req", 1, 100)
	// Ends arrive cross-ordered: s1's first. Name+id pairing would hand
	// s0's begin (at 0) to this end and report a 300ps request.
	tr.AsyncEnd(s1, "req", 1, 300)
	tr.AsyncEnd(s0, "req", 1, 1_000)
	cp := AnalyzeTracer(tr, Options{})
	if len(cp.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(cp.Requests))
	}
	lat := map[int64]bool{}
	for _, r := range cp.Requests {
		lat[r.LatencyPs()] = true
	}
	if !lat[200] || !lat[1_000] {
		t.Fatalf("latencies = %+v, want {200, 1000}: cross-shard ids mispaired", cp.Requests)
	}
}

// TestCritPathShardAwareAttribution: under ShardAware a span blocks only
// requests of its own shard — shards are disjoint hardware — while
// shared planes ("fe/" here) attribute to every request, and the engine
// exclusion matches through the shard prefix.
func TestCritPathShardAwareAttribution(t *testing.T) {
	tr := telemetry.New()
	s0r := tr.Track("s0/requests")
	s1r := tr.Track("s1/requests")
	s0w := tr.Track("s0/worker0")
	s1w := tr.Track("s1/worker0")
	fe := tr.Track("fe/dispatch")
	s0e := tr.Track("s0/engine")

	// Two concurrent requests, one per shard, over [0, 1000).
	tr.AsyncBegin(s0r, "req", 1, 0)
	tr.AsyncBegin(s1r, "req", 1, 0)
	tr.Span(s0w, "ulp", 0, 400)       // shard 0 work
	tr.Span(s1w, "ulp", 0, 250)       // shard 1 work
	tr.Span(fe, "dispatch", 500, 100) // shared fabric hop
	tr.Span(s0e, "run", 0, 1_000)     // container, must stay excluded
	tr.AsyncEnd(s0r, "req", 1, 1_000)
	tr.AsyncEnd(s1r, "req", 1, 1_000)

	cp := AnalyzeTracer(tr, Options{ShardAware: true})
	if len(cp.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(cp.Requests))
	}
	// Requests come out in end-emission order: s0 first.
	byName := func(r Request) map[string]int64 {
		m := map[string]int64{}
		for _, s := range r.Stages {
			m[s.Name] = s.Ps
		}
		return m
	}
	r0, r1 := byName(cp.Requests[0]), byName(cp.Requests[1])
	if r0["ulp"] != 400 || r0["dispatch"] != 100 || r0[WaitStage] != 500 {
		t.Fatalf("shard-0 request stages = %v", r0)
	}
	if r1["ulp"] != 250 || r1["dispatch"] != 100 || r1[WaitStage] != 650 {
		t.Fatalf("shard-1 request stages = %v (foreign shard's ulp bled through?)", r1)
	}
	for _, s := range cp.Stages {
		if s.Name == "run" {
			t.Fatal("prefixed engine track leaked into the stage table")
		}
	}

	// Without ShardAware the old global attribution applies: shard 1's
	// request also counts shard 0's ulp span (union 400).
	flat := AnalyzeTracer(tr, Options{})
	r1flat := byName(flat.Requests[1])
	if r1flat["ulp"] != 400 {
		t.Fatalf("flat shard-1 ulp = %d, want global union 400", r1flat["ulp"])
	}
}

// TestCritPathShardedClusterDispatchStage runs a real sharded fleet and
// checks the analyzer end-to-end on its merged trace: per-shard request
// lifecycles pair correctly, the dispatch fabric shows up as its own
// stage, and the front-end "creq" windows decompose into fabric time
// plus wait.
func TestCritPathShardedClusterDispatchStage(t *testing.T) {
	sc, err := fleet.NewSharded(fleet.ShardedConfig{
		Shards: 2, Workers: 4, MsgSize: 2048, Connections: 6,
		FileKind: corpus.Text, Mode: server.HTTPSMode, Seed: 11,
		ExecWorkers: 1, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(sim.Ms/2, sim.Ms); err != nil {
		t.Fatal(err)
	}
	mt := sc.MergedTrace()
	cp := Analyze(mt.Tracks(), mt.Events(), Options{FromPs: sim.Ms / 2, ShardAware: true})
	if len(cp.Requests) == 0 {
		t.Fatal("no requests analyzed from the merged trace")
	}
	for _, r := range cp.Requests {
		if r.LatencyPs() <= 0 {
			t.Fatalf("non-positive latency %d for request %d: cross-shard mispairing", r.LatencyPs(), r.ID)
		}
	}
	var dispatch *StageTotal
	for i := range cp.Stages {
		if cp.Stages[i].Name == "dispatch" {
			dispatch = &cp.Stages[i]
		}
	}
	if dispatch == nil || dispatch.BlockedPs <= 0 {
		t.Fatalf("dispatch fabric not attributed: stages = %+v", cp.Stages)
	}
	// Every creq window must contain fabric time: the round trip is two
	// DispatchPs hops by construction.
	nCreq := 0
	for _, e := range mt.Events() {
		if e.Kind == telemetry.KindAsyncBegin && e.Name == "creq" {
			nCreq++
		}
	}
	if nCreq == 0 {
		t.Fatal("front-end emitted no creq lifecycles")
	}
}
