package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// buildTrace assembles a small, fully-known trace: two memory ranks, a
// worker, a nic, and two request lifecycles.
func buildTrace() *telemetry.Tracer {
	tr := telemetry.New()
	eng := tr.Track("engine")
	m0 := tr.Track("mem/rank0")
	m1 := tr.Track("mem/rank1")
	wk := tr.Track("worker0")
	nic := tr.Track("nic")
	req := tr.Track("requests")

	tr.Span(eng, "run", 0, 10_000) // excluded from critpath by default
	tr.Span(m0, "drain", 100, 1_000)
	tr.Span(m0, "CompCpy", 200, 300) // nested inside the drain window
	tr.Span(m1, "drain", 4_000, 500)
	tr.Instant(m0, "ALERT_N", 600)

	// Request 1: parse 100..600, ulp 700..1_700, tx 1_700..1_900.
	tr.AsyncBegin(req, "req", 1, 0)
	tr.Span(wk, "parse", 100, 500)
	tr.Span(wk, "ulp", 700, 1_000)
	tr.Span(nic, "tx", 1_700, 200)
	tr.AsyncEnd(req, "req", 1, 2_000)

	// Request 2: only ulp work, mostly waiting.
	tr.AsyncBegin(req, "req", 2, 5_000)
	tr.Span(wk, "ulp", 5_500, 200)
	tr.AsyncEnd(req, "req", 2, 7_000)
	return tr
}

func TestProfileTreeAttribution(t *testing.T) {
	p := FromTracer(buildTrace())
	if p.EndPs != 10_000 {
		t.Fatalf("EndPs = %d, want 10000", p.EndPs)
	}
	if p.Tracks != 6 || p.Spans != 8 || p.Instants != 1 {
		t.Fatalf("counts = %d/%d/%d", p.Tracks, p.Spans, p.Instants)
	}
	// mem is structural: drains sum to 1500; CompCpy nests inside rank0's
	// drain so the drain keeps 700 self.
	mem := findNode(t, p.Root, "mem")
	if mem.TotalPs != 1_500 || mem.SelfPs != 0 {
		t.Fatalf("mem total/self = %d/%d", mem.TotalPs, mem.SelfPs)
	}
	drain0 := findNode(t, mem, "rank0", "drain")
	if drain0.TotalPs != 1_000 || drain0.SelfPs != 700 {
		t.Fatalf("rank0 drain total/self = %d/%d", drain0.TotalPs, drain0.SelfPs)
	}
	cpy := findNode(t, drain0, "CompCpy")
	if cpy.TotalPs != 300 || cpy.SelfPs != 300 || cpy.Count != 1 {
		t.Fatalf("CompCpy = %+v", cpy)
	}
	// worker0 is a span container: parse 500 + ulp 1200.
	if wk := findNode(t, p.Root, "worker0"); wk.TotalPs != 1_700 {
		t.Fatalf("worker0 total = %d", wk.TotalPs)
	}
	if ulp := findNode(t, p.Root, "worker0", "ulp"); ulp.Count != 2 || ulp.TotalPs != 1_200 {
		t.Fatalf("ulp = %+v", ulp)
	}
	if alert := findNode(t, mem, "rank0", "ALERT_N"); alert.Count != 1 || alert.TotalPs != 0 {
		t.Fatalf("instant node = %+v", alert)
	}
}

func findNode(t *testing.T, n *Node, path ...string) *Node {
	t.Helper()
	for _, name := range path {
		var next *Node
		for _, c := range n.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		if next == nil {
			t.Fatalf("node %q not found under %q", name, n.Name)
		}
		n = next
	}
	return n
}

// The tree text must not depend on event emission order: shuffling the
// span emission sequence (same simulated timestamps) renders the same
// bytes.
func TestProfileTreeDeterministicUnderEmissionOrder(t *testing.T) {
	base := buildTrace()
	want := renderTree(t, FromTracer(base))

	// Re-emit the same events in a different order.
	events := base.Events()
	shuffled := make([]telemetry.Event, 0, len(events))
	for i := len(events) - 1; i >= 0; i-- {
		shuffled = append(shuffled, events[i])
	}
	got := renderTree(t, FromEvents(base.Tracks(), shuffled))
	if got != want {
		t.Fatalf("tree differs under emission order:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func renderTree(t *testing.T, p *Profile) string {
	t.Helper()
	var b strings.Builder
	if err := p.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWriteTopRanksBySelfTime(t *testing.T) {
	p := FromTracer(buildTrace())
	var b strings.Builder
	if err := p.WriteTop(&b, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("top output:\n%s", b.String())
	}
	// Hottest self-time path is the engine's run span (10000ps).
	if !strings.Contains(lines[1], "engine/run") {
		t.Fatalf("hottest row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "worker0/ulp") {
		t.Fatalf("second row = %q", lines[2])
	}
}

func TestCritPathAttribution(t *testing.T) {
	tr := buildTrace()
	cp := AnalyzeTracer(tr, Options{})
	if len(cp.Requests) != 2 {
		t.Fatalf("requests = %d", len(cp.Requests))
	}
	r1 := cp.Requests[0]
	if r1.ID != 1 || r1.LatencyPs() != 2_000 {
		t.Fatalf("r1 = %+v", r1)
	}
	// Window [0,2000): parse 500, ulp 1000, tx 200, drain [100,1100)=1000,
	// CompCpy 300 (inside drain). Coverage union: drain+parse cover
	// [100,1100), ulp extends to 1700, tx to 1900 → covered 1800, wait 200.
	want := map[string]int64{
		"parse": 500, "ulp": 1_000, "tx": 200,
		"drain": 1_000, "CompCpy": 300, WaitStage: 200,
	}
	got := map[string]int64{}
	for _, s := range r1.Stages {
		got[s.Name] = s.Ps
	}
	for n, ps := range want {
		if got[n] != ps {
			t.Fatalf("r1 stage %s = %d, want %d (all: %v)", n, got[n], ps, got)
		}
	}
	if r1.Dominant != "drain" && r1.Dominant != "ulp" {
		// drain and ulp tie at 1000; lexicographic tie-break picks drain.
		t.Fatalf("r1 dominant = %q", r1.Dominant)
	}
	if r1.Dominant != "drain" {
		t.Fatalf("tie-break: dominant = %q, want drain", r1.Dominant)
	}

	r2 := cp.Requests[1]
	// Window [5000,7000): ulp 200, wait 1800.
	if r2.WaitPs != 1_800 || r2.Dominant != WaitStage {
		t.Fatalf("r2 = %+v", r2)
	}

	// Fleet table: blocked sums across requests, engine's run excluded.
	for _, s := range cp.Stages {
		if s.Name == "run" {
			t.Fatal("engine container span leaked into the stage table")
		}
	}
	if cp.Stages[0].Name != WaitStage || cp.Stages[0].BlockedPs != 2_000 {
		t.Fatalf("top stage = %+v", cp.Stages[0])
	}
}

func TestCritPathWindowFilter(t *testing.T) {
	cp := AnalyzeTracer(buildTrace(), Options{FromPs: 4_000, ToPs: 8_000})
	if len(cp.Requests) != 1 || cp.Requests[0].ID != 2 {
		t.Fatalf("windowed requests = %+v", cp.Requests)
	}
}

func TestCritPathDeterministicTable(t *testing.T) {
	render := func() string {
		cp := AnalyzeTracer(buildTrace(), Options{})
		var b strings.Builder
		if err := cp.WriteTable(&b); err != nil {
			t.Fatal(err)
		}
		if err := cp.WriteWaterfall(&b, 0); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("table not reproducible:\n%s\nvs\n%s", a, b)
	}
}

func TestPercentileLatency(t *testing.T) {
	cp := AnalyzeTracer(buildTrace(), Options{})
	if p := cp.PercentileLatencyPs(50); p != 2_000 {
		t.Fatalf("p50 = %d", p)
	}
	if p := cp.PercentileLatencyPs(99); p != 2_000 {
		t.Fatalf("p99 = %d", p)
	}
	if p := (&CritPath{}).PercentileLatencyPs(99); p != 0 {
		t.Fatalf("empty p99 = %d", p)
	}
}

// Round trip: export a trace to Perfetto JSON and read it back; every
// track and event must survive byte-exactly (balanced async pairs, so
// no synthetic ends are added).
func TestReadPerfettoRoundTrip(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	tracks, events, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantTracks := tr.Tracks()
	if len(tracks) != len(wantTracks) {
		t.Fatalf("tracks = %v, want %v", tracks, wantTracks)
	}
	for i := range tracks {
		if tracks[i] != wantTracks[i] {
			t.Fatalf("track %d = %q, want %q", i, tracks[i], wantTracks[i])
		}
	}
	wantEvents := tr.Events()
	if len(events) != len(wantEvents) {
		t.Fatalf("%d events, want %d", len(events), len(wantEvents))
	}
	for i := range events {
		if events[i] != wantEvents[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], wantEvents[i])
		}
	}
}

// A counter with a fractional value and a large timestamp must survive
// the decimal ps parse exactly.
func TestReadPerfettoPrecision(t *testing.T) {
	tr := telemetry.New()
	a := tr.Track("a")
	tr.Span(a, "s", 123_456_789_012_345, 1) // 123.456789012345 s in ps
	tr.Counter(a, "c", 7, 1.0/3.0)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	_, events, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].AtPs != 123_456_789_012_345 || events[0].DurPs != 1 {
		t.Fatalf("span round-trip = %+v", events[0])
	}
	if events[1].Value != 1.0/3.0 {
		t.Fatalf("counter value = %v", events[1].Value)
	}
}

func TestPsFromMicros(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0.000001", 1, false},
		{"1.000000", 1_000_000, false},
		{"1.5", 1_500_000, false},
		{"2", 2_000_000, false},
		{"0.0000001", 0, true}, // sub-picosecond
		{"", 0, true},
		{"x.1", 0, true},
	}
	for _, c := range cases {
		got, err := psFromMicros(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Fatalf("psFromMicros(%q) = %d, %v; want %d, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

// An unclosed request in the export becomes a synthetic end at trace
// end; the reader then sees a balanced pair and the analyzer windows
// the request to the end of the trace.
func TestReadPerfettoSyntheticEndAnalyzable(t *testing.T) {
	tr := telemetry.New()
	req := tr.Track("requests")
	eng := tr.Track("engine")
	tr.AsyncBegin(req, "req", 9, 1_000)
	tr.Span(eng, "run", 0, 5_000)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	tracks, events, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cp := Analyze(tracks, events, Options{})
	if len(cp.Requests) != 1 || cp.Requests[0].EndPs != 5_000 {
		t.Fatalf("requests = %+v", cp.Requests)
	}
}

// The pprof export must be byte-deterministic and decodable: gzip
// wrapping a protobuf whose string table carries the component names.
func TestWritePprofDeterministicAndWellFormed(t *testing.T) {
	render := func() []byte {
		var b bytes.Buffer
		if err := FromTracer(buildTrace()).WritePprof(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("pprof export not byte-stable")
	}
	zr, err := gzip.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sim_time", "nanoseconds", "CompCpy", "worker0", "drain"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("decoded profile missing %q", want)
		}
	}
}

// go tool pprof must accept the export — the whole point of emitting
// profile.proto. Skipped when the go tool is unavailable.
func TestGoToolPprofAcceptsExport(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	dir := t.TempDir()
	path := dir + "/sim.pb.gz"
	var b bytes.Buffer
	if err := FromTracer(buildTrace()).WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	for _, want := range []string{"sim_time", "run", "ulp"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("pprof -top output missing %q:\n%s", want, out)
		}
	}
}
