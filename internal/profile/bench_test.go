package profile

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// tinyScenario keeps bench tests fast: short windows, few connections.
func tinyScenario(name string) BenchScenario {
	return BenchScenario{Name: name, Placement: "smartdimm", Devices: 1, ULP: "tls",
		Msg: 1024, Conns: 16, Workers: 4, Seed: 1,
		WarmupPs: sim.Ms / 2, MeasurePs: sim.Ms}
}

// Same scenario, same KPIs, to the last bit — the property the whole
// regression gate stands on.
func TestBenchDeterministic(t *testing.T) {
	a, err := RunBenchScenario(tinyScenario("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchScenario(tinyScenario("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.KPIs) == 0 || a.KPIs["requests"] == 0 {
		t.Fatalf("no work measured: %+v", a.KPIs)
	}
	for k, av := range a.KPIs {
		if bv := b.KPIs[k]; bv != av {
			t.Fatalf("KPI %s: %v then %v — nondeterministic", k, av, bv)
		}
	}
	rep := &BenchReport{Scenarios: []BenchResult{a}}
	j1, err := MarshalBench(rep)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := MarshalBench(rep)
	if !bytes.Equal(j1, j2) {
		t.Fatal("bench JSON not byte-stable")
	}
	back, err := UnmarshalBench(j1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenarios[0].KPIs["rps"] != a.KPIs["rps"] {
		t.Fatal("JSON round trip lost a KPI")
	}
}

// A deliberately slowed hot path — the host CPU clocked down, so every
// per-byte compute cost inflates — must trip the gate against a
// baseline taken at full speed.
func TestBenchGateTripsOnSlowedHotPath(t *testing.T) {
	fast, err := RunBenchScenario(tinyScenario("gate"))
	if err != nil {
		t.Fatal(err)
	}
	slowParams := sim.DefaultParams()
	slowParams.CPUClockGHz /= 2 // everything CPU-bound halves in speed
	slow := tinyScenario("gate")
	slow.Params = &slowParams
	slowed, err := RunBenchScenario(slow)
	if err != nil {
		t.Fatal(err)
	}
	base := &BenchReport{Scenarios: []BenchResult{fast}}
	got := &BenchReport{Scenarios: []BenchResult{slowed}}
	drifts := CompareBench(base, got, 0.05)
	if len(drifts) == 0 {
		t.Fatalf("halved CPU clock produced no KPI drift\nfast: %+v\nslow: %+v", fast.KPIs, slowed.KPIs)
	}
	// An identical rerun must pass the same gate.
	again, err := RunBenchScenario(tinyScenario("gate"))
	if err != nil {
		t.Fatal(err)
	}
	if d := CompareBench(base, &BenchReport{Scenarios: []BenchResult{again}}, 0.05); len(d) != 0 {
		t.Fatalf("identical rerun tripped the gate: %v", d)
	}
}

// Missing scenarios and missing KPIs are drifts; extra ones are not.
func TestCompareBenchMissingEntries(t *testing.T) {
	base := &BenchReport{Scenarios: []BenchResult{
		{Name: "a", KPIs: map[string]float64{"rps": 100, "p99_lat_ps": 5}},
		{Name: "b", KPIs: map[string]float64{"rps": 10}},
	}}
	got := &BenchReport{Scenarios: []BenchResult{
		{Name: "a", KPIs: map[string]float64{"rps": 101, "extra": 1}}, // p99 gone, rps within 5%
	}}
	drifts := CompareBench(base, got, 0.05)
	if len(drifts) != 2 {
		t.Fatalf("drifts = %v", drifts)
	}
	seen := map[string]bool{}
	for _, d := range drifts {
		seen[d.Scenario+"/"+d.KPI] = true
		if d.String() == "" {
			t.Fatal("empty drift description")
		}
	}
	if !seen["a/p99_lat_ps"] || !seen["b/(scenario)"] {
		t.Fatalf("wrong drifts: %v", drifts)
	}
}
