// Package profile turns the telemetry layer's raw event stream into
// answers: a hierarchical simulated-time profile (where do the
// picoseconds go, per component), a critical-path analysis over request
// lifecycles (what bounds end-to-end latency), and the KPI extraction
// behind the regression gate in ci.sh. It consumes traces the existing
// instrumentation already emits — no component is re-instrumented.
//
// The profile is an occupancy profile in simulated time: every span on
// every track contributes its duration to the component stack it ran
// on (track path segments, then nested span names), exactly like CPU
// samples attribute to call stacks across cores. Totals summed over
// sibling components can therefore exceed the traced wall-clock window —
// ten busy workers accumulate ten seconds per simulated second, which is
// the point: the tree shows each component's busy time, and the
// critical-path analyzer (critpath.go) answers the serial-latency
// question instead.
//
// Everything here is deterministic: child order is sorted (total
// descending, name ascending as the tie-break), all arithmetic is
// integer picoseconds, and no map iteration order reaches any output
// path — the same trace renders to byte-identical text on any
// GOMAXPROCS, matching the telemetry layer's reproducibility contract.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Node is one component in the attribution tree.
type Node struct {
	Name string
	// TotalPs is the simulated time attributed to this node and its
	// descendants; SelfPs excludes time covered by nested child spans.
	TotalPs int64
	SelfPs  int64
	// Count is the number of span and instant events recorded directly
	// at this node.
	Count int64
	// Children are sorted by TotalPs descending, then Name ascending,
	// once the tree is sealed (FromEvents does this before returning).
	Children []*Node

	index    map[string]int
	hasSpans bool
}

// child returns (creating on demand) the named child.
func (n *Node) child(name string) *Node {
	if n.index == nil {
		n.index = map[string]int{}
	}
	if i, ok := n.index[name]; ok {
		return n.Children[i]
	}
	c := &Node{Name: name}
	n.index[name] = len(n.Children)
	n.Children = append(n.Children, c)
	return c
}

// Profile is the hierarchical simulated-time profile of one trace.
type Profile struct {
	Root *Node // Name "", TotalPs = summed track occupancy
	// EndPs is the trace's end timestamp: the latest instant any event
	// covers. It is the denominator for per-track utilization.
	EndPs    int64
	Tracks   int
	Spans    int
	Instants int
}

// FromTracer profiles a live Tracer's recorded events.
func FromTracer(tr *telemetry.Tracer) *Profile {
	return FromEvents(tr.Tracks(), tr.Events())
}

// trackSpan is one span event on a track, tagged with its emission
// index so sorting is total (and therefore deterministic).
type trackSpan struct {
	at, end int64
	name    string
	emit    int
}

// FromEvents builds the profile from a track table and an event stream
// in emission order (the shape telemetry.Tracer exposes and the Perfetto
// reader reconstructs).
//
// Attribution: a span lands on the stack [track path segments..., its
// own name], where the track name splits on "/" ("mem/rank0" becomes
// mem → rank0). Spans nested inside another span on the same track
// (device CompCpy inside a controller drain window, if a layer emits
// both) extend the stack with the enclosing span names; partially
// overlapping spans are treated as siblings. A node's SelfPs is its
// span time minus its children's — the flush of a drain window that
// isn't accounted to any finer stage stays with the drain. Instants
// contribute Count only; counters carry values, not time, and are
// ignored here.
func FromEvents(tracks []string, events []telemetry.Event) *Profile {
	p := &Profile{Root: &Node{}, Tracks: len(tracks)}

	perTrack := make([][]trackSpan, len(tracks))
	for i, e := range events {
		at := e.AtPs
		if e.Kind == telemetry.KindSpan {
			at += e.DurPs
		}
		if at > p.EndPs {
			p.EndPs = at
		}
		if int(e.Track) >= len(tracks) {
			continue // foreign event; nothing to attribute it to
		}
		switch e.Kind {
		case telemetry.KindSpan:
			p.Spans++
			perTrack[e.Track] = append(perTrack[e.Track],
				trackSpan{at: e.AtPs, end: e.AtPs + e.DurPs, name: e.Name, emit: i})
		case telemetry.KindInstant:
			p.Instants++
			n := p.trackNode(tracks[e.Track]).child(e.Name)
			n.Count++
		}
	}

	for t, spans := range perTrack {
		if len(spans) == 0 {
			continue
		}
		base := p.trackNode(tracks[t])
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].at != spans[b].at {
				return spans[a].at < spans[b].at
			}
			if spans[a].end != spans[b].end {
				return spans[a].end > spans[b].end // enclosing span first
			}
			return spans[a].emit < spans[b].emit
		})
		type open struct {
			end  int64
			node *Node
		}
		var stack []open
		for _, s := range spans {
			// Unwind spans that ended before this one starts, and any
			// that only partially overlap (not containable).
			for len(stack) > 0 && (stack[len(stack)-1].end <= s.at || s.end > stack[len(stack)-1].end) {
				stack = stack[:len(stack)-1]
			}
			parent := base
			if len(stack) > 0 {
				parent = stack[len(stack)-1].node
			}
			n := parent.child(s.name)
			n.hasSpans = true
			n.Count++
			n.TotalPs += s.end - s.at
			stack = append(stack, open{end: s.end, node: n})
		}
	}

	seal(p.Root)
	return p
}

// trackNode returns the node for a track path, creating the chain.
func (p *Profile) trackNode(track string) *Node {
	n := p.Root
	for _, seg := range strings.Split(track, "/") {
		n = n.child(seg)
	}
	return n
}

// seal finishes a subtree: structural nodes (no spans of their own) sum
// their children, span nodes subtract child time from their own to get
// SelfPs, and children sort into the deterministic display order.
func seal(n *Node) {
	var childSum int64
	for _, c := range n.Children {
		seal(c)
		childSum += c.TotalPs
	}
	if n.hasSpans {
		n.SelfPs = n.TotalPs - childSum
		if n.SelfPs < 0 { // partial-overlap attribution slack
			n.SelfPs = 0
		}
	} else {
		n.TotalPs = childSum
	}
	sort.SliceStable(n.Children, func(a, b int) bool {
		if n.Children[a].TotalPs != n.Children[b].TotalPs {
			return n.Children[a].TotalPs > n.Children[b].TotalPs
		}
		return n.Children[a].Name < n.Children[b].Name
	})
}

// fmtPs renders picoseconds as a fixed-precision human quantity. The
// format is part of the golden-file contract: integer arithmetic in,
// deterministic text out.
func fmtPs(ps int64) string {
	switch {
	case ps >= 1_000_000_000:
		return fmt.Sprintf("%d.%03dms", ps/1_000_000_000, (ps%1_000_000_000)/1_000_000)
	case ps >= 1_000_000:
		return fmt.Sprintf("%d.%03dus", ps/1_000_000, (ps%1_000_000)/1_000)
	case ps >= 1_000:
		return fmt.Sprintf("%d.%03dns", ps/1_000, ps%1_000)
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

// pct renders value/total as a percentage with one decimal.
func pct(v, total int64) string {
	if total <= 0 {
		return "0.0"
	}
	// one-decimal fixed point in integer arithmetic: round half up
	t := (v*2000/total + 1) / 2
	return fmt.Sprintf("%d.%d", t/10, t%10)
}

// WriteTree renders the hierarchical profile as a deterministic text
// tree: per node, total and self simulated time, event count, and the
// share of summed occupancy.
func (p *Profile) WriteTree(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "simulated-time profile: traced %s, %d tracks, %d spans, %d instants\n",
		fmtPs(p.EndPs), p.Tracks, p.Spans, p.Instants); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %8s %12s %8s  %s\n", "total", "tot%", "self", "count", "component"); err != nil {
		return err
	}
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		for _, c := range n.Children {
			self := "."
			if c.SelfPs > 0 {
				self = fmtPs(c.SelfPs)
			}
			if _, err := fmt.Fprintf(w, "%12s %8s %12s %8d  %s%s\n",
				fmtPs(c.TotalPs), pct(c.TotalPs, p.Root.TotalPs), self, c.Count,
				strings.Repeat("  ", depth), c.Name); err != nil {
				return err
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root, 0)
}

// flatRow is one leaf-attribution row of the flat view.
type flatRow struct {
	path   string
	selfPs int64
	count  int64
}

// flatten collects every node with self time or events into rows.
func (p *Profile) flatten() []flatRow {
	var rows []flatRow
	var walk func(n *Node, prefix string)
	walk = func(n *Node, prefix string) {
		for _, c := range n.Children {
			path := c.Name
			if prefix != "" {
				path = prefix + "/" + c.Name
			}
			if c.SelfPs > 0 || (c.Count > 0 && len(c.Children) == 0) {
				rows = append(rows, flatRow{path: path, selfPs: c.SelfPs, count: c.Count})
			}
			walk(c, path)
		}
	}
	walk(p.Root, "")
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].selfPs != rows[b].selfPs {
			return rows[a].selfPs > rows[b].selfPs
		}
		return rows[a].path < rows[b].path
	})
	return rows
}

// WriteTop renders the flat self-time view, pprof-top style: the n
// hottest attribution paths by self simulated time (0 = all).
func (p *Profile) WriteTop(w io.Writer, n int) error {
	rows := p.flatten()
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	if _, err := fmt.Fprintf(w, "%12s %8s %8s %8s  %s\n", "self", "self%", "cum%", "count", "component"); err != nil {
		return err
	}
	var cum int64
	for _, r := range rows {
		cum += r.selfPs
		self := "."
		if r.selfPs > 0 {
			self = fmtPs(r.selfPs)
		}
		if _, err := fmt.Fprintf(w, "%12s %8s %8s %8d  %s\n",
			self, pct(r.selfPs, p.Root.TotalPs), pct(cum, p.Root.TotalPs), r.count, r.path); err != nil {
			return err
		}
	}
	return nil
}
