// Critical-path analysis over async request lifecycles. The server
// wraps every request in an AsyncBegin/AsyncEnd pair; the stage spans
// that serve it (parse/copy/ulp/tx on the worker tracks, wire on the
// nic track, drains and CompCpy below them) overlap that window. For
// each request this file computes how much of the window each stage
// name blocks — the interval-union of that stage's spans clipped to the
// window — plus the uncovered remainder ("(wait)": queueing for a
// worker, think-time alignment, backpressure), and names the dominant
// stage. Aggregated over every request this reproduces the paper's
// per-stage breakdown argument (Fig. 13 / §VI): on the SmartDIMM
// placement the copy stage's share is ~0 because no copy spans exist to
// block on.
//
// Stage attribution is by span name across all requests on the system,
// not per-request tagging: a span of stage "ulp" concurrent with a
// request's window counts as "ulp" pressure on that request whether or
// not it served that exact connection — for a closed-loop single-server
// system this is the blocking structure that bounds the latency
// distribution, and it needs no re-instrumentation of any component.
//
// Merged shard traces (fleet.Sharded, cluster) break both assumptions
// of the single-system analysis: per-shard request ids repeat (shard 0
// and shard 1 each count "req" from 1), and shards are disjoint
// hardware — an "ulp" span on shard 1 exerts no pressure on a shard-0
// request. Async pairing is therefore always per-track, and ShardAware
// additionally scopes span attribution to the request's own shard
// prefix, with SharedPrefixes ("fe/", "rt/": the dispatch fabric and
// the router — genuinely shared planes) attributing everywhere. That
// is what surfaces dispatch-fabric wait as its own stage instead of
// folding it into "(wait)".
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// WaitStage is the pseudo-stage for window time no span covers.
const WaitStage = "(wait)"

// StageBlock is one stage's blocking contribution to a request.
type StageBlock struct {
	Name    string
	FirstPs int64 // earliest overlap start (waterfall ordering)
	Ps      int64 // union of this stage's spans clipped to the window
}

// Request is one analyzed request lifecycle.
type Request struct {
	ID       uint64
	StartPs  int64
	EndPs    int64
	Stages   []StageBlock // ordered by first overlap, then name
	Dominant string       // stage with the largest blocked time
	WaitPs   int64        // window time covered by no span
}

// LatencyPs returns the request's end-to-end simulated latency.
func (r *Request) LatencyPs() int64 { return r.EndPs - r.StartPs }

// StageTotal is one row of the fleet-level blocking table.
type StageTotal struct {
	Name      string
	BlockedPs int64 // summed blocked time across requests
	SharePct  float64
	Dominant  int // requests where this stage blocked the most
}

// CritPath is the result of analyzing one trace.
type CritPath struct {
	Requests []Request
	Stages   []StageTotal // sorted by BlockedPs desc, name asc
	// TotalBlockedPs sums every stage's blocked time (the share
	// denominator); TotalLatencyPs sums request latencies.
	TotalBlockedPs int64
	TotalLatencyPs int64
}

// Options narrow the analysis window and span universe.
type Options struct {
	// FromPs/ToPs, when nonzero, keep only requests fully inside
	// [FromPs, ToPs] — the measurement window, excluding warmup and the
	// drain tail.
	FromPs, ToPs int64
	// ExcludeTracks names tracks whose spans are containers, not work
	// (nil defaults to the engine's coarse RunUntil windows). Under
	// ShardAware the name is matched after stripping the shard prefix,
	// so "engine" excludes "s0/engine" and "n2/engine" alike.
	ExcludeTracks []string
	// ShardAware analyzes a merged multi-shard trace: every span and
	// request window carries its shard prefix (the track name up to and
	// including the first '/'), and a span attributes to a request only
	// when the prefixes match or the span's prefix is shared — disjoint
	// sub-systems exert no pressure on each other's requests.
	ShardAware bool
	// SharedPrefixes lists shard prefixes whose spans attribute to
	// every request regardless of shard (nil defaults to "fe/" and
	// "rt/" — the dispatch fabric and the cluster router).
	SharedPrefixes []string
}

// span is one clipped work interval.
type cpSpan struct {
	at, end int64
	name    string
	prefix  string // shard prefix under Options.ShardAware, else ""
}

// shardPrefix returns the track name's shard prefix including the
// slash ("s0/", "fe/"), or "" for an unprefixed track.
func shardPrefix(track string) string {
	if i := strings.IndexByte(track, '/'); i >= 0 {
		return track[:i+1]
	}
	return ""
}

// AnalyzeTracer runs the critical-path analysis on a live Tracer.
func AnalyzeTracer(tr *telemetry.Tracer, opt Options) *CritPath {
	return Analyze(tr.Tracks(), tr.Events(), opt)
}

// Analyze computes per-request and fleet-level blocking attribution
// from a track table and event stream in emission order.
func Analyze(tracks []string, events []telemetry.Event, opt Options) *CritPath {
	excluded := map[string]bool{}
	if opt.ExcludeTracks == nil {
		opt.ExcludeTracks = []string{"engine"}
	}
	for _, t := range opt.ExcludeTracks {
		excluded[t] = true
	}
	shared := map[string]bool{}
	if opt.ShardAware {
		if opt.SharedPrefixes == nil {
			opt.SharedPrefixes = []string{"fe/", "rt/"}
		}
		for _, p := range opt.SharedPrefixes {
			shared[p] = true
		}
	}
	trackName := func(id telemetry.TrackID) string {
		if int(id) < len(tracks) {
			return tracks[id]
		}
		return ""
	}

	var spans []cpSpan
	var maxDur int64
	for _, e := range events {
		if e.Kind != telemetry.KindSpan || e.DurPs <= 0 {
			continue
		}
		track, prefix := trackName(e.Track), ""
		if opt.ShardAware {
			prefix = shardPrefix(track)
			track = strings.TrimPrefix(track, prefix)
		}
		if excluded[track] {
			continue
		}
		spans = append(spans, cpSpan{at: e.AtPs, end: e.AtPs + e.DurPs, name: e.Name, prefix: prefix})
		if e.DurPs > maxDur {
			maxDur = e.DurPs
		}
	}
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].at != spans[b].at {
			return spans[a].at < spans[b].at
		}
		if spans[a].end != spans[b].end {
			return spans[a].end < spans[b].end
		}
		return spans[a].name < spans[b].name
	})

	cp := &CritPath{}
	// Pair async begins with ends by (track, name, id), in emission
	// order. The track component is what keeps merged shard traces
	// correct: shard 0 and shard 1 both number their "req" lifecycles
	// from 1, and only the (remapped, unique) track separates them.
	type akey struct {
		track telemetry.TrackID
		name  string
		id    uint64
	}
	open := map[akey][]int64{}
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindAsyncBegin:
			k := akey{track: e.Track, name: e.Name, id: e.ID}
			open[k] = append(open[k], e.AtPs)
		case telemetry.KindAsyncEnd:
			k := akey{track: e.Track, name: e.Name, id: e.ID}
			starts := open[k]
			if len(starts) == 0 {
				continue
			}
			start := starts[0]
			open[k] = starts[1:]
			if opt.FromPs != 0 && start < opt.FromPs {
				continue
			}
			if opt.ToPs != 0 && e.AtPs > opt.ToPs {
				continue
			}
			prefix := ""
			if opt.ShardAware {
				prefix = shardPrefix(trackName(e.Track))
			}
			cp.Requests = append(cp.Requests, analyzeRequest(e.ID, start, e.AtPs, prefix, spans, maxDur, opt.ShardAware, shared))
		}
	}

	totals := map[string]*StageTotal{}
	var names []string
	for i := range cp.Requests {
		r := &cp.Requests[i]
		cp.TotalLatencyPs += r.LatencyPs()
		for _, s := range r.Stages {
			t := totals[s.Name]
			if t == nil {
				t = &StageTotal{Name: s.Name}
				totals[s.Name] = t
				names = append(names, s.Name)
			}
			t.BlockedPs += s.Ps
			cp.TotalBlockedPs += s.Ps
		}
		if t := totals[r.Dominant]; t != nil {
			t.Dominant++
		}
	}
	sort.Strings(names)
	for _, n := range names {
		t := totals[n]
		if cp.TotalBlockedPs > 0 {
			t.SharePct = 100 * float64(t.BlockedPs) / float64(cp.TotalBlockedPs)
		}
		cp.Stages = append(cp.Stages, *t)
	}
	sort.SliceStable(cp.Stages, func(a, b int) bool {
		if cp.Stages[a].BlockedPs != cp.Stages[b].BlockedPs {
			return cp.Stages[a].BlockedPs > cp.Stages[b].BlockedPs
		}
		return cp.Stages[a].Name < cp.Stages[b].Name
	})
	return cp
}

// analyzeRequest attributes one request window across stage names.
// spans is sorted by start; maxDur bounds the backward search. Under
// shardAware, only spans from the request's own shard (reqPrefix) or
// from a shared plane attribute; foreign shards are invisible.
func analyzeRequest(id uint64, start, end int64, reqPrefix string, spans []cpSpan, maxDur int64, shardAware bool, shared map[string]bool) Request {
	r := Request{ID: id, StartPs: start, EndPs: end}
	// First span possibly overlapping: start time > start-maxDur.
	lo := sort.Search(len(spans), func(i int) bool { return spans[i].at > start-maxDur })

	type acc struct {
		first int64
		ivals []cpSpan // clipped, per stage, in start order
	}
	stages := map[string]*acc{}
	var names []string
	var all []cpSpan // clipped union input for the wait computation
	for i := lo; i < len(spans) && spans[i].at < end; i++ {
		s := spans[i]
		if s.end <= start {
			continue
		}
		if shardAware && s.prefix != reqPrefix && !shared[s.prefix] {
			continue
		}
		at, e := s.at, s.end
		if at < start {
			at = start
		}
		if e > end {
			e = end
		}
		a := stages[s.name]
		if a == nil {
			a = &acc{first: at}
			stages[s.name] = a
			names = append(names, s.name)
		}
		a.ivals = append(a.ivals, cpSpan{at: at, end: e})
		all = append(all, cpSpan{at: at, end: e})
	}
	sort.Strings(names)
	for _, n := range names {
		a := stages[n]
		r.Stages = append(r.Stages, StageBlock{Name: n, FirstPs: a.first, Ps: unionPs(a.ivals)})
	}
	covered := unionPs(all)
	r.WaitPs = (end - start) - covered
	if r.WaitPs > 0 {
		r.Stages = append(r.Stages, StageBlock{Name: WaitStage, FirstPs: start, Ps: r.WaitPs})
	}
	sort.SliceStable(r.Stages, func(a, b int) bool {
		if r.Stages[a].FirstPs != r.Stages[b].FirstPs {
			return r.Stages[a].FirstPs < r.Stages[b].FirstPs
		}
		return r.Stages[a].Name < r.Stages[b].Name
	})
	r.Dominant = ""
	var max int64 = -1
	for _, s := range r.Stages {
		if s.Ps > max || (s.Ps == max && s.Name < r.Dominant) {
			max, r.Dominant = s.Ps, s.Name
		}
	}
	return r
}

// unionPs returns the total length of the union of intervals (already
// sorted by start — insertion order above preserves the global sort).
func unionPs(ivals []cpSpan) int64 {
	var total int64
	var curEnd int64 = -1
	var curStart int64
	for _, iv := range ivals {
		if curEnd < 0 || iv.at > curEnd {
			if curEnd >= 0 {
				total += curEnd - curStart
			}
			curStart, curEnd = iv.at, iv.end
		} else if iv.end > curEnd {
			curEnd = iv.end
		}
	}
	if curEnd >= 0 {
		total += curEnd - curStart
	}
	return total
}

// WriteTable renders the fleet-level "top blocking stage" table.
func (cp *CritPath) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical path: %d requests, total latency %s, blocked time %s\n",
		len(cp.Requests), fmtPs(cp.TotalLatencyPs), fmtPs(cp.TotalBlockedPs)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %14s %8s %10s\n", "stage", "blocked", "share%", "dominant"); err != nil {
		return err
	}
	for _, s := range cp.Stages {
		if _, err := fmt.Fprintf(w, "%-10s %14s %8s %10d\n",
			s.Name, fmtPs(s.BlockedPs), pct(s.BlockedPs, cp.TotalBlockedPs), s.Dominant); err != nil {
			return err
		}
	}
	return nil
}

// WriteWaterfall renders the per-request waterfall for the first n
// requests (0 = all): the request window and each stage's blocked time
// in first-overlap order.
func (cp *CritPath) WriteWaterfall(w io.Writer, n int) error {
	reqs := cp.Requests
	if n > 0 && n < len(reqs) {
		reqs = reqs[:n]
	}
	for _, r := range reqs {
		if _, err := fmt.Fprintf(w, "req 0x%x: start %s latency %s dominant %s\n",
			r.ID, fmtPs(r.StartPs), fmtPs(r.LatencyPs()), r.Dominant); err != nil {
			return err
		}
		for _, s := range r.Stages {
			if _, err := fmt.Fprintf(w, "  +%-14s %-10s %s\n",
				fmtPs(s.FirstPs-r.StartPs), s.Name, fmtPs(s.Ps)); err != nil {
				return err
			}
		}
	}
	return nil
}

// P99LatencyPs returns the p-th percentile of request latency using
// nearest-rank over the analyzed requests (0 with none).
func (cp *CritPath) PercentileLatencyPs(p float64) int64 {
	if len(cp.Requests) == 0 {
		return 0
	}
	lats := make([]int64, len(cp.Requests))
	for i := range cp.Requests {
		lats[i] = cp.Requests[i].LatencyPs()
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	if p <= 0 {
		return lats[0]
	}
	if p >= 100 {
		return lats[len(lats)-1]
	}
	rank := int(float64(len(lats))*p/100+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(lats) {
		rank = len(lats) - 1
	}
	return lats[rank]
}
