// pprof export: the attribution tree serialized as a gzipped
// profile.proto message so the standard tooling works on simulated
// time — `go tool pprof -top trace.pb.gz`, flamegraphs, peek, web UI.
//
// The encoder is hand-rolled protobuf (varints, length-delimited
// fields, packed repeated scalars) against the profile.proto schema the
// pprof tool ships; the message is small and append-only, so a
// dependency-free writer is ~100 lines and byte-deterministic: nodes
// serialize in the sealed tree's sorted order, the string table in
// first-use order, and the gzip stream carries no mtime. Two sample
// values per stack: event count, and self simulated time in
// nanoseconds (pprof's unit vocabulary has no picoseconds; sub-ns
// remainders are truncated in the export only — the text renderers in
// profile.go keep full ps resolution).
package profile

import (
	"bytes"
	"compress/gzip"
	"io"
)

// profile.proto field numbers (message Profile).
const (
	pfSampleType    = 1
	pfSample        = 2
	pfLocation      = 4
	pfFunction      = 5
	pfStringTable   = 6
	pfDurationNanos = 10
	pfPeriodType    = 11
	pfPeriod        = 12
	pfDefaultSample = 14
)

// pbuf is a minimal protobuf writer.
type pbuf struct{ bytes.Buffer }

func (b *pbuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// tag writes a field key: number<<3 | wiretype.
func (b *pbuf) tag(field, wire int) { b.varint(uint64(field<<3 | wire)) }

func (b *pbuf) intField(field int, v int64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(uint64(v))
}

func (b *pbuf) bytesField(field int, p []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(p)))
	b.Write(p)
}

func (b *pbuf) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.WriteString(s)
}

// packedField writes a repeated scalar as one length-delimited blob.
func (b *pbuf) packedField(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	b.bytesField(field, inner.Bytes())
}

// strtab interns strings; index 0 is "" per the pprof spec.
type strtab struct {
	idx  map[string]int64
	list []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (st *strtab) id(s string) int64 {
	if i, ok := st.idx[s]; ok {
		return i
	}
	i := int64(len(st.list))
	st.idx[s] = i
	st.list = append(st.list, s)
	return i
}

// valueType encodes a profile.proto ValueType submessage.
func valueType(st *strtab, typ, unit string) []byte {
	var b pbuf
	b.intField(1, st.id(typ))
	b.intField(2, st.id(unit))
	return b.Bytes()
}

// WritePprof serializes the profile as gzipped profile.proto. Sample
// types: "events/count" and "sim_time/nanoseconds" (the default), one
// sample per tree node carrying its self time, with the location stack
// leaf-first so pprof reconstructs the component hierarchy.
func (p *Profile) WritePprof(w io.Writer) error {
	st := newStrtab()
	var out pbuf

	out.bytesField(pfSampleType, valueType(st, "events", "count"))
	out.bytesField(pfSampleType, valueType(st, "sim_time", "nanoseconds"))

	// Walk the sealed tree depth-first in display order. Each node gets
	// a location+function; a sample is emitted for nodes with self time
	// or directly-recorded events so leaf and interior attribution both
	// survive the flat views.
	type frame struct {
		node *Node
		path string
	}
	nextID := uint64(1)
	var walk func(f frame, stack []uint64)
	var samples, locations, functions []pbuf
	walk = func(f frame, stack []uint64) {
		id := nextID
		nextID++

		var fn pbuf
		fn.intField(1, int64(id))        // function id
		fn.intField(2, st.id(f.node.Name)) // name
		fn.intField(3, st.id(f.node.Name)) // system_name
		fn.intField(4, st.id(f.path))      // filename = full component path
		functions = append(functions, fn)

		var line pbuf
		line.intField(1, int64(id)) // function_id
		var loc pbuf
		loc.intField(1, int64(id)) // location id
		loc.bytesField(4, line.Bytes())
		locations = append(locations, loc)

		stack = append(stack, id)
		if f.node.SelfPs > 0 || f.node.Count > 0 {
			var s pbuf
			locs := make([]int64, len(stack))
			for i := range stack { // leaf first
				locs[i] = int64(stack[len(stack)-1-i])
			}
			s.packedField(1, locs)
			s.packedField(2, []int64{f.node.Count, f.node.SelfPs / 1000})
			samples = append(samples, s)
		}
		for _, c := range f.node.Children {
			cp := c.Name
			if f.path != "" {
				cp = f.path + "/" + c.Name
			}
			walk(frame{node: c, path: cp}, stack)
		}
	}
	for _, c := range p.Root.Children {
		walk(frame{node: c, path: c.Name}, nil)
	}

	for i := range samples {
		out.bytesField(pfSample, samples[i].Bytes())
	}
	for i := range locations {
		out.bytesField(pfLocation, locations[i].Bytes())
	}
	for i := range functions {
		out.bytesField(pfFunction, functions[i].Bytes())
	}
	// Intern every remaining string before the table serializes.
	periodType := valueType(st, "sim_time", "nanoseconds")
	defaultType := st.id("sim_time")
	for _, s := range st.list {
		out.stringField(pfStringTable, s) // index 0 is the empty string
	}
	out.intField(pfDurationNanos, p.EndPs/1000)
	out.bytesField(pfPeriodType, periodType)
	out.intField(pfPeriod, 1)
	out.intField(pfDefaultSample, defaultType)

	gz := gzip.NewWriter(w) // zero ModTime: output is byte-stable
	if _, err := gz.Write(out.Bytes()); err != nil {
		return err
	}
	return gz.Close()
}
