package obs

import "testing"

func fill(s *Series, pts ...Point) {
	for _, p := range pts {
		s.push(p)
	}
}

func TestSeriesRingWrap(t *testing.T) {
	s := newSeries("x", 4)
	for i := int64(1); i <= 6; i++ {
		s.push(Point{AtPs: i * 10, V: float64(i)})
	}
	if s.Len() != 4 || !s.Dropped() {
		t.Fatalf("Len=%d Dropped=%v, want 4/true", s.Len(), s.Dropped())
	}
	for i := 0; i < 4; i++ {
		if got := s.At(i); got.V != float64(i+3) {
			t.Fatalf("At(%d) = %+v, want V=%d", i, got, i+3)
		}
	}
	if last, _ := s.Last(); last.AtPs != 60 || last.V != 6 {
		t.Fatalf("Last = %+v", last)
	}
}

func TestSeriesOperators(t *testing.T) {
	s := newSeries("x", 16)
	// A counter-ish ramp: value at t=100..500 is 0,1,1,4,6.
	fill(s,
		Point{100, 0}, Point{200, 1}, Point{300, 1}, Point{400, 4}, Point{500, 6})

	if v := s.LastValue(); v != 6 {
		t.Fatalf("LastValue = %g", v)
	}
	// Window (200, 500]: points at 300,400,500. Baseline for Delta is the
	// newest point at/before 200 — the one AT 200 (v=1).
	if v := s.Delta(500, 300); v != 5 {
		t.Fatalf("Delta = %g, want 5", v)
	}
	// Rate: 5 over 300ps → 5/300e-12 per second.
	if v := s.Rate(500, 300); v != 5*1e12/300 {
		t.Fatalf("Rate = %g", v)
	}
	if v := s.MaxOver(500, 300); v != 6 {
		t.Fatalf("MaxOver = %g", v)
	}
	if v := s.AvgOver(500, 300); v != (1+4+6)/3.0 {
		t.Fatalf("AvgOver = %g", v)
	}
	if v := s.FracOver(3, 500, 300); v != 2.0/3 {
		t.Fatalf("FracOver = %g", v)
	}
	if v := s.QuantileOver(50, 500, 300); v != 4 {
		t.Fatalf("QuantileOver(50) = %g", v)
	}
	if v := s.QuantileOver(100, 500, 300); v != 6 {
		t.Fatalf("QuantileOver(100) = %g", v)
	}
	if v := s.CountOver(500, 300); v != 3 {
		t.Fatalf("CountOver = %d", v)
	}
	if v := s.StaleForPs(750); v != 250 {
		t.Fatalf("StaleForPs = %d", v)
	}
	// Delta past the ring's reach falls back to the oldest point.
	if v := s.Delta(500, 10_000); v != 6 {
		t.Fatalf("Delta(full) = %g, want 6", v)
	}
}

func TestSeriesEmptyAndNil(t *testing.T) {
	var nilS *Series
	empty := newSeries("e", 4)
	for name, s := range map[string]*Series{"nil": nilS, "empty": empty} {
		if s.Len() != 0 || s.LastValue() != 0 || s.CountOver(100, 50) != 0 {
			t.Fatalf("%s series reported data", name)
		}
		if s.MaxOver(100, 50) != 0 || s.AvgOver(100, 50) != 0 || s.FracOver(1, 100, 50) != 0 {
			t.Fatalf("%s series windowed op non-zero", name)
		}
		if s.StaleForPs(100) != -1 {
			t.Fatalf("%s series StaleForPs != -1", name)
		}
	}
}

func TestStoreFirstSeenOrder(t *testing.T) {
	st := newStore(8)
	st.observe("b", 10, 1)
	st.observe("a", 10, 2)
	st.observe("b", 20, 3)
	var names []string
	st.Each(func(se *Series) { names = append(names, se.Name()) })
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("order = %v, want [b a]", names)
	}
	if st.LastValue("b") != 3 || st.LastValue("a") != 2 || st.LastValue("missing") != 0 {
		t.Fatalf("LastValue wrong: b=%g a=%g", st.LastValue("b"), st.LastValue("a"))
	}
	if st.Len() != 2 || st.Series("b").Len() != 2 {
		t.Fatal("store counts wrong")
	}
}
