// The alert engine: declarative rules evaluated on every scrape tick,
// with For-duration damping and an inactive→pending→firing→resolved
// state machine. Every transition lands in a deterministic alert log
// and, when a tracer is attached, as a trace instant on the obs track.

package obs

import (
	"fmt"
	"strings"
)

// RuleKind discriminates rule condition families.
type RuleKind uint8

const (
	// KindThreshold fires while Reduce(Series) > Above.
	KindThreshold RuleKind = iota
	// KindAbsence fires while the series has no point newer than
	// WindowPs (or has never reported at all).
	KindAbsence
	// KindBurnRate is multi-window SLO error-budget alerting: fires
	// while the budget burn rate exceeds Factor over BOTH the long and
	// the short window. The long window makes the page mean something
	// (sustained burn), the short window makes it reset quickly once
	// the condition clears.
	KindBurnRate
)

// Reduce selects how a threshold rule collapses its series window to
// one value.
type Reduce uint8

const (
	ReduceLast     Reduce = iota // newest value; WindowPs unused
	ReduceDelta                  // newest minus window baseline (counters)
	ReduceRate                   // Delta per simulated second
	ReduceMax                    // max over the window
	ReduceAvg                    // mean over the window
	ReduceQuantile               // Q-th percentile of window samples
)

func (r Reduce) String() string {
	switch r {
	case ReduceLast:
		return "last"
	case ReduceDelta:
		return "delta"
	case ReduceRate:
		return "rate"
	case ReduceMax:
		return "max"
	case ReduceAvg:
		return "avg"
	case ReduceQuantile:
		return "quantile"
	}
	return "?"
}

// Rule is one declarative alert. Build them with the Threshold,
// Absence, and BurnRate constructors; zero-valued knobs take defaults
// in Scraper.New.
type Rule struct {
	Name   string
	Kind   RuleKind
	Series string

	// Threshold knobs.
	Reduce   Reduce
	WindowPs int64
	Above    float64
	Q        float64 // ReduceQuantile percentile (0..100)

	// BurnRate knobs: the series is compared against SLO point-by-point;
	// frac-over / Budget is the burn rate, evaluated over both windows.
	SLO             float64
	Budget          float64 // allowed frac-over (error budget), e.g. 0.1
	Factor          float64 // fire while burn > Factor on both windows
	LongPs, ShortPs int64

	// ForPs damps flapping: the condition must hold continuously for
	// ForPs before the rule fires (0 fires on the first true tick).
	ForPs int64
	// MinPoints gates evaluation until the (long) window holds at least
	// this many points, so a cold series can't page. Zero selects 1.
	MinPoints int
}

// Threshold builds a threshold rule: fire while red(series) > above.
func Threshold(name, series string, red Reduce, windowPs int64, above float64, forPs int64) Rule {
	return Rule{Name: name, Kind: KindThreshold, Series: series,
		Reduce: red, WindowPs: windowPs, Above: above, ForPs: forPs}
}

// Absence builds an absence rule: fire while the series is silent for
// longer than windowPs.
func Absence(name, series string, windowPs int64) Rule {
	return Rule{Name: name, Kind: KindAbsence, Series: series, WindowPs: windowPs}
}

// BurnRate builds a multi-window SLO burn-rate rule over a latency
// series: a point breaches when it exceeds slo; frac-over/budget is the
// burn; fire while burn > factor over both longPs and shortPs.
func BurnRate(name, series string, slo, budget, factor float64, longPs, shortPs, forPs int64) Rule {
	return Rule{Name: name, Kind: KindBurnRate, Series: series,
		SLO: slo, Budget: budget, Factor: factor, LongPs: longPs, ShortPs: shortPs, ForPs: forPs}
}

func (r *Rule) defaults() error {
	if r.Name == "" || r.Series == "" {
		return fmt.Errorf("obs: rule needs a name and a series")
	}
	if r.MinPoints <= 0 {
		r.MinPoints = 1
	}
	switch r.Kind {
	case KindThreshold:
		if r.Reduce != ReduceLast && r.WindowPs <= 0 {
			return fmt.Errorf("obs: rule %s: windowed reduce %v needs WindowPs", r.Name, r.Reduce)
		}
	case KindAbsence:
		if r.WindowPs <= 0 {
			return fmt.Errorf("obs: rule %s: absence needs WindowPs", r.Name)
		}
	case KindBurnRate:
		if r.Budget <= 0 || r.Factor <= 0 || r.LongPs <= 0 || r.ShortPs <= 0 {
			return fmt.Errorf("obs: rule %s: burn-rate needs Budget, Factor, LongPs, ShortPs", r.Name)
		}
		if r.ShortPs > r.LongPs {
			return fmt.Errorf("obs: rule %s: ShortPs > LongPs", r.Name)
		}
	default:
		return fmt.Errorf("obs: rule %s: unknown kind %d", r.Name, r.Kind)
	}
	return nil
}

// eval returns whether the rule's raw condition holds at nowPs, plus
// the value the transition log reports.
func (r *Rule) eval(st *Store, nowPs int64) (bool, float64) {
	se := st.Series(r.Series)
	switch r.Kind {
	case KindAbsence:
		stale := se.StaleForPs(nowPs)
		if stale < 0 {
			return true, -1 // never reported
		}
		return stale > r.WindowPs, float64(stale)
	case KindThreshold:
		if se.Len() < r.MinPoints {
			return false, 0
		}
		var v float64
		switch r.Reduce {
		case ReduceLast:
			v = se.LastValue()
		case ReduceDelta:
			v = se.Delta(nowPs, r.WindowPs)
		case ReduceRate:
			v = se.Rate(nowPs, r.WindowPs)
		case ReduceMax:
			v = se.MaxOver(nowPs, r.WindowPs)
		case ReduceAvg:
			v = se.AvgOver(nowPs, r.WindowPs)
		case ReduceQuantile:
			v = se.QuantileOver(r.Q, nowPs, r.WindowPs)
		}
		return v > r.Above, v
	case KindBurnRate:
		if se.CountOver(nowPs, r.LongPs) < r.MinPoints {
			return false, 0
		}
		burnLong := se.FracOver(r.SLO, nowPs, r.LongPs) / r.Budget
		burnShort := se.FracOver(r.SLO, nowPs, r.ShortPs) / r.Budget
		// Report the binding (smaller) burn: both must exceed Factor.
		v := burnLong
		if burnShort < v {
			v = burnShort
		}
		return burnLong > r.Factor && burnShort > r.Factor, v
	}
	return false, 0
}

// AlertState is one rule's position in the damped state machine.
type AlertState uint8

const (
	Inactive AlertState = iota
	Pending             // condition true, waiting out ForPs
	Firing
)

func (s AlertState) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	}
	return "?"
}

// Transition is one alert state change, the unit of the alert log.
type Transition struct {
	AtPs     int64
	Rule     string
	From, To AlertState
	V        float64 // the rule's reported value at the transition
}

func (t Transition) String() string {
	return fmt.Sprintf("%d %s %s->%s v=%g", t.AtPs, t.Rule, t.From, t.To, t.V)
}

// ruleState is a rule plus its live state-machine position.
type ruleState struct {
	rule    Rule
	state   AlertState
	sincePs int64 // when the condition last turned true (Pending entry)
}

// step advances one rule by one scrape tick and returns the transition
// taken, if any.
func (rs *ruleState) step(st *Store, nowPs int64) (Transition, bool) {
	cond, v := rs.rule.eval(st, nowPs)
	from := rs.state
	switch rs.state {
	case Inactive:
		if !cond {
			return Transition{}, false
		}
		rs.sincePs = nowPs
		if rs.rule.ForPs <= 0 {
			rs.state = Firing
		} else {
			rs.state = Pending
		}
	case Pending:
		if !cond {
			rs.state = Inactive
		} else if nowPs-rs.sincePs >= rs.rule.ForPs {
			rs.state = Firing
		} else {
			return Transition{}, false
		}
	case Firing:
		if cond {
			return Transition{}, false
		}
		rs.state = Inactive
	}
	return Transition{AtPs: nowPs, Rule: rs.rule.Name, From: from, To: rs.state, V: v}, true
}

// AlertLog renders transitions one per line — a byte-compared artifact.
func AlertLog(ts []Transition) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
