// The scraper: one self-rescheduling engine event that samples the
// telemetry registry into the series store, evaluates the alert rules,
// feeds the flight recorder, and then runs subscriber hooks (the
// autoscaler's control tick) — all inside a single event so nothing can
// interleave and runs stay byte-identical.

package obs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config parameterizes a Scraper.
type Config struct {
	Eng *sim.Engine
	Reg *telemetry.Registry

	// IntervalPs is the scrape period. Zero selects 200us.
	IntervalPs int64
	// SeriesCap bounds each series ring. Zero selects 1024 points.
	SeriesCap int

	// Rules are the alert rules, evaluated in order on every scrape.
	Rules []Rule

	// Tracer, when non-nil, receives alert transitions as instants on an
	// "obs/alerts" track, mirrors TraceSeries as counters, and is the
	// source of incident trace slices.
	Tracer *telemetry.Tracer
	// TraceSeries names scraped series to mirror into the tracer as
	// counter events (rendered as stepped charts; dumped by
	// `tracestat -series`).
	TraceSeries []string

	// Recorder, when non-nil, receives alert-transition notes and
	// captures an incident bundle on every firing.
	Recorder *Recorder
}

// Scraper is the live observability plane.
type Scraper struct {
	cfg   Config
	store *Store
	rules []ruleState
	hooks []func(atPs int64, st *Store)

	buf         []telemetry.Sample // SnapshotInto reuse: 0 allocs/op steady state
	transitions []Transition

	alertTrack  telemetry.TrackID
	seriesTrack telemetry.TrackID

	// Scrapes counts completed ticks.
	Scrapes int
}

// New validates the config and builds a scraper; Start arms it.
func New(cfg Config) (*Scraper, error) {
	if cfg.Eng == nil || cfg.Reg == nil {
		return nil, fmt.Errorf("obs: need engine and registry")
	}
	if cfg.IntervalPs <= 0 {
		cfg.IntervalPs = 200 * sim.Us
	}
	if cfg.SeriesCap <= 0 {
		cfg.SeriesCap = 1024
	}
	s := &Scraper{cfg: cfg, store: newStore(cfg.SeriesCap)}
	for _, r := range cfg.Rules {
		if err := r.defaults(); err != nil {
			return nil, err
		}
		s.rules = append(s.rules, ruleState{rule: r})
	}
	if cfg.Tracer != nil {
		s.alertTrack = cfg.Tracer.Track("obs/alerts")
		if len(cfg.TraceSeries) > 0 {
			s.seriesTrack = cfg.Tracer.Track("obs/series")
		}
	}
	return s, nil
}

// IntervalPs returns the scrape period (subscribers align their control
// intervals to multiples of it).
func (s *Scraper) IntervalPs() int64 { return s.cfg.IntervalPs }

// Store returns the series store.
func (s *Scraper) Store() *Store { return s.store }

// Recorder returns the attached flight recorder (may be nil).
func (s *Scraper) Recorder() *Recorder { return s.cfg.Recorder }

// OnScrape subscribes a hook to run at the end of every scrape tick —
// after sampling and alert evaluation, inside the same engine event.
// Hooks run in subscription order. Subscribe before Start.
func (s *Scraper) OnScrape(fn func(atPs int64, st *Store)) {
	s.hooks = append(s.hooks, fn)
}

// Transitions returns the alert log entries in occurrence order.
func (s *Scraper) Transitions() []Transition { return s.transitions }

// AlertLogString renders the alert log — a byte-compared artifact.
func (s *Scraper) AlertLogString() string { return AlertLog(s.transitions) }

// Start schedules the first scrape one interval out.
func (s *Scraper) Start() {
	s.cfg.Eng.After(s.cfg.IntervalPs, s.tick)
}

func (s *Scraper) tick() {
	at := s.cfg.Eng.Now()
	s.buf = s.cfg.Reg.SnapshotInto(s.buf)
	for _, smp := range s.buf {
		s.store.observe(smp.Name, at, smp.Value)
	}
	if s.cfg.Tracer != nil {
		for _, name := range s.cfg.TraceSeries {
			if se := s.store.Series(name); se != nil {
				s.cfg.Tracer.Counter(s.seriesTrack, name, at, se.LastValue())
			}
		}
	}
	for i := range s.rules {
		rs := &s.rules[i]
		tr, ok := rs.step(s.store, at)
		if !ok {
			continue
		}
		s.transitions = append(s.transitions, tr)
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Instant(s.alertTrack, "alert:"+tr.Rule+":"+tr.To.String(), at)
		}
		s.cfg.Recorder.Note(at, "alert", fmt.Sprintf("%s %s->%s v=%g", tr.Rule, tr.From, tr.To, tr.V))
		if tr.To == Firing {
			s.cfg.Recorder.trigger(at, tr.Rule, s)
		}
	}
	s.Scrapes++
	for _, h := range s.hooks {
		h(at, s.store)
	}
	s.cfg.Eng.After(s.cfg.IntervalPs, s.tick)
}
