// Package obs is the deterministic time-series plane: an
// engine-scheduled scraper samples the telemetry registry on simulated
// picosecond ticks into bounded ring-buffered series, declarative alert
// rules (threshold, absence, multi-window SLO burn-rate) evaluate on
// every scrape with For-duration damping, and a flight recorder dumps a
// scoped incident bundle — a ps-windowed trace slice plus a canonical
// text report — when a rule fires.
//
// Determinism rules (DESIGN.md §18):
//
//   - Time is the simulated clock, never the wall clock. A scrape tick
//     is one engine event; sampling, rule evaluation, recorder capture,
//     and subscriber hooks all run inside it, in a fixed order, so no
//     other event can interleave and two runs with the same seed are
//     byte-identical at any ExecWorkers/GOMAXPROCS.
//   - Series are created in first-seen order, which is the registry's
//     registration order — no map iteration touches any output path.
//   - Rules evaluate in configuration order; the alert log and incident
//     bundles render with %g floats, byte-stable across runs.
package obs

import (
	"sort"
)

// Point is one scraped sample: a value observed at a simulated instant.
type Point struct {
	AtPs int64
	V    float64
}

// Series is a bounded ring of points for one metric. When the ring is
// full the oldest point is dropped — the store holds a recent horizon,
// not the whole run.
type Series struct {
	name string
	buf  []Point
	head int // index of the oldest point
	n    int

	scratch []float64 // QuantileOver sort space, reused across calls
}

func newSeries(name string, capacity int) *Series {
	return &Series{name: name, buf: make([]Point, capacity)}
}

// Name returns the metric name ("server.window.p99", "fleet.active").
func (s *Series) Name() string { return s.name }

// Len returns the number of retained points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Dropped reports whether the ring has wrapped (oldest points lost).
func (s *Series) Dropped() bool { return s != nil && s.n == len(s.buf) && s.head != 0 }

// At returns the i-th retained point, oldest first (0 <= i < Len).
func (s *Series) At(i int) Point { return s.buf[(s.head+i)%len(s.buf)] }

func (s *Series) push(p Point) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = p
		s.n++
		return
	}
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
}

// Last returns the newest point.
func (s *Series) Last() (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	return s.At(s.n - 1), true
}

// LastValue returns the newest value, or 0 on an empty/nil series.
func (s *Series) LastValue() float64 {
	p, ok := s.Last()
	if !ok {
		return 0
	}
	return p.V
}

// window returns the index range [lo, hi) of points with
// AtPs in (nowPs-windowPs, nowPs] — the half-open lookback every
// windowed operator shares.
func (s *Series) window(nowPs, windowPs int64) (lo, hi int) {
	if s == nil {
		return 0, 0
	}
	hi = s.n
	for hi > 0 && s.At(hi-1).AtPs > nowPs {
		hi--
	}
	lo = hi
	for lo > 0 && s.At(lo-1).AtPs > nowPs-windowPs {
		lo--
	}
	return lo, hi
}

// CountOver returns how many points fall in (nowPs-windowPs, nowPs].
func (s *Series) CountOver(nowPs, windowPs int64) int {
	lo, hi := s.window(nowPs, windowPs)
	return hi - lo
}

// baseline returns the newest point at or before cutoff, falling back
// to the oldest retained point when the ring no longer reaches back
// that far.
func (s *Series) baseline(cutoff int64) (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	for i := s.n - 1; i >= 0; i-- {
		if p := s.At(i); p.AtPs <= cutoff {
			return p, true
		}
	}
	return s.At(0), true
}

// Delta returns newest-minus-baseline over the window: for a
// monotonically increasing counter ("fleet.trips") this is "how many in
// the last windowPs". The baseline is the newest point at or before
// nowPs-windowPs (the value the counter had entering the window).
func (s *Series) Delta(nowPs, windowPs int64) float64 {
	last, ok := s.Last()
	if !ok {
		return 0
	}
	base, _ := s.baseline(nowPs - windowPs)
	return last.V - base.V
}

// Rate is Delta per simulated second.
func (s *Series) Rate(nowPs, windowPs int64) float64 {
	last, ok := s.Last()
	if !ok {
		return 0
	}
	base, _ := s.baseline(nowPs - windowPs)
	if last.AtPs <= base.AtPs {
		return 0
	}
	return (last.V - base.V) * 1e12 / float64(last.AtPs-base.AtPs)
}

// MaxOver returns the maximum value in the window (0 when empty).
func (s *Series) MaxOver(nowPs, windowPs int64) float64 {
	lo, hi := s.window(nowPs, windowPs)
	max := 0.0
	for i := lo; i < hi; i++ {
		if v := s.At(i).V; i == lo || v > max {
			max = v
		}
	}
	return max
}

// AvgOver returns the mean value over the window (0 when empty).
func (s *Series) AvgOver(nowPs, windowPs int64) float64 {
	lo, hi := s.window(nowPs, windowPs)
	if hi == lo {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += s.At(i).V
	}
	return sum / float64(hi-lo)
}

// QuantileOver returns the q-th percentile (0..100, nearest-rank) of
// the values in the window — the quantile of the series' samples, not
// of the underlying population each sample summarizes.
func (s *Series) QuantileOver(q float64, nowPs, windowPs int64) float64 {
	lo, hi := s.window(nowPs, windowPs)
	n := hi - lo
	if n == 0 {
		return 0
	}
	s.scratch = s.scratch[:0]
	for i := lo; i < hi; i++ {
		s.scratch = append(s.scratch, s.At(i).V)
	}
	sort.Float64s(s.scratch)
	idx := int(q/100*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s.scratch[idx]
}

// FracOver returns the fraction of window points whose value exceeds
// threshold — the error-budget signal the burn-rate rule consumes
// ("what fraction of recent scrape intervals breached the SLO").
func (s *Series) FracOver(threshold float64, nowPs, windowPs int64) float64 {
	lo, hi := s.window(nowPs, windowPs)
	if hi == lo {
		return 0
	}
	over := 0
	for i := lo; i < hi; i++ {
		if s.At(i).V > threshold {
			over++
		}
	}
	return float64(over) / float64(hi-lo)
}

// StaleForPs returns how long the series has gone without a point as of
// nowPs; a series that never reported returns -1.
func (s *Series) StaleForPs(nowPs int64) int64 {
	last, ok := s.Last()
	if !ok {
		return -1
	}
	return nowPs - last.AtPs
}

// Store holds every scraped series, in first-seen order (the registry's
// registration order — deterministic by construction).
type Store struct {
	capacity int
	list     []*Series
	byName   map[string]*Series
}

func newStore(capacity int) *Store {
	return &Store{capacity: capacity, byName: map[string]*Series{}}
}

func (st *Store) observe(name string, atPs int64, v float64) {
	se := st.byName[name]
	if se == nil {
		se = newSeries(name, st.capacity)
		st.byName[name] = se
		st.list = append(st.list, se)
	}
	se.push(Point{AtPs: atPs, V: v})
}

// Series returns the named series, or nil if it has never been scraped.
func (st *Store) Series(name string) *Series {
	if st == nil {
		return nil
	}
	return st.byName[name]
}

// Each visits every series in first-seen order.
func (st *Store) Each(f func(*Series)) {
	if st == nil {
		return
	}
	for _, se := range st.list {
		f(se)
	}
}

// Len returns the number of distinct series.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	return len(st.list)
}

// LastValue returns the newest value of the named series (0 if absent)
// — the autoscaler's per-tick read.
func (st *Store) LastValue(name string) float64 {
	return st.Series(name).LastValue()
}
